// The paper's OLAP scenario (§1): a prepared statement executed repeatedly.
// After each execution, observed cardinalities feed the optimizer through a
// ReoptSession, which incrementally re-optimizes — with minimal overhead
// once converged — and *publishes plan changes* to a subscriber as they
// happen: the executor learns "your plan is now X, it was Y, here is how
// much moved" and can decide whether switching pays.
//
//   $ ./build/examples/prepared_statement_reopt
#include <chrono>
#include <cstdio>

#include "core/declarative_optimizer.h"
#include "exec/executor.h"
#include "exec/feedback.h"
#include "service/reopt_session.h"
#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

using namespace iqro;

namespace {

// Prints each plan-change event as the session delivers it (after the
// flush, on the flushing thread) — the paper's motivating scenario made
// observable.
class AnnouncingSubscriber final : public PlanSubscriber {
 public:
  void OnPlanChange(const PlanChangeEvent& event) override {
    ++changes;
    std::printf("      >> plan changed: cost %.1f -> %.1f "
                "(%d/%d operators, join prefix %d/%d survives)\n",
                event.old_cost, event.new_cost, event.diff.changed_operators,
                event.diff.total_operators, event.diff.join_order_prefix,
                event.diff.join_order_len);
  }
  int changes = 0;
};

}  // namespace

int main() {
  Catalog catalog;
  TpchConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.zipf_theta = 0.5;  // skewed data: histograms mis-estimate joins
  GenerateTpch(&catalog, cfg);
  auto stats = CollectCatalogStats(catalog);
  auto ctx = MakeQueryContext(&catalog, MakeTpchQuery(&catalog, "Q5S"), stats);

  DeclarativeOptimizer optimizer(ctx->enumerator.get(), ctx->cost_model.get(),
                                 &ctx->registry);
  optimizer.Optimize();
  Executor executor(&catalog, &ctx->query, ctx->graph.get(), &ctx->props);

  // The prepared statement is a *live query*: register it once, subscribe
  // to plan changes, and let one coalesced flush per execution absorb the
  // churny feedback (oscillations and within-deadband repeats never reach
  // the fixpoint).
  ReoptSession session(&ctx->registry);
  AnnouncingSubscriber announcer;
  QueryHandle query = session.Register(optimizer, &announcer);

  std::printf("%-5s %-12s %-12s %-14s %-12s %s\n", "run", "exec ms", "reopt ms",
              "est. cost", "result rows", "events");
  for (int run = 1; run <= 8; ++run) {
    auto plan = optimizer.GetBestPlan();

    auto t0 = std::chrono::steady_clock::now();
    ExecutionResult result = executor.Execute(*plan, /*collect_rows=*/false);
    double exec_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();

    // Feed back what execution actually observed, then flush: the session
    // coalesces the feedback and runs one incremental fixpoint. After the
    // first runs the statistics converge and both the flush cost and the
    // event stream drop to (near) zero — the "minimal overhead" property
    // the paper targets for prepared statements.
    ApplyObservedCardinalities(result.observed, &ctx->registry, 1.0 / run,
                               /*deadband=*/0.01);
    const int events_before = announcer.changes;
    auto t1 = std::chrono::steady_clock::now();
    session.Flush();
    double reopt_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t1)
            .count();

    std::printf("%-5d %-12.3f %-12.3f %-14.1f %-12lld %d\n", run, exec_ms, reopt_ms,
                plan->cost, static_cast<long long>(result.root_rows),
                announcer.changes - events_before);
  }
  optimizer.ValidateInvariants();
  std::printf("\n%d plan change(s) announced; optimizer state stayed consistent "
              "across all runs.\n",
              announcer.changes);
  return 0;
}
