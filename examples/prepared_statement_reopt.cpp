// The paper's OLAP scenario (§1): a prepared statement executed repeatedly.
// After each execution, observed cardinalities feed the optimizer, which
// incrementally re-optimizes — with minimal overhead once converged.
//
//   $ ./build/examples/prepared_statement_reopt
#include <chrono>
#include <cstdio>

#include "core/declarative_optimizer.h"
#include "exec/executor.h"
#include "exec/feedback.h"
#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

using namespace iqro;

int main() {
  Catalog catalog;
  TpchConfig cfg;
  cfg.scale_factor = 0.005;
  cfg.zipf_theta = 0.5;  // skewed data: histograms mis-estimate joins
  GenerateTpch(&catalog, cfg);
  auto stats = CollectCatalogStats(catalog);
  auto ctx = MakeQueryContext(&catalog, MakeTpchQuery(&catalog, "Q5S"), stats);

  DeclarativeOptimizer optimizer(ctx->enumerator.get(), ctx->cost_model.get(),
                                 &ctx->registry);
  optimizer.Optimize();
  Executor executor(&catalog, &ctx->query, ctx->graph.get(), &ctx->props);

  std::printf("%-5s %-12s %-12s %-14s %-12s %s\n", "run", "exec ms", "reopt ms",
              "est. cost", "result rows", "plan changed");
  auto previous = optimizer.GetBestPlan();
  for (int run = 1; run <= 8; ++run) {
    auto plan = optimizer.GetBestPlan();
    bool changed = !plan->SameShape(*previous);
    previous = plan->Clone();

    auto t0 = std::chrono::steady_clock::now();
    ExecutionResult result = executor.Execute(*plan, /*collect_rows=*/false);
    double exec_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();

    // Feed back what execution actually observed, then re-optimize
    // incrementally. After the first runs the statistics converge and the
    // re-optimization cost drops to (near) zero — the "minimal overhead"
    // property the paper targets for prepared statements.
    ApplyObservedCardinalities(result.observed, &ctx->registry, 1.0 / run,
                               /*deadband=*/0.01);
    auto t1 = std::chrono::steady_clock::now();
    optimizer.Reoptimize();
    double reopt_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t1)
            .count();

    std::printf("%-5d %-12.3f %-12.3f %-14.1f %-12lld %s\n", run, exec_ms, reopt_ms,
                plan->cost, static_cast<long long>(result.root_rows),
                changed ? "yes" : "no");
  }
  optimizer.ValidateInvariants();
  std::printf("\noptimizer state stayed consistent across all runs.\n");
  return 0;
}
