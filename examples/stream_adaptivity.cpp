// Adaptive stream processing (§5.4): the SegTollS Linear-Road query runs
// over a drifting stream; at every slice boundary the incremental
// re-optimizer refits the plan to the current window contents.
//
//   $ ./build/examples/stream_adaptivity
#include <cstdio>

#include "aqp/adaptive.h"

using namespace iqro;

int main() {
  auto setup = MakeSegTollS();
  AqpOptions options;
  options.reopt = AqpOptions::ReoptMode::kIncremental;
  AdaptiveStreamProcessor processor(setup.get(), options);

  LinearRoadConfig cfg;
  cfg.events_per_second = 250;
  cfg.num_cars = 800;
  cfg.drift_period = 5;  // the congestion hot spot moves every 5 seconds
  LinearRoadGenerator generator(cfg);

  std::printf("%-6s %-12s %-10s %-10s %-12s %-13s %s\n", "slice", "window rows",
              "reopt ms", "exec ms", "out rows", "entries upd.", "plan changed");
  for (int64_t t = 0; t < 20; ++t) {
    SliceReport r = processor.ProcessSlice(generator.Second(t), t);
    std::printf("%-6lld %-12lld %-10.3f %-10.3f %-12lld %-13lld %s\n",
                static_cast<long long>(r.slice), static_cast<long long>(r.window_rows),
                r.reopt_ms, r.exec_ms, static_cast<long long>(r.output_rows),
                static_cast<long long>(r.touched_eps), r.plan_changed ? "yes" : "no");
  }
  std::printf("\nfinal plan:\n%s",
              processor.current_plan()->ToString(setup->query, processor.props()).c_str());
  return 0;
}
