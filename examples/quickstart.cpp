// Quickstart: build a catalog, define a query, optimize it, apply a cost
// update, and re-optimize incrementally.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "baseline/volcano.h"
#include "core/declarative_optimizer.h"
#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

using namespace iqro;

int main() {
  // 1. Generate a small TPC-H-like database and collect statistics.
  Catalog catalog;
  TpchConfig cfg;
  cfg.scale_factor = 0.01;
  GenerateTpch(&catalog, cfg);
  std::vector<TableStats> stats = CollectCatalogStats(catalog);
  std::printf("generated TPC-H sf=%.2f: lineitem=%u rows, orders=%u rows\n",
              cfg.scale_factor, catalog.table("lineitem").num_rows(),
              catalog.table("orders").num_rows());

  // 2. Build the query (the paper's running example, simplified TPC-H Q3)
  //    and wire an optimization context: join graph, bound statistics,
  //    cost model, and the shared plan enumerator.
  auto ctx = MakeQueryContext(&catalog, MakeTpchQuery(&catalog, "Q3S"), stats);

  // 3. Initial optimization with the incremental declarative optimizer.
  DeclarativeOptimizer optimizer(ctx->enumerator.get(), ctx->cost_model.get(),
                                 &ctx->registry);
  optimizer.Optimize();
  std::printf("\ninitial best plan (cost %.1f):\n%s", optimizer.BestCost(),
              optimizer.GetBestPlan()->ToString(ctx->query, ctx->props).c_str());

  // 4. Runtime information arrives: the Orders scan turned out 8x more
  //    expensive (e.g. the machine hosting it is loaded), and the
  //    customer-orders join produces 4x more rows than estimated.
  ctx->registry.SetScanCostMultiplier(1, 8.0);        // slot 1 = orders
  ctx->registry.SetCardMultiplier(0b011, 4.0);        // customer x orders
  optimizer.Reoptimize();                             // incremental!
  std::printf("\nafter the cost update (cost %.1f):\n%s", optimizer.BestCost(),
              optimizer.GetBestPlan()->ToString(ctx->query, ctx->props).c_str());
  std::printf("re-optimization touched %lld plan-table entries (%lld alternatives)\n",
              static_cast<long long>(optimizer.metrics().round_touched_eps),
              static_cast<long long>(optimizer.metrics().round_touched_alts));

  // 5. Cross-check against a from-scratch procedural optimization.
  VolcanoOptimizer volcano(ctx->enumerator.get(), ctx->cost_model.get());
  volcano.Optimize();
  std::printf("\nfrom-scratch Volcano cost: %.1f (must match: %s)\n", volcano.BestCost(),
              std::abs(volcano.BestCost() - optimizer.BestCost()) < 1e-6 ? "yes" : "NO");
  return 0;
}
