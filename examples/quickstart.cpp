// Quickstart: build a catalog, define a query, optimize it, register it
// with a ReoptSession, and watch incremental re-optimization publish a
// plan-change event when a cost update flips the best plan.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "baseline/volcano.h"
#include "core/declarative_optimizer.h"
#include "service/reopt_session.h"
#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

using namespace iqro;

namespace {

// A PlanSubscriber receives one event per flush per query whose canonical
// best plan actually changed — the executor-facing notification edge.
class PrintingSubscriber final : public PlanSubscriber {
 public:
  void OnPlanChange(const PlanChangeEvent& event) override {
    std::printf("\nplan change (flush #%lld): cost %.1f -> %.1f, "
                "%d/%d operators changed, join prefix %d/%d kept\n",
                static_cast<long long>(event.flush_index), event.old_cost, event.new_cost,
                event.diff.changed_operators, event.diff.total_operators,
                event.diff.join_order_prefix, event.diff.join_order_len);
  }
};

}  // namespace

int main() {
  // 1. Generate a small TPC-H-like database and collect statistics.
  Catalog catalog;
  TpchConfig cfg;
  cfg.scale_factor = 0.01;
  GenerateTpch(&catalog, cfg);
  std::vector<TableStats> stats = CollectCatalogStats(catalog);
  std::printf("generated TPC-H sf=%.2f: lineitem=%u rows, orders=%u rows\n",
              cfg.scale_factor, catalog.table("lineitem").num_rows(),
              catalog.table("orders").num_rows());

  // 2. Build the query (the paper's running example, simplified TPC-H Q3)
  //    and wire an optimization context: join graph, bound statistics,
  //    cost model, and the shared plan enumerator.
  auto ctx = MakeQueryContext(&catalog, MakeTpchQuery(&catalog, "Q3S"), stats);

  // 3. Initial optimization with the incremental declarative optimizer.
  DeclarativeOptimizer optimizer(ctx->enumerator.get(), ctx->cost_model.get(),
                                 &ctx->registry);
  optimizer.Optimize();
  std::printf("\ninitial best plan (cost %.1f):\n%s", optimizer.BestCost(),
              optimizer.GetBestPlan()->ToString(ctx->query, ctx->props).c_str());

  // 4. Register the live query with a ReoptSession and subscribe to plan
  //    changes. The QueryHandle is the registration: move-only, and its
  //    destructor unregisters.
  ReoptSession session(&ctx->registry);
  PrintingSubscriber subscriber;
  QueryHandle query = session.Register(optimizer, &subscriber);

  // 5. Runtime information arrives: the Orders scan turned out 8x more
  //    expensive (e.g. the machine hosting it is loaded), and the
  //    customer-orders join produces 4x more rows than estimated. One
  //    coalesced flush seeds both deltas and runs ONE incremental fixpoint;
  //    the subscriber fires iff the canonical best plan moved.
  ctx->registry.SetScanCostMultiplier(1, 8.0);        // slot 1 = orders
  ctx->registry.SetCardMultiplier(0b011, 4.0);        // customer x orders
  session.Flush();                                    // incremental!
  std::printf("\nafter the cost update (cost %.1f):\n%s", optimizer.BestCost(),
              optimizer.GetBestPlan()->ToString(ctx->query, ctx->props).c_str());
  std::printf("re-optimization touched %lld plan-table entries (%lld alternatives)\n",
              static_cast<long long>(optimizer.metrics().round_touched_eps),
              static_cast<long long>(optimizer.metrics().round_touched_alts));

  // 6. Cross-check against a from-scratch procedural optimization.
  VolcanoOptimizer volcano(ctx->enumerator.get(), ctx->cost_model.get());
  volcano.Optimize();
  std::printf("\nfrom-scratch Volcano cost: %.1f (must match: %s)\n", volcano.BestCost(),
              std::abs(volcano.BestCost() - optimizer.BestCost()) < 1e-6 ? "yes" : "NO");
  return 0;
}
