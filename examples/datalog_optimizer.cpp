// The paper's core idea, executed literally: the optimizer *is* a datalog
// program (Appendix A). This example runs the R1-R10 rule pipeline for a
// three-relation chain query on the generic incremental datalog engine —
// plan enumeration (SearchSpace), cost estimation (PlanCost), plan
// selection (BestCost/BestPlan) — then updates a scan cost and lets
// incremental view maintenance re-derive the new best plan.
//
//   $ ./build/examples/datalog_optimizer
#include <cstdio>

#include "common/relset.h"
#include "core/rules.h"
#include "datalog/engine.h"

using namespace iqro;
using namespace iqro::datalog;

namespace {

// Chain query over relations {0, 1, 2}: 0-1 and 1-2 join edges.
bool Connected(RelSet s) {
  return s == 0b001 || s == 0b010 || s == 0b100 || s == 0b011 || s == 0b110 || s == 0b111;
}

void PrintState(DatalogEngine& e, RelId best_plan, RelId best_cost) {
  for (const Tuple& t : e.Facts(best_cost)) {
    std::printf("  BestCost(%s) = %lld\n", RelSetToString(static_cast<RelSet>(t[0])).c_str(),
                static_cast<long long>(t[1]));
  }
  for (const Tuple& t : e.Facts(best_plan)) {
    if (t[2] == 0 && t[3] == 0) {
      std::printf("  BestPlan(%s): scan, cost %lld\n",
                  RelSetToString(static_cast<RelSet>(t[0])).c_str(),
                  static_cast<long long>(t[4]));
    } else {
      std::printf("  BestPlan(%s): join(%s, %s), cost %lld\n",
                  RelSetToString(static_cast<RelSet>(t[0])).c_str(),
                  RelSetToString(static_cast<RelSet>(t[2])).c_str(),
                  RelSetToString(static_cast<RelSet>(t[3])).c_str(),
                  static_cast<long long>(t[4]));
    }
  }
}

}  // namespace

int main() {
  std::printf("The optimizer as a datalog program (Appendix A):\n");
  for (const DatalogRuleSpec& rule : OptimizerRules()) {
    if (rule.stage != "bounding") std::printf("  %-4s %s\n", rule.name.c_str(),
                                              rule.text.substr(0, 90).c_str());
  }

  DatalogEngine e;
  // EDB: the query expression and the cost inputs.
  RelId expr = e.AddRelation("Expr", 1);
  RelId scan_cost = e.AddRelation("ScanCost", 2);    // (leaf expr, cost)
  RelId join_local = e.AddRelation("JoinLocal", 2);  // (expr, local cost)
  // IDB: the optimizer state.
  RelId search = e.AddRelation("SearchSpace", 4);  // (expr, index, lexpr, rexpr)
  RelId plan_cost = e.AddRelation("PlanCost", 3);  // (expr, index, cost)
  RelId pc_proj = e.AddRelation("PlanCostProj", 2);
  RelId best_cost = e.AddRelation("BestCost", 2);
  RelId best_plan = e.AddRelation("BestPlan", 5);  // (expr, index, lexpr, rexpr, cost)

  // Fn_split as a generator: all connected half-partitions, plus the leaf
  // marker row (index, lexpr, rexpr) = (0, 0, 0) for singletons.
  Generator split;
  split.out_vars = {1, 2, 3};
  split.fn = [](const std::vector<Value>& env) {
    RelSet s = static_cast<RelSet>(env[0]);
    std::vector<std::vector<Value>> rows;
    if (RelCount(s) == 1) {
      rows.push_back({0, 0, 0});
      return rows;
    }
    Value index = 1;
    RelForEachHalfPartition(s, [&](RelSet left) {
      RelSet right = s ^ left;
      if (!Connected(left) || !Connected(right)) return;
      rows.push_back({index++, static_cast<Value>(left), static_cast<Value>(right)});
      rows.push_back({index++, static_cast<Value>(right), static_cast<Value>(left)});
    });
    return rows;
  };

  // R1: SearchSpace(e, i, l, r) :- Expr(e), Fn_split(...).
  {
    Rule r;
    r.head = {search, {Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)}};
    r.body = {{expr, {Term::Var(0)}}};
    r.generators_after[0].push_back(split);
    r.num_vars = 4;
    e.AddRule(r);
  }
  // R2/R3: recursive decomposition through the left and right children.
  for (int side : {2, 3}) {
    Rule r;
    r.head = {search, {Term::Var(4), Term::Var(5), Term::Var(6), Term::Var(7)}};
    r.body = {{search, {Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)}}};
    r.guards_after[0].push_back(
        {[side](const std::vector<Value>& env) { return env[static_cast<size_t>(side)] != 0; }});
    // Bind the child expression to var 4, then split it.
    Generator bind_child;
    bind_child.out_vars = {4};
    bind_child.fn = [side](const std::vector<Value>& env) {
      return std::vector<std::vector<Value>>{{env[static_cast<size_t>(side)]}};
    };
    Generator child_split = split;
    child_split.out_vars = {5, 6, 7};
    child_split.fn = [fn = split.fn](const std::vector<Value>& env) {
      return fn({env[4]});
    };
    r.generators_after[0].push_back(bind_child);
    r.generators_after[0].push_back(child_split);
    r.num_vars = 8;
    e.AddRule(r);
  }
  // R6: leaf costs. PlanCost(e, i, c) :- SearchSpace(e, i, 0, 0), ScanCost(e, c).
  {
    Rule r;
    r.head = {plan_cost, {Term::Var(0), Term::Var(1), Term::Var(2)}};
    r.body = {{search, {Term::Var(0), Term::Var(1), Term::Const(0), Term::Const(0)}},
              {scan_cost, {Term::Var(0), Term::Var(2)}}};
    r.num_vars = 3;
    e.AddRule(r);
  }
  // R8: join costs from children best costs (Fn_sum as a generator).
  {
    Rule r;
    r.head = {plan_cost, {Term::Var(0), Term::Var(1), Term::Var(7)}};
    r.body = {{search, {Term::Var(0), Term::Var(1), Term::Var(2), Term::Var(3)}},
              {best_cost, {Term::Var(2), Term::Var(4)}},
              {best_cost, {Term::Var(3), Term::Var(5)}},
              {join_local, {Term::Var(0), Term::Var(6)}}};
    r.guards_after[0].push_back(
        {[](const std::vector<Value>& env) { return env[2] != 0; }});
    Generator sum;
    sum.out_vars = {7};
    sum.fn = [](const std::vector<Value>& env) {
      return std::vector<std::vector<Value>>{{env[4] + env[5] + env[6]}};
    };
    r.generators_after[3].push_back(sum);
    r.num_vars = 8;
    e.AddRule(r);
  }
  // R9: BestCost(e, min<c>) via the aggregate (projection first).
  {
    Rule r;
    r.head = {pc_proj, {Term::Var(0), Term::Var(2)}};
    r.body = {{plan_cost, {Term::Var(0), Term::Var(1), Term::Var(2)}}};
    r.num_vars = 3;
    e.AddRule(r);
  }
  e.AddMinAggRule(best_cost, pc_proj, 1);
  // R10: BestPlan joins BestCost back with PlanCost.
  {
    Rule r;
    r.head = {best_plan,
              {Term::Var(0), Term::Var(1), Term::Var(3), Term::Var(4), Term::Var(2)}};
    r.body = {{best_cost, {Term::Var(0), Term::Var(2)}},
              {plan_cost, {Term::Var(0), Term::Var(1), Term::Var(2)}},
              {search, {Term::Var(0), Term::Var(1), Term::Var(3), Term::Var(4)}}};
    r.num_vars = 5;
    e.AddRule(r);
  }

  // Base facts: the query and its cost inputs.
  e.Insert(expr, {0b111});
  e.Insert(scan_cost, {0b001, 100});
  e.Insert(scan_cost, {0b010, 40});
  e.Insert(scan_cost, {0b100, 300});
  e.Insert(join_local, {0b011, 25});
  e.Insert(join_local, {0b110, 60});
  e.Insert(join_local, {0b111, 10});
  e.Evaluate();
  std::printf("\ninitial optimization (derivation steps: %lld):\n",
              static_cast<long long>(e.derivations()));
  PrintState(e, best_plan, best_cost);

  // A cost update arrives: relation {2}'s scan got 10x cheaper. Incremental
  // view maintenance re-derives only the affected plans.
  int64_t before = e.derivations();
  e.Remove(scan_cost, {0b100, 300});
  e.Insert(scan_cost, {0b100, 30});
  e.Evaluate();
  std::printf("\nafter the scan-cost update (incremental steps: %lld):\n",
              static_cast<long long>(e.derivations() - before));
  PrintState(e, best_plan, best_cost);
  return 0;
}
