#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Scans every tracked .md file for inline links/images and verifies that
relative targets exist in the repo (anchors are stripped; external
http(s)/mailto links are not fetched). Exits non-zero listing every
broken link. No dependencies beyond the standard library.
"""
import os
import re
import subprocess
import sys

# [text](target) — skips images vs links distinction (both must resolve);
# ignores fenced code blocks and inline code spans.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def repo_root() -> str:
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=False)
    return out.stdout.strip() or os.getcwd()


def md_files(root: str):
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard", "*.md"],
        capture_output=True, text=True, check=False, cwd=root)
    files = [f for f in out.stdout.splitlines() if f]
    if files:
        return files
    # Fallback outside git: walk, skipping build trees.
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not d.startswith((".", "build"))]
        found += [os.path.relpath(os.path.join(dirpath, f), root)
                  for f in filenames if f.endswith(".md")]
    return found


def links_in(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(CODE_SPAN_RE.sub("`", line)):
                yield lineno, m.group(1)


def main() -> int:
    root = repo_root()
    broken = []
    checked = 0
    for rel in md_files(root):
        md = os.path.join(root, rel)
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
            if not os.path.exists(resolved):
                broken.append(f"{rel}:{lineno}: broken link -> {target}")
    for b in broken:
        print(b, file=sys.stderr)
    print(f"check_md_links: {checked} local links checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
