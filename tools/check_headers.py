#!/usr/bin/env python3
"""Header hygiene: every public header must compile standalone.

Compiles each src/**/*.h as its own translation unit with -fsyntax-only,
so a header that silently leans on its includers' #includes (or on
include-order luck) fails CI instead of failing the next consumer. This is
what keeps the service API surface (and every later one) self-contained.

Usage: python3 tools/check_headers.py [--compiler c++] [--jobs N]
Exit code 0 when every header compiles, 1 otherwise.
"""

import argparse
import concurrent.futures
import pathlib
import shutil
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def find_compiler(explicit: str | None) -> str:
    candidates = [explicit] if explicit else ["c++", "g++", "clang++"]
    for c in candidates:
        if c and shutil.which(c):
            return c
    sys.exit("check_headers: no C++ compiler found (tried: %s)" % ", ".join(
        c for c in candidates if c))


def check_one(compiler: str, header: pathlib.Path) -> tuple[pathlib.Path, str | None]:
    cmd = [
        compiler,
        "-std=c++20",
        "-fsyntax-only",
        "-Wall",
        "-Wextra",
        f"-I{SRC}",
        "-x",
        "c++",  # treat the .h as a C++ TU
        str(header),
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return header, proc.stderr.strip() or f"exit code {proc.returncode}"
    return header, None


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--compiler", default=None, help="compiler to use (default: c++/g++/clang++)")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args()

    compiler = find_compiler(args.compiler)
    headers = sorted(SRC.rglob("*.h"))
    if not headers:
        sys.exit("check_headers: no headers found under src/")

    failures: list[tuple[pathlib.Path, str]] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for header, error in pool.map(lambda h: check_one(compiler, h), headers):
            if error is not None:
                failures.append((header, error))

    for header, error in failures:
        rel = header.relative_to(ROOT)
        print(f"FAIL {rel}\n{error}\n", file=sys.stderr)
    ok = len(headers) - len(failures)
    print(f"check_headers: {ok}/{len(headers)} headers compile standalone ({compiler})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
