#!/usr/bin/env python3
"""Regenerates the corrupt-snapshot corpus under tests/data/.

Each file is a deliberately broken snapshot container (service/snapshot.h
format, version 1); tests/service_test.cpp asserts SnapshotReader rejects
every one with the exact typed SerializeError code named in the filename's
entry below. The corpus is checked in — rerun this script only when the
container format changes, and update the expectations in service_test.cpp
to match.

Usage: tools/make_snapshot_corpus.py [output_dir]   (default tests/data)
"""
import os
import struct
import sys

MAGIC = b"IQROSNAP"
VERSION = 1


def fnv1a64(data: bytes) -> int:
    # Must match iqro::Fnv1a64 (common/serialize.h) bit-for-bit.
    h = 14695981039346656037
    for b in data:
        h ^= b
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


def section(stype: int, payload: bytes, checksum: int = None) -> bytes:
    if checksum is None:
        checksum = fnv1a64(payload)
    return struct.pack("<IQQ", stype, len(payload), checksum) + payload


def container(version: int, sections: list) -> bytes:
    return MAGIC + struct.pack("<II", version, len(sections)) + b"".join(sections)


def corpus() -> dict:
    payload = b"not a real stats section, but framed correctly"
    good = container(VERSION, [section(1, payload)])
    files = {
        # expected code: bad_magic — too short to even hold the magic
        "empty.snap": b"",
        "short_garbage.snap": b"IQ",
        # expected code: bad_magic — full header, wrong identity
        "bad_magic.snap": b"NOTASNAP" + good[8:],
        # expected code: bad_version — well-formed, future container version
        "bad_version.snap": container(99, [section(1, payload)]),
        # expected code: truncated — section count says 1, file ends first
        "truncated_header.snap": MAGIC + struct.pack("<II", VERSION, 1),
        # expected code: truncated — declared length overruns the file
        "oversized_section.snap": MAGIC + struct.pack("<II", VERSION, 1) +
            struct.pack("<IQQ", 1, 1 << 20, fnv1a64(payload)) + payload,
        # expected code: checksum — one payload bit flipped after framing
        "bad_checksum.snap": container(
            VERSION, [section(1, payload, checksum=fnv1a64(payload) ^ 1)]),
        # expected code: bad_section — valid container plus trailing junk
        "trailing_garbage.snap": good + b"JUNK",
    }
    return files


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests", "data")
    os.makedirs(out_dir, exist_ok=True)
    for name, data in corpus().items():
        with open(os.path.join(out_dir, name), "wb") as f:
            f.write(data)
        print(f"wrote {name} ({len(data)} bytes)")


if __name__ == "__main__":
    main()
