#!/usr/bin/env python3
"""Regenerates the corrupt wire-frame corpus under tests/data/wire/.

Each file is a deliberately broken reoptd wire stream (server/wire.h
format: "IQR1" magic, u32 payload length, u64 FNV-1a64 checksum, payload).
tests/server_test.cpp decodes every one and asserts the exact typed
SerializeError code named below — frame-level defects out of
DecodeFrames(), payload-level defects out of DecodeRequest(). The corpus
is checked in; rerun this script only when the wire format changes, and
update the expectations in server_test.cpp to match.

Usage: tools/make_wire_corpus.py [output_dir]   (default tests/data/wire)
"""
import os
import struct
import sys

MAGIC = b"IQR1"


def fnv1a64(data: bytes) -> int:
    # Must match iqro::Fnv1a64 (common/serialize.h) bit-for-bit.
    h = 14695981039346656037
    for b in data:
        h ^= b
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


def frame(payload: bytes, checksum: int = None, magic: bytes = MAGIC,
          length: int = None) -> bytes:
    if checksum is None:
        checksum = fnv1a64(payload)
    if length is None:
        length = len(payload)
    return magic + struct.pack("<IQ", length, checksum) + payload


def flush_payload(request_id: int = 7, all_flag: int = 0,
                  world_key: int = 0xABCD) -> bytes:
    # u8 type (kFlush=4), u64 request id, u8 all flag, u64 world key.
    return struct.pack("<BQBQ", 4, request_id, all_flag, world_key)


def corpus() -> dict:
    good = frame(flush_payload())
    files = {
        # ---- frame-level: DecodeFrames() itself throws ----
        # truncated — stream ends inside the magic (prefix still matches)
        "short_magic.bin": b"IQ",
        # bad_magic — not our protocol at all
        "bad_magic.bin": b"XXXX" + good[4:],
        # bad_version — our magic, unsupported version digit
        "bad_version.bin": b"IQR9" + good[4:],
        # bad_section — hostile length prefix past kMaxFramePayload (8 MiB)
        "oversize_len.bin": frame(b"", length=9 << 20),
        # truncated — declared payload longer than the stream
        "truncated_payload.bin": frame(flush_payload())[:-4],
        # checksum — one checksum bit flipped after framing
        "bad_checksum.bin": frame(flush_payload(),
                                  checksum=fnv1a64(flush_payload()) ^ 1),
        # bad_magic — valid frame followed by garbage (fail-fast on the tail)
        "trailing_junk.bin": good + b"JUNK",
        # ---- payload-level: the frame decodes, DecodeRequest() throws ----
        # bad_section — message type 42 is not in the vocabulary
        "unknown_type.bin": frame(struct.pack("<BQ", 42, 7)),
        # truncated — kFlush body ends before its world key
        "truncated_body.bin": frame(struct.pack("<BQB", 4, 7, 0)),
        # bad_section — kFlush body followed by undeclared trailing bytes
        "trailing_body.bin": frame(flush_payload() + b"xx"),
        # bad_section — flush-all flag out of range (2 for a 0/1 bool)
        "bad_flag.bin": frame(flush_payload(all_flag=2)),
        # bad_section — kRegisterQuery whose relation count (1000) exceeds
        # kMaxRelations: u64 world key, u8 want_events, catalog{tpch, 0
        # tables}, query{empty name, 1000 relations...}
        "relations_overflow.bin": frame(
            struct.pack("<BQ", 1, 7) + struct.pack("<QB", 1, 1) +
            struct.pack("<BI", 1, 0) + struct.pack("<I", 0) +
            struct.pack("<I", 1000)),
        # bad_section — kRecordStatBatch carrying mutation kind 9 (> kCardMultiplier)
        "bad_mutation_kind.bin": frame(
            struct.pack("<BQ", 3, 7) + struct.pack("<QI", 1, 1) +
            struct.pack("<BiI", 9, 0, 0) + struct.pack("<d", 1.0)),
    }
    return files


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tests", "data", "wire")
    os.makedirs(out_dir, exist_ok=True)
    for name, data in corpus().items():
        with open(os.path.join(out_dir, name), "wb") as f:
            f.write(data)
        print(f"wrote {name} ({len(data)} bytes)")


if __name__ == "__main__":
    main()
