#include "workload/tpch_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/str_util.h"

namespace iqro {

namespace {

// Base row counts at scale factor 1.0 (TPC-H specification).
constexpr double kRegionRows = 5;
constexpr double kNationRows = 25;
constexpr double kSupplierRows = 10'000;
constexpr double kCustomerRows = 150'000;
constexpr double kPartRows = 200'000;
constexpr double kPartsuppPerPart = 4;
constexpr double kOrdersRows = 1'500'000;
constexpr double kLineitemPerOrder = 4;

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};
const char* kReturnFlags[] = {"A", "N", "R"};
const char* kLineStatus[] = {"O", "F"};

int64_t ScaledRows(double base, double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(base * sf)));
}

/// Draws a foreign key in [1, n]; with skew, the hotspot is rotated by the
/// partition id so that different partitions favor different key ranges.
class FkSampler {
 public:
  FkSampler(int64_t n, double theta, uint32_t partition)
      : n_(static_cast<uint64_t>(n)), zipf_(static_cast<uint64_t>(n), theta) {
    offset_ = theta > 0 ? (static_cast<uint64_t>(partition) * 7919) % n_ : 0;
  }

  int64_t Draw(Rng& rng) const {
    uint64_t v = zipf_.Sample(rng);  // 1..n, small values hot
    return static_cast<int64_t>((v - 1 + offset_) % n_) + 1;
  }

 private:
  uint64_t n_;
  ZipfGenerator zipf_;
  uint64_t offset_;
};

Table& EnsureTable(Catalog* catalog, const Schema& schema) {
  TableId id = catalog->FindTable(schema.name);
  if (id < 0) id = catalog->CreateTable(schema);
  Table& t = catalog->table(id);
  t.Clear();
  return t;
}

int64_t RandomDate(Rng& rng) {
  int year = static_cast<int>(1992 + rng.NextBelow(7));
  int month = static_cast<int>(1 + rng.NextBelow(12));
  int day = static_cast<int>(1 + rng.NextBelow(28));
  return TpchDate(year, month, day);
}

}  // namespace

void GenerateTpch(Catalog* catalog, const TpchConfig& config) {
  Rng rng(config.seed + config.partition * 0x9E37ull);
  Dictionary& dict = catalog->dict();
  const double sf = config.scale_factor;

  // ---- region ----
  Table& region = EnsureTable(
      catalog, {"region", {{"r_regionkey", ColumnType::kInt}, {"r_name", ColumnType::kString}}});
  for (int64_t i = 0; i < static_cast<int64_t>(kRegionRows); ++i) {
    region.AppendRow(std::vector<int64_t>{i + 1, dict.Intern(kRegionNames[i])});
  }

  // ---- nation ----
  Table& nation = EnsureTable(catalog, {"nation",
                                        {{"n_nationkey", ColumnType::kInt},
                                         {"n_name", ColumnType::kString},
                                         {"n_regionkey", ColumnType::kInt}}});
  for (int64_t i = 0; i < static_cast<int64_t>(kNationRows); ++i) {
    nation.AppendRow(std::vector<int64_t>{i + 1, dict.Intern(StrFormat("NATION_%02d", (int)i)),
                                          (i % static_cast<int64_t>(kRegionRows)) + 1});
  }

  // ---- supplier ----
  const int64_t n_supplier = ScaledRows(kSupplierRows, sf);
  Table& supplier = EnsureTable(catalog, {"supplier",
                                          {{"s_suppkey", ColumnType::kInt},
                                           {"s_name", ColumnType::kString},
                                           {"s_nationkey", ColumnType::kInt},
                                           {"s_acctbal", ColumnType::kInt}}});
  for (int64_t i = 1; i <= n_supplier; ++i) {
    supplier.AppendRow(std::vector<int64_t>{
        i, dict.Intern(StrFormat("Supplier#%06d", (int)i)),
        rng.NextInRange(1, static_cast<int64_t>(kNationRows)), rng.NextInRange(-999, 9999)});
  }

  // ---- customer ----
  const int64_t n_customer = ScaledRows(kCustomerRows, sf);
  Table& customer = EnsureTable(catalog, {"customer",
                                          {{"c_custkey", ColumnType::kInt},
                                           {"c_name", ColumnType::kString},
                                           {"c_mktsegment", ColumnType::kString},
                                           {"c_nationkey", ColumnType::kInt},
                                           {"c_acctbal", ColumnType::kInt}}});
  for (int64_t i = 1; i <= n_customer; ++i) {
    customer.AppendRow(std::vector<int64_t>{
        i, dict.Intern(StrFormat("Customer#%06d", (int)i)),
        dict.Intern(kSegments[rng.NextBelow(5)]),
        rng.NextInRange(1, static_cast<int64_t>(kNationRows)), rng.NextInRange(-999, 9999)});
  }

  // ---- part ----
  const int64_t n_part = ScaledRows(kPartRows, sf);
  Table& part = EnsureTable(catalog, {"part",
                                      {{"p_partkey", ColumnType::kInt},
                                       {"p_name", ColumnType::kString},
                                       {"p_retailprice", ColumnType::kInt}}});
  for (int64_t i = 1; i <= n_part; ++i) {
    part.AppendRow(std::vector<int64_t>{i, dict.Intern(StrFormat("Part#%06d", (int)i)),
                                        900 + (i % 1000)});
  }

  // ---- partsupp ----
  Table& partsupp = EnsureTable(catalog, {"partsupp",
                                          {{"ps_partkey", ColumnType::kInt},
                                           {"ps_suppkey", ColumnType::kInt},
                                           {"ps_availqty", ColumnType::kInt}}});
  for (int64_t p = 1; p <= n_part; ++p) {
    for (int64_t k = 0; k < static_cast<int64_t>(kPartsuppPerPart); ++k) {
      int64_t s = ((p + k * (n_supplier / 4 + 1)) % n_supplier) + 1;
      partsupp.AppendRow(std::vector<int64_t>{p, s, rng.NextInRange(1, 9999)});
    }
  }

  // ---- orders ----
  const int64_t n_orders = ScaledRows(kOrdersRows, sf);
  FkSampler cust_fk(n_customer, config.zipf_theta, config.partition);
  Table& orders = EnsureTable(catalog, {"orders",
                                        {{"o_orderkey", ColumnType::kInt},
                                         {"o_custkey", ColumnType::kInt},
                                         {"o_orderdate", ColumnType::kDate},
                                         {"o_shippriority", ColumnType::kInt},
                                         {"o_totalprice", ColumnType::kInt}}});
  std::vector<int64_t> order_dates(static_cast<size_t>(n_orders) + 1, 0);
  for (int64_t i = 1; i <= n_orders; ++i) {
    int64_t date = RandomDate(rng);
    order_dates[static_cast<size_t>(i)] = date;
    orders.AppendRow(std::vector<int64_t>{i, cust_fk.Draw(rng), date,
                                          static_cast<int64_t>(rng.NextBelow(2)),
                                          rng.NextInRange(1000, 500000)});
  }

  // ---- lineitem ----
  FkSampler part_fk(n_part, config.zipf_theta, config.partition + 1);
  FkSampler supp_fk(n_supplier, config.zipf_theta, config.partition + 2);
  Table& lineitem = EnsureTable(catalog, {"lineitem",
                                          {{"l_orderkey", ColumnType::kInt},
                                           {"l_partkey", ColumnType::kInt},
                                           {"l_suppkey", ColumnType::kInt},
                                           {"l_shipdate", ColumnType::kDate},
                                           {"l_extendedprice", ColumnType::kInt},
                                           {"l_discount", ColumnType::kInt},
                                           {"l_quantity", ColumnType::kInt},
                                           {"l_returnflag", ColumnType::kString},
                                           {"l_linestatus", ColumnType::kString}}});
  for (int64_t o = 1; o <= n_orders; ++o) {
    int64_t items = 1 + static_cast<int64_t>(rng.NextBelow(
                            static_cast<uint64_t>(2 * kLineitemPerOrder - 1)));
    for (int64_t k = 0; k < items; ++k) {
      // Ship within ~4 months of the order date (coarse, month-arithmetic).
      int64_t ship = order_dates[static_cast<size_t>(o)] + 100 * rng.NextInRange(0, 4);
      lineitem.AppendRow(std::vector<int64_t>{
          o, part_fk.Draw(rng), supp_fk.Draw(rng), ship, rng.NextInRange(1000, 100000),
          rng.NextInRange(0, 10), rng.NextInRange(1, 50),
          dict.Intern(kReturnFlags[rng.NextBelow(3)]),
          dict.Intern(kLineStatus[rng.NextBelow(2)])});
    }
  }

  // ---- physical design: cluster on primary key, index PKs and FKs ----
  auto finish = [&](const char* table_name, std::initializer_list<const char*> indexed) {
    Table& t = catalog->table(table_name);
    for (const char* col : indexed) {
      int c = t.schema().ColumnIndex(col);
      IQRO_CHECK(c >= 0);
      t.BuildIndex(c);
    }
    t.SetClusteredOn(0);  // generated in primary-key order
  };
  finish("region", {"r_regionkey"});
  finish("nation", {"n_nationkey", "n_regionkey"});
  finish("supplier", {"s_suppkey", "s_nationkey"});
  finish("customer", {"c_custkey", "c_nationkey"});
  finish("part", {"p_partkey"});
  finish("partsupp", {"ps_partkey", "ps_suppkey"});
  finish("orders", {"o_orderkey", "o_custkey"});
  finish("lineitem", {"l_orderkey", "l_partkey", "l_suppkey"});
}

}  // namespace iqro
