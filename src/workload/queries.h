// The paper's evaluation queries (§5, Table 2): TPC-H Q1, Q3, Q3S, Q5, Q5S,
// Q6, Q10, and the hand-built eight-way joins Q8Join / Q8JoinS.
#ifndef IQRO_WORKLOAD_QUERIES_H_
#define IQRO_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/query_spec.h"

namespace iqro {

/// Builds one of the named workload queries against `catalog` (which must
/// hold the TPC-H tables). Known names: Q1, Q3, Q3S, Q5, Q5S, Q6, Q10,
/// Q8Join, Q8JoinS.
QuerySpec MakeTpchQuery(Catalog* catalog, const std::string& name);

/// The names above, in the paper's presentation order.
std::vector<std::string> TpchQueryNames();

/// The join queries used in Figures 4 and 7.
std::vector<std::string> JoinQueryNames();  // Q5, Q5S, Q10, Q8Join, Q8JoinS

}  // namespace iqro

#endif  // IQRO_WORKLOAD_QUERIES_H_
