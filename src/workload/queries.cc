#include "workload/queries.h"

#include "common/check.h"
#include "query/query_builder.h"
#include "workload/tpch_gen.h"

namespace iqro {

namespace {

// Simplified TPC-H Q3 (the paper's running example Q3S drops aggregation).
QuerySpec MakeQ3(Catalog* catalog, bool simplified) {
  QueryBuilder b(simplified ? "Q3S" : "Q3", catalog);
  b.AddRelation("customer", "c");
  b.AddRelation("orders", "o");
  b.AddRelation("lineitem", "l");
  b.Join("c", "c_custkey", "o", "o_custkey");
  b.Join("o", "o_orderkey", "l", "l_orderkey");
  b.FilterStr("c", "c_mktsegment", PredOp::kEq, "MACHINERY");
  b.Filter("o", "o_orderdate", PredOp::kLt, TpchDate(1995, 3, 15));
  b.Filter("l", "l_shipdate", PredOp::kGt, TpchDate(1995, 3, 15));
  b.Project("l", "l_orderkey").Project("o", "o_orderdate").Project("o", "o_shippriority");
  if (!simplified) {
    b.GroupBy("l", "l_orderkey").GroupBy("o", "o_orderdate").GroupBy("o", "o_shippriority");
    b.Aggregate(AggFn::kSum, "l", "l_extendedprice");
  }
  return b.Build();
}

// TPC-H Q5 with the join chain of the paper's Figure 5:
// A = region x nation, B = customer x A, C = orders x B, D = lineitem x C,
// E = supplier x D (supplier connects on both l_suppkey and s_nationkey).
QuerySpec MakeQ5(Catalog* catalog, bool simplified) {
  QueryBuilder b(simplified ? "Q5S" : "Q5", catalog);
  b.AddRelation("region", "r");
  b.AddRelation("nation", "n");
  b.AddRelation("customer", "c");
  b.AddRelation("orders", "o");
  b.AddRelation("lineitem", "l");
  b.AddRelation("supplier", "s");
  b.Join("r", "r_regionkey", "n", "n_regionkey");
  b.Join("n", "n_nationkey", "c", "c_nationkey");
  b.Join("c", "c_custkey", "o", "o_custkey");
  b.Join("o", "o_orderkey", "l", "l_orderkey");
  b.Join("l", "l_suppkey", "s", "s_suppkey");
  b.Join("s", "s_nationkey", "n", "n_nationkey");
  b.FilterStr("r", "r_name", PredOp::kEq, "ASIA");
  b.Filter("o", "o_orderdate", PredOp::kBetween, TpchDate(1994, 1, 1),
           TpchDate(1994, 12, 31));
  b.Project("n", "n_name").Project("l", "l_extendedprice");
  if (!simplified) {
    b.GroupBy("n", "n_name");
    b.Aggregate(AggFn::kSum, "l", "l_extendedprice");
  }
  return b.Build();
}

QuerySpec MakeQ10(Catalog* catalog) {
  QueryBuilder b("Q10", catalog);
  b.AddRelation("customer", "c");
  b.AddRelation("orders", "o");
  b.AddRelation("lineitem", "l");
  b.AddRelation("nation", "n");
  b.Join("c", "c_custkey", "o", "o_custkey");
  b.Join("o", "o_orderkey", "l", "l_orderkey");
  b.Join("c", "c_nationkey", "n", "n_nationkey");
  b.Filter("o", "o_orderdate", PredOp::kBetween, TpchDate(1993, 10, 1),
           TpchDate(1993, 12, 31));
  b.FilterStr("l", "l_returnflag", PredOp::kEq, "R");
  b.GroupBy("c", "c_custkey").GroupBy("c", "c_name").GroupBy("n", "n_name");
  b.Aggregate(AggFn::kSum, "l", "l_extendedprice");
  return b.Build();
}

QuerySpec MakeQ1(Catalog* catalog) {
  QueryBuilder b("Q1", catalog);
  b.AddRelation("lineitem", "l");
  b.Filter("l", "l_shipdate", PredOp::kLe, TpchDate(1998, 9, 2));
  b.GroupBy("l", "l_returnflag").GroupBy("l", "l_linestatus");
  b.Aggregate(AggFn::kSum, "l", "l_quantity");
  b.Aggregate(AggFn::kSum, "l", "l_extendedprice");
  b.Aggregate(AggFn::kCount);
  return b.Build();
}

QuerySpec MakeQ6(Catalog* catalog) {
  QueryBuilder b("Q6", catalog);
  b.AddRelation("lineitem", "l");
  b.Filter("l", "l_shipdate", PredOp::kBetween, TpchDate(1994, 1, 1), TpchDate(1994, 12, 31));
  b.Filter("l", "l_discount", PredOp::kBetween, 5, 7);
  b.Filter("l", "l_quantity", PredOp::kLt, 24);
  b.Aggregate(AggFn::kSum, "l", "l_extendedprice");
  return b.Build();
}

// The paper's hand-built eight-way join (Table 2). The aggregate target is
// simplified to sum(l_extendedprice); the paper's expression multiplies in
// the discount, which does not affect plan choice.
QuerySpec MakeQ8Join(Catalog* catalog, bool simplified) {
  QueryBuilder b(simplified ? "Q8JoinS" : "Q8Join", catalog);
  b.AddRelation("orders", "o");
  b.AddRelation("lineitem", "l");
  b.AddRelation("customer", "c");
  b.AddRelation("part", "p");
  b.AddRelation("partsupp", "ps");
  b.AddRelation("supplier", "s");
  b.AddRelation("nation", "n");
  b.AddRelation("region", "r");
  b.Join("o", "o_orderkey", "l", "l_orderkey");
  b.Join("c", "c_custkey", "o", "o_custkey");
  b.Join("p", "p_partkey", "l", "l_partkey");
  b.Join("ps", "ps_partkey", "p", "p_partkey");
  b.Join("s", "s_suppkey", "ps", "ps_suppkey");
  b.Join("r", "r_regionkey", "n", "n_regionkey");
  b.Join("s", "s_nationkey", "n", "n_nationkey");
  b.Project("c", "c_name").Project("p", "p_name").Project("s", "s_name");
  if (!simplified) {
    b.GroupBy("c", "c_name").GroupBy("p", "p_name").GroupBy("ps", "ps_availqty");
    b.GroupBy("s", "s_name").GroupBy("o", "o_custkey").GroupBy("r", "r_name");
    b.GroupBy("n", "n_name");
    b.Aggregate(AggFn::kSum, "l", "l_extendedprice");
  }
  return b.Build();
}

}  // namespace

QuerySpec MakeTpchQuery(Catalog* catalog, const std::string& name) {
  if (name == "Q1") return MakeQ1(catalog);
  if (name == "Q3") return MakeQ3(catalog, false);
  if (name == "Q3S") return MakeQ3(catalog, true);
  if (name == "Q5") return MakeQ5(catalog, false);
  if (name == "Q5S") return MakeQ5(catalog, true);
  if (name == "Q6") return MakeQ6(catalog);
  if (name == "Q10") return MakeQ10(catalog);
  if (name == "Q8Join") return MakeQ8Join(catalog, false);
  if (name == "Q8JoinS") return MakeQ8Join(catalog, true);
  IQRO_CHECK(false);
}

std::vector<std::string> TpchQueryNames() {
  return {"Q1", "Q3", "Q3S", "Q5", "Q5S", "Q6", "Q10", "Q8Join", "Q8JoinS"};
}

std::vector<std::string> JoinQueryNames() { return {"Q5", "Q5S", "Q10", "Q8Join", "Q8JoinS"}; }

}  // namespace iqro
