// TPC-H-like synthetic data generator (substitute for dbgen + the skewed
// TPC-D generator [22]; see DESIGN.md §4). Produces the eight TPC-H tables
// with consistent foreign keys, optional Zipf skew on foreign-key choices,
// and a per-partition "drift" knob that rotates the skew hotspot — used to
// emulate the paper's partitioned skewed executions (Fig. 6).
//
// Dates are encoded as yyyymmdd integers (order-preserving); strings are
// dictionary codes.
#ifndef IQRO_WORKLOAD_TPCH_GEN_H_
#define IQRO_WORKLOAD_TPCH_GEN_H_

#include <cstdint>

#include "catalog/catalog.h"

namespace iqro {

struct TpchConfig {
  /// Row counts scale linearly: lineitem ~ 6M x scale_factor.
  double scale_factor = 0.01;
  /// Zipf skew exponent for foreign-key choices; 0 = uniform (TPC-H), the
  /// paper's skewed runs use 0.5.
  double zipf_theta = 0.0;
  /// Rotates the skew hotspot; different values model data partitions with
  /// different distributions (uniform data ignores it).
  uint32_t partition = 0;
  uint64_t seed = 42;
};

/// Creates (or clears and refills) the eight TPC-H tables in `catalog`,
/// builds primary/foreign-key hash indexes and clusters each table on its
/// primary key.
void GenerateTpch(Catalog* catalog, const TpchConfig& config);

/// Encodes a calendar date as an order-preserving int64.
constexpr int64_t TpchDate(int year, int month, int day) {
  return static_cast<int64_t>(year) * 10000 + month * 100 + day;
}

}  // namespace iqro

#endif  // IQRO_WORKLOAD_TPCH_GEN_H_
