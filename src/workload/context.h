// QueryContext: everything needed to optimize (and re-optimize) one query —
// join graph, bound statistics, summaries, cost model and the shared plan
// enumerator. One context is shared by all optimizer implementations under
// comparison, which is how the evaluation keeps "common code across the
// implementations" (§5).
#ifndef IQRO_WORKLOAD_CONTEXT_H_
#define IQRO_WORKLOAD_CONTEXT_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "cost/cost_model.h"
#include "enumerate/plan_enumerator.h"
#include "query/join_graph.h"
#include "query/query_spec.h"
#include "stats/stats_registry.h"
#include "stats/summary.h"
#include "stats/table_stats.h"

namespace iqro {

struct QueryContext {
  QuerySpec query;
  std::unique_ptr<JoinGraph> graph;
  StatsRegistry registry;
  std::unique_ptr<SummaryCalculator> summaries;
  std::unique_ptr<CostModel> cost_model;
  PropTable props;
  std::unique_ptr<PlanEnumerator> enumerator;
};

/// Collects statistics for every table in `catalog`.
std::vector<TableStats> CollectCatalogStats(const Catalog& catalog, int histogram_buckets = 32);

/// Wires a full optimization context for `query`: binds statistics from
/// `per_table_stats`, freezes the registry, and shares one enumerator.
std::unique_ptr<QueryContext> MakeQueryContext(const Catalog* catalog, QuerySpec query,
                                               const std::vector<TableStats>& per_table_stats,
                                               CostParams cost_params = CostParams{});

}  // namespace iqro

#endif  // IQRO_WORKLOAD_CONTEXT_H_
