#include "workload/context.h"

#include "query/bind_stats.h"

namespace iqro {

std::vector<TableStats> CollectCatalogStats(const Catalog& catalog, int histogram_buckets) {
  std::vector<TableStats> stats(static_cast<size_t>(catalog.num_tables()));
  for (int t = 0; t < catalog.num_tables(); ++t) {
    stats[static_cast<size_t>(t)] = CollectTableStats(catalog.table(t), histogram_buckets);
  }
  return stats;
}

std::unique_ptr<QueryContext> MakeQueryContext(const Catalog* catalog, QuerySpec query,
                                               const std::vector<TableStats>& per_table_stats,
                                               CostParams cost_params) {
  auto ctx = std::make_unique<QueryContext>();
  ctx->query = std::move(query);
  ctx->graph = std::make_unique<JoinGraph>(ctx->query);
  BindStats(ctx->query, per_table_stats, &ctx->registry);
  ctx->registry.Freeze();
  ctx->summaries = std::make_unique<SummaryCalculator>(&ctx->registry);
  ctx->cost_model = std::make_unique<CostModel>(ctx->summaries.get(), cost_params);
  ctx->enumerator = std::make_unique<PlanEnumerator>(&ctx->query, ctx->graph.get(), catalog,
                                                     &ctx->props);
  return ctx;
}

}  // namespace iqro
