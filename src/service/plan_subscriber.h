// PlanSubscriber: the notification edge between the re-optimizer and the
// thing that runs plans.
//
// Re-optimization systems that act on plan changes mid-flight hinge on the
// optimizer *publishing* "your best plan is now X, it was Y, here is how
// much moved" — an executor then decides whether switching pays (the
// mid-query re-optimization literature's cost/benefit gate). A ReoptSession
// delivers exactly that: after each flush, every registered query whose
// canonical best plan actually changed fires one PlanChangeEvent to its
// attached subscriber.
//
// ## Exactness
//
// "Actually changed" is computed from the winner closure (the PlanDigest of
// core/plan_digest.h), never from the dirty set: a flush that seeds and
// re-derives half the memo but lands on the same best plan fires nothing,
// and net-zero churn (absorbed by the coalescer) fires nothing. The
// differential harness proves the exactness over the full scenario
// rotation: an event fires iff CanonicalDumpState() changed for that query,
// and the event's old/new costs match the from-scratch oracle
// (docs/TESTING.md "Notification oracle").
//
// ## Delivery
//
// Events fire on the flushing thread, after every dispatched pass has
// completed and the registry's reader lock has been released, in
// registration order — exactly once per flush per changed query, in serial
// and pooled dispatch alike. Reentrancy rules (what a callback may do) are
// specified in docs/API.md and on ReoptSession.
// ## Failure events
//
// The session's failure domain (docs/ARCHITECTURE.md "Failure domains")
// speaks through the same subscriber: when a query's flush pass throws or
// blows its work budget, the session quarantines it and fires one
// QueryQuarantinedEvent (and later a QueryRehabilitatedEvent when a
// from-scratch rebuild restores it). Both are default-no-op virtuals so
// existing subscribers compile unchanged. Unlike plan changes, failure
// events are delivered at most once and never replayed after a throwing
// callback — the authoritative state is ReoptSession::query_state().
#ifndef IQRO_SERVICE_PLAN_SUBSCRIBER_H_
#define IQRO_SERVICE_PLAN_SUBSCRIBER_H_

#include <cstdint>
#include <string>

#include "core/plan_digest.h"

namespace iqro {

class DeclarativeOptimizer;

struct PlanChangeEvent {
  /// The session-stable id of the query that changed (QueryHandle::id()).
  int query_id = -1;
  /// The changed query's optimizer — safe to inspect from the callback
  /// (GetBestPlan, BestCost, metrics); the flush that produced the change
  /// is complete.
  DeclarativeOptimizer* optimizer = nullptr;
  /// Registry epoch of the drained batch this flush applied
  /// (StatsRegistry::DrainedBatch::epoch) — matches the optimizer's
  /// stats_epoch() after the flush.
  uint64_t flush_epoch = 0;
  /// Ordinal of the firing flush (ReoptSessionMetrics::flushes at fire
  /// time): lets a consumer correlate events with exported FlushReports.
  int64_t flush_index = 0;
  /// Root BestCost before/after the flush. `old_cost` is the value the
  /// subscriber was last notified at (or the plan at attach time).
  double old_cost = 0;
  double new_cost = 0;
  /// How much of the plan moved: changed operator count, surviving
  /// join-order prefix (core/plan_digest.h).
  PlanDiffSummary diff;
};

/// A query's flush pass failed (threw, failed an allocation, or exceeded
/// the session's per-query work budget) and the query was quarantined: its
/// optimizer has been torn down to a consistent empty state (optimized()
/// == false — do NOT read plans from it), it is skipped by subsequent
/// flushes, and the session will retry a from-scratch rebuild on the
/// backoff schedule unless it is parked.
struct QueryQuarantinedEvent {
  enum class Reason : uint8_t {
    kException,   // the pass threw (including allocation failure)
    kWorkBudget,  // the fixpoint exceeded per_query_work_budget
  };
  int query_id = -1;
  /// The quarantined optimizer — torn down; optimized() is false until a
  /// rebuild succeeds. Inspect metrics, not plans.
  DeclarativeOptimizer* optimizer = nullptr;
  /// Registry epoch of the batch whose dispatch failed.
  uint64_t flush_epoch = 0;
  int64_t flush_index = 0;
  Reason reason = Reason::kException;
  /// what() of the failing exception (best effort).
  std::string message;
  /// Strikes accumulated so far, this failure included.
  int strikes = 0;
  /// True when strikes reached the limit: no further retries; the query
  /// stays poisoned until released.
  bool parked = false;
  /// Flush/poll ticks until the next rehabilitation attempt (0 when
  /// parked).
  int64_t retry_in_ticks = 0;
};

/// A quarantined query was restored: a from-scratch rebuild against the
/// current statistics succeeded, so its plan state is exactly what an
/// optimizer that never failed would hold. Plan-change notification
/// resumes; if the plan differs from the last one this subscriber saw, a
/// PlanChangeEvent against that old baseline follows in the same flush.
struct QueryRehabilitatedEvent {
  int query_id = -1;
  DeclarativeOptimizer* optimizer = nullptr;
  uint64_t flush_epoch = 0;
  int64_t flush_index = 0;
  /// Strikes the query had accumulated before this rebuild cleared them.
  int strikes_cleared = 0;
};

class PlanSubscriber {
 public:
  virtual ~PlanSubscriber() = default;
  /// Fired per the delivery contract above. The event is valid only for
  /// the duration of the call; copy what you keep.
  virtual void OnPlanChange(const PlanChangeEvent& event) = 0;
  /// Failure-domain notifications (see "Failure events" above). Delivered
  /// before the flush's plan changes, in registration order, on the
  /// flushing thread. Default no-op.
  virtual void OnQueryQuarantined(const QueryQuarantinedEvent& event) { (void)event; }
  virtual void OnQueryRehabilitated(const QueryRehabilitatedEvent& event) { (void)event; }
};

}  // namespace iqro

#endif  // IQRO_SERVICE_PLAN_SUBSCRIBER_H_
