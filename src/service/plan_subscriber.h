// PlanSubscriber: the notification edge between the re-optimizer and the
// thing that runs plans.
//
// Re-optimization systems that act on plan changes mid-flight hinge on the
// optimizer *publishing* "your best plan is now X, it was Y, here is how
// much moved" — an executor then decides whether switching pays (the
// mid-query re-optimization literature's cost/benefit gate). A ReoptSession
// delivers exactly that: after each flush, every registered query whose
// canonical best plan actually changed fires one PlanChangeEvent to its
// attached subscriber.
//
// ## Exactness
//
// "Actually changed" is computed from the winner closure (the PlanDigest of
// core/plan_digest.h), never from the dirty set: a flush that seeds and
// re-derives half the memo but lands on the same best plan fires nothing,
// and net-zero churn (absorbed by the coalescer) fires nothing. The
// differential harness proves the exactness over the full scenario
// rotation: an event fires iff CanonicalDumpState() changed for that query,
// and the event's old/new costs match the from-scratch oracle
// (docs/TESTING.md "Notification oracle").
//
// ## Delivery
//
// Events fire on the flushing thread, after every dispatched pass has
// completed and the registry's reader lock has been released, in
// registration order — exactly once per flush per changed query, in serial
// and pooled dispatch alike. Reentrancy rules (what a callback may do) are
// specified in docs/API.md and on ReoptSession.
#ifndef IQRO_SERVICE_PLAN_SUBSCRIBER_H_
#define IQRO_SERVICE_PLAN_SUBSCRIBER_H_

#include <cstdint>

#include "core/plan_digest.h"

namespace iqro {

class DeclarativeOptimizer;

struct PlanChangeEvent {
  /// The session-stable id of the query that changed (QueryHandle::id()).
  int query_id = -1;
  /// The changed query's optimizer — safe to inspect from the callback
  /// (GetBestPlan, BestCost, metrics); the flush that produced the change
  /// is complete.
  DeclarativeOptimizer* optimizer = nullptr;
  /// Registry epoch of the drained batch this flush applied
  /// (StatsRegistry::DrainedBatch::epoch) — matches the optimizer's
  /// stats_epoch() after the flush.
  uint64_t flush_epoch = 0;
  /// Ordinal of the firing flush (ReoptSessionMetrics::flushes at fire
  /// time): lets a consumer correlate events with exported FlushReports.
  int64_t flush_index = 0;
  /// Root BestCost before/after the flush. `old_cost` is the value the
  /// subscriber was last notified at (or the plan at attach time).
  double old_cost = 0;
  double new_cost = 0;
  /// How much of the plan moved: changed operator count, surviving
  /// join-order prefix (core/plan_digest.h).
  PlanDiffSummary diff;
};

class PlanSubscriber {
 public:
  virtual ~PlanSubscriber() = default;
  /// Fired per the delivery contract above. The event is valid only for
  /// the duration of the call; copy what you keep.
  virtual void OnPlanChange(const PlanChangeEvent& event) = 0;
};

}  // namespace iqro

#endif  // IQRO_SERVICE_PLAN_SUBSCRIBER_H_
