// Versioned on-disk snapshot container for the service layer's
// warm-restart path (ReoptSession::SaveSnapshot/LoadSnapshot).
//
// File format (version 1, little-endian, common/serialize.h encoding):
//
//   8 bytes   magic "IQROSNAP"
//   u32       container version
//   u32       section count
//   per section:
//     u32     section type (opaque to this module; the session assigns
//             meaning — stats state, per-query memo seeds, ...)
//     u64     payload length
//     u64     FNV-1a 64 checksum of the payload bytes
//     bytes   payload
//
// Durability protocol: WriteAtomic() writes the full image to
// `path + ".tmp"` and renames it over `path` — a crash at any point leaves
// either the previous complete snapshot or none, never a torn file. The
// two IQRO_FAULT_POINT sites ("snapshot.write" before the temp-file write,
// "snapshot.rename" before the rename) let tests inject a crash on either
// side of the commit point and assert exactly that: the pre-existing good
// snapshot survives and the temp file is cleaned up.
//
// Reading is all-or-nothing: SnapshotReader's constructor parses and
// checksums EVERY section before returning; any defect raises a typed
// SerializeError (kIo / kBadMagic / kBadVersion / kTruncated / kChecksum /
// kBadSection) and no partially decoded state escapes. Versioning rule:
// a reader accepts exactly its own container version — the format is a
// cache of rebuildable state, so "reject and rebuild from scratch" IS the
// backward-compatibility story (documented in docs/API.md).
#ifndef IQRO_SERVICE_SNAPSHOT_H_
#define IQRO_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace iqro::service {

inline constexpr char kSnapshotMagic[8] = {'I', 'Q', 'R', 'O', 'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Accumulates typed sections, then commits them to disk atomically.
class SnapshotWriter {
 public:
  /// Appends one section; sections are written (and read back) in
  /// insertion order. The payload is moved in.
  void AddSection(uint32_t type, std::string payload);

  /// Serializes the container to `path + ".tmp"` and renames it over
  /// `path`. Throws SerializeError{kIo} on any filesystem failure (the
  /// temp file is removed; a pre-existing `path` is left untouched).
  /// Fault points: "snapshot.write" fires before the temp write,
  /// "snapshot.rename" before the commit rename.
  void WriteAtomic(const std::string& path) const;

  /// The serialized container image (what WriteAtomic persists) — exposed
  /// for tests that corrupt specific offsets.
  std::string Image() const;

 private:
  struct Section {
    uint32_t type;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// Parses and fully validates a snapshot file (or in-memory image) on
/// construction; see the header comment for the rejection contract.
class SnapshotReader {
 public:
  struct Section {
    uint32_t type = 0;
    std::string payload;
  };

  /// Reads and validates the file at `path`.
  explicit SnapshotReader(const std::string& path);

  /// Validates an already-loaded container image (tag type disambiguates
  /// from the path constructor).
  struct FromImage {};
  SnapshotReader(FromImage, const std::string& image);

  const std::vector<Section>& sections() const { return sections_; }

 private:
  void Parse(const std::string& image);

  std::vector<Section> sections_;
};

}  // namespace iqro::service

#endif  // IQRO_SERVICE_SNAPSHOT_H_
