#include "service/flush_policy.h"

#include <algorithm>

#include "common/check.h"

namespace iqro {

namespace {

class SteadyClock final : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::now();
  }
};

}  // namespace

const Clock* Clock::Real() {
  static const SteadyClock* clock = new SteadyClock;
  return clock;
}

CountPolicy::CountPolicy(int64_t flush_after) : flush_after_(flush_after) {
  IQRO_CHECK(flush_after_ >= 1);
}

bool CountPolicy::ShouldFlush(const FlushPolicyContext& ctx) {
  return ctx.mutations_since_flush >= flush_after_;
}

DeadlinePolicy::DeadlinePolicy(std::chrono::milliseconds deadline, const Clock* clock)
    : deadline_(deadline), clock_(clock) {
  IQRO_CHECK(deadline_.count() >= 0);
  IQRO_CHECK(clock_ != nullptr);
}

bool DeadlinePolicy::ShouldFlush(const FlushPolicyContext& ctx) {
  // A Poll() with nothing recorded since the last flush has nothing to age:
  // stay disarmed so a later burst starts its own window.
  if (ctx.mutations_since_flush <= 0 && ctx.pending_stats == 0) return false;
  if (!armed_) {
    armed_ = true;
    batch_opened_ = clock_->Now();
  }
  return clock_->Now() - batch_opened_ >= deadline_;
}

void DeadlinePolicy::OnFlush(const FlushOptStats& stats, int64_t changes,
                             size_t pending_after) {
  (void)stats;
  (void)changes;
  if (pending_after > 0) {
    // Mutations raced this flush into the next epoch's batch: their wait
    // is already running, so the window restarts now rather than at the
    // next consultation (which, Poll()-driven, could be a full poll
    // interval away — silently stretching the staleness bound).
    armed_ = true;
    batch_opened_ = clock_->Now();
  } else {
    armed_ = false;
  }
}

CostGatedPolicy::CostGatedPolicy(double work_budget, double smoothing)
    : work_budget_(work_budget), smoothing_(smoothing) {
  IQRO_CHECK(work_budget_ > 0);
  IQRO_CHECK(smoothing_ > 0 && smoothing_ <= 1.0);
}

bool CostGatedPolicy::ShouldFlush(const FlushPolicyContext& ctx) {
  if (ctx.mutations_since_flush <= 0 && ctx.pending_stats == 0) return false;
  // No history: flush eagerly to calibrate (header comment).
  if (!has_history_) return true;
  const double estimate = static_cast<double>(ctx.pending_stats) * work_per_change();
  return estimate >= work_budget_;
}

void CostGatedPolicy::OnFlush(const FlushOptStats& stats, int64_t changes,
                              size_t pending_after) {
  (void)stats;               // per-query observations arrive via OnQueryPassWork
  (void)pending_after;       // work estimation keys on history, not survivors
  if (changes <= 0) return;  // absorbed batch: no work observation to learn from
  // A dispatched flush — even one whose every pass was prefiltered away,
  // leaving no OnQueryPassWork observation — ends calibration. The
  // work_per_change() floor (max(1.0, sum)) then makes zero-work history
  // converge to batching ~work_budget pending statistics instead of
  // wedging auto-flush at an estimate of 0 or staying in eager
  // per-mutation mode forever; real observations take over as soon as a
  // pass does actual work.
  has_history_ = true;
}

void CostGatedPolicy::OnQueryPassWork(int query_id, int64_t fixpoint_work,
                                      int64_t changes) {
  if (changes <= 0) return;
  const double observed =
      static_cast<double>(fixpoint_work) / static_cast<double>(changes);
  for (auto& entry : per_query_) {
    if (entry.first != query_id) continue;
    const double next = (1.0 - smoothing_) * entry.second + smoothing_ * observed;
    ewma_sum_ += next - entry.second;
    entry.second = next;
    return;
  }
  per_query_.emplace_back(query_id, observed);
  ewma_sum_ += observed;
}

void CostGatedPolicy::OnQueryUnregistered(int query_id) {
  for (auto it = per_query_.begin(); it != per_query_.end(); ++it) {
    if (it->first != query_id) continue;
    ewma_sum_ -= it->second;
    per_query_.erase(it);
    break;
  }
  if (per_query_.empty()) ewma_sum_ = 0;  // shed accumulated float drift
}

double CostGatedPolicy::work_per_change() const {
  if (!has_history_) return 0;
  return std::max(1.0, ewma_sum_);
}

double CostGatedPolicy::query_work_per_change(int query_id) const {
  for (const auto& entry : per_query_) {
    if (entry.first == query_id) return entry.second;
  }
  return 0;
}

}  // namespace iqro
