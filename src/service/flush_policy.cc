#include "service/flush_policy.h"

#include <algorithm>

#include "common/check.h"

namespace iqro {

namespace {

class SteadyClock final : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::now();
  }
};

}  // namespace

const Clock* Clock::Real() {
  static const SteadyClock* clock = new SteadyClock;
  return clock;
}

CountPolicy::CountPolicy(int64_t flush_after) : flush_after_(flush_after) {
  IQRO_CHECK(flush_after_ >= 1);
}

bool CountPolicy::ShouldFlush(const FlushPolicyContext& ctx) {
  return ctx.mutations_since_flush >= flush_after_;
}

DeadlinePolicy::DeadlinePolicy(std::chrono::milliseconds deadline, const Clock* clock)
    : deadline_(deadline), clock_(clock) {
  IQRO_CHECK(deadline_.count() >= 0);
  IQRO_CHECK(clock_ != nullptr);
}

bool DeadlinePolicy::ShouldFlush(const FlushPolicyContext& ctx) {
  // A Poll() with nothing recorded since the last flush has nothing to age:
  // stay disarmed so a later burst starts its own window.
  if (ctx.mutations_since_flush <= 0 && ctx.pending_stats == 0) return false;
  if (!armed_) {
    armed_ = true;
    batch_opened_ = clock_->Now();
  }
  return clock_->Now() - batch_opened_ >= deadline_;
}

void DeadlinePolicy::OnFlush(const FlushOptStats& stats, int64_t changes,
                             size_t pending_after) {
  (void)stats;
  (void)changes;
  if (pending_after > 0) {
    // Mutations raced this flush into the next epoch's batch: their wait
    // is already running, so the window restarts now rather than at the
    // next consultation (which, Poll()-driven, could be a full poll
    // interval away — silently stretching the staleness bound).
    armed_ = true;
    batch_opened_ = clock_->Now();
  } else {
    armed_ = false;
  }
}

CostGatedPolicy::CostGatedPolicy(double work_budget, double smoothing)
    : work_budget_(work_budget), smoothing_(smoothing) {
  IQRO_CHECK(work_budget_ > 0);
  IQRO_CHECK(smoothing_ > 0 && smoothing_ <= 1.0);
}

bool CostGatedPolicy::ShouldFlush(const FlushPolicyContext& ctx) {
  if (ctx.mutations_since_flush <= 0 && ctx.pending_stats == 0) return false;
  // No history: flush eagerly to calibrate (header comment).
  if (!has_history_) return true;
  const double estimate = static_cast<double>(ctx.pending_stats) * work_per_change_;
  return estimate >= work_budget_;
}

void CostGatedPolicy::OnFlush(const FlushOptStats& stats, int64_t changes,
                              size_t pending_after) {
  (void)pending_after;       // work estimation keys on history, not survivors
  if (changes <= 0) return;  // absorbed batch: no work observation to learn from
  // Floored at one work unit per change: a zero-work flush (every query
  // prefiltered away) must neither wedge the estimate at 0 (auto-flush
  // would never fire again) nor be skipped outright (the policy would stay
  // in eager per-mutation calibration forever while churn keeps missing
  // the registered queries). With the floor, zero-work history converges
  // to batching ~work_budget pending statistics, and real observations
  // take over as soon as a pass does actual work.
  const double observed =
      std::max(1.0, static_cast<double>(stats.fixpoint_steps + stats.eps_seeded) /
                        static_cast<double>(changes));
  work_per_change_ =
      has_history_ ? (1.0 - smoothing_) * work_per_change_ + smoothing_ * observed
                   : observed;
  has_history_ = true;
}

}  // namespace iqro
