// Session-level counter types, split out of reopt_session.h so the flush
// policies (service/flush_policy.h) and the metrics exporter
// (service/metrics_exporter.h) can speak them without pulling in the
// session itself.
#ifndef IQRO_SERVICE_SESSION_METRICS_H_
#define IQRO_SERVICE_SESSION_METRICS_H_

#include <cstdint>

namespace iqro {

struct ReoptSessionMetrics {
  int64_t mutations_observed = 0;  // value-changing post-freeze mutations seen
  int64_t flushes = 0;             // Flush() calls that dispatched >= 1 change
  int64_t empty_flushes = 0;       // batches absorbed entirely by coalescing
  int64_t changes_flushed = 0;     // coalesced StatChanges dispatched
  int64_t reopt_passes = 0;        // per-optimizer ReoptimizeBatch fixpoints
  int64_t queries_skipped = 0;     // registered queries untouched by a flush
  int64_t eps_seeded = 0;          // memo entries seeded across all passes
  int64_t plan_changes = 0;        // PlanChangeEvents delivered to subscribers
  // ---- failure domain (docs/ARCHITECTURE.md "Failure domains") ----
  int64_t quarantines = 0;         // failed passes/rebuilds (strikes recorded)
  int64_t rehabilitations = 0;     // quarantined queries restored by a rebuild
  int64_t queries_parked = 0;      // queries that exhausted their strikes
  int64_t watermark_flushes = 0;   // flushes forced by the soft watermark
  // ---- memo lifecycle (docs/ARCHITECTURE.md "Memo lifecycle") ----
  int64_t evictions = 0;           // memos spilled to a serialized seed
  int64_t rehydrations = 0;        // evicted memos restored (seed or rebuild)
  /// Gauge, not a counter: estimated resident memo bytes across healthy
  /// non-evicted queries, as of the end of the last flush that measured it
  /// (every dispatched flush; also refreshed by EvictQuery/RehydrateQuery).
  int64_t resident_memo_bytes = 0;
};

/// Aggregated OptMetrics deltas of the most recent non-empty flush, summed
/// over every dispatched pass. Collected from per-task results after the
/// futures join (parallel mode) or inline (serial mode) — never written by
/// two threads at once, since only the thread that won `in_flush_` writes
/// it. Read it only when no flush can be in flight (see
/// ReoptSession::metrics()).
struct FlushOptStats {
  int64_t passes = 0;          // ReoptimizeBatch fixpoints this flush
  int64_t eps_seeded = 0;      // memo entries seeded
  int64_t eps_scanned = 0;     // seeding candidates the scope index examined
  int64_t fixpoint_steps = 0;  // sum of per-optimizer round_steps
  int64_t touched_eps = 0;     // sum of per-optimizer round_touched_eps
  int64_t touched_alts = 0;    // sum of per-optimizer round_touched_alts
  int64_t tasks_enqueued = 0;  // worklist pushes across all passes
};

}  // namespace iqro

#endif  // IQRO_SERVICE_SESSION_METRICS_H_
