// SharedSummaryCache: the session-level implementation of the
// SummarySharedCache interface (stats/summary.h) — one epoch-keyed summary
// store shared by every query registered in a ReoptSession, so overlapping
// relation sets pay for Fn_scansummary/Fn_nonscansummary once per flush
// epoch instead of once per query.
//
// Epoch/locking contract (docs/ARCHITECTURE.md "Shared summary cache"):
//  * The store holds values for exactly ONE registry epoch at a time.
//    Insert at a newer epoch clears and re-keys; Lookup/Insert at an older
//    epoch than the store's miss/no-op — a straggler can never resurrect a
//    stale value.
//  * During a flush the registry's reader lock pins the epoch for the whole
//    dispatch window, so concurrent workers always agree on the epoch and
//    the clear-on-advance can never run under a reader's feet. Values are
//    returned by copy (Summary is two doubles), so there is no reference
//    lifetime to protect, unlike the per-calculator cache.
//  * Internally locked (shared_mutex: hit path is a shared lock + find)
//    whether or not the session dispatches on a pool — the serial path pays
//    an uncontended lock.
//  * Racing inserts of one (epoch, s) write identical values (a Summary is
//    a pure function of registry state at that epoch); first insert wins.
#ifndef IQRO_SERVICE_SHARED_SUMMARY_CACHE_H_
#define IQRO_SERVICE_SHARED_SUMMARY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/relset.h"
#include "stats/summary.h"

namespace iqro {

class SharedSummaryCache final : public SummarySharedCache {
 public:
  bool Lookup(uint64_t epoch, RelSet s, Summary* out) const override;
  void Insert(uint64_t epoch, RelSet s, const Summary& value) override;

  /// Lookup outcomes since construction (relaxed; exact once quiesced —
  /// read them under the same rules as ReoptSession::metrics()).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Entries stored for the current epoch.
  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  uint64_t epoch_ = 0;
  std::unordered_map<RelSet, Summary> cache_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
};

}  // namespace iqro

#endif  // IQRO_SERVICE_SHARED_SUMMARY_CACHE_H_
