// FlushPolicy: when does a ReoptSession turn its pending mutation stream
// into a flush?
//
// PR 3 hard-coded one answer (a raw mutation count, `auto_flush_after`).
// Production feedback loops want different trade-offs: bound the staleness
// *window* (a deadline), or bound the *work* a flush will cost (a batch
// that has grown to cover half the memo re-fixpoints no cheaper than two
// batches — flush before the estimate crosses the budget). This header
// makes the trigger a strategy object; the session evaluates it on the
// same re-entrancy-safe subscriber path the old counter used
// (ReoptSession::OnStatsMutated), plus on demand via ReoptSession::Poll()
// for time-based policies that must fire without a mutation arriving.
//
// ## Contract
//
//  * ShouldFlush() is consulted (a) after every value-changing recorded
//    mutation, with the under-lock StatsMutationEvent snapshot mapped into
//    the context, and (b) on every Poll(). Returning true asks the session
//    to flush now; the session may still decline when another flush is in
//    flight (the next mutation or Poll re-asks).
//  * OnFlush() is called at the end of every Flush() that drained the
//    registry — including one whose batch coalesced to nothing — with the
//    aggregated FlushOptStats, the number of StatChanges dispatched
//    (0 for an absorbed batch), and the count of statistics already
//    pending again (mutations that raced the flush into the next epoch's
//    batch). This is the policy's history feed and its reset hook.
//  * Both methods are invoked under the session's policy mutex: calls are
//    serialized across mutator threads and the coordinator, so policies
//    need no internal locking. They must not call back into the session or
//    the registry (that would deadlock on the policy mutex or the registry
//    lock; the decision is pure), and must not throw — OnFlush runs from
//    the flush epilogue's destructor, which fires even when a subscriber
//    callback threw (the flush did drain; the policy's reset is owed).
//  * One policy instance serves one session. Sessions share ownership of
//    the policy (shared_ptr) so ReoptSessionOptions stays copyable.
//
// Time-based policies take a Clock so tests can drive them without
// sleeping; everything here is single-clock, steady, and monotonic.
#ifndef IQRO_SERVICE_FLUSH_POLICY_H_
#define IQRO_SERVICE_FLUSH_POLICY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "service/session_metrics.h"

namespace iqro {

/// Injectable monotonic time source (DeadlinePolicy). The default
/// Real() clock reads std::chrono::steady_clock; tests substitute a
/// hand-advanced fake.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::chrono::steady_clock::time_point Now() const = 0;
  /// Process-wide steady-clock instance (never null, never destroyed).
  static const Clock* Real();
};

/// What a policy may look at when deciding. Snapshot semantics: the fields
/// describe the state at one recorded mutation (OnStatsMutated) or at one
/// Poll() probe; they do not update while ShouldFlush runs.
struct FlushPolicyContext {
  /// Value-changing mutations observed since the last Flush() drained
  /// (successful or absorbed). The CountPolicy input.
  int64_t mutations_since_flush = 0;
  /// Distinct statistics with a pending delta — the pending-scope mask
  /// size. From the under-lock mutation snapshot (mutation path) or a
  /// locked registry probe (Poll). The CostGatedPolicy input.
  size_t pending_stats = 0;
  /// Registry epoch after the triggering mutation; 0 on a Poll() probe.
  uint64_t epoch = 0;
};

class FlushPolicy {
 public:
  virtual ~FlushPolicy() = default;

  /// Flush now? See the contract above for when this is consulted.
  virtual bool ShouldFlush(const FlushPolicyContext& ctx) = 0;

  /// A flush drained the registry: `stats` aggregates the dispatched
  /// passes, `changes` is the coalesced StatChange count (0 when the batch
  /// was absorbed), `pending_after` the distinct statistics already
  /// pending again at flush end — mutations that raced the flush and
  /// landed in the NEXT epoch's batch, which a time-based policy must not
  /// silently disarm on. Default: stateless policies ignore history.
  virtual void OnFlush(const FlushOptStats& stats, int64_t changes, size_t pending_after) {
    (void)stats;
    (void)changes;
    (void)pending_after;
  }

  /// Per-query work observation: called once per *affected* pass of a
  /// dispatched flush — before that flush's OnFlush, under the same policy
  /// mutex. `query_id` is the session-stable QueryHandle id,
  /// `fixpoint_work` the pass's fixpoint_steps + eps_seeded, `changes` the
  /// dispatched StatChange count (>= 1). Default: stateless policies
  /// ignore per-query history.
  virtual void OnQueryPassWork(int query_id, int64_t fixpoint_work, int64_t changes) {
    (void)query_id;
    (void)fixpoint_work;
    (void)changes;
  }

  /// `query_id` left the session (unregistered): drop any per-query state
  /// so a long-lived session doesn't accumulate dead entries. Default:
  /// no-op.
  virtual void OnQueryUnregistered(int query_id) { (void)query_id; }

  /// Stable identifier for logs and metrics export.
  virtual const char* name() const = 0;
};

/// PR 3's `auto_flush_after` as a policy: flush once N value-changing
/// mutations accumulated. The latency/batching knob when mutation *count*
/// is the right proxy for staleness.
class CountPolicy final : public FlushPolicy {
 public:
  /// `flush_after` must be >= 1.
  explicit CountPolicy(int64_t flush_after);
  bool ShouldFlush(const FlushPolicyContext& ctx) override;
  const char* name() const override { return "count"; }

 private:
  int64_t flush_after_;
};

/// Bounded staleness in wall-clock terms: flush once the oldest pending
/// mutation has waited `deadline`. Arms on the first mutation after a
/// flush; disarms on OnFlush. Deadlines are only *observed* when the
/// session consults the policy — on the next mutation or on Poll() — so a
/// deadline-driven deployment either calls Poll() from its event loop or
/// enables the session-owned timer thread
/// (ReoptSessionOptions::poll_interval), which polls for it
/// (docs/API.md "Policy contract").
class DeadlinePolicy final : public FlushPolicy {
 public:
  /// `clock` defaults to the real steady clock; tests inject a fake. Not
  /// owned; must outlive the policy.
  explicit DeadlinePolicy(std::chrono::milliseconds deadline,
                          const Clock* clock = Clock::Real());
  bool ShouldFlush(const FlushPolicyContext& ctx) override;
  /// Disarms — unless mutations raced the flush and are already pending
  /// for the next batch (`pending_after > 0`), in which case the window
  /// re-arms immediately so their wait is bounded from now, not from
  /// whenever the next consultation happens to arrive.
  void OnFlush(const FlushOptStats& stats, int64_t changes, size_t pending_after) override;
  const char* name() const override { return "deadline"; }

 private:
  std::chrono::milliseconds deadline_;
  const Clock* clock_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point batch_opened_{};
};

/// Bounded *work* per flush: estimate the re-fixpoint cost of the pending
/// batch as (pending-scope mask size) x (expected work per change, summed
/// over the registered queries), and flush once the estimate reaches
/// `work_budget` (in fixpoint-step units, the FlushOptStats::
/// fixpoint_steps + eps_seeded scale). The expectation is a *per-query*
/// EWMA fed by OnQueryPassWork — one runaway query inflates only its own
/// term, not a shared average that would distort gating for every cheap
/// query sharing the session. Until a first flush seeds the history the
/// policy flushes eagerly (every mutation): an estimate of zero history is
/// an estimate of nothing, and one eager flush is the cheapest possible
/// calibration run.
class CostGatedPolicy final : public FlushPolicy {
 public:
  /// `work_budget` must be > 0. `smoothing` in (0, 1]: EWMA weight of the
  /// newest per-query observation.
  explicit CostGatedPolicy(double work_budget, double smoothing = 0.3);
  bool ShouldFlush(const FlushPolicyContext& ctx) override;
  void OnFlush(const FlushOptStats& stats, int64_t changes, size_t pending_after) override;
  void OnQueryPassWork(int query_id, int64_t fixpoint_work, int64_t changes) override;
  void OnQueryUnregistered(int query_id) override;
  const char* name() const override { return "cost_gated"; }

  /// Effective expected-work-per-change estimate the gate multiplies the
  /// pending count by: the sum of the per-query EWMAs, floored at 1 work
  /// unit per change (so zero-work flushes — every query prefiltered away
  /// — neither wedge the estimate at 0 nor perpetuate eager mode). 0
  /// until the first non-empty flush. Exposed for tests and metrics.
  double work_per_change() const;

  /// One query's EWMA (0 when it has no observations yet).
  double query_work_per_change(int query_id) const;

 private:
  double work_budget_;
  double smoothing_;
  /// (query id, EWMA of its per-change fixpoint work). Linear scan: a
  /// session holds dozens of queries, not thousands, and the policy mutex
  /// serializes access anyway.
  std::vector<std::pair<int, double>> per_query_;
  double ewma_sum_ = 0;  // cached sum of per_query_ values
  bool has_history_ = false;
};

}  // namespace iqro

#endif  // IQRO_SERVICE_FLUSH_POLICY_H_
