#include "service/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.h"

namespace iqro::service {

namespace {

std::string IoError(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// stdio RAII so every error path closes (and the caller can unlink) the
/// temp file.
struct FileCloser {
  std::FILE* f = nullptr;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

void SnapshotWriter::AddSection(uint32_t type, std::string payload) {
  sections_.push_back({type, std::move(payload)});
}

std::string SnapshotWriter::Image() const {
  std::string image;
  ByteWriter w(&image);
  w.PutBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.PutU32(kSnapshotVersion);
  w.PutU32(static_cast<uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    w.PutU32(s.type);
    w.PutU64(s.payload.size());
    w.PutU64(Fnv1a64(s.payload.data(), s.payload.size()));
    w.PutBytes(s.payload.data(), s.payload.size());
  }
  return image;
}

void SnapshotWriter::WriteAtomic(const std::string& path) const {
  const std::string image = Image();
  const std::string tmp = path + ".tmp";
  try {
    IQRO_FAULT_POINT("snapshot.write");
    {
      FileCloser file;
      file.f = std::fopen(tmp.c_str(), "wb");
      if (file.f == nullptr) {
        throw SerializeError(SerializeError::Code::kIo, IoError("snapshot: cannot open", tmp));
      }
      if (!image.empty() && std::fwrite(image.data(), 1, image.size(), file.f) != image.size()) {
        throw SerializeError(SerializeError::Code::kIo, IoError("snapshot: short write to", tmp));
      }
      if (std::fflush(file.f) != 0) {
        throw SerializeError(SerializeError::Code::kIo, IoError("snapshot: flush failed for", tmp));
      }
    }
    IQRO_FAULT_POINT("snapshot.rename");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw SerializeError(SerializeError::Code::kIo,
                           IoError("snapshot: rename to", path));
    }
  } catch (...) {
    std::remove(tmp.c_str());  // never leave a torn temp behind
    throw;
  }
}

SnapshotReader::SnapshotReader(const std::string& path) {
  std::string image;
  {
    FileCloser file;
    file.f = std::fopen(path.c_str(), "rb");
    if (file.f == nullptr) {
      throw SerializeError(SerializeError::Code::kIo, IoError("snapshot: cannot open", path));
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file.f)) > 0) image.append(buf, n);
    if (std::ferror(file.f) != 0) {
      throw SerializeError(SerializeError::Code::kIo, IoError("snapshot: read failed for", path));
    }
  }
  Parse(image);
}

SnapshotReader::SnapshotReader(FromImage, const std::string& image) { Parse(image); }

void SnapshotReader::Parse(const std::string& image) {
  ByteReader r(image);
  if (r.remaining() < sizeof(kSnapshotMagic) ||
      std::memcmp(r.GetBytes(sizeof(kSnapshotMagic)), kSnapshotMagic,
                  sizeof(kSnapshotMagic)) != 0) {
    throw SerializeError(SerializeError::Code::kBadMagic,
                         "snapshot: missing IQROSNAP magic (not a snapshot file)");
  }
  const uint32_t version = r.GetU32();
  if (version != kSnapshotVersion) {
    throw SerializeError(SerializeError::Code::kBadVersion,
                         "snapshot: container version " + std::to_string(version) +
                             " != supported " + std::to_string(kSnapshotVersion));
  }
  const uint32_t count = r.GetU32();
  sections_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Section s;
    s.type = r.GetU32();
    const uint64_t len = r.GetU64();
    const uint64_t checksum = r.GetU64();
    if (len > r.remaining()) {
      throw SerializeError(SerializeError::Code::kTruncated,
                           "snapshot: section " + std::to_string(i) + " declares " +
                               std::to_string(len) + " bytes, only " +
                               std::to_string(r.remaining()) + " remain");
    }
    const unsigned char* bytes = r.GetBytes(static_cast<size_t>(len));
    if (Fnv1a64(bytes, static_cast<size_t>(len)) != checksum) {
      throw SerializeError(SerializeError::Code::kChecksum,
                           "snapshot: section " + std::to_string(i) + " fails its checksum");
    }
    s.payload.assign(reinterpret_cast<const char*>(bytes), static_cast<size_t>(len));
    sections_.push_back(std::move(s));
  }
  if (!r.AtEnd()) {
    throw SerializeError(SerializeError::Code::kBadSection,
                         "snapshot: " + std::to_string(r.remaining()) +
                             " trailing bytes after the last section");
  }
}

}  // namespace iqro::service
