#include "service/metrics_exporter.h"

#include <cstdio>
#include <stdexcept>

#include "bench_util/json_report.h"

namespace iqro {

namespace {

/// One exposition sample with its # TYPE header. Values are int64 counters
/// and gauges; %lld keeps them exact (no %g rounding).
void PromSample(std::string* out, const char* name, const char* type, const std::string& labels,
                int64_t value) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(value));
  out->append(buf);
}

void PromSampleF(std::string* out, const char* name, const char* type, const std::string& labels,
                 double value) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %.6f\n", value);
  out->append(buf);
}

bench::JsonObj ReportJson(const FlushReport& r) {
  bench::JsonObj opt;
  opt.Put("passes", r.opt.passes)
      .Put("eps_seeded", r.opt.eps_seeded)
      .Put("eps_scanned", r.opt.eps_scanned)
      .Put("fixpoint_steps", r.opt.fixpoint_steps)
      .Put("touched_eps", r.opt.touched_eps)
      .Put("touched_alts", r.opt.touched_alts)
      .Put("tasks_enqueued", r.opt.tasks_enqueued);
  bench::JsonObj session;
  session.Put("mutations_observed", r.session.mutations_observed)
      .Put("flushes", r.session.flushes)
      .Put("empty_flushes", r.session.empty_flushes)
      .Put("changes_flushed", r.session.changes_flushed)
      .Put("reopt_passes", r.session.reopt_passes)
      .Put("queries_skipped", r.session.queries_skipped)
      .Put("eps_seeded", r.session.eps_seeded)
      .Put("plan_changes", r.session.plan_changes)
      .Put("quarantines", r.session.quarantines)
      .Put("rehabilitations", r.session.rehabilitations)
      .Put("queries_parked", r.session.queries_parked)
      .Put("watermark_flushes", r.session.watermark_flushes)
      .Put("evictions", r.session.evictions)
      .Put("rehydrations", r.session.rehydrations)
      .Put("resident_memo_bytes", r.session.resident_memo_bytes);
  bench::JsonObj obj;
  obj.Put("flush_index", r.flush_index)
      .Put("flush_epoch", static_cast<int64_t>(r.flush_epoch))
      .Put("changes", r.changes)
      .Put("queries", r.queries)
      .Put("queries_skipped", r.queries_skipped)
      .Put("plan_changes", r.plan_changes)
      .Put("queries_quarantined", r.queries_quarantined)
      .Put("quarantines", r.quarantines)
      .Put("rehabilitations", r.rehabilitations)
      .Put("evictions", r.evictions)
      .Put("rehydrations", r.rehydrations)
      .Put("resident_memo_bytes", r.resident_memo_bytes)
      .Put("mutations_rejected", r.mutations_rejected)
      .Put("summary_shared_hits", r.summary_shared_hits)
      .Put("summary_shared_misses", r.summary_shared_misses)
      .Put("flush_ms", r.flush_ms)
      .Put("opt", opt)
      .Put("session", session);
  return obj;
}

bench::JsonArr ReportsArr(const std::vector<FlushReport>& reports) {
  bench::JsonArr arr;
  for (const FlushReport& r : reports) arr.Add(ReportJson(r));
  return arr;
}

}  // namespace

std::string PrometheusSessionText(const ReoptSessionMetrics& m, const std::string& labels) {
  std::string out;
  PromSample(&out, "iqro_session_mutations_observed_total", "counter", labels,
             m.mutations_observed);
  PromSample(&out, "iqro_session_flushes_total", "counter", labels, m.flushes);
  PromSample(&out, "iqro_session_empty_flushes_total", "counter", labels, m.empty_flushes);
  PromSample(&out, "iqro_session_changes_flushed_total", "counter", labels, m.changes_flushed);
  PromSample(&out, "iqro_session_reopt_passes_total", "counter", labels, m.reopt_passes);
  PromSample(&out, "iqro_session_queries_skipped_total", "counter", labels, m.queries_skipped);
  PromSample(&out, "iqro_session_eps_seeded_total", "counter", labels, m.eps_seeded);
  PromSample(&out, "iqro_session_plan_changes_total", "counter", labels, m.plan_changes);
  PromSample(&out, "iqro_session_quarantines_total", "counter", labels, m.quarantines);
  PromSample(&out, "iqro_session_rehabilitations_total", "counter", labels, m.rehabilitations);
  PromSample(&out, "iqro_session_queries_parked_total", "counter", labels, m.queries_parked);
  PromSample(&out, "iqro_session_watermark_flushes_total", "counter", labels, m.watermark_flushes);
  PromSample(&out, "iqro_session_evictions_total", "counter", labels, m.evictions);
  PromSample(&out, "iqro_session_rehydrations_total", "counter", labels, m.rehydrations);
  PromSample(&out, "iqro_session_resident_memo_bytes", "gauge", labels, m.resident_memo_bytes);
  return out;
}

void JsonMetricsExporter::OnFlushMetrics(const FlushReport& report) {
  reports_.push_back(report);
}

std::string JsonMetricsExporter::ToJson() const { return ReportsArr(reports_).ToString(); }

void JsonMetricsExporter::WriteBenchReport(const std::string& name) const {
  bench::JsonObj root;
  root.Put("flushes", ReportsArr(reports_));
  bench::WriteBenchJson(name, root);
}

std::string JsonMetricsExporter::ToPrometheusText() const {
  if (reports_.empty()) return "# no flushes reported\n";
  const FlushReport& last = reports_.back();
  std::string out = PrometheusSessionText(last.session, "");
  PromSample(&out, "iqro_flush_index", "gauge", "", last.flush_index);
  PromSample(&out, "iqro_flush_changes", "gauge", "", last.changes);
  PromSample(&out, "iqro_flush_plan_changes", "gauge", "", last.plan_changes);
  PromSampleF(&out, "iqro_flush_ms", "gauge", "", last.flush_ms);
  return out;
}

void JsonMetricsExporter::WriteTextReport(const std::string& name) const {
  const std::string path = bench::BenchOutDir() + "/BENCH_" + name + ".prom";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("cannot write " + path);
  const std::string text = ToPrometheusText();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace iqro
