#include "service/metrics_exporter.h"

#include "bench_util/json_report.h"

namespace iqro {

namespace {

bench::JsonObj ReportJson(const FlushReport& r) {
  bench::JsonObj opt;
  opt.Put("passes", r.opt.passes)
      .Put("eps_seeded", r.opt.eps_seeded)
      .Put("eps_scanned", r.opt.eps_scanned)
      .Put("fixpoint_steps", r.opt.fixpoint_steps)
      .Put("touched_eps", r.opt.touched_eps)
      .Put("touched_alts", r.opt.touched_alts)
      .Put("tasks_enqueued", r.opt.tasks_enqueued);
  bench::JsonObj session;
  session.Put("mutations_observed", r.session.mutations_observed)
      .Put("flushes", r.session.flushes)
      .Put("empty_flushes", r.session.empty_flushes)
      .Put("changes_flushed", r.session.changes_flushed)
      .Put("reopt_passes", r.session.reopt_passes)
      .Put("queries_skipped", r.session.queries_skipped)
      .Put("eps_seeded", r.session.eps_seeded)
      .Put("plan_changes", r.session.plan_changes)
      .Put("quarantines", r.session.quarantines)
      .Put("rehabilitations", r.session.rehabilitations)
      .Put("queries_parked", r.session.queries_parked)
      .Put("watermark_flushes", r.session.watermark_flushes)
      .Put("evictions", r.session.evictions)
      .Put("rehydrations", r.session.rehydrations)
      .Put("resident_memo_bytes", r.session.resident_memo_bytes);
  bench::JsonObj obj;
  obj.Put("flush_index", r.flush_index)
      .Put("flush_epoch", static_cast<int64_t>(r.flush_epoch))
      .Put("changes", r.changes)
      .Put("queries", r.queries)
      .Put("queries_skipped", r.queries_skipped)
      .Put("plan_changes", r.plan_changes)
      .Put("queries_quarantined", r.queries_quarantined)
      .Put("quarantines", r.quarantines)
      .Put("rehabilitations", r.rehabilitations)
      .Put("evictions", r.evictions)
      .Put("rehydrations", r.rehydrations)
      .Put("resident_memo_bytes", r.resident_memo_bytes)
      .Put("mutations_rejected", r.mutations_rejected)
      .Put("summary_shared_hits", r.summary_shared_hits)
      .Put("summary_shared_misses", r.summary_shared_misses)
      .Put("flush_ms", r.flush_ms)
      .Put("opt", opt)
      .Put("session", session);
  return obj;
}

bench::JsonArr ReportsArr(const std::vector<FlushReport>& reports) {
  bench::JsonArr arr;
  for (const FlushReport& r : reports) arr.Add(ReportJson(r));
  return arr;
}

}  // namespace

void JsonMetricsExporter::OnFlushMetrics(const FlushReport& report) {
  reports_.push_back(report);
}

std::string JsonMetricsExporter::ToJson() const { return ReportsArr(reports_).ToString(); }

void JsonMetricsExporter::WriteBenchReport(const std::string& name) const {
  bench::JsonObj root;
  root.Put("flushes", ReportsArr(reports_));
  bench::WriteBenchJson(name, root);
}

}  // namespace iqro
