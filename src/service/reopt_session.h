// ReoptSession: the multi-query re-optimization manager — the first
// service-layer subsystem above the single-query engine.
//
// The paper treats re-optimization as incremental view maintenance over the
// optimizer's internal state and notes that deltas are cheapest when
// updates are *batched* before the fixpoint runs (§4). A production
// deployment amplifies that twice over: dozens of live queries (prepared
// statements, standing stream queries, AQP mid-flight plans) watch the same
// statistics, and runtime feedback arrives as a churny stream full of
// oscillations and no-ops. This class turns that stream into the minimum
// amount of fixpoint work:
//
//   mutators ──► StatsRegistry (NetDeltaTable: one net delta per statistic)
//                     │ OnStatsMutated (auto-flush policy hook)
//                     ▼
//              ReoptSession::Flush
//                     │ TakePending(): coalesced StatChanges, net-zero
//                     │ churn already absorbed
//                     ▼
//        for each registered query whose relations overlap the batch:
//              DeclarativeOptimizer::ReoptimizeBatch(changes)
//              — all dirty memo state seeded, then ONE fixpoint run
//
// One flush therefore costs one registry drain plus at most one delta
// fixpoint per *affected* optimizer, no matter how many raw mutations the
// batch contained (see bench_batch_churn for the measured payoff vs
// change-at-a-time Reoptimize()).
//
// ## Ownership
//
// The session borrows everything: the registry and every registered
// optimizer must outlive it (or be unregistered first). The session
// subscribes to the registry on construction and unsubscribes in its
// destructor. Registered optimizers must already have run Optimize() and
// must drain this session's registry (checked).
//
// ## Consistency contract
//
// Between flushes, registered optimizers hold plans that are exact w.r.t.
// the statistics of the *last* flush — the same staleness window a single
// optimizer has between Reoptimize() calls. A flush brings every
// registered optimizer to the fixpoint of the current statistics; the
// differential harness proves that state byte-equal (CanonicalDumpState)
// to a from-scratch optimization, for every registered optimizer, under
// randomized batched churn (docs/TESTING.md).
//
// Registered optimizers must never call Reoptimize() themselves: that
// would drain the shared registry and starve their peers. Registering an
// optimizer that is already at fixpoint w.r.t. *newer* statistics than the
// last flush is safe — the next flush re-seeds it and lands it in the same
// state (re-optimization is idempotent). Registering one whose fixpoint
// *predates* the last drain is a hard error (Register checks epochs): the
// drained deltas are gone, so it would stay silently stale forever.
//
// ## Thread-safety
//
// Single-threaded, like the engine underneath: one session, its registry
// and its optimizers belong to one thread. (Sharding sessions across
// threads is a roadmap item — see ROADMAP.md "Open items".)
#ifndef IQRO_SERVICE_REOPT_SESSION_H_
#define IQRO_SERVICE_REOPT_SESSION_H_

#include <cstdint>
#include <vector>

#include "core/declarative_optimizer.h"
#include "stats/stats_registry.h"

namespace iqro {

struct ReoptSessionOptions {
  /// 0: manual flushing only. N > 0: Flush() fires automatically once N
  /// value-changing mutations have been observed since the last flush (a
  /// latency/batching trade-off knob; the callback-driven flush is
  /// reentrancy-safe). Writes that repeat a statistic's current value are
  /// swallowed before recording and do not count.
  int64_t auto_flush_after = 0;
};

struct ReoptSessionMetrics {
  int64_t mutations_observed = 0;  // value-changing post-freeze mutations seen
  int64_t flushes = 0;             // Flush() calls that dispatched >= 1 change
  int64_t empty_flushes = 0;       // batches absorbed entirely by coalescing
  int64_t changes_flushed = 0;     // coalesced StatChanges dispatched
  int64_t reopt_passes = 0;        // per-optimizer ReoptimizeBatch fixpoints
  int64_t queries_skipped = 0;     // registered queries untouched by a flush
  int64_t eps_seeded = 0;          // memo entries seeded across all passes
};

class ReoptSession final : public StatsSubscriber {
 public:
  using QueryId = int;

  /// `registry` must outlive the session. Subscribes immediately.
  explicit ReoptSession(StatsRegistry* registry, ReoptSessionOptions options = {});
  ~ReoptSession() override;

  ReoptSession(const ReoptSession&) = delete;
  ReoptSession& operator=(const ReoptSession&) = delete;

  /// Registers a live query. `optimizer` must have run Optimize(), must
  /// drain this session's registry, and must outlive the session or be
  /// Unregister()ed first. Its state must not predate the registry's last
  /// drain (checked via stats_epoch(): the drained deltas are gone, so a
  /// late optimizer could never catch up and would stay silently stale);
  /// pending-but-undrained changes at registration time are fine — the
  /// next flush seeds them. Returns a stable id for Unregister.
  QueryId Register(DeclarativeOptimizer* optimizer);
  void Unregister(QueryId id);
  int num_queries() const { return static_cast<int>(queries_.size()); }

  /// True when mutations were recorded since the last flush (they may still
  /// coalesce to nothing — see StatsRegistry::HasPending).
  bool HasPending() const { return registry_->HasPending(); }

  /// Drains the registry's coalesced pending batch and dispatches it as one
  /// ReoptimizeBatch() pass to every registered optimizer whose relation
  /// set the batch can affect. Returns the number of StatChanges
  /// dispatched; 0 when the batch coalesced away (or nothing was pending).
  size_t Flush();

  const ReoptSessionMetrics& metrics() const { return metrics_; }

  /// StatsSubscriber: counts mutations and applies the auto-flush policy.
  void OnStatsMutated(StatsRegistry& registry) override;

 private:
  struct Slot {
    QueryId id;
    DeclarativeOptimizer* optimizer;
  };

  StatsRegistry* registry_;
  ReoptSessionOptions options_;
  ReoptSessionMetrics metrics_;
  std::vector<Slot> queries_;
  QueryId next_id_ = 0;
  int64_t mutations_since_flush_ = 0;
  bool in_flush_ = false;  // guards against reentrant auto-flush
};

}  // namespace iqro

#endif  // IQRO_SERVICE_REOPT_SESSION_H_
