// ReoptSession: the multi-query re-optimization manager — the service
// layer above the single-query engine.
//
// The paper treats re-optimization as incremental view maintenance over the
// optimizer's internal state and notes that deltas are cheapest when
// updates are *batched* before the fixpoint runs (§4). A production
// deployment amplifies that twice over: dozens of live queries (prepared
// statements, standing stream queries, AQP mid-flight plans) watch the same
// statistics, and runtime feedback arrives as a churny stream full of
// oscillations and no-ops. This class turns that stream into the minimum
// amount of fixpoint work — and publishes the part consumers actually act
// on, the plan changes:
//
//   mutators ──► StatsRegistry (NetDeltaTable: one net delta per statistic)
//                     │ OnStatsMutated ──► FlushPolicy (when to flush)
//                     ▼
//              ReoptSession::Flush
//                     │ TakePendingBatch(): coalesced StatChanges,
//                     │ net-zero churn already absorbed
//                     ▼
//        for each registered query whose relations overlap the batch:
//              DeclarativeOptimizer::ReoptimizeBatch(changes)
//              — all dirty memo state seeded, then ONE fixpoint run
//                     │
//                     ▼
//        PlanChangeEvent per query whose canonical best plan changed
//        (winner-closure diff, not dirty-set) ──► PlanSubscriber
//        FlushReport ──► MetricsExporter
//
// One flush therefore costs one registry drain plus at most one delta
// fixpoint per *affected* optimizer, no matter how many raw mutations the
// batch contained (see bench_batch_churn for the measured payoff vs
// change-at-a-time Reoptimize()).
//
// ## The session surface
//
//   ReoptSession session(&registry, options);
//   QueryHandle q = session.Register(optimizer);   // typed, move-only
//   q.Subscribe(&my_subscriber);                   // plan-change events
//   ...
//   // q's destructor unregisters; or q.Release() to do it early.
//
// Flush triggering is a pluggable FlushPolicy (service/flush_policy.h):
// CountPolicy flushes every N mutations, DeadlinePolicy bounds wall-clock
// staleness (drive it via Poll() or the built-in timer, below),
// CostGatedPolicy bounds the expected re-fixpoint work of a pending batch
// using per-query work history. Session metrics stream out through a
// MetricsExporter (service/metrics_exporter.h).
//
// ## Notification semantics (the exactness contract)
//
// After each flush, a PlanChangeEvent fires exactly once per registered
// query whose *canonical best plan* changed — computed by diffing the
// query's winner-closure PlanDigest (core/plan_digest.h) across the flush,
// never from the dirty set. A flush that re-derives half the memo but
// lands on the same plan fires nothing; net-zero churn fires nothing.
// Events fire on the flushing thread, in registration order, after every
// pass completed and the registry reader lock is released; the event
// carries old/new BestCost, the operator/join-prefix diff, and the flush
// epoch. Queries without a subscriber pay nothing (no digest is computed).
// The differential harness proves the contract on the full scenario
// rotation (docs/TESTING.md "Notification oracle").
//
// Reentrancy (inside OnPlanChange and the failure-event callbacks):
//  * Reading the session, any registered optimizer, or the registry is
//    allowed — the flush's passes are complete.
//  * Unregister (handle destruction or Release()) is allowed and is
//    DEFERRED to the end of the in-flight flush: every event of that flush
//    still fires (including the unregistering query's own), and the query
//    stops being dispatched from the next flush on.
//  * Registering a new query is NOT allowed (checked).
//  * Mutating statistics is allowed; a policy-triggered auto-flush from
//    inside the callback backs off on `in_flush_` and the mutation sits
//    pending for the next flush.
//
// ## Failure domain (docs/ARCHITECTURE.md "Failure domains")
//
// A flush pass that throws — an allocation failure, an injected fault
// (common/fault_injection.h), or a WorkBudgetExceeded from
// `per_query_work_budget` — is contained to its query. The failing
// optimizer is left in the core's torn-down-but-consistent state
// (optimized() == false), the query is marked kQuarantined and skipped by
// subsequent dispatches, and every OTHER query's pass completes normally;
// its subscriber (if any) gets one QueryQuarantinedEvent. The session then
// retries a from-scratch rebuild (DeclarativeOptimizer::RebuildFromScratch)
// on a capped exponential backoff measured in *ticks* — one tick per
// Flush() plus per Poll() that found no flush in flight, a deterministic
// clock-free schedule. A successful rebuild rehabilitates the query
// (QueryRehabilitatedEvent; a PlanChangeEvent against the last plan its
// subscriber saw follows in the same flush iff the plan moved — the
// incremental ≡ from-scratch equivalence makes the rebuilt state exactly
// what a never-failed optimizer would hold). After
// `quarantine_max_strikes` consecutive failures the query is kParked: no
// more retries, release the handle to dispose of it. query_state() is the
// authoritative state; events are at-most-once notifications.
//
// Overload sheds load before it becomes a failure: past
// `pending_soft_watermark` distinct pending statistics the session forces
// an early flush (counted in ReoptSessionMetrics::watermark_flushes); at
// `pending_hard_watermark` the registry starts rejecting NEW pending
// entries (StatsRegistry::SetPendingLimit — mutations that coalesce into
// an existing entry still apply) and Register() of additional queries
// throws SessionOverloaded, so backlog memory stays bounded instead of
// growing without limit.
//
// ## Ownership
//
// The session borrows everything: the registry and every registered
// optimizer must outlive it (or be unregistered first); subscribers,
// policies (shared) and exporters must outlive their use. The session
// subscribes to the registry on construction and unsubscribes in its
// destructor. QueryHandles may outlive the session: a handle's destructor
// detects the dead session (liveness token) and becomes a no-op.
// Registered optimizers must already have run Optimize() and must drain
// this session's registry (checked).
//
// ## Consistency contract
//
// Between flushes, registered optimizers hold plans that are exact w.r.t.
// the statistics of the *last* flush — the same staleness window a single
// optimizer has between Reoptimize() calls. A flush brings every
// registered optimizer to the fixpoint of the current statistics; the
// differential harness proves that state byte-equal (CanonicalDumpState)
// to a from-scratch optimization, for every registered optimizer, under
// randomized batched churn — and, under fault rotation, that every
// injected failure either leaves the flush fully applied or quarantines
// exactly the faulted query, whose post-recovery state again matches a
// never-faulted mirror (docs/TESTING.md).
//
// Registered optimizers must never call Reoptimize() themselves: that
// would drain the shared registry and starve their peers. Registering an
// optimizer that is already at fixpoint w.r.t. *newer* statistics than the
// last flush is safe — the next flush re-seeds it and lands it in the same
// state (re-optimization is idempotent). Registering one whose fixpoint
// *predates* the last drain is a hard error (Register checks epochs): the
// drained deltas are gone, so it would stay silently stale forever.
//
// ## Threading model
//
// Three independent degrees of concurrency, all off by default:
//
//  * **Parallel dispatch** (`ReoptSessionOptions::worker_threads >= 1`):
//    Flush() drains one epoch-versioned batch, then dispatches the
//    per-query ReoptimizeBatch() passes onto a fixed-size worker pool
//    (common/thread_pool.h) instead of running them in registration order
//    on the calling thread. Each optimizer — its memo, arena, worklist,
//    metrics — is owned by exactly one pool task per flush (the task also
//    computes the post-flush PlanDigest for subscribed queries, so digest
//    work parallelizes with the fixpoints); the *shared* world state an
//    optimizer reads while fixpointing (split memo, PropTable, summary
//    cache) is switched to internal locking at Register() time
//    (DeclarativeOptimizer::EnableConcurrentFlushes), and the statistics
//    values are frozen for the whole dispatch window by the registry's
//    reader lock. Per-flush metrics and events are aggregated from the
//    task futures on the coordinator, in registration order — race-free
//    by construction, not by atomics; subscribers always run on the
//    flushing thread, serial and pooled dispatch alike.
//    `worker_threads == 0` keeps the serial dispatch path, byte-identical
//    to the pre-pool behavior.
//
//  * **Concurrent mutation**: statistics producers may Record() from other
//    threads while a flush runs. The registry's mutation lock serializes
//    them against the drain and the dispatch window: a racing mutation
//    lands in the *next* epoch's batch, never lost, never double-applied
//    (tests/concurrency_test.cpp). Between the drain and the next flush it
//    simply sits pending — the same staleness window as always. FlushPolicy
//    evaluation is serialized under the session's policy mutex whatever
//    thread mutates.
//
//  * **Timer-driven polling** (`ReoptSessionOptions::poll_interval > 0`):
//    the session owns one background thread that calls Poll() every
//    interval, so DeadlinePolicy deadlines and quarantine-backoff
//    expirations fire without the application running a driver loop. The
//    timer serializes against Register/Unregister/Subscribe through an
//    internal gate (those calls remain owner-thread operations; they just
//    briefly block while a timer poll runs), and its flushes exclude
//    manual ones via `in_flush_` like any other. Policies still see
//    injected Clocks; the timer only decides *when to ask*, never what
//    time it is.
//
// Register/Unregister/Subscribe and session destruction remain
// single-threaded calls: do them from the thread that owns the session,
// with no flush in flight on a *mutator* thread (the two exceptions:
// the timer thread, gated as above, and Unregister from inside a
// subscriber callback, which defers). docs/ARCHITECTURE.md has the full
// ownership/epoch lifecycle.
#ifndef IQRO_SERVICE_REOPT_SESSION_H_
#define IQRO_SERVICE_REOPT_SESSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/declarative_optimizer.h"
#include "service/flush_policy.h"
#include "service/metrics_exporter.h"
#include "service/plan_subscriber.h"
#include "service/session_metrics.h"
#include "service/shared_summary_cache.h"
#include "stats/stats_registry.h"

namespace iqro {

class QueryHandle;

/// Thrown by Register() when the pending backlog sits at or above the hard
/// watermark: the session is shedding load, not accepting more work.
/// Mutations are shed separately (RecordOutcome::kRejectedBacklog — a
/// return code, not a throw, since mutators are hot paths).
class SessionOverloaded : public std::runtime_error {
 public:
  explicit SessionOverloaded(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Failure-domain state of one registered query (authoritative; the
/// subscriber events are at-most-once notifications of transitions).
enum class QueryState : uint8_t {
  kHealthy,      // dispatched normally
  kQuarantined,  // last pass failed; skipped; rebuild scheduled (backoff)
  kParked,       // strikes exhausted; skipped forever; release the handle
};

struct ReoptSessionOptions {
  /// 0: Flush() dispatches every per-query fixpoint serially on the
  /// calling thread — the pre-pool path, byte-identical results and
  /// behavior. N >= 1: dispatch on a fixed pool of N worker threads (one
  /// task per registered query per flush; see the threading model above).
  int worker_threads = 0;
  /// When to auto-flush (service/flush_policy.h). Null: manual Flush()
  /// only. Evaluated after every value-changing mutation and on Poll();
  /// shared so options stay copyable — one policy instance per session.
  std::shared_ptr<FlushPolicy> flush_policy;
  /// Receives one FlushReport per dispatched flush
  /// (service/metrics_exporter.h). Borrowed, may be null; must outlive the
  /// session or be detached with it.
  MetricsExporter* metrics_exporter = nullptr;

  // ---- failure domain ----

  /// > 0: cap each per-query fixpoint at this many worklist steps per
  /// flush (DeclarativeOptimizer work_budget). A pass that exceeds it is
  /// treated exactly like a throwing pass: the query is quarantined, its
  /// peers finish. 0: unbudgeted.
  int64_t per_query_work_budget = 0;
  /// Consecutive failed passes/rebuilds (strikes) before a quarantined
  /// query is parked permanently. Must be >= 1.
  int quarantine_max_strikes = 3;
  /// Rebuild backoff after the Nth strike: min(cap, base * 2^(N-1)) ticks
  /// (one tick per Flush()/idle Poll()). base >= 1, cap >= base.
  int64_t quarantine_backoff_base_ticks = 1;
  int64_t quarantine_backoff_cap_ticks = 8;

  // ---- overload degradation ----

  /// > 0: once this many distinct statistics are pending, the session
  /// forces a flush on the next mutation/Poll even if the policy declines
  /// (counted in ReoptSessionMetrics::watermark_flushes). 0: off.
  size_t pending_soft_watermark = 0;
  /// > 0: backlog ceiling. The registry refuses to create NEW pending
  /// entries past it (StatsRegistry::SetPendingLimit semantics: coalescing
  /// writes to already-pending statistics still apply, rejected mutations
  /// return RecordOutcome::kRejectedBacklog) and Register() throws
  /// SessionOverloaded while the backlog sits at the ceiling. Bounds the
  /// session's memory under mutation storms. 0: unbounded.
  size_t pending_hard_watermark = 0;

  /// > 0: start a session-owned timer thread that calls Poll() at this
  /// interval (deadline policies and quarantine backoffs fire without an
  /// application driver loop). 0: no thread; drive Poll() yourself.
  std::chrono::milliseconds poll_interval{0};

  // ---- memo lifecycle ----

  /// > 0: session-wide memo residency budget in (estimated) bytes. After
  /// each dispatched flush the session sums EstimatedMemoBytes() over the
  /// healthy, non-evicted queries — the exact quantity peak_memo_bytes is
  /// the high-water mark of — and, while the sum exceeds the budget,
  /// EVICTS the least-recently-affected query: its memo/EPState is spilled
  /// to a compact serialized seed (DeclarativeOptimizer::SerializeState)
  /// and torn down. An evicted query costs nothing per flush until a batch
  /// its relation set can be affected by arrives, at which point the same
  /// flush rehydrates it (RestoreState from the seed; RebuildFromScratch
  /// if the seed is unusable) *before* dispatch — so no relevant batch is
  /// ever missed and plans stay exactly oracle-equal. 0: no budget;
  /// EvictQuery()/RehydrateQuery() remain available manually.
  size_t memo_byte_budget = 0;
};

class ReoptSession final : public StatsSubscriber {
 public:
  using QueryId = int;

  /// `registry` must outlive the session. Subscribes immediately; applies
  /// `pending_hard_watermark` to the registry and starts the poll timer
  /// (if configured) before returning.
  explicit ReoptSession(StatsRegistry* registry, ReoptSessionOptions options = {});
  ~ReoptSession() override;

  ReoptSession(const ReoptSession&) = delete;
  ReoptSession& operator=(const ReoptSession&) = delete;

  /// Registers a live query and returns its typed handle (move-only; its
  /// destructor unregisters). `optimizer` must have run Optimize(), must
  /// drain this session's registry, and must outlive its registration. Its
  /// state must not predate the registry's last drain (checked via
  /// stats_epoch(): the drained deltas are gone, so a late optimizer could
  /// never catch up and would stay silently stale); pending-but-undrained
  /// changes at registration time are fine — the next flush seeds them.
  /// `subscriber`, when non-null, is attached as by
  /// QueryHandle::Subscribe() with the current plan as the baseline.
  /// Throws SessionOverloaded at the hard watermark (see options).
  [[nodiscard]] QueryHandle Register(DeclarativeOptimizer& optimizer,
                                     PlanSubscriber* subscriber = nullptr);

  int num_queries() const { return static_cast<int>(queries_.size()); }

  /// Failure-domain state of a registered query (owner-thread read; aborts
  /// on an unknown id — released queries have no state).
  QueryState query_state(QueryId id) const;

  /// Registered queries currently quarantined (excluding parked) /
  /// parked. Owner-thread reads, like query_state().
  int num_quarantined() const;
  int num_parked() const;

  /// The deterministic retry clock: ticks advance once per Flush() and
  /// once per Poll() that found no flush already in flight. Exposed so
  /// tests and operators can reason about backoff schedules.
  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// True when mutations were recorded since the last flush (they may still
  /// coalesce to nothing — see StatsRegistry::HasPending).
  bool HasPending() const { return registry_->HasPending(); }

  /// Drains the registry's coalesced pending batch, dispatches it as one
  /// ReoptimizeBatch() pass to every registered healthy optimizer whose
  /// relation set the batch can affect — serially or on the worker pool,
  /// per `worker_threads` — then fires events and the metrics export.
  /// Quarantined queries due for retry are rebuilt first. Returns the
  /// number of StatChanges dispatched; 0 when the batch coalesced away (or
  /// nothing was pending, or another thread's flush is already in flight —
  /// the racing batch belongs to that flush).
  size_t Flush();

  /// Consults the flush policy and the quarantine retry schedule without a
  /// mutation having arrived — the driver-loop hook for time-based
  /// policies and backoff expiry (the session's poll timer calls exactly
  /// this). Flushes and returns the dispatched change count when either
  /// says so; otherwise 0.
  size_t Poll();

  // ---- memo lifecycle (docs/ARCHITECTURE.md "Memo lifecycle") ----

  /// Spills a healthy query's memo to a serialized seed and tears it down
  /// (the budget enforcement path, exposed for manual control). Returns
  /// false — and does nothing — when the query is quarantined, parked, or
  /// already evicted. Owner-thread call, like Register.
  bool EvictQuery(QueryId id);

  /// Restores an evicted query from its seed now instead of waiting for
  /// the next relevant batch (seed restore; from-scratch rebuild when the
  /// seed is unusable). Returns false when the query is not evicted.
  bool RehydrateQuery(QueryId id);

  /// Registered queries currently evicted.
  int num_evicted() const;

  /// ReoptSessionMetrics::resident_memo_bytes (the post-flush gauge;
  /// metrics() read rules apply).
  int64_t resident_memo_bytes() const { return metrics_.resident_memo_bytes; }

  /// Persists the session's warm state — the statistics registry plus one
  /// memo seed per registered query, in registration order — to `path` via
  /// the atomic snapshot container (service/snapshot.h). Flushes first, so
  /// the snapshot is a settled fixpoint state. Quarantined/parked queries
  /// persist as cold records (their torn-down memo has nothing to save);
  /// evicted queries persist their stored seed. Throws SerializeError
  /// (kIo) on filesystem failure; a pre-existing snapshot at `path` is
  /// never torn. Owner-thread call.
  void SaveSnapshot(const std::string& path);

  /// Warm-starts an EMPTY session (num_queries() == 0) from a snapshot:
  /// restores the registry's statistics + epoch, then restores each
  /// query's memo from its seed (RebuildFromScratch fallback for cold
  /// records or unusable seeds) and registers it. `optimizers` supplies
  /// one fresh (constructed, not yet optimized) optimizer per snapshotted
  /// query, in snapshot order, each wired to this session's registry.
  /// Post-load statistics churn drains through the normal incremental
  /// flush path — the warm-restart story bench_warm_restart measures.
  /// Throws SerializeError before mutating anything when the file is
  /// corrupt, truncated, version-skewed, or disagrees with `optimizers`
  /// (callers catch and fall back to from-scratch optimization).
  std::vector<QueryHandle> LoadSnapshot(
      const std::string& path, const std::vector<DeclarativeOptimizer*>& optimizers);

  /// Read metrics()/last_flush() only from a state where no flush can be
  /// in flight and no mutator is recording: after your own *successful*
  /// Flush() (one that drained, not one that returned 0 because another
  /// thread's flush held `in_flush_` — backing off does not synchronize
  /// with that flush's writes), or after every mutator thread has joined.
  /// With a policy + a mutator thread (or the poll timer), a flush may be
  /// running on *their* thread at any moment — quiesce first.
  const ReoptSessionMetrics& metrics() const { return metrics_; }

  /// OptMetrics aggregate of the most recent non-empty flush (read rules
  /// above); zeroed at session construction.
  const FlushOptStats& last_flush() const { return last_flush_; }

  /// The dispatch pool's size (0 = serial dispatch).
  int worker_threads() const { return pool_ ? pool_->size() : 0; }

  /// The session's cross-query summary store: every registered query's
  /// SummaryCalculator is attached to it at Register() time, so queries
  /// with overlapping relation sets share epoch-keyed summary computation
  /// (hit/miss counters follow the metrics() read rules).
  const SharedSummaryCache& summary_cache() const { return summary_cache_; }

  /// StatsSubscriber: counts the mutation and evaluates the flush policy
  /// against the under-lock snapshot. May be invoked from any mutating
  /// thread (no registry lock held).
  void OnStatsMutated(StatsRegistry& registry, const StatsMutationEvent& event) override;

 private:
  friend class QueryHandle;

  struct Slot {
    QueryId id = -1;
    DeclarativeOptimizer* optimizer = nullptr;
    /// Plan-change subscriber; null = no notifications, no digest work.
    PlanSubscriber* subscriber = nullptr;
    /// Bumped by every SetSubscriber call: pending-event delivery checks
    /// it so a mid-notification detach-then-reattach of the SAME pointer
    /// still suppresses (the reattach took a fresh post-flush baseline;
    /// pointer identity alone cannot see it).
    uint64_t subscription_gen = 0;
    /// True while a computed event has not settled (a throwing subscriber
    /// unwound delivery before this slot's turn, or a rehabilitation
    /// restored the optimizer against a pre-quarantine baseline): the
    /// next flush re-derives the digest even if its batch cannot affect
    /// the query, so the dropped/deferred change is re-detected rather
    /// than deferred until unrelated churn happens to touch it.
    bool rediff_pending = false;
    /// Winner-closure baseline the next flush diffs against. Valid iff
    /// `subscriber != nullptr` (captured at attach time, advanced by every
    /// flush that recomputed it). A quarantine KEEPS the baseline — the
    /// post-rehabilitation diff then describes the change relative to the
    /// last plan the subscriber actually saw.
    PlanDigest digest;
    // ---- failure domain ----
    QueryState state = QueryState::kHealthy;
    /// Consecutive failures (pass throws + failed rebuilds); reset by a
    /// successful rebuild.
    int strikes = 0;
    /// Tick at/after which the next rebuild attempt runs (quarantined
    /// slots only).
    int64_t eligible_at_tick = 0;
    // ---- memo lifecycle ----
    /// True while the query's memo is spilled to `seed` (state stays
    /// kHealthy — eviction is a residency decision, not a failure). The
    /// slot is skipped by dispatch and rehydrated by the first flush whose
    /// batch can affect it (or that owes it a re-diff).
    bool evicted = false;
    /// The SerializeState() seed and the stats epoch it was captured at
    /// (only meaningful while `evicted`; cleared on rehydration).
    std::string seed;
    uint64_t seed_epoch = 0;
    /// Tick of the last flush whose batch affected this query — the LRU
    /// key budget enforcement picks eviction victims by.
    int64_t last_active_tick = 0;
  };

  /// What one dispatched pass reports back to the coordinator (by value,
  /// through the task future — the race-free aggregation path).
  struct PassResult {
    /// False for the placeholder of a quarantined/parked (skipped) or
    /// failed pass; RunPass sets it true on every path that returns.
    bool dispatched = false;
    bool affected = false;
    int64_t eps_seeded = 0;
    int64_t eps_scanned = 0;
    int64_t fixpoint_steps = 0;
    int64_t touched_eps = 0;
    int64_t touched_alts = 0;
    int64_t tasks_enqueued = 0;
    /// Post-flush winner closure; computed only for affected queries with
    /// a subscriber attached (an unaffected query's plan cannot change —
    /// the prefilter already guarantees its state is exact).
    bool digest_computed = false;
    PlanDigest digest;
  };

  /// A quarantine/rehabilitation notification queued for the delivery
  /// phase (computed while the slot walk is stable, fired under the same
  /// NotifyGuard as plan events, before them, gen-checked the same way).
  struct ServiceEvent {
    enum class Kind : uint8_t { kQuarantined, kRehabilitated };
    Kind kind = Kind::kQuarantined;
    QueryId query = -1;
    uint64_t computed_gen = 0;
    QueryQuarantinedEvent quarantined;
    QueryRehabilitatedEvent rehabilitated;
  };

  /// One per-query pass: prefilter, ReoptimizeBatch, metrics delta, digest.
  /// Runs on a pool worker (parallel) or the flushing thread (serial).
  /// `force_digest` re-derives the digest even for a prefiltered-away
  /// query (Slot::rediff_pending — an unsettled event from a prior flush).
  /// `work_budget` > 0 bounds the fixpoint (quarantine on excess).
  static PassResult RunPass(DeclarativeOptimizer* optimizer,
                            const std::vector<StatChange>& changes, uint64_t epoch,
                            bool want_digest, bool force_digest, int64_t work_budget);
  void AggregatePass(const PassResult& r);

  QueryId RegisterImpl(DeclarativeOptimizer* optimizer, PlanSubscriber* subscriber);
  /// Unregisters `id` — immediately, or deferred to flush end when called
  /// from inside a subscriber callback (see the reentrancy rules).
  void UnregisterImpl(QueryId id);
  /// Attaches/replaces/clears (nullptr) a slot's subscriber; captures the
  /// current plan as the event baseline on attach.
  void SetSubscriber(QueryId id, PlanSubscriber* subscriber);
  Slot* FindSlot(QueryId id);
  const Slot* FindSlot(QueryId id) const;

  /// Timer-gated QueryHandle entry points (lock reg_gate_ unless called
  /// from the flushing thread itself — i.e. from inside a callback).
  void HandleRelease(QueryId id);
  void HandleSubscribe(QueryId id, PlanSubscriber* subscriber);

  /// Rebuilds every quarantined query whose backoff expired; appends the
  /// resulting service events and updates the per-flush strike/rehab
  /// counters. Coordinator only, called at flush start.
  void AttemptRehabs(uint64_t epoch, std::vector<ServiceEvent>* events,
                     int64_t* strikes, int64_t* rehabs);
  /// Quarantines `slot` for the failure in `err` (classify, tear down if
  /// needed, schedule/park, emit the event). Bumps *strikes.
  void RecordStrike(Slot& slot, const std::exception_ptr& err, uint64_t epoch,
                    std::vector<ServiceEvent>* events, int64_t* strikes);
  /// Recomputes the timer-readable quarantine atomics from queries_.
  void RefreshQuarantineIndex();
  /// Spills `slot`'s memo to its seed and tears the optimizer down
  /// (requires healthy + optimized + not evicted).
  void EvictSlot(Slot& slot);
  /// Restores `slot` from its seed under the registry reader lock (rebuild
  /// fallback when the seed is rejected). A failed rebuild records a
  /// strike like any other failed rebuild. Returns true when the slot left
  /// eviction healthy.
  bool RehydrateSlot(Slot& slot, uint64_t epoch, std::vector<ServiceEvent>* events,
                     int64_t* strikes);
  /// Sum of EstimatedMemoBytes() over healthy, non-evicted queries.
  size_t ComputeResidentBytes() const;
  /// Evicts least-recently-affected queries until the resident sum fits
  /// `memo_byte_budget` (no-op without a budget) and refreshes the
  /// resident_memo_bytes gauge either way.
  void EnforceMemoBudget(int64_t* evictions_this_flush);
  /// Poll body (caller holds the registration gate when one is needed).
  size_t PollTick();
  void TimerLoop();

  /// Evaluates the policy and the soft watermark under `policy_mu_` and
  /// flushes on demand. `event` is null for Poll() probes.
  size_t MaybePolicyFlush(const StatsMutationEvent* event);
  /// The one OnFlush protocol (empty and dispatched flushes alike): read
  /// the post-drain pending count, then hand the per-query work
  /// observations and the flush summary to the policy under `policy_mu_`.
  /// Registry reads always happen BEFORE the policy mutex.
  void PolicyOnFlush(const FlushOptStats& stats, int64_t changes);

  StatsRegistry* registry_;
  ReoptSessionOptions options_;
  ReoptSessionMetrics metrics_;
  FlushOptStats last_flush_;
  /// Cross-query shared summary store (see summary_cache()). Declared
  /// before queries_ so it outlives any attachment teardown.
  SharedSummaryCache summary_cache_;
  std::vector<Slot> queries_;
  std::unique_ptr<ThreadPool> pool_;  // null when worker_threads == 0
  QueryId next_id_ = 0;
  /// Liveness token handles hold: *alive_ flips false in the destructor so
  /// a handle outliving its session no-ops instead of touching freed
  /// memory.
  std::shared_ptr<bool> alive_;
  /// Guards the mutation-policy state OnStatsMutated/Poll touch from
  /// mutator threads — including the FlushPolicy instance itself, whose
  /// calls are serialized under this mutex (everything else in this class
  /// is coordinator-only).
  std::mutex policy_mu_;
  int64_t mutations_since_flush_ = 0;
  /// (query id, fixpoint work) of the most recent dispatched flush's
  /// affected passes — the OnQueryPassWork feed. Written by the
  /// coordinator during aggregation, read in PolicyOnFlush under
  /// policy_mu_ on the same thread.
  std::vector<std::pair<QueryId, int64_t>> last_pass_work_;
  /// Mutual exclusion + reentrancy guard for Flush (policy-triggered
  /// callbacks, racing mutator-thread flushes).
  std::atomic<bool> in_flush_{false};
  /// The thread driving the current flush (id{} when none): lets the
  /// registration gate recognize callback-reentrant handle operations on
  /// the timer thread and skip re-locking the gate it already holds.
  std::atomic<std::thread::id> flush_owner_{};
  /// The retry clock (see ticks()). Relaxed: a lower-bound logical clock;
  /// backoffs are "at least N ticks".
  std::atomic<int64_t> ticks_{0};
  /// Timer-readable quarantine index (the timer must never walk queries_,
  /// which the coordinator resizes): count of kQuarantined slots and the
  /// earliest eligible_at_tick among them (INT64_MAX when none).
  std::atomic<int64_t> quarantined_count_{0};
  std::atomic<int64_t> next_rehab_tick_{std::numeric_limits<int64_t>::max()};
  /// Serializes the timer thread's Poll against owner-thread
  /// Register/Unregister/Subscribe. Only engaged when a timer exists.
  std::mutex reg_gate_;
  std::thread timer_;
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool timer_stop_ = false;
  /// True while events are being delivered (coordinator thread only):
  /// Unregister defers, Register checks.
  bool notifying_ = false;
  std::vector<QueryId> deferred_unregister_;
};

/// Move-only registration of one query in one ReoptSession. Destroying (or
/// Release()ing) the handle unregisters the query — deferred to flush end
/// when it happens inside a subscriber callback. A handle that outlives
/// its session no-ops on destruction. Not thread-safe; use from the
/// session's thread.
class QueryHandle {
 public:
  /// Invalid handle (valid() == false); assign a real one into it.
  QueryHandle() = default;
  QueryHandle(QueryHandle&& other) noexcept;
  QueryHandle& operator=(QueryHandle&& other) noexcept;
  ~QueryHandle();

  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  /// True while this handle owns a registration in a session that is
  /// still alive — false once Released, moved-from, or the session was
  /// destroyed (the registration died with it).
  bool valid() const { return session_ != nullptr && alive_ != nullptr && *alive_; }
  /// The session-stable id (PlanChangeEvent::query_id). -1 when invalid —
  /// including a handle invalidated by its session's destruction.
  ReoptSession::QueryId id() const { return valid() ? id_ : -1; }
  /// The registered optimizer (null when invalid, as for id()).
  DeclarativeOptimizer* optimizer() const { return valid() ? optimizer_ : nullptr; }
  /// Failure-domain state (ReoptSession::query_state). kHealthy on an
  /// invalid handle — a dead session holds no quarantine.
  QueryState state() const;

  /// Attaches (or replaces) the plan-change subscriber; the query's
  /// *current* canonical plan becomes the baseline the next flush diffs
  /// against. nullptr detaches and drops the digest work. An event fires
  /// only if the subscriber it was computed for is still attached at
  /// delivery time, so detaching OR replacing from inside a subscriber
  /// callback suppresses the query's undelivered event of the in-flight
  /// flush (no replay of pre-attach history to the new observer, no call
  /// into a destroyed old one). The handle must own a registration
  /// (never-registered or Released handles are a programming error); on a
  /// dead session this is a no-op like every other handle operation.
  void Subscribe(PlanSubscriber* subscriber);

  /// Unregisters now (or deferred, inside a callback) and invalidates the
  /// handle. No-op when already invalid or the session is gone.
  void Release();

 private:
  friend class ReoptSession;
  QueryHandle(ReoptSession* session, ReoptSession::QueryId id,
              DeclarativeOptimizer* optimizer, std::shared_ptr<const bool> alive)
      : session_(session), optimizer_(optimizer), alive_(std::move(alive)), id_(id) {}

  ReoptSession* session_ = nullptr;
  DeclarativeOptimizer* optimizer_ = nullptr;
  std::shared_ptr<const bool> alive_;
  ReoptSession::QueryId id_ = -1;
};

}  // namespace iqro

#endif  // IQRO_SERVICE_REOPT_SESSION_H_
