// ReoptSession: the multi-query re-optimization manager — the first
// service-layer subsystem above the single-query engine.
//
// The paper treats re-optimization as incremental view maintenance over the
// optimizer's internal state and notes that deltas are cheapest when
// updates are *batched* before the fixpoint runs (§4). A production
// deployment amplifies that twice over: dozens of live queries (prepared
// statements, standing stream queries, AQP mid-flight plans) watch the same
// statistics, and runtime feedback arrives as a churny stream full of
// oscillations and no-ops. This class turns that stream into the minimum
// amount of fixpoint work:
//
//   mutators ──► StatsRegistry (NetDeltaTable: one net delta per statistic)
//                     │ OnStatsMutated (auto-flush policy hook)
//                     ▼
//              ReoptSession::Flush
//                     │ TakePending(): coalesced StatChanges, net-zero
//                     │ churn already absorbed
//                     ▼
//        for each registered query whose relations overlap the batch:
//              DeclarativeOptimizer::ReoptimizeBatch(changes)
//              — all dirty memo state seeded, then ONE fixpoint run
//
// One flush therefore costs one registry drain plus at most one delta
// fixpoint per *affected* optimizer, no matter how many raw mutations the
// batch contained (see bench_batch_churn for the measured payoff vs
// change-at-a-time Reoptimize()).
//
// ## Ownership
//
// The session borrows everything: the registry and every registered
// optimizer must outlive it (or be unregistered first). The session
// subscribes to the registry on construction and unsubscribes in its
// destructor. Registered optimizers must already have run Optimize() and
// must drain this session's registry (checked).
//
// ## Consistency contract
//
// Between flushes, registered optimizers hold plans that are exact w.r.t.
// the statistics of the *last* flush — the same staleness window a single
// optimizer has between Reoptimize() calls. A flush brings every
// registered optimizer to the fixpoint of the current statistics; the
// differential harness proves that state byte-equal (CanonicalDumpState)
// to a from-scratch optimization, for every registered optimizer, under
// randomized batched churn (docs/TESTING.md).
//
// Registered optimizers must never call Reoptimize() themselves: that
// would drain the shared registry and starve their peers. Registering an
// optimizer that is already at fixpoint w.r.t. *newer* statistics than the
// last flush is safe — the next flush re-seeds it and lands it in the same
// state (re-optimization is idempotent). Registering one whose fixpoint
// *predates* the last drain is a hard error (Register checks epochs): the
// drained deltas are gone, so it would stay silently stale forever.
//
// ## Threading model
//
// Two independent degrees of concurrency, both off by default:
//
//  * **Parallel dispatch** (`ReoptSessionOptions::worker_threads >= 1`):
//    Flush() drains one epoch-versioned batch, then dispatches the
//    per-query ReoptimizeBatch() passes onto a fixed-size worker pool
//    (common/thread_pool.h) instead of running them in registration order
//    on the calling thread. Each optimizer — its memo, arena, worklist,
//    metrics — is owned by exactly one pool task per flush; the *shared*
//    world state an optimizer reads while fixpointing (split memo,
//    PropTable, summary cache) is switched to internal locking at
//    Register() time (DeclarativeOptimizer::EnableConcurrentFlushes), and
//    the statistics values are frozen for the whole dispatch window by the
//    registry's reader lock. Per-flush metrics are aggregated from the
//    task futures on the coordinator, in registration order — race-free
//    by construction, not by atomics. `worker_threads == 0` keeps the
//    serial dispatch path, byte-identical to the pre-pool behavior.
//
//  * **Concurrent mutation**: statistics producers may Record() from other
//    threads while a flush runs. The registry's mutation lock serializes
//    them against the drain and the dispatch window: a racing mutation
//    lands in the *next* epoch's batch, never lost, never double-applied
//    (tests/concurrency_test.cpp). Between the drain and the next flush it
//    simply sits pending — the same staleness window as always.
//
// Register/Unregister and session destruction remain single-threaded
// calls: do them from the thread that owns the session, with no flush in
// flight. docs/ARCHITECTURE.md has the full ownership/epoch lifecycle.
#ifndef IQRO_SERVICE_REOPT_SESSION_H_
#define IQRO_SERVICE_REOPT_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "core/declarative_optimizer.h"
#include "stats/stats_registry.h"

namespace iqro {

struct ReoptSessionOptions {
  /// 0: manual flushing only. N > 0: Flush() fires automatically once N
  /// value-changing mutations have been observed since the last flush (a
  /// latency/batching trade-off knob; the callback-driven flush is
  /// reentrancy-safe). Writes that repeat a statistic's current value are
  /// swallowed before recording and do not count.
  int64_t auto_flush_after = 0;
  /// 0: Flush() dispatches every per-query fixpoint serially on the
  /// calling thread — the pre-pool path, byte-identical results and
  /// behavior. N >= 1: dispatch on a fixed pool of N worker threads (one
  /// task per registered query per flush; see the threading model above).
  int worker_threads = 0;
};

struct ReoptSessionMetrics {
  int64_t mutations_observed = 0;  // value-changing post-freeze mutations seen
  int64_t flushes = 0;             // Flush() calls that dispatched >= 1 change
  int64_t empty_flushes = 0;       // batches absorbed entirely by coalescing
  int64_t changes_flushed = 0;     // coalesced StatChanges dispatched
  int64_t reopt_passes = 0;        // per-optimizer ReoptimizeBatch fixpoints
  int64_t queries_skipped = 0;     // registered queries untouched by a flush
  int64_t eps_seeded = 0;          // memo entries seeded across all passes
};

/// Aggregated OptMetrics deltas of the most recent non-empty flush, summed
/// over every dispatched pass. Collected from per-task results after the
/// futures join (parallel mode) or inline (serial mode) — never written by
/// two threads at once, since only the thread that won `in_flush_` writes
/// it. Read it only when no flush can be in flight (see metrics()).
struct FlushOptStats {
  int64_t passes = 0;          // ReoptimizeBatch fixpoints this flush
  int64_t eps_seeded = 0;      // memo entries seeded
  int64_t fixpoint_steps = 0;  // sum of per-optimizer round_steps
  int64_t touched_eps = 0;     // sum of per-optimizer round_touched_eps
  int64_t touched_alts = 0;    // sum of per-optimizer round_touched_alts
  int64_t tasks_enqueued = 0;  // worklist pushes across all passes
};

class ReoptSession final : public StatsSubscriber {
 public:
  using QueryId = int;

  /// `registry` must outlive the session. Subscribes immediately.
  explicit ReoptSession(StatsRegistry* registry, ReoptSessionOptions options = {});
  ~ReoptSession() override;

  ReoptSession(const ReoptSession&) = delete;
  ReoptSession& operator=(const ReoptSession&) = delete;

  /// Registers a live query. `optimizer` must have run Optimize(), must
  /// drain this session's registry, and must outlive the session or be
  /// Unregister()ed first. Its state must not predate the registry's last
  /// drain (checked via stats_epoch(): the drained deltas are gone, so a
  /// late optimizer could never catch up and would stay silently stale);
  /// pending-but-undrained changes at registration time are fine — the
  /// next flush seeds them. Returns a stable id for Unregister.
  QueryId Register(DeclarativeOptimizer* optimizer);
  void Unregister(QueryId id);
  int num_queries() const { return static_cast<int>(queries_.size()); }

  /// True when mutations were recorded since the last flush (they may still
  /// coalesce to nothing — see StatsRegistry::HasPending).
  bool HasPending() const { return registry_->HasPending(); }

  /// Drains the registry's coalesced pending batch and dispatches it as one
  /// ReoptimizeBatch() pass to every registered optimizer whose relation
  /// set the batch can affect — serially or on the worker pool, per
  /// `worker_threads`. Returns the number of StatChanges dispatched; 0 when
  /// the batch coalesced away (or nothing was pending, or another thread's
  /// flush is already in flight — the racing batch belongs to that flush).
  size_t Flush();

  /// Read metrics()/last_flush() only from a state where no flush can be
  /// in flight and no mutator is recording: after your own *successful*
  /// Flush() (one that drained, not one that returned 0 because another
  /// thread's flush held `in_flush_` — backing off does not synchronize
  /// with that flush's writes), or after every mutator thread has joined.
  /// With auto-flush + a mutator thread, a flush may be running on *their*
  /// thread at any moment — quiesce first.
  const ReoptSessionMetrics& metrics() const { return metrics_; }

  /// OptMetrics aggregate of the most recent non-empty flush (read rules
  /// above); zeroed at session construction.
  const FlushOptStats& last_flush() const { return last_flush_; }

  /// The dispatch pool's size (0 = serial dispatch).
  int worker_threads() const { return pool_ ? pool_->size() : 0; }

  /// StatsSubscriber: counts mutations and applies the auto-flush policy.
  /// May be invoked from any mutating thread (no registry lock held).
  void OnStatsMutated(StatsRegistry& registry) override;

 private:
  struct Slot {
    QueryId id;
    DeclarativeOptimizer* optimizer;
  };

  /// What one dispatched pass reports back to the coordinator (by value,
  /// through the task future — the race-free aggregation path).
  struct PassResult {
    bool affected = false;
    int64_t eps_seeded = 0;
    int64_t fixpoint_steps = 0;
    int64_t touched_eps = 0;
    int64_t touched_alts = 0;
    int64_t tasks_enqueued = 0;
  };

  /// One per-query pass: prefilter, ReoptimizeBatch, metrics delta. Runs
  /// on a pool worker (parallel) or the flushing thread (serial).
  static PassResult RunPass(DeclarativeOptimizer* optimizer,
                            const std::vector<StatChange>& changes, uint64_t epoch);
  void AggregatePass(const PassResult& r);

  StatsRegistry* registry_;
  ReoptSessionOptions options_;
  ReoptSessionMetrics metrics_;
  FlushOptStats last_flush_;
  std::vector<Slot> queries_;
  std::unique_ptr<ThreadPool> pool_;  // null when worker_threads == 0
  QueryId next_id_ = 0;
  /// Guards the mutation-policy counters OnStatsMutated touches from
  /// mutator threads (everything else in this class is coordinator-only).
  std::mutex policy_mu_;
  int64_t mutations_since_flush_ = 0;
  /// Mutual exclusion + reentrancy guard for Flush (auto-flush callbacks,
  /// racing mutator-thread flushes).
  std::atomic<bool> in_flush_{false};
};

}  // namespace iqro

#endif  // IQRO_SERVICE_REOPT_SESSION_H_
