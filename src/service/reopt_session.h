// ReoptSession: the multi-query re-optimization manager — the service
// layer above the single-query engine.
//
// The paper treats re-optimization as incremental view maintenance over the
// optimizer's internal state and notes that deltas are cheapest when
// updates are *batched* before the fixpoint runs (§4). A production
// deployment amplifies that twice over: dozens of live queries (prepared
// statements, standing stream queries, AQP mid-flight plans) watch the same
// statistics, and runtime feedback arrives as a churny stream full of
// oscillations and no-ops. This class turns that stream into the minimum
// amount of fixpoint work — and publishes the part consumers actually act
// on, the plan changes:
//
//   mutators ──► StatsRegistry (NetDeltaTable: one net delta per statistic)
//                     │ OnStatsMutated ──► FlushPolicy (when to flush)
//                     ▼
//              ReoptSession::Flush
//                     │ TakePendingBatch(): coalesced StatChanges,
//                     │ net-zero churn already absorbed
//                     ▼
//        for each registered query whose relations overlap the batch:
//              DeclarativeOptimizer::ReoptimizeBatch(changes)
//              — all dirty memo state seeded, then ONE fixpoint run
//                     │
//                     ▼
//        PlanChangeEvent per query whose canonical best plan changed
//        (winner-closure diff, not dirty-set) ──► PlanSubscriber
//        FlushReport ──► MetricsExporter
//
// One flush therefore costs one registry drain plus at most one delta
// fixpoint per *affected* optimizer, no matter how many raw mutations the
// batch contained (see bench_batch_churn for the measured payoff vs
// change-at-a-time Reoptimize()).
//
// ## The v2 surface (this header's API)
//
//   ReoptSession session(&registry, options);
//   QueryHandle q = session.Register(optimizer);   // typed, move-only
//   q.Subscribe(&my_subscriber);                   // plan-change events
//   ...
//   // q's destructor unregisters; or q.Release() to do it early.
//
// Flush triggering is a pluggable FlushPolicy (service/flush_policy.h):
// CountPolicy reproduces the old `auto_flush_after`, DeadlinePolicy bounds
// wall-clock staleness (drive it via Poll()), CostGatedPolicy bounds the
// expected re-fixpoint work of a pending batch. Session metrics stream out
// through a MetricsExporter (service/metrics_exporter.h).
//
// The v1 surface — `Register(DeclarativeOptimizer*) -> QueryId`,
// `Unregister(QueryId)`, `ReoptSessionOptions::auto_flush_after` — remains
// this one PR as thin [[deprecated]] shims over the same internals;
// docs/API.md has the migration table.
//
// ## Notification semantics (the exactness contract)
//
// After each flush, a PlanChangeEvent fires exactly once per registered
// query whose *canonical best plan* changed — computed by diffing the
// query's winner-closure PlanDigest (core/plan_digest.h) across the flush,
// never from the dirty set. A flush that re-derives half the memo but
// lands on the same plan fires nothing; net-zero churn fires nothing.
// Events fire on the flushing thread, in registration order, after every
// pass completed and the registry reader lock is released; the event
// carries old/new BestCost, the operator/join-prefix diff, and the flush
// epoch. Queries without a subscriber pay nothing (no digest is computed).
// The differential harness proves the contract on the full scenario
// rotation (docs/TESTING.md "Notification oracle").
//
// Reentrancy (inside OnPlanChange):
//  * Reading the session, any registered optimizer, or the registry is
//    allowed — the flush's passes are complete.
//  * Unregister (handle destruction, Release(), or the deprecated
//    Unregister(id)) is allowed and is DEFERRED to the end of the
//    in-flight flush: every event of that flush still fires (including
//    the unregistering query's own), and the query stops being dispatched
//    from the next flush on.
//  * Registering a new query is NOT allowed (checked).
//  * Mutating statistics is allowed; a policy-triggered auto-flush from
//    inside the callback backs off on `in_flush_` and the mutation sits
//    pending for the next flush.
//
// ## Ownership
//
// The session borrows everything: the registry and every registered
// optimizer must outlive it (or be unregistered first); subscribers,
// policies (shared) and exporters must outlive their use. The session
// subscribes to the registry on construction and unsubscribes in its
// destructor. QueryHandles may outlive the session: a handle's destructor
// detects the dead session (liveness token) and becomes a no-op.
// Registered optimizers must already have run Optimize() and must drain
// this session's registry (checked).
//
// ## Consistency contract
//
// Between flushes, registered optimizers hold plans that are exact w.r.t.
// the statistics of the *last* flush — the same staleness window a single
// optimizer has between Reoptimize() calls. A flush brings every
// registered optimizer to the fixpoint of the current statistics; the
// differential harness proves that state byte-equal (CanonicalDumpState)
// to a from-scratch optimization, for every registered optimizer, under
// randomized batched churn (docs/TESTING.md).
//
// Registered optimizers must never call Reoptimize() themselves: that
// would drain the shared registry and starve their peers. Registering an
// optimizer that is already at fixpoint w.r.t. *newer* statistics than the
// last flush is safe — the next flush re-seeds it and lands it in the same
// state (re-optimization is idempotent). Registering one whose fixpoint
// *predates* the last drain is a hard error (Register checks epochs): the
// drained deltas are gone, so it would stay silently stale forever.
//
// ## Threading model
//
// Two independent degrees of concurrency, both off by default:
//
//  * **Parallel dispatch** (`ReoptSessionOptions::worker_threads >= 1`):
//    Flush() drains one epoch-versioned batch, then dispatches the
//    per-query ReoptimizeBatch() passes onto a fixed-size worker pool
//    (common/thread_pool.h) instead of running them in registration order
//    on the calling thread. Each optimizer — its memo, arena, worklist,
//    metrics — is owned by exactly one pool task per flush (the task also
//    computes the post-flush PlanDigest for subscribed queries, so digest
//    work parallelizes with the fixpoints); the *shared* world state an
//    optimizer reads while fixpointing (split memo, PropTable, summary
//    cache) is switched to internal locking at Register() time
//    (DeclarativeOptimizer::EnableConcurrentFlushes), and the statistics
//    values are frozen for the whole dispatch window by the registry's
//    reader lock. Per-flush metrics and events are aggregated from the
//    task futures on the coordinator, in registration order — race-free
//    by construction, not by atomics; subscribers always run on the
//    flushing thread, serial and pooled dispatch alike.
//    `worker_threads == 0` keeps the serial dispatch path, byte-identical
//    to the pre-pool behavior.
//
//  * **Concurrent mutation**: statistics producers may Record() from other
//    threads while a flush runs. The registry's mutation lock serializes
//    them against the drain and the dispatch window: a racing mutation
//    lands in the *next* epoch's batch, never lost, never double-applied
//    (tests/concurrency_test.cpp). Between the drain and the next flush it
//    simply sits pending — the same staleness window as always. FlushPolicy
//    evaluation is serialized under the session's policy mutex whatever
//    thread mutates.
//
// Register/Unregister/Subscribe and session destruction remain
// single-threaded calls: do them from the thread that owns the session,
// with no flush in flight (the one exception: Unregister from inside a
// subscriber callback, which is defined above). docs/ARCHITECTURE.md has
// the full ownership/epoch lifecycle.
#ifndef IQRO_SERVICE_REOPT_SESSION_H_
#define IQRO_SERVICE_REOPT_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "core/declarative_optimizer.h"
#include "service/flush_policy.h"
#include "service/metrics_exporter.h"
#include "service/plan_subscriber.h"
#include "service/session_metrics.h"
#include "stats/stats_registry.h"

namespace iqro {

class QueryHandle;

struct ReoptSessionOptions {
  /// v1 shim: N > 0 is mapped to `flush_policy = CountPolicy(N)` at
  /// session construction when no policy is set. Writes that repeat a
  /// statistic's current value are swallowed before recording and do not
  /// count (unchanged from PR 3).
  [[deprecated("set flush_policy = std::make_shared<CountPolicy>(n) instead")]]
  int64_t auto_flush_after = 0;
  /// 0: Flush() dispatches every per-query fixpoint serially on the
  /// calling thread — the pre-pool path, byte-identical results and
  /// behavior. N >= 1: dispatch on a fixed pool of N worker threads (one
  /// task per registered query per flush; see the threading model above).
  int worker_threads = 0;
  /// When to auto-flush (service/flush_policy.h). Null: manual Flush()
  /// only. Evaluated after every value-changing mutation and on Poll();
  /// shared so options stay copyable — one policy instance per session.
  std::shared_ptr<FlushPolicy> flush_policy;
  /// Receives one FlushReport per dispatched flush
  /// (service/metrics_exporter.h). Borrowed, may be null; must outlive the
  /// session or be detached with it.
  MetricsExporter* metrics_exporter = nullptr;

  // Special members defaulted inside a suppression region: otherwise the
  // deprecated field makes every TU that merely copies/moves options warn,
  // not just the ones that touch it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ReoptSessionOptions() = default;
  ReoptSessionOptions(const ReoptSessionOptions&) = default;
  ReoptSessionOptions(ReoptSessionOptions&&) = default;
  ReoptSessionOptions& operator=(const ReoptSessionOptions&) = default;
  ReoptSessionOptions& operator=(ReoptSessionOptions&&) = default;
  ~ReoptSessionOptions() = default;
#pragma GCC diagnostic pop
};

class ReoptSession final : public StatsSubscriber {
 public:
  using QueryId = int;

  /// `registry` must outlive the session. Subscribes immediately.
  explicit ReoptSession(StatsRegistry* registry, ReoptSessionOptions options = {});
  ~ReoptSession() override;

  ReoptSession(const ReoptSession&) = delete;
  ReoptSession& operator=(const ReoptSession&) = delete;

  /// Registers a live query and returns its typed handle (move-only; its
  /// destructor unregisters). `optimizer` must have run Optimize(), must
  /// drain this session's registry, and must outlive its registration. Its
  /// state must not predate the registry's last drain (checked via
  /// stats_epoch(): the drained deltas are gone, so a late optimizer could
  /// never catch up and would stay silently stale); pending-but-undrained
  /// changes at registration time are fine — the next flush seeds them.
  /// `subscriber`, when non-null, is attached as by
  /// QueryHandle::Subscribe() with the current plan as the baseline.
  [[nodiscard]] QueryHandle Register(DeclarativeOptimizer& optimizer,
                                     PlanSubscriber* subscriber = nullptr);

  /// v1 shim: as Register(ref) but returns the raw id and leaves
  /// unregistration to the caller (no RAII, no subscriber).
  [[deprecated("use Register(DeclarativeOptimizer&) -> QueryHandle")]]
  QueryId Register(DeclarativeOptimizer* optimizer);
  /// v1 shim over the handle's unregistration path (same deferred-during-
  /// callback semantics).
  [[deprecated("QueryHandle unregisters on destruction; or call handle.Release()")]]
  void Unregister(QueryId id);

  int num_queries() const { return static_cast<int>(queries_.size()); }

  /// True when mutations were recorded since the last flush (they may still
  /// coalesce to nothing — see StatsRegistry::HasPending).
  bool HasPending() const { return registry_->HasPending(); }

  /// Drains the registry's coalesced pending batch, dispatches it as one
  /// ReoptimizeBatch() pass to every registered optimizer whose relation
  /// set the batch can affect — serially or on the worker pool, per
  /// `worker_threads` — then fires PlanChangeEvents and the metrics
  /// export. Returns the number of StatChanges dispatched; 0 when the
  /// batch coalesced away (or nothing was pending, or another thread's
  /// flush is already in flight — the racing batch belongs to that flush).
  size_t Flush();

  /// Consults the flush policy without a mutation having arrived — the
  /// driver-loop hook for time-based policies (a DeadlinePolicy deadline
  /// can only be observed when the policy is asked). Flushes and returns
  /// the dispatched change count when the policy says so; otherwise 0.
  /// No-op without a policy.
  size_t Poll();

  /// Read metrics()/last_flush() only from a state where no flush can be
  /// in flight and no mutator is recording: after your own *successful*
  /// Flush() (one that drained, not one that returned 0 because another
  /// thread's flush held `in_flush_` — backing off does not synchronize
  /// with that flush's writes), or after every mutator thread has joined.
  /// With a policy + a mutator thread, a flush may be running on *their*
  /// thread at any moment — quiesce first.
  const ReoptSessionMetrics& metrics() const { return metrics_; }

  /// OptMetrics aggregate of the most recent non-empty flush (read rules
  /// above); zeroed at session construction.
  const FlushOptStats& last_flush() const { return last_flush_; }

  /// The dispatch pool's size (0 = serial dispatch).
  int worker_threads() const { return pool_ ? pool_->size() : 0; }

  /// StatsSubscriber: counts the mutation and evaluates the flush policy
  /// against the under-lock snapshot. May be invoked from any mutating
  /// thread (no registry lock held).
  void OnStatsMutated(StatsRegistry& registry, const StatsMutationEvent& event) override;

 private:
  friend class QueryHandle;

  struct Slot {
    QueryId id;
    DeclarativeOptimizer* optimizer;
    /// Plan-change subscriber; null = no notifications, no digest work.
    PlanSubscriber* subscriber = nullptr;
    /// Bumped by every SetSubscriber call: pending-event delivery checks
    /// it so a mid-notification detach-then-reattach of the SAME pointer
    /// still suppresses (the reattach took a fresh post-flush baseline;
    /// pointer identity alone cannot see it).
    uint64_t subscription_gen = 0;
    /// True while a computed event has not settled (a throwing subscriber
    /// unwound delivery before this slot's turn): the next flush
    /// re-derives the digest even if its batch cannot affect the query,
    /// so the dropped change is re-detected rather than deferred until
    /// unrelated churn happens to touch it.
    bool rediff_pending = false;
    /// Winner-closure baseline the next flush diffs against. Valid iff
    /// `subscriber != nullptr` (captured at attach time, advanced by every
    /// flush that recomputed it).
    PlanDigest digest;
  };

  /// What one dispatched pass reports back to the coordinator (by value,
  /// through the task future — the race-free aggregation path).
  struct PassResult {
    bool affected = false;
    int64_t eps_seeded = 0;
    int64_t fixpoint_steps = 0;
    int64_t touched_eps = 0;
    int64_t touched_alts = 0;
    int64_t tasks_enqueued = 0;
    /// Post-flush winner closure; computed only for affected queries with
    /// a subscriber attached (an unaffected query's plan cannot change —
    /// the prefilter already guarantees its state is exact).
    bool digest_computed = false;
    PlanDigest digest;
  };

  /// One per-query pass: prefilter, ReoptimizeBatch, metrics delta, digest.
  /// Runs on a pool worker (parallel) or the flushing thread (serial).
  /// `force_digest` re-derives the digest even for a prefiltered-away
  /// query (Slot::rediff_pending — an unsettled event from a prior flush).
  static PassResult RunPass(DeclarativeOptimizer* optimizer,
                            const std::vector<StatChange>& changes, uint64_t epoch,
                            bool want_digest, bool force_digest);
  void AggregatePass(const PassResult& r);

  QueryId RegisterImpl(DeclarativeOptimizer* optimizer, PlanSubscriber* subscriber);
  /// Unregisters `id` — immediately, or deferred to flush end when called
  /// from inside a subscriber callback (see the reentrancy rules).
  void UnregisterImpl(QueryId id);
  /// Attaches/replaces/clears (nullptr) a slot's subscriber; captures the
  /// current plan as the event baseline on attach.
  void SetSubscriber(QueryId id, PlanSubscriber* subscriber);
  Slot* FindSlot(QueryId id);

  /// Evaluates the policy under `policy_mu_` and flushes on demand.
  /// `event` is null for Poll() probes.
  size_t MaybePolicyFlush(const StatsMutationEvent* event);
  /// The one OnFlush protocol (empty and dispatched flushes alike): read
  /// the post-drain pending count, then hand it to the policy under
  /// `policy_mu_`. Registry reads always happen BEFORE the policy mutex.
  void PolicyOnFlush(const FlushOptStats& stats, int64_t changes);

  StatsRegistry* registry_;
  ReoptSessionOptions options_;
  ReoptSessionMetrics metrics_;
  FlushOptStats last_flush_;
  std::vector<Slot> queries_;
  std::unique_ptr<ThreadPool> pool_;  // null when worker_threads == 0
  QueryId next_id_ = 0;
  /// Liveness token handles hold: *alive_ flips false in the destructor so
  /// a handle outliving its session no-ops instead of touching freed
  /// memory.
  std::shared_ptr<bool> alive_;
  /// Guards the mutation-policy state OnStatsMutated/Poll touch from
  /// mutator threads — including the FlushPolicy instance itself, whose
  /// calls are serialized under this mutex (everything else in this class
  /// is coordinator-only).
  std::mutex policy_mu_;
  int64_t mutations_since_flush_ = 0;
  /// Mutual exclusion + reentrancy guard for Flush (policy-triggered
  /// callbacks, racing mutator-thread flushes).
  std::atomic<bool> in_flush_{false};
  /// True while PlanChangeEvents are being delivered (coordinator thread
  /// only): Unregister defers, Register checks.
  bool notifying_ = false;
  std::vector<QueryId> deferred_unregister_;
};

/// Move-only registration of one query in one ReoptSession. Destroying (or
/// Release()ing) the handle unregisters the query — deferred to flush end
/// when it happens inside a subscriber callback. A handle that outlives
/// its session no-ops on destruction. Not thread-safe; use from the
/// session's thread.
class QueryHandle {
 public:
  /// Invalid handle (valid() == false); assign a real one into it.
  QueryHandle() = default;
  QueryHandle(QueryHandle&& other) noexcept;
  QueryHandle& operator=(QueryHandle&& other) noexcept;
  ~QueryHandle();

  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  /// True while this handle owns a registration in a session that is
  /// still alive — false once Released, moved-from, or the session was
  /// destroyed (the registration died with it).
  bool valid() const { return session_ != nullptr && alive_ != nullptr && *alive_; }
  /// The session-stable id (PlanChangeEvent::query_id). -1 when invalid —
  /// including a handle invalidated by its session's destruction.
  ReoptSession::QueryId id() const { return valid() ? id_ : -1; }
  /// The registered optimizer (null when invalid, as for id()).
  DeclarativeOptimizer* optimizer() const { return valid() ? optimizer_ : nullptr; }

  /// Attaches (or replaces) the plan-change subscriber; the query's
  /// *current* canonical plan becomes the baseline the next flush diffs
  /// against. nullptr detaches and drops the digest work. An event fires
  /// only if the subscriber it was computed for is still attached at
  /// delivery time, so detaching OR replacing from inside a subscriber
  /// callback suppresses the query's undelivered event of the in-flight
  /// flush (no replay of pre-attach history to the new observer, no call
  /// into a destroyed old one). The handle must own a registration
  /// (never-registered or Released handles are a programming error); on a
  /// dead session this is a no-op like every other handle operation.
  void Subscribe(PlanSubscriber* subscriber);

  /// Unregisters now (or deferred, inside a callback) and invalidates the
  /// handle. No-op when already invalid or the session is gone.
  void Release();

 private:
  friend class ReoptSession;
  QueryHandle(ReoptSession* session, ReoptSession::QueryId id,
              DeclarativeOptimizer* optimizer, std::shared_ptr<const bool> alive)
      : session_(session), optimizer_(optimizer), alive_(std::move(alive)), id_(id) {}

  ReoptSession* session_ = nullptr;
  DeclarativeOptimizer* optimizer_ = nullptr;
  std::shared_ptr<const bool> alive_;
  ReoptSession::QueryId id_ = -1;
};

}  // namespace iqro

#endif  // IQRO_SERVICE_REOPT_SESSION_H_
