#include "service/shared_summary_cache.h"

#include <mutex>

namespace iqro {

bool SharedSummaryCache::Lookup(uint64_t epoch, RelSet s, Summary* out) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (epoch_ == epoch) {
      auto it = cache_.find(s);
      if (it != cache_.end()) {
        *out = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SharedSummaryCache::Insert(uint64_t epoch, RelSet s, const Summary& value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (epoch < epoch_) return;  // straggler from a superseded epoch: drop
  if (epoch > epoch_) {
    cache_.clear();
    epoch_ = epoch;
  }
  cache_.try_emplace(s, value);  // first insert wins (identical values)
}

size_t SharedSummaryCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return cache_.size();
}

}  // namespace iqro
