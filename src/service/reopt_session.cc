#include "service/reopt_session.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serialize.h"
#include "service/snapshot.h"

namespace iqro {

namespace {

/// Conditionally engaged lock on the registration gate. Only sessions with
/// a poll timer have cross-thread Register/Unregister/Subscribe traffic to
/// serialize; everyone else skips the mutex entirely. The flushing thread
/// itself also skips it (callback-reentrant handle operations during a
/// timer-driven flush would otherwise self-deadlock on the gate the timer
/// already holds).
class GateLock {
 public:
  GateLock(std::mutex& gate, bool engage) : gate_(engage ? &gate : nullptr) {
    if (gate_ != nullptr) gate_->lock();
  }
  ~GateLock() {
    if (gate_ != nullptr) gate_->unlock();
  }
  GateLock(const GateLock&) = delete;
  GateLock& operator=(const GateLock&) = delete;

 private:
  std::mutex* gate_;
};

}  // namespace

ReoptSession::ReoptSession(StatsRegistry* registry, ReoptSessionOptions options)
    : registry_(registry), options_(std::move(options)),
      alive_(std::make_shared<bool>(true)) {
  IQRO_CHECK(registry_ != nullptr);
  IQRO_CHECK(options_.worker_threads >= 0);
  IQRO_CHECK(options_.per_query_work_budget >= 0);
  IQRO_CHECK(options_.quarantine_max_strikes >= 1);
  IQRO_CHECK(options_.quarantine_backoff_base_ticks >= 1);
  IQRO_CHECK(options_.quarantine_backoff_cap_ticks >=
             options_.quarantine_backoff_base_ticks);
  IQRO_CHECK(options_.poll_interval.count() >= 0);
  if (options_.worker_threads >= 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.pending_hard_watermark > 0) {
    registry_->SetPendingLimit(options_.pending_hard_watermark);
  }
  registry_->Subscribe(this);
  // The timer starts last: everything it can reach is initialized.
  if (options_.poll_interval.count() > 0) {
    timer_ = std::thread([this] { TimerLoop(); });
  }
}

ReoptSession::~ReoptSession() {
  // Stop the timer FIRST: its polls walk queries_ and flush; nothing else
  // may be torn down while it can still fire.
  if (timer_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(timer_mu_);
      timer_stop_ = true;
    }
    timer_cv_.notify_all();
    timer_.join();
  }
  // Registered optimizers outlive the session, the summary store does not:
  // detach every remaining calculator before it goes away.
  for (Slot& slot : queries_) slot.optimizer->AttachSharedSummaryCache(nullptr);
  // Flip the handle liveness token next: a handle destroyed after this
  // point must no-op instead of calling back into a dying session.
  *alive_ = false;
  registry_->Unsubscribe(this);
  // The backlog limit was this session's overload policy, not the
  // registry's: lift it for whoever uses the registry next.
  if (options_.pending_hard_watermark > 0) registry_->SetPendingLimit(0);
  // pool_ (if any) drains and joins in its destructor: a dispatched pass
  // never outlives the session that owns its optimizers' slots.
}

void ReoptSession::TimerLoop() {
  std::unique_lock<std::mutex> lk(timer_mu_);
  while (!timer_stop_) {
    timer_cv_.wait_for(lk, options_.poll_interval);
    if (timer_stop_) break;
    lk.unlock();
    {
      // Unconditional gate: this thread is never the flush owner here.
      GateLock gate(reg_gate_, true);
      PollTick();
    }
    lk.lock();
  }
}

ReoptSession::QueryId ReoptSession::RegisterImpl(DeclarativeOptimizer* optimizer,
                                                 PlanSubscriber* subscriber) {
  IQRO_CHECK(optimizer != nullptr);
  // Growing queries_ mid-notification would invalidate the event walk; the
  // reentrancy rules forbid it (docs/API.md).
  IQRO_CHECK(!notifying_);
  // Overload degradation: at the hard watermark the session sheds load —
  // taking on MORE standing queries while the backlog is pinned at its
  // ceiling only digs the hole deeper.
  if (options_.pending_hard_watermark > 0 &&
      registry_->PendingStatCount() >= options_.pending_hard_watermark) {
    throw SessionOverloaded(
        "ReoptSession::Register rejected: pending backlog at the hard "
        "watermark (overload)");
  }
  // The session dispatches drained change lists; an optimizer wired to a
  // different registry would be seeded with deltas its statistics never
  // saw, and an un-optimized one has no state to maintain.
  IQRO_CHECK(optimizer->registry() == registry_);
  IQRO_CHECK(optimizer->optimized());
  // An optimizer whose fixpoint predates the last drain missed deltas that
  // are gone for good: future flushes would leave it silently stale
  // forever. Pending-but-undrained changes are fine (the next flush seeds
  // them), as is being *ahead* of the last drain.
  IQRO_CHECK(optimizer->stats_epoch() >= registry_->drained_epoch());
  if (pool_ != nullptr) {
    // Pool dispatch runs this optimizer's fixpoint concurrently with its
    // world-sharing peers: flip the shared read surfaces (split memo,
    // PropTable, summary cache) to internal locking now, while still
    // single-threaded. (Sticky — it survives quarantine teardowns.)
    optimizer->EnableConcurrentFlushes();
  }
  Slot slot;
  slot.id = next_id_;
  slot.optimizer = optimizer;
  // Fresh registrations start "just touched" on the LRU clock: budget
  // enforcement prefers spilling genuinely dormant peers first.
  slot.last_active_tick = ticks_.load(std::memory_order_relaxed);
  if (subscriber != nullptr) {
    slot.subscriber = subscriber;
    slot.digest = optimizer->ComputePlanDigest();
  }
  queries_.push_back(std::move(slot));
  // Cross-query summary sharing: point every registered calculator at the
  // session's epoch-keyed store (sound — same registry, checked above).
  // Serial and pooled dispatch alike; the store is internally locked. Only
  // attached from the second query on: a single-query session has nobody
  // to share with, so it skips the store's lock traffic entirely.
  if (queries_.size() >= 2) {
    for (Slot& s : queries_) s.optimizer->AttachSharedSummaryCache(&summary_cache_);
  }
  // The resident gauge tracks the live set exactly — not just at flush
  // boundaries: a registration grows it immediately, so a monitor reading
  // metrics() between flushes never sees a stale total.
  metrics_.resident_memo_bytes = static_cast<int64_t>(ComputeResidentBytes());
  return next_id_++;
}

QueryHandle ReoptSession::Register(DeclarativeOptimizer& optimizer,
                                   PlanSubscriber* subscriber) {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  const QueryId id = RegisterImpl(&optimizer, subscriber);
  return QueryHandle(this, id, &optimizer, alive_);
}

ReoptSession::Slot* ReoptSession::FindSlot(QueryId id) {
  auto it = std::find_if(queries_.begin(), queries_.end(),
                         [id](const Slot& s) { return s.id == id; });
  return it == queries_.end() ? nullptr : &*it;
}

const ReoptSession::Slot* ReoptSession::FindSlot(QueryId id) const {
  auto it = std::find_if(queries_.begin(), queries_.end(),
                         [id](const Slot& s) { return s.id == id; });
  return it == queries_.end() ? nullptr : &*it;
}

QueryState ReoptSession::query_state(QueryId id) const {
  const Slot* slot = FindSlot(id);
  IQRO_CHECK(slot != nullptr);
  return slot->state;
}

int ReoptSession::num_quarantined() const {
  int n = 0;
  for (const Slot& s : queries_) n += s.state == QueryState::kQuarantined ? 1 : 0;
  return n;
}

int ReoptSession::num_parked() const {
  int n = 0;
  for (const Slot& s : queries_) n += s.state == QueryState::kParked ? 1 : 0;
  return n;
}

void ReoptSession::UnregisterImpl(QueryId id) {
  Slot* slot = FindSlot(id);
  IQRO_CHECK(slot != nullptr);
  if (notifying_) {
    // Unregistration from inside a subscriber callback is DEFERRED to the
    // end of the in-flight flush: the flush's remaining events (including
    // this query's own, if still queued) fire against a stable slot list,
    // and the query stops being dispatched from the next flush on.
    IQRO_CHECK(std::find(deferred_unregister_.begin(), deferred_unregister_.end(), id) ==
               deferred_unregister_.end());
    deferred_unregister_.push_back(id);
    return;
  }
  // The summary store dies with the session; the optimizer may not.
  slot->optimizer->AttachSharedSummaryCache(nullptr);
  queries_.erase(queries_.begin() + (slot - queries_.data()));
  // Down to one query: nobody left to share with — detach the survivor so
  // it stops paying the shared store's lock traffic.
  if (queries_.size() == 1) {
    queries_.front().optimizer->AttachSharedSummaryCache(nullptr);
  }
  if (options_.flush_policy != nullptr) {
    // Per-query policy state (CostGatedPolicy EWMAs) dies with the query.
    std::lock_guard<std::mutex> lock(policy_mu_);
    options_.flush_policy->OnQueryUnregistered(id);
  }
  // Shrink the resident gauge NOW, not at the next dispatched flush: a
  // release followed by a coalesced-to-empty flush used to leave the dead
  // query's memo counted until the next real dispatch ran budget
  // enforcement (and a release while over budget could evict a live peer
  // on the strength of bytes that no longer exist).
  metrics_.resident_memo_bytes = static_cast<int64_t>(ComputeResidentBytes());
  RefreshQuarantineIndex();
}

void ReoptSession::HandleRelease(QueryId id) {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  UnregisterImpl(id);
}

void ReoptSession::HandleSubscribe(QueryId id, PlanSubscriber* subscriber) {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  SetSubscriber(id, subscriber);
}

void ReoptSession::SetSubscriber(QueryId id, PlanSubscriber* subscriber) {
  Slot* slot = FindSlot(id);
  IQRO_CHECK(slot != nullptr);
  slot->subscriber = subscriber;
  // Every (re)subscription is a new generation: a pending event computed
  // for an older generation never delivers, even to the same pointer. Any
  // pending rediff dies with the old subscription (the new baseline is
  // captured fresh below).
  ++slot->subscription_gen;
  slot->rediff_pending = false;
  if (subscriber != nullptr && slot->state == QueryState::kHealthy && !slot->evicted) {
    // The plan as of *now* is the baseline: the first event this
    // subscriber sees describes a change relative to the plan it attached
    // under, never a replay of older history.
    slot->digest = slot->optimizer->ComputePlanDigest();
  } else {
    // Detach — or an attach to a quarantined/evicted query, whose
    // torn-down optimizer has no plan to baseline against: the empty
    // digest plus the forced re-diff (at rehabilitation, or at the
    // rehydrating flush) makes the first post-recovery event describe
    // everything since attach.
    slot->digest = PlanDigest{};
    if (subscriber != nullptr && slot->evicted) {
      // The pending re-diff also *triggers* the rehydration: the next
      // flush restores the memo and re-derives the digest even when its
      // batch cannot affect this query.
      slot->rediff_pending = true;
    }
  }
}

ReoptSession::PassResult ReoptSession::RunPass(DeclarativeOptimizer* optimizer,
                                               const std::vector<StatChange>& changes,
                                               uint64_t epoch, bool want_digest,
                                               bool force_digest, int64_t work_budget) {
  IQRO_FAULT_POINT("service.pass");
  PassResult r;
  r.dispatched = true;
  // Whole-query prefilter: a change can only matter to a query whose
  // relation set contains the change's scope. (Per-EP filtering inside
  // ReoptimizeBatch handles the precise subset tests.)
  const RelSet root = optimizer->RootRelations();
  r.affected = std::any_of(changes.begin(), changes.end(), [root](const StatChange& c) {
    return RelIsSubset(c.scope, root);
  });
  const int64_t enqueued_before = optimizer->metrics().tasks_enqueued;
  if (!r.affected) {
    // The skip itself proves this optimizer's state reflects the new
    // statistics — its canonical plan cannot have changed, so normally no
    // digest is recomputed either. An empty batch stamps its stats epoch
    // (otherwise a later Register() would reject it as having missed this
    // drain); no work budget — it does no fixpoint work.
    static const std::vector<StatChange> kEmpty;
    optimizer->ReoptimizeBatch(kEmpty, epoch);
    if (want_digest && force_digest) {
      // A prior flush left this slot's baseline unsettled (a throwing
      // subscriber dropped its event, or a rehabilitation restored the
      // optimizer): re-derive the digest so the dropped change is
      // re-detected NOW, not only at some future flush that happens to
      // touch this query's relations.
      r.digest = optimizer->ComputePlanDigest();
      r.digest_computed = true;
    }
    return r;
  }
  r.eps_seeded = optimizer->ReoptimizeBatch(changes, epoch, work_budget);
  const OptMetrics& m = optimizer->metrics();
  r.eps_scanned = m.round_eps_scanned;
  r.fixpoint_steps = m.round_steps;
  r.touched_eps = m.round_touched_eps;
  r.touched_alts = m.round_touched_alts;
  r.tasks_enqueued = m.tasks_enqueued - enqueued_before;
  if (want_digest) {
    // On the worker: the digest reads only task-owned optimizer state plus
    // the PropTable, which is already in concurrent mode under a pooled
    // session — so digest work parallelizes with the fixpoints instead of
    // serializing on the coordinator.
    r.digest = optimizer->ComputePlanDigest();
    r.digest_computed = true;
  }
  return r;
}

void ReoptSession::AggregatePass(const PassResult& r) {
  if (!r.affected) {
    ++metrics_.queries_skipped;
    return;
  }
  metrics_.eps_seeded += r.eps_seeded;
  ++metrics_.reopt_passes;
  ++last_flush_.passes;
  last_flush_.eps_seeded += r.eps_seeded;
  last_flush_.eps_scanned += r.eps_scanned;
  last_flush_.fixpoint_steps += r.fixpoint_steps;
  last_flush_.touched_eps += r.touched_eps;
  last_flush_.touched_alts += r.touched_alts;
  last_flush_.tasks_enqueued += r.tasks_enqueued;
}

void ReoptSession::RecordStrike(Slot& slot, const std::exception_ptr& err, uint64_t epoch,
                                std::vector<ServiceEvent>* events, int64_t* strikes) {
  QueryQuarantinedEvent::Reason reason = QueryQuarantinedEvent::Reason::kException;
  std::string message = "unknown failure";
  try {
    std::rethrow_exception(err);
  } catch (const WorkBudgetExceeded& e) {
    reason = QueryQuarantinedEvent::Reason::kWorkBudget;
    message = e.what();
  } catch (const std::exception& e) {
    message = e.what();
  } catch (...) {
  }
  // A fixpoint throw already tore the optimizer down (the core's strong
  // guarantee). A failure OUTSIDE the fixpoint — digest computation, an
  // injected service-layer fault before dispatch — leaves it untorn but
  // possibly short one drained batch, which is unrecoverable incrementally
  // (the drained deltas are gone): pin it to the one canonical quarantined
  // state so nothing reads a maybe-stale plan.
  if (slot.optimizer->optimized()) slot.optimizer->Invalidate();
  slot.state = QueryState::kQuarantined;
  ++slot.strikes;
  // The digest BASELINE is kept (last plan the subscriber saw); only the
  // unsettled-event flag is dropped — no digest exists to re-diff until a
  // rebuild restores one.
  slot.rediff_pending = false;
  ++metrics_.quarantines;
  ++*strikes;
  bool parked = false;
  int64_t backoff = 0;
  if (slot.strikes >= options_.quarantine_max_strikes) {
    slot.state = QueryState::kParked;
    ++metrics_.queries_parked;
    parked = true;
  } else {
    // Capped exponential: min(cap, base * 2^(strikes-1)) ticks from now.
    backoff = options_.quarantine_backoff_base_ticks;
    for (int i = 1;
         i < slot.strikes && backoff < options_.quarantine_backoff_cap_ticks; ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, options_.quarantine_backoff_cap_ticks);
    slot.eligible_at_tick = ticks_.load(std::memory_order_relaxed) + backoff;
  }
  if (slot.subscriber != nullptr) {
    ServiceEvent se;
    se.kind = ServiceEvent::Kind::kQuarantined;
    se.query = slot.id;
    se.computed_gen = slot.subscription_gen;
    se.quarantined.query_id = slot.id;
    se.quarantined.optimizer = slot.optimizer;
    se.quarantined.flush_epoch = epoch;
    se.quarantined.flush_index = metrics_.flushes;
    se.quarantined.reason = reason;
    se.quarantined.message = std::move(message);
    se.quarantined.strikes = slot.strikes;
    se.quarantined.parked = parked;
    se.quarantined.retry_in_ticks = backoff;
    events->push_back(std::move(se));
  }
}

void ReoptSession::AttemptRehabs(uint64_t epoch, std::vector<ServiceEvent>* events,
                                 int64_t* strikes, int64_t* rehabs) {
  const int64_t tick = ticks_.load(std::memory_order_relaxed);
  if (quarantined_count_.load(std::memory_order_relaxed) == 0 ||
      next_rehab_tick_.load(std::memory_order_relaxed) > tick) {
    return;
  }
  for (Slot& slot : queries_) {
    if (slot.state != QueryState::kQuarantined || slot.eligible_at_tick > tick) continue;
    try {
      // Same freeze the dispatch window uses: the rebuild reads the
      // statistics values directly, so racing mutators must wait. Taken
      // per rebuild so a long rebuild chain doesn't starve mutators of
      // the whole window at once.
      auto stats_frozen = registry_->ReaderLock();
      slot.optimizer->RebuildFromScratch();
      slot.state = QueryState::kHealthy;
      const int cleared = slot.strikes;
      slot.strikes = 0;
      slot.eligible_at_tick = 0;
      ++metrics_.rehabilitations;
      ++*rehabs;
      if (slot.subscriber != nullptr) {
        // The pre-quarantine baseline was kept: force a re-diff so THIS
        // flush fires exactly one PlanChangeEvent iff the rebuilt plan
        // differs from the last one the subscriber actually saw.
        slot.rediff_pending = true;
        ServiceEvent se;
        se.kind = ServiceEvent::Kind::kRehabilitated;
        se.query = slot.id;
        se.computed_gen = slot.subscription_gen;
        se.rehabilitated.query_id = slot.id;
        se.rehabilitated.optimizer = slot.optimizer;
        se.rehabilitated.flush_epoch = epoch;
        se.rehabilitated.flush_index = metrics_.flushes;
        se.rehabilitated.strikes_cleared = cleared;
        events->push_back(std::move(se));
      }
    } catch (...) {
      // The rebuild itself failed (Optimize tore down again): another
      // strike, deeper backoff — or the parking lot.
      RecordStrike(slot, std::current_exception(), epoch, events, strikes);
    }
  }
  RefreshQuarantineIndex();
}

void ReoptSession::RefreshQuarantineIndex() {
  int64_t n = 0;
  int64_t next = std::numeric_limits<int64_t>::max();
  for (const Slot& s : queries_) {
    if (s.state != QueryState::kQuarantined) continue;
    ++n;
    next = std::min(next, s.eligible_at_tick);
  }
  quarantined_count_.store(n, std::memory_order_relaxed);
  next_rehab_tick_.store(next, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Memo lifecycle: eviction budget + rehydration + snapshot/warm-restart
// ---------------------------------------------------------------------------

void ReoptSession::EvictSlot(Slot& slot) {
  slot.seed.clear();
  slot.optimizer->SerializeState(&slot.seed);
  slot.seed_epoch = slot.optimizer->stats_epoch();
  slot.optimizer->Invalidate();
  slot.evicted = true;
  // The digest BASELINE is kept, exactly as for a quarantine: rehydration
  // restores the identical plan, so the next diff describes only changes
  // the subscriber has not seen. An unsettled re-diff stays pending — it
  // will trigger (and be satisfied by) the rehydrating flush.
  ++metrics_.evictions;
}

bool ReoptSession::RehydrateSlot(Slot& slot, uint64_t epoch,
                                 std::vector<ServiceEvent>* events, int64_t* strikes) {
  try {
    // Same statistics freeze the rehab rebuilds use: the fallback rebuild
    // reads the statistics values directly. (The seed restore itself reads
    // only the payload, but holding the lock across both keeps the two
    // paths indistinguishable to racing mutators.)
    auto stats_frozen = registry_->ReaderLock();
    try {
      slot.optimizer->RestoreState(slot.seed, slot.seed_epoch);
    } catch (const SerializeError&) {
      // Seed unusable (corruption, an options change since eviction): the
      // from-scratch path is the fallback, never an outage. The restore
      // already tore back down, so the rebuild starts clean.
      slot.optimizer->RebuildFromScratch();
    }
    slot.evicted = false;
    slot.seed.clear();
    slot.seed.shrink_to_fit();
    slot.seed_epoch = 0;
    slot.last_active_tick = ticks_.load(std::memory_order_relaxed);
    ++metrics_.rehydrations;
    return true;
  } catch (...) {
    // Even the rebuild failed: this is a failed rebuild like any other —
    // the query leaves eviction into quarantine (its seed is gone; the
    // rehab path owns recovery from here).
    slot.evicted = false;
    slot.seed.clear();
    slot.seed.shrink_to_fit();
    slot.seed_epoch = 0;
    RecordStrike(slot, std::current_exception(), epoch, events, strikes);
    return false;
  }
}

size_t ReoptSession::ComputeResidentBytes() const {
  size_t total = 0;
  for (const Slot& s : queries_) {
    if (s.state == QueryState::kHealthy && !s.evicted && s.optimizer->optimized()) {
      total += s.optimizer->EstimatedMemoBytes();
    }
  }
  return total;
}

void ReoptSession::EnforceMemoBudget(int64_t* evictions_this_flush) {
  size_t resident = ComputeResidentBytes();
  if (options_.memo_byte_budget > 0) {
    while (resident > options_.memo_byte_budget) {
      // LRU victim: the evictable query least recently affected by a
      // flush (ties break toward the earliest registration — stable and
      // deterministic, which the differential harness relies on).
      Slot* victim = nullptr;
      for (Slot& s : queries_) {
        if (s.state != QueryState::kHealthy || s.evicted || !s.optimizer->optimized()) {
          continue;
        }
        if (victim == nullptr || s.last_active_tick < victim->last_active_tick) {
          victim = &s;
        }
      }
      if (victim == nullptr) break;  // nothing left to spill
      const size_t bytes = victim->optimizer->EstimatedMemoBytes();
      EvictSlot(*victim);
      if (evictions_this_flush != nullptr) ++*evictions_this_flush;
      resident -= std::min(resident, bytes);
    }
  }
  metrics_.resident_memo_bytes = static_cast<int64_t>(resident);
}

bool ReoptSession::EvictQuery(QueryId id) {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  IQRO_CHECK(!notifying_);
  Slot* slot = FindSlot(id);
  IQRO_CHECK(slot != nullptr);
  if (slot->state != QueryState::kHealthy || slot->evicted ||
      !slot->optimizer->optimized()) {
    return false;
  }
  EvictSlot(*slot);
  metrics_.resident_memo_bytes = static_cast<int64_t>(ComputeResidentBytes());
  return true;
}

bool ReoptSession::RehydrateQuery(QueryId id) {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  IQRO_CHECK(!notifying_);
  Slot* slot = FindSlot(id);
  IQRO_CHECK(slot != nullptr);
  if (!slot->evicted) return false;
  // A manual rehydration outside a flush has no batch epoch or event
  // queue; a strike it records surfaces through query_state() and the
  // next flush's rehab schedule (the events vector is dropped — there is
  // no delivery phase to fire it from).
  std::vector<ServiceEvent> events;
  int64_t strikes = 0;
  const bool ok = RehydrateSlot(*slot, registry_->drained_epoch(), &events, &strikes);
  if (strikes > 0) RefreshQuarantineIndex();
  metrics_.resident_memo_bytes = static_cast<int64_t>(ComputeResidentBytes());
  return ok;
}

int ReoptSession::num_evicted() const {
  int n = 0;
  for (const Slot& s : queries_) n += s.evicted ? 1 : 0;
  return n;
}

namespace {

/// Section types of the session snapshot container (service/snapshot.h
/// treats them as opaque). One kStatsSection first, then one
/// kQuerySection per registered query in registration order.
constexpr uint32_t kStatsSection = 1;
constexpr uint32_t kQuerySection = 2;

/// Query-record kinds inside a kQuerySection payload.
constexpr uint8_t kQueryCold = 0;  // no memo to persist (quarantined/parked)
constexpr uint8_t kQueryWarm = 1;  // u64 stats epoch + length-prefixed seed

}  // namespace

void ReoptSession::SaveSnapshot(const std::string& path) {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  IQRO_CHECK(!notifying_);
  // Settle first: drain whatever is pending so the snapshot captures a
  // fixpoint state (every warm query exact w.r.t. the drained epoch).
  Flush();
  service::SnapshotWriter writer;
  {
    std::string stats;
    registry_->SerializeState(&stats);
    writer.AddSection(kStatsSection, std::move(stats));
  }
  for (Slot& slot : queries_) {
    std::string payload;
    ByteWriter w(&payload);
    if (slot.evicted) {
      // Already spilled: the stored seed IS the warm state.
      w.PutU8(kQueryWarm);
      w.PutU64(slot.seed_epoch);
      w.PutU64(slot.seed.size());
      w.PutBytes(slot.seed.data(), slot.seed.size());
    } else if (slot.state == QueryState::kHealthy && slot.optimizer->optimized()) {
      std::string seed;
      slot.optimizer->SerializeState(&seed);
      w.PutU8(kQueryWarm);
      w.PutU64(slot.optimizer->stats_epoch());
      w.PutU64(seed.size());
      w.PutBytes(seed.data(), seed.size());
    } else {
      // Quarantined/parked: the torn-down memo has nothing worth saving —
      // the restart rebuilds this query from scratch (and a rebuild is
      // exactly what its recovery owed it anyway).
      w.PutU8(kQueryCold);
    }
    writer.AddSection(kQuerySection, std::move(payload));
  }
  writer.WriteAtomic(path);
}

std::vector<QueryHandle> ReoptSession::LoadSnapshot(
    const std::string& path, const std::vector<DeclarativeOptimizer*>& optimizers) {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  IQRO_CHECK(!notifying_);
  IQRO_CHECK(queries_.empty());
  // The reader checksums and frames every section before returning, and
  // the record parse below touches no session state: any rejection throws
  // with the world fully intact (callers fall back to from-scratch).
  service::SnapshotReader reader(path);
  const auto& sections = reader.sections();
  if (sections.empty() || sections[0].type != kStatsSection) {
    throw SerializeError(SerializeError::Code::kBadSection,
                         "snapshot: first section is not the statistics state");
  }
  if (sections.size() - 1 != optimizers.size()) {
    throw SerializeError(SerializeError::Code::kMismatch,
                         "snapshot: holds " + std::to_string(sections.size() - 1) +
                             " queries, caller supplied " +
                             std::to_string(optimizers.size()) + " optimizers");
  }
  struct QueryRecord {
    bool warm = false;
    uint64_t epoch = 0;
    std::string seed;
  };
  std::vector<QueryRecord> records(optimizers.size());
  for (size_t i = 0; i < optimizers.size(); ++i) {
    const auto& s = sections[i + 1];
    if (s.type != kQuerySection) {
      throw SerializeError(SerializeError::Code::kBadSection,
                           "snapshot: section " + std::to_string(i + 1) +
                               " has unknown type " + std::to_string(s.type));
    }
    ByteReader r(s.payload);
    const uint8_t kind = r.GetU8();
    if (kind == kQueryWarm) {
      records[i].warm = true;
      records[i].epoch = r.GetU64();
      const uint64_t len = r.GetU64();
      const unsigned char* bytes = r.GetBytes(static_cast<size_t>(len));
      records[i].seed.assign(reinterpret_cast<const char*>(bytes),
                             static_cast<size_t>(len));
    } else if (kind != kQueryCold) {
      throw SerializeError(SerializeError::Code::kBadSection,
                           "snapshot: query record " + std::to_string(i) +
                               " has unknown kind " + std::to_string(kind));
    }
    if (!r.AtEnd()) {
      throw SerializeError(SerializeError::Code::kBadSection,
                           "snapshot: query record " + std::to_string(i) +
                               " has trailing bytes");
    }
  }
  // Everything parsed and checksummed: mutate. The registry restore
  // requires a no-subscribers window, and this session IS its standing
  // subscriber — step aside for the swap, re-attach either way.
  registry_->Unsubscribe(this);
  try {
    registry_->RestoreState(sections[0].payload);
  } catch (...) {
    registry_->Subscribe(this);
    throw;
  }
  registry_->Subscribe(this);
  std::vector<QueryHandle> handles;
  handles.reserve(optimizers.size());
  for (size_t i = 0; i < optimizers.size(); ++i) {
    DeclarativeOptimizer* optimizer = optimizers[i];
    IQRO_CHECK(optimizer != nullptr);
    IQRO_CHECK(optimizer->registry() == registry_);
    {
      auto stats_frozen = registry_->ReaderLock();
      bool restored = false;
      if (records[i].warm) {
        try {
          // Stamp the restored registry's drained epoch, not the seed's
          // capture epoch: the snapshot was taken post-flush, so a warm
          // seed is exact w.r.t. that drain (an evicted query's older
          // seed saw only batches that could not affect it — the same
          // soundness argument the rehydration path rests on).
          optimizer->RestoreState(records[i].seed, registry_->drained_epoch());
          restored = true;
        } catch (const SerializeError&) {
          // Unusable seed inside a structurally valid snapshot (an
          // options/shape change since capture): this query takes the
          // slow path; its peers stay warm.
        }
      }
      if (!restored) optimizer->RebuildFromScratch();
    }
    const QueryId id = RegisterImpl(optimizer, nullptr);
    handles.push_back(QueryHandle(this, id, optimizer, alive_));
  }
  metrics_.resident_memo_bytes = static_cast<int64_t>(ComputeResidentBytes());
  return handles;
}

size_t ReoptSession::Flush() {
  // One flush at a time: a second caller (policy reentrancy, or a
  // mutator-thread flush racing the coordinator's) backs off — whatever it
  // wanted drained is either in the in-flight batch or stays pending for
  // the next flush.
  if (in_flush_.exchange(true)) return 0;
  // Timed from here (drain through delivery and budget enforcement); the
  // epilogue stamps the elapsed wall time into the FlushReport.
  const auto flush_started = std::chrono::steady_clock::now();
  flush_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  // RAII: an exception escaping the flush (a subscriber callback's throw)
  // must not leave in_flush_ stuck true — that would silently turn every
  // later Flush() into a no-op.
  struct InFlushGuard {
    ReoptSession* s;
    ~InFlushGuard() {
      s->flush_owner_.store(std::thread::id{}, std::memory_order_relaxed);
      s->in_flush_.store(false);
    }
  } in_flush_guard{this};
  // One tick of the retry clock per flush (quarantine backoffs count in
  // these).
  ticks_.fetch_add(1, std::memory_order_relaxed);
  {
    // Reset the policy counter BEFORE the drain: a mutation recorded in
    // the gap is then over-counted (worst case one spurious early flush,
    // benign) rather than under-counted (its increment erased while its
    // pending entry survives — with no later mutation a count policy
    // would never re-fire and the change would sit pending forever).
    std::lock_guard<std::mutex> lock(policy_mu_);
    mutations_since_flush_ = 0;
  }
  StatsRegistry::DrainedBatch batch = registry_->TakePendingBatch();

  // Quarantined queries whose backoff expired rebuild from scratch before
  // dispatch. Ordering is safe either way — the drain moves no values, and
  // re-seeding the drained changes into a just-rebuilt optimizer is
  // idempotent (it already read the post-change statistics) — but doing it
  // post-drain gives the events the batch's epoch.
  std::vector<ServiceEvent> service_events;
  int64_t strikes_this_flush = 0;
  int64_t rehabs_this_flush = 0;
  AttemptRehabs(batch.epoch, &service_events, &strikes_this_flush, &rehabs_this_flush);

  // Rehydration phase: an evicted query rejoins the resident set BEFORE
  // dispatch when this batch can affect its relations (so no relevant
  // batch is ever missed — the restore brings back evict-time state,
  // exact w.r.t. every batch skipped while evicted, all of which were
  // irrelevant to it by this very test) or when it owes a re-diff (its
  // torn-down memo has no digest to re-derive).
  int64_t evictions_this_flush = 0;
  int64_t rehydrations_this_flush = 0;
  for (Slot& slot : queries_) {
    if (!slot.evicted) continue;
    const RelSet root = slot.optimizer->RootRelations();
    const bool relevant =
        std::any_of(batch.changes.begin(), batch.changes.end(),
                    [root](const StatChange& c) { return RelIsSubset(c.scope, root); });
    if (!relevant && !slot.rediff_pending) continue;
    if (RehydrateSlot(slot, batch.epoch, &service_events, &strikes_this_flush)) {
      ++rehydrations_this_flush;
    }
  }

  // An unsettled baseline (a prior flush's delivery unwound before some
  // query's event, or a rehabilitation above) must be re-diffed by THIS
  // flush even when the batch coalesced to nothing — otherwise indefinite
  // net-zero churn would defer the dropped notification forever.
  const bool rediff_needed = std::any_of(
      queries_.begin(), queries_.end(), [](const Slot& s) { return s.rediff_pending; });
  if (batch.changes.empty() && !rediff_needed && service_events.empty()) {
    // Either nothing was recorded, or the whole batch oscillated back to
    // its baseline and the coalescer absorbed it: no optimizer runs, no
    // events fire (net-zero churn is invisible by construction).
    if (batch.had_pending) ++metrics_.empty_flushes;
    PolicyOnFlush(FlushOptStats{}, 0);
    return 0;
  }
  if (!batch.changes.empty()) {
    ++metrics_.flushes;
    metrics_.changes_flushed += static_cast<int64_t>(batch.changes.size());
    // Reset only for a dispatched flush: a rediff-only pass (empty batch)
    // does no fixpoint work and must leave last_flush() describing the
    // most recent NON-EMPTY flush, per its contract.
    last_flush_ = FlushOptStats{};
    last_pass_work_.clear();
    // Rehab-phase events were built before the flush counter advanced:
    // restamp so they carry the same index this flush's plan events will.
    for (ServiceEvent& se : service_events) {
      if (se.kind == ServiceEvent::Kind::kQuarantined) {
        se.quarantined.flush_index = metrics_.flushes;
      } else {
        se.rehabilitated.flush_index = metrics_.flushes;
      }
    }
  } else if (batch.had_pending) {
    ++metrics_.empty_flushes;  // rediff-only pass below; still no changes
  }

  int64_t skipped_this_flush = 0;
  int64_t delivered = 0;
  const int64_t queries_at_dispatch = static_cast<int64_t>(queries_.size());
  // How many registered queries this flush will NOT dispatch because they
  // are quarantined or parked (the FlushReport snapshot).
  const int64_t quarantined_at_dispatch =
      static_cast<int64_t>(std::count_if(queries_.begin(), queries_.end(), [](const Slot& s) {
        return s.state != QueryState::kHealthy;
      }));
  // The flush epilogue — metrics export and the policy's OnFlush history
  // feed — must run for every drained flush, whatever unwinds out of it
  // (a subscriber callback throwing during delivery). The exporter is
  // owed its report (partial counters and all) and the policy its reset
  // (a DeadlinePolicy left armed would mis-time the next batch's window),
  // so the guard is constructed BEFORE dispatch. Corollary: exporters and
  // policies must not throw (this runs from a destructor).
  struct FlushEpilogue {
    ReoptSession* session;
    std::chrono::steady_clock::time_point started;
    uint64_t epoch;
    int64_t changes;
    int64_t queries;
    int64_t quarantined;
    const int64_t* skipped;
    const int64_t* delivered;
    const int64_t* strikes;
    const int64_t* rehabs;
    const int64_t* evictions;
    const int64_t* rehydrations;
    ~FlushEpilogue() {
      ReoptSession* s = session;
      // Rediff-only passes (changes == 0) are not dispatched flushes: the
      // exporter contract is one report per non-empty flush.
      if (s->options_.metrics_exporter != nullptr && changes > 0) {
        FlushReport report;
        // Registry reads BEFORE policy_mu_ (lock order; see PolicyOnFlush).
        report.mutations_rejected = s->registry_->RejectedCount();
        // Safe relaxed reads: the dispatch window is over, so no worker
        // can still be feeding the store.
        report.summary_shared_hits = s->summary_cache_.hits();
        report.summary_shared_misses = s->summary_cache_.misses();
        {
          // metrics_.mutations_observed/watermark_flushes are written by
          // mutator threads under policy_mu_ (concurrent Record() during a
          // flush is supported), so the struct copy snapshots under the
          // same mutex; every other field is coordinator-only.
          std::lock_guard<std::mutex> lock(s->policy_mu_);
          report.session = s->metrics_;
        }
        report.flush_index = report.session.flushes;
        report.flush_epoch = epoch;
        report.changes = changes;
        report.queries = queries;
        report.queries_skipped = *skipped;
        report.plan_changes = *delivered;
        report.queries_quarantined = quarantined;
        report.quarantines = *strikes;
        report.rehabilitations = *rehabs;
        report.evictions = *evictions;
        report.rehydrations = *rehydrations;
        report.resident_memo_bytes = report.session.resident_memo_bytes;
        report.flush_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
                .count();
        report.opt = s->last_flush_;
        s->options_.metrics_exporter->OnFlushMetrics(report);
      }
      s->PolicyOnFlush(s->last_flush_, changes);
    }
  } epilogue{this,
             flush_started,
             batch.epoch,
             static_cast<int64_t>(batch.changes.size()),
             queries_at_dispatch,
             quarantined_at_dispatch,
             &skipped_this_flush,
             &delivered,
             &strikes_this_flush,
             &rehabs_this_flush,
             &evictions_this_flush,
             &rehydrations_this_flush};

  // If anything unwinds between dispatch and the event-computation loop,
  // some passes may have completed and changed plans with no event
  // computed and no baseline advanced. Mark every subscribed healthy slot
  // unsettled on that path: the next flush force-re-diffs them (RunPass
  // force_digest), so the change is re-detected instead of silently
  // missed. Over-marking is benign — a forced re-diff that finds the
  // baseline intact settles and clears. Disarmed once the event loop has
  // handled every slot.
  struct RediffOnUnwind {
    ReoptSession* session;
    bool armed = true;
    ~RediffOnUnwind() {
      if (!armed) return;
      for (Slot& slot : session->queries_) {
        // Evicted slots were not dispatched: their baseline is intact and
        // their torn-down memo could not satisfy a forced re-diff anyway.
        if (slot.state == QueryState::kHealthy && !slot.evicted &&
            slot.subscriber != nullptr) {
          slot.rediff_pending = true;
        }
      }
    }
  } rediff_guard{this};

  std::vector<PassResult> results;
  results.reserve(queries_.size());
  // Per-index failure capture: a throwing pass becomes a quarantine for
  // THAT query after the join; it never unwinds the flush. (The drained
  // batch is irrecoverable, so every other query must still receive its
  // pass — otherwise the skipped queries would be stamped past deltas
  // they never saw and diverge permanently.)
  std::vector<std::exception_ptr> errors(queries_.size());
  {
    // Freeze the statistics values for the whole dispatch window: every
    // pass — on whichever thread — reads exactly the drained epoch's
    // values; racing mutators block here and land in the next batch.
    auto stats_frozen = registry_->ReaderLock();
    if (pool_ != nullptr) {
      // One future per slot; quarantined/parked slots keep an invalid
      // future (no task) and fall out as undispatched placeholders.
      std::vector<std::future<PassResult>> passes(queries_.size());
      for (size_t i = 0; i < queries_.size(); ++i) {
        const Slot& slot = queries_[i];
        if (slot.state != QueryState::kHealthy || slot.evicted) continue;
        DeclarativeOptimizer* optimizer = slot.optimizer;
        const bool want_digest = slot.subscriber != nullptr;
        const bool force_digest = want_digest && slot.rediff_pending;
        const int64_t budget = options_.per_query_work_budget;
        passes[i] =
            pool_->Submit([optimizer, &batch, want_digest, force_digest, budget] {
              return RunPass(optimizer, batch.changes, batch.epoch, want_digest,
                             force_digest, budget);
            });
      }
      // Join in registration order: result[i] belongs to queries_[i], and
      // deterministic order keeps aggregation and event computation
      // honest. Every future is joined whatever fails — queued tasks
      // capture &batch (this stack frame) and read the reader-locked
      // statistics, so none may outlive this block.
      for (size_t i = 0; i < passes.size(); ++i) {
        if (!passes[i].valid()) {
          results.push_back(PassResult{});
          continue;
        }
        try {
          results.push_back(passes[i].get());
        } catch (...) {
          errors[i] = std::current_exception();
          results.push_back(PassResult{});  // keep index alignment
        }
      }
    } else {
      for (size_t i = 0; i < queries_.size(); ++i) {
        const Slot& slot = queries_[i];
        if (slot.state != QueryState::kHealthy || slot.evicted) {
          results.push_back(PassResult{});
          continue;
        }
        const bool want_digest = slot.subscriber != nullptr;
        try {
          results.push_back(RunPass(slot.optimizer, batch.changes, batch.epoch,
                                    want_digest, want_digest && slot.rediff_pending,
                                    options_.per_query_work_budget));
        } catch (...) {
          errors[i] = std::current_exception();
          results.push_back(PassResult{});
        }
      }
    }
  }

  // Aggregate metrics, quarantine the failures, and compute the events —
  // outside the reader lock (subscriber callbacks may mutate statistics; a
  // same-thread mutation while holding the shared lock would deadlock on
  // the exclusive lock).
  struct PendingEvent {
    QueryId query;
    /// The subscription generation the event was computed for (the
    /// pointer would be redundant: every attach/detach/swap bumps the
    /// generation). Delivery re-checks the slot at fire time and delivers
    /// only if this exact subscription is still attached: a
    /// mid-notification detach, swap, or even detach-then-reattach of the
    /// same pointer suppresses the event — the old observer may already
    /// be destroyed, and any (re)attached one's baseline postdates the
    /// change this event describes.
    uint64_t computed_gen;
    /// The post-flush baseline, moved into the slot when the event is
    /// SETTLED (delivered or suppressed) — not before. A callback that
    /// throws therefore leaves later queries' baselines untouched, so
    /// their dropped events are re-detected (against the old baseline) at
    /// the next flush that re-optimizes them, instead of being lost.
    PlanDigest new_digest;
    PlanChangeEvent event;
  };
  std::vector<PendingEvent> events;
  for (size_t i = 0; i < queries_.size(); ++i) {
    Slot& slot = queries_[i];
    PassResult& r = results[i];
    if (errors[i] != nullptr) {
      // Exactly this query failed: quarantine it; its peers' results
      // aggregate and notify normally below.
      RecordStrike(slot, errors[i], batch.epoch, &service_events, &strikes_this_flush);
      continue;
    }
    if (!r.dispatched) {
      // Quarantined/parked: counted in the dispatch-time snapshot above.
      // Evicted: the rehydration phase proved this batch cannot affect it
      // — the same skip the prefilter gives a resident dormant query.
      if (slot.evicted) {
        ++metrics_.queries_skipped;
        ++skipped_this_flush;
      }
      continue;
    }
    AggregatePass(r);
    if (r.affected) {
      slot.last_active_tick = ticks_.load(std::memory_order_relaxed);
      // The CostGatedPolicy per-query feed (PolicyOnFlush hands these to
      // OnQueryPassWork at epilogue time).
      last_pass_work_.emplace_back(slot.id, r.fixpoint_steps + r.eps_seeded);
    } else {
      ++skipped_this_flush;
    }
    if (slot.subscriber != nullptr && r.digest_computed) {
      if (!slot.digest.SamePlan(r.digest)) {
        PlanChangeEvent e;
        e.query_id = slot.id;
        e.optimizer = slot.optimizer;
        e.flush_epoch = batch.epoch;
        e.flush_index = metrics_.flushes;
        e.old_cost = slot.digest.best_cost;
        e.new_cost = r.digest.best_cost;
        e.diff = DiffPlanDigests(slot.digest, r.digest);
        events.push_back({slot.id, slot.subscription_gen, std::move(r.digest), std::move(e)});
        // Cleared when the event settles; if delivery unwinds first, the
        // flag makes the next flush re-derive this query's digest even
        // when the batch cannot affect it (RunPass force_digest).
        slot.rediff_pending = true;
      } else {
        // No event: the post-flush closure becomes the baseline now. For
        // slots WITH an event the advance waits until the event settles
        // in the delivery loop (see PendingEvent::new_digest). A pending
        // rediff that finds the plan back at the baseline is moot.
        slot.digest = std::move(r.digest);
        slot.rediff_pending = false;
      }
    }
  }
  // Dispatch-phase strikes changed the quarantine set: refresh the
  // timer-readable index before delivery can re-enter anything.
  RefreshQuarantineIndex();
  // Every slot's baseline/rediff state is now consistent; delivery-phase
  // throws are handled by settle-before-fire, not by the unwind guard.
  rediff_guard.armed = false;

  // Deliver: failure-domain events first (a subscriber told its query was
  // quarantined must not learn it from a later plan event's absence), then
  // plan changes — both in registration-order collection, at most once, on
  // this thread. An event fires only if the subscription it was computed
  // for is still attached (generation check); unregistration from inside a
  // callback defers (notifying_).
  {
    // RAII on both pieces of notification state: a throwing callback must
    // not leave the session stuck in notifying mode (every later Register
    // would abort, every Release would defer forever), and deferred
    // unregistrations must apply even on the unwind path — the flush they
    // were requested from is over either way.
    struct NotifyGuard {
      ReoptSession* session;
      ~NotifyGuard() {
        session->notifying_ = false;
        for (QueryId id : std::exchange(session->deferred_unregister_, {})) {
          session->UnregisterImpl(id);
        }
      }
    } notify_guard{this};
    notifying_ = true;
    for (ServiceEvent& se : service_events) {
      Slot* slot = FindSlot(se.query);  // slots are stable: unregisters defer
      if (slot == nullptr || slot->subscriber == nullptr) continue;
      if (slot->subscription_gen != se.computed_gen) continue;
      // At-most-once, never replayed: a throw here drops the remaining
      // failure events for good (query_state() stays authoritative) while
      // plan events stay unsettled and re-detect next flush.
      if (se.kind == ServiceEvent::Kind::kQuarantined) {
        slot->subscriber->OnQueryQuarantined(se.quarantined);
      } else {
        slot->subscriber->OnQueryRehabilitated(se.rehabilitated);
      }
    }
    for (PendingEvent& pe : events) {
      Slot* slot = FindSlot(pe.query);
      if (slot == nullptr) continue;
      if (slot->subscription_gen != pe.computed_gen) {
        // Subscription changed mid-notification: suppressed, and NOT
        // settled — SetSubscriber already left the slot's digest right
        // (cleared on detach, re-baselined on attach) and cleared the
        // rediff flag; re-installing this digest would leave a detached
        // slot holding a dead one.
        continue;
      }
      // Settle the event before firing it: the baseline advances exactly
      // when the event is consumed, so an earlier callback's throw cannot
      // advance a later query past a change its consumer never saw. A
      // generation match implies the subscriber is still the non-null one
      // the event was computed for.
      slot->digest = std::move(pe.new_digest);
      slot->rediff_pending = false;  // settled
      // Counted before the callback runs: a subscriber that throws from
      // its OWN event has still consumed it (at-most-once for the thrower;
      // the settle above forecloses redelivery), so the metrics and the
      // FlushReport record the delivery attempt rather than undercounting.
      ++delivered;
      ++metrics_.plan_changes;
      slot->subscriber->OnPlanChange(pe.event);
    }
  }
  // Budget enforcement runs LAST — after delivery, so no subscriber
  // callback ever observes a mid-flush teardown of an optimizer its event
  // points at — and refreshes the resident gauge the epilogue's report
  // carries. (A throwing subscriber skips it: eviction is best-effort
  // housekeeping, and the next flush enforces again.)
  EnforceMemoBudget(&evictions_this_flush);
  // FlushEpilogue fires here (export + policy OnFlush), then InFlushGuard.
  return batch.changes.size();
}

void ReoptSession::PolicyOnFlush(const FlushOptStats& stats, int64_t changes) {
  if (options_.flush_policy == nullptr) return;  // no registry probe either
  // Mutations that raced this flush are already pending for the next
  // epoch; a time-based policy re-arms on them instead of disarming. The
  // registry read happens BEFORE policy_mu_ — this class never holds the
  // policy mutex while touching the registry, so the lock order stays
  // acyclic with mutator threads (registry lock -> subscriber callback ->
  // policy_mu_).
  const size_t probed = registry_->PendingStatCount();
  std::lock_guard<std::mutex> lock(policy_mu_);
  // A mutation can land between the probe and this lock; its ShouldFlush
  // backed off on in_flush_, so a pending_after of 0 here would disarm a
  // deadline the mutation thinks is armed. mutations_since_flush_ (only
  // written under this mutex, reset at flush start) sees every such
  // mutation — the worst case of trusting it is a mutation that made the
  // drained batch after the counter reset, i.e. a spurious re-arm and at
  // most one early flush, the same benign class as the documented
  // reset-before-drain over-count.
  const size_t pending_after =
      std::max(probed, mutations_since_flush_ > 0 ? size_t{1} : size_t{0});
  if (changes > 0) {
    // Per-query observations before the flush summary: a history-keeping
    // policy's OnFlush sees this flush's per-query state already applied.
    for (const auto& work : last_pass_work_) {
      options_.flush_policy->OnQueryPassWork(work.first, work.second, changes);
    }
  }
  options_.flush_policy->OnFlush(stats, changes, pending_after);
}

size_t ReoptSession::MaybePolicyFlush(const StatsMutationEvent* event) {
  bool fire = false;
  bool via_watermark = false;
  // Poll() probe: no under-lock mutation snapshot to map, so read the
  // registry up front — never while holding policy_mu_ (lock order, see
  // PolicyOnFlush). The soft watermark needs the same count.
  const bool want_probe =
      options_.flush_policy != nullptr || options_.pending_soft_watermark > 0;
  const size_t polled_pending =
      event == nullptr && want_probe ? registry_->PendingStatCount() : 0;
  const size_t pending = event != nullptr ? event->pending_stats : polled_pending;
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    if (event != nullptr) {
      // Mutation path: count inside the same critical section the policy
      // evaluates under — one lock acquisition per recorded mutation.
      ++metrics_.mutations_observed;
      ++mutations_since_flush_;
    }
    if (options_.flush_policy != nullptr) {
      FlushPolicyContext ctx;
      ctx.mutations_since_flush = mutations_since_flush_;
      ctx.pending_stats = pending;
      if (event != nullptr) ctx.epoch = event->epoch;
      fire = options_.flush_policy->ShouldFlush(ctx);
    }
    if (!fire && options_.pending_soft_watermark > 0 &&
        pending >= options_.pending_soft_watermark) {
      // Soft watermark: the backlog is deep enough that waiting — on the
      // policy's judgement, or for a manual Flush() with no policy at all
      // — costs more than flushing early.
      fire = true;
      via_watermark = true;
    }
  }
  // Flush() itself rejects reentrancy and cross-thread races via
  // in_flush_; a rejected policy flush just means the policy fires again
  // on the next mutation or Poll.
  if (fire && !in_flush_.load()) {
    if (via_watermark) {
      std::lock_guard<std::mutex> lock(policy_mu_);
      ++metrics_.watermark_flushes;
    }
    return Flush();
  }
  return 0;
}

size_t ReoptSession::Poll() {
  GateLock gate(reg_gate_,
                timer_.joinable() && flush_owner_.load(std::memory_order_relaxed) !=
                                         std::this_thread::get_id());
  return PollTick();
}

size_t ReoptSession::PollTick() {
  // A poll while a flush runs has nothing to add: the flush ticks, rehabs,
  // and re-arms the policy itself.
  if (in_flush_.load()) return 0;
  const int64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (quarantined_count_.load(std::memory_order_relaxed) > 0 &&
      next_rehab_tick_.load(std::memory_order_relaxed) <= tick) {
    // A quarantine backoff expired: flush regardless of the policy — the
    // flush's rehab phase is the only place rebuilds run, and a parked
    // policy must not strand a recoverable query.
    return Flush();
  }
  return MaybePolicyFlush(nullptr);
}

void ReoptSession::OnStatsMutated(StatsRegistry& registry, const StatsMutationEvent& event) {
  IQRO_CHECK(&registry == registry_);
  MaybePolicyFlush(&event);  // counts the mutation and evaluates the policy
}

// ---------------------------------------------------------------------------
// QueryHandle
// ---------------------------------------------------------------------------

QueryHandle::QueryHandle(QueryHandle&& other) noexcept
    : session_(std::exchange(other.session_, nullptr)),
      optimizer_(std::exchange(other.optimizer_, nullptr)),
      alive_(std::move(other.alive_)),
      id_(std::exchange(other.id_, -1)) {}

QueryHandle& QueryHandle::operator=(QueryHandle&& other) noexcept {
  if (this != &other) {
    Release();
    session_ = std::exchange(other.session_, nullptr);
    optimizer_ = std::exchange(other.optimizer_, nullptr);
    alive_ = std::move(other.alive_);
    id_ = std::exchange(other.id_, -1);
  }
  return *this;
}

QueryHandle::~QueryHandle() { Release(); }

QueryState QueryHandle::state() const {
  if (!valid()) return QueryState::kHealthy;
  return session_->query_state(id_);
}

void QueryHandle::Subscribe(PlanSubscriber* subscriber) {
  IQRO_CHECK(session_ != nullptr);  // must own a registration
  // Session already destroyed: the registration died with it — defined
  // no-op, consistent with Release() and the destructor.
  if (alive_ == nullptr || !*alive_) return;
  session_->HandleSubscribe(id_, subscriber);
}

void QueryHandle::Release() {
  if (session_ == nullptr) return;
  // A handle outliving its session is legal (the token flipped): nothing
  // left to unregister — the dead session already dropped every slot.
  if (alive_ != nullptr && *alive_) session_->HandleRelease(id_);
  session_ = nullptr;
  optimizer_ = nullptr;
  alive_.reset();
  id_ = -1;
}

}  // namespace iqro
