#include "service/reopt_session.h"

#include <algorithm>
#include <exception>
#include <future>
#include <utility>

#include "common/check.h"

namespace iqro {

ReoptSession::ReoptSession(StatsRegistry* registry, ReoptSessionOptions options)
    : registry_(registry), options_(std::move(options)),
      alive_(std::make_shared<bool>(true)) {
  IQRO_CHECK(registry_ != nullptr);
  IQRO_CHECK(options_.worker_threads >= 0);
  // v1 shim: map the deprecated raw counter onto the policy it always was.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  if (options_.flush_policy == nullptr && options_.auto_flush_after > 0) {
    options_.flush_policy = std::make_shared<CountPolicy>(options_.auto_flush_after);
  }
#pragma GCC diagnostic pop
  if (options_.worker_threads >= 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  registry_->Subscribe(this);
}

ReoptSession::~ReoptSession() {
  // Flip the handle liveness token first: a handle destroyed after this
  // point must no-op instead of calling back into a dying session.
  *alive_ = false;
  registry_->Unsubscribe(this);
  // pool_ (if any) drains and joins in its destructor: a dispatched pass
  // never outlives the session that owns its optimizers' slots.
}

ReoptSession::QueryId ReoptSession::RegisterImpl(DeclarativeOptimizer* optimizer,
                                                 PlanSubscriber* subscriber) {
  IQRO_CHECK(optimizer != nullptr);
  // Growing queries_ mid-notification would invalidate the event walk; the
  // reentrancy rules forbid it (docs/API.md).
  IQRO_CHECK(!notifying_);
  // The session dispatches drained change lists; an optimizer wired to a
  // different registry would be seeded with deltas its statistics never
  // saw, and an un-optimized one has no state to maintain.
  IQRO_CHECK(optimizer->registry() == registry_);
  IQRO_CHECK(optimizer->optimized());
  // An optimizer whose fixpoint predates the last drain missed deltas that
  // are gone for good: future flushes would leave it silently stale
  // forever. Pending-but-undrained changes are fine (the next flush seeds
  // them), as is being *ahead* of the last drain.
  IQRO_CHECK(optimizer->stats_epoch() >= registry_->drained_epoch());
  if (pool_ != nullptr) {
    // Pool dispatch runs this optimizer's fixpoint concurrently with its
    // world-sharing peers: flip the shared read surfaces (split memo,
    // PropTable, summary cache) to internal locking now, while still
    // single-threaded.
    optimizer->EnableConcurrentFlushes();
  }
  Slot slot{next_id_, optimizer, nullptr, 0, false, PlanDigest{}};
  if (subscriber != nullptr) {
    slot.subscriber = subscriber;
    slot.digest = optimizer->ComputePlanDigest();
  }
  queries_.push_back(std::move(slot));
  return next_id_++;
}

QueryHandle ReoptSession::Register(DeclarativeOptimizer& optimizer,
                                   PlanSubscriber* subscriber) {
  const QueryId id = RegisterImpl(&optimizer, subscriber);
  return QueryHandle(this, id, &optimizer, alive_);
}

ReoptSession::QueryId ReoptSession::Register(DeclarativeOptimizer* optimizer) {
  return RegisterImpl(optimizer, nullptr);
}

void ReoptSession::Unregister(QueryId id) { UnregisterImpl(id); }

ReoptSession::Slot* ReoptSession::FindSlot(QueryId id) {
  auto it = std::find_if(queries_.begin(), queries_.end(),
                         [id](const Slot& s) { return s.id == id; });
  return it == queries_.end() ? nullptr : &*it;
}

void ReoptSession::UnregisterImpl(QueryId id) {
  Slot* slot = FindSlot(id);
  IQRO_CHECK(slot != nullptr);
  if (notifying_) {
    // Unregistration from inside a subscriber callback is DEFERRED to the
    // end of the in-flight flush: the flush's remaining events (including
    // this query's own, if still queued) fire against a stable slot list,
    // and the query stops being dispatched from the next flush on.
    IQRO_CHECK(std::find(deferred_unregister_.begin(), deferred_unregister_.end(), id) ==
               deferred_unregister_.end());
    deferred_unregister_.push_back(id);
    return;
  }
  queries_.erase(queries_.begin() + (slot - queries_.data()));
}

void ReoptSession::SetSubscriber(QueryId id, PlanSubscriber* subscriber) {
  Slot* slot = FindSlot(id);
  IQRO_CHECK(slot != nullptr);
  slot->subscriber = subscriber;
  // Every (re)subscription is a new generation: a pending event computed
  // for an older generation never delivers, even to the same pointer. Any
  // pending rediff dies with the old subscription (the new baseline is
  // captured fresh below).
  ++slot->subscription_gen;
  slot->rediff_pending = false;
  if (subscriber != nullptr) {
    // The plan as of *now* is the baseline: the first event this
    // subscriber sees describes a change relative to the plan it attached
    // under, never a replay of older history.
    slot->digest = slot->optimizer->ComputePlanDigest();
  } else {
    slot->digest = PlanDigest{};  // drop the digest work with the subscriber
  }
}

ReoptSession::PassResult ReoptSession::RunPass(DeclarativeOptimizer* optimizer,
                                               const std::vector<StatChange>& changes,
                                               uint64_t epoch, bool want_digest,
                                               bool force_digest) {
  PassResult r;
  // Whole-query prefilter: a change can only matter to a query whose
  // relation set contains the change's scope. (Per-EP filtering inside
  // ReoptimizeBatch handles the precise subset tests.)
  const RelSet root = optimizer->RootRelations();
  r.affected = std::any_of(changes.begin(), changes.end(), [root](const StatChange& c) {
    return RelIsSubset(c.scope, root);
  });
  const int64_t enqueued_before = optimizer->metrics().tasks_enqueued;
  if (!r.affected) {
    // The skip itself proves this optimizer's state reflects the new
    // statistics — its canonical plan cannot have changed, so normally no
    // digest is recomputed either. An empty batch stamps its stats epoch
    // (otherwise a later Register() would reject it as having missed this
    // drain).
    static const std::vector<StatChange> kEmpty;
    optimizer->ReoptimizeBatch(kEmpty, epoch);
    if (want_digest && force_digest) {
      // A prior flush left this slot's baseline unsettled (a throwing
      // subscriber dropped its event): re-derive the digest so the dropped
      // change is re-detected NOW, not only at some future flush that
      // happens to touch this query's relations.
      r.digest = optimizer->ComputePlanDigest();
      r.digest_computed = true;
    }
    return r;
  }
  r.eps_seeded = optimizer->ReoptimizeBatch(changes, epoch);
  const OptMetrics& m = optimizer->metrics();
  r.fixpoint_steps = m.round_steps;
  r.touched_eps = m.round_touched_eps;
  r.touched_alts = m.round_touched_alts;
  r.tasks_enqueued = m.tasks_enqueued - enqueued_before;
  if (want_digest) {
    // On the worker: the digest reads only task-owned optimizer state plus
    // the PropTable, which is already in concurrent mode under a pooled
    // session — so digest work parallelizes with the fixpoints instead of
    // serializing on the coordinator.
    r.digest = optimizer->ComputePlanDigest();
    r.digest_computed = true;
  }
  return r;
}

void ReoptSession::AggregatePass(const PassResult& r) {
  if (!r.affected) {
    ++metrics_.queries_skipped;
    return;
  }
  metrics_.eps_seeded += r.eps_seeded;
  ++metrics_.reopt_passes;
  ++last_flush_.passes;
  last_flush_.eps_seeded += r.eps_seeded;
  last_flush_.fixpoint_steps += r.fixpoint_steps;
  last_flush_.touched_eps += r.touched_eps;
  last_flush_.touched_alts += r.touched_alts;
  last_flush_.tasks_enqueued += r.tasks_enqueued;
}

size_t ReoptSession::Flush() {
  // One flush at a time: a second caller (policy reentrancy, or a
  // mutator-thread flush racing the coordinator's) backs off — whatever it
  // wanted drained is either in the in-flight batch or stays pending for
  // the next flush.
  if (in_flush_.exchange(true)) return 0;
  // RAII: an exception escaping the dispatch (a task's bad_alloc rethrown
  // from its future, a failed Submit) must not leave in_flush_ stuck true
  // — that would silently turn every later Flush() into a no-op.
  struct InFlushGuard {
    std::atomic<bool>& flag;
    ~InFlushGuard() { flag.store(false); }
  } in_flush_guard{in_flush_};
  {
    // Reset the policy counter BEFORE the drain: a mutation recorded in
    // the gap is then over-counted (worst case one spurious early flush,
    // benign) rather than under-counted (its increment erased while its
    // pending entry survives — with no later mutation a count policy
    // would never re-fire and the change would sit pending forever).
    std::lock_guard<std::mutex> lock(policy_mu_);
    mutations_since_flush_ = 0;
  }
  StatsRegistry::DrainedBatch batch = registry_->TakePendingBatch();
  // An unsettled baseline (a prior flush's delivery unwound before some
  // query's event) must be re-diffed by THIS flush even when the batch
  // coalesced to nothing — otherwise indefinite net-zero churn would defer
  // the dropped notification forever.
  const bool rediff_needed = std::any_of(
      queries_.begin(), queries_.end(), [](const Slot& s) { return s.rediff_pending; });
  if (batch.changes.empty() && !rediff_needed) {
    // Either nothing was recorded, or the whole batch oscillated back to
    // its baseline and the coalescer absorbed it: no optimizer runs, no
    // events fire (net-zero churn is invisible by construction).
    if (batch.had_pending) ++metrics_.empty_flushes;
    PolicyOnFlush(FlushOptStats{}, 0);
    return 0;
  }
  if (!batch.changes.empty()) {
    ++metrics_.flushes;
    metrics_.changes_flushed += static_cast<int64_t>(batch.changes.size());
    // Reset only for a dispatched flush: a rediff-only pass (empty batch)
    // does no fixpoint work and must leave last_flush() describing the
    // most recent NON-EMPTY flush, per its contract.
    last_flush_ = FlushOptStats{};
  } else if (batch.had_pending) {
    ++metrics_.empty_flushes;  // rediff-only pass below; still no changes
  }

  int64_t skipped_this_flush = 0;
  int64_t delivered = 0;
  const int64_t queries_at_dispatch = static_cast<int64_t>(queries_.size());
  // The flush epilogue — metrics export and the policy's OnFlush history
  // feed — must run for every drained flush, whatever unwinds out of it: a
  // subscriber callback throwing during delivery, or a pool task's
  // exception rethrown from the dispatch join. The exporter is owed its
  // report (partial counters and all) and the policy its reset (a
  // DeadlinePolicy left armed would mis-time the next batch's window), so
  // the guard is constructed BEFORE dispatch. Corollary: exporters and
  // policies must not throw (this runs from a destructor).
  struct FlushEpilogue {
    ReoptSession* session;
    uint64_t epoch;
    int64_t changes;
    int64_t queries;
    const int64_t* skipped;
    const int64_t* delivered;
    ~FlushEpilogue() {
      ReoptSession* s = session;
      // Rediff-only passes (changes == 0) are not dispatched flushes: the
      // exporter contract is one report per non-empty flush.
      if (s->options_.metrics_exporter != nullptr && changes > 0) {
        FlushReport report;
        {
          // metrics_.mutations_observed is written by mutator threads
          // under policy_mu_ (concurrent Record() during a flush is
          // supported), so the struct copy snapshots under the same
          // mutex; every other field is coordinator-only.
          std::lock_guard<std::mutex> lock(s->policy_mu_);
          report.session = s->metrics_;
        }
        report.flush_index = report.session.flushes;
        report.flush_epoch = epoch;
        report.changes = changes;
        report.queries = queries;
        report.queries_skipped = *skipped;
        report.plan_changes = *delivered;
        report.opt = s->last_flush_;
        s->options_.metrics_exporter->OnFlushMetrics(report);
      }
      s->PolicyOnFlush(s->last_flush_, changes);
    }
  } epilogue{this,
             batch.epoch,
             static_cast<int64_t>(batch.changes.size()),
             queries_at_dispatch,
             &skipped_this_flush,
             &delivered};

  // If anything unwinds between dispatch and the event-computation loop
  // (a pool task's rethrown exception, a serial RunPass throw), some
  // passes may have completed and changed plans with no event computed
  // and no baseline advanced. Mark every subscribed slot unsettled on
  // that path: the next flush force-re-diffs them (RunPass force_digest),
  // so the change is re-detected instead of silently missed. Over-marking
  // is benign — a forced re-diff that finds the baseline intact settles
  // and clears. Disarmed once the event loop has handled every slot.
  struct RediffOnUnwind {
    ReoptSession* session;
    bool armed = true;
    ~RediffOnUnwind() {
      if (!armed) return;
      for (Slot& slot : session->queries_) {
        if (slot.subscriber != nullptr) slot.rediff_pending = true;
      }
    }
  } rediff_guard{this};

  std::vector<PassResult> results;
  results.reserve(queries_.size());
  {
    // Freeze the statistics values for the whole dispatch window: every
    // pass — on whichever thread — reads exactly the drained epoch's
    // values; racing mutators block here and land in the next batch.
    auto stats_frozen = registry_->ReaderLock();
    if (pool_ != nullptr) {
      std::vector<std::future<PassResult>> passes;
      passes.reserve(queries_.size());
      for (const Slot& slot : queries_) {
        DeclarativeOptimizer* optimizer = slot.optimizer;
        const bool want_digest = slot.subscriber != nullptr;
        const bool force_digest = want_digest && slot.rediff_pending;
        passes.push_back(pool_->Submit([optimizer, &batch, want_digest, force_digest] {
          return RunPass(optimizer, batch.changes, batch.epoch, want_digest, force_digest);
        }));
      }
      // Join in registration order: result[i] belongs to queries_[i], and
      // deterministic order keeps aggregation and event computation honest.
      // Join ALL futures before rethrowing a task failure: queued tasks
      // capture &batch (this stack frame) and read the reader-locked
      // statistics — unwinding past them would hand freed memory and
      // unfrozen stats to whatever the pool runs next.
      std::exception_ptr task_error;
      for (std::future<PassResult>& f : passes) {
        try {
          results.push_back(f.get());
        } catch (...) {
          if (task_error == nullptr) task_error = std::current_exception();
          results.push_back(PassResult{});  // keep index alignment
        }
      }
      if (task_error != nullptr) std::rethrow_exception(task_error);
    } else {
      // Same run-all-then-rethrow structure as the pooled join: the
      // drained batch is irrecoverable, so every OTHER query must still
      // receive its pass even when one throws — otherwise the skipped
      // queries would be stamped past deltas they never saw and diverge
      // permanently. (The throwing pass's own optimizer is left
      // mid-fixpoint and unrecoverable either way — unregister it and
      // rebuild via Optimize(); its peers stay exact.)
      std::exception_ptr serial_error;
      for (const Slot& slot : queries_) {
        const bool want_digest = slot.subscriber != nullptr;
        try {
          results.push_back(RunPass(slot.optimizer, batch.changes, batch.epoch, want_digest,
                                    want_digest && slot.rediff_pending));
        } catch (...) {
          if (serial_error == nullptr) serial_error = std::current_exception();
          results.push_back(PassResult{});
        }
      }
      if (serial_error != nullptr) std::rethrow_exception(serial_error);
    }
  }

  // Aggregate metrics and compute the events — outside the reader lock
  // (subscriber callbacks may mutate statistics; a same-thread mutation
  // while holding the shared lock would deadlock on the exclusive lock).
  struct PendingEvent {
    QueryId query;
    /// The subscription generation the event was computed for (the
    /// pointer would be redundant: every attach/detach/swap bumps the
    /// generation). Delivery re-checks the slot at fire time and delivers
    /// only if this exact subscription is still attached: a
    /// mid-notification detach, swap, or even detach-then-reattach of the
    /// same pointer suppresses the event — the old observer may already
    /// be destroyed, and any (re)attached one's baseline postdates the
    /// change this event describes.
    uint64_t computed_gen;
    /// The post-flush baseline, moved into the slot when the event is
    /// SETTLED (delivered or suppressed) — not before. A callback that
    /// throws therefore leaves later queries' baselines untouched, so
    /// their dropped events are re-detected (against the old baseline) at
    /// the next flush that re-optimizes them, instead of being lost.
    PlanDigest new_digest;
    PlanChangeEvent event;
  };
  std::vector<PendingEvent> events;
  for (size_t i = 0; i < queries_.size(); ++i) {
    Slot& slot = queries_[i];
    PassResult& r = results[i];
    AggregatePass(r);
    if (!r.affected) ++skipped_this_flush;
    if (slot.subscriber != nullptr && r.digest_computed) {
      if (!slot.digest.SamePlan(r.digest)) {
        PlanChangeEvent e;
        e.query_id = slot.id;
        e.optimizer = slot.optimizer;
        e.flush_epoch = batch.epoch;
        e.flush_index = metrics_.flushes;
        e.old_cost = slot.digest.best_cost;
        e.new_cost = r.digest.best_cost;
        e.diff = DiffPlanDigests(slot.digest, r.digest);
        events.push_back({slot.id, slot.subscription_gen, std::move(r.digest), std::move(e)});
        // Cleared when the event settles; if delivery unwinds first, the
        // flag makes the next flush re-derive this query's digest even
        // when the batch cannot affect it (RunPass force_digest).
        slot.rediff_pending = true;
      } else {
        // No event: the post-flush closure becomes the baseline now. For
        // slots WITH an event the advance waits until the event settles
        // in the delivery loop (see PendingEvent::new_digest). A pending
        // rediff that finds the plan back at the baseline is moot.
        slot.digest = std::move(r.digest);
        slot.rediff_pending = false;
      }
    }
  }
  // Every slot's baseline/rediff state is now consistent; delivery-phase
  // throws are handled by settle-before-fire, not by the unwind guard.
  rediff_guard.armed = false;

  // Deliver: registration order (events were collected walking queries_),
  // at most once per changed query, on this thread. An event fires only if
  // the subscriber it was computed for is still the slot's subscriber — a
  // callback that detaches or replaces a later query's subscriber
  // suppresses its pending event instead of firing into a possibly-
  // destroyed observer or replaying pre-attach history to the new one.
  // Unregistration from inside a callback defers (notifying_).
  {
    // RAII on both pieces of notification state: a throwing callback must
    // not leave the session stuck in notifying mode (every later Register
    // would abort, every Release would defer forever), and deferred
    // unregistrations must apply even on the unwind path — the flush they
    // were requested from is over either way.
    struct NotifyGuard {
      ReoptSession* session;
      ~NotifyGuard() {
        session->notifying_ = false;
        for (QueryId id : std::exchange(session->deferred_unregister_, {})) {
          session->UnregisterImpl(id);
        }
      }
    } notify_guard{this};
    notifying_ = true;
    for (PendingEvent& pe : events) {
      Slot* slot = FindSlot(pe.query);  // slots are stable: unregisters defer
      if (slot == nullptr) continue;
      if (slot->subscription_gen != pe.computed_gen) {
        // Subscription changed mid-notification: suppressed, and NOT
        // settled — SetSubscriber already left the slot's digest right
        // (cleared on detach, re-baselined on attach) and cleared the
        // rediff flag; re-installing this digest would leave a detached
        // slot holding a dead one.
        continue;
      }
      // Settle the event before firing it: the baseline advances exactly
      // when the event is consumed, so an earlier callback's throw cannot
      // advance a later query past a change its consumer never saw. A
      // generation match implies the subscriber is still the non-null one
      // the event was computed for.
      slot->digest = std::move(pe.new_digest);
      slot->rediff_pending = false;  // settled
      // Counted before the callback runs: a subscriber that throws from
      // its OWN event has still consumed it (at-most-once for the thrower;
      // the settle above forecloses redelivery), so the metrics and the
      // FlushReport record the delivery attempt rather than undercounting.
      ++delivered;
      ++metrics_.plan_changes;
      slot->subscriber->OnPlanChange(pe.event);
    }
  }
  // FlushEpilogue fires here (export + policy OnFlush), then InFlushGuard.
  return batch.changes.size();
}

void ReoptSession::PolicyOnFlush(const FlushOptStats& stats, int64_t changes) {
  if (options_.flush_policy == nullptr) return;  // no registry probe either
  // Mutations that raced this flush are already pending for the next
  // epoch; a time-based policy re-arms on them instead of disarming. The
  // registry read happens BEFORE policy_mu_ — this class never holds the
  // policy mutex while touching the registry, so the lock order stays
  // acyclic with mutator threads (registry lock -> subscriber callback ->
  // policy_mu_).
  const size_t probed = registry_->PendingStatCount();
  std::lock_guard<std::mutex> lock(policy_mu_);
  // A mutation can land between the probe and this lock; its ShouldFlush
  // backed off on in_flush_, so a pending_after of 0 here would disarm a
  // deadline the mutation thinks is armed. mutations_since_flush_ (only
  // written under this mutex, reset at flush start) sees every such
  // mutation — the worst case of trusting it is a mutation that made the
  // drained batch after the counter reset, i.e. a spurious re-arm and at
  // most one early flush, the same benign class as the documented
  // reset-before-drain over-count.
  const size_t pending_after =
      std::max(probed, mutations_since_flush_ > 0 ? size_t{1} : size_t{0});
  options_.flush_policy->OnFlush(stats, changes, pending_after);
}

size_t ReoptSession::MaybePolicyFlush(const StatsMutationEvent* event) {
  bool fire = false;
  // Poll() probe: no under-lock mutation snapshot to map, so read the
  // registry up front — never while holding policy_mu_ (lock order, see
  // PolicyOnFlush).
  const size_t polled_pending =
      event == nullptr && options_.flush_policy != nullptr ? registry_->PendingStatCount()
                                                           : 0;
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    if (event != nullptr) {
      // Mutation path: count inside the same critical section the policy
      // evaluates under — one lock acquisition per recorded mutation.
      ++metrics_.mutations_observed;
      ++mutations_since_flush_;
    }
    if (options_.flush_policy != nullptr) {
      FlushPolicyContext ctx;
      ctx.mutations_since_flush = mutations_since_flush_;
      if (event != nullptr) {
        ctx.pending_stats = event->pending_stats;
        ctx.epoch = event->epoch;
      } else {
        ctx.pending_stats = polled_pending;
      }
      fire = options_.flush_policy->ShouldFlush(ctx);
    }
  }
  // Flush() itself rejects reentrancy and cross-thread races via
  // in_flush_; a rejected policy flush just means the policy fires again
  // on the next mutation or Poll.
  if (fire && !in_flush_.load()) return Flush();
  return 0;
}

size_t ReoptSession::Poll() { return MaybePolicyFlush(nullptr); }

void ReoptSession::OnStatsMutated(StatsRegistry& registry, const StatsMutationEvent& event) {
  IQRO_CHECK(&registry == registry_);
  MaybePolicyFlush(&event);  // counts the mutation and evaluates the policy
}

// ---------------------------------------------------------------------------
// QueryHandle
// ---------------------------------------------------------------------------

QueryHandle::QueryHandle(QueryHandle&& other) noexcept
    : session_(std::exchange(other.session_, nullptr)),
      optimizer_(std::exchange(other.optimizer_, nullptr)),
      alive_(std::move(other.alive_)),
      id_(std::exchange(other.id_, -1)) {}

QueryHandle& QueryHandle::operator=(QueryHandle&& other) noexcept {
  if (this != &other) {
    Release();
    session_ = std::exchange(other.session_, nullptr);
    optimizer_ = std::exchange(other.optimizer_, nullptr);
    alive_ = std::move(other.alive_);
    id_ = std::exchange(other.id_, -1);
  }
  return *this;
}

QueryHandle::~QueryHandle() { Release(); }

void QueryHandle::Subscribe(PlanSubscriber* subscriber) {
  IQRO_CHECK(session_ != nullptr);  // must own a registration
  // Session already destroyed: the registration died with it — defined
  // no-op, consistent with Release() and the destructor.
  if (alive_ == nullptr || !*alive_) return;
  session_->SetSubscriber(id_, subscriber);
}

void QueryHandle::Release() {
  if (session_ == nullptr) return;
  // A handle outliving its session is legal (the token flipped): nothing
  // left to unregister — the dead session already dropped every slot.
  if (alive_ != nullptr && *alive_) session_->UnregisterImpl(id_);
  session_ = nullptr;
  optimizer_ = nullptr;
  alive_.reset();
  id_ = -1;
}

}  // namespace iqro
