#include "service/reopt_session.h"

#include <algorithm>

#include "common/check.h"

namespace iqro {

ReoptSession::ReoptSession(StatsRegistry* registry, ReoptSessionOptions options)
    : registry_(registry), options_(options) {
  IQRO_CHECK(registry_ != nullptr);
  registry_->Subscribe(this);
}

ReoptSession::~ReoptSession() { registry_->Unsubscribe(this); }

ReoptSession::QueryId ReoptSession::Register(DeclarativeOptimizer* optimizer) {
  IQRO_CHECK(optimizer != nullptr);
  // The session dispatches drained change lists; an optimizer wired to a
  // different registry would be seeded with deltas its statistics never
  // saw, and an un-optimized one has no state to maintain.
  IQRO_CHECK(optimizer->registry() == registry_);
  IQRO_CHECK(optimizer->optimized());
  // An optimizer whose fixpoint predates the last drain missed deltas that
  // are gone for good: future flushes would leave it silently stale
  // forever. Pending-but-undrained changes are fine (the next flush seeds
  // them), as is being *ahead* of the last drain.
  IQRO_CHECK(optimizer->stats_epoch() >= registry_->drained_epoch());
  queries_.push_back({next_id_, optimizer});
  return next_id_++;
}

void ReoptSession::Unregister(QueryId id) {
  auto it = std::find_if(queries_.begin(), queries_.end(),
                         [id](const Slot& s) { return s.id == id; });
  IQRO_CHECK(it != queries_.end());
  queries_.erase(it);
}

size_t ReoptSession::Flush() {
  if (in_flush_) return 0;
  const bool had_pending = registry_->HasPending();
  mutations_since_flush_ = 0;
  std::vector<StatChange> changes = registry_->TakePending();
  if (changes.empty()) {
    // Either nothing was recorded, or the whole batch oscillated back to
    // its baseline and the coalescer absorbed it: no optimizer runs.
    if (had_pending) ++metrics_.empty_flushes;
    return 0;
  }
  ++metrics_.flushes;
  metrics_.changes_flushed += static_cast<int64_t>(changes.size());

  in_flush_ = true;
  for (const Slot& slot : queries_) {
    // Whole-query prefilter: a change can only matter to a query whose
    // relation set contains the change's scope. (Per-EP filtering inside
    // ReoptimizeBatch handles the precise subset tests.)
    const RelSet root = slot.optimizer->RootRelations();
    const bool affected =
        std::any_of(changes.begin(), changes.end(),
                    [root](const StatChange& c) { return RelIsSubset(c.scope, root); });
    if (!affected) {
      ++metrics_.queries_skipped;
      // The skip itself proves this optimizer's state reflects the new
      // statistics; an empty batch stamps its stats epoch (otherwise a
      // later Register() would reject it as having missed this drain).
      slot.optimizer->ReoptimizeBatch({});
      continue;
    }
    metrics_.eps_seeded += slot.optimizer->ReoptimizeBatch(changes);
    ++metrics_.reopt_passes;
  }
  in_flush_ = false;
  return changes.size();
}

void ReoptSession::OnStatsMutated(StatsRegistry& registry) {
  IQRO_CHECK(&registry == registry_);
  ++metrics_.mutations_observed;
  ++mutations_since_flush_;
  if (options_.auto_flush_after > 0 && !in_flush_ &&
      mutations_since_flush_ >= options_.auto_flush_after) {
    Flush();
  }
}

}  // namespace iqro
