#include "service/reopt_session.h"

#include <algorithm>
#include <future>

#include "common/check.h"

namespace iqro {

ReoptSession::ReoptSession(StatsRegistry* registry, ReoptSessionOptions options)
    : registry_(registry), options_(options) {
  IQRO_CHECK(registry_ != nullptr);
  IQRO_CHECK(options_.worker_threads >= 0);
  if (options_.worker_threads >= 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  registry_->Subscribe(this);
}

ReoptSession::~ReoptSession() {
  registry_->Unsubscribe(this);
  // pool_ (if any) drains and joins in its destructor: a dispatched pass
  // never outlives the session that owns its optimizers' slots.
}

ReoptSession::QueryId ReoptSession::Register(DeclarativeOptimizer* optimizer) {
  IQRO_CHECK(optimizer != nullptr);
  // The session dispatches drained change lists; an optimizer wired to a
  // different registry would be seeded with deltas its statistics never
  // saw, and an un-optimized one has no state to maintain.
  IQRO_CHECK(optimizer->registry() == registry_);
  IQRO_CHECK(optimizer->optimized());
  // An optimizer whose fixpoint predates the last drain missed deltas that
  // are gone for good: future flushes would leave it silently stale
  // forever. Pending-but-undrained changes are fine (the next flush seeds
  // them), as is being *ahead* of the last drain.
  IQRO_CHECK(optimizer->stats_epoch() >= registry_->drained_epoch());
  if (pool_ != nullptr) {
    // Pool dispatch runs this optimizer's fixpoint concurrently with its
    // world-sharing peers: flip the shared read surfaces (split memo,
    // PropTable, summary cache) to internal locking now, while still
    // single-threaded.
    optimizer->EnableConcurrentFlushes();
  }
  queries_.push_back({next_id_, optimizer});
  return next_id_++;
}

void ReoptSession::Unregister(QueryId id) {
  auto it = std::find_if(queries_.begin(), queries_.end(),
                         [id](const Slot& s) { return s.id == id; });
  IQRO_CHECK(it != queries_.end());
  queries_.erase(it);
}

ReoptSession::PassResult ReoptSession::RunPass(DeclarativeOptimizer* optimizer,
                                               const std::vector<StatChange>& changes,
                                               uint64_t epoch) {
  PassResult r;
  // Whole-query prefilter: a change can only matter to a query whose
  // relation set contains the change's scope. (Per-EP filtering inside
  // ReoptimizeBatch handles the precise subset tests.)
  const RelSet root = optimizer->RootRelations();
  r.affected = std::any_of(changes.begin(), changes.end(), [root](const StatChange& c) {
    return RelIsSubset(c.scope, root);
  });
  const int64_t enqueued_before = optimizer->metrics().tasks_enqueued;
  if (!r.affected) {
    // The skip itself proves this optimizer's state reflects the new
    // statistics; an empty batch stamps its stats epoch (otherwise a
    // later Register() would reject it as having missed this drain).
    static const std::vector<StatChange> kEmpty;
    optimizer->ReoptimizeBatch(kEmpty, epoch);
    return r;
  }
  r.eps_seeded = optimizer->ReoptimizeBatch(changes, epoch);
  const OptMetrics& m = optimizer->metrics();
  r.fixpoint_steps = m.round_steps;
  r.touched_eps = m.round_touched_eps;
  r.touched_alts = m.round_touched_alts;
  r.tasks_enqueued = m.tasks_enqueued - enqueued_before;
  return r;
}

void ReoptSession::AggregatePass(const PassResult& r) {
  if (!r.affected) {
    ++metrics_.queries_skipped;
    return;
  }
  metrics_.eps_seeded += r.eps_seeded;
  ++metrics_.reopt_passes;
  ++last_flush_.passes;
  last_flush_.eps_seeded += r.eps_seeded;
  last_flush_.fixpoint_steps += r.fixpoint_steps;
  last_flush_.touched_eps += r.touched_eps;
  last_flush_.touched_alts += r.touched_alts;
  last_flush_.tasks_enqueued += r.tasks_enqueued;
}

size_t ReoptSession::Flush() {
  // One flush at a time: a second caller (auto-flush reentrancy, or a
  // mutator-thread flush racing the coordinator's) backs off — whatever it
  // wanted drained is either in the in-flight batch or stays pending for
  // the next flush.
  if (in_flush_.exchange(true)) return 0;
  // RAII: an exception escaping the dispatch (a task's bad_alloc rethrown
  // from its future, a failed Submit) must not leave in_flush_ stuck true
  // — that would silently turn every later Flush() into a no-op.
  struct InFlushGuard {
    std::atomic<bool>& flag;
    ~InFlushGuard() { flag.store(false); }
  } in_flush_guard{in_flush_};
  {
    // Reset the auto-flush counter BEFORE the drain: a mutation recorded
    // in the gap is then over-counted (worst case one spurious early
    // flush, benign) rather than under-counted (its increment erased
    // while its pending entry survives — with no later mutation the
    // threshold would never re-fire and the change would sit pending
    // forever).
    std::lock_guard<std::mutex> lock(policy_mu_);
    mutations_since_flush_ = 0;
  }
  StatsRegistry::DrainedBatch batch = registry_->TakePendingBatch();
  if (batch.changes.empty()) {
    // Either nothing was recorded, or the whole batch oscillated back to
    // its baseline and the coalescer absorbed it: no optimizer runs.
    if (batch.had_pending) ++metrics_.empty_flushes;
    return 0;
  }
  ++metrics_.flushes;
  metrics_.changes_flushed += static_cast<int64_t>(batch.changes.size());
  last_flush_ = FlushOptStats{};

  {
    // Freeze the statistics values for the whole dispatch window: every
    // pass — on whichever thread — reads exactly the drained epoch's
    // values; racing mutators block here and land in the next batch.
    auto stats_frozen = registry_->ReaderLock();
    if (pool_ != nullptr) {
      std::vector<std::future<PassResult>> passes;
      passes.reserve(queries_.size());
      for (const Slot& slot : queries_) {
        DeclarativeOptimizer* optimizer = slot.optimizer;
        passes.push_back(pool_->Submit([optimizer, &batch] {
          return RunPass(optimizer, batch.changes, batch.epoch);
        }));
      }
      // Join + aggregate in registration order: the sums are commutative,
      // but deterministic order keeps any future non-commutative metric
      // honest for free.
      for (std::future<PassResult>& f : passes) AggregatePass(f.get());
    } else {
      for (const Slot& slot : queries_) {
        AggregatePass(RunPass(slot.optimizer, batch.changes, batch.epoch));
      }
    }
  }
  return batch.changes.size();
}

void ReoptSession::OnStatsMutated(StatsRegistry& registry) {
  IQRO_CHECK(&registry == registry_);
  bool fire;
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    ++metrics_.mutations_observed;
    ++mutations_since_flush_;
    fire = options_.auto_flush_after > 0 &&
           mutations_since_flush_ >= options_.auto_flush_after;
  }
  // Flush() itself rejects reentrancy and cross-thread races via
  // in_flush_; a rejected auto-flush just means the threshold fires again
  // on the next mutation.
  if (fire && !in_flush_.load()) Flush();
}

}  // namespace iqro
