// MetricsExporter: the session's flush-level counters, wired out.
//
// ReoptSession::last_flush() has always exposed the most recent flush's
// aggregated OptMetrics, but nothing *collected* the sequence — the
// ROADMAP's "wire it to a reporter" item. A MetricsExporter attached via
// ReoptSessionOptions receives one FlushReport per dispatched (non-empty)
// flush, on the flushing thread, after subscribers have been notified; the
// shipped JsonMetricsExporter accumulates them into the same JSON dialect
// the bench reports use (bench_util/json_report), so flush trajectories
// land next to BENCH_*.json artifacts and diff the same way.
#ifndef IQRO_SERVICE_METRICS_EXPORTER_H_
#define IQRO_SERVICE_METRICS_EXPORTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/session_metrics.h"

namespace iqro {

/// One dispatched flush, summarized. Values are snapshots taken after the
/// flush completed: events delivered and deferred unregistrations already
/// applied (`queries` still counts the dispatch-time registrations).
struct FlushReport {
  /// Ordinal of this flush (ReoptSessionMetrics::flushes after it).
  int64_t flush_index = 0;
  /// Registry epoch of the drained batch.
  uint64_t flush_epoch = 0;
  /// Coalesced StatChanges dispatched (> 0 by construction).
  int64_t changes = 0;
  /// Registered queries at dispatch time / queries the prefilter skipped.
  int64_t queries = 0;
  int64_t queries_skipped = 0;
  /// PlanChangeEvents delivered by this flush.
  int64_t plan_changes = 0;
  /// Registered queries not dispatched because they are quarantined or
  /// parked (snapshot at dispatch time).
  int64_t queries_quarantined = 0;
  /// Strikes this flush recorded (failed passes + failed rebuilds).
  int64_t quarantines = 0;
  /// Rehabilitations this flush performed.
  int64_t rehabilitations = 0;
  /// Memo lifecycle activity of this flush: budget evictions performed and
  /// evicted queries rehydrated (seed restore or rebuild fallback).
  int64_t evictions = 0;
  int64_t rehydrations = 0;
  /// Estimated resident memo bytes after this flush's budget enforcement
  /// (ReoptSessionMetrics::resident_memo_bytes at report time).
  int64_t resident_memo_bytes = 0;
  /// Cumulative registry mutations refused by the pending-backlog limit
  /// (StatsRegistry CoalesceStats::rejected at report time).
  int64_t mutations_rejected = 0;
  /// Cumulative shared-summary-cache outcomes at report time
  /// (ReoptSession::summary_cache() — cross-query summary sharing).
  int64_t summary_shared_hits = 0;
  int64_t summary_shared_misses = 0;
  /// Wall-clock duration of this flush (drain through delivery and budget
  /// enforcement), measured on the flushing thread. The stream-churn bench
  /// derives its flush-latency percentiles from this.
  double flush_ms = 0;
  /// Aggregated OptMetrics of the dispatched passes.
  FlushOptStats opt;
  /// Cumulative session counters after this flush.
  ReoptSessionMetrics session;
};

/// Prometheus text-exposition rendering of one cumulative session counter
/// snapshot: one `iqro_session_<counter>` sample per ReoptSessionMetrics
/// field (counters suffixed `_total`, the residency gauge bare), each
/// preceded by its `# TYPE` header. `labels` is a pre-rendered label body
/// ('shard="0"') spliced into every sample, or empty for none. Shared by
/// the daemon's GET /metrics scrape and the bench `--text` artifacts so
/// both surfaces expose the same names.
std::string PrometheusSessionText(const ReoptSessionMetrics& m, const std::string& labels);

class MetricsExporter {
 public:
  virtual ~MetricsExporter() = default;
  /// Called once per dispatched flush, on the flushing thread, after
  /// subscriber notification — even when a subscriber callback threw (the
  /// flush did dispatch; the report is owed). Must not call back into the
  /// session, mutate the registry, or throw (invoked from the flush
  /// epilogue's destructor).
  virtual void OnFlushMetrics(const FlushReport& report) = 0;
};

/// Accumulates FlushReports and renders them as a JSON array (insertion
/// order == flush order) via bench_util's serializer. Not thread-safe
/// beyond the session contract (one flush at a time); attach one exporter
/// per session.
class JsonMetricsExporter final : public MetricsExporter {
 public:
  void OnFlushMetrics(const FlushReport& report) override;

  int64_t num_reports() const { return static_cast<int64_t>(reports_.size()); }
  const std::vector<FlushReport>& reports() const { return reports_; }

  /// The accumulated reports as a JSON array literal.
  std::string ToJson() const;

  /// Writes `{"flushes": [...]}` to BENCH_<name>.json via
  /// bench_util/json_report (honors $IQRO_BENCH_OUT_DIR).
  void WriteBenchReport(const std::string& name) const;

  /// Prometheus text rendering of the accumulated trajectory: the LAST
  /// report's cumulative session counters (PrometheusSessionText) plus
  /// per-flush gauges of that report (flush_ms, changes, plan_changes).
  /// A comment-only document when no flush has reported yet.
  std::string ToPrometheusText() const;

  /// Writes ToPrometheusText() to BENCH_<name>.prom next to the JSON
  /// artifact (same $IQRO_BENCH_OUT_DIR rule) — the bench `--text` mode.
  void WriteTextReport(const std::string& name) const;

 private:
  std::vector<FlushReport> reports_;
};

}  // namespace iqro

#endif  // IQRO_SERVICE_METRICS_EXPORTER_H_
