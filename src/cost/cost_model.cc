#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace iqro {

CostModel::CostModel(const SummaryCalculator* summaries, CostParams params)
    : summaries_(summaries), params_(params) {}

double CostModel::ScanCost(int rel, PhysOp op) const {
  const StatsRegistry& reg = summaries_->registry();
  const double base = std::max(1.0, reg.base_rows(rel));
  const double mult = reg.scan_cost_multiplier(rel);
  switch (op) {
    case PhysOp::kSeqScan:
      // Read every stored row sequentially, evaluate local predicates.
      return mult * base * (params_.seq_read + params_.tuple_cpu);
    case PhysOp::kIndexScan:
      // Full traversal in index order: one random access per row.
      return mult * base * (params_.rand_read + params_.tuple_cpu);
    case PhysOp::kIndexRef:
      // The probing cost is charged to the index-NL join itself.
      return params_.index_ref;
    default:
      IQRO_CHECK(false);
  }
}

double CostModel::JoinLocalCost(PhysOp op, RelSet left, RelSet right) const {
  const double lrows = std::max(1.0, summaries_->Get(left).rows);
  const double rrows = std::max(1.0, summaries_->Get(right).rows);
  const double orows = std::max(0.0, summaries_->Get(left | right).rows);
  const double out = params_.output_row * orows;
  switch (op) {
    case PhysOp::kHashJoin:
      return params_.hash_build * lrows + params_.hash_probe * rrows + out;
    case PhysOp::kSortMergeJoin:
      return params_.merge_cpu * (lrows + rrows) + out;
    case PhysOp::kIndexNLJoin:
      // Left is the indexed inner: one probe per outer (right) row.
      return params_.rand_read * rrows + out;
    case PhysOp::kNestedLoopJoin:
      return params_.nl_pair_cpu * lrows * rrows + out;
    default:
      IQRO_CHECK(false);
  }
}

double CostModel::SortLocalCost(RelSet e) const {
  const double rows = std::max(1.0, summaries_->Get(e).rows);
  return params_.sort_cpu * rows * std::log2(std::max(2.0, rows)) +
         params_.tuple_cpu * rows;
}

}  // namespace iqro
