// Physical properties ("interesting orders" / index availability, §2.1) and
// their per-query interning. PropId 0 is always the empty property.
#ifndef IQRO_COST_PROP_TABLE_H_
#define IQRO_COST_PROP_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "query/query_spec.h"

namespace iqro {

using PropId = uint16_t;

inline constexpr PropId kPropNone = 0;

struct Prop {
  enum class Kind : uint8_t { kNone, kSorted, kIndexed };
  Kind kind = Kind::kNone;
  ColRef col;  // meaningful unless kNone

  bool operator==(const Prop&) const = default;
};

class PropTable {
 public:
  PropTable();

  PropId Intern(const Prop& p);
  PropId InternSorted(ColRef col) { return Intern({Prop::Kind::kSorted, col}); }
  PropId InternIndexed(ColRef col) { return Intern({Prop::Kind::kIndexed, col}); }

  const Prop& Get(PropId id) const { return props_[id]; }
  int size() const { return static_cast<int>(props_.size()); }

  std::string ToString(PropId id, const QuerySpec* query = nullptr) const;

 private:
  std::vector<Prop> props_;
  FlatMap64<PropId> index_;  // packed Prop bits -> interned id

  static uint64_t KeyOf(const Prop& p);
};

/// Packs an (expression, property) pair — the paper's OR-node identity —
/// into one 64-bit key.
using EPKey = uint64_t;

inline EPKey MakeEPKey(RelSet expr, PropId prop) {
  return (static_cast<uint64_t>(expr) << 16) | prop;
}
inline RelSet EPExpr(EPKey k) { return static_cast<RelSet>(k >> 16); }
inline PropId EPProp(EPKey k) { return static_cast<PropId>(k & 0xFFFF); }

}  // namespace iqro

#endif  // IQRO_COST_PROP_TABLE_H_
