// Physical properties ("interesting orders" / index availability, §2.1) and
// their per-query interning. PropId 0 is always the empty property.
#ifndef IQRO_COST_PROP_TABLE_H_
#define IQRO_COST_PROP_TABLE_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>

#include "common/flat_map.h"
#include "query/query_spec.h"

namespace iqro {

using PropId = uint16_t;

inline constexpr PropId kPropNone = 0;

struct Prop {
  enum class Kind : uint8_t { kNone, kSorted, kIndexed };
  Kind kind = Kind::kNone;
  ColRef col;  // meaningful unless kNone

  bool operator==(const Prop&) const = default;
};

/// Thread-safety: single-threaded by default. EnableConcurrentUse() (sticky,
/// called while still single-threaded) switches Intern/Get/size to internal
/// shared_mutex locking so several optimizer fixpoints dispatched by a
/// parallel ReoptSession flush may intern and resolve properties against one
/// shared table. Interned Props live in a deque, so a `Get` reference stays
/// valid across concurrent interning forever. Note that under concurrent
/// interning the *numeric* PropId a property receives depends on thread
/// interleaving — everything semantic is id-value-independent, and
/// cross-optimizer comparison uses CanonicalDumpState(), which resolves ids
/// to property content precisely so interning order cannot leak into it.
class PropTable {
 public:
  PropTable();

  PropId Intern(const Prop& p);
  PropId InternSorted(ColRef col) { return Intern({Prop::Kind::kSorted, col}); }
  PropId InternIndexed(ColRef col) { return Intern({Prop::Kind::kIndexed, col}); }

  const Prop& Get(PropId id) const;
  int size() const;

  std::string ToString(PropId id, const QuerySpec* query = nullptr) const;

  /// Sticky opt-in to internal locking (see class comment). Must be called
  /// while no other thread touches the table; const because shared *read*
  /// infrastructure hangs off logically-const objects (mutable members).
  void EnableConcurrentUse() const { concurrent_ = true; }

 private:
  std::deque<Prop> props_;   // stable addresses: Get references never move
  FlatMap64<PropId> index_;  // packed Prop bits -> interned id
  mutable bool concurrent_ = false;
  mutable std::shared_mutex mu_;

  static uint64_t KeyOf(const Prop& p);
};

/// Packs an (expression, property) pair — the paper's OR-node identity —
/// into one 64-bit key.
using EPKey = uint64_t;

inline EPKey MakeEPKey(RelSet expr, PropId prop) {
  return (static_cast<uint64_t>(expr) << 16) | prop;
}
inline RelSet EPExpr(EPKey k) { return static_cast<RelSet>(k >> 16); }
inline PropId EPProp(EPKey k) { return static_cast<PropId>(k & 0xFFFF); }

}  // namespace iqro

#endif  // IQRO_COST_PROP_TABLE_H_
