#include "cost/physical.h"

namespace iqro {

const char* LogOpName(LogOp op) {
  switch (op) {
    case LogOp::kScan:
      return "scan";
    case LogOp::kJoin:
      return "join";
    case LogOp::kSort:
      return "sort";
  }
  return "?";
}

const char* PhysOpName(PhysOp op) {
  switch (op) {
    case PhysOp::kSeqScan:
      return "seq-scan";
    case PhysOp::kIndexScan:
      return "index-scan";
    case PhysOp::kIndexRef:
      return "index-ref";
    case PhysOp::kSort:
      return "sort";
    case PhysOp::kHashJoin:
      return "hash-join";
    case PhysOp::kSortMergeJoin:
      return "sort-merge-join";
    case PhysOp::kIndexNLJoin:
      return "index-nl-join";
    case PhysOp::kNestedLoopJoin:
      return "nl-join";
  }
  return "?";
}

}  // namespace iqro
