#include "cost/prop_table.h"

#include <mutex>

#include "common/check.h"
#include "common/str_util.h"

namespace iqro {

PropTable::PropTable() {
  props_.push_back(Prop{});  // id 0 = none
  index_.TryEmplace(KeyOf(Prop{}), kPropNone);
}

uint64_t PropTable::KeyOf(const Prop& p) {
  return (static_cast<uint64_t>(p.kind) << 40) |
         (static_cast<uint64_t>(static_cast<uint32_t>(p.col.rel)) << 20) |
         static_cast<uint64_t>(static_cast<uint32_t>(p.col.col));
}

PropId PropTable::Intern(const Prop& p) {
  if (!concurrent_) {
    auto [slot, inserted] = index_.TryEmplace(KeyOf(p), kPropNone);
    if (!inserted) return *slot;
    IQRO_CHECK(props_.size() < 0xFFFF);
    PropId id = static_cast<PropId>(props_.size());
    props_.push_back(p);
    *slot = id;
    return id;
  }
  const uint64_t key = KeyOf(p);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (const PropId* found = index_.Find(key)) return *found;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [slot, inserted] = index_.TryEmplace(key, kPropNone);
  if (!inserted) return *slot;  // another thread won the race
  IQRO_CHECK(props_.size() < 0xFFFF);
  PropId id = static_cast<PropId>(props_.size());
  props_.push_back(p);
  *slot = id;
  return id;
}

const Prop& PropTable::Get(PropId id) const {
  if (!concurrent_) return props_[id];
  // The deque element never moves, so only the container's internal block
  // map (mutated by a concurrent Intern) needs the lock — the returned
  // reference outlives it safely.
  std::shared_lock<std::shared_mutex> lock(mu_);
  return props_[id];
}

int PropTable::size() const {
  if (!concurrent_) return static_cast<int>(props_.size());
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int>(props_.size());
}

std::string PropTable::ToString(PropId id, const QuerySpec* query) const {
  const Prop& p = Get(id);
  std::string col;
  if (p.kind != Prop::Kind::kNone) {
    if (query != nullptr) {
      col = StrFormat("%s.#%d", query->relations[static_cast<size_t>(p.col.rel)].alias.c_str(),
                      p.col.col);
    } else {
      col = StrFormat("r%d.#%d", p.col.rel, p.col.col);
    }
  }
  switch (p.kind) {
    case Prop::Kind::kNone:
      return "-";
    case Prop::Kind::kSorted:
      return "sorted(" + col + ")";
    case Prop::Kind::kIndexed:
      return "indexed(" + col + ")";
  }
  return "?";
}

}  // namespace iqro
