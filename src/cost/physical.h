// Logical and physical operator vocabulary of the plan space.
#ifndef IQRO_COST_PHYSICAL_H_
#define IQRO_COST_PHYSICAL_H_

#include <cstdint>

namespace iqro {

enum class LogOp : uint8_t {
  kScan,  // leaf: base relation access with local predicates applied
  kJoin,  // binary
  kSort,  // unary enforcer: (e, sorted(c)) from (e, none)
};

enum class PhysOp : uint8_t {
  kSeqScan,        // heap scan; delivers clustering order if any
  kIndexScan,      // full traversal in index order (delivers sorted(col))
  kIndexRef,       // leaf handle used as the indexed inner of an INLJ
  kSort,           // explicit sort enforcer
  kHashJoin,       // pipelined hash join; left = build side
  kSortMergeJoin,  // requires both inputs sorted on the join columns
  kIndexNLJoin,    // left = indexed inner (base relation), right = outer
  kNestedLoopJoin, // fallback for partitions without equality edges
};

const char* LogOpName(LogOp op);
const char* PhysOpName(PhysOp op);

}  // namespace iqro

#endif  // IQRO_COST_PHYSICAL_H_
