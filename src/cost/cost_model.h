// CostModel: the paper's Fn_scancost / Fn_nonscancost / Fn_sum. All costs
// read summaries and scan-cost multipliers through the live StatsRegistry,
// so a registry update immediately changes the costs this model reports —
// that is the signal the incremental re-optimizer propagates.
#ifndef IQRO_COST_COST_MODEL_H_
#define IQRO_COST_COST_MODEL_H_

#include "cost/physical.h"
#include "cost/prop_table.h"
#include "stats/summary.h"

namespace iqro {

/// Cost coefficients; one abstract "cost unit" ~ one simple per-tuple step.
/// The defaults are calibrated against the repository's own executor
/// (hash indexes make "random" probes cheap; producing an output row —
/// allocation + column scatter — dominates per-tuple work).
struct CostParams {
  double tuple_cpu = 1.0;       // per-tuple pipeline step
  double seq_read = 1.0;        // per-row sequential access
  double rand_read = 1.8;       // per index probe (hash lookup)
  double hash_build = 2.0;      // per build-side row
  double hash_probe = 1.2;      // per probe-side row
  double merge_cpu = 1.0;       // per row of either merge input
  double sort_cpu = 0.4;        // x n log2(n)
  double nl_pair_cpu = 0.25;    // per examined pair in a nested-loop join
  double output_row = 2.5;      // per produced join output row
  double index_ref = 8.0;       // fixed cost of opening an index handle
};

class CostModel {
 public:
  CostModel(const SummaryCalculator* summaries, CostParams params = CostParams{});

  const SummaryCalculator& summaries() const { return *summaries_; }
  const CostParams& params() const { return params_; }

  /// Fn_scancost: full cost of a leaf alternative producing relation `rel`
  /// (singleton expression) via `op`. Includes the relation's scan-cost
  /// multiplier from the registry.
  double ScanCost(int rel, PhysOp op) const;

  /// Fn_nonscancost for a join alternative: local (root-operator-only) cost
  /// of joining `left` and `right` into `out = left | right` using `op`.
  double JoinLocalCost(PhysOp op, RelSet left, RelSet right) const;

  /// Fn_nonscancost for the sort enforcer over expression `e`.
  double SortLocalCost(RelSet e) const;

  /// Fn_sum.
  static double Sum(double left, double right, double local) {
    return left + right + local;
  }

 private:
  const SummaryCalculator* summaries_;
  CostParams params_;
};

}  // namespace iqro

#endif  // IQRO_COST_COST_MODEL_H_
