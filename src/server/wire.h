// The reoptd wire protocol: length-prefixed, checksummed binary frames
// carrying the re-optimization service vocabulary — QuerySpec,
// testing::CatalogSpec, testing::StatMutation — between clients and the
// daemon (server/daemon.h), or between a test and an in-process
// ShardedService via the same codecs.
//
// ## Frame format (docs/WIRE.md)
//
//   offset  size  field
//   0       4     magic "IQR1" (the '1' is the protocol version digit)
//   4       4     payload length, u32 LE (kMaxFramePayload cap)
//   8       8     FNV-1a64 checksum of the payload, u64 LE
//   16      len   payload
//
// The payload's first byte is the MsgType, followed by a u64 request id
// (responses echo their request's id; unsolicited event frames carry 0).
// All integers are little-endian via common/serialize.h.
//
// ## Decode contract
//
// Every structural violation raises the matching typed SerializeError:
// wrong magic -> kBadMagic; right magic, wrong version digit ->
// kBadVersion; oversized or inconsistent lengths/counts/enums ->
// kBadSection; payload shorter than its contents (including a partial
// frame at connection EOF) -> kTruncated; checksum mismatch -> kChecksum.
// Nothing is ever half-applied: DecodeRequest/DecodeServerMessage either
// return a fully validated message or throw. The corrupt-frame corpus
// (tests/data/wire, tools/make_wire_corpus.py) pins each error to its
// exact code.
#ifndef IQRO_SERVER_WIRE_H_
#define IQRO_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "query/query_spec.h"
#include "testing/scenario.h"

namespace iqro::server {

inline constexpr char kWireMagic[4] = {'I', 'Q', 'R', '1'};
inline constexpr size_t kFrameHeaderSize = 16;
/// Frames larger than this are rejected (kBadSection) before any
/// allocation — a hostile length prefix must not OOM the daemon.
inline constexpr size_t kMaxFramePayload = 8u << 20;

enum class MsgType : uint8_t {
  // ---- requests (client -> server) ----
  kRegisterQuery = 1,
  kReleaseQuery = 2,
  kRecordStatBatch = 3,
  kFlush = 4,
  kSnapshot = 5,
  kGetMetrics = 6,
  kShutdown = 7,
  /// Re-attach event delivery for an existing query to THIS connection
  /// (the warm-restart/reconnect path: queries survive their registering
  /// connection, but events need a live socket to go to).
  kSubscribeQuery = 8,
  // ---- responses (server -> client; echo the request id) ----
  kRegistered = 64,
  kOk = 65,
  kError = 66,
  kMetricsText = 67,
  // ---- events (server -> client, unsolicited) ----
  kPlanChange = 128,
  kQuarantine = 129,
};

const char* MsgTypeName(MsgType t);

/// Application-level rejections (kError responses). Distinct from decode
/// errors: a frame that decodes but asks for something impossible gets an
/// error RESPONSE; a frame that does not decode closes the connection.
enum class WireErrorCode : uint8_t {
  kBadRequest = 1,     // structurally valid, semantically not (e.g. empty spec)
  kUnknownWorld = 2,   // world key never registered
  kUnknownQuery = 3,   // query id never registered or already released
  kSpecMismatch = 4,   // world key reused with different catalog/query specs
  kUnknownOptions = 5, // options_name not in the ScenarioOptionSets vocabulary
  kOverloaded = 6,     // session shed the registration (SessionOverloaded)
  kShuttingDown = 7,   // daemon is draining; no new work
};

const char* WireErrorCodeName(WireErrorCode c);

// ---- request bodies ------------------------------------------------------

struct RegisterQueryReq {
  /// Client-chosen world id. The first registration under a key creates
  /// the world (catalog + query + statistics + one ReoptSession) on its
  /// shard; later registrations under the same key must carry identical
  /// specs (fingerprint-checked) and add another optimizer configuration
  /// over the same shared registry.
  uint64_t world_key = 0;
  /// Attach plan-change/quarantine event delivery to the registering
  /// connection (daemon) or sink (in-process).
  bool want_events = true;
  testing::CatalogSpec catalog;
  QuerySpec query;
  /// Named optimizer configuration (testing::ScenarioOptionSets vocabulary:
  /// "all", "aggsel", "aggsel+refcount", "aggsel+bounding", "evita",
  /// "nopruning", "all-fifo").
  std::string options_name;
};

struct ReleaseQueryReq {
  uint64_t query_id = 0;
};

struct SubscribeQueryReq {
  uint64_t query_id = 0;
};

struct RecordStatBatchReq {
  uint64_t world_key = 0;
  std::vector<testing::StatMutation> mutations;
};

struct FlushReq {
  bool all = false;          // true: every world on every shard
  uint64_t world_key = 0;    // used when !all
};

/// One decoded request (tagged by `type`; only the matching body field is
/// meaningful). kSnapshot/kGetMetrics/kShutdown have empty bodies.
struct Request {
  MsgType type = MsgType::kFlush;
  uint64_t request_id = 0;
  RegisterQueryReq register_query;
  ReleaseQueryReq release_query;
  SubscribeQueryReq subscribe_query;
  RecordStatBatchReq record_stat_batch;
  FlushReq flush;
};

// ---- response/event bodies ----------------------------------------------

struct RegisteredResp {
  uint64_t query_id = 0;
  uint32_t shard = 0;
  double best_cost = 0;
};

struct OkResp {
  /// Request-dependent payload: accepted mutations (kRecordStatBatch),
  /// dispatched changes (kFlush), snapshotted queries (kSnapshot), 0
  /// otherwise.
  uint64_t value = 0;
};

struct ErrorResp {
  WireErrorCode code = WireErrorCode::kBadRequest;
  std::string message;
};

struct MetricsTextResp {
  std::string text;  // Prometheus text exposition (PrometheusSessionText)
};

struct PlanChangeEventMsg {
  uint64_t query_id = 0;
  uint64_t world_key = 0;
  uint64_t flush_epoch = 0;
  double old_cost = 0;
  double new_cost = 0;
  int32_t changed_operators = 0;
  int32_t total_operators = 0;
  int32_t join_order_prefix = 0;
  int32_t join_order_len = 0;
};

struct QuarantineEventMsg {
  uint64_t query_id = 0;
  uint64_t world_key = 0;
  uint8_t reason = 0;
  int32_t strikes = 0;
  bool parked = false;
  std::string message;
};

/// One decoded server->client message (response or event), tagged by
/// `type`. request_id is 0 for event frames.
struct ServerMessage {
  MsgType type = MsgType::kOk;
  uint64_t request_id = 0;
  RegisteredResp registered;
  OkResp ok;
  ErrorResp error;
  MetricsTextResp metrics;
  PlanChangeEventMsg plan_change;
  QuarantineEventMsg quarantine;
};

// ---- framing -------------------------------------------------------------

/// Wraps a payload in the 16-byte header (magic, length, checksum).
std::string EncodeFrame(const std::string& payload);

/// Incremental per-connection frame reassembly. Feed() appends raw socket
/// bytes; Next() yields one validated payload at a time (false: need more
/// bytes); Finish() is the EOF check — a partially buffered frame at
/// connection close is kTruncated. All corruption throws SerializeError
/// per the decode contract above; after a throw the decoder is poisoned
/// (the connection is closed, not resynchronized).
class FrameDecoder {
 public:
  void Feed(const void* data, size_t len);
  bool Next(std::string* payload);
  void Finish() const;
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
};

/// Decodes a complete byte image into its frame payloads (Feed + Next
/// loop + Finish) — the corpus-test and tooling entry point.
std::vector<std::string> DecodeFrames(const std::string& image);

// ---- message codecs ------------------------------------------------------

std::string EncodeRegisterQuery(uint64_t request_id, const RegisterQueryReq& req);
std::string EncodeReleaseQuery(uint64_t request_id, uint64_t query_id);
std::string EncodeSubscribeQuery(uint64_t request_id, uint64_t query_id);
std::string EncodeRecordStatBatch(uint64_t request_id, const RecordStatBatchReq& req);
std::string EncodeFlush(uint64_t request_id, const FlushReq& req);
/// kSnapshot / kGetMetrics / kShutdown (empty bodies).
std::string EncodeSimpleRequest(MsgType type, uint64_t request_id);

std::string EncodeRegistered(uint64_t request_id, const RegisteredResp& resp);
std::string EncodeOk(uint64_t request_id, uint64_t value);
std::string EncodeError(uint64_t request_id, WireErrorCode code, const std::string& message);
std::string EncodeMetricsText(uint64_t request_id, const std::string& text);
std::string EncodePlanChangeEvent(const PlanChangeEventMsg& e);
std::string EncodeQuarantineEvent(const QuarantineEventMsg& e);

/// Server side: payload -> validated Request (throws SerializeError).
Request DecodeRequest(const std::string& payload);
/// Client side: payload -> validated response/event (throws SerializeError).
ServerMessage DecodeServerMessage(const std::string& payload);

// ---- spec codecs (shared with snapshot manifests and fingerprints) -------

void EncodeQuerySpec(ByteWriter* w, const QuerySpec& q);
QuerySpec DecodeQuerySpec(ByteReader* r);
void EncodeCatalogSpec(ByteWriter* w, const testing::CatalogSpec& c);
testing::CatalogSpec DecodeCatalogSpec(ByteReader* r);
void EncodeStatMutation(ByteWriter* w, const testing::StatMutation& m);
testing::StatMutation DecodeStatMutation(ByteReader* r);

/// FNV-1a64 over the encoded (catalog, query) pair — the world-spec
/// fingerprint RegisterQuery consistency checks use.
uint64_t WorldFingerprint(const testing::CatalogSpec& catalog, const QuerySpec& query);

}  // namespace iqro::server

#endif  // IQRO_SERVER_WIRE_H_
