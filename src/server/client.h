// Blocking client for the reoptd wire protocol (server/wire.h): one
// socket, synchronous request/response calls, with unsolicited event
// frames (plan changes, quarantines) captured into a local queue as they
// interleave with responses on the wire.
//
// Single-threaded by design: the loopback load bench runs many Client
// instances on many threads, one per thread. Every call throws
// SerializeError on a protocol violation, ClientError on a kError
// response, std::runtime_error on socket failure.
#ifndef IQRO_SERVER_CLIENT_H_
#define IQRO_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/wire.h"

namespace iqro::server {

/// A kError response surfaced as an exception (the wire code preserved).
class ClientError : public std::runtime_error {
 public:
  ClientError(WireErrorCode code_in, const std::string& what)
      : std::runtime_error(what), code(code_in) {}
  WireErrorCode code;
};

/// One event frame as received, stamped with its local arrival time (the
/// flush-to-event latency measurement's receive side).
struct ReceivedEvent {
  ServerMessage msg;
  std::chrono::steady_clock::time_point received_at;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void ConnectUnix(const std::string& path);
  void ConnectTcp(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // ---- requests (each blocks for its response; events seen on the way
  // are queued into events()) ----

  RegisteredResp RegisterQuery(uint64_t world_key, const testing::CatalogSpec& catalog,
                               const QuerySpec& query, const std::string& options_name,
                               bool want_events = true);
  void ReleaseQuery(uint64_t query_id);
  void SubscribeQuery(uint64_t query_id);
  /// Returns the number of mutations the server accepted.
  uint64_t RecordStatBatch(uint64_t world_key,
                           const std::vector<testing::StatMutation>& mutations);
  /// Returns the dispatched change count.
  uint64_t Flush(uint64_t world_key);
  uint64_t FlushAll();
  /// Returns the number of queries persisted.
  uint64_t Snapshot();
  std::string Metrics();
  void Shutdown();

  // ---- events ----

  /// Reads whatever the socket has (waiting up to `timeout` for the first
  /// byte) and returns the number of NEW events queued.
  size_t PollEvents(std::chrono::milliseconds timeout);

  /// Received-and-not-yet-taken events, in wire order.
  std::deque<ReceivedEvent>& events() { return events_; }
  std::vector<ReceivedEvent> TakeEvents();

 private:
  /// Sends one frame and reads until its response arrives (events queue).
  ServerMessage Call(const std::string& frame, uint64_t request_id);
  ServerMessage ExpectOkLike(const std::string& frame, uint64_t request_id);
  void SendRaw(const std::string& bytes);
  /// Reads one chunk (blocking up to `timeout_ms`; -1 = forever), feeds
  /// the decoder, dispatches events. False on timeout. Throws on EOF.
  bool ReadChunk(int timeout_ms);
  /// Drains decoded frames: events to events_, a response into *resp
  /// (when non-null). True when a response was captured.
  bool DrainDecoded(ServerMessage* resp, uint64_t expect_id);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
  std::deque<ReceivedEvent> events_;
};

}  // namespace iqro::server

#endif  // IQRO_SERVER_CLIENT_H_
