// ShardedService: the daemon's shard layer — N worker threads, each owning
// a disjoint set of "worlds" (one StatsRegistry partition + one
// ReoptSession per world), routed by a deterministic scope-mask hash.
//
// ## The world model
//
// A *world* is one (CatalogSpec, QuerySpec) pair: one statistics namespace
// (StatsRegistry slots are the query's relation slots — see
// query/bind_stats.h), one join graph/plan space, one ReoptSession. A
// *query* within a world is one DeclarativeOptimizer configuration (a
// named OptimizerOptions set from the testing::ScenarioOptionSets
// vocabulary) registered in that world's session — the scope-overlap storm
// idiom (src/testing/scenario_class.cc): many optimizer configs sharing
// one registry, each with its own SummaryCalculator/CostModel so the
// session's SharedSummaryCache stays the only cross-query sharing edge.
//
// Worlds are assigned to shards by ShardOfWorld(world_key, scope_mask):
// FNV-1a64 over the key and the query's relation mask, mod num_shards —
// deterministic across runs, restarts, and shard counts' routing inputs,
// so a 1-shard and a 4-shard service route the same stream to the same
// per-world command order. Everything that touches a world (Register,
// mutations, Flush, snapshot) executes on its shard's thread through a
// FIFO command queue; per-world operation order therefore equals arrival
// order, which is what makes the sharded service byte-equivalent to a
// single in-process ReoptSession oracle per world (the shard-routing
// differential test's contract). Worlds are independent by construction —
// cross-world ordering is unconstrained and unobservable.
//
// ## Usable without sockets
//
// This layer has no I/O: the daemon (server/daemon.h) drives it from
// decoded wire frames, tests and benches drive it directly. Plan-change /
// quarantine notifications are delivered through a per-query EventSink on
// the shard thread (the daemon's sink encodes an event frame into the
// connection outbox; tests record them).
#ifndef IQRO_SERVER_SHARDED_SERVICE_H_
#define IQRO_SERVER_SHARDED_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/relset.h"
#include "query/query_spec.h"
#include "server/wire.h"
#include "testing/scenario.h"

namespace iqro::server {

/// Application-level rejection, carrying the wire error code the daemon
/// answers with (in-process callers catch it directly).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(WireErrorCode code_in, const std::string& what)
      : std::runtime_error(what), code(code_in) {}
  WireErrorCode code;
};

/// One notification out of a world's session, flattened for delivery
/// (plan-change or quarantine; see server/wire.h for the frame shape).
struct ServerEvent {
  enum class Kind : uint8_t { kPlanChange, kQuarantine };
  Kind kind = Kind::kPlanChange;
  uint64_t query_id = 0;
  uint64_t world_key = 0;
  // kPlanChange
  uint64_t flush_epoch = 0;
  double old_cost = 0;
  double new_cost = 0;
  int changed_operators = 0;
  int total_operators = 0;
  int join_order_prefix = 0;
  int join_order_len = 0;
  // kQuarantine
  uint8_t reason = 0;
  int strikes = 0;
  bool parked = false;
  std::string message;
};

/// Where a query's events go. Called on the owning SHARD thread, during a
/// flush — implementations must be quick, must not call back into the
/// service, and must synchronize their own state (the daemon's sink locks
/// a connection outbox; test sinks lock a vector).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnServerEvent(const ServerEvent& event) = 0;
};

struct ShardedServiceOptions {
  int num_shards = 1;
  /// > 0: every world's session auto-flushes after this many mutations
  /// (CountPolicy). 0: manual Flush()/FlushAll() only.
  int auto_flush_count = 0;
  /// > 0: every world's session bounds mutation staleness by wall clock
  /// (DeadlinePolicy); shard threads then poll idle sessions at
  /// `poll_granularity`. Ignored when auto_flush_count > 0.
  std::chrono::milliseconds flush_deadline{0};
  std::chrono::milliseconds poll_granularity{2};
  /// Per-session failure-domain / lifecycle knobs (see ReoptSessionOptions).
  int64_t per_query_work_budget = 0;
  size_t memo_byte_budget = 0;
  /// Directory for SaveSnapshots()/LoadSnapshots() (per-shard manifests +
  /// per-world session snapshots). Empty: snapshots disabled.
  std::string snapshot_dir;
};

/// Aggregate counters across every shard's sessions (quiesced reads: the
/// collecting command runs on each shard thread, so no flush is in flight
/// on that shard while its sessions are read).
struct ShardedServiceStats {
  int64_t worlds = 0;
  int64_t queries = 0;
  int64_t flushes = 0;
  int64_t changes_flushed = 0;
  int64_t plan_changes = 0;
  int64_t mutations_observed = 0;
  int64_t quarantines = 0;
  int64_t mutations_rejected = 0;  // invalid mutations dropped at the door
};

class ShardedService {
 public:
  struct RegisterResult {
    uint64_t query_id = 0;
    uint32_t shard = 0;
    double best_cost = 0;
  };

  explicit ShardedService(ShardedServiceOptions options = {});
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// The deterministic routing hash: FNV-1a64(world_key || scope_mask) mod
  /// num_shards. The key salts the hash so services whose worlds share a
  /// relation-mask alphabet (every 4-relation query masks 0b1111) still
  /// spread.
  static uint32_t ShardOfWorld(uint64_t world_key, RelSet scope_mask, int num_shards);

  /// Registers one optimizer configuration. The first registration under
  /// `world_key` builds the world on its shard (catalog, statistics, join
  /// graph, session); later ones must present byte-identical specs
  /// (WorldFingerprint-checked -> ServiceError{kSpecMismatch}) and join
  /// the existing session. `options_name` must name a
  /// testing::ScenarioOptionSets entry (-> kUnknownOptions). `sink` (may
  /// be null) receives the query's events on the shard thread until
  /// SetSink replaces it. Thread-safe.
  RegisterResult RegisterQuery(uint64_t world_key, const testing::CatalogSpec& catalog,
                               const QuerySpec& query, const std::string& options_name,
                               EventSink* sink);

  /// Unregisters a query (its session handle is released on the shard
  /// thread). Returns false for an unknown id. The world stays resident —
  /// worlds die with the service, not with their last query.
  bool ReleaseQuery(uint64_t query_id);

  /// Replaces a query's event sink (null detaches) — the daemon's
  /// reconnect / connection-teardown path. Synchronous: after it returns,
  /// the old sink is guaranteed to receive no further calls. Returns
  /// false for an unknown id.
  bool SetSink(uint64_t query_id, EventSink* sink);

  /// Validates and applies a mutation batch to a world's registry, in
  /// arrival order on its shard thread (asynchronously — a following
  /// Flush() on the same world is ordered after it by the FIFO queue).
  /// Returns the number of mutations accepted; out-of-range targets,
  /// non-finite or non-positive values are dropped and counted
  /// (Stats().mutations_rejected). ServiceError{kUnknownWorld} for an
  /// unregistered key.
  size_t RecordStatBatch(uint64_t world_key, const std::vector<testing::StatMutation>& mutations);

  /// Flushes one world's session (synchronous; returns dispatched
  /// StatChanges). ServiceError{kUnknownWorld} for an unregistered key.
  size_t Flush(uint64_t world_key);

  /// Flushes every world on every shard (shards in parallel); returns the
  /// summed dispatched change count.
  size_t FlushAll();

  /// Barrier: returns after every command queued before it has executed
  /// on every shard.
  void Drain();

  /// The query's optimizer state, canonically rendered
  /// (DeclarativeOptimizer::CanonicalDumpState) — the differential
  /// harness's comparison key. ServiceError{kUnknownQuery} on a bad id.
  std::string QueryCanonicalDump(uint64_t query_id);

  /// The query's current best plan cost. ServiceError{kUnknownQuery}.
  double QueryBestCost(uint64_t query_id);

  /// Persists every world: per shard, one manifest (world specs + query
  /// configurations, snapshot.h container) plus one ReoptSession snapshot
  /// per world, all under options.snapshot_dir. Flushes first (session
  /// SaveSnapshot semantics). Returns the number of queries persisted.
  /// Throws ServiceError{kBadRequest} without a snapshot_dir;
  /// SerializeError{kIo} on filesystem failure.
  size_t SaveSnapshots();

  /// Warm-restarts an EMPTY service from SaveSnapshots() output: rebuilds
  /// each world from its manifest record, then LoadSnapshot()s its
  /// session, preserving query ids. Event sinks come back null — clients
  /// re-attach with SetSink (kSubscribeQuery on the wire). Missing
  /// manifests are treated as empty shards. Returns the number of queries
  /// restored. Throws SerializeError on corrupt files.
  size_t LoadSnapshots();

  /// Prometheus text exposition: the summed session counters of every
  /// world (service/metrics_exporter.h PrometheusSessionText) plus
  /// service-level gauges (worlds, queries, per-shard query counts).
  std::string MetricsText();

  ShardedServiceStats Stats();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t num_queries() const;
  size_t num_worlds() const;

 private:
  struct Shard;
  struct Group;
  struct GroupQuery;
  struct WorldInfo {
    uint32_t shard = 0;
    int num_relations = 0;
    int num_edges = 0;
  };
  struct QueryLoc {
    uint32_t shard = 0;
    uint64_t world_key = 0;
  };

  void ShardLoop(Shard* shard);
  void Post(uint32_t shard, std::function<void()> fn);
  /// Posts `fn` and waits for its result; exceptions propagate.
  template <typename F>
  auto Call(uint32_t shard, F&& fn) -> decltype(fn());

  /// Shard-thread body of RegisterQuery (group lookup/create + session
  /// registration). `loc_out` receives the created query's id.
  RegisterResult RegisterOnShard(uint32_t shard_idx, uint64_t world_key,
                                 const testing::CatalogSpec& catalog, const QuerySpec& query,
                                 const std::string& options_name, EventSink* sink);

  ShardedServiceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex index_mu_;
  std::unordered_map<uint64_t, WorldInfo> worlds_;
  std::unordered_map<uint64_t, QueryLoc> queries_;
  uint64_t next_query_id_ = 1;
  int64_t mutations_rejected_ = 0;
};

}  // namespace iqro::server

#endif  // IQRO_SERVER_SHARDED_SERVICE_H_
