#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace iqro::server {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Client::ConnectUnix(const std::string& path) {
  Close();
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("client: socket() failed");
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    throw std::runtime_error("client: connect(" + path + ") failed: " +
                             std::string(strerror(errno)));
  }
}

void Client::ConnectTcp(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("client: socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    throw std::runtime_error("client: bad host " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    throw std::runtime_error("client: connect(" + host + ":" + std::to_string(port) +
                             ") failed: " + std::string(strerror(errno)));
  }
}

void Client::SendRaw(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("client: write failed: " + std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
}

bool Client::ReadChunk(int timeout_ms) {
  if (timeout_ms >= 0) {
    pollfd p{fd_, POLLIN, 0};
    const int r = poll(&p, 1, timeout_ms);
    if (r <= 0) return false;
  }
  char buf[16384];
  const ssize_t n = read(fd_, buf, sizeof(buf));
  if (n == 0) {
    decoder_.Finish();  // partial frame at EOF -> kTruncated
    throw std::runtime_error("client: connection closed by server");
  }
  if (n < 0) {
    if (errno == EINTR) return false;
    throw std::runtime_error("client: read failed: " + std::string(strerror(errno)));
  }
  decoder_.Feed(buf, static_cast<size_t>(n));
  return true;
}

bool Client::DrainDecoded(ServerMessage* resp, uint64_t expect_id) {
  std::string payload;
  bool got = false;
  while (decoder_.Next(&payload)) {
    ServerMessage msg = DecodeServerMessage(payload);
    if (msg.type == MsgType::kPlanChange || msg.type == MsgType::kQuarantine) {
      events_.push_back(ReceivedEvent{std::move(msg), std::chrono::steady_clock::now()});
      continue;
    }
    if (resp == nullptr || got) {
      throw std::runtime_error("client: unexpected response frame " +
                               std::string(MsgTypeName(msg.type)));
    }
    if (msg.request_id != expect_id) {
      throw std::runtime_error("client: response id " + std::to_string(msg.request_id) +
                               " does not match request " + std::to_string(expect_id));
    }
    *resp = std::move(msg);
    got = true;
  }
  return got;
}

ServerMessage Client::Call(const std::string& frame, uint64_t request_id) {
  SendRaw(frame);
  ServerMessage resp;
  while (!DrainDecoded(&resp, request_id)) ReadChunk(-1);
  return resp;
}

ServerMessage Client::ExpectOkLike(const std::string& frame, uint64_t request_id) {
  ServerMessage resp = Call(frame, request_id);
  if (resp.type == MsgType::kError) throw ClientError(resp.error.code, resp.error.message);
  return resp;
}

RegisteredResp Client::RegisterQuery(uint64_t world_key, const testing::CatalogSpec& catalog,
                                     const QuerySpec& query, const std::string& options_name,
                                     bool want_events) {
  RegisterQueryReq req;
  req.world_key = world_key;
  req.want_events = want_events;
  req.catalog = catalog;
  req.query = query;
  req.options_name = options_name;
  const uint64_t id = next_request_id_++;
  ServerMessage resp = ExpectOkLike(EncodeRegisterQuery(id, req), id);
  if (resp.type != MsgType::kRegistered) {
    throw std::runtime_error("client: expected kRegistered, got " +
                             std::string(MsgTypeName(resp.type)));
  }
  return resp.registered;
}

void Client::ReleaseQuery(uint64_t query_id) {
  const uint64_t id = next_request_id_++;
  ExpectOkLike(EncodeReleaseQuery(id, query_id), id);
}

void Client::SubscribeQuery(uint64_t query_id) {
  const uint64_t id = next_request_id_++;
  ExpectOkLike(EncodeSubscribeQuery(id, query_id), id);
}

uint64_t Client::RecordStatBatch(uint64_t world_key,
                                 const std::vector<testing::StatMutation>& mutations) {
  RecordStatBatchReq req;
  req.world_key = world_key;
  req.mutations = mutations;
  const uint64_t id = next_request_id_++;
  return ExpectOkLike(EncodeRecordStatBatch(id, req), id).ok.value;
}

uint64_t Client::Flush(uint64_t world_key) {
  FlushReq req;
  req.all = false;
  req.world_key = world_key;
  const uint64_t id = next_request_id_++;
  return ExpectOkLike(EncodeFlush(id, req), id).ok.value;
}

uint64_t Client::FlushAll() {
  FlushReq req;
  req.all = true;
  const uint64_t id = next_request_id_++;
  return ExpectOkLike(EncodeFlush(id, req), id).ok.value;
}

uint64_t Client::Snapshot() {
  const uint64_t id = next_request_id_++;
  return ExpectOkLike(EncodeSimpleRequest(MsgType::kSnapshot, id), id).ok.value;
}

std::string Client::Metrics() {
  const uint64_t id = next_request_id_++;
  ServerMessage resp = ExpectOkLike(EncodeSimpleRequest(MsgType::kGetMetrics, id), id);
  if (resp.type != MsgType::kMetricsText) {
    throw std::runtime_error("client: expected kMetricsText, got " +
                             std::string(MsgTypeName(resp.type)));
  }
  return resp.metrics.text;
}

void Client::Shutdown() {
  const uint64_t id = next_request_id_++;
  ExpectOkLike(EncodeSimpleRequest(MsgType::kShutdown, id), id);
}

size_t Client::PollEvents(std::chrono::milliseconds timeout) {
  const size_t before = events_.size();
  // Wait up to `timeout` for the first byte, then keep draining whatever
  // arrives back-to-back without further waiting.
  if (ReadChunk(static_cast<int>(timeout.count()))) {
    DrainDecoded(nullptr, 0);
    while (ReadChunk(0)) DrainDecoded(nullptr, 0);
  }
  return events_.size() - before;
}

std::vector<ReceivedEvent> Client::TakeEvents() {
  std::vector<ReceivedEvent> out(std::make_move_iterator(events_.begin()),
                                 std::make_move_iterator(events_.end()));
  events_.clear();
  return out;
}

}  // namespace iqro::server
