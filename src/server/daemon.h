// The reoptd daemon: one poll(2) event loop serving the wire protocol
// (server/wire.h) over a Unix-domain or loopback TCP socket, backed by a
// ShardedService (server/sharded_service.h).
//
// ## Threading shape
//
// The event loop is ONE thread. It accepts connections, reassembles
// frames (FrameDecoder), and executes each request synchronously against
// the service — registration and flush block the loop on the owning shard
// (Call), mutation batches validate synchronously and apply
// asynchronously. Plan-change/quarantine events are appended to the
// owning connection's outbox *by the shard threads* (ConnSink locks the
// outbox, then pokes the loop's wakeup pipe); because a synchronous Flush
// runs its subscriber callbacks before returning, every event a flush
// produces is in the outbox BEFORE that flush's response frame — a client
// measuring flush-to-event latency sees events first, response second,
// in one socket read.
//
// ## Connection semantics
//
// * A frame that fails to decode (SerializeError) closes THAT connection
//   only; its queries survive with their event sinks detached (the
//   documented reconnect path: kSubscribeQuery re-attaches them).
//   Application-level rejections (ServiceError) are answered with kError
//   frames and the connection lives on.
// * A connection whose first byte is 'G' is treated as an HTTP scrape
//   ("GET /metrics"): it gets a one-shot HTTP/1.0 200 text/plain response
//   carrying ShardedService::MetricsText() and is closed — curl and a
//   Prometheus scraper work against the same port as the binary protocol.
// * Graceful shutdown (Stop(), SIGTERM via RequestShutdown(), or a
//   kShutdown frame): stop accepting, drain the shard queues, run one
//   final FlushAll (its events still reach connected subscribers), save
//   per-shard snapshots when a snapshot_dir is configured, flush every
//   outbox best-effort, exit the loop.
#ifndef IQRO_SERVER_DAEMON_H_
#define IQRO_SERVER_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "server/sharded_service.h"

namespace iqro::server {

struct DaemonOptions {
  /// Unix-domain socket path (unlinked+bound on Start). Empty: TCP mode.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (0 = ephemeral; read the bound port from
  /// port()). Used only when unix_path is empty.
  uint16_t tcp_port = 0;
  ShardedServiceOptions service;
  /// Start() warm-restarts the service from service.snapshot_dir before
  /// accepting connections (missing snapshots = cold start, not an error).
  bool load_snapshots = false;
  /// Milliseconds to spend draining outboxes at shutdown before closing
  /// connections anyway.
  int drain_timeout_ms = 2000;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, (optionally) loads snapshots, and starts the event
  /// loop thread. Throws std::runtime_error on bind/listen failure.
  void Start();

  /// Requests graceful shutdown and joins the loop thread.
  void Stop();

  /// Async-signal-safe shutdown request (a signal handler may call it: it
  /// only write(2)s the wakeup pipe).
  void RequestShutdown();

  /// Blocks until the event loop exits (shutdown request or fatal error).
  void Wait();

  /// The bound TCP port (TCP mode, after Start()).
  uint16_t port() const { return bound_port_; }

  /// Queries restored by the Start()-time snapshot load.
  size_t restored_queries() const { return restored_queries_; }

  /// The backing service — in-process callers (tests, benches) may drive
  /// it directly alongside socket clients.
  ShardedService& service() { return *service_; }

 private:
  struct Conn;
  class ConnSink;

  void EventLoop();
  void AcceptPending();
  /// Reads and processes everything available on a connection; returns
  /// false when the connection must close (EOF, decode error, HTTP done).
  bool HandleReadable(Conn* conn);
  void HandleRequest(Conn* conn, const std::string& payload);
  /// Writes as much buffered outbox as the socket accepts; false = dead.
  bool HandleWritable(Conn* conn);
  void CloseConn(int fd);
  void BeginShutdown();

  DaemonOptions options_;
  std::unique_ptr<ShardedService> service_;
  std::thread loop_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read, [1] write
  uint16_t bound_port_ = 0;
  size_t restored_queries_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
};

}  // namespace iqro::server

#endif  // IQRO_SERVER_DAEMON_H_
