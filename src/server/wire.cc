#include "server/wire.h"

#include <cstring>

namespace iqro::server {

namespace {

// Structural caps: a decoded message may never describe more state than a
// legitimate client could send. Violations are kBadSection — the length
// or count is inconsistent with the protocol, not merely truncated.
constexpr size_t kMaxString = 4096;
constexpr size_t kMaxTables = 512;
constexpr size_t kMaxColumns = 64;
constexpr size_t kMaxJoins = 512;
constexpr size_t kMaxLocals = 512;
constexpr size_t kMaxProjections = 512;
constexpr size_t kMaxAggregates = 64;
constexpr size_t kMaxMutations = 1u << 16;

[[noreturn]] void BadSection(const std::string& what) {
  throw SerializeError(SerializeError::Code::kBadSection, "wire: " + what);
}

void PutString(ByteWriter* w, const std::string& s) {
  if (s.size() > kMaxString) BadSection("string too long to encode");
  w->PutU32(static_cast<uint32_t>(s.size()));
  w->PutBytes(s.data(), s.size());
}

std::string GetString(ByteReader* r) {
  const uint32_t len = r->GetU32();
  if (len > kMaxString) BadSection("string length " + std::to_string(len));
  const unsigned char* p = r->GetBytes(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

uint32_t GetCount(ByteReader* r, size_t cap, const char* what) {
  const uint32_t n = r->GetU32();
  if (n > cap) BadSection(std::string(what) + " count " + std::to_string(n));
  return n;
}

uint8_t GetEnum(ByteReader* r, uint8_t max, const char* what) {
  const uint8_t v = r->GetU8();
  if (v > max) BadSection(std::string(what) + " value " + std::to_string(v));
  return v;
}

/// Message scaffolding: type byte + request id.
std::string Framed(MsgType type, uint64_t request_id, const std::string& body) {
  std::string payload;
  ByteWriter w(&payload);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(request_id);
  w.PutBytes(body.data(), body.size());
  return EncodeFrame(payload);
}

void CheckDrained(const ByteReader& r) {
  if (!r.AtEnd()) BadSection("trailing bytes after message body");
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kRegisterQuery: return "register_query";
    case MsgType::kReleaseQuery: return "release_query";
    case MsgType::kRecordStatBatch: return "record_stat_batch";
    case MsgType::kFlush: return "flush";
    case MsgType::kSnapshot: return "snapshot";
    case MsgType::kGetMetrics: return "get_metrics";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kSubscribeQuery: return "subscribe_query";
    case MsgType::kRegistered: return "registered";
    case MsgType::kOk: return "ok";
    case MsgType::kError: return "error";
    case MsgType::kMetricsText: return "metrics_text";
    case MsgType::kPlanChange: return "plan_change";
    case MsgType::kQuarantine: return "quarantine";
  }
  return "unknown";
}

const char* WireErrorCodeName(WireErrorCode c) {
  switch (c) {
    case WireErrorCode::kBadRequest: return "bad_request";
    case WireErrorCode::kUnknownWorld: return "unknown_world";
    case WireErrorCode::kUnknownQuery: return "unknown_query";
    case WireErrorCode::kSpecMismatch: return "spec_mismatch";
    case WireErrorCode::kUnknownOptions: return "unknown_options";
    case WireErrorCode::kOverloaded: return "overloaded";
    case WireErrorCode::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

// ---- framing -------------------------------------------------------------

std::string EncodeFrame(const std::string& payload) {
  if (payload.size() > kMaxFramePayload) BadSection("frame payload too large to encode");
  std::string out;
  ByteWriter w(&out);
  w.PutBytes(kWireMagic, sizeof(kWireMagic));
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU64(Fnv1a64(payload.data(), payload.size()));
  w.PutBytes(payload.data(), payload.size());
  return out;
}

void FrameDecoder::Feed(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

bool FrameDecoder::Next(std::string* payload) {
  const size_t avail = buf_.size() - pos_;
  // Fail fast on garbage: the magic is checked as soon as its bytes are
  // in, not only once a whole header arrived.
  const size_t magic_avail = avail < sizeof(kWireMagic) ? avail : sizeof(kWireMagic);
  if (std::memcmp(buf_.data() + pos_, kWireMagic, magic_avail) != 0) {
    // Distinguish a wrong protocol version ("IQR" + other digit) from a
    // stream that is not ours at all.
    if (magic_avail == sizeof(kWireMagic) && std::memcmp(buf_.data() + pos_, kWireMagic, 3) == 0) {
      throw SerializeError(SerializeError::Code::kBadVersion,
                           "wire: unsupported protocol version byte");
    }
    throw SerializeError(SerializeError::Code::kBadMagic, "wire: bad frame magic");
  }
  if (avail < kFrameHeaderSize) return false;
  ByteReader header(buf_.data() + pos_ + sizeof(kWireMagic), kFrameHeaderSize - sizeof(kWireMagic));
  const uint32_t len = header.GetU32();
  if (len > kMaxFramePayload) BadSection("frame payload length " + std::to_string(len));
  const uint64_t checksum = header.GetU64();
  if (avail < kFrameHeaderSize + len) return false;
  const char* body = buf_.data() + pos_ + kFrameHeaderSize;
  if (Fnv1a64(body, len) != checksum) {
    throw SerializeError(SerializeError::Code::kChecksum, "wire: frame checksum mismatch");
  }
  payload->assign(body, len);
  pos_ += kFrameHeaderSize + len;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer stays bounded by its unread tail.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

void FrameDecoder::Finish() const {
  if (buf_.size() != pos_) {
    throw SerializeError(SerializeError::Code::kTruncated,
                         "wire: stream ends inside a frame (" +
                             std::to_string(buf_.size() - pos_) + " buffered bytes)");
  }
}

std::vector<std::string> DecodeFrames(const std::string& image) {
  FrameDecoder dec;
  dec.Feed(image.data(), image.size());
  std::vector<std::string> out;
  std::string payload;
  while (dec.Next(&payload)) out.push_back(payload);
  dec.Finish();
  return out;
}

// ---- spec codecs ---------------------------------------------------------

void EncodeQuerySpec(ByteWriter* w, const QuerySpec& q) {
  PutString(w, q.name);
  w->PutU32(static_cast<uint32_t>(q.relations.size()));
  for (const QueryRelation& rel : q.relations) {
    w->PutI32(rel.table);
    PutString(w, rel.alias);
    w->PutU8(static_cast<uint8_t>(rel.window.kind));
    w->PutI64(rel.window.size);
    w->PutI32(rel.window.partition_col);
  }
  w->PutU32(static_cast<uint32_t>(q.joins.size()));
  for (const JoinPredicate& j : q.joins) {
    w->PutI32(j.left_rel);
    w->PutI32(j.left_col);
    w->PutI32(j.right_rel);
    w->PutI32(j.right_col);
    w->PutU8(static_cast<uint8_t>(j.op));
  }
  w->PutU32(static_cast<uint32_t>(q.locals.size()));
  for (const LocalPredicate& l : q.locals) {
    w->PutI32(l.rel);
    w->PutI32(l.col);
    w->PutU8(static_cast<uint8_t>(l.op));
    w->PutI64(l.value);
    w->PutI64(l.value2);
  }
  w->PutU32(static_cast<uint32_t>(q.projections.size()));
  for (const ColRef& c : q.projections) {
    w->PutI32(c.rel);
    w->PutI32(c.col);
  }
  w->PutU32(static_cast<uint32_t>(q.group_by.size()));
  for (const ColRef& c : q.group_by) {
    w->PutI32(c.rel);
    w->PutI32(c.col);
  }
  w->PutU32(static_cast<uint32_t>(q.aggregates.size()));
  for (const AggItem& a : q.aggregates) {
    w->PutU8(static_cast<uint8_t>(a.fn));
    w->PutI32(a.arg.rel);
    w->PutI32(a.arg.col);
  }
}

QuerySpec DecodeQuerySpec(ByteReader* r) {
  QuerySpec q;
  q.name = GetString(r);
  const uint32_t nrel = GetCount(r, static_cast<size_t>(kMaxRelations), "relations");
  q.relations.reserve(nrel);
  for (uint32_t i = 0; i < nrel; ++i) {
    QueryRelation rel;
    rel.table = r->GetI32();
    rel.alias = GetString(r);
    rel.window.kind = static_cast<WindowSpec::Kind>(
        GetEnum(r, static_cast<uint8_t>(WindowSpec::Kind::kTuples), "window kind"));
    rel.window.size = r->GetI64();
    rel.window.partition_col = r->GetI32();
    q.relations.push_back(std::move(rel));
  }
  const uint32_t njoin = GetCount(r, kMaxJoins, "joins");
  q.joins.reserve(njoin);
  for (uint32_t i = 0; i < njoin; ++i) {
    JoinPredicate j;
    j.left_rel = r->GetI32();
    j.left_col = r->GetI32();
    j.right_rel = r->GetI32();
    j.right_col = r->GetI32();
    j.op = static_cast<PredOp>(GetEnum(r, static_cast<uint8_t>(PredOp::kBetween), "join op"));
    q.joins.push_back(j);
  }
  const uint32_t nlocal = GetCount(r, kMaxLocals, "locals");
  q.locals.reserve(nlocal);
  for (uint32_t i = 0; i < nlocal; ++i) {
    LocalPredicate l;
    l.rel = r->GetI32();
    l.col = r->GetI32();
    l.op = static_cast<PredOp>(GetEnum(r, static_cast<uint8_t>(PredOp::kBetween), "local op"));
    l.value = r->GetI64();
    l.value2 = r->GetI64();
    q.locals.push_back(l);
  }
  const uint32_t nproj = GetCount(r, kMaxProjections, "projections");
  q.projections.reserve(nproj);
  for (uint32_t i = 0; i < nproj; ++i) {
    ColRef c;
    c.rel = r->GetI32();
    c.col = r->GetI32();
    q.projections.push_back(c);
  }
  const uint32_t ngroup = GetCount(r, kMaxProjections, "group_by");
  q.group_by.reserve(ngroup);
  for (uint32_t i = 0; i < ngroup; ++i) {
    ColRef c;
    c.rel = r->GetI32();
    c.col = r->GetI32();
    q.group_by.push_back(c);
  }
  const uint32_t nagg = GetCount(r, kMaxAggregates, "aggregates");
  q.aggregates.reserve(nagg);
  for (uint32_t i = 0; i < nagg; ++i) {
    AggItem a;
    a.fn = static_cast<AggFn>(GetEnum(r, static_cast<uint8_t>(AggFn::kCountDistinct), "agg fn"));
    a.arg.rel = r->GetI32();
    a.arg.col = r->GetI32();
    q.aggregates.push_back(a);
  }
  return q;
}

void EncodeCatalogSpec(ByteWriter* w, const testing::CatalogSpec& c) {
  w->PutU8(c.use_tpch ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(c.tables.size()));
  for (const testing::SyntheticTableSpec& t : c.tables) {
    PutString(w, t.name);
    w->PutF64(t.rows);
    w->PutF64(t.width);
    w->PutU32(static_cast<uint32_t>(t.cols.size()));
    for (const testing::SyntheticColumnSpec& col : t.cols) {
      w->PutI64(col.min);
      w->PutI64(col.max);
      w->PutF64(col.ndv);
    }
    w->PutU32(t.indexed_cols);
    w->PutI32(t.clustered_on);
    w->PutU64(t.hist_seed);
  }
}

testing::CatalogSpec DecodeCatalogSpec(ByteReader* r) {
  testing::CatalogSpec c;
  c.use_tpch = GetEnum(r, 1, "use_tpch flag") != 0;
  const uint32_t ntab = GetCount(r, kMaxTables, "tables");
  c.tables.reserve(ntab);
  for (uint32_t i = 0; i < ntab; ++i) {
    testing::SyntheticTableSpec t;
    t.name = GetString(r);
    t.rows = r->GetF64();
    t.width = r->GetF64();
    const uint32_t ncol = GetCount(r, kMaxColumns, "columns");
    t.cols.reserve(ncol);
    for (uint32_t ci = 0; ci < ncol; ++ci) {
      testing::SyntheticColumnSpec col;
      col.min = r->GetI64();
      col.max = r->GetI64();
      col.ndv = r->GetF64();
      t.cols.push_back(col);
    }
    t.indexed_cols = r->GetU32();
    t.clustered_on = r->GetI32();
    t.hist_seed = r->GetU64();
    c.tables.push_back(std::move(t));
  }
  return c;
}

void EncodeStatMutation(ByteWriter* w, const testing::StatMutation& m) {
  w->PutU8(static_cast<uint8_t>(m.kind));
  w->PutI32(m.target);
  w->PutU32(m.scope);
  w->PutF64(m.value);
}

testing::StatMutation DecodeStatMutation(ByteReader* r) {
  testing::StatMutation m;
  m.kind = static_cast<testing::StatMutation::Kind>(
      GetEnum(r, static_cast<uint8_t>(testing::StatMutation::Kind::kCardMultiplier),
              "mutation kind"));
  m.target = r->GetI32();
  m.scope = r->GetU32();
  m.value = r->GetF64();
  return m;
}

uint64_t WorldFingerprint(const testing::CatalogSpec& catalog, const QuerySpec& query) {
  std::string bytes;
  ByteWriter w(&bytes);
  EncodeCatalogSpec(&w, catalog);
  EncodeQuerySpec(&w, query);
  return Fnv1a64(bytes.data(), bytes.size());
}

// ---- message encoders ----------------------------------------------------

std::string EncodeRegisterQuery(uint64_t request_id, const RegisterQueryReq& req) {
  std::string body;
  ByteWriter w(&body);
  w.PutU64(req.world_key);
  w.PutU8(req.want_events ? 1 : 0);
  EncodeCatalogSpec(&w, req.catalog);
  EncodeQuerySpec(&w, req.query);
  PutString(&w, req.options_name);
  return Framed(MsgType::kRegisterQuery, request_id, body);
}

std::string EncodeReleaseQuery(uint64_t request_id, uint64_t query_id) {
  std::string body;
  ByteWriter w(&body);
  w.PutU64(query_id);
  return Framed(MsgType::kReleaseQuery, request_id, body);
}

std::string EncodeSubscribeQuery(uint64_t request_id, uint64_t query_id) {
  std::string body;
  ByteWriter w(&body);
  w.PutU64(query_id);
  return Framed(MsgType::kSubscribeQuery, request_id, body);
}

std::string EncodeRecordStatBatch(uint64_t request_id, const RecordStatBatchReq& req) {
  if (req.mutations.size() > kMaxMutations) BadSection("mutation batch too large to encode");
  std::string body;
  ByteWriter w(&body);
  w.PutU64(req.world_key);
  w.PutU32(static_cast<uint32_t>(req.mutations.size()));
  for (const testing::StatMutation& m : req.mutations) EncodeStatMutation(&w, m);
  return Framed(MsgType::kRecordStatBatch, request_id, body);
}

std::string EncodeFlush(uint64_t request_id, const FlushReq& req) {
  std::string body;
  ByteWriter w(&body);
  w.PutU8(req.all ? 1 : 0);
  w.PutU64(req.world_key);
  return Framed(MsgType::kFlush, request_id, body);
}

std::string EncodeSimpleRequest(MsgType type, uint64_t request_id) {
  return Framed(type, request_id, std::string());
}

std::string EncodeRegistered(uint64_t request_id, const RegisteredResp& resp) {
  std::string body;
  ByteWriter w(&body);
  w.PutU64(resp.query_id);
  w.PutU32(resp.shard);
  w.PutF64(resp.best_cost);
  return Framed(MsgType::kRegistered, request_id, body);
}

std::string EncodeOk(uint64_t request_id, uint64_t value) {
  std::string body;
  ByteWriter w(&body);
  w.PutU64(value);
  return Framed(MsgType::kOk, request_id, body);
}

std::string EncodeError(uint64_t request_id, WireErrorCode code, const std::string& message) {
  std::string body;
  ByteWriter w(&body);
  w.PutU8(static_cast<uint8_t>(code));
  PutString(&w, message.size() > kMaxString ? message.substr(0, kMaxString) : message);
  return Framed(MsgType::kError, request_id, body);
}

std::string EncodeMetricsText(uint64_t request_id, const std::string& text) {
  std::string body;
  ByteWriter w(&body);
  // Metrics text can exceed the generic string cap; it gets its own
  // length field bounded only by the frame cap.
  w.PutU32(static_cast<uint32_t>(text.size()));
  w.PutBytes(text.data(), text.size());
  return Framed(MsgType::kMetricsText, request_id, body);
}

std::string EncodePlanChangeEvent(const PlanChangeEventMsg& e) {
  std::string body;
  ByteWriter w(&body);
  w.PutU64(e.query_id);
  w.PutU64(e.world_key);
  w.PutU64(e.flush_epoch);
  w.PutF64(e.old_cost);
  w.PutF64(e.new_cost);
  w.PutI32(e.changed_operators);
  w.PutI32(e.total_operators);
  w.PutI32(e.join_order_prefix);
  w.PutI32(e.join_order_len);
  return Framed(MsgType::kPlanChange, 0, body);
}

std::string EncodeQuarantineEvent(const QuarantineEventMsg& e) {
  std::string body;
  ByteWriter w(&body);
  w.PutU64(e.query_id);
  w.PutU64(e.world_key);
  w.PutU8(e.reason);
  w.PutI32(e.strikes);
  w.PutU8(e.parked ? 1 : 0);
  PutString(&w, e.message);
  return Framed(MsgType::kQuarantine, 0, body);
}

// ---- message decoders ----------------------------------------------------

Request DecodeRequest(const std::string& payload) {
  ByteReader r(payload);
  Request req;
  const uint8_t type = r.GetU8();
  req.request_id = r.GetU64();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kRegisterQuery: {
      req.type = MsgType::kRegisterQuery;
      req.register_query.world_key = r.GetU64();
      req.register_query.want_events = GetEnum(&r, 1, "want_events flag") != 0;
      req.register_query.catalog = DecodeCatalogSpec(&r);
      req.register_query.query = DecodeQuerySpec(&r);
      req.register_query.options_name = GetString(&r);
      break;
    }
    case MsgType::kReleaseQuery:
      req.type = MsgType::kReleaseQuery;
      req.release_query.query_id = r.GetU64();
      break;
    case MsgType::kSubscribeQuery:
      req.type = MsgType::kSubscribeQuery;
      req.subscribe_query.query_id = r.GetU64();
      break;
    case MsgType::kRecordStatBatch: {
      req.type = MsgType::kRecordStatBatch;
      req.record_stat_batch.world_key = r.GetU64();
      const uint32_t n = GetCount(&r, kMaxMutations, "mutations");
      req.record_stat_batch.mutations.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        req.record_stat_batch.mutations.push_back(DecodeStatMutation(&r));
      }
      break;
    }
    case MsgType::kFlush:
      req.type = MsgType::kFlush;
      req.flush.all = GetEnum(&r, 1, "flush-all flag") != 0;
      req.flush.world_key = r.GetU64();
      break;
    case MsgType::kSnapshot:
    case MsgType::kGetMetrics:
    case MsgType::kShutdown:
      req.type = static_cast<MsgType>(type);
      break;
    default:
      BadSection("unknown request type " + std::to_string(type));
  }
  CheckDrained(r);
  return req;
}

ServerMessage DecodeServerMessage(const std::string& payload) {
  ByteReader r(payload);
  ServerMessage msg;
  const uint8_t type = r.GetU8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kRegistered:
      msg.type = MsgType::kRegistered;
      msg.request_id = r.GetU64();
      msg.registered.query_id = r.GetU64();
      msg.registered.shard = r.GetU32();
      msg.registered.best_cost = r.GetF64();
      break;
    case MsgType::kOk:
      msg.type = MsgType::kOk;
      msg.request_id = r.GetU64();
      msg.ok.value = r.GetU64();
      break;
    case MsgType::kError: {
      msg.type = MsgType::kError;
      msg.request_id = r.GetU64();
      const uint8_t code =
          GetEnum(&r, static_cast<uint8_t>(WireErrorCode::kShuttingDown), "error code");
      if (code == 0) BadSection("error code 0");
      msg.error.code = static_cast<WireErrorCode>(code);
      msg.error.message = GetString(&r);
      break;
    }
    case MsgType::kMetricsText: {
      msg.type = MsgType::kMetricsText;
      msg.request_id = r.GetU64();
      const uint32_t len = r.GetU32();
      if (len > kMaxFramePayload) BadSection("metrics text length");
      const unsigned char* p = r.GetBytes(len);
      msg.metrics.text.assign(reinterpret_cast<const char*>(p), len);
      break;
    }
    case MsgType::kPlanChange:
      msg.type = MsgType::kPlanChange;
      msg.request_id = r.GetU64();
      msg.plan_change.query_id = r.GetU64();
      msg.plan_change.world_key = r.GetU64();
      msg.plan_change.flush_epoch = r.GetU64();
      msg.plan_change.old_cost = r.GetF64();
      msg.plan_change.new_cost = r.GetF64();
      msg.plan_change.changed_operators = r.GetI32();
      msg.plan_change.total_operators = r.GetI32();
      msg.plan_change.join_order_prefix = r.GetI32();
      msg.plan_change.join_order_len = r.GetI32();
      break;
    case MsgType::kQuarantine:
      msg.type = MsgType::kQuarantine;
      msg.request_id = r.GetU64();
      msg.quarantine.query_id = r.GetU64();
      msg.quarantine.world_key = r.GetU64();
      msg.quarantine.reason = r.GetU8();
      msg.quarantine.strikes = r.GetI32();
      msg.quarantine.parked = GetEnum(&r, 1, "parked flag") != 0;
      msg.quarantine.message = GetString(&r);
      break;
    default:
      BadSection("unknown server message type " + std::to_string(type));
  }
  CheckDrained(r);
  return msg;
}

}  // namespace iqro::server
