#include "server/daemon.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "server/wire.h"

namespace iqro::server {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string HttpMetricsResponse(const std::string& body) {
  std::string out = "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

/// Appends event frames to the connection's outbox from shard threads.
/// Owned by the Conn; SetSink(nullptr) runs synchronously on the shard
/// thread before the Conn dies, so the sink can never be called after
/// destruction.
class Daemon::ConnSink final : public EventSink {
 public:
  ConnSink(Daemon* daemon, Conn* conn) : daemon_(daemon), conn_(conn) {}
  void OnServerEvent(const ServerEvent& event) override;

 private:
  Daemon* daemon_;
  Conn* conn_;
};

struct Daemon::Conn {
  int fd = -1;
  FrameDecoder decoder;
  /// First-byte protocol sniff: 'G' = HTTP scrape, anything else = frames.
  bool sniffed = false;
  bool http = false;
  std::string http_buf;
  /// True once the connection should close as soon as the outbox drains.
  bool close_after_write = false;
  /// Bytes queued for the socket. Shard threads append event frames via
  /// the sink; the loop thread appends responses and drains to the fd.
  std::mutex outbox_mu;
  std::string outbox;
  /// Queries whose events are currently routed to this connection.
  std::vector<uint64_t> queries;
  std::unique_ptr<ConnSink> sink;
};

void Daemon::ConnSink::OnServerEvent(const ServerEvent& event) {
  std::string frame;
  if (event.kind == ServerEvent::Kind::kPlanChange) {
    PlanChangeEventMsg m;
    m.query_id = event.query_id;
    m.world_key = event.world_key;
    m.flush_epoch = event.flush_epoch;
    m.old_cost = event.old_cost;
    m.new_cost = event.new_cost;
    m.changed_operators = event.changed_operators;
    m.total_operators = event.total_operators;
    m.join_order_prefix = event.join_order_prefix;
    m.join_order_len = event.join_order_len;
    frame = EncodePlanChangeEvent(m);
  } else {
    QuarantineEventMsg m;
    m.query_id = event.query_id;
    m.world_key = event.world_key;
    m.reason = event.reason;
    m.strikes = event.strikes;
    m.parked = event.parked;
    m.message = event.message;
    frame = EncodeQuarantineEvent(m);
  }
  {
    std::lock_guard<std::mutex> lk(conn_->outbox_mu);
    conn_->outbox += frame;
  }
  // Poke the poll loop so it arms POLLOUT. A full pipe means a wakeup is
  // already pending — dropping the byte is fine.
  const char b = 'e';
  [[maybe_unused]] ssize_t n = write(daemon_->wake_fds_[1], &b, 1);
}

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  service_ = std::make_unique<ShardedService>(options_.service);
}

Daemon::~Daemon() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

void Daemon::Start() {
  if (pipe(wake_fds_) != 0) {
    throw std::runtime_error("reoptd: pipe() failed: " + std::string(strerror(errno)));
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  if (!options_.unix_path.empty()) {
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("reoptd: socket() failed");
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("reoptd: unix socket path too long: " + options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    unlink(options_.unix_path.c_str());
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error("reoptd: bind(" + options_.unix_path +
                               ") failed: " + std::string(strerror(errno)));
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("reoptd: socket() failed");
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error("reoptd: bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
                               ") failed: " + std::string(strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
  }
  if (listen(listen_fd_, 128) != 0) {
    throw std::runtime_error("reoptd: listen() failed: " + std::string(strerror(errno)));
  }
  SetNonBlocking(listen_fd_);

  if (options_.load_snapshots && !options_.service.snapshot_dir.empty()) {
    restored_queries_ = service_->LoadSnapshots();
  }

  running_.store(true);
  loop_ = std::thread([this] { EventLoop(); });
}

void Daemon::RequestShutdown() {
  stop_requested_.store(true, std::memory_order_relaxed);
  if (wake_fds_[1] >= 0) {
    const char b = 'q';
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &b, 1);
  }
}

void Daemon::Stop() {
  if (!loop_.joinable()) return;
  RequestShutdown();
  loop_.join();
}

void Daemon::Wait() {
  if (loop_.joinable()) loop_.join();
}

void Daemon::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    SetNonBlocking(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->sink = std::make_unique<ConnSink>(this, conn.get());
    conns_.emplace(fd, std::move(conn));
  }
}

void Daemon::HandleRequest(Conn* conn, const std::string& payload) {
  const Request req = DecodeRequest(payload);  // SerializeError -> caller closes
  std::string response;
  try {
    switch (req.type) {
      case MsgType::kRegisterQuery: {
        if (stop_requested_.load(std::memory_order_relaxed)) {
          throw ServiceError(WireErrorCode::kShuttingDown, "daemon is draining");
        }
        const RegisterQueryReq& r = req.register_query;
        EventSink* sink = r.want_events ? conn->sink.get() : nullptr;
        const ShardedService::RegisterResult res =
            service_->RegisterQuery(r.world_key, r.catalog, r.query, r.options_name, sink);
        if (sink != nullptr) conn->queries.push_back(res.query_id);
        RegisteredResp resp;
        resp.query_id = res.query_id;
        resp.shard = res.shard;
        resp.best_cost = res.best_cost;
        response = EncodeRegistered(req.request_id, resp);
        break;
      }
      case MsgType::kReleaseQuery: {
        const uint64_t id = req.release_query.query_id;
        if (!service_->ReleaseQuery(id)) {
          throw ServiceError(WireErrorCode::kUnknownQuery, "unknown query " + std::to_string(id));
        }
        std::erase(conn->queries, id);
        response = EncodeOk(req.request_id, 0);
        break;
      }
      case MsgType::kSubscribeQuery: {
        const uint64_t id = req.subscribe_query.query_id;
        if (!service_->SetSink(id, conn->sink.get())) {
          throw ServiceError(WireErrorCode::kUnknownQuery, "unknown query " + std::to_string(id));
        }
        conn->queries.push_back(id);
        response = EncodeOk(req.request_id, 0);
        break;
      }
      case MsgType::kRecordStatBatch: {
        const size_t accepted =
            service_->RecordStatBatch(req.record_stat_batch.world_key,
                                      req.record_stat_batch.mutations);
        response = EncodeOk(req.request_id, accepted);
        break;
      }
      case MsgType::kFlush: {
        const size_t changes =
            req.flush.all ? service_->FlushAll() : service_->Flush(req.flush.world_key);
        response = EncodeOk(req.request_id, changes);
        break;
      }
      case MsgType::kSnapshot:
        response = EncodeOk(req.request_id, service_->SaveSnapshots());
        break;
      case MsgType::kGetMetrics:
        response = EncodeMetricsText(req.request_id, service_->MetricsText());
        break;
      case MsgType::kShutdown:
        response = EncodeOk(req.request_id, 0);
        stop_requested_.store(true, std::memory_order_relaxed);
        break;
      default:
        throw ServiceError(WireErrorCode::kBadRequest,
                           std::string("unexpected message type ") + MsgTypeName(req.type));
    }
  } catch (const ServiceError& e) {
    response = EncodeError(req.request_id, e.code, e.what());
  }
  std::lock_guard<std::mutex> lk(conn->outbox_mu);
  conn->outbox += response;
}

bool Daemon::HandleReadable(Conn* conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (!conn->sniffed) {
      conn->sniffed = true;
      conn->http = buf[0] == 'G';
    }
    if (conn->http) {
      conn->http_buf.append(buf, static_cast<size_t>(n));
      if (conn->http_buf.find("\r\n\r\n") != std::string::npos || conn->http_buf.size() > 8192) {
        std::lock_guard<std::mutex> lk(conn->outbox_mu);
        conn->outbox += HttpMetricsResponse(service_->MetricsText());
        conn->close_after_write = true;
      }
      continue;
    }
    try {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      std::string payload;
      while (conn->decoder.Next(&payload)) HandleRequest(conn, payload);
    } catch (const SerializeError&) {
      // Malformed frame: this connection dies; its peers and its queries
      // (sinks detached in CloseConn) are untouched.
      return false;
    }
  }
  return true;
}

bool Daemon::HandleWritable(Conn* conn) {
  std::string pending;
  {
    std::lock_guard<std::mutex> lk(conn->outbox_mu);
    pending.swap(conn->outbox);
  }
  size_t off = 0;
  while (off < pending.size()) {
    const ssize_t n = write(conn->fd, pending.data() + off, pending.size() - off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  if (off < pending.size()) {
    // Put the unwritten tail back in front of anything a shard thread
    // appended meanwhile.
    std::lock_guard<std::mutex> lk(conn->outbox_mu);
    conn->outbox.insert(0, pending, off, pending.size() - off);
  } else if (conn->close_after_write) {
    std::lock_guard<std::mutex> lk(conn->outbox_mu);
    if (conn->outbox.empty()) return false;
  }
  return true;
}

void Daemon::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // Detach synchronously BEFORE the Conn (and its sink) is destroyed: after
  // SetSink returns, no shard thread can be inside OnServerEvent.
  for (const uint64_t id : it->second->queries) service_->SetSink(id, nullptr);
  close(fd);
  conns_.erase(it);
}

void Daemon::BeginShutdown() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  service_->Drain();
  service_->FlushAll();  // final events still reach connected subscribers
  if (!options_.service.snapshot_dir.empty()) service_->SaveSnapshots();
}

void Daemon::EventLoop() {
  bool shutting_down = false;
  std::chrono::steady_clock::time_point drain_deadline;
  std::vector<pollfd> fds;
  std::vector<int> dead;
  for (;;) {
    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lk(conn->outbox_mu);
        if (!conn->outbox.empty()) events |= POLLOUT;
      }
      fds.push_back({fd, events, 0});
    }
    poll(fds.data(), fds.size(), shutting_down ? 20 : 200);

    if (fds[0].revents & POLLIN) {
      char drainbuf[256];
      while (read(wake_fds_[0], drainbuf, sizeof(drainbuf)) > 0) {
      }
    }

    if (!shutting_down && stop_requested_.load(std::memory_order_relaxed)) {
      shutting_down = true;
      BeginShutdown();
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.drain_timeout_ms);
    }

    size_t idx = 1;
    if (listen_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) AcceptPending();
      ++idx;
    }
    dead.clear();
    for (; idx < fds.size(); ++idx) {
      auto it = conns_.find(fds[idx].fd);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      bool alive = true;
      if (fds[idx].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Half-close still lets us flush the outbox on POLLHUP-free errors;
        // keep it simple: flush what we can, then drop.
        alive = HandleWritable(conn) && !(fds[idx].revents & (POLLERR | POLLNVAL));
        if (fds[idx].revents & POLLHUP) alive = false;
      } else {
        if (alive && (fds[idx].revents & POLLIN)) alive = HandleReadable(conn);
        // Always try to drain the outbox: responses generated this
        // iteration should not wait for the next poll round.
        if (alive) alive = HandleWritable(conn);
      }
      if (!alive) dead.push_back(fds[idx].fd);
    }
    for (const int fd : dead) CloseConn(fd);

    if (shutting_down) {
      bool outboxes_empty = true;
      for (auto& [fd, conn] : conns_) {
        std::lock_guard<std::mutex> lk(conn->outbox_mu);
        if (!conn->outbox.empty()) outboxes_empty = false;
      }
      if (outboxes_empty || std::chrono::steady_clock::now() >= drain_deadline) break;
    }
  }
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
  if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
  running_.store(false);
}

}  // namespace iqro::server
