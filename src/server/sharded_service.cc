#include "server/sharded_service.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/declarative_optimizer.h"
#include "cost/cost_model.h"
#include "service/flush_policy.h"
#include "service/metrics_exporter.h"
#include "service/plan_subscriber.h"
#include "service/reopt_session.h"
#include "service/snapshot.h"
#include "stats/summary.h"
#include "testing/differential.h"

namespace iqro::server {

namespace {

/// Manifest section type: one serialized world record (specs + query
/// configurations) per section.
constexpr uint32_t kManifestWorldSection = 1;

const OptimizerOptions* FindOptionSet(const std::string& name) {
  for (const auto& [set_name, options] : testing::ScenarioOptionSets()) {
    if (set_name == name) return &options;
  }
  return nullptr;
}

/// Structural validation of a registration's specs — the wire codec caps
/// sizes, but cross-references (relation slots, table ids, column ranges)
/// are the service's to check before a world is built from them.
void ValidateSpecs(const testing::CatalogSpec& catalog, const QuerySpec& query) {
  const int nrel = query.num_relations();
  if (nrel < 1 || nrel > kMaxRelations) {
    throw ServiceError(WireErrorCode::kBadRequest, "query must have 1.." +
                                                       std::to_string(kMaxRelations) +
                                                       " relations, has " + std::to_string(nrel));
  }
  if (!catalog.use_tpch && catalog.tables.empty()) {
    throw ServiceError(WireErrorCode::kBadRequest, "synthetic catalog has no tables");
  }
  for (const QueryRelation& rel : query.relations) {
    if (!catalog.use_tpch &&
        (rel.table < 0 || rel.table >= static_cast<int>(catalog.tables.size()))) {
      throw ServiceError(WireErrorCode::kBadRequest,
                         "relation references table " + std::to_string(rel.table) + " of " +
                             std::to_string(catalog.tables.size()));
    }
  }
  auto check_rel = [nrel](int rel, const char* what) {
    if (rel < 0 || rel >= nrel) {
      throw ServiceError(WireErrorCode::kBadRequest,
                         std::string(what) + " references relation " + std::to_string(rel));
    }
  };
  for (const JoinPredicate& j : query.joins) {
    check_rel(j.left_rel, "join");
    check_rel(j.right_rel, "join");
  }
  for (const LocalPredicate& l : query.locals) check_rel(l.rel, "local predicate");
  for (const ColRef& c : query.projections) check_rel(c.rel, "projection");
  for (const ColRef& c : query.group_by) check_rel(c.rel, "group-by");
}

/// A mutation the registry would reject or that targets state outside the
/// world is dropped at the door — a hostile client must not be able to
/// crash a shard or poison a world it shares.
bool ValidMutation(const testing::StatMutation& m, int num_relations, int num_edges) {
  if (!std::isfinite(m.value) || m.value <= 0) return false;
  const RelSet all = num_relations >= 32 ? ~RelSet{0} : (RelSet{1} << num_relations) - 1;
  switch (m.kind) {
    case testing::StatMutation::Kind::kBaseRows:
    case testing::StatMutation::Kind::kLocalSelectivity:
    case testing::StatMutation::Kind::kRowWidth:
    case testing::StatMutation::Kind::kScanCost:
      return m.target >= 0 && m.target < num_relations;
    case testing::StatMutation::Kind::kJoinSelectivity:
      return m.target >= 0 && m.target < num_edges;
    case testing::StatMutation::Kind::kCardMultiplier:
      return m.scope != 0 && (m.scope & ~all) == 0;
  }
  return false;
}

}  // namespace

/// Relays one session's notifications for one query to its current
/// EventSink (shard-thread calls only; the sink pointer is owned by the
/// GroupQuery and mutated only via shard commands, so no lock is needed).
struct ShardedService::GroupQuery final : public PlanSubscriber {
  uint64_t id = 0;
  uint64_t world_key = 0;
  std::string options_name;
  std::unique_ptr<SummaryCalculator> summaries;
  std::unique_ptr<CostModel> cost_model;
  std::unique_ptr<DeclarativeOptimizer> optimizer;
  EventSink* sink = nullptr;
  /// Declared after the optimizer: released (unregistering from the
  /// session) before the optimizer dies.
  QueryHandle handle;

  void OnPlanChange(const PlanChangeEvent& event) override {
    if (sink == nullptr) return;
    ServerEvent e;
    e.kind = ServerEvent::Kind::kPlanChange;
    e.query_id = id;
    e.world_key = world_key;
    e.flush_epoch = event.flush_epoch;
    e.old_cost = event.old_cost;
    e.new_cost = event.new_cost;
    e.changed_operators = event.diff.changed_operators;
    e.total_operators = event.diff.total_operators;
    e.join_order_prefix = event.diff.join_order_prefix;
    e.join_order_len = event.diff.join_order_len;
    sink->OnServerEvent(e);
  }

  void OnQueryQuarantined(const QueryQuarantinedEvent& event) override {
    if (sink == nullptr) return;
    ServerEvent e;
    e.kind = ServerEvent::Kind::kQuarantine;
    e.query_id = id;
    e.world_key = world_key;
    e.flush_epoch = event.flush_epoch;
    e.reason = static_cast<uint8_t>(event.reason);
    e.strikes = event.strikes;
    e.parked = event.parked;
    e.message = event.message;
    sink->OnServerEvent(e);
  }
};

/// One world: the spec-owned scenario (the enumerator borrows its query),
/// the wired optimization world, the session, and the registered
/// configurations. Destruction order matters: queries release their
/// handles first, then the session unsubscribes from the registry, then
/// the world dies.
struct ShardedService::Group {
  uint64_t world_key = 0;
  uint64_t fingerprint = 0;
  RelSet scope_mask = 0;
  /// Owns catalog + query for the world's lifetime (BuildScenarioWorld's
  /// enumerator keeps a pointer to scenario.query).
  testing::Scenario scenario;
  std::unique_ptr<testing::ScenarioWorld> world;
  std::unique_ptr<ReoptSession> session;
  std::vector<std::unique_ptr<GroupQuery>> queries;  // registration order
};

struct ShardedService::Shard {
  uint32_t index = 0;
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  bool stop = false;
  /// Shard-thread-only: never touched off-thread.
  std::unordered_map<uint64_t, std::unique_ptr<Group>> groups;
};

ShardedService::ShardedService(ShardedServiceOptions options) : options_(std::move(options)) {
  if (options_.num_shards < 1) options_.num_shards = 1;
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = static_cast<uint32_t>(i);
    Shard* raw = shard.get();
    shard->thread = std::thread([this, raw] { ShardLoop(raw); });
    shards_.push_back(std::move(shard));
  }
}

ShardedService::~ShardedService() {
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lk(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Groups die on this thread after every shard thread joined — session
  // destructors unsubscribe from their registries with no flush possible.
}

uint32_t ShardedService::ShardOfWorld(uint64_t world_key, RelSet scope_mask, int num_shards) {
  std::string bytes;
  ByteWriter w(&bytes);
  w.PutU64(world_key);
  w.PutU32(scope_mask);
  const uint64_t h = Fnv1a64(bytes.data(), bytes.size());
  return static_cast<uint32_t>(h % static_cast<uint64_t>(num_shards < 1 ? 1 : num_shards));
}

void ShardedService::ShardLoop(Shard* shard) {
  const bool poll_idle = options_.flush_deadline.count() > 0 && options_.auto_flush_count <= 0;
  for (;;) {
    std::function<void()> cmd;
    {
      std::unique_lock<std::mutex> lk(shard->mu);
      if (poll_idle) {
        shard->cv.wait_for(lk, options_.poll_granularity,
                           [shard] { return shard->stop || !shard->queue.empty(); });
      } else {
        shard->cv.wait(lk, [shard] { return shard->stop || !shard->queue.empty(); });
      }
      if (!shard->queue.empty()) {
        cmd = std::move(shard->queue.front());
        shard->queue.pop_front();
      } else if (shard->stop) {
        return;
      }
    }
    if (cmd) {
      cmd();
    } else if (poll_idle) {
      // Idle tick: let deadline policies and quarantine backoffs fire.
      for (auto& [key, group] : shard->groups) group->session->Poll();
    }
  }
}

void ShardedService::Post(uint32_t shard, std::function<void()> fn) {
  Shard* s = shards_[shard].get();
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->queue.push_back(std::move(fn));
  }
  s->cv.notify_all();
}

template <typename F>
auto ShardedService::Call(uint32_t shard, F&& fn) -> decltype(fn()) {
  using R = decltype(fn());
  std::promise<R> promise;
  std::future<R> future = promise.get_future();
  Post(shard, [&promise, fn = std::forward<F>(fn)]() mutable {
    try {
      if constexpr (std::is_void_v<R>) {
        fn();
        promise.set_value();
      } else {
        promise.set_value(fn());
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  });
  return future.get();
}

ShardedService::RegisterResult ShardedService::RegisterOnShard(
    uint32_t shard_idx, uint64_t world_key, const testing::CatalogSpec& catalog,
    const QuerySpec& query, const std::string& options_name, EventSink* sink) {
  const OptimizerOptions* options = FindOptionSet(options_name);
  // Checked by RegisterQuery already; re-checked here because
  // LoadSnapshots funnels through this path too.
  if (options == nullptr) {
    throw ServiceError(WireErrorCode::kUnknownOptions, "unknown option set " + options_name);
  }
  Shard* shard = shards_[shard_idx].get();
  const uint64_t fingerprint = WorldFingerprint(catalog, query);
  Group* group = nullptr;
  auto it = shard->groups.find(world_key);
  if (it != shard->groups.end()) {
    group = it->second.get();
    if (group->fingerprint != fingerprint) {
      throw ServiceError(WireErrorCode::kSpecMismatch,
                         "world key reused with different catalog/query specs");
    }
  } else {
    auto fresh = std::make_unique<Group>();
    fresh->world_key = world_key;
    fresh->fingerprint = fingerprint;
    fresh->scope_mask = query.AllRelations();
    fresh->scenario.catalog = catalog;
    fresh->scenario.query = query;
    fresh->world = testing::BuildScenarioWorld(fresh->scenario);
    ReoptSessionOptions so;
    so.per_query_work_budget = options_.per_query_work_budget;
    so.memo_byte_budget = options_.memo_byte_budget;
    if (options_.auto_flush_count > 0) {
      so.flush_policy = std::make_shared<CountPolicy>(options_.auto_flush_count);
    } else if (options_.flush_deadline.count() > 0) {
      so.flush_policy = std::make_shared<DeadlinePolicy>(options_.flush_deadline);
    }
    fresh->session = std::make_unique<ReoptSession>(&fresh->world->registry, so);
    group = fresh.get();
    shard->groups.emplace(world_key, std::move(fresh));
  }

  auto q = std::make_unique<GroupQuery>();
  q->world_key = world_key;
  q->options_name = options_name;
  q->summaries = std::make_unique<SummaryCalculator>(&group->world->registry);
  q->cost_model = std::make_unique<CostModel>(q->summaries.get());
  q->optimizer = std::make_unique<DeclarativeOptimizer>(
      group->world->enumerator.get(), q->cost_model.get(), &group->world->registry, *options);
  q->optimizer->Optimize();
  q->sink = sink;
  RegisterResult result;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    q->id = next_query_id_++;
    queries_[q->id] = QueryLoc{shard_idx, world_key};
    // Validation dims come from the BUILT world's registry, not the spec:
    // the join graph may merge parallel join predicates into one edge.
    worlds_[world_key] = WorldInfo{shard_idx, group->world->registry.num_relations(),
                                   group->world->registry.num_edges()};
  }
  try {
    q->handle = group->session->Register(*q->optimizer, q.get());
  } catch (const SessionOverloaded& e) {
    std::lock_guard<std::mutex> lk(index_mu_);
    queries_.erase(q->id);
    throw ServiceError(WireErrorCode::kOverloaded, e.what());
  }
  result.query_id = q->id;
  result.shard = shard_idx;
  result.best_cost = q->optimizer->BestCost();
  group->queries.push_back(std::move(q));
  return result;
}

ShardedService::RegisterResult ShardedService::RegisterQuery(uint64_t world_key,
                                                             const testing::CatalogSpec& catalog,
                                                             const QuerySpec& query,
                                                             const std::string& options_name,
                                                             EventSink* sink) {
  if (FindOptionSet(options_name) == nullptr) {
    throw ServiceError(WireErrorCode::kUnknownOptions, "unknown option set " + options_name);
  }
  ValidateSpecs(catalog, query);
  uint32_t shard;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = worlds_.find(world_key);
    shard = it != worlds_.end()
                ? it->second.shard
                : ShardOfWorld(world_key, query.AllRelations(), num_shards());
  }
  return Call(shard, [&] {
    return RegisterOnShard(shard, world_key, catalog, query, options_name, sink);
  });
}

bool ShardedService::ReleaseQuery(uint64_t query_id) {
  QueryLoc loc;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) return false;
    loc = it->second;
    queries_.erase(it);
  }
  return Call(loc.shard, [this, loc, query_id] {
    Shard* shard = shards_[loc.shard].get();
    auto git = shard->groups.find(loc.world_key);
    if (git == shard->groups.end()) return false;
    auto& queries = git->second->queries;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i]->id == query_id) {
        queries.erase(queries.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  });
}

bool ShardedService::SetSink(uint64_t query_id, EventSink* sink) {
  QueryLoc loc;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) return false;
    loc = it->second;
  }
  return Call(loc.shard, [this, loc, query_id, sink] {
    Shard* shard = shards_[loc.shard].get();
    auto git = shard->groups.find(loc.world_key);
    if (git == shard->groups.end()) return false;
    for (auto& q : git->second->queries) {
      if (q->id == query_id) {
        q->sink = sink;
        return true;
      }
    }
    return false;
  });
}

size_t ShardedService::RecordStatBatch(uint64_t world_key,
                                       const std::vector<testing::StatMutation>& mutations) {
  WorldInfo info;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = worlds_.find(world_key);
    if (it == worlds_.end()) {
      throw ServiceError(WireErrorCode::kUnknownWorld,
                         "no world registered under key " + std::to_string(world_key));
    }
    info = it->second;
  }
  std::vector<testing::StatMutation> accepted;
  accepted.reserve(mutations.size());
  size_t rejected = 0;
  for (const testing::StatMutation& m : mutations) {
    if (ValidMutation(m, info.num_relations, info.num_edges)) {
      accepted.push_back(m);
    } else {
      ++rejected;
    }
  }
  if (rejected > 0) {
    std::lock_guard<std::mutex> lk(index_mu_);
    mutations_rejected_ += static_cast<int64_t>(rejected);
  }
  const size_t count = accepted.size();
  if (count == 0) return 0;
  Post(info.shard, [this, shard_idx = info.shard, world_key,
                    muts = std::move(accepted)] {
    Shard* shard = shards_[shard_idx].get();
    auto it = shard->groups.find(world_key);
    if (it == shard->groups.end()) return;  // released between post and run
    for (const testing::StatMutation& m : muts) {
      testing::ApplyMutation(&it->second->world->registry, m);
    }
  });
  return count;
}

size_t ShardedService::Flush(uint64_t world_key) {
  uint32_t shard_idx;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = worlds_.find(world_key);
    if (it == worlds_.end()) {
      throw ServiceError(WireErrorCode::kUnknownWorld,
                         "no world registered under key " + std::to_string(world_key));
    }
    shard_idx = it->second.shard;
  }
  return Call(shard_idx, [this, shard_idx, world_key]() -> size_t {
    Shard* shard = shards_[shard_idx].get();
    auto it = shard->groups.find(world_key);
    if (it == shard->groups.end()) return 0;
    return it->second->session->Flush();
  });
}

size_t ShardedService::FlushAll() {
  // Post to every shard first, then collect — shards flush in parallel.
  std::vector<std::future<size_t>> futures;
  futures.reserve(shards_.size());
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    auto promise = std::make_shared<std::promise<size_t>>();
    futures.push_back(promise->get_future());
    Post(i, [this, i, promise] {
      size_t total = 0;
      for (auto& [key, group] : shards_[i]->groups) total += group->session->Flush();
      promise->set_value(total);
    });
  }
  size_t total = 0;
  for (auto& f : futures) total += f.get();
  return total;
}

void ShardedService::Drain() {
  std::vector<std::future<void>> futures;
  futures.reserve(shards_.size());
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    auto promise = std::make_shared<std::promise<void>>();
    futures.push_back(promise->get_future());
    Post(i, [promise] { promise->set_value(); });
  }
  for (auto& f : futures) f.get();
}

std::string ShardedService::QueryCanonicalDump(uint64_t query_id) {
  QueryLoc loc;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      throw ServiceError(WireErrorCode::kUnknownQuery, "unknown query " + std::to_string(query_id));
    }
    loc = it->second;
  }
  return Call(loc.shard, [this, loc, query_id]() -> std::string {
    Shard* shard = shards_[loc.shard].get();
    auto git = shard->groups.find(loc.world_key);
    if (git == shard->groups.end()) {
      throw ServiceError(WireErrorCode::kUnknownQuery, "query's world is gone");
    }
    for (auto& q : git->second->queries) {
      if (q->id == query_id) return q->optimizer->CanonicalDumpState();
    }
    throw ServiceError(WireErrorCode::kUnknownQuery, "unknown query " + std::to_string(query_id));
  });
}

double ShardedService::QueryBestCost(uint64_t query_id) {
  QueryLoc loc;
  {
    std::lock_guard<std::mutex> lk(index_mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      throw ServiceError(WireErrorCode::kUnknownQuery, "unknown query " + std::to_string(query_id));
    }
    loc = it->second;
  }
  return Call(loc.shard, [this, loc, query_id]() -> double {
    Shard* shard = shards_[loc.shard].get();
    auto git = shard->groups.find(loc.world_key);
    if (git == shard->groups.end()) {
      throw ServiceError(WireErrorCode::kUnknownQuery, "query's world is gone");
    }
    for (auto& q : git->second->queries) {
      if (q->id == query_id) return q->optimizer->BestCost();
    }
    throw ServiceError(WireErrorCode::kUnknownQuery, "unknown query " + std::to_string(query_id));
  });
}

namespace {

std::string SnapshotPath(const std::string& dir, uint32_t shard, uint64_t world_key) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/shard%u_world_%016llx.snap", shard,
                static_cast<unsigned long long>(world_key));
  return dir + buf;
}

std::string ManifestPath(const std::string& dir, uint32_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/shard%u.manifest", shard);
  return dir + buf;
}

}  // namespace

size_t ShardedService::SaveSnapshots() {
  if (options_.snapshot_dir.empty()) {
    throw ServiceError(WireErrorCode::kBadRequest, "service has no snapshot_dir configured");
  }
  size_t total = 0;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    total += Call(i, [this, i]() -> size_t {
      Shard* shard = shards_[i].get();
      service::SnapshotWriter manifest;
      size_t queries = 0;
      for (auto& [key, group] : shard->groups) {
        std::string record;
        ByteWriter w(&record);
        w.PutU64(group->world_key);
        w.PutU64(group->fingerprint);
        w.PutU32(group->scope_mask);
        EncodeCatalogSpec(&w, group->scenario.catalog);
        EncodeQuerySpec(&w, group->scenario.query);
        w.PutU32(static_cast<uint32_t>(group->queries.size()));
        for (const auto& q : group->queries) {
          w.PutU64(q->id);
          std::string name;
          ByteWriter nw(&name);
          nw.PutU32(static_cast<uint32_t>(q->options_name.size()));
          nw.PutBytes(q->options_name.data(), q->options_name.size());
          w.PutBytes(name.data(), name.size());
        }
        manifest.AddSection(kManifestWorldSection, std::move(record));
        group->session->SaveSnapshot(SnapshotPath(options_.snapshot_dir, i, key));
        queries += group->queries.size();
      }
      manifest.WriteAtomic(ManifestPath(options_.snapshot_dir, i));
      return queries;
    });
  }
  return total;
}

size_t ShardedService::LoadSnapshots() {
  if (options_.snapshot_dir.empty()) {
    throw ServiceError(WireErrorCode::kBadRequest, "service has no snapshot_dir configured");
  }
  if (num_queries() != 0 || num_worlds() != 0) {
    throw ServiceError(WireErrorCode::kBadRequest, "LoadSnapshots requires an empty service");
  }
  size_t total = 0;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    total += Call(i, [this, i]() -> size_t {
      Shard* shard = shards_[i].get();
      std::unique_ptr<service::SnapshotReader> manifest;
      try {
        manifest = std::make_unique<service::SnapshotReader>(ManifestPath(options_.snapshot_dir, i));
      } catch (const SerializeError& e) {
        if (e.code == SerializeError::Code::kIo) return 0;  // empty shard
        throw;
      }
      size_t restored = 0;
      for (const auto& section : manifest->sections()) {
        if (section.type != kManifestWorldSection) {
          throw SerializeError(SerializeError::Code::kBadSection,
                               "unknown manifest section type " + std::to_string(section.type));
        }
        ByteReader r(section.payload);
        auto group = std::make_unique<Group>();
        group->world_key = r.GetU64();
        group->fingerprint = r.GetU64();
        group->scope_mask = r.GetU32();
        group->scenario.catalog = DecodeCatalogSpec(&r);
        group->scenario.query = DecodeQuerySpec(&r);
        if (WorldFingerprint(group->scenario.catalog, group->scenario.query) !=
            group->fingerprint) {
          throw SerializeError(SerializeError::Code::kMismatch,
                               "manifest world fingerprint disagrees with its specs");
        }
        const uint32_t nqueries = r.GetU32();
        group->world = testing::BuildScenarioWorld(group->scenario);
        ReoptSessionOptions so;
        so.per_query_work_budget = options_.per_query_work_budget;
        so.memo_byte_budget = options_.memo_byte_budget;
        if (options_.auto_flush_count > 0) {
          so.flush_policy = std::make_shared<CountPolicy>(options_.auto_flush_count);
        } else if (options_.flush_deadline.count() > 0) {
          so.flush_policy = std::make_shared<DeadlinePolicy>(options_.flush_deadline);
        }
        group->session = std::make_unique<ReoptSession>(&group->world->registry, so);
        std::vector<DeclarativeOptimizer*> optimizers;
        optimizers.reserve(nqueries);
        for (uint32_t qi = 0; qi < nqueries; ++qi) {
          auto q = std::make_unique<GroupQuery>();
          q->id = r.GetU64();
          const uint32_t name_len = r.GetU32();
          const unsigned char* name = r.GetBytes(name_len);
          q->options_name.assign(reinterpret_cast<const char*>(name), name_len);
          const OptimizerOptions* options = FindOptionSet(q->options_name);
          if (options == nullptr) {
            throw SerializeError(SerializeError::Code::kBadSection,
                                 "manifest names unknown option set " + q->options_name);
          }
          q->world_key = group->world_key;
          q->summaries = std::make_unique<SummaryCalculator>(&group->world->registry);
          q->cost_model = std::make_unique<CostModel>(q->summaries.get());
          q->optimizer = std::make_unique<DeclarativeOptimizer>(group->world->enumerator.get(),
                                                                q->cost_model.get(),
                                                                &group->world->registry, *options);
          optimizers.push_back(q->optimizer.get());
          group->queries.push_back(std::move(q));
        }
        if (!r.AtEnd()) {
          throw SerializeError(SerializeError::Code::kBadSection,
                               "trailing bytes in manifest world record");
        }
        std::vector<QueryHandle> handles = group->session->LoadSnapshot(
            SnapshotPath(options_.snapshot_dir, i, group->world_key), optimizers);
        for (size_t qi = 0; qi < group->queries.size(); ++qi) {
          group->queries[qi]->handle = std::move(handles[qi]);
          // LoadSnapshot attaches no subscribers; re-wire plan-change
          // delivery so kSubscribeQuery (SetSink) works after a warm
          // restart. The sink is still null until a client re-attaches.
          group->queries[qi]->handle.Subscribe(group->queries[qi].get());
        }
        {
          std::lock_guard<std::mutex> lk(index_mu_);
          worlds_[group->world_key] = WorldInfo{i, group->world->registry.num_relations(),
                                                group->world->registry.num_edges()};
          for (const auto& q : group->queries) {
            queries_[q->id] = QueryLoc{i, group->world_key};
            if (q->id >= next_query_id_) next_query_id_ = q->id + 1;
          }
        }
        restored += group->queries.size();
        shard->groups.emplace(group->world_key, std::move(group));
      }
      return restored;
    });
  }
  return total;
}

std::string ShardedService::MetricsText() {
  ReoptSessionMetrics sum;
  std::vector<size_t> shard_queries(shards_.size(), 0);
  size_t worlds = 0;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    Call(i, [this, i, &sum, &shard_queries, &worlds] {
      for (auto& [key, group] : shards_[i]->groups) {
        const ReoptSessionMetrics& m = group->session->metrics();
        sum.mutations_observed += m.mutations_observed;
        sum.flushes += m.flushes;
        sum.empty_flushes += m.empty_flushes;
        sum.changes_flushed += m.changes_flushed;
        sum.reopt_passes += m.reopt_passes;
        sum.queries_skipped += m.queries_skipped;
        sum.eps_seeded += m.eps_seeded;
        sum.plan_changes += m.plan_changes;
        sum.quarantines += m.quarantines;
        sum.rehabilitations += m.rehabilitations;
        sum.queries_parked += m.queries_parked;
        sum.watermark_flushes += m.watermark_flushes;
        sum.evictions += m.evictions;
        sum.rehydrations += m.rehydrations;
        sum.resident_memo_bytes += m.resident_memo_bytes;
        shard_queries[i] += group->queries.size();
        ++worlds;
      }
    });
  }
  std::string out = PrometheusSessionText(sum, "");
  char buf[96];
  out += "# TYPE iqro_service_shards gauge\n";
  std::snprintf(buf, sizeof(buf), "iqro_service_shards %zu\n", shards_.size());
  out += buf;
  out += "# TYPE iqro_service_worlds gauge\n";
  std::snprintf(buf, sizeof(buf), "iqro_service_worlds %zu\n", worlds);
  out += buf;
  out += "# TYPE iqro_service_queries gauge\n";
  std::snprintf(buf, sizeof(buf), "iqro_service_queries %zu\n", num_queries());
  out += buf;
  out += "# TYPE iqro_shard_queries gauge\n";
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "iqro_shard_queries{shard=\"%u\"} %zu\n", i, shard_queries[i]);
    out += buf;
  }
  return out;
}

ShardedServiceStats ShardedService::Stats() {
  ShardedServiceStats stats;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    Call(i, [this, i, &stats] {
      for (auto& [key, group] : shards_[i]->groups) {
        const ReoptSessionMetrics& m = group->session->metrics();
        ++stats.worlds;
        stats.queries += static_cast<int64_t>(group->queries.size());
        stats.flushes += m.flushes;
        stats.changes_flushed += m.changes_flushed;
        stats.plan_changes += m.plan_changes;
        stats.mutations_observed += m.mutations_observed;
        stats.quarantines += m.quarantines;
      }
    });
  }
  std::lock_guard<std::mutex> lk(index_mu_);
  stats.mutations_rejected = mutations_rejected_;
  return stats;
}

size_t ShardedService::num_queries() const {
  std::lock_guard<std::mutex> lk(index_mu_);
  return queries_.size();
}

size_t ShardedService::num_worlds() const {
  std::lock_guard<std::mutex> lk(index_mu_);
  return worlds_.size();
}

}  // namespace iqro::server
