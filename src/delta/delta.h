// Delta tuples (§4): every operator of the incremental engine consumes and
// emits insertions, deletions and replacements instead of plain tuples.
#ifndef IQRO_DELTA_DELTA_H_
#define IQRO_DELTA_DELTA_H_

#include <cstdint>

namespace iqro {

enum class DeltaKind : uint8_t {
  kInsert,  // R[+x]
  kDelete,  // R[-x]
  kUpdate,  // R[x -> x']
};

template <typename V>
struct Delta {
  DeltaKind kind = DeltaKind::kInsert;
  V old_value{};  // valid for kDelete / kUpdate
  V new_value{};  // valid for kInsert / kUpdate

  static Delta Insert(V v) { return {DeltaKind::kInsert, V{}, v}; }
  static Delta Erase(V v) { return {DeltaKind::kDelete, v, V{}}; }
  static Delta Update(V from, V to) { return {DeltaKind::kUpdate, from, to}; }
};

}  // namespace iqro

#endif  // IQRO_DELTA_DELTA_H_
