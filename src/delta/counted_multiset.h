// CountedMultiset: per-value signed counts, the stateful-operator store of
// the delta engine (§4): "we maintain for each encountered tuple value a
// (possibly temporarily negative) count ... a tuple only affects the output
// of a stateful operator if its count is positive."
#ifndef IQRO_DELTA_COUNTED_MULTISET_H_
#define IQRO_DELTA_COUNTED_MULTISET_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace iqro {

template <typename T, typename Hash = std::hash<T>>
class CountedMultiset {
 public:
  /// Adds `delta` (positive or negative) to the count of `value`.
  /// Returns +1 if the value just became present (count went 0 -> >0),
  /// -1 if it just became absent (count went >0 -> <=0), 0 otherwise.
  int Add(const T& value, int64_t delta) {
    int64_t& c = counts_[value];
    bool was_present = c > 0;
    c += delta;
    bool is_present = c > 0;
    if (c == 0) counts_.erase(value);
    if (was_present == is_present) return 0;
    return is_present ? +1 : -1;
  }

  int64_t Count(const T& value) const {
    auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
  }

  bool Present(const T& value) const { return Count(value) > 0; }

  /// Number of values with non-zero (including negative) counts.
  size_t size() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  /// True iff no value has a negative count (the converged state every
  /// delta stream must reach, since each deletion matches an insertion).
  bool Converged() const {
    for (const auto& [v, c] : counts_) {
      if (c < 0) return false;
    }
    return true;
  }

  auto begin() const { return counts_.begin(); }
  auto end() const { return counts_.end(); }

  void Clear() { counts_.clear(); }

 private:
  std::unordered_map<T, int64_t, Hash> counts_;
};

}  // namespace iqro

#endif  // IQRO_DELTA_COUNTED_MULTISET_H_
