// NetDeltaTable: coalesces a keyed stream of statistics mutations into one
// net delta per statistic.
//
// The paper observes that incremental re-optimization is cheapest when
// updates are *batched* before the delta fixpoint runs (§4): a sequence of
// changes to the same statistic needs only one round of delta propagation,
// and a sequence that ends where it started needs none. This table is the
// data structure behind that batching: each mutation is recorded against a
// 64-bit statistic identity together with the value the statistic held
// *before* the mutation. The first record of a key in a batch captures that
// value as the key's baseline; every later record of the same key collapses
// into the existing entry (the baseline is what matters — intermediate
// values were never consumed by anyone). At flush time the owner compares
// each entry's baseline against the statistic's current value: equal means
// the churn netted to zero and the entry is dropped; different means exactly
// one delta is emitted, regardless of how many mutations produced it.
//
// Entries preserve insertion order so that flushes are deterministic
// (byte-stable dumps and replayable differential scenarios depend on this).
// Lookup is an open-addressing probe (common/flat_map.h); the entry payload
// lives in a flat vector.
#ifndef IQRO_DELTA_NET_DELTA_H_
#define IQRO_DELTA_NET_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/flat_map.h"

namespace iqro {

class NetDeltaTable {
 public:
  struct Entry {
    uint64_t key = 0;      // statistic identity (owner-defined packing)
    double baseline = 0;   // value of the statistic before its first
                           // mutation in the current batch
  };

  /// Records a mutation of the statistic identified by `key` whose value
  /// before the mutation was `value_before`. Returns true when this created
  /// a new entry (first mutation of that key in the batch); false when the
  /// mutation collapsed into an existing entry, whose original baseline is
  /// kept.
  bool Record(uint64_t key, double value_before) {
    auto [slot, inserted] = index_.TryEmplace(key, 0u);
    if (!inserted) return false;
    *slot = static_cast<uint32_t>(entries_.size());
    entries_.push_back({key, value_before});
    return true;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True when `key` already has an entry in the current batch. Lets an
  /// overloaded owner keep accepting mutations that coalesce into existing
  /// entries (they cost no memory) while rejecting ones that would grow
  /// the table.
  bool Contains(uint64_t key) const { return index_.Find(key) != nullptr; }

  /// Entries in insertion order (the order their keys first mutated).
  const Entry& entry(size_t i) const { return entries_[i]; }

  /// Removes the most recently inserted entry. Fault-injection hook for the
  /// differential harness: the statistic itself stays mutated, but its
  /// delta is silently lost. Returns false when the table is empty.
  bool PopBack() {
    if (entries_.empty()) return false;
    index_.Erase(entries_.back().key);
    entries_.pop_back();
    return true;
  }

  void Clear() {
    entries_.clear();
    index_.Clear();
  }

 private:
  std::vector<Entry> entries_;
  FlatMap64<uint32_t> index_;  // key -> entries_ position
};

}  // namespace iqro

#endif  // IQRO_DELTA_NET_DELTA_H_
