// ExtremeAgg: grouped min/max aggregate state that retains *all* inputs.
//
// This is the paper's extension of aggregate operators for incremental
// maintenance (§4): "we must further extend the internal state management
// to keep track of all values encountered — such that we can recover the
// second-from-minimum value. If the minimum is deleted, the operator should
// propagate an update delta, replacing its previous output with the
// next-best-minimum."
//
// Entries are (value, id) pairs ordered lexicographically, which doubles as
// the deterministic tie-break the paper's distinct-cost assumption
// (Proposition 5) stands in for.
//
// Storage is flat: a sorted vector of (value, id) entries plus a FlatMap64
// from id to value. One aggregate lives inside every plan-table entry
// (BestCost and Bound state), so the constant factor here is the fixpoint's
// constant factor — groups are small (one entry per alternative / per parent
// contribution), and a binary search plus a memmove beats a red-black tree
// node allocation at every realistic group size.
#ifndef IQRO_DELTA_EXTREME_AGG_H_
#define IQRO_DELTA_EXTREME_AGG_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flat_map.h"
#include "delta/delta.h"

namespace iqro {

template <typename Id = uint64_t>
class ExtremeAgg {
 public:
  using Entry = std::pair<double, Id>;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  bool Contains(Id id) const { return values_.Find(KeyOf(id)) != nullptr; }

  double ValueOf(Id id) const {
    const double* v = values_.Find(KeyOf(id));
    IQRO_DCHECK(v != nullptr);
    return *v;
  }

  /// Smallest (value, id) entry; infinity if empty.
  Entry MinEntry() const {
    if (entries_.empty()) return {std::numeric_limits<double>::infinity(), Id{}};
    return entries_.front();
  }

  /// Largest (value, id) entry; -infinity if empty.
  Entry MaxEntry() const {
    if (entries_.empty()) return {-std::numeric_limits<double>::infinity(), Id{}};
    return entries_.back();
  }

  double MinValue() const { return MinEntry().first; }
  double MaxValue() const { return MaxEntry().first; }

  /// Inserts or replaces the contribution of `id`. Returns true iff the
  /// group's min or max entry changed.
  bool Set(Id id, double value) {
    auto [slot, inserted] = values_.TryEmplace(KeyOf(id), value);
    Entry old_min = MinEntry();
    Entry old_max = MaxEntry();
    if (!inserted) {
      if (*slot == value) return false;
      EraseEntry(Entry{*slot, id});
      *slot = value;
    }
    InsertEntry(Entry{value, id});
    return MinEntry() != old_min || MaxEntry() != old_max;
  }

  /// Removes the contribution of `id` if present. Returns true iff the
  /// group's min or max entry changed.
  bool Erase(Id id) {
    const double* v = values_.Find(KeyOf(id));
    if (v == nullptr) return false;
    Entry old_min = MinEntry();
    Entry old_max = MaxEntry();
    EraseEntry(Entry{*v, id});
    values_.Erase(KeyOf(id));
    return MinEntry() != old_min || MaxEntry() != old_max;
  }

  void Clear() {
    entries_.clear();
    values_.Clear();
  }

  /// Ascending iteration over retained (value, id) entries.
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  static uint64_t KeyOf(Id id) { return static_cast<uint64_t>(id); }

  void InsertEntry(const Entry& e) {
    entries_.insert(std::lower_bound(entries_.begin(), entries_.end(), e), e);
  }

  void EraseEntry(const Entry& e) {
    auto it = std::lower_bound(entries_.begin(), entries_.end(), e);
    IQRO_DCHECK(it != entries_.end() && *it == e);
    entries_.erase(it);
  }

  std::vector<Entry> entries_;  // sorted ascending by (value, id)
  FlatMap64<double> values_;    // id -> current value
};

}  // namespace iqro

#endif  // IQRO_DELTA_EXTREME_AGG_H_
