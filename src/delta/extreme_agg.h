// ExtremeAgg: grouped min/max aggregate state that retains *all* inputs.
//
// This is the paper's extension of aggregate operators for incremental
// maintenance (§4): "we must further extend the internal state management
// to keep track of all values encountered — such that we can recover the
// second-from-minimum value. If the minimum is deleted, the operator should
// propagate an update delta, replacing its previous output with the
// next-best-minimum."
//
// Entries are (value, id) pairs ordered lexicographically, which doubles as
// the deterministic tie-break the paper's distinct-cost assumption
// (Proposition 5) stands in for.
#ifndef IQRO_DELTA_EXTREME_AGG_H_
#define IQRO_DELTA_EXTREME_AGG_H_

#include <cstdint>
#include <limits>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "delta/delta.h"

namespace iqro {

template <typename Id = uint64_t>
class ExtremeAgg {
 public:
  using Entry = std::pair<double, Id>;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  bool Contains(Id id) const { return values_.count(id) > 0; }

  double ValueOf(Id id) const {
    auto it = values_.find(id);
    IQRO_DCHECK(it != values_.end());
    return it->second;
  }

  /// Smallest (value, id) entry; infinity if empty.
  Entry MinEntry() const {
    if (entries_.empty()) return {std::numeric_limits<double>::infinity(), Id{}};
    return *entries_.begin();
  }

  /// Largest (value, id) entry; -infinity if empty.
  Entry MaxEntry() const {
    if (entries_.empty()) return {-std::numeric_limits<double>::infinity(), Id{}};
    return *entries_.rbegin();
  }

  double MinValue() const { return MinEntry().first; }
  double MaxValue() const { return MaxEntry().first; }

  /// Inserts or replaces the contribution of `id`. Returns true iff the
  /// group's min or max entry changed.
  bool Set(Id id, double value) {
    auto [it, inserted] = values_.try_emplace(id, value);
    Entry old_min = MinEntry();
    Entry old_max = MaxEntry();
    if (!inserted) {
      if (it->second == value) return false;
      entries_.erase(Entry{it->second, id});
      it->second = value;
    }
    entries_.insert(Entry{value, id});
    return MinEntry() != old_min || MaxEntry() != old_max;
  }

  /// Removes the contribution of `id` if present. Returns true iff the
  /// group's min or max entry changed.
  bool Erase(Id id) {
    auto it = values_.find(id);
    if (it == values_.end()) return false;
    Entry old_min = MinEntry();
    Entry old_max = MaxEntry();
    entries_.erase(Entry{it->second, id});
    values_.erase(it);
    return MinEntry() != old_min || MaxEntry() != old_max;
  }

  void Clear() {
    entries_.clear();
    values_.clear();
  }

  /// Ascending iteration over retained (value, id) entries.
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::set<Entry> entries_;
  std::unordered_map<Id, double> values_;
};

}  // namespace iqro

#endif  // IQRO_DELTA_EXTREME_AGG_H_
