#include "baseline/systemr.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/check.h"

namespace iqro {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

SystemROptimizer::SystemROptimizer(PlanEnumerator* enumerator, const CostModel* cost_model)
    : enumerator_(enumerator), cost_model_(cost_model) {}

void SystemROptimizer::Optimize() {
  table_.clear();
  metrics_ = SystemRMetrics{};

  // Discover the reachable (expr, prop) pairs top-down once, then fill the
  // dynamic-programming table bottom-up: by subset size, with the
  // unordered (prop = none) variant of an expression before its sorted
  // variants (the sort enforcer references it).
  std::vector<EPKey> pairs;
  {
    std::unordered_map<EPKey, bool> seen;
    std::deque<EPKey> queue;
    EPKey root = enumerator_->RootKey();
    queue.push_back(root);
    seen[root] = true;
    while (!queue.empty()) {
      EPKey key = queue.front();
      queue.pop_front();
      pairs.push_back(key);
      for (const Alt& a : enumerator_->Split(EPExpr(key), EPProp(key))) {
        if (a.NumChildren() >= 1) {
          EPKey l = MakeEPKey(a.lexpr, a.lprop);
          if (!seen[l]) {
            seen[l] = true;
            queue.push_back(l);
          }
        }
        if (a.NumChildren() == 2) {
          EPKey r = MakeEPKey(a.rexpr, a.rprop);
          if (!seen[r]) {
            seen[r] = true;
            queue.push_back(r);
          }
        }
      }
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(), [](EPKey a, EPKey b) {
    int pa = RelCount(EPExpr(a));
    int pb = RelCount(EPExpr(b));
    if (pa != pb) return pa < pb;
    return EPProp(a) == kPropNone && EPProp(b) != kPropNone;
  });

  for (EPKey key : pairs) {
    const RelSet expr = EPExpr(key);
    const PropId prop = EPProp(key);
    Entry entry;
    entry.best = kInf;
    const std::vector<Alt>& alts = enumerator_->Split(expr, prop);
    for (size_t i = 0; i < alts.size(); ++i) {
      const Alt& a = alts[i];
      double total = 0;
      switch (a.logop) {
        case LogOp::kScan:
          total = cost_model_->ScanCost(RelLowest(expr), a.phyop);
          break;
        case LogOp::kSort:
          total = cost_model_->SortLocalCost(expr);
          break;
        case LogOp::kJoin:
          total = cost_model_->JoinLocalCost(a.phyop, a.lexpr, a.rexpr);
          break;
      }
      if (a.NumChildren() >= 1) total += BestCostOf(a.lexpr, a.lprop);
      if (a.NumChildren() == 2) total += BestCostOf(a.rexpr, a.rprop);
      ++metrics_.alts_costed;
      if (total < entry.best) {
        entry.best = total;
        entry.best_alt = static_cast<int>(i);
      }
    }
    IQRO_CHECK(entry.best < kInf);
    table_[key] = entry;
    ++metrics_.eps_computed;
  }
}

double SystemROptimizer::BestCostOf(RelSet expr, PropId prop) const {
  auto it = table_.find(MakeEPKey(expr, prop));
  return it == table_.end() ? kInf : it->second.best;
}

double SystemROptimizer::BestCost() const {
  EPKey root = enumerator_->RootKey();
  return BestCostOf(EPExpr(root), EPProp(root));
}

std::unique_ptr<PlanTree> SystemROptimizer::GetBestPlan() const {
  AltChooser chooser = [this](RelSet expr, PropId prop) -> std::pair<Alt, double> {
    auto it = table_.find(MakeEPKey(expr, prop));
    IQRO_CHECK(it != table_.end() && it->second.best_alt >= 0);
    const std::vector<Alt>& alts = enumerator_->Split(expr, prop);
    return {alts[static_cast<size_t>(it->second.best_alt)], it->second.best};
  };
  EPKey root = enumerator_->RootKey();
  return BuildPlanTree(EPExpr(root), EPProp(root), chooser, cost_model_->summaries(),
                       enumerator_->props());
}

}  // namespace iqro
