// VolcanoOptimizer: procedural top-down optimization with memoization and
// branch-and-bound pruning (Volcano/Cascades style [11, 12]) — the paper's
// primary baseline and the normalization target of every figure.
//
// Shares the PlanEnumerator (Fn_split) and CostModel with the declarative
// optimizer, so both search exactly the same plan space with identical cost
// inputs; only search order, dataflow and pruning differ.
#ifndef IQRO_BASELINE_VOLCANO_H_
#define IQRO_BASELINE_VOLCANO_H_

#include <memory>
#include <unordered_map>

#include "cost/cost_model.h"
#include "enumerate/plan_enumerator.h"
#include "enumerate/plan_tree.h"

namespace iqro {

struct VolcanoMetrics {
  int64_t eps_visited = 0;      // distinct (expr, prop) pairs entered
  int64_t alts_considered = 0;  // alternative expansions started
  int64_t alts_completed = 0;   // alternatives fully costed (not cut off)
  int64_t alts_won = 0;         // alternatives that became the running best
  int64_t cutoffs = 0;          // branch-and-bound cutoffs taken
};

class VolcanoOptimizer {
 public:
  VolcanoOptimizer(PlanEnumerator* enumerator, const CostModel* cost_model);

  /// Full (from scratch) optimization. Clears any previous memo.
  void Optimize();

  double BestCost() const { return best_cost_; }
  std::unique_ptr<PlanTree> GetBestPlan() const;
  const VolcanoMetrics& metrics() const { return metrics_; }

 private:
  struct Entry {
    double best = 0;
    int best_alt = -1;
    bool exact = false;       // best is the true optimum
    double failed_limit = 0;  // explored up to this limit without a winner
    bool visited = false;
  };

  /// Returns the optimal cost for (expr, prop) if it is < limit, otherwise
  /// +infinity (the subtree was pruned under this limit).
  double OptimizeEP(RelSet expr, PropId prop, double limit);

  PlanEnumerator* enumerator_;
  const CostModel* cost_model_;
  std::unordered_map<EPKey, Entry> memo_;
  VolcanoMetrics metrics_;
  double best_cost_ = 0;
};

}  // namespace iqro

#endif  // IQRO_BASELINE_VOLCANO_H_
