#include "baseline/volcano.h"

#include <limits>

#include "common/check.h"

namespace iqro {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

VolcanoOptimizer::VolcanoOptimizer(PlanEnumerator* enumerator, const CostModel* cost_model)
    : enumerator_(enumerator), cost_model_(cost_model) {}

void VolcanoOptimizer::Optimize() {
  memo_.clear();
  metrics_ = VolcanoMetrics{};
  EPKey root = enumerator_->RootKey();
  best_cost_ = OptimizeEP(EPExpr(root), EPProp(root), kInf);
  IQRO_CHECK(best_cost_ < kInf);
}

double VolcanoOptimizer::OptimizeEP(RelSet expr, PropId prop, double limit) {
  Entry& entry = memo_[MakeEPKey(expr, prop)];
  if (entry.exact) return entry.best < limit ? entry.best : kInf;
  if (entry.visited && limit <= entry.failed_limit) {
    ++metrics_.cutoffs;  // proven: no plan cheaper than failed_limit exists
    return kInf;
  }
  if (!entry.visited) {
    entry.visited = true;
    entry.failed_limit = 0;
    entry.best = kInf;
    ++metrics_.eps_visited;
  }

  const std::vector<Alt>& alts = enumerator_->Split(expr, prop);
  double running_limit = limit;
  double best = kInf;
  int best_alt = -1;
  for (size_t i = 0; i < alts.size(); ++i) {
    const Alt& a = alts[i];
    ++metrics_.alts_considered;
    double local = 0;
    switch (a.logop) {
      case LogOp::kScan:
        local = cost_model_->ScanCost(RelLowest(expr), a.phyop);
        break;
      case LogOp::kSort:
        local = cost_model_->SortLocalCost(expr);
        break;
      case LogOp::kJoin:
        local = cost_model_->JoinLocalCost(a.phyop, a.lexpr, a.rexpr);
        break;
    }
    if (local >= running_limit) {
      ++metrics_.cutoffs;
      continue;
    }
    double total = local;
    if (a.NumChildren() >= 1) {
      double lcost = OptimizeEP(a.lexpr, a.lprop, running_limit - total);
      if (lcost == kInf) {
        ++metrics_.cutoffs;
        continue;
      }
      total += lcost;
    }
    if (a.NumChildren() == 2) {
      double rcost = OptimizeEP(a.rexpr, a.rprop, running_limit - total);
      if (rcost == kInf) {
        ++metrics_.cutoffs;
        continue;
      }
      total += rcost;
    }
    ++metrics_.alts_completed;
    if (total < best) {
      best = total;
      best_alt = static_cast<int>(i);
      running_limit = std::min(running_limit, best);
      ++metrics_.alts_won;
    }
  }

  if (best < limit) {
    entry.best = best;
    entry.best_alt = best_alt;
    entry.exact = true;  // every cutoff was provably >= best
    return best;
  }
  entry.failed_limit = std::max(entry.failed_limit, limit);
  return kInf;
}

std::unique_ptr<PlanTree> VolcanoOptimizer::GetBestPlan() const {
  AltChooser chooser = [this](RelSet expr, PropId prop) -> std::pair<Alt, double> {
    auto it = memo_.find(MakeEPKey(expr, prop));
    IQRO_CHECK(it != memo_.end() && it->second.exact && it->second.best_alt >= 0);
    const std::vector<Alt>& alts = enumerator_->Split(expr, prop);
    return {alts[static_cast<size_t>(it->second.best_alt)], it->second.best};
  };
  EPKey root = enumerator_->RootKey();
  return BuildPlanTree(EPExpr(root), EPProp(root), chooser, cost_model_->summaries(),
                       enumerator_->props());
}

}  // namespace iqro
