// SystemROptimizer: procedural bottom-up dynamic programming over connected
// relation subsets with interesting orders (System-R style [23]) — the
// paper's second baseline, and our tests' exhaustive ground truth: it costs
// every alternative of every reachable (expr, prop) pair exactly once.
#ifndef IQRO_BASELINE_SYSTEMR_H_
#define IQRO_BASELINE_SYSTEMR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.h"
#include "enumerate/plan_enumerator.h"
#include "enumerate/plan_tree.h"

namespace iqro {

struct SystemRMetrics {
  int64_t eps_computed = 0;
  int64_t alts_costed = 0;
};

class SystemROptimizer {
 public:
  SystemROptimizer(PlanEnumerator* enumerator, const CostModel* cost_model);

  /// Full (from scratch) optimization. Clears any previous state.
  void Optimize();

  double BestCost() const;
  std::unique_ptr<PlanTree> GetBestPlan() const;
  const SystemRMetrics& metrics() const { return metrics_; }

  /// Best cost of any reachable (expr, prop) pair; +infinity if the pair is
  /// not part of the query's plan space. Used by tests as ground truth.
  double BestCostOf(RelSet expr, PropId prop) const;

 private:
  struct Entry {
    double best = 0;
    int best_alt = -1;
  };

  PlanEnumerator* enumerator_;
  const CostModel* cost_model_;
  std::unordered_map<EPKey, Entry> table_;
  SystemRMetrics metrics_;
};

}  // namespace iqro

#endif  // IQRO_BASELINE_SYSTEMR_H_
