#include "bench_util/json_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace iqro::bench {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNum(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

JsonObj& JsonObj::Put(const std::string& key, double v) {
  fields_.emplace_back(key, JsonNum(v));
  return *this;
}

JsonObj& JsonObj::Put(const std::string& key, int64_t v) {
  fields_.emplace_back(key, std::to_string(v));
  return *this;
}

JsonObj& JsonObj::Put(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
  return *this;
}

JsonObj& JsonObj::Put(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, JsonQuote(v));
  return *this;
}

JsonObj& JsonObj::Put(const std::string& key, const JsonObj& v) {
  fields_.emplace_back(key, v.ToString());
  return *this;
}

JsonObj& JsonObj::Put(const std::string& key, const JsonArr& v) {
  fields_.emplace_back(key, v.ToString());
  return *this;
}

std::string JsonObj::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(fields_[i].first);
    out += ":";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

JsonArr& JsonArr::Add(double v) {
  items_.push_back(JsonNum(v));
  return *this;
}

JsonArr& JsonArr::Add(int64_t v) {
  items_.push_back(std::to_string(v));
  return *this;
}

JsonArr& JsonArr::Add(const std::string& v) {
  items_.push_back(JsonQuote(v));
  return *this;
}

JsonArr& JsonArr::Add(const JsonObj& v) {
  items_.push_back(v.ToString());
  return *this;
}

JsonArr& JsonArr::Add(const JsonArr& v) {
  items_.push_back(v.ToString());
  return *this;
}

std::string JsonArr::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ",";
    out += items_[i];
  }
  out += "]";
  return out;
}

JsonObj OptMetricsJson(const OptMetrics& m) {
  JsonObj o;
  o.Put("eps_enumerated", m.eps_enumerated)
      .Put("alts_created", m.alts_created)
      .Put("alts_full_costed", m.alts_full_costed)
      .Put("cost_computations", m.cost_computations)
      .Put("suppressions", m.suppressions)
      .Put("reintroductions", m.reintroductions)
      .Put("ep_gcs", m.ep_gcs)
      .Put("ep_activations", m.ep_activations)
      .Put("steps", m.steps)
      .Put("memo_probes", m.memo_probes)
      .Put("memo_hits", m.memo_hits)
      .Put("tasks_enqueued", m.tasks_enqueued)
      .Put("tasks_deduped", m.tasks_deduped)
      .Put("peak_memo_bytes", m.peak_memo_bytes)
      .Put("round_touched_eps", m.round_touched_eps)
      .Put("round_touched_alts", m.round_touched_alts)
      .Put("round_steps", m.round_steps);
  return o;
}

std::string BenchOutDir() {
  if (const char* env = std::getenv("IQRO_BENCH_OUT_DIR"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".";
}

void WriteBenchJson(const std::string& name, const JsonObj& root) {
  const std::string path = BenchOutDir() + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "json_report: cannot open %s for writing\n", path.c_str());
    return;
  }
  const std::string text = root.ToString();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace iqro::bench
