#include "bench_util/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace iqro::bench {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c], '-') + "  ";
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

JsonObj TablePrinter::ToJson() const {
  JsonObj o;
  o.Put("title", title_);
  JsonArr headers;
  for (const std::string& h : headers_) headers.Add(h);
  o.Put("headers", headers);
  JsonArr rows;
  for (const auto& row : rows_) {
    JsonArr cells;
    for (const std::string& c : row) cells.Add(c);
    rows.Add(cells);
  }
  o.Put("rows", rows);
  return o;
}

JsonObj BenchRoot(const std::string& name, const JsonObj& metrics,
                  std::initializer_list<const TablePrinter*> tables) {
  JsonObj root;
  root.Put("bench", name).Put("metrics", metrics);
  JsonArr table_arr;
  for (const TablePrinter* t : tables) table_arr.Add(t->ToJson());
  root.Put("tables", table_arr);
  return root;
}

std::string Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

double OnceMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

double MedianMs(int reps, const std::function<void()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) times.push_back(OnceMs(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::unique_ptr<TpchFixture> MakeTpchFixture(double scale_factor, double zipf_theta,
                                             uint32_t partition, uint64_t seed) {
  auto fixture = std::make_unique<TpchFixture>();
  TpchConfig cfg;
  cfg.scale_factor = scale_factor;
  cfg.zipf_theta = zipf_theta;
  cfg.partition = partition;
  cfg.seed = seed;
  GenerateTpch(&fixture->catalog, cfg);
  fixture->stats = CollectCatalogStats(fixture->catalog);
  return fixture;
}

std::unique_ptr<QueryContext> MakeContext(const TpchFixture& fixture,
                                          const std::string& query_name) {
  // MakeTpchQuery interns string literals; the catalog is logically const
  // otherwise.
  Catalog& catalog = const_cast<Catalog&>(fixture.catalog);
  return MakeQueryContext(&fixture.catalog, MakeTpchQuery(&catalog, query_name),
                          fixture.stats);
}

}  // namespace iqro::bench
