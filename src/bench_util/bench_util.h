// Shared helpers for the figure/table reproduction binaries: aligned table
// printing, repetition timing, and TPC-H fixture construction.
#ifndef IQRO_BENCH_UTIL_BENCH_UTIL_H_
#define IQRO_BENCH_UTIL_BENCH_UTIL_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/json_report.h"
#include "workload/context.h"
#include "workload/queries.h"
#include "workload/tpch_gen.h"

namespace iqro::bench {

/// Fixed-width console table; prints a title, header row and data rows.
class TablePrinter {
 public:
  TablePrinter(std::string title, std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

  /// {"title":..., "headers":[...], "rows":[[...], ...]} for the JSON report.
  JsonObj ToJson() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// The common report scaffolding: {"bench": name, "metrics": ..., "tables":
/// [...]}. Benches append their extra fields to the returned object, then
/// hand it to WriteBenchJson(name, root). Keeping the scaffold here means a
/// schema change edits one function, not every bench binary.
JsonObj BenchRoot(const std::string& name, const JsonObj& metrics,
                  std::initializer_list<const TablePrinter*> tables);

/// Formats `v` with `digits` fractional digits.
std::string Num(double v, int digits = 2);

/// Median wall time of `fn` over `reps` runs, in milliseconds.
double MedianMs(int reps, const std::function<void()>& fn);

/// The p-th percentile (p in [0, 1], nearest-rank with rounding) of the
/// samples in `v`; 0 on an empty vector. Takes `v` by value and sorts the
/// copy. The latency-percentile helper shared by bench_adversarial and
/// bench_daemon_load.
double Percentile(std::vector<double> v, double p);

/// Wall time of one run of `fn`, in milliseconds.
double OnceMs(const std::function<void()>& fn);

/// A generated TPC-H catalog plus its collected statistics.
struct TpchFixture {
  Catalog catalog;
  std::vector<TableStats> stats;
};

/// Builds (and caches nothing — call once per binary) a TPC-H fixture.
std::unique_ptr<TpchFixture> MakeTpchFixture(double scale_factor, double zipf_theta = 0.0,
                                             uint32_t partition = 0, uint64_t seed = 42);

/// Wires a QueryContext for `query_name` over the fixture.
std::unique_ptr<QueryContext> MakeContext(const TpchFixture& fixture,
                                          const std::string& query_name);

}  // namespace iqro::bench

#endif  // IQRO_BENCH_UTIL_BENCH_UTIL_H_
