// Machine-readable benchmark output: every bench binary emits a
// BENCH_<name>.json file next to its console tables, so the performance
// trajectory of the optimizer is tracked across PRs by diffing JSON instead
// of scraping stdout. The serializer is deliberately tiny — insertion-ordered
// objects, arrays, numbers, strings — no external dependency.
#ifndef IQRO_BENCH_UTIL_JSON_REPORT_H_
#define IQRO_BENCH_UTIL_JSON_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"

namespace iqro::bench {

class JsonArr;

/// An insertion-ordered JSON object under construction. Values are
/// serialized eagerly; nested objects/arrays are spliced in as text.
class JsonObj {
 public:
  JsonObj& Put(const std::string& key, double v);
  JsonObj& Put(const std::string& key, int64_t v);
  JsonObj& Put(const std::string& key, int v) { return Put(key, static_cast<int64_t>(v)); }
  JsonObj& Put(const std::string& key, size_t v) { return Put(key, static_cast<int64_t>(v)); }
  JsonObj& Put(const std::string& key, bool v);
  JsonObj& Put(const std::string& key, const std::string& v);
  JsonObj& Put(const std::string& key, const char* v) { return Put(key, std::string(v)); }
  JsonObj& Put(const std::string& key, const JsonObj& v);
  JsonObj& Put(const std::string& key, const JsonArr& v);

  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> serialized value
};

class JsonArr {
 public:
  JsonArr& Add(double v);
  JsonArr& Add(int64_t v);
  JsonArr& Add(const std::string& v);
  JsonArr& Add(const char* v) { return Add(std::string(v)); }
  JsonArr& Add(const JsonObj& v);
  JsonArr& Add(const JsonArr& v);

  std::string ToString() const;

 private:
  std::vector<std::string> items_;  // serialized values
};

/// JSON-escapes and quotes `s`.
std::string JsonQuote(const std::string& s);

/// Serializes a double the way the reporter does: %.12g — 12 significant
/// digits, compact but NOT an exact round-trip (doubles need up to 17);
/// infinities and NaN become strings. Fine for timings and counters, do
/// not rely on bit-exact equality across reports.
std::string JsonNum(double v);

/// All OptMetrics counters as one JSON object.
JsonObj OptMetricsJson(const OptMetrics& m);

/// Directory bench reports go to: $IQRO_BENCH_OUT_DIR, or "." when unset.
std::string BenchOutDir();

/// Writes `root` to BENCH_<name>.json in the current working directory (or
/// $IQRO_BENCH_OUT_DIR when set) and prints the path written.
void WriteBenchJson(const std::string& name, const JsonObj& root);

}  // namespace iqro::bench

#endif  // IQRO_BENCH_UTIL_JSON_REPORT_H_
