#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace iqro {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  IQRO_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  IQRO_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

bool Rng::NextBool(double p) { return NextDouble() < p; }

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  IQRO_CHECK(n >= 1);
  IQRO_CHECK(theta >= 0.0);
  zetan_ = Zeta(n, theta);
  zeta2_ = Zeta(2, theta);
  alpha_ = theta == 1.0 ? 0.0 : 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  if (theta_ == 0.0) return 1 + rng.NextBelow(n_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  if (theta_ == 1.0) {
    // Inverse-CDF walk is too slow for theta==1; approximate with the
    // standard eta formula using alpha -> log form.
    uint64_t v = 1 + static_cast<uint64_t>(static_cast<double>(n_) *
                                           std::pow(eta_ * u - eta_ + 1.0, 2.0));
    return v > n_ ? n_ : v;
  }
  uint64_t v = 1 + static_cast<uint64_t>(static_cast<double>(n_) *
                                         std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v > n_ ? n_ : v;
}

std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = static_cast<uint32_t>(rng.NextBelow(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace iqro
