// Minimal byte-stream serialization primitives for the memo/stats
// lifecycle paths (core memo seeds, stats-registry sections, on-disk
// snapshots — see service/snapshot.h for the file framing).
//
// Design constraints:
//  * Deterministic: a given logical state always encodes to the same
//    bytes, so serialized seeds can be compared and checksummed.
//  * Defensive on the way in: every Read is bounds-checked and every
//    structural mismatch raises a typed SerializeError — a torn or
//    corrupted payload must never be half-applied (callers tear down and
//    rethrow, preserving the optimizer's all-or-nothing guarantee).
//  * Self-contained integers: fixed-width little-endian, byte-at-a-time
//    (no reinterpret_cast aliasing, no host-endianness leakage). Doubles
//    round-trip through their IEEE bit pattern, NaN payloads included —
//    the optimizer's kNoContribution sentinel survives exactly.
#ifndef IQRO_COMMON_SERIALIZE_H_
#define IQRO_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace iqro {

/// Typed failure raised by ByteReader and by every lifecycle decoder
/// (memo restore, registry restore, snapshot load). The code pins *why*
/// a payload was rejected, so tests can assert the loader refused a
/// corrupt file for the right reason.
struct SerializeError : public std::runtime_error {
  enum class Code : uint8_t {
    kIo,          // file could not be read/written/renamed
    kBadMagic,    // not a snapshot file at all
    kBadVersion,  // produced by an incompatible format version
    kTruncated,   // payload ends before its declared contents
    kChecksum,    // framed section bytes fail their checksum
    kBadSection,  // section structure (type/length/count) is inconsistent
    kMismatch,    // payload disagrees with the world it is applied to
  };

  SerializeError(Code code_in, const std::string& what)
      : std::runtime_error(what), code(code_in) {}

  Code code;
};

inline const char* SerializeErrorCodeName(SerializeError::Code c) {
  switch (c) {
    case SerializeError::Code::kIo: return "io";
    case SerializeError::Code::kBadMagic: return "bad_magic";
    case SerializeError::Code::kBadVersion: return "bad_version";
    case SerializeError::Code::kTruncated: return "truncated";
    case SerializeError::Code::kChecksum: return "checksum";
    case SerializeError::Code::kBadSection: return "bad_section";
    case SerializeError::Code::kMismatch: return "mismatch";
  }
  return "unknown";
}

/// FNV-1a 64-bit over a byte range: the section checksum of the snapshot
/// framing. Not cryptographic — it detects torn writes and bit rot, which
/// is the failure model (the snapshot file is trusted-local, not hostile).
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Append-only little-endian encoder over a caller-owned std::string.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU16(uint16_t v) { PutUint(v, 2); }
  void PutU32(uint32_t v) { PutUint(v, 4); }
  void PutU64(uint64_t v) { PutUint(v, 8); }

  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  /// IEEE bit pattern, NaN payloads preserved.
  void PutF64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutBytes(const void* data, size_t len) {
    out_->append(static_cast<const char*>(data), len);
  }

  size_t size() const { return out_->size(); }

 private:
  void PutUint(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_->push_back(static_cast<char>(v & 0xFF));
      v >>= 8;
    }
  }

  std::string* out_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range. Every
/// overrun throws SerializeError{kTruncated}; nothing is ever read past
/// the payload's end.
class ByteReader {
 public:
  ByteReader(const void* data, size_t len)
      : p_(static_cast<const unsigned char*>(data)), len_(len) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

  uint8_t GetU8() {
    Need(1);
    return p_[pos_++];
  }

  uint16_t GetU16() { return static_cast<uint16_t>(GetUint(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetUint(4)); }
  uint64_t GetU64() { return GetUint(8); }

  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }

  double GetF64() {
    const uint64_t bits = GetU64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Borrows `len` bytes from the payload (no copy); the pointer is valid
  /// as long as the underlying buffer.
  const unsigned char* GetBytes(size_t len) {
    Need(len);
    const unsigned char* out = p_ + pos_;
    pos_ += len;
    return out;
  }

 private:
  void Need(size_t n) const {
    if (len_ - pos_ < n) {
      throw SerializeError(SerializeError::Code::kTruncated,
                           "payload truncated: need " + std::to_string(n) + " bytes at offset " +
                               std::to_string(pos_) + " of " + std::to_string(len_));
    }
  }

  uint64_t GetUint(int bytes) {
    Need(static_cast<size_t>(bytes));
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(p_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += static_cast<size_t>(bytes);
    return v;
  }

  const unsigned char* p_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace iqro

#endif  // IQRO_COMMON_SERIALIZE_H_
