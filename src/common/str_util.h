// Small string formatting helpers shared by EXPLAIN output and benches.
#ifndef IQRO_COMMON_STR_UTIL_H_
#define IQRO_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace iqro {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

/// Renders a double compactly ("1.5", "0.042", "1.2e+06").
std::string DoubleToString(double v);

}  // namespace iqro

#endif  // IQRO_COMMON_STR_UTIL_H_
