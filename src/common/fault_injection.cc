#include "common/fault_injection.h"

#include <chrono>
#include <new>
#include <thread>

namespace iqro {

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();  // leaked: outlives all users
  return *instance;
}

void FaultInjector::OnHit(const char* site) {
  int sleep_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || specs_.empty()) return;

    int64_t* count = nullptr;
    for (auto& [name, n] : hit_counts_) {
      if (name == site) {
        count = &n;
        break;
      }
    }
    if (count == nullptr) {
      hit_counts_.emplace_back(site, 0);
      count = &hit_counts_.back().second;
    }
    const int64_t hit = ++*count;

    for (const ArmSpec& spec : specs_) {
      if (spec.site != site) continue;
      const bool fires =
          hit == spec.fire_at_hit ||
          (spec.period > 0 && hit > spec.fire_at_hit &&
           (hit - spec.fire_at_hit) % spec.period == 0);
      if (!fires) continue;
      ++fired_;
      switch (spec.action) {
        case Action::kThrow:
          throw InjectedFault(std::string("injected fault at ") + site + " hit " +
                              std::to_string(hit));
        case Action::kBadAlloc:
          throw std::bad_alloc();
        case Action::kDelay:
          sleep_micros = spec.delay_micros;
          break;
      }
      break;  // at most one delay per hit; throws already left
    }
  }
  if (sleep_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
  }
}

void FaultInjector::Arm(ArmSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back(std::move(spec));
  armed_.store(enabled_ && !specs_.empty(), std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  hit_counts_.clear();
  fired_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

void FaultInjector::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
  armed_.store(enabled_ && !specs_.empty(), std::memory_order_relaxed);
}

int64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, n] : hit_counts_) {
    if (name == site) return n;
  }
  return 0;
}

int64_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

}  // namespace iqro
