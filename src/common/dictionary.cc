#include "common/dictionary.h"

#include "common/check.h"

namespace iqro {

int64_t Dictionary::Intern(std::string_view s) {
  auto it = codes_.find(std::string(s));
  if (it != codes_.end()) return it->second;
  int64_t code = static_cast<int64_t>(strings_.size());
  strings_.emplace_back(s);
  codes_.emplace(strings_.back(), code);
  return code;
}

int64_t Dictionary::Lookup(std::string_view s) const {
  auto it = codes_.find(std::string(s));
  return it == codes_.end() ? -1 : it->second;
}

const std::string& Dictionary::Decode(int64_t code) const {
  IQRO_CHECK(code >= 0 && code < static_cast<int64_t>(strings_.size()));
  return strings_[static_cast<size_t>(code)];
}

}  // namespace iqro
