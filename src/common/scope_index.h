// ScopeSubsetIndex: an inverted index over packed RelSet keys answering the
// two queries batch seeding needs in O(affected), not O(memo):
//
//  * ForEachSupersetOf(scope): every entry whose key is a superset of
//    `scope` — the kCardinality seeding query ("which EPs mention all of
//    these relations"). Answered from per-relation posting lists: pick the
//    rarest relation in `scope`, scan only entries containing it, and keep
//    those passing the full RelIsSubset test. The scan length is the
//    smallest posting list, which for sparse scopes tracks the number of
//    affected entries rather than the index size.
//  * ForEachWithKey(key): every entry whose key equals `key` exactly — the
//    kScanCost seeding query (a base relation's scan cost changed; only the
//    singleton expression's property groups recompute). Answered from an
//    exact-key map in O(#matches).
//
// Both traversals return the number of entries *examined* (candidates
// tested, not just matches) so callers can expose a true scan-volume
// counter (OptMetrics::eps_scanned) and benches can assert the
// eps_scanned ≈ eps_seeded decoupling.
//
// Values are append-only between Clear() calls: the memo never physically
// removes an (expr, prop) pair (eviction flips it dormant but keeps the
// node, and dormant pairs still need seeding so stale collected state is
// physically evicted on the statistics change that invalidates it), so the
// index needs no per-entry erase — exactly the memo's own lifecycle.
// Entries with key == 0 (no relations) are reachable only via the
// degenerate scope 0, which falls back to a full scan of `all_`.
#ifndef IQRO_COMMON_SCOPE_INDEX_H_
#define IQRO_COMMON_SCOPE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/relset.h"

namespace iqro {

template <typename T>
class ScopeSubsetIndex {
 public:
  struct Entry {
    RelSet key;
    T value;
  };

  /// Registers `value` under `key`. Duplicate (key, value) inserts are the
  /// caller's responsibility to avoid (the memo inserts each pair once).
  void Insert(RelSet key, T value) {
    all_.push_back(Entry{key, value});
    RelForEach(key, [&](int r) { by_rel_[r].push_back(Entry{key, value}); });
    by_key_[key].push_back(value);
    posting_entries_ += static_cast<size_t>(RelCount(key));
  }

  void Clear() {
    all_.clear();
    for (auto& list : by_rel_) list.clear();
    by_key_.clear();
    posting_entries_ = 0;
  }

  size_t size() const { return all_.size(); }

  /// Approximate heap footprint, for memo residency accounting. O(1),
  /// size-based (callers sample it every round; capacity overshoot is
  /// bounded and this feeds an estimate already).
  size_t bytes() const {
    return (all_.size() + posting_entries_) * sizeof(Entry) +
           by_key_.size() * (sizeof(RelSet) + sizeof(void*) * 2 + sizeof(std::vector<T>)) +
           all_.size() * sizeof(T);
  }

  /// Entries a ForEachSupersetOf(scope) traversal would examine, without
  /// running it. Callers batching several queries use this to bound total
  /// scan volume up front (and fall back to one full scan when the sum
  /// exceeds size() — a batch of dense scopes would otherwise re-walk the
  /// same posting lists once per scope).
  int64_t SupersetScanCost(RelSet scope) const {
    if (scope == 0) return static_cast<int64_t>(all_.size());
    size_t shortest = all_.size();
    RelForEach(scope, [&](int r) { shortest = std::min(shortest, by_rel_[r].size()); });
    return static_cast<int64_t>(shortest);
  }

  /// Entries a ForEachWithKey(key) traversal would examine (== matches).
  int64_t ExactScanCost(RelSet key) const {
    auto it = by_key_.find(key);
    return it == by_key_.end() ? 0 : static_cast<int64_t>(it->second.size());
  }

  /// Calls `fn(value)` for every entry whose key is a superset of `scope`
  /// (scope == 0 matches everything). Returns the number of candidate
  /// entries examined.
  template <typename Fn>
  int64_t ForEachSupersetOf(RelSet scope, Fn&& fn) const {
    if (scope == 0) {
      for (const Entry& e : all_) fn(e.value);
      return static_cast<int64_t>(all_.size());
    }
    const std::vector<Entry>* shortest = nullptr;
    RelForEach(scope, [&](int r) {
      if (shortest == nullptr || by_rel_[r].size() < shortest->size()) {
        shortest = &by_rel_[r];
      }
    });
    for (const Entry& e : *shortest) {
      if (RelIsSubset(scope, e.key)) fn(e.value);
    }
    return static_cast<int64_t>(shortest->size());
  }

  /// Calls `fn(value)` for every entry whose key equals `key` exactly.
  /// Returns the number of entries examined (== matches).
  template <typename Fn>
  int64_t ForEachWithKey(RelSet key, Fn&& fn) const {
    auto it = by_key_.find(key);
    if (it == by_key_.end()) return 0;
    for (const T& v : it->second) fn(v);
    return static_cast<int64_t>(it->second.size());
  }

 private:
  std::vector<Entry> by_rel_[kMaxRelations];  // posting list per relation bit
  std::vector<Entry> all_;                    // every entry, insertion order
  std::unordered_map<RelSet, std::vector<T>> by_key_;  // exact-expression map
  size_t posting_entries_ = 0;  // sum of posting-list sizes, for bytes()
};

}  // namespace iqro

#endif  // IQRO_COMMON_SCOPE_INDEX_H_
