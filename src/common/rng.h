// Deterministic pseudo-random number generation for data generators and
// property tests. We avoid <random> distributions because their output is
// not reproducible across standard-library implementations.
#ifndef IQRO_COMMON_RNG_H_
#define IQRO_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace iqro {

/// xoshiro256** seeded via splitmix64; fast, high quality, reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();

  /// Uniform in [0, n).
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

/// Zipf(n, theta) sampler over {1..n}; theta = 0 is uniform. Uses the
/// standard Gray/Jim Gray et al. "quick" method with precomputed zeta terms,
/// matching the skewed TPC-D generator's distribution family.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Draws a value in [1, n].
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// Returns a random permutation of {0..n-1}.
std::vector<uint32_t> RandomPermutation(uint32_t n, Rng& rng);

}  // namespace iqro

#endif  // IQRO_COMMON_RNG_H_
