// String dictionary: all table cells are stored as int64_t; string-typed
// columns store dictionary codes. One dictionary is shared per catalog so
// codes are comparable across tables (equi-joins on strings just work).
#ifndef IQRO_COMMON_DICTIONARY_H_
#define IQRO_COMMON_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace iqro {

class Dictionary {
 public:
  /// Interns `s`, returning its stable code.
  int64_t Intern(std::string_view s);

  /// Returns the code for `s`, or -1 if never interned.
  int64_t Lookup(std::string_view s) const;

  /// Inverse of Intern. `code` must be valid.
  const std::string& Decode(int64_t code) const;

  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int64_t> codes_;
};

}  // namespace iqro

#endif  // IQRO_COMMON_DICTIONARY_H_
