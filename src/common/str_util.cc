#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace iqro {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string DoubleToString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace iqro
