// ThreadPool: the fixed-size worker pool behind the parallel ReoptSession
// flush (service/reopt_session.h) — and deliberately nothing more.
//
// Design constraints, in order:
//  * **Futures per task.** The flush dispatcher needs each per-query
//    fixpoint's result (seeded-EP count, per-flush OptMetrics deltas) back
//    on the coordinating thread, so Submit() returns a std::future of the
//    callable's result. Aggregation on the coordinator after joining the
//    futures is what keeps the session's per-flush metrics race-free.
//  * **Deterministic shutdown.** The destructor *drains*: every task that
//    Submit() accepted runs exactly once before the workers join. A flush
//    interrupted by session teardown therefore completes its dispatched
//    passes instead of dropping optimizers in a half-seeded state
//    (tests/concurrency_test.cpp pins this).
//  * **Fixed size, no growth.** Worker count is chosen once
//    (ReoptSessionOptions::worker_threads); there is no work stealing, no
//    resizing, no task priorities. Per-query fixpoints are coarse (tens to
//    hundreds of microseconds), so a mutex-guarded deque is nowhere near
//    the bottleneck — see bench_batch_churn's threads axis.
//
// Thread-safety: Submit() may be called from any thread, including from a
// worker (tasks are never executed inline, so a worker submitting and then
// blocking on its own future would deadlock a 1-thread pool — don't).
// Submitting after the destructor has begun is a programming error
// (checked).
#ifndef IQRO_COMMON_THREAD_POOL_H_
#define IQRO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace iqro {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    IQRO_CHECK(num_threads >= 1);
    threads_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Drains every accepted task, then joins all workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues `fn` and returns the future of its result. The future also
  /// transports exceptions, but engine code aborts on IQRO_CHECK rather
  /// than throwing — the transport exists for test callables.
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> Submit(F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> result = task.get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      IQRO_CHECK(!stopping_);
      // packaged_task<void()> accepts the move-only wrapper; std::function
      // would not (it requires copyable callables).
      tasks_.emplace_back([t = std::move(task)]() mutable { t(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Tasks accepted but not yet started (for tests; racy by nature).
  size_t QueuedTasks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ and fully drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace iqro

#endif  // IQRO_COMMON_THREAD_POOL_H_
