// RelSet: a set of base relations of one query, represented as a bitmask.
//
// Query expressions in the optimizer (the paper's `Expr` values) are sets of
// base relations: two relational-algebra expressions over the same relation
// set are logically equivalent up to join commutativity/associativity, which
// is exactly the equivalence the memo ("SearchSpace") groups by. A query may
// reference at most kMaxRelations relations (self-joins get distinct slots).
#ifndef IQRO_COMMON_RELSET_H_
#define IQRO_COMMON_RELSET_H_

#include <bit>
#include <cstdint>
#include <string>

namespace iqro {

using RelSet = uint32_t;

inline constexpr int kMaxRelations = 30;

/// Singleton set containing relation `i`.
constexpr RelSet RelSingleton(int i) { return RelSet{1} << i; }

/// Number of relations in the set.
constexpr int RelCount(RelSet s) { return std::popcount(s); }

constexpr bool RelContains(RelSet s, int i) { return (s >> i) & 1; }

/// True iff `sub` is a (non-strict) subset of `super`.
constexpr bool RelIsSubset(RelSet sub, RelSet super) { return (sub & super) == sub; }

constexpr bool RelDisjoint(RelSet a, RelSet b) { return (a & b) == 0; }

/// Index of the lowest relation in a non-empty set.
constexpr int RelLowest(RelSet s) { return std::countr_zero(s); }

/// Invokes `fn(int rel)` for every member of `s`, ascending.
template <typename Fn>
void RelForEach(RelSet s, Fn&& fn) {
  while (s != 0) {
    int i = std::countr_zero(s);
    fn(i);
    s &= s - 1;
  }
}

/// Invokes `fn(RelSet sub)` for every non-empty proper subset of `s` that
/// contains the lowest member of `s`. Each unordered 2-partition {sub, s\sub}
/// of `s` is therefore visited exactly once.
template <typename Fn>
void RelForEachHalfPartition(RelSet s, Fn&& fn) {
  const RelSet low = s & (~s + 1);
  // Enumerate submasks of s \ low and union `low` back in; skip the full set.
  const RelSet rest = s ^ low;
  for (RelSet sub = rest;; sub = (sub - 1) & rest) {
    RelSet left = sub | low;
    if (left != s) fn(left);
    if (sub == 0) break;
  }
}

/// "{0,2,3}" rendering for debugging.
inline std::string RelSetToString(RelSet s) {
  std::string out = "{";
  bool first = true;
  RelForEach(s, [&](int i) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace iqro

#endif  // IQRO_COMMON_RELSET_H_
