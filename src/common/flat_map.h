// FlatMap64: an open-addressing hash table specialized for 64-bit keys.
//
// The optimizer's hottest lookups are keyed by the packed (RelSet, PropId)
// pair — a uint64_t (see MakeEPKey) — and by small packed contribution keys.
// A std::unordered_map pays a node allocation per entry and a pointer chase
// per probe; this table stores control bytes and slots in two flat arrays,
// hashes with a single multiplication (Fibonacci hashing — RelSet bitmasks
// are dense in the low bits, so the high-bit mix matters), and probes
// linearly. Erase uses tombstones; rehash drops them. Values live inline in
// the slot array, so value *pointers are invalidated by rehash* — store
// arena pointers or indices when stability across inserts is needed.
#ifndef IQRO_COMMON_FLAT_MAP_H_
#define IQRO_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "common/check.h"

namespace iqro {

/// Multiplicative (Fibonacci) hash of a 64-bit key; mixes high bits down so
/// that power-of-two masking sees the full key.
inline uint64_t HashKey64(uint64_t key) {
  uint64_t h = key * 0x9E3779B97F4A7C15ull;
  return h ^ (h >> 32);
}

template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;

  FlatMap64(FlatMap64&& other) noexcept { MoveFrom(other); }
  FlatMap64& operator=(FlatMap64&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }
  FlatMap64(const FlatMap64&) = delete;
  FlatMap64& operator=(const FlatMap64&) = delete;

  ~FlatMap64() { Destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  /// Heap bytes held by the table itself (not by heap-owning values).
  size_t capacity_bytes() const { return capacity_ * (sizeof(Slot) + 1); }

  Value* Find(uint64_t key) {
    if (capacity_ == 0) return nullptr;
    const size_t mask = capacity_ - 1;
    size_t i = static_cast<size_t>(HashKey64(key)) & mask;
    while (true) {
      const uint8_t c = ctrl_[i];
      if (c == kEmpty) return nullptr;
      if (c == kFull && slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
  }

  const Value* Find(uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  /// Inserts `key` with a value constructed from `args` unless present.
  /// Returns {slot value pointer, inserted}. The pointer is valid until the
  /// next rehashing insert or erase of that key; lookup hits never rehash.
  template <typename... Args>
  std::pair<Value*, bool> TryEmplace(uint64_t key, Args&&... args) {
    if (capacity_ != 0) {
      // Probe first: a hit must never pay (or trigger) a rehash.
      const size_t mask = capacity_ - 1;
      size_t i = static_cast<size_t>(HashKey64(key)) & mask;
      size_t first_tombstone = kNoSlot;
      while (true) {
        const uint8_t c = ctrl_[i];
        if (c == kFull && slots_[i].key == key) return {&slots_[i].value, false};
        if (c == kTombstone && first_tombstone == kNoSlot) first_tombstone = i;
        if (c == kEmpty) break;
        i = (i + 1) & mask;
      }
      // Absent: insert in place while the load factor allows, reusing the
      // first tombstone on the probe path (erase-heavy workloads then stay
      // at a bounded load factor).
      if ((size_ + tombstones_ + 1) * 8 <= capacity_ * 7) {
        if (first_tombstone != kNoSlot) {
          i = first_tombstone;
          --tombstones_;
        }
        return {EmplaceAt(i, key, std::forward<Args>(args)...), true};
      }
    }
    // First allocation, or the table is at the load threshold. Grow only
    // when at least half the slots hold live entries; otherwise the table
    // is mostly tombstones and a same-size rehash (which drops them)
    // restores the load factor without inflating capacity.
    size_t new_capacity;
    if (capacity_ == 0) {
      new_capacity = kMinCapacity;
    } else if ((size_ + 1) * 2 > capacity_) {
      new_capacity = capacity_ * 2;
    } else {
      new_capacity = capacity_;
    }
    Rehash(new_capacity);
    // The key is known absent and the fresh table has no tombstones.
    const size_t mask = capacity_ - 1;
    size_t i = static_cast<size_t>(HashKey64(key)) & mask;
    while (ctrl_[i] != kEmpty) i = (i + 1) & mask;
    return {EmplaceAt(i, key, std::forward<Args>(args)...), true};
  }

  /// Convenience: operator[]-style access for default-constructible values.
  Value& GetOrDefault(uint64_t key) { return *TryEmplace(key).first; }

  bool Erase(uint64_t key) {
    if (capacity_ == 0) return false;
    const size_t mask = capacity_ - 1;
    size_t i = static_cast<size_t>(HashKey64(key)) & mask;
    while (true) {
      const uint8_t c = ctrl_[i];
      if (c == kEmpty) return false;
      if (c == kFull && slots_[i].key == key) {
        slots_[i].value.~Value();
        ctrl_[i] = kTombstone;
        --size_;
        ++tombstones_;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  void Clear() {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == kFull) slots_[i].value.~Value();
      ctrl_[i] = kEmpty;
    }
    size_ = 0;
    tombstones_ = 0;
  }

  void Reserve(size_t n) {
    size_t want = kMinCapacity;
    // Target load factor 7/8: grow until n fits.
    while (want * 7 < n * 8) want *= 2;
    if (want > capacity_) Rehash(want);
  }

  /// Visits every (key, value&) pair; iteration order is unspecified.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == kFull) fn(slots_[i].key, const_cast<const Value&>(slots_[i].value));
    }
  }

 private:
  struct Slot {
    uint64_t key;
    Value value;
  };

  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kTombstone = 1;
  static constexpr uint8_t kFull = 2;
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  template <typename... Args>
  Value* EmplaceAt(size_t i, uint64_t key, Args&&... args) {
    ctrl_[i] = kFull;
    new (&slots_[i].key) uint64_t(key);
    new (&slots_[i].value) Value(std::forward<Args>(args)...);
    ++size_;
    return &slots_[i].value;
  }

  void Rehash(size_t new_capacity) {
    IQRO_DCHECK((new_capacity & (new_capacity - 1)) == 0);
    uint8_t* old_ctrl = ctrl_;
    Slot* old_slots = slots_;
    const size_t old_capacity = capacity_;

    ctrl_ = new uint8_t[new_capacity]();
    slots_ = static_cast<Slot*>(::operator new[](new_capacity * sizeof(Slot),
                                                 std::align_val_t{alignof(Slot)}));
    capacity_ = new_capacity;
    tombstones_ = 0;
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_capacity; ++i) {
      if (old_ctrl[i] != kFull) continue;
      size_t j = static_cast<size_t>(HashKey64(old_slots[i].key)) & mask;
      while (ctrl_[j] != kEmpty) j = (j + 1) & mask;
      ctrl_[j] = kFull;
      new (&slots_[j].key) uint64_t(old_slots[i].key);
      new (&slots_[j].value) Value(std::move(old_slots[i].value));
      old_slots[i].value.~Value();
    }
    delete[] old_ctrl;
    ::operator delete[](old_slots, std::align_val_t{alignof(Slot)});
  }

  void Destroy() {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == kFull) slots_[i].value.~Value();
    }
    delete[] ctrl_;
    ::operator delete[](slots_, std::align_val_t{alignof(Slot)});
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = size_ = tombstones_ = 0;
  }

  void MoveFrom(FlatMap64& other) {
    ctrl_ = other.ctrl_;
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    size_ = other.size_;
    tombstones_ = other.tombstones_;
    other.ctrl_ = nullptr;
    other.slots_ = nullptr;
    other.capacity_ = other.size_ = other.tombstones_ = 0;
  }

  uint8_t* ctrl_ = nullptr;
  Slot* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace iqro

#endif  // IQRO_COMMON_FLAT_MAP_H_
