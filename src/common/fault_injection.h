// Deterministic fault injection for exercising failure paths.
//
// A fault point is a named site compiled into the code unconditionally:
//
//   IQRO_FAULT_POINT("reopt.fixpoint");
//
// Disarmed (the default, and the only state production code ever sees) a
// fault point costs one relaxed atomic load and a never-taken predicted
// branch — no lock, no string compare, no allocation. The self-test in
// tests/fault_injection_test.cpp bench-asserts that bound.
//
// A harness arms the injector with a site name, an action and a 1-based
// hit ordinal; the Nth time execution reaches that site the injector
// throws (InjectedFault or std::bad_alloc) or sleeps. Hit counting is
// global and deterministic for a deterministic execution, which is what
// lets the differential harness derive "fault at hit N of site S" from a
// scenario seed and replay it exactly.
//
// set_enabled(false) opens a window in which armed sites neither count
// nor fire — the harness uses it to confine hits to the primary world's
// flushes while oracle and mirror worlds run the very same code paths.
#ifndef IQRO_COMMON_FAULT_INJECTION_H_
#define IQRO_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace iqro {

/// Thrown by an armed fault point with Action::kThrow. Deliberately a
/// distinct type so tests can tell an injected failure from a real one.
struct InjectedFault : public std::runtime_error {
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

class FaultInjector {
 public:
  enum class Action : uint8_t {
    kThrow,     // throw InjectedFault
    kBadAlloc,  // throw std::bad_alloc (allocation-failure path)
    kDelay,     // sleep delay_micros, then continue
  };

  struct ArmSpec {
    std::string site;
    Action action = Action::kThrow;
    /// 1-based ordinal of the counted hit that fires. 1 == first hit.
    int64_t fire_at_hit = 1;
    /// 0: fire exactly once, at fire_at_hit. k > 0: also fire at every
    /// k-th hit after that (fire_at_hit, fire_at_hit + k, ...).
    int64_t period = 0;
    int delay_micros = 0;  // kDelay only
  };

  static FaultInjector& Instance();

  /// Hot-path guard: true iff at least one site is armed AND counting is
  /// enabled. Relaxed load — the only cost a disarmed build pays.
  static bool ArmedFast() { return armed_.load(std::memory_order_relaxed); }

  /// Slow path behind ArmedFast(): counts the hit and fires the action if
  /// an armed spec matches. May throw per the spec's Action.
  void OnHit(const char* site);

  /// Adds an armed site. Hit counts are NOT reset — arm everything before
  /// the run, or call DisarmAll() first.
  void Arm(ArmSpec spec);

  /// Removes every armed site and resets all hit counts and the fired
  /// counter. Leaves the injector enabled.
  void DisarmAll();

  /// Gates hit counting: while disabled, armed sites neither count nor
  /// fire. Lets a harness confine deterministic hit ordinals to one
  /// world's execution windows.
  void set_enabled(bool on);

  /// Hits counted so far for `site` (0 if never hit while enabled).
  int64_t hits(const std::string& site) const;

  /// Total number of times any armed action fired (kDelay included).
  int64_t fired() const;

 private:
  FaultInjector() = default;

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  std::vector<ArmSpec> specs_;
  std::vector<std::pair<std::string, int64_t>> hit_counts_;
  bool enabled_ = true;
  int64_t fired_ = 0;
};

/// RAII: arms one or more sites for a scope, disarms everything (and
/// resets hit counts) on exit — exception-safe cleanup for tests.
class ScopedFaultArm {
 public:
  explicit ScopedFaultArm(FaultInjector::ArmSpec spec) {
    FaultInjector::Instance().Arm(std::move(spec));
  }
  ScopedFaultArm(std::initializer_list<FaultInjector::ArmSpec> specs) {
    for (const auto& s : specs) FaultInjector::Instance().Arm(s);
  }
  ~ScopedFaultArm() { FaultInjector::Instance().DisarmAll(); }
  ScopedFaultArm(const ScopedFaultArm&) = delete;
  ScopedFaultArm& operator=(const ScopedFaultArm&) = delete;
};

/// RAII: enables hit counting for a scope, disables it on exit. Used to
/// open counting windows around exactly the code under fault test.
class ScopedFaultWindow {
 public:
  ScopedFaultWindow() { FaultInjector::Instance().set_enabled(true); }
  ~ScopedFaultWindow() { FaultInjector::Instance().set_enabled(false); }
  ScopedFaultWindow(const ScopedFaultWindow&) = delete;
  ScopedFaultWindow& operator=(const ScopedFaultWindow&) = delete;
};

}  // namespace iqro

/// A named injection site. Always compiled in; one relaxed atomic load
/// when disarmed.
#define IQRO_FAULT_POINT(site)                                      \
  do {                                                              \
    if (__builtin_expect(::iqro::FaultInjector::ArmedFast(), 0)) {  \
      ::iqro::FaultInjector::Instance().OnHit(site);                \
    }                                                               \
  } while (0)

#endif  // IQRO_COMMON_FAULT_INJECTION_H_
