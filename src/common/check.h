// Lightweight invariant-checking macros.
//
// IQRO_CHECK fires in all build types: internal invariants of the optimizer
// (reference counts, bound admissibility, delta bookkeeping) are cheap to
// test and catastrophic to violate silently, so we keep them on in Release.
// IQRO_DCHECK compiles out of Release builds and is used on hot paths.
#ifndef IQRO_COMMON_CHECK_H_
#define IQRO_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace iqro {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "IQRO_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace iqro

#define IQRO_CHECK(expr)                             \
  do {                                               \
    if (!(expr)) {                                   \
      ::iqro::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                \
  } while (0)

#define IQRO_CHECK_OP(a, op, b) IQRO_CHECK((a)op(b))

#ifdef NDEBUG
#define IQRO_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define IQRO_DCHECK(expr) IQRO_CHECK(expr)
#endif

#endif  // IQRO_COMMON_CHECK_H_
