// RingBuffer: a growable double-ended queue of trivially copyable PODs in
// one contiguous power-of-two array.
//
// The fixpoint worklist pushes and pops a 16-byte Task per delta; a
// std::deque pays block allocation, iterator arithmetic, and poor locality.
// This ring indexes with monotonically increasing head/tail counters masked
// by the capacity, so push/pop are a store/load plus an increment, and both
// FIFO (pop_front) and LIFO (pop_back) disciplines run on the same storage.
#ifndef IQRO_COMMON_RING_BUFFER_H_
#define IQRO_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "common/check.h"

namespace iqro {

template <typename T>
class RingBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit RingBuffer(size_t initial_capacity = 64) {
    size_t cap = 1;
    while (cap < initial_capacity) cap *= 2;
    // for_overwrite: slots are written before they are ever read.
    data_ = std::make_unique_for_overwrite<T[]>(cap);
    capacity_ = cap;
  }

  bool empty() const { return head_ == tail_; }
  size_t size() const { return static_cast<size_t>(tail_ - head_); }
  size_t capacity() const { return capacity_; }
  size_t capacity_bytes() const { return capacity_ * sizeof(T); }

  void push_back(const T& t) {
    if (size() == capacity_) Grow();
    data_[tail_ & (capacity_ - 1)] = t;
    ++tail_;
  }

  T pop_front() {
    IQRO_DCHECK(!empty());
    return data_[head_++ & (capacity_ - 1)];
  }

  T pop_back() {
    IQRO_DCHECK(!empty());
    --tail_;
    return data_[tail_ & (capacity_ - 1)];
  }

  void clear() { head_ = tail_ = 0; }

 private:
  void Grow() {
    const size_t new_cap = capacity_ * 2;
    auto fresh = std::make_unique_for_overwrite<T[]>(new_cap);
    const size_t n = size();
    for (size_t i = 0; i < n; ++i) {
      fresh[i] = data_[(head_ + i) & (capacity_ - 1)];
    }
    data_ = std::move(fresh);
    capacity_ = new_cap;
    head_ = 0;
    tail_ = n;
  }

  std::unique_ptr<T[]> data_;
  size_t capacity_ = 0;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
};

}  // namespace iqro

#endif  // IQRO_COMMON_RING_BUFFER_H_
