// Arena: a bump-pointer allocator with stable addresses.
//
// The delta fixpoint engine allocates one EPState per (expr, prop) pair and
// never frees individual nodes before the optimizer dies — the textbook
// arena workload. Blocks are chained and never move or shrink, so every
// returned pointer stays valid for the arena's lifetime (the memo and the
// parent-link graph hold raw EPState pointers across growth).
//
// The arena does NOT run destructors: the owner of non-trivially-destructible
// objects must destroy them explicitly before the arena is destroyed (see
// DeclarativeOptimizer::~DeclarativeOptimizer).
#ifndef IQRO_COMMON_ARENA_H_
#define IQRO_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"

namespace iqro {

class Arena {
 public:
  /// `first_block_bytes` is the payload size of the first block; subsequent
  /// blocks double geometrically up to `max_block_bytes`. Oversized requests
  /// get a dedicated block.
  explicit Arena(size_t first_block_bytes = 4096, size_t max_block_bytes = 1 << 20)
      : first_block_bytes_(first_block_bytes),
        next_block_bytes_(first_block_bytes),
        max_block_bytes_(max_block_bytes) {
    IQRO_CHECK(first_block_bytes > 0 && max_block_bytes >= first_block_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation; never returns nullptr (aborts on OOM via new).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    IQRO_DCHECK(align > 0 && (align & (align - 1)) == 0);
    uintptr_t p = (cursor_ + (align - 1)) & ~(static_cast<uintptr_t>(align) - 1);
    if (p + bytes > limit_) {
      AddBlock(bytes + align);
      p = (cursor_ + (align - 1)) & ~(static_cast<uintptr_t>(align) - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a T in the arena. The caller is responsible for running ~T()
  /// if T is not trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Payload bytes handed out to callers (excludes alignment waste).
  size_t bytes_used() const { return bytes_used_; }

  /// Total block bytes reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }

  size_t num_blocks() const { return blocks_.size(); }

  /// Releases every block back to the heap and restores the growth schedule
  /// to its construction state. Invalidates every pointer the arena ever
  /// returned; as with destruction, the owner must have destroyed any
  /// non-trivially-destructible objects first. Used by the optimizer's
  /// teardown path so a quarantined query does not pin its old memo.
  void Reset() {
    blocks_.clear();
    cursor_ = 0;
    limit_ = 0;
    next_block_bytes_ = first_block_bytes_;
    bytes_used_ = 0;
    bytes_reserved_ = 0;
  }

 private:
  void AddBlock(size_t min_bytes) {
    size_t block_bytes = next_block_bytes_;
    if (block_bytes < min_bytes) block_bytes = min_bytes;
    if (next_block_bytes_ < max_block_bytes_) {
      next_block_bytes_ = std::min(next_block_bytes_ * 2, max_block_bytes_);
    }
    // for_overwrite: the bump allocator hands out raw storage; zero-filling
    // megabyte blocks up front would be pure waste on the allocation path.
    blocks_.push_back(std::make_unique_for_overwrite<char[]>(block_bytes));
    bytes_reserved_ += block_bytes;
    cursor_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + block_bytes;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t first_block_bytes_;
  size_t next_block_bytes_;
  size_t max_block_bytes_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace iqro

#endif  // IQRO_COMMON_ARENA_H_
