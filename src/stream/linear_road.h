// Linear-Road-like car-location stream generator (substitute for the
// Linear Road benchmark data generator [3]; see DESIGN.md §4). Emits
// position reports whose expressway/segment hot spots drift over time, so
// the best plan for windowed join queries changes across stream slices —
// the property the paper's adaptive experiments (§5.4) rely on.
#ifndef IQRO_STREAM_LINEAR_ROAD_H_
#define IQRO_STREAM_LINEAR_ROAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace iqro {

struct CarLocEvent {
  int64_t time = 0;    // seconds
  int64_t carid = 0;
  int64_t expway = 0;
  int64_t dir = 0;     // 0 or 1
  int64_t seg = 0;     // 0..99
  int64_t xpos = 0;    // position within segment
  int64_t speed = 0;
};

struct LinearRoadConfig {
  int num_expressways = 4;
  int num_segments = 100;
  int num_cars = 2000;
  int events_per_second = 500;
  /// The congestion hot spot rotates to a new expressway/segment range
  /// every `drift_period` seconds — this is what forces plan changes.
  int drift_period = 5;
  double zipf_theta = 0.9;
  uint64_t seed = 7;
};

class LinearRoadGenerator {
 public:
  explicit LinearRoadGenerator(LinearRoadConfig config);

  /// Events of second `t` (exactly events_per_second of them).
  std::vector<CarLocEvent> Second(int64_t t);

  /// Convenience: all events in [0, duration).
  std::vector<CarLocEvent> Generate(int64_t duration_seconds);

  const LinearRoadConfig& config() const { return config_; }

 private:
  LinearRoadConfig config_;
  Rng rng_;
  ZipfGenerator seg_zipf_;
  ZipfGenerator car_zipf_;
};

}  // namespace iqro

#endif  // IQRO_STREAM_LINEAR_ROAD_H_
