// Sliding windows over the car-location stream, materialized as catalog
// tables so the stored-data executor runs unchanged over stream state —
// the data-partitioned execution model of [15] the paper plugs its
// re-optimizer into: windows persist across slices, each slice is executed
// as a batch over the current window contents.
#ifndef IQRO_STREAM_WINDOW_H_
#define IQRO_STREAM_WINDOW_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "query/query_spec.h"
#include "stats/stats_registry.h"
#include "stream/linear_road.h"

namespace iqro {

/// Columns of every materialized car-location window table. `esd` packs
/// (expway, dir, seg) into one value so multi-column partitioning reduces
/// to a single partition column.
Schema CarLocSchema(const std::string& table_name);

/// Converts an event to a row of CarLocSchema.
std::vector<int64_t> CarLocRow(const CarLocEvent& e);

class SlidingWindow {
 public:
  SlidingWindow(WindowSpec spec, Table* table);

  /// Inserts a batch of events, evicts per the window spec, and
  /// re-materializes the backing table (indexes rebuilt).
  void Advance(const std::vector<CarLocEvent>& batch, int64_t now);

  int64_t size() const { return static_cast<int64_t>(rows_.size()); }
  const Table& table() const { return *table_; }

 private:
  void Rematerialize();

  WindowSpec spec_;
  Table* table_;
  std::deque<std::vector<int64_t>> rows_;  // insertion order
  // For tuple-based partitioned windows: per-partition row counts.
  std::unordered_map<int64_t, std::deque<size_t>> partition_rows_;
};

/// Feeds the windows' current cardinalities into a StatsRegistry as
/// base-row updates: relation r reads windows[r], floored at one row (the
/// optimizer's zero-information default), with exact no-ops skipped so the
/// coalescer only ever sees real deltas. This is the registry-facing half
/// of AdaptiveStreamProcessor::RefreshWindowStatistics, split out so a
/// ReoptSession-driven stream pipeline (the sustained-churn driver in
/// bench_adversarial) refreshes statistics exactly the way the AQP loop
/// does. Returns the number of mutations recorded.
int FeedWindowCardinalities(const std::vector<std::unique_ptr<SlidingWindow>>& windows,
                            StatsRegistry* registry);

}  // namespace iqro

#endif  // IQRO_STREAM_WINDOW_H_
