// SegTollS: the paper's largest Linear Road query (Table 2), unfolded into
// a five-way windowed self-join with a windowed distinct-count aggregate.
// Window references:
//   r1 = CarLocStr [size 300 time]
//   r2 = CarLocStr [size 1 tuple partition by (expway,dir,seg)]
//   r3 = CarLocStr [size 1 tuple partition by carid]
//   r4 = CarLocStr [size 30 time]
//   r5 = CarLocStr [size 4 tuple partition by carid]
// Multi-column partitioning uses the packed `esd` column; the paper's
// banded segment predicate (r3.seg-10 < r2.seg < r3.seg) is represented by
// its dominant half (r2.seg < r3.seg) since join predicates relate plain
// columns — DESIGN.md records the substitution.
#ifndef IQRO_STREAM_SEGTOLL_H_
#define IQRO_STREAM_SEGTOLL_H_

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "query/query_spec.h"
#include "stream/window.h"

namespace iqro {

/// The five window tables + windows + query of SegTollS, wired over a
/// dedicated scratch catalog.
struct SegTollSetup {
  Catalog catalog;
  std::vector<std::unique_ptr<SlidingWindow>> windows;  // one per relation slot
  QuerySpec query;

  /// Feeds one batch of events (all five windows see the same stream).
  void Advance(const std::vector<CarLocEvent>& batch, int64_t now);
};

std::unique_ptr<SegTollSetup> MakeSegTollS();

}  // namespace iqro

#endif  // IQRO_STREAM_SEGTOLL_H_
