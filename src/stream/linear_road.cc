#include "stream/linear_road.h"

#include <cstddef>

namespace iqro {

LinearRoadGenerator::LinearRoadGenerator(LinearRoadConfig config)
    : config_(config),
      rng_(config.seed),
      seg_zipf_(static_cast<uint64_t>(config.num_segments), config.zipf_theta),
      car_zipf_(static_cast<uint64_t>(config.num_cars), config.zipf_theta) {}

std::vector<CarLocEvent> LinearRoadGenerator::Second(int64_t t) {
  std::vector<CarLocEvent> out;
  out.reserve(static_cast<size_t>(config_.events_per_second));
  // The hot spot rotates with the drift phase: both the hot expressway and
  // the hot segment range move, and the set of active cars shifts.
  const int64_t phase = t / config_.drift_period;
  const int hot_expway = static_cast<int>(phase % config_.num_expressways);
  const int seg_offset =
      static_cast<int>((phase * 37) % static_cast<int64_t>(config_.num_segments));
  const int car_offset =
      static_cast<int>((phase * 613) % static_cast<int64_t>(config_.num_cars));
  for (int i = 0; i < config_.events_per_second; ++i) {
    CarLocEvent e;
    e.time = t;
    e.carid = static_cast<int64_t>(
        (car_zipf_.Sample(rng_) - 1 + static_cast<uint64_t>(car_offset)) %
        static_cast<uint64_t>(config_.num_cars));
    // 70% of traffic is on the hot expressway during this phase.
    e.expway = rng_.NextBool(0.7)
                   ? hot_expway
                   : rng_.NextInRange(0, config_.num_expressways - 1);
    e.dir = rng_.NextBool(0.5) ? 0 : 1;
    e.seg = static_cast<int64_t>(
        (seg_zipf_.Sample(rng_) - 1 + static_cast<uint64_t>(seg_offset)) %
        static_cast<uint64_t>(config_.num_segments));
    e.xpos = rng_.NextInRange(0, 5279);
    e.speed = rng_.NextInRange(0, 100);
    out.push_back(e);
  }
  return out;
}

std::vector<CarLocEvent> LinearRoadGenerator::Generate(int64_t duration_seconds) {
  std::vector<CarLocEvent> out;
  out.reserve(static_cast<size_t>(duration_seconds * config_.events_per_second));
  for (int64_t t = 0; t < duration_seconds; ++t) {
    auto sec = Second(t);
    out.insert(out.end(), sec.begin(), sec.end());
  }
  return out;
}

}  // namespace iqro
