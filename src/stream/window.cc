#include "stream/window.h"

#include <algorithm>

#include "common/check.h"

namespace iqro {

namespace {
constexpr int kTimeCol = 0;
}

Schema CarLocSchema(const std::string& table_name) {
  Schema s;
  s.name = table_name;
  s.columns = {{"time", ColumnType::kInt},  {"carid", ColumnType::kInt},
               {"expway", ColumnType::kInt}, {"dir", ColumnType::kInt},
               {"seg", ColumnType::kInt},    {"xpos", ColumnType::kInt},
               {"speed", ColumnType::kInt},  {"esd", ColumnType::kInt}};
  return s;
}

std::vector<int64_t> CarLocRow(const CarLocEvent& e) {
  return {e.time, e.carid, e.expway, e.dir,
          e.seg,  e.xpos,  e.speed,  e.expway * 100000 + e.dir * 10000 + e.seg};
}

SlidingWindow::SlidingWindow(WindowSpec spec, Table* table) : spec_(spec), table_(table) {
  IQRO_CHECK(spec_.kind != WindowSpec::Kind::kNone);
}

void SlidingWindow::Advance(const std::vector<CarLocEvent>& batch, int64_t now) {
  for (const CarLocEvent& e : batch) rows_.push_back(CarLocRow(e));

  if (spec_.kind == WindowSpec::Kind::kTime) {
    const int64_t horizon = now - spec_.size;
    while (!rows_.empty() && rows_.front()[kTimeCol] <= horizon) rows_.pop_front();
  } else {
    // Tuple-based: keep the newest `size` rows (per partition if set).
    if (spec_.partition_col >= 0) {
      std::unordered_map<int64_t, int64_t> keep;
      std::vector<std::vector<int64_t>> survivors;
      survivors.reserve(rows_.size());
      for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
        int64_t key = (*it)[static_cast<size_t>(spec_.partition_col)];
        if (keep[key] < spec_.size) {
          ++keep[key];
          survivors.push_back(std::move(*it));
        }
      }
      rows_.assign(std::make_move_iterator(survivors.rbegin()),
                   std::make_move_iterator(survivors.rend()));
    } else {
      while (static_cast<int64_t>(rows_.size()) > spec_.size) rows_.pop_front();
    }
  }
  Rematerialize();
}

void SlidingWindow::Rematerialize() {
  table_->Clear();
  for (const auto& row : rows_) table_->AppendRow(row);
}

int FeedWindowCardinalities(const std::vector<std::unique_ptr<SlidingWindow>>& windows,
                            StatsRegistry* registry) {
  IQRO_CHECK(registry != nullptr);
  int recorded = 0;
  for (size_t r = 0; r < windows.size(); ++r) {
    const double rows = std::max<double>(1.0, windows[r]->table().num_rows());
    if (rows != registry->base_rows(static_cast<int>(r))) {
      registry->SetBaseRows(static_cast<int>(r), rows);
      ++recorded;
    }
  }
  return recorded;
}

}  // namespace iqro
