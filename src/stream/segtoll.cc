#include "stream/segtoll.h"

#include "common/check.h"
#include "query/query_builder.h"

namespace iqro {

void SegTollSetup::Advance(const std::vector<CarLocEvent>& batch, int64_t now) {
  for (auto& w : windows) w->Advance(batch, now);
}

std::unique_ptr<SegTollSetup> MakeSegTollS() {
  auto setup = std::make_unique<SegTollSetup>();

  struct WindowDef {
    const char* name;
    WindowSpec spec;
  };
  Schema probe = CarLocSchema("w");
  const int esd_col = probe.ColumnIndex("esd");
  const int carid_col = probe.ColumnIndex("carid");
  const WindowDef defs[] = {
      {"w1", {WindowSpec::Kind::kTime, 300, -1}},
      {"w2", {WindowSpec::Kind::kTuples, 1, esd_col}},
      {"w3", {WindowSpec::Kind::kTuples, 1, carid_col}},
      {"w4", {WindowSpec::Kind::kTime, 30, -1}},
      {"w5", {WindowSpec::Kind::kTuples, 4, carid_col}},
  };
  for (const WindowDef& d : defs) {
    TableId id = setup->catalog.CreateTable(CarLocSchema(d.name));
    Table& t = setup->catalog.table(id);
    // Hash indexes on the join columns keep index-NL joins available on
    // window state; AppendRow maintains them across re-materializations.
    for (const char* col : {"carid", "expway", "esd"}) {
      t.BuildIndex(t.schema().ColumnIndex(col));
    }
    setup->windows.push_back(std::make_unique<SlidingWindow>(d.spec, &t));
  }

  QueryBuilder b("SegTollS", &setup->catalog);
  b.AddWindowedRelation("w1", "r1", defs[0].spec);
  b.AddWindowedRelation("w2", "r2", defs[1].spec);
  b.AddWindowedRelation("w3", "r3", defs[2].spec);
  b.AddWindowedRelation("w4", "r4", defs[3].spec);
  b.AddWindowedRelation("w5", "r5", defs[4].spec);
  // r2-r3: same expressway, upstream segment (banded predicate simplified).
  b.Join("r2", "expway", "r3", "expway");
  b.Join("r2", "seg", "r3", "seg", PredOp::kLt);
  // r3-r4, r3-r5: same car.
  b.Join("r3", "carid", "r4", "carid");
  b.Join("r3", "carid", "r5", "carid");
  // r1-r2: same (expressway, direction, segment) — via the packed column.
  b.Join("r1", "esd", "r2", "esd");
  b.Filter("r2", "dir", PredOp::kEq, 0);
  b.Filter("r3", "dir", PredOp::kEq, 0);
  b.GroupBy("r2", "expway").GroupBy("r2", "dir").GroupBy("r2", "seg").GroupBy("r5", "carid");
  b.Aggregate(AggFn::kCountDistinct, "r5", "xpos");
  setup->query = b.Build();
  IQRO_CHECK(setup->query.num_relations() == 5);
  return setup;
}

}  // namespace iqro
