#include "catalog/catalog.h"

#include "common/check.h"

namespace iqro {

TableId Catalog::CreateTable(Schema schema) {
  IQRO_CHECK(!HasTable(schema.name));
  TableId id = static_cast<TableId>(tables_.size());
  by_name_.emplace(schema.name, id);
  tables_.push_back(std::make_unique<Table>(std::move(schema)));
  return id;
}

TableId Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

Table& Catalog::table(TableId id) {
  IQRO_CHECK(id >= 0 && id < num_tables());
  return *tables_[static_cast<size_t>(id)];
}

const Table& Catalog::table(TableId id) const {
  IQRO_CHECK(id >= 0 && id < num_tables());
  return *tables_[static_cast<size_t>(id)];
}

Table& Catalog::table(const std::string& name) {
  TableId id = FindTable(name);
  IQRO_CHECK(id >= 0);
  return table(id);
}

const Table& Catalog::table(const std::string& name) const {
  TableId id = FindTable(name);
  IQRO_CHECK(id >= 0);
  return table(id);
}

}  // namespace iqro
