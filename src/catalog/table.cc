#include "catalog/table.h"

#include <algorithm>
#include <numeric>

namespace iqro {

int Schema::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {}

void Table::AppendRow(std::span<const int64_t> row) {
  IQRO_DCHECK(static_cast<int>(row.size()) == num_columns());
  data_.insert(data_.end(), row.begin(), row.end());
  for (auto& idx : indexes_) idx.Insert(row[static_cast<size_t>(idx.column())], num_rows_);
  ++num_rows_;
}

void Table::SetClusteredOn(int column) {
  IQRO_CHECK(column >= 0 && column < num_columns());
#ifndef NDEBUG
  for (uint32_t r = 1; r < num_rows_; ++r) {
    IQRO_DCHECK(At(r - 1, column) <= At(r, column));
  }
#endif
  clustered_on_ = column;
}

void Table::BuildIndex(int column) {
  IQRO_CHECK(column >= 0 && column < num_columns());
  for (auto& idx : indexes_) {
    if (idx.column() == column) {
      idx.Clear();
      for (uint32_t r = 0; r < num_rows_; ++r) idx.Insert(At(r, column), r);
      return;
    }
  }
  indexes_.emplace_back(column);
  for (uint32_t r = 0; r < num_rows_; ++r) indexes_.back().Insert(At(r, column), r);
}

bool Table::HasIndex(int column) const { return GetIndex(column) != nullptr; }

const HashIndex* Table::GetIndex(int column) const {
  for (const auto& idx : indexes_) {
    if (idx.column() == column) return &idx;
  }
  return nullptr;
}

void Table::SortBy(int column) {
  IQRO_CHECK(column >= 0 && column < num_columns());
  std::vector<uint32_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return At(a, column) < At(b, column); });
  std::vector<int64_t> sorted;
  sorted.reserve(data_.size());
  for (uint32_t r : order) {
    auto row = Row(r);
    sorted.insert(sorted.end(), row.begin(), row.end());
  }
  data_ = std::move(sorted);
  clustered_on_ = column;
  for (auto& idx : indexes_) {
    int c = idx.column();
    idx.Clear();
    for (uint32_t r = 0; r < num_rows_; ++r) idx.Insert(At(r, c), r);
  }
}

void Table::Clear() {
  data_.clear();
  num_rows_ = 0;
  for (auto& idx : indexes_) idx.Clear();
}

}  // namespace iqro
