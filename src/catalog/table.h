// Row-oriented table storage with optional hash indexes and a clustering
// (sort) column. All cells are int64_t; string columns hold dictionary
// codes, date columns hold day numbers.
#ifndef IQRO_CATALOG_TABLE_H_
#define IQRO_CATALOG_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace iqro {

enum class ColumnType : uint8_t {
  kInt,
  kString,  // dictionary code
  kDate,    // days since epoch
};

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
};

struct Schema {
  std::string name;
  std::vector<ColumnDef> columns;

  /// Returns the index of `column_name`, or -1.
  int ColumnIndex(const std::string& column_name) const;
};

/// A secondary hash index over one column: value -> row ids.
class HashIndex {
 public:
  explicit HashIndex(int column) : column_(column) {}

  int column() const { return column_; }

  void Insert(int64_t key, uint32_t row) { rows_[key].push_back(row); }

  /// Row ids matching `key`; empty span if none.
  std::span<const uint32_t> Probe(int64_t key) const {
    auto it = rows_.find(key);
    if (it == rows_.end()) return {};
    return it->second;
  }

  void Clear() { rows_.clear(); }

 private:
  int column_;
  std::unordered_map<int64_t, std::vector<uint32_t>> rows_;
};

class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(schema_.columns.size()); }
  uint32_t num_rows() const { return num_rows_; }

  /// Appends one row; `row.size()` must equal num_columns().
  void AppendRow(std::span<const int64_t> row);

  int64_t At(uint32_t row, int col) const {
    IQRO_DCHECK(row < num_rows_);
    return data_[static_cast<size_t>(row) * static_cast<size_t>(num_columns()) +
                 static_cast<size_t>(col)];
  }

  std::span<const int64_t> Row(uint32_t row) const {
    return {data_.data() + static_cast<size_t>(row) * static_cast<size_t>(num_columns()),
            static_cast<size_t>(num_columns())};
  }

  /// Declares the table physically sorted on `column` (clustered storage).
  /// Call after loading; verifies the order in debug builds.
  void SetClusteredOn(int column);
  int clustered_on() const { return clustered_on_; }

  /// Builds (or rebuilds) a hash index on `column`.
  void BuildIndex(int column);
  bool HasIndex(int column) const;
  const HashIndex* GetIndex(int column) const;

  /// Sorts the stored rows by `column` ascending (stable), then marks the
  /// table clustered on it. Indexes are rebuilt.
  void SortBy(int column);

  void Clear();

 private:
  Schema schema_;
  std::vector<int64_t> data_;  // row-major
  uint32_t num_rows_ = 0;
  int clustered_on_ = -1;
  std::vector<HashIndex> indexes_;
};

}  // namespace iqro

#endif  // IQRO_CATALOG_TABLE_H_
