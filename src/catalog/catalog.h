// Catalog: named tables + the shared string dictionary.
#ifndef IQRO_CATALOG_CATALOG_H_
#define IQRO_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/dictionary.h"

namespace iqro {

using TableId = int32_t;

class Catalog {
 public:
  /// Creates an empty table with `schema`; the name must be unused.
  TableId CreateTable(Schema schema);

  TableId FindTable(const std::string& name) const;  // -1 if absent
  bool HasTable(const std::string& name) const { return FindTable(name) >= 0; }

  Table& table(TableId id);
  const Table& table(TableId id) const;
  Table& table(const std::string& name);
  const Table& table(const std::string& name) const;

  int num_tables() const { return static_cast<int>(tables_.size()); }

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> by_name_;
  Dictionary dict_;
};

}  // namespace iqro

#endif  // IQRO_CATALOG_CATALOG_H_
