#include "aqp/adaptive.h"

#include <chrono>

#include "common/check.h"
#include "exec/feedback.h"
#include "query/bind_stats.h"

namespace iqro {

namespace {
double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

AdaptiveStreamProcessor::AdaptiveStreamProcessor(SegTollSetup* setup, AqpOptions options)
    : setup_(setup), options_(options) {
  graph_ = std::make_unique<JoinGraph>(setup_->query);
  // "Zero statistical information" start (§5.4): bind against the (empty)
  // windows; defaults apply everywhere.
  BindStats(setup_->query, CollectCatalogStats(setup_->catalog), &registry_);
  registry_.Freeze();
  summaries_ = std::make_unique<SummaryCalculator>(&registry_);
  cost_model_ = std::make_unique<CostModel>(summaries_.get());
  enumerator_ = std::make_unique<PlanEnumerator>(&setup_->query, graph_.get(),
                                                 &setup_->catalog, &props_);
  optimizer_ = std::make_unique<DeclarativeOptimizer>(enumerator_.get(), cost_model_.get(),
                                                      &registry_, options_.optimizer_options);
}

AdaptiveStreamProcessor::~AdaptiveStreamProcessor() = default;

void AdaptiveStreamProcessor::SetFixedPlan(std::unique_ptr<PlanTree> plan) {
  IQRO_CHECK(options_.reopt == AqpOptions::ReoptMode::kNone);
  current_plan_ = std::move(plan);
}

void AdaptiveStreamProcessor::RefreshWindowStatistics() {
  // Window cardinalities are known exactly at a split point; local
  // predicate selectivities are re-estimated from the live window.
  for (int r = 0; r < setup_->query.num_relations(); ++r) {
    const Table& t = setup_->windows[static_cast<size_t>(r)]->table();
    const double rows = std::max<double>(1.0, t.num_rows());
    if (rows != registry_.base_rows(r)) registry_.SetBaseRows(r, rows);
    const auto locals = setup_->query.LocalsOf(r);
    if (!locals.empty() && t.num_rows() > 0) {
      int64_t pass = 0;
      Layout layout(RelSingleton(r), setup_->query, setup_->catalog);
      Row row;
      for (uint32_t i = 0; i < t.num_rows(); ++i) {
        auto stored = t.Row(i);
        row.assign(stored.begin(), stored.end());
        bool ok = true;
        for (const auto& p : locals) {
          if (!EvalLocalPredicate(p, row, layout)) {
            ok = false;
            break;
          }
        }
        if (ok) ++pass;
      }
      double sel = std::max(1e-6, static_cast<double>(pass) / static_cast<double>(rows));
      if (std::abs(sel - registry_.local_selectivity(r)) > 1e-9) {
        registry_.SetLocalSelectivity(r, sel);
      }
    }
  }
}

SliceReport AdaptiveStreamProcessor::ProcessSlice(const std::vector<CarLocEvent>& batch,
                                                  int64_t now) {
  SliceReport report;
  report.slice = slice_count_;

  setup_->Advance(batch, now);
  RefreshWindowStatistics();
  for (const auto& w : setup_->windows) report.window_rows += w->size();

  // ---- re-optimization at the split point ----
  auto reopt_start = std::chrono::steady_clock::now();
  std::unique_ptr<PlanTree> new_plan;
  switch (options_.reopt) {
    case AqpOptions::ReoptMode::kIncremental: {
      if (slice_count_ == 0) {
        optimizer_->Optimize();
      } else {
        optimizer_->Reoptimize();
      }
      new_plan = optimizer_->GetBestPlan();
      report.touched_eps = optimizer_->metrics().round_touched_eps;
      break;
    }
    case AqpOptions::ReoptMode::kScratch: {
      registry_.TakePending();  // a full re-optimization consumes all deltas
      VolcanoOptimizer volcano(enumerator_.get(), cost_model_.get());
      volcano.Optimize();
      new_plan = volcano.GetBestPlan();
      break;
    }
    case AqpOptions::ReoptMode::kScratchDeclarative: {
      registry_.TakePending();
      DeclarativeOptimizer fresh(enumerator_.get(), cost_model_.get(), &registry_,
                                 options_.optimizer_options);
      fresh.Optimize();
      new_plan = fresh.GetBestPlan();
      break;
    }
    case AqpOptions::ReoptMode::kNone: {
      registry_.TakePending();
      IQRO_CHECK(current_plan_ != nullptr);  // SetFixedPlan first
      break;
    }
  }
  report.reopt_ms = ElapsedMs(reopt_start);

  if (new_plan != nullptr) {
    report.plan_changed =
        current_plan_ == nullptr || !new_plan->SameShape(*current_plan_);
    // Plan switch: window state carries over; per-plan operator state is
    // rebuilt by the slice executor ([26]-style migration by rebuild).
    current_plan_ = std::move(new_plan);
  }
  report.estimated_cost = current_plan_->cost;

  // ---- execute the slice over the current windows ----
  auto exec_start = std::chrono::steady_clock::now();
  Executor executor(&setup_->catalog, &setup_->query, graph_.get(), &props_);
  ExecutionResult result = executor.Execute(*current_plan_, /*collect_rows=*/false);
  report.exec_ms = ElapsedMs(exec_start);
  report.output_rows = result.root_rows;

  // ---- statistics feedback for the next split point ----
  const double blend =
      options_.cumulative_stats ? 1.0 / static_cast<double>(slice_count_ + 1) : 1.0;
  ApplyObservedCardinalities(result.observed, &registry_, blend,
                             options_.feedback_deadband);

  ++slice_count_;
  return report;
}

}  // namespace iqro
