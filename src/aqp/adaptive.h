// AdaptiveStreamProcessor: the cost-based adaptive query processing loop of
// §5.4 — the data-partitioned model of [15]: execution pauses at slice
// boundaries ("split points"), runtime statistics feed the optimizer, and
// the plan may change for the next slice. Window state persists across
// plan switches ([26]-style migration: windows carry over, join hash state
// is rebuilt for the new plan — see DESIGN.md §4).
//
// The re-optimizer inside the loop is pluggable: the paper's incremental
// declarative optimizer, a from-scratch procedural optimizer (the
// "Tukwila-style non-incremental" baseline of Fig. 9), or none (the static
// good/bad plans of Fig. 10).
#ifndef IQRO_AQP_ADAPTIVE_H_
#define IQRO_AQP_ADAPTIVE_H_

#include <memory>
#include <vector>

#include "baseline/volcano.h"
#include "core/declarative_optimizer.h"
#include "exec/executor.h"
#include "stream/segtoll.h"
#include "workload/context.h"

namespace iqro {

struct AqpOptions {
  enum class ReoptMode {
    kIncremental,         // persistent DeclarativeOptimizer + Reoptimize()
    kScratch,             // fresh Volcano optimization every slice
    kScratchDeclarative,  // fresh declarative optimization every slice
                          // (isolates incrementality from engine constants)
    kNone,                // fixed plan (set via SetFixedPlan)
  };
  ReoptMode reopt = ReoptMode::kIncremental;
  /// Cumulative statistics average observations over all slices; non-
  /// cumulative snaps to the latest slice (Fig. 10's two AQP variants).
  bool cumulative_stats = true;
  /// Relative feedback corrections below this threshold are ignored —
  /// converged statistics stop producing optimizer deltas entirely.
  double feedback_deadband = 0.02;
  OptimizerOptions optimizer_options = OptimizerOptions::Default();
};

struct SliceReport {
  int64_t slice = 0;
  double reopt_ms = 0;      // time spent producing this slice's plan
  double exec_ms = 0;       // time spent executing the slice
  int64_t output_rows = 0;
  int64_t window_rows = 0;  // total rows across the five windows
  bool plan_changed = false;
  double estimated_cost = 0;
  int64_t touched_eps = 0;  // incremental mode: state touched by the re-opt
};

class AdaptiveStreamProcessor {
 public:
  AdaptiveStreamProcessor(SegTollSetup* setup, AqpOptions options);
  ~AdaptiveStreamProcessor();

  /// Fixes the executed plan (ReoptMode::kNone). The plan must come from a
  /// processor over the same query (e.g. a prior adaptive run).
  void SetFixedPlan(std::unique_ptr<PlanTree> plan);

  /// Ingests one slice of events ending at logical time `now`, produces
  /// the slice's plan per the re-optimization mode, executes it over the
  /// current windows, and feeds observed statistics back.
  SliceReport ProcessSlice(const std::vector<CarLocEvent>& batch, int64_t now);

  const PlanTree* current_plan() const { return current_plan_.get(); }
  const DeclarativeOptimizer* optimizer() const { return optimizer_.get(); }
  StatsRegistry& registry() { return registry_; }
  const PropTable& props() const { return props_; }

 private:
  void RefreshWindowStatistics();

  SegTollSetup* setup_;
  AqpOptions options_;
  std::unique_ptr<JoinGraph> graph_;
  StatsRegistry registry_;
  std::unique_ptr<SummaryCalculator> summaries_;
  std::unique_ptr<CostModel> cost_model_;
  PropTable props_;
  std::unique_ptr<PlanEnumerator> enumerator_;
  std::unique_ptr<DeclarativeOptimizer> optimizer_;
  std::unique_ptr<PlanTree> current_plan_;
  int64_t slice_count_ = 0;
};

}  // namespace iqro

#endif  // IQRO_AQP_ADAPTIVE_H_
