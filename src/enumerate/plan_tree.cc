#include "enumerate/plan_tree.h"

#include "common/check.h"
#include "common/str_util.h"

namespace iqro {

bool PlanTree::SameShape(const PlanTree& other) const {
  if (expr != other.expr || prop != other.prop || !(alt == other.alt)) return false;
  if ((left == nullptr) != (other.left == nullptr)) return false;
  if ((right == nullptr) != (other.right == nullptr)) return false;
  if (left != nullptr && !left->SameShape(*other.left)) return false;
  if (right != nullptr && !right->SameShape(*other.right)) return false;
  return true;
}

namespace {
void Render(const PlanTree& node, const QuerySpec& query, const PropTable& props, int depth,
            std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  std::string rels;
  RelForEach(node.expr, [&](int r) {
    if (!rels.empty()) rels += ",";
    rels += query.relations[static_cast<size_t>(r)].alias;
  });
  out->append(StrFormat("%s [%s] prop=%s cost=%s rows=%s\n", PhysOpName(node.alt.phyop),
                        rels.c_str(), props.ToString(node.prop, &query).c_str(),
                        DoubleToString(node.cost).c_str(), DoubleToString(node.rows).c_str()));
  if (node.left != nullptr) Render(*node.left, query, props, depth + 1, out);
  if (node.right != nullptr) Render(*node.right, query, props, depth + 1, out);
}
}  // namespace

std::string PlanTree::ToString(const QuerySpec& query, const PropTable& props) const {
  std::string out;
  Render(*this, query, props, 0, &out);
  return out;
}

std::unique_ptr<PlanTree> PlanTree::Clone() const {
  auto copy = std::make_unique<PlanTree>();
  copy->expr = expr;
  copy->prop = prop;
  copy->prop_info = prop_info;
  copy->alt = alt;
  copy->cost = cost;
  copy->rows = rows;
  if (left != nullptr) copy->left = left->Clone();
  if (right != nullptr) copy->right = right->Clone();
  return copy;
}

std::unique_ptr<PlanTree> BuildPlanTree(RelSet expr, PropId prop, const AltChooser& chooser,
                                        const SummaryCalculator& summaries,
                                        const PropTable& props) {
  auto [alt, cost] = chooser(expr, prop);
  auto node = std::make_unique<PlanTree>();
  node->expr = expr;
  node->prop = prop;
  node->prop_info = props.Get(prop);
  node->alt = alt;
  node->cost = cost;
  node->rows = summaries.Get(expr).rows;
  if (alt.NumChildren() >= 1) {
    node->left = BuildPlanTree(alt.lexpr, alt.lprop, chooser, summaries, props);
  }
  if (alt.NumChildren() == 2) {
    node->right = BuildPlanTree(alt.rexpr, alt.rprop, chooser, summaries, props);
  }
  return node;
}

}  // namespace iqro
