#include "enumerate/plan_enumerator.h"

#include <deque>
#include <mutex>

#include "common/check.h"

namespace iqro {

PlanEnumerator::PlanEnumerator(const QuerySpec* query, const JoinGraph* graph,
                               const Catalog* catalog, PropTable* props)
    : query_(query), graph_(graph), catalog_(catalog), props_(props) {}

const Table& PlanEnumerator::TableOf(int rel) const {
  return catalog_->table(query_->relations[static_cast<size_t>(rel)].table);
}

const std::vector<Alt>& PlanEnumerator::Split(RelSet expr, PropId prop) {
  EPKey key = MakeEPKey(expr, prop);
  if (!concurrent_) {
    if (const std::vector<Alt>* const* slot = memo_.Find(key)) return **slot;
    // ComputeSplit never re-enters Split, so the insert can follow it.
    split_store_.push_back(ComputeSplit(expr, prop));
    const std::vector<Alt>* stored = &split_store_.back();
    memo_.TryEmplace(key, stored);
    return *stored;
  }
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (const std::vector<Alt>* const* slot = memo_.Find(key)) return **slot;
  }
  // Compute outside the lock: ComputeSplit interns goal properties into the
  // (itself concurrent-enabled) PropTable but never re-enters Split. Two
  // threads racing on one key compute identical alternative lists — modulo
  // the numeric PropIds interning order assigns, which nothing semantic
  // depends on — and the first insert wins.
  std::vector<Alt> computed = ComputeSplit(expr, prop);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (const std::vector<Alt>* const* slot = memo_.Find(key)) return **slot;
  split_store_.push_back(std::move(computed));
  const std::vector<Alt>* stored = &split_store_.back();
  memo_.TryEmplace(key, stored);
  return *stored;
}

void PlanEnumerator::EnableConcurrentUse() {
  concurrent_ = true;
  props_->EnableConcurrentUse();
}

std::vector<Alt> PlanEnumerator::ComputeSplit(RelSet expr, PropId prop) {
  std::vector<Alt> out;
  if (IsLeaf(expr)) {
    LeafAlternatives(expr, prop, &out);
  } else {
    JoinAlternatives(expr, prop, &out);
  }
  return out;
}

void PlanEnumerator::LeafAlternatives(RelSet expr, PropId prop, std::vector<Alt>* out) {
  const int rel = RelLowest(expr);
  const Table& table = TableOf(rel);
  // By value: interning below may grow the PropTable and invalidate
  // references into it.
  const Prop p = props_->Get(prop);
  switch (p.kind) {
    case Prop::Kind::kNone: {
      Alt a;
      a.logop = LogOp::kScan;
      a.phyop = PhysOp::kSeqScan;
      out->push_back(a);
      return;
    }
    case Prop::Kind::kSorted: {
      IQRO_CHECK(p.col.rel == rel);
      if (table.clustered_on() == p.col.col) {
        Alt a;
        a.logop = LogOp::kScan;
        a.phyop = PhysOp::kSeqScan;  // clustered storage delivers the order
        out->push_back(a);
      }
      if (table.HasIndex(p.col.col)) {
        Alt a;
        a.logop = LogOp::kScan;
        a.phyop = PhysOp::kIndexScan;
        out->push_back(a);
      }
      Alt sort;
      sort.logop = LogOp::kSort;
      sort.phyop = PhysOp::kSort;
      sort.lexpr = expr;
      sort.lprop = kPropNone;
      out->push_back(sort);
      return;
    }
    case Prop::Kind::kIndexed: {
      IQRO_CHECK(p.col.rel == rel);
      if (table.HasIndex(p.col.col)) {
        Alt a;
        a.logop = LogOp::kScan;
        a.phyop = PhysOp::kIndexRef;
        out->push_back(a);
      }
      return;
    }
  }
}

void PlanEnumerator::JoinAlternatives(RelSet expr, PropId prop, std::vector<Alt>* out) {
  // By value: the Intern calls below may grow the PropTable and would
  // invalidate a reference held across them (latent use-after-free that
  // surfaced when the table's allocation pattern changed).
  const Prop p = props_->Get(prop);
  IQRO_CHECK(p.kind != Prop::Kind::kIndexed);  // only leaves can be index inners

  if (p.kind == Prop::Kind::kSorted) {
    // The sort enforcer over the unordered result is always an option.
    Alt sort;
    sort.logop = LogOp::kSort;
    sort.phyop = PhysOp::kSort;
    sort.lexpr = expr;
    sort.lprop = kPropNone;
    out->push_back(sort);
  }

  RelForEachHalfPartition(expr, [&](RelSet left) {
    RelSet right = expr ^ left;
    if (!graph_->IsConnected(left) || !graph_->IsConnected(right)) return;
    std::vector<int> cross = graph_->CrossEdges(left, right);
    if (cross.empty()) return;
    std::vector<int> eqs;
    for (int e : cross) {
      if (graph_->edge(e).op == PredOp::kEq) eqs.push_back(e);
    }

    auto smj_alt = [&](int e) -> Alt {
      const JoinPredicate& jp = graph_->edge(e);
      const bool left_holds_l = RelContains(left, jp.left_rel);
      ColRef lcol = left_holds_l ? ColRef{jp.left_rel, jp.left_col}
                                 : ColRef{jp.right_rel, jp.right_col};
      ColRef rcol = left_holds_l ? ColRef{jp.right_rel, jp.right_col}
                                 : ColRef{jp.left_rel, jp.left_col};
      Alt a;
      a.logop = LogOp::kJoin;
      a.phyop = PhysOp::kSortMergeJoin;
      a.lexpr = left;
      a.lprop = props_->InternSorted(lcol);
      a.rexpr = right;
      a.rprop = props_->InternSorted(rcol);
      a.edge = static_cast<int16_t>(e);
      return a;
    };

    if (p.kind == Prop::Kind::kSorted) {
      // Sort-merge joins whose output order matches the demand: merge on
      // l.a = r.b emits rows ordered by the (equal) key values, i.e.
      // sorted on both a and b.
      for (int e : eqs) {
        const JoinPredicate& jp = graph_->edge(e);
        ColRef a{jp.left_rel, jp.left_col};
        ColRef b{jp.right_rel, jp.right_col};
        if (p.col == a || p.col == b) out->push_back(smj_alt(e));
      }
      return;
    }

    // Unordered demand: the full operator menu.
    if (!eqs.empty()) {
      for (RelSet build : {left, right}) {
        RelSet probe = expr ^ build;
        Alt a;
        a.logop = LogOp::kJoin;
        a.phyop = PhysOp::kHashJoin;
        a.lexpr = build;
        a.lprop = kPropNone;
        a.rexpr = probe;
        a.rprop = kPropNone;
        a.edge = static_cast<int16_t>(eqs.front());
        out->push_back(a);
      }
      for (int e : eqs) out->push_back(smj_alt(e));
      // Index nested-loop: a single indexed base relation as inner (left
      // operand, per the paper's Table 1), the rest as outer.
      for (RelSet inner : {left, right}) {
        if (!IsLeaf(inner)) continue;
        RelSet outer = expr ^ inner;
        const int rel = RelLowest(inner);
        for (int e : eqs) {
          const JoinPredicate& jp = graph_->edge(e);
          int inner_col = -1;
          if (jp.left_rel == rel) {
            inner_col = jp.left_col;
          } else if (jp.right_rel == rel) {
            inner_col = jp.right_col;
          } else {
            continue;
          }
          if (!TableOf(rel).HasIndex(inner_col)) continue;
          Alt a;
          a.logop = LogOp::kJoin;
          a.phyop = PhysOp::kIndexNLJoin;
          a.lexpr = inner;
          a.lprop = props_->InternIndexed({rel, inner_col});
          a.rexpr = outer;
          a.rprop = kPropNone;
          a.edge = static_cast<int16_t>(e);
          out->push_back(a);
        }
      }
    } else {
      // Only non-equality predicates cross this partition.
      Alt a;
      a.logop = LogOp::kJoin;
      a.phyop = PhysOp::kNestedLoopJoin;
      a.lexpr = left;
      a.lprop = kPropNone;
      a.rexpr = right;
      a.rprop = kPropNone;
      out->push_back(a);
    }
  });
}

PlanEnumerator::SpaceSize PlanEnumerator::CountFullSpace() {
  SpaceSize size;
  FlatMap64<bool> seen;
  std::deque<EPKey> queue;
  queue.push_back(RootKey());
  seen.TryEmplace(RootKey(), true);
  while (!queue.empty()) {
    EPKey key = queue.front();
    queue.pop_front();
    ++size.eps;
    const auto& alts = Split(EPExpr(key), EPProp(key));
    size.alts += static_cast<int64_t>(alts.size());
    for (const Alt& a : alts) {
      if (a.NumChildren() >= 1) {
        EPKey l = MakeEPKey(a.lexpr, a.lprop);
        if (seen.TryEmplace(l, true).second) queue.push_back(l);
      }
      if (a.NumChildren() == 2) {
        EPKey r = MakeEPKey(a.rexpr, a.rprop);
        if (seen.TryEmplace(r, true).second) queue.push_back(r);
      }
    }
  }
  return size;
}

}  // namespace iqro
