// PlanEnumerator: the paper's Fn_isleaf / Fn_split built-ins.
//
// Given an (expression, property) pair it produces the deterministic list
// of physical alternatives (SearchSpace rows). The logical and physical
// enumerations are merged (§2.3): every half-partition of the relation set
// is expanded directly into physical operators with goal-directed child
// properties ("interesting orders"). The same instance is shared by the
// declarative optimizer and both procedural baselines so that all explore
// literally the same plan space.
#ifndef IQRO_ENUMERATE_PLAN_ENUMERATOR_H_
#define IQRO_ENUMERATE_PLAN_ENUMERATOR_H_

#include <deque>
#include <shared_mutex>
#include <vector>

#include "catalog/catalog.h"
#include "common/flat_map.h"
#include "enumerate/alternative.h"
#include "query/join_graph.h"
#include "query/query_spec.h"

namespace iqro {

/// Thread-safety: single-threaded by default. EnableConcurrentUse()
/// (sticky; call while still single-threaded) switches the split memo to
/// internal locking — and flips the shared PropTable with it — so the
/// per-query fixpoints of a parallel ReoptSession flush can demand splits
/// from one shared enumerator. Everything else it reads (query, graph,
/// catalog) is const.
class PlanEnumerator {
 public:
  PlanEnumerator(const QuerySpec* query, const JoinGraph* graph, const Catalog* catalog,
                 PropTable* props);

  const QuerySpec& query() const { return *query_; }
  const JoinGraph& graph() const { return *graph_; }
  const Catalog& catalog() const { return *catalog_; }
  /// Read access for plan rendering and dumps. Interning happens only
  /// inside Split (the enumerator owns goal-property creation), so the
  /// const surface is genuinely read-only — the const-correctness audit
  /// that parallel flushes rely on.
  const PropTable& props() const { return *props_; }
  PropTable& mutable_props() { return *props_; }

  /// Fn_isleaf.
  static bool IsLeaf(RelSet expr) { return RelCount(expr) == 1; }

  /// The root (expression, property) demand of the query.
  EPKey RootKey() const { return MakeEPKey(query_->AllRelations(), kPropNone); }

  /// Fn_split: all alternatives for (expr, prop); memoized, stable order.
  const std::vector<Alt>& Split(RelSet expr, PropId prop);

  struct SpaceSize {
    int64_t eps = 0;   // (expr, prop) pairs reachable from the root (OR-nodes)
    int64_t alts = 0;  // SearchSpace rows across those pairs (AND-nodes)
  };

  /// Exhaustively walks the plan space from the root with no pruning —
  /// the denominator of the paper's pruning/update ratios.
  SpaceSize CountFullSpace();

  /// Sticky opt-in to internal split-memo locking; also enables concurrent
  /// use of the PropTable this enumerator interns into (see class comment).
  void EnableConcurrentUse();

 private:
  std::vector<Alt> ComputeSplit(RelSet expr, PropId prop);
  void LeafAlternatives(RelSet expr, PropId prop, std::vector<Alt>* out);
  void JoinAlternatives(RelSet expr, PropId prop, std::vector<Alt>* out);
  const Table& TableOf(int rel) const;

  const QuerySpec* query_;
  const JoinGraph* graph_;
  const Catalog* catalog_;
  PropTable* props_;
  // Split() hands out references that must survive later insertions, so the
  // alternative lists live in a deque (stable addresses) and the flat table
  // maps the packed (RelSet, PropId) key to them.
  std::deque<std::vector<Alt>> split_store_;
  FlatMap64<const std::vector<Alt>*> memo_;
  bool concurrent_ = false;
  std::shared_mutex mu_;
};

}  // namespace iqro

#endif  // IQRO_ENUMERATE_PLAN_ENUMERATOR_H_
