// Alt: one SearchSpace row (the paper's Table 1) — a physical alternative
// for an (expression, property) pair, identified by its position (`index`)
// in the deterministic Fn_split output for that pair.
#ifndef IQRO_ENUMERATE_ALTERNATIVE_H_
#define IQRO_ENUMERATE_ALTERNATIVE_H_

#include "cost/physical.h"
#include "cost/prop_table.h"
#include "common/relset.h"

namespace iqro {

struct Alt {
  LogOp logop = LogOp::kScan;
  PhysOp phyop = PhysOp::kSeqScan;
  RelSet lexpr = 0;
  PropId lprop = kPropNone;
  RelSet rexpr = 0;
  PropId rprop = kPropNone;
  /// For joins with an equality edge: the primary edge id (SMJ sort keys /
  /// INLJ probe key). -1 otherwise.
  int16_t edge = -1;

  bool IsLeaf() const { return logop == LogOp::kScan; }
  int NumChildren() const {
    switch (logop) {
      case LogOp::kScan:
        return 0;
      case LogOp::kSort:
        return 1;
      case LogOp::kJoin:
        return 2;
    }
    return 0;
  }

  bool operator==(const Alt&) const = default;
};

}  // namespace iqro

#endif  // IQRO_ENUMERATE_ALTERNATIVE_H_
