// PlanTree: a fully specified physical plan (the paper's BestPlan output),
// shared by every optimizer implementation and consumed by the executor.
#ifndef IQRO_ENUMERATE_PLAN_TREE_H_
#define IQRO_ENUMERATE_PLAN_TREE_H_

#include <functional>
#include <memory>
#include <string>

#include "enumerate/alternative.h"
#include "query/query_spec.h"
#include "stats/summary.h"

namespace iqro {

struct PlanTree {
  RelSet expr = 0;
  PropId prop = kPropNone;
  /// Resolved property (PropIds are interned per PropTable; the resolved
  /// form makes a plan self-contained across contexts — e.g. a plan cloned
  /// into another processor over the same query).
  Prop prop_info;
  Alt alt;
  double cost = 0;  // cumulative cost of this subtree
  double rows = 0;  // estimated output cardinality
  std::unique_ptr<PlanTree> left;
  std::unique_ptr<PlanTree> right;

  /// Structural equality (ignores cost/rows estimates).
  bool SameShape(const PlanTree& other) const;

  /// Multi-line indented rendering for EXPLAIN-style output.
  std::string ToString(const QuerySpec& query, const PropTable& props) const;

  /// Deep copy.
  std::unique_ptr<PlanTree> Clone() const;
};

/// Callback mapping an (expr, prop) pair to its chosen alternative and the
/// cumulative best cost — how each optimizer exposes its memo contents.
using AltChooser = std::function<std::pair<Alt, double>(RelSet, PropId)>;

/// Materializes the plan tree rooted at (expr, prop) by recursively asking
/// `chooser` for winners; fills summaries from `summaries` and resolves
/// property ids through `props`.
std::unique_ptr<PlanTree> BuildPlanTree(RelSet expr, PropId prop, const AltChooser& chooser,
                                        const SummaryCalculator& summaries,
                                        const PropTable& props);

}  // namespace iqro

#endif  // IQRO_ENUMERATE_PLAN_TREE_H_
