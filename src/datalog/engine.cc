#include "datalog/engine.h"

#include <algorithm>

#include "common/check.h"

namespace iqro::datalog {

// ---------------------------------------------------------------------------
// Program construction
// ---------------------------------------------------------------------------

RelId DatalogEngine::AddRelation(std::string name, int arity) {
  IQRO_CHECK(!prepared_);
  RelationState r;
  r.name = std::move(name);
  r.arity = arity;
  relations_.push_back(std::move(r));
  return static_cast<RelId>(relations_.size()) - 1;
}

void DatalogEngine::AddRule(Rule rule) {
  IQRO_CHECK(!prepared_);
  IQRO_CHECK(rule.head.relation >= 0);
  IQRO_CHECK(!relations_[static_cast<size_t>(rule.head.relation)].is_agg_target);
  rules_.push_back(std::move(rule));
}

void DatalogEngine::AddMinAggRule(RelId target, RelId source, int group_cols) {
  IQRO_CHECK(!prepared_);
  relations_[static_cast<size_t>(target)].is_agg_target = true;
  aggs_.push_back({target, source, group_cols, /*is_min=*/true});
}

void DatalogEngine::AddMaxAggRule(RelId target, RelId source, int group_cols) {
  IQRO_CHECK(!prepared_);
  relations_[static_cast<size_t>(target)].is_agg_target = true;
  aggs_.push_back({target, source, group_cols, /*is_min=*/false});
}

void DatalogEngine::Insert(RelId rel, Tuple t) {
  IQRO_CHECK(static_cast<int>(t.size()) == relations_[static_cast<size_t>(rel)].arity);
  pending_.push_back({rel, std::move(t), +1});
}

void DatalogEngine::Remove(RelId rel, Tuple t) {
  IQRO_CHECK(static_cast<int>(t.size()) == relations_[static_cast<size_t>(rel)].arity);
  pending_.push_back({rel, std::move(t), -1});
}

bool DatalogEngine::Contains(RelId rel, const Tuple& t) const {
  return relations_[static_cast<size_t>(rel)].tuples.Present(t);
}

std::vector<Tuple> DatalogEngine::Facts(RelId rel) const {
  std::vector<Tuple> out;
  for (const auto& [t, c] : relations_[static_cast<size_t>(rel)].tuples) {
    if (c > 0) out.push_back(t);
  }
  return out;
}

int64_t DatalogEngine::NumFacts(RelId rel) const {
  int64_t n = 0;
  for (const auto& [t, c] : relations_[static_cast<size_t>(rel)].tuples) {
    if (c > 0) ++n;
  }
  return n;
}

const std::string& DatalogEngine::RelationName(RelId rel) const {
  return relations_[static_cast<size_t>(rel)].name;
}

// ---------------------------------------------------------------------------
// Stratification (used only to detect recursive components)
// ---------------------------------------------------------------------------

void DatalogEngine::ComputeStrata() {
  const int n = static_cast<int>(relations_.size());
  std::vector<std::vector<int>> deps(static_cast<size_t>(n));   // head -> body
  for (const Rule& r : rules_) {
    for (const Atom& a : r.body) {
      deps[static_cast<size_t>(r.head.relation)].push_back(a.relation);
    }
  }
  for (const AggRule& a : aggs_) {
    deps[static_cast<size_t>(a.target)].push_back(a.source);
  }

  // Kosaraju SCC.
  std::vector<int> order;
  std::vector<bool> visited(static_cast<size_t>(n), false);
  std::function<void(int)> dfs1 = [&](int v) {
    visited[static_cast<size_t>(v)] = true;
    for (int w : deps[static_cast<size_t>(v)]) {
      if (!visited[static_cast<size_t>(w)]) dfs1(w);
    }
    order.push_back(v);
  };
  for (int v = 0; v < n; ++v) {
    if (!visited[static_cast<size_t>(v)]) dfs1(v);
  }
  std::vector<std::vector<int>> rdeps(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (int w : deps[static_cast<size_t>(v)]) rdeps[static_cast<size_t>(w)].push_back(v);
  }
  stratum_of_rel_.assign(static_cast<size_t>(n), -1);
  std::vector<std::vector<int>> components;
  std::function<void(int, int)> dfs2 = [&](int v, int comp) {
    stratum_of_rel_[static_cast<size_t>(v)] = comp;
    components[static_cast<size_t>(comp)].push_back(v);
    for (int w : rdeps[static_cast<size_t>(v)]) {
      if (stratum_of_rel_[static_cast<size_t>(w)] < 0) dfs2(w, comp);
    }
  };
  for (auto it = order.begin(); it != order.end(); ++it) {
    if (stratum_of_rel_[static_cast<size_t>(*it)] < 0) {
      components.emplace_back();
      dfs2(*it, static_cast<int>(components.size()) - 1);
    }
  }
  num_strata_ = static_cast<int>(components.size());
  stratum_recursive_.assign(static_cast<size_t>(num_strata_), false);
  for (int c = 0; c < num_strata_; ++c) {
    if (components[static_cast<size_t>(c)].size() > 1) {
      stratum_recursive_[static_cast<size_t>(c)] = true;
    }
    for (int v : components[static_cast<size_t>(c)]) {
      for (int w : deps[static_cast<size_t>(v)]) {
        if (w == v) stratum_recursive_[static_cast<size_t>(c)] = true;
      }
    }
  }

  body_index_.clear();
  for (size_t ri = 0; ri < rules_.size(); ++ri) {
    const Rule& r = rules_[ri];
    for (size_t pos = 0; pos < r.body.size(); ++pos) {
      body_index_[r.body[pos].relation].push_back(
          {static_cast<int>(ri), static_cast<int>(pos)});
    }
  }
  agg_source_index_.clear();
  for (size_t ai = 0; ai < aggs_.size(); ++ai) {
    agg_source_index_[aggs_[ai].source].push_back(static_cast<int>(ai));
  }
  agg_state_.resize(aggs_.size());
  prepared_ = true;
}

// ---------------------------------------------------------------------------
// Rule evaluation with the delta-visibility discipline
// ---------------------------------------------------------------------------

namespace {
bool BindAtom(const Atom& atom, const Tuple& t, std::vector<Value>& env,
              std::vector<bool>& bound, std::vector<int>* newly_bound) {
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (term.is_var) {
      if (bound[static_cast<size_t>(term.var)]) {
        if (env[static_cast<size_t>(term.var)] != t[i]) return false;
      } else {
        env[static_cast<size_t>(term.var)] = t[i];
        bound[static_cast<size_t>(term.var)] = true;
        newly_bound->push_back(term.var);
      }
    } else if (term.constant != t[i]) {
      return false;
    }
  }
  return true;
}

void UnbindAll(const std::vector<int>& vars, std::vector<bool>& bound) {
  for (int v : vars) bound[static_cast<size_t>(v)] = false;
}
}  // namespace

void DatalogEngine::RunPostSteps(const Rule& rule, int after_pos,
                                 const std::function<void()>& next,
                                 std::vector<Value>& env, std::vector<bool>& bound) {
  auto git = rule.guards_after.find(after_pos);
  if (git != rule.guards_after.end()) {
    for (const Guard& g : git->second) {
      if (!g.fn(env)) return;
    }
  }
  auto xit = rule.generators_after.find(after_pos);
  if (xit == rule.generators_after.end() || xit->second.empty()) {
    next();
    return;
  }
  std::function<void(size_t)> run_gen = [&](size_t gi) {
    if (gi == xit->second.size()) {
      next();
      return;
    }
    const Generator& gen = xit->second[gi];
    for (const std::vector<Value>& row : gen.fn(env)) {
      IQRO_CHECK(row.size() == gen.out_vars.size());
      std::vector<int> newly;
      bool ok = true;
      for (size_t k = 0; k < row.size(); ++k) {
        int v = gen.out_vars[k];
        if (bound[static_cast<size_t>(v)]) {
          if (env[static_cast<size_t>(v)] != row[k]) {
            ok = false;
            break;
          }
        } else {
          env[static_cast<size_t>(v)] = row[k];
          bound[static_cast<size_t>(v)] = true;
          newly.push_back(v);
        }
      }
      if (ok) run_gen(gi + 1);
      UnbindAll(newly, bound);
    }
  };
  run_gen(0);
}

void DatalogEngine::JoinFrom(const Rule& rule, int pos, const DeltaCtx& delta,
                             std::vector<Value>& env, std::vector<bool>& bound,
                             std::vector<Flip>* out) {
  if (pos == static_cast<int>(rule.body.size())) {
    Tuple head;
    head.reserve(rule.head.terms.size());
    for (const Term& term : rule.head.terms) {
      if (term.is_var) {
        IQRO_CHECK(bound[static_cast<size_t>(term.var)]);
        head.push_back(env[static_cast<size_t>(term.var)]);
      } else {
        head.push_back(term.constant);
      }
    }
    out->push_back({rule.head.relation, std::move(head), delta.sign});
    return;
  }
  if (pos == delta.pos) {
    JoinFrom(rule, pos + 1, delta, env, bound, out);
    return;
  }
  const Atom& atom = rule.body[static_cast<size_t>(pos)];
  const RelationState& rel = relations_[static_cast<size_t>(atom.relation)];
  auto try_tuple = [&](const Tuple& t) {
    ++derivations_;
    std::vector<int> newly;
    if (BindAtom(atom, t, env, bound, &newly)) {
      RunPostSteps(rule, pos,
                   [&] { JoinFrom(rule, pos + 1, delta, env, bound, out); }, env, bound);
    }
    UnbindAll(newly, bound);
  };
  const bool same_rel = atom.relation == delta.rel;
  for (const auto& [t, count] : rel.tuples) {
    if (count <= 0) continue;
    // Delta-visibility: positions before the delta see the pre-state,
    // positions after see the post-state. For deletions (tuple still
    // present) the pre-state excludes it at earlier positions; for
    // insertions (tuple not yet applied) the post-state adds it at later
    // positions (handled below).
    if (same_rel && delta.sign < 0 && pos < delta.pos && t == *delta.tuple) continue;
    try_tuple(t);
  }
  if (same_rel && delta.sign > 0 && pos > delta.pos) try_tuple(*delta.tuple);
}

void DatalogEngine::EvalRuleWithDelta(const Rule& rule, const DeltaCtx& delta,
                                      std::vector<Flip>* head_changes) {
  std::vector<Value> env(static_cast<size_t>(rule.num_vars));
  std::vector<bool> bound(static_cast<size_t>(rule.num_vars), false);
  std::vector<int> newly;
  const Atom& atom = rule.body[static_cast<size_t>(delta.pos)];
  if (!BindAtom(atom, *delta.tuple, env, bound, &newly)) return;
  RunPostSteps(rule, -1,
               [&] {
                 RunPostSteps(rule, delta.pos,
                              [&] { JoinFrom(rule, 0, delta, env, bound, head_changes); },
                              env, bound);
               },
               env, bound);
  UnbindAll(newly, bound);
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

void DatalogEngine::ApplyAggSourceChange(int agg_idx, const Flip& flip,
                                         std::vector<Flip>* head_changes) {
  const AggRule& agg = aggs_[static_cast<size_t>(agg_idx)];
  auto& groups = agg_state_[static_cast<size_t>(agg_idx)];
  Tuple group(flip.tuple.begin(), flip.tuple.begin() + agg.group_cols);
  Value v = flip.tuple[static_cast<size_t>(agg.group_cols)];
  auto& counts = groups[group];
  auto extreme = [&]() -> std::optional<Value> {
    if (counts.empty()) return std::nullopt;
    return agg.is_min ? counts.begin()->first : counts.rbegin()->first;
  };
  std::optional<Value> before = extreme();
  counts[v] += flip.delta;
  if (counts[v] <= 0) counts.erase(v);
  std::optional<Value> after = extreme();
  if (before == after) return;
  Tuple out = group;
  out.push_back(0);
  // The paper's §4.1 update cases: the retained per-group value store
  // recovers the next-best extreme when the current one is deleted.
  if (before.has_value()) {
    out.back() = *before;
    head_changes->push_back({agg.target, out, -1});
  }
  if (after.has_value()) {
    out.back() = *after;
    head_changes->push_back({agg.target, out, +1});
  }
}

// ---------------------------------------------------------------------------
// The flip loop
// ---------------------------------------------------------------------------

void DatalogEngine::ProcessFlips(std::deque<Flip> work, int restrict_stratum, bool counting) {
  std::vector<int> deletions_into_recursive;
  uint64_t guard = 0;
  while (!work.empty()) {
    IQRO_CHECK(++guard < 100'000'000);
    Flip f = std::move(work.front());
    work.pop_front();

    RelationState& rel = relations_[static_cast<size_t>(f.rel)];
    const int64_t old_count = rel.tuples.Count(f.tuple);
    const bool was_present = old_count > 0;
    const bool now_present = old_count + f.delta > 0;
    if (was_present == now_present) {
      // Count-only bookkeeping; no presence flip, nothing derives.
      if (counting || !now_present) rel.tuples.Add(f.tuple, f.delta);
      continue;
    }

    const int64_t sign = now_present ? +1 : -1;
    std::vector<Flip> head_changes;
    auto it = body_index_.find(f.rel);
    if (it != body_index_.end()) {
      for (auto [ri, pos] : it->second) {
        if (restrict_stratum >= 0 &&
            stratum_of_rel_[static_cast<size_t>(rules_[static_cast<size_t>(ri)]
                                                    .head.relation)] != restrict_stratum) {
          continue;
        }
        DeltaCtx delta{f.rel, &f.tuple, sign, pos};
        EvalRuleWithDelta(rules_[static_cast<size_t>(ri)], delta, &head_changes);
      }
    }
    auto ait = agg_source_index_.find(f.rel);
    if (ait != agg_source_index_.end()) {
      for (int ai : ait->second) {
        if (restrict_stratum >= 0 &&
            stratum_of_rel_[static_cast<size_t>(aggs_[static_cast<size_t>(ai)].target)] !=
                restrict_stratum) {
          continue;
        }
        ApplyAggSourceChange(ai, {f.rel, f.tuple, sign}, &head_changes);
      }
    }
    // Apply the flip itself after evaluation (delta-visibility).
    rel.tuples.Add(f.tuple, f.delta);

    for (Flip& hc : head_changes) {
      // A deletion reaching a recursive component can strand counts on
      // cyclic support; record it for the recompute fallback.
      int hs = stratum_of_rel_[static_cast<size_t>(hc.rel)];
      if (hc.delta < 0 && stratum_recursive_[static_cast<size_t>(hs)] &&
          restrict_stratum < 0) {
        deletions_into_recursive.push_back(hs);
      }
      work.push_back(std::move(hc));
    }
  }

  if (restrict_stratum < 0 && !deletions_into_recursive.empty()) {
    std::sort(deletions_into_recursive.begin(), deletions_into_recursive.end());
    deletions_into_recursive.erase(
        std::unique(deletions_into_recursive.begin(), deletions_into_recursive.end()),
        deletions_into_recursive.end());
    // Components were numbered in dependency order by ComputeStrata.
    for (int s : deletions_into_recursive) RecomputeStratum(s);
  }
}

void DatalogEngine::RecomputeStratum(int stratum) {
  // Snapshot and clear the component's head relations and aggregates.
  std::unordered_map<RelId, std::vector<Tuple>> old_facts;
  for (RelId r = 0; r < static_cast<RelId>(relations_.size()); ++r) {
    if (stratum_of_rel_[static_cast<size_t>(r)] != stratum) continue;
    bool is_head = false;
    for (const Rule& rule : rules_) is_head |= rule.head.relation == r;
    for (const AggRule& agg : aggs_) is_head |= agg.target == r;
    if (!is_head) continue;
    old_facts[r] = Facts(r);
    relations_[static_cast<size_t>(r)].tuples.Clear();
  }
  for (size_t ai = 0; ai < aggs_.size(); ++ai) {
    if (stratum_of_rel_[static_cast<size_t>(aggs_[ai].target)] == stratum) {
      agg_state_[ai].clear();
    }
  }

  // Re-derive with set semantics from the surviving inputs.
  std::deque<Flip> seed;
  std::unordered_map<RelId, bool> seeded;
  auto seed_rel = [&](RelId r) {
    if (seeded[r] || old_facts.count(r) > 0) return;  // heads start empty
    seeded[r] = true;
    for (const auto& [t, c] : relations_[static_cast<size_t>(r)].tuples) {
      if (c > 0) seed.push_back({r, t, +1});
    }
  };
  for (const Rule& rule : rules_) {
    if (stratum_of_rel_[static_cast<size_t>(rule.head.relation)] != stratum) continue;
    for (const Atom& a : rule.body) seed_rel(a.relation);
  }
  for (const AggRule& agg : aggs_) {
    if (stratum_of_rel_[static_cast<size_t>(agg.target)] == stratum) seed_rel(agg.source);
  }
  // Seeds are already present in their relations; the flip machinery
  // expects genuine absent->present transitions, so lift each seed's count
  // to zero and re-insert it with its original count. This replays the
  // inputs one at a time — the same discipline as initial evaluation.
  std::deque<Flip> work;
  for (Flip& f : seed) {
    auto& tuples = relations_[static_cast<size_t>(f.rel)].tuples;
    int64_t c0 = tuples.Count(f.tuple);
    tuples.Add(f.tuple, -c0);
    work.push_back({f.rel, f.tuple, c0});
  }
  ProcessFlips(std::move(work), stratum, /*counting=*/false);

  // Emit the diff downstream through the normal flip loop.
  std::deque<Flip> diff;
  for (auto& [rel, old] : old_facts) {
    std::unordered_map<Tuple, bool, TupleHash> now;
    for (const Tuple& t : Facts(rel)) now[t] = true;
    std::unordered_map<Tuple, bool, TupleHash> was;
    for (const Tuple& t : old) was[t] = true;
    for (const Tuple& t : old) {
      if (!now.count(t)) {
        // Force the presence transition for downstream propagation.
        auto& tuples = relations_[static_cast<size_t>(rel)].tuples;
        int64_t c = tuples.Count(t);
        if (c <= 0) {
          tuples.Add(t, 1);  // make the - flip a genuine transition
          diff.push_back({rel, t, -1});
        }
      }
    }
    for (auto& [t, _] : now) {
      if (!was.count(t)) {
        auto& tuples = relations_[static_cast<size_t>(rel)].tuples;
        int64_t c = tuples.Count(t);
        tuples.Add(t, -c);  // absent before the + flip
        diff.push_back({rel, t, c > 0 ? c : 1});
      }
    }
  }
  if (!diff.empty()) ProcessFlips(std::move(diff), -1, true);
}

void DatalogEngine::Evaluate() {
  if (!prepared_) ComputeStrata();
  std::deque<Flip> work(std::make_move_iterator(pending_.begin()),
                        std::make_move_iterator(pending_.end()));
  pending_.clear();
  ProcessFlips(std::move(work), -1, /*counting=*/true);
}

}  // namespace iqro::datalog
