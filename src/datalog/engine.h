// A small generic incremental datalog engine: recursive rules with
// built-in guards and generator functions, grouped min/max aggregation,
// and incremental maintenance of insertions and deletions via exact
// derivation counting [14] with a recompute-and-diff fallback for
// recursive strata under deletions (DRed-style, conservative).
//
// This is the substrate the paper's formulation rests on: "rather than
// re-inventing incremental recomputation techniques we have built our
// optimizer as a series of recursive rules in datalog" (§2). The
// production optimizer (src/core) hand-wires the same semantics for speed;
// this engine executes rule programs directly — including the Appendix-A
// optimizer rules at small scale (see examples/datalog_optimizer.cpp) and
// classic recursive-view workloads (transitive closure, reachability).
//
// Maintenance semantics:
//  * Insertions and non-recursive deletions: exact one-at-a-time counting
//    with the standard delta-join visibility discipline (positions before
//    the delta see the pre-state, positions after see the post-state).
//  * Deletions reaching a recursive stratum: derivation counts can strand
//    on cyclic support (the classic transitive-closure-with-cycles case),
//    so the engine recomputes that stratum and emits the diff downstream.
//    The optimizer program's recursion is structurally acyclic (plans
//    decompose into strictly smaller relation sets), so counting remains
//    exact for it after initial evaluation — one reason the paper's
//    approach works.
#ifndef IQRO_DATALOG_ENGINE_H_
#define IQRO_DATALOG_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "delta/counted_multiset.h"

namespace iqro::datalog {

using Value = int64_t;
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0xcbf29ce484222325ull;
    for (Value v : t) {
      h ^= static_cast<size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

using RelId = int;

/// A term in an atom: either a variable (id >= 0) or a constant.
struct Term {
  static Term Var(int v) { return {v, 0, true}; }
  static Term Const(Value c) { return {-1, c, false}; }
  int var = -1;
  Value constant = 0;
  bool is_var = true;
};

struct Atom {
  RelId relation = -1;
  std::vector<Term> terms;
};

/// A guard filters bound environments; evaluated after the body atom at
/// its declared position has been joined (-1 = before any join).
struct Guard {
  std::function<bool(const std::vector<Value>&)> fn;
};

/// A generator binds `out_vars` to zero or more value rows computed from
/// the bound environment — the paper's Fn_split-style built-in functions.
struct Generator {
  std::vector<int> out_vars;
  std::function<std::vector<std::vector<Value>>(const std::vector<Value>&)> fn;
};

struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::unordered_map<int, std::vector<Guard>> guards_after;
  std::unordered_map<int, std::vector<Generator>> generators_after;
  int num_vars = 0;
};

class DatalogEngine {
 public:
  RelId AddRelation(std::string name, int arity);
  void AddRule(Rule rule);
  /// target(group..., min<value>) over source(group..., value); target
  /// arity = group_cols + 1.
  void AddMinAggRule(RelId target, RelId source, int group_cols);
  void AddMaxAggRule(RelId target, RelId source, int group_cols);

  /// Queues base-fact changes; Evaluate() applies them incrementally.
  void Insert(RelId rel, Tuple t);
  void Remove(RelId rel, Tuple t);

  /// Runs to fixpoint (initial evaluation and incremental maintenance use
  /// the same delta machinery).
  void Evaluate();

  bool Contains(RelId rel, const Tuple& t) const;
  std::vector<Tuple> Facts(RelId rel) const;
  int64_t NumFacts(RelId rel) const;

  /// Work metric: tuple-binding steps performed so far (incremental
  /// maintenance should do far fewer than recomputation).
  int64_t derivations() const { return derivations_; }

  const std::string& RelationName(RelId rel) const;

 private:
  struct RelationState {
    std::string name;
    int arity = 0;
    CountedMultiset<Tuple, TupleHash> tuples;  // derivation counts
    bool is_agg_target = false;
  };

  struct AggRule {
    RelId target = -1;
    RelId source = -1;
    int group_cols = 0;
    bool is_min = true;
  };

  struct Flip {
    RelId rel;
    Tuple tuple;
    int64_t delta;  // +1 insert, -1 delete (presence-level)
  };

  struct DeltaCtx {
    RelId rel;
    const Tuple* tuple;
    int64_t sign;
    int pos;  // body position bound to the delta
  };

  void ComputeStrata();
  /// Global one-at-a-time flip loop over `work`; `restrict_stratum` < 0
  /// processes every rule, otherwise only that stratum's (used by the
  /// recompute fallback). `counting` disables the delta-visibility
  /// discipline (set semantics) during recomputation.
  void ProcessFlips(std::deque<Flip> work, int restrict_stratum, bool counting);
  void RecomputeStratum(int stratum);
  void EvalRuleWithDelta(const Rule& rule, const DeltaCtx& delta,
                         std::vector<Flip>* head_changes);
  void JoinFrom(const Rule& rule, int pos, const DeltaCtx& delta, std::vector<Value>& env,
                std::vector<bool>& bound, std::vector<Flip>* out);
  void RunPostSteps(const Rule& rule, int after_pos, const std::function<void()>& next,
                    std::vector<Value>& env, std::vector<bool>& bound);
  void ApplyAggSourceChange(int agg_idx, const Flip& flip, std::vector<Flip>* head_changes);

  std::vector<RelationState> relations_;
  std::vector<Rule> rules_;
  std::vector<AggRule> aggs_;
  /// Per (agg, group): value -> multiplicity.
  std::vector<std::unordered_map<Tuple, std::map<Value, int64_t>, TupleHash>> agg_state_;
  /// rel -> (rule index, body position) occurrences.
  std::unordered_map<RelId, std::vector<std::pair<int, int>>> body_index_;
  std::unordered_map<RelId, std::vector<int>> agg_source_index_;
  std::vector<int> stratum_of_rel_;
  std::vector<bool> stratum_recursive_;
  int num_strata_ = 0;
  std::vector<Flip> pending_;
  bool prepared_ = false;
  int64_t derivations_ = 0;
};

}  // namespace iqro::datalog

#endif  // IQRO_DATALOG_ENGINE_H_
