// Counters the evaluation harness reads: exploration volume, pruning
// effectiveness, and per-re-optimization touched-state ratios (the paper's
// Figures 4-8 metrics).
#ifndef IQRO_CORE_METRICS_H_
#define IQRO_CORE_METRICS_H_

#include <cstdint>

namespace iqro {

struct OptMetrics {
  // Cumulative exploration counters.
  int64_t eps_enumerated = 0;      // distinct (expr, prop) pairs Fn_split ran on
  int64_t alts_created = 0;        // SearchSpace rows ever instantiated
  int64_t alts_full_costed = 0;    // distinct alternatives that got a full PlanCost
  int64_t cost_computations = 0;   // PlanCost (re)computations, incl. partial
  int64_t suppressions = 0;        // SearchSpace deletions (tuple source suppression)
  int64_t reintroductions = 0;     // SearchSpace re-insertions (§4.1 "undo")
  int64_t ep_gcs = 0;              // plan-table entries garbage-collected (§3.2)
  int64_t ep_activations = 0;      // refcount 0 -> 1 transitions
  int64_t steps = 0;               // fixpoint work items processed

  // Data-layer counters (perf engineering): memo table traffic, worklist
  // traffic, and the memo's peak resident footprint.
  int64_t memo_probes = 0;         // hot-path memo lookups (GetOrCreateEP only;
                                   // cold FindEP during plan extraction is not counted)
  int64_t memo_hits = 0;           // probes that found an existing entry
  int64_t tasks_enqueued = 0;      // worklist pushes that made it past dedup
  int64_t tasks_deduped = 0;       // enqueues suppressed by the queued bits
  int64_t peak_memo_bytes = 0;     // high-water estimate of memo residency
  int64_t eps_scanned = 0;         // seeding candidates examined by the scope
                                   // index (vs eps seeded: scan efficiency)

  // Counters for the current (re)optimization round; reset via BeginRound().
  int64_t round_touched_eps = 0;   // plan-table entries receiving any delta
  int64_t round_touched_alts = 0;  // alternatives recomputed/suppressed/re-added
  int64_t round_steps = 0;
  int64_t round_eps_scanned = 0;

  void BeginRound() {
    round_touched_eps = 0;
    round_touched_alts = 0;
    round_steps = 0;
    round_eps_scanned = 0;
  }
};

}  // namespace iqro

#endif  // IQRO_CORE_METRICS_H_
