#include "core/rules.h"

namespace iqro {

const std::vector<DatalogRuleSpec>& OptimizerRules() {
  static const std::vector<DatalogRuleSpec> kRules = {
      {"R1", "enumeration",
       "SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- "
       "Expr(expr,prop), Fn_isleaf(expr,false), "
       "Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp)"},
      {"R2", "enumeration",
       "SearchSpace(expr,prop,...) :- SearchSpace(-,-,-,-,-,expr,prop,-,-), "
       "Fn_isleaf(expr,false), Fn_split(expr,prop,...)"},
      {"R3", "enumeration",
       "SearchSpace(expr,prop,...) :- SearchSpace(-,-,-,-,-,-,-,expr,prop), "
       "Fn_isleaf(expr,false), Fn_split(expr,prop,...)"},
      {"R4", "enumeration",
       "SearchSpace(expr,prop,-,'scan',phyOp,-,-,-,-) :- "
       "SearchSpace(-,-,-,-,-,expr,prop,-,-), Fn_isleaf(expr,true), Fn_phyOp(prop,phyOp)"},
      {"R5", "enumeration",
       "SearchSpace(expr,prop,-,'scan',phyOp,-,-,-,-) :- "
       "SearchSpace(-,-,-,-,-,-,-,expr,prop), Fn_isleaf(expr,true), Fn_phyOp(prop,phyOp)"},
      {"R6", "cost",
       "PlanCost(expr,prop,index,logOp,phyOp,-,-,-,-,md,cost) :- "
       "SearchSpace(expr,prop,index,logOp,phyOp,-,-,-,-), "
       "Fn_scansummary(expr,prop,md), Fn_scancost(expr,prop,md,cost)"},
      {"R7", "cost",
       "PlanCost(expr,prop,index,logOp,phyOp,lExpr,lProp,-,-,md,cost) :- "
       "SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,-,-), "
       "PlanCost(lExpr,lProp,...,lMd,lCost), Fn_nonscansummary(...), "
       "Fn_nonscancost(...,localCost), Fn_sum(lCost,null,localCost,cost)"},
      {"R8", "cost",
       "PlanCost(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp,md,cost) :- "
       "SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp), "
       "PlanCost(lExpr,lProp,...,lMd,lCost), PlanCost(rExpr,rProp,...,rMd,rCost), "
       "Fn_nonscansummary(...), Fn_nonscancost(...,localCost), "
       "Fn_sum(lCost,rCost,localCost,cost)"},
      {"R9", "selection",
       "BestCost(expr,prop,min<cost>) :- PlanCost(expr,prop,index,...,cost)"},
      {"R10", "selection",
       "BestPlan(expr,prop,index,...,cost) :- BestCost(expr,prop,cost), "
       "PlanCost(expr,prop,index,...,cost)"},
      {"r1", "bounding",
       "ParentBound(lExpr,lProp,bound-rCost-localCost) :- Bound(expr,prop,bound), "
       "BestCost(rExpr,rProp,rCost), LocalCost(expr,prop,index,lExpr,lProp,rExpr,rProp,-,"
       "localCost)"},
      {"r2", "bounding",
       "ParentBound(rExpr,rProp,bound-lCost-localCost) :- Bound(expr,prop,bound), "
       "BestCost(lExpr,lProp,lCost), LocalCost(expr,prop,index,lExpr,lProp,rExpr,rProp,-,"
       "localCost)"},
      {"r3", "bounding", "MaxBound(expr,prop,max<bound>) :- ParentBound(expr,prop,bound)"},
      {"r4", "bounding",
       "Bound(expr,prop,min<minCost,maxBound>) :- BestCost(expr,prop,minCost), "
       "MaxBound(expr,prop,maxBound)"},
  };
  return kRules;
}

std::string OptimizerDataflowDot() {
  std::string dot;
  dot += "digraph optimizer_dataflow {\n";
  dot += "  rankdir=BT;\n";
  dot += "  node [shape=box];\n";
  dot += "  subgraph cluster_enum { label=\"Plan enumeration (R1-R5)\";\n";
  dot += "    Expr; Fn_split [shape=ellipse]; SearchSpace; FixpointEnum "
         "[shape=ellipse,label=\"Fixpoint\"];\n";
  dot += "  }\n";
  dot += "  subgraph cluster_cost { label=\"Cost estimation (R6-R8)\";\n";
  dot += "    LocalCost; PlanCost; FixpointCost [shape=ellipse,label=\"Fixpoint + "
         "aggregate selection\"];\n";
  dot += "  }\n";
  dot += "  subgraph cluster_sel { label=\"Plan selection (R9-R10)\";\n";
  dot += "    BestCost; BestPlan; AggMin [shape=ellipse,label=\"Agg_min\"];\n";
  dot += "  }\n";
  dot += "  subgraph cluster_bound { label=\"Recursive bounding (r1-r4)\";\n";
  dot += "    ParentBound; MaxBound; Bound;\n";
  dot += "  }\n";
  dot += "  Expr -> Fn_split -> SearchSpace -> FixpointEnum -> SearchSpace;\n";
  dot += "  SearchSpace -> LocalCost -> PlanCost;\n";
  dot += "  PlanCost -> FixpointCost -> PlanCost;\n";
  dot += "  PlanCost -> AggMin -> BestCost;\n";
  dot += "  BestCost -> BestPlan;\n";
  dot += "  PlanCost -> BestPlan;\n";
  dot += "  Bound -> ParentBound; BestCost -> ParentBound; LocalCost -> ParentBound;\n";
  dot += "  ParentBound -> MaxBound -> Bound; BestCost -> Bound;\n";
  dot += "  // sideways information passing (tuple source suppression)\n";
  dot += "  FixpointCost -> SearchSpace [style=dashed,label=\"suppress\"];\n";
  dot += "  Bound -> FixpointCost [style=dashed,label=\"prune\"];\n";
  dot += "}\n";
  return dot;
}

}  // namespace iqro
