// PlanDigest: the winner closure of one optimizer, captured as a value —
// the companion type of DeclarativeOptimizer::CanonicalDumpState().
//
// The service layer's plan-change notifications (service/plan_subscriber.h)
// need to answer "did this query's canonical best plan change across a
// flush?" and, when it did, summarize *how* (which operators moved, how much
// of the join order survived). Both questions are questions about the
// winner closure — the set of (expr, prop) pairs reachable from the root
// through BestCost-winning alternatives — because that closure is the only
// projection of optimizer state that is independent of execution history
// (see the CanonicalDumpState comment in core/declarative_optimizer.h).
//
// A digest therefore holds three views of one walk:
//  * `canonical` — the rendered winner closure, byte-identical to
//    CanonicalDumpState() (which is implemented as ComputePlanDigest()'s
//    rendering). Digest equality is DEFINED as equality of this string, so
//    "the digest changed" and "the canonical dump changed" can never
//    disagree — the property the differential harness pins. Costs are
//    rendered with the same lossy %.6g formatting as the dump: two states
//    whose costs differ only below 6 significant digits compare equal, by
//    design (the dump's equality is the contract, not bit-exactness).
//  * `ops` + `best_cost` — the structured form the diff summary and the
//    PlanChangeEvent payload are computed from.
//  * `join_order` — the best plan's leaf relations in tree order, for the
//    "how much of the join-order prefix survived" signal an executor uses
//    to decide whether switching plans mid-flight pays (pipelined prefixes
//    that match can keep running).
#ifndef IQRO_CORE_PLAN_DIGEST_H_
#define IQRO_CORE_PLAN_DIGEST_H_

#include <limits>
#include <string>
#include <vector>

#include "common/relset.h"
#include "cost/physical.h"

namespace iqro {

/// One winner-closure node: an (expr, prop) pair and its BestCost-winning
/// alternative. Properties are stored *rendered* (resolved content, via
/// PropTable::ToString), never as PropIds — interning order differs between
/// optimizers with different exploration histories, rendered content does
/// not.
struct PlanDigestOp {
  RelSet expr = 0;
  std::string prop;
  /// False only for a root whose aggregate is empty (no derivable plan —
  /// degenerate, but representable).
  bool has_win = false;
  LogOp logop = LogOp::kScan;
  PhysOp phyop = PhysOp::kSeqScan;
  RelSet lexpr = 0;
  RelSet rexpr = 0;
  std::string lprop;
  std::string rprop;
  /// The pair's BestCost (== the winning alternative's cost). Raw double —
  /// event payloads want the value; equality goes through `canonical`.
  double cost = std::numeric_limits<double>::infinity();

  /// Same operator at the same (expr, prop) slot: everything except cost.
  /// The diff summary counts operators, not price movements — a pure cost
  /// shift with an unchanged winner is "0 operators changed" (the event
  /// still fires; its old/new costs carry the movement).
  bool SameOperator(const PlanDigestOp& o) const {
    return expr == o.expr && prop == o.prop && has_win == o.has_win &&
           logop == o.logop && phyop == o.phyop && lexpr == o.lexpr &&
           rexpr == o.rexpr && lprop == o.lprop && rprop == o.rprop;
  }
};

struct PlanDigest {
  /// Rendered winner closure; byte-identical to CanonicalDumpState().
  std::string canonical;
  /// Root BestCost (infinity before Optimize() / with no derivable plan).
  double best_cost = std::numeric_limits<double>::infinity();
  /// Winner-closure nodes in canonical order: (|expr|, expr, resolved
  /// property) ascending — one entry per (expr, prop) pair.
  std::vector<PlanDigestOp> ops;
  /// The best plan's leaf relation slots in tree order (left subtree before
  /// right subtree); empty when there is no derivable plan.
  std::vector<int> join_order;

  /// THE change predicate: exactly "CanonicalDumpState() would compare
  /// equal". Plan-change notifications fire on !SamePlan.
  bool SamePlan(const PlanDigest& o) const { return canonical == o.canonical; }
};

/// What a PlanChangeEvent summarizes about old -> new.
struct PlanDiffSummary {
  /// Operators of the new closure with no SameOperator match at their
  /// (expr, prop) slot in the old closure — i.e. the winner moved, the
  /// physical operator changed, or the pair is newly reachable.
  int changed_operators = 0;
  /// Size of the new winner closure.
  int total_operators = 0;
  /// Length of the longest common prefix of old and new join orders — the
  /// part of an in-flight pipelined execution a plan switch could keep.
  int join_order_prefix = 0;
  /// Length of the new join order (== the query's relation count when a
  /// plan is derivable).
  int join_order_len = 0;
};

PlanDiffSummary DiffPlanDigests(const PlanDigest& before, const PlanDigest& after);

}  // namespace iqro

#endif  // IQRO_CORE_PLAN_DIGEST_H_
