// Pruning-technique toggles (§3) and execution knobs of the declarative
// optimizer. The paper's evaluated configurations map to:
//
//   AggSel                -> UseAggSel()            (aggregate selection +
//                                                    tuple source suppression)
//   AggSel+RefCount       -> UseAggSelRefCount()
//   AggSel+Branch&Bound   -> UseAggSelBounding()
//   All                   -> Default()
//   Evita-Raced style     -> UseEvitaRaced()        (aggregate selection only,
//                                                    no suppression/refcount/bounds)
//   no pruning            -> UseNoPruning()
#ifndef IQRO_CORE_OPTIMIZER_OPTIONS_H_
#define IQRO_CORE_OPTIMIZER_OPTIONS_H_

#include <cstdint>

namespace iqro {

/// Work-queue discipline; pruning effectiveness depends on exploration
/// order (§3.1), so this is a first-class ablation knob.
enum class QueueDiscipline : uint8_t {
  kLifo,  // depth-first-like; default (best pruning in practice)
  kFifo,  // breadth-first-like
};

struct OptimizerOptions {
  /// §3.1: only propagate a PlanCost that beats the group's current best;
  /// losers are retained in the aggregate but leave the pipeline.
  bool use_agg_selection = true;
  /// §3.1: map pruned PlanCost tuples to deletions of their SearchSpace
  /// source rows, cutting off (or undoing) subtree exploration.
  /// Requires use_agg_selection.
  bool use_source_suppression = true;
  /// §3.2: garbage-collect (expr, prop) entries whose parent plans are all
  /// pruned. Requires use_source_suppression.
  bool use_ref_counting = true;
  /// §3.3: recursive bounding (order-independent branch-and-bound).
  /// Requires use_agg_selection.
  bool use_bounding = true;

  QueueDiscipline discipline = QueueDiscipline::kLifo;

  /// Safety valve for the fixpoint loop.
  uint64_t max_steps = 500'000'000;

  static OptimizerOptions Default() { return OptimizerOptions{}; }

  static OptimizerOptions UseAggSel() {
    OptimizerOptions o;
    o.use_ref_counting = false;
    o.use_bounding = false;
    return o;
  }

  static OptimizerOptions UseAggSelRefCount() {
    OptimizerOptions o;
    o.use_bounding = false;
    return o;
  }

  static OptimizerOptions UseAggSelBounding() {
    OptimizerOptions o;
    o.use_ref_counting = false;
    return o;
  }

  /// The pruning level of the Evita Raced declarative optimizer [8]:
  /// prune only against logically equivalent plans for the same output
  /// properties; never delete SearchSpace rows or plan-table entries.
  static OptimizerOptions UseEvitaRaced() {
    OptimizerOptions o;
    o.use_source_suppression = false;
    o.use_ref_counting = false;
    o.use_bounding = false;
    return o;
  }

  static OptimizerOptions UseNoPruning() {
    OptimizerOptions o;
    o.use_agg_selection = false;
    o.use_source_suppression = false;
    o.use_ref_counting = false;
    o.use_bounding = false;
    return o;
  }

  bool Valid() const {
    if (use_source_suppression && !use_agg_selection) return false;
    if (use_ref_counting && !use_source_suppression) return false;
    if (use_bounding && !use_agg_selection) return false;
    return true;
  }
};

}  // namespace iqro

#endif  // IQRO_CORE_OPTIMIZER_OPTIONS_H_
