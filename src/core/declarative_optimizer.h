// DeclarativeOptimizer: the paper's contribution — a query optimizer whose
// state (SearchSpace / PlanCost / BestCost / BestPlan plus the RefCount and
// Bound auxiliary relations) is maintained as incrementally updatable data,
// evaluated to fixpoint by a pipelined delta engine.
//
// The datalog program it executes is R1-R10 of Appendix A plus the bounds
// rules r1-r4 of Figure 3 (see core/rules.h for the rule text and the
// dataflow of Figure 1). This class is the hand-wired, typed realization of
// that dataflow: one work queue processes enumeration deltas (SearchSpace
// insertions, R1-R5), cost deltas (PlanCost, R6-R8), best-cost aggregation
// (R9-R10), reference-count maintenance (§3.2) and recursive bounds
// (§3.3/§4.3), with no constraint on the relative order of those steps —
// the "decoupled, any-order" execution strategy of §2.3.
//
// Key semantic invariants (what makes any-order execution safe):
//  * The BestCost aggregate of an (expr, prop) pair holds exactly the
//    *derivable* PlanCost tuples — those whose children currently have a
//    best cost. Deleting a child's best cascades (counting semantics).
//  * Exploration (enumerating an alternative's children) is gated only by
//    the pruning threshold (aggregate selection / recursive bound), and is
//    monotone within one fixpoint run: gates re-open reactively whenever a
//    child's best cost drops or a threshold rises, so the fixpoint value
//    is order-independent and equals the exact dynamic-programming optimum
//    over the reachable space.
//  * Tuple source suppression and reference-counting garbage collection
//    maintain the SearchSpace *presence* accounting (what state is kept);
//    a zero reference count marks the pair's state collectible. Collected
//    state is physically evicted lazily — when a statistics update
//    arrives that would invalidate it (§4's "only recompute what might be
//    affected"), and re-derived on demand if the pair is re-referenced.
//
// Incremental re-optimization (§4): Reoptimize() drains StatChange records
// from the StatsRegistry and seeds deltas only for affected state;
// everything else is reused. ReoptimizeBatch() is the multi-query variant:
// it accepts an externally drained, coalesced change list (from a
// ReoptSession flush) and seeds every change before one fixpoint run, so a
// batch of updates costs one delta pass instead of one per change. The
// result is always identical to a fresh optimization under the new
// statistics (tested against System-R/Volcano).
// Memory layout (perf engineering): the memo's data layer is built for the
// constant factor of the delta fixpoint, whose unit of work is a memo probe
// plus a task push/pop:
//  * EPState nodes are bump-allocated from an Arena (common/arena.h) and
//    never move — the memo, the parent-link graph, and the worklist all hold
//    raw EPState pointers across memo growth. The optimizer's destructor
//    runs ~EPState() over eps_in_order_ because the arena does not.
//  * The memo itself is a FlatMap64<EPState*> (common/flat_map.h), an
//    open-addressing table keyed by the packed 64-bit (RelSet, PropId) key
//    (MakeEPKey) with a multiplicative hash — one probe is a multiply, a
//    mask, and a linear scan of flat control bytes, no node chasing.
//  * Tasks are 16-byte PODs in a growable power-of-two RingBuffer
//    (common/ring_buffer.h) serving both queue disciplines; duplicate tasks
//    are suppressed at enqueue time by the intrusive queued bits on
//    EPState/AltState (enumerate_queued, drive_queued, best_dirty,
//    bound_dirty), so the ring never holds two live tasks for the same
//    (kind, ep, alt) and pushes never allocate after warm-up.
//  * OptMetrics tracks the data layer too: memo_probes/memo_hits,
//    tasks_enqueued/tasks_deduped, and peak_memo_bytes (high-water estimate
//    of arena + table + per-EP vectors + aggregates, sampled at round ends).
#ifndef IQRO_CORE_DECLARATIVE_OPTIMIZER_H_
#define IQRO_CORE_DECLARATIVE_OPTIMIZER_H_

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/flat_map.h"
#include "common/ring_buffer.h"
#include "common/scope_index.h"
#include "core/metrics.h"
#include "core/optimizer_options.h"
#include "core/plan_digest.h"
#include "cost/cost_model.h"
#include "delta/extreme_agg.h"
#include "enumerate/plan_enumerator.h"
#include "enumerate/plan_tree.h"

namespace iqro {

/// Thrown by ReoptimizeBatch when the caller-supplied `work_budget` is
/// exceeded mid-fixpoint (a runaway query under the new statistics). The
/// strong guarantee applies: by the time this escapes, the optimizer has
/// been torn down to its pre-Optimize() state — no partial fixpoint
/// survives. Distinct from the hard `max_steps` CHECK, which is a
/// correctness backstop and aborts the process.
struct WorkBudgetExceeded : public std::runtime_error {
  WorkBudgetExceeded(int64_t budget_in, int64_t steps_in)
      : std::runtime_error("fixpoint work budget exceeded: " + std::to_string(steps_in) +
                           " steps > budget " + std::to_string(budget_in)),
        budget(budget_in),
        steps(steps_in) {}
  int64_t budget;
  int64_t steps;
};

class DeclarativeOptimizer {
 public:
  /// `enumerator`, `cost_model` and `registry` must outlive the optimizer.
  /// The registry should be frozen after initial statistics are bound.
  DeclarativeOptimizer(PlanEnumerator* enumerator, const CostModel* cost_model,
                       StatsRegistry* registry,
                       OptimizerOptions options = OptimizerOptions::Default());
  ~DeclarativeOptimizer();

  DeclarativeOptimizer(const DeclarativeOptimizer&) = delete;
  DeclarativeOptimizer& operator=(const DeclarativeOptimizer&) = delete;

  /// Initial optimization: seeds the root Expr tuple and runs the fixpoint.
  ///
  /// Exception guarantee (all-or-nothing, here and in the reoptimize entry
  /// points): if the fixpoint throws — an injected fault, a bad_alloc, a
  /// WorkBudgetExceeded — the optimizer tears itself down to a consistent
  /// empty, unoptimized state (memo, arena, worklist and aggregates all
  /// released; optimized() == false) before the exception escapes. No
  /// partially applied fixpoint is ever observable; recover with
  /// RebuildFromScratch() once the cause is gone.
  void Optimize();

  /// Incremental re-optimization: drains pending StatChanges from the
  /// registry, seeds deltas for affected state only, re-runs the fixpoint.
  /// Requires Optimize() to have run.
  ///
  /// Single-consumer semantics: this drains the registry's whole pending
  /// batch. When several optimizers share one registry, calling this on one
  /// of them starves the rest — multi-query setups must flush through a
  /// service::-layer ReoptSession, which drains once and hands the same
  /// coalesced change list to every registered optimizer via
  /// ReoptimizeBatch().
  void Reoptimize();

  /// Batch variant of Reoptimize(): seeds deltas for the externally
  /// supplied (already drained, already coalesced) change list instead of
  /// draining the registry, then runs a single fixpoint over all of them —
  /// the paper's "batched updates amortize the delta pass" observation made
  /// a first-class entry point. The registry must already hold the
  /// statistics the changes describe. An empty list is a no-op. Returns the
  /// number of memo entries seeded (re-driven or evicted) — 0 means the
  /// batch could not affect this query's plan space.
  ///
  /// `stats_epoch` is the registry epoch the drained batch reflects
  /// (StatsRegistry::DrainedBatch::epoch); 0 reads the registry's live
  /// epoch, which is only equivalent when no mutator can run between the
  /// drain and this call — i.e. on the single-threaded path.
  ///
  /// Thread-safety: the optimizer itself must still be driven by exactly
  /// one thread at a time — a parallel ReoptSession flush gives each
  /// optimizer to exactly one pool task. What IS safe concurrently is
  /// several optimizers fixpointing over one shared world, provided the
  /// session enabled it (EnableConcurrentFlushes) and the dispatcher holds
  /// the registry reader lock for the dispatch window.
  ///
  /// `work_budget` > 0 caps this call's fixpoint task count
  /// (OptMetrics::round_steps); exceeding it throws WorkBudgetExceeded.
  /// 0 means unbudgeted. Either way a throw leaves the optimizer torn down
  /// per the Optimize() exception guarantee — the ReoptSession quarantines
  /// the query and later restores it via RebuildFromScratch().
  int64_t ReoptimizeBatch(const std::vector<StatChange>& changes, uint64_t stats_epoch = 0,
                          int64_t work_budget = 0);

  /// Recovery entry point: discards all optimizer state (the teardown the
  /// exception path runs) and re-optimizes from scratch against the
  /// registry's *current* statistics. By the incremental ≡ from-scratch
  /// equivalence this lands on exactly the state an optimizer that never
  /// failed — and incrementally applied every drained batch — would hold,
  /// which is what lets a quarantined query rejoin a session losslessly.
  /// Safe to call in any state (optimized or torn down).
  void RebuildFromScratch();

  /// Discards all optimizer state (same teardown the exception path runs)
  /// WITHOUT re-optimizing: optimized() becomes false and stays false until
  /// Optimize()/RebuildFromScratch(). The ReoptSession uses this to pin a
  /// query whose pass failed *outside* the fixpoint (so the optimizer was
  /// not self-torn-down) into the one canonical quarantined state — never
  /// serve a plan that may have missed a drained batch.
  void Invalidate() { TearDown(); }

  /// Serializes the complete fixpoint state — every memo pair in insertion
  /// order with its enumeration/liveness flags, alternative costs and bound
  /// contributions, plus parent-link order — into a compact, deterministic
  /// byte seed (common/serialize.h). Requires optimized(). The seed is what
  /// the ReoptSession's eviction budget spills a dormant query to, and what
  /// a service snapshot persists per query: RestoreState() on an optimizer
  /// over the *same world at the same statistics* reconstructs a memo that
  /// is byte-identical in every observable (DumpState, CanonicalDumpState,
  /// metrics-bearing aggregates) to the one serialized.
  void SerializeState(std::string* out) const;

  /// Rebuilds the fixpoint state from a SerializeState() seed, replacing
  /// whatever state the optimizer holds (TearDown() first). `stats_epoch`
  /// stamps the registry epoch the seed's costs reflect (0 reads the
  /// registry's live epoch). The restore is all-or-nothing: any structural
  /// mismatch (wrong world, wrong options, truncated/corrupt payload)
  /// throws SerializeError with the optimizer torn down to the canonical
  /// empty state — recover with RebuildFromScratch(). The restored memo
  /// satisfies ValidateInvariants() by construction: aggregates, refcounts,
  /// propagated bests/bounds and the exact agg-entry accounting are all
  /// rederived, and the work queue is empty.
  void RestoreState(const std::string& payload, uint64_t stats_epoch = 0);

  /// Opts the *shared* parts of this optimizer's world — the split memo,
  /// the PropTable it interns into, and the summary cache — into internal
  /// locking, so several optimizers over the same world can run
  /// ReoptimizeBatch on different threads of one flush. Sticky; called by
  /// ReoptSession::Register when the session dispatches on a worker pool.
  /// Per-optimizer state (memo, arena, worklist, metrics) needs no locks:
  /// it is owned by one task per flush.
  void EnableConcurrentFlushes();

  /// Points this optimizer's summary calculator at a cross-query shared
  /// cache (stats/summary.h): summaries computed by any optimizer over the
  /// same registry become visible to all of them, keyed by registry epoch.
  /// The calculator's registry must be this optimizer's registry — summary
  /// values depend only on registry state, which is what makes sharing
  /// across calculators sound. Called by ReoptSession::Register; pass
  /// nullptr to detach.
  void AttachSharedSummaryCache(SummarySharedCache* shared);

  /// True once Optimize() has run (the precondition of the reoptimize
  /// entry points and of ReoptSession::Register).
  bool optimized() const { return optimized_; }

  /// The query's full relation set (every EP expression is a subset): the
  /// cheap whole-query prefilter for "can this StatChange affect me at
  /// all", used by the ReoptSession dispatcher.
  RelSet RootRelations() const;

  /// The registry this optimizer drains (never null; not owned).
  StatsRegistry* registry() const { return registry_; }

  /// Registry epoch this optimizer's state reflects (0 before Optimize()):
  /// set on every (re)optimization entry. ReoptSession::Register compares
  /// it against StatsRegistry::drained_epoch() to reject an optimizer that
  /// missed an already-drained batch (it could never catch up — those
  /// deltas are gone).
  uint64_t stats_epoch() const { return stats_epoch_; }

  /// Best cumulative cost of the root (expr, prop); infinity before
  /// Optimize().
  double BestCost() const;

  /// Materializes the current best plan.
  std::unique_ptr<PlanTree> GetBestPlan() const;

  const OptMetrics& metrics() const { return metrics_; }

  /// Freshly computed estimate of the memo's current resident footprint
  /// (the quantity peak_memo_bytes is the high-water mark of). O(#EPs);
  /// exposed for tests of the peak accounting.
  size_t EstimatedMemoBytes() const { return StructuralBytes() + PerEpBytes(); }

  // ---- end-state inspection (evaluation harness) ----
  int64_t NumLiveEps() const;       // plan-table entries currently maintained
  int64_t NumActiveAlts() const;    // SearchSpace rows currently present
  int64_t NumViableAlts() const;    // alternatives that ever won their group
  int64_t NumCostedAlts() const;    // alternatives with a derivable PlanCost

  /// Renders the raw memo (SearchSpace/PlanCost/BestCost/Bound) for
  /// debugging. Ordering guarantee: entries appear in memo *insertion*
  /// order (eps_in_order_), never in hash-table order — two optimizers with
  /// identical histories dump byte-identically, but the output DOES depend
  /// on allocation history (it includes suppressed and dormant state, in
  /// the order it was first enumerated). For history-independent
  /// comparison use CanonicalDumpState().
  std::string DumpState() const;

  /// Renders the semantic fixpoint state only — the winner closure: every
  /// (expr, prop) pair reachable from the root through BestCost-winning
  /// alternatives, sorted by (|expr|, expr, resolved property), each with
  /// its BestCost value and winning row. Two things are deliberately
  /// projected away because they depend on execution history, not on the
  /// fixpoint: bare SearchSpace presence of rows whose cost support was
  /// pruned (retraction is lazy), and derivable PlanCosts of *equal*-cost
  /// losers (the paper's Proposition 5 assumes distinct costs; whether a
  /// tie survives suppression depends on cost arrival order). The
  /// projection is also independent of memo allocation history and of the
  /// PropTable's interning order, so an incremental optimizer and a
  /// from-scratch optimizer at the same statistics (and the same pruning
  /// options) must produce byte-identical output — the equality the
  /// differential harness asserts (§4's "identical to a fresh
  /// optimization"). Implemented as ComputePlanDigest().canonical.
  std::string CanonicalDumpState() const;

  /// The winner closure as a value (core/plan_digest.h): the canonical
  /// rendering plus the structured ops/join-order views the service layer's
  /// plan-change notifications diff. `digest.canonical` is byte-identical
  /// to CanonicalDumpState() by construction, so digest equality and
  /// canonical-dump equality can never disagree.
  PlanDigest ComputePlanDigest() const;

  /// Asserts internal invariants at a fixpoint; used heavily by tests.
  void ValidateInvariants() const;

  const OptimizerOptions& options() const { return options_; }

 private:
  struct EPState;

  // A parent link: alternative `alt_idx` of `ep` references the linked
  // child on `side` (0 = left, 1 = right). Links are permanent once the
  // alternative is enumerated; they carry delta propagation.
  struct ParentRef {
    EPState* ep;
    uint32_t alt_idx;
    uint8_t side;
  };

  static constexpr double kNoContribution = std::numeric_limits<double>::quiet_NaN();
  /// Sentinel for "no BestCost winner propagated yet" (empty aggregate).
  static constexpr uint32_t kNoWinner = 0xFFFFFFFFu;

  struct AltState {
    Alt def;
    bool active = false;       // present in SearchSpace (not suppressed)
    bool cost_known = false;   // PlanCost tuple currently derivable
    bool ever_costed = false;  // metrics: ever had a full PlanCost
    bool ever_active = false;  // distinguishes first activation from re-introduction
    bool ever_won = false;     // metrics: ever was the group's minimum
    bool drive_queued = false;
    double cost = 0;           // current PlanCost (valid iff cost_known)
    uint32_t touched_round = 0;
    EPState* child[2] = {nullptr, nullptr};  // resolved child pairs
    // LocalCost cache, valid for one registry epoch.
    double local_cost = 0;
    uint64_t local_epoch = 0;
    // Last ParentBound contribution pushed to each child, NaN when none is
    // registered: lets UpdateAltContributions skip the child's bound-table
    // probe when the recomputed contribution is unchanged — the common case
    // on re-drives. NaN compares unequal to everything, so "none" always
    // re-pushes.
    double last_contrib[2] = {kNoContribution, kNoContribution};
  };

  struct EPState {
    RelSet expr = 0;
    PropId prop = kPropNone;
    uint32_t id = 0;  // dense id for bound-contribution keys
    bool enumerated = false;
    bool ever_live = false;
    /// Physically evicted, collected state: not maintained until a parent
    /// demands it again (or it is resurrected by a reference).
    bool dormant = false;
    int refcount = 0;  // active parent alternatives referencing this pair
    std::vector<AltState> alts;
    std::vector<ParentRef> parents;
    /// BestCost aggregate: all derivable PlanCost tuples (id = alt index).
    ExtremeAgg<uint32_t> best_agg;
    /// MaxBound aggregate: ParentBound contributions (id = packed parent
    /// alt key). Only populated when bounding is on.
    ExtremeAgg<uint64_t> parent_bounds;
    double last_best = 0;   // last propagated BestCost (infinity if none)
    double last_bound = 0;  // last propagated Bound (infinity if none)
    /// Winning alternative behind last_best (kNoWinner if none). Tracked
    /// separately because the winner can move between bit-identical costs
    /// without a value delta, and viability keys on the winning entry.
    uint32_t last_best_idx = kNoWinner;
    bool best_dirty = false;
    bool bound_dirty = false;
    bool enumerate_queued = false;
    uint32_t touched_round = 0;
    /// Round stamp for seeding dedup: an EP matched by several changes of
    /// one batch is seeded once (see ReoptimizeBatchImpl).
    uint32_t seed_mark = 0;

    bool live(bool use_ref_counting) const {
      return use_ref_counting ? refcount > 0 : ever_live;
    }
  };

  /// The bottom-up seeding order: (|expr|, prop != none, insertion id).
  /// Children precede parents; an expression's (expr, none) entry precedes
  /// its sorted variants, whose enforcers reference it.
  static bool SeedOrderLess(const EPState* a, const EPState* b) {
    const int pa = RelCount(a->expr);
    const int pb = RelCount(b->expr);
    if (pa != pb) return pa < pb;
    const bool sa = a->prop != kPropNone;
    const bool sb = b->prop != kPropNone;
    if (sa != sb) return sb;  // (expr, none) precedes (expr, sorted)
    return a->id < b->id;
  }

  struct Task {
    enum class Kind : uint8_t { kEnumerate, kDrive, kBestDirty, kBoundDirty };
    Kind kind;
    EPState* ep;
    uint32_t alt_idx;
  };

  // ---- state access ----
  EPState* GetOrCreateEP(RelSet expr, PropId prop);
  EPState* FindEP(RelSet expr, PropId prop) const;
  EPState* ChildEP(const AltState& alt, int side) const;
  bool Live(const EPState& ep) const { return ep.live(options_.use_ref_counting); }

  /// Current pruning threshold of `ep`: Bound (r4) when bounding is on,
  /// BestCost when only aggregate selection is on, +infinity otherwise.
  double Threshold(const EPState& ep) const;
  double CurrentBound(const EPState& ep) const;  // min(BestCost, MaxBound)

  // ---- entry-point internals ----
  void OptimizeImpl();
  int64_t ReoptimizeBatchImpl(const std::vector<StatChange>& changes, uint64_t stats_epoch,
                              int64_t work_budget);
  /// Destroys every piece of fixpoint state (memo, arena, worklist,
  /// ordering caches) and returns to the pre-Optimize() configuration.
  /// The exception-path half of the strong guarantee.
  void TearDown();

  // ---- fixpoint tasks ----
  void Drain();
  void Push(Task t);
  void ScheduleEnumerate(EPState* ep);
  void ScheduleDrive(EPState* ep, uint32_t alt_idx);
  void ScheduleBestDirty(EPState* ep);
  void ScheduleBoundDirty(EPState* ep);

  void RunEnumerate(EPState* ep);
  void RunDrive(EPState* ep, uint32_t alt_idx);
  void RunBestDirty(EPState* ep);
  void RunBoundDirty(EPState* ep);

  // ---- alternative lifecycle ----
  /// Local (root-operator) cost of an alternative, always fresh.
  double LocalCost(const EPState& ep, const Alt& alt) const;
  /// Epoch-cached variant used on the hot paths.
  double CachedLocalCost(const EPState& ep, AltState& alt) const;
  /// Requests (re-)derivation of a child pair's plans.
  void DemandChild(EPState* child);
  /// Adjusts child reference counts when an alternative's SearchSpace
  /// presence flips.
  void AltPresenceRefs(EPState* ep, uint32_t alt_idx, int delta);
  void RefUp(EPState* child);
  void RefDown(EPState* child);
  void OnDeath(EPState* ep);   // refcount hit zero: silent presence teardown
  void Evict(EPState* ep);     // physical deletion of collected, stale state

  // ---- recursive bounding (r1-r4) ----
  uint64_t ContributionKey(const EPState& parent, uint32_t alt_idx, int side) const;
  void UpdateAltContributions(EPState* ep, uint32_t alt_idx);
  void RemoveAltContributions(EPState* ep, uint32_t alt_idx);

  void Touch(EPState* ep);
  void Touch(EPState* ep, uint32_t alt_idx);

  /// Shared winner-closure walk behind CanonicalDumpState (string only)
  /// and ComputePlanDigest (`want_structured`: also the ops vector and
  /// join order).
  PlanDigest ComputePlanDigestImpl(bool want_structured) const;

  /// Per-EP heap footprint (alt/parent vector capacities + aggregate
  /// entries, the latter estimated): the O(#EPs) walk behind the peak
  /// counter. PerEpVectorBytes is the capacity-only term; PerEpBytes adds
  /// the aggregate entries, re-counted from the memo (so callers comparing
  /// it against the peak independently cross-check agg_entries_).
  size_t PerEpVectorBytes() const;
  size_t PerEpBytes() const;
  /// O(1)-ish footprint terms: arena blocks, flat table, order vector,
  /// scope index, seed scratch, queue.
  size_t StructuralBytes() const;
  void UpdatePeakMemoBytes();

  PlanEnumerator* enumerator_;
  const CostModel* cost_model_;
  StatsRegistry* registry_;
  OptimizerOptions options_;
  OptMetrics metrics_;

  Arena arena_;                    // owns EPState storage (addresses stable)
  FlatMap64<EPState*> memo_;       // packed (RelSet, PropId) -> arena node
  std::vector<EPState*> eps_in_order_;  // insertion order, for deterministic walks
  RingBuffer<Task> queue_;
  EPState* root_ = nullptr;
  bool optimized_ = false;
  uint32_t round_ = 0;
  uint64_t stats_epoch_ = 0;  // registry epoch the current state reflects
  int64_t work_budget_ = 0;   // per-call cap on round_steps; 0 = unbudgeted

  // Seeding index: every memo pair keyed by its expression, so a batch of
  // StatChanges enumerates exactly the candidate EPs (supersets of a
  // cardinality scope; exact matches of a scan-cost scope) instead of
  // walking the whole memo. Maintained incrementally in GetOrCreateEP;
  // dormant pairs stay indexed because stale collected state is physically
  // evicted by the seeding pass that invalidates it.
  ScopeSubsetIndex<EPState*> scope_index_;
  // Scratch for the affected set of one batch (avoids a heap vector per
  // flush); sorted into the legacy bottom-up seeding order before seeding.
  std::vector<EPState*> seed_scratch_;
  // Dense-batch fallback order: all pairs presorted by (|expr|, prop !=
  // none, id) — the bottom-up seeding order — rebuilt lazily on memo
  // growth, so a full-scan seeding pass pays no per-flush sort. The sparse
  // path sorts its (small) affected set instead and never touches this.
  std::vector<EPState*> reopt_order_;
  bool reopt_order_stale_ = false;
  // Peak-bytes accounting, O(1) per round. The per-EP footprint has two
  // parts with different churn rates: vector capacities (alts/parents),
  // which only grow on structural events — new pair, first-time enumeration
  // — and aggregate entries, which insert and erase on every re-drive. The
  // vector walk is cached keyed on memo_growth_gen_ (bumped by exactly
  // those structural events); aggregate entries are counted exactly and
  // incrementally (agg_entries_, ±1 at every Set-growth/Erase/Clear site),
  // so oscillating churn that re-admits entries advances the peak without
  // ever re-walking the memo.
  int64_t memo_growth_gen_ = 0;
  int64_t per_ep_walk_key_ = -1;
  size_t per_ep_vector_bytes_cache_ = 0;
  int64_t agg_entries_ = 0;  // live best_agg + parent_bounds entries, exact
  // RunEnumerate scratch (avoids a heap vector per task).
  std::vector<std::pair<double, uint32_t>> enum_scratch_;
};

}  // namespace iqro

#endif  // IQRO_CORE_DECLARATIVE_OPTIMIZER_H_
