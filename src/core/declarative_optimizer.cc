#include "core/declarative_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <unordered_set>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serialize.h"
#include "common/str_util.h"

namespace iqro {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DeclarativeOptimizer::DeclarativeOptimizer(PlanEnumerator* enumerator,
                                           const CostModel* cost_model,
                                           StatsRegistry* registry, OptimizerOptions options)
    : enumerator_(enumerator),
      cost_model_(cost_model),
      registry_(registry),
      options_(options) {
  IQRO_CHECK(options_.Valid());
  memo_.Reserve(256);  // skip the first few rehashes of every optimization
}

DeclarativeOptimizer::~DeclarativeOptimizer() {
  // EPState nodes live in the arena, which releases memory without running
  // destructors; the vectors and aggregates inside each node own heap.
  for (EPState* ep : eps_in_order_) ep->~EPState();
}

// ---------------------------------------------------------------------------
// State access
// ---------------------------------------------------------------------------

DeclarativeOptimizer::EPState* DeclarativeOptimizer::GetOrCreateEP(RelSet expr, PropId prop) {
  ++metrics_.memo_probes;
  auto [slot, inserted] = memo_.TryEmplace(MakeEPKey(expr, prop), nullptr);
  if (!inserted) {
    ++metrics_.memo_hits;
    return *slot;
  }
  EPState* ep = arena_.New<EPState>();
  ep->expr = expr;
  ep->prop = prop;
  ep->id = static_cast<uint32_t>(eps_in_order_.size());
  ep->last_best = kInf;
  ep->last_bound = kInf;
  *slot = ep;
  eps_in_order_.push_back(ep);
  scope_index_.Insert(expr, ep);
  reopt_order_stale_ = true;
  ++memo_growth_gen_;
  return ep;
}

DeclarativeOptimizer::EPState* DeclarativeOptimizer::FindEP(RelSet expr, PropId prop) const {
  EPState* const* slot = memo_.Find(MakeEPKey(expr, prop));
  return slot == nullptr ? nullptr : *slot;
}

DeclarativeOptimizer::EPState* DeclarativeOptimizer::ChildEP(const AltState& alt,
                                                             int side) const {
  EPState* c = alt.child[side];
  IQRO_CHECK(c != nullptr);
  return c;
}

double DeclarativeOptimizer::CurrentBound(const EPState& ep) const {
  double best = ep.best_agg.empty() ? kInf : ep.best_agg.MinValue();
  double maxb = ep.parent_bounds.empty() ? kInf : ep.parent_bounds.MaxValue();
  return std::min(best, maxb);  // rule r4
}

double DeclarativeOptimizer::Threshold(const EPState& ep) const {
  if (!options_.use_agg_selection) return kInf;
  if (options_.use_bounding) return CurrentBound(ep);
  return ep.best_agg.empty() ? kInf : ep.best_agg.MinValue();
}

double DeclarativeOptimizer::LocalCost(const EPState& ep, const Alt& alt) const {
  switch (alt.logop) {
    case LogOp::kScan:
      return cost_model_->ScanCost(RelLowest(ep.expr), alt.phyop);
    case LogOp::kSort:
      return cost_model_->SortLocalCost(ep.expr);
    case LogOp::kJoin:
      return cost_model_->JoinLocalCost(alt.phyop, alt.lexpr, alt.rexpr);
  }
  IQRO_CHECK(false);
}

double DeclarativeOptimizer::CachedLocalCost(const EPState& ep, AltState& alt) const {
  const uint64_t epoch = registry_->epoch();
  if (alt.local_epoch != epoch) {
    alt.local_cost = LocalCost(ep, alt.def);
    alt.local_epoch = epoch;
  }
  return alt.local_cost;
}

void DeclarativeOptimizer::Touch(EPState* ep) {
  if (ep->touched_round != round_) {
    ep->touched_round = round_;
    ++metrics_.round_touched_eps;
  }
}

void DeclarativeOptimizer::Touch(EPState* ep, uint32_t alt_idx) {
  Touch(ep);
  AltState& a = ep->alts[alt_idx];
  if (a.touched_round != round_) {
    a.touched_round = round_;
    ++metrics_.round_touched_alts;
  }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void DeclarativeOptimizer::Push(Task t) {
  ++metrics_.tasks_enqueued;
  queue_.push_back(t);
}

void DeclarativeOptimizer::ScheduleEnumerate(EPState* ep) {
  if (ep->enumerate_queued) {
    ++metrics_.tasks_deduped;
    return;
  }
  ep->enumerate_queued = true;
  Push({Task::Kind::kEnumerate, ep, 0});
}

void DeclarativeOptimizer::ScheduleDrive(EPState* ep, uint32_t alt_idx) {
  if (!ep->enumerated) return;  // will be driven by enumeration
  AltState& a = ep->alts[alt_idx];
  if (a.drive_queued) {
    ++metrics_.tasks_deduped;
    return;
  }
  a.drive_queued = true;
  Push({Task::Kind::kDrive, ep, alt_idx});
}

void DeclarativeOptimizer::ScheduleBestDirty(EPState* ep) {
  if (ep->best_dirty) {
    ++metrics_.tasks_deduped;
    return;
  }
  ep->best_dirty = true;
  Push({Task::Kind::kBestDirty, ep, 0});
}

void DeclarativeOptimizer::ScheduleBoundDirty(EPState* ep) {
  if (!options_.use_bounding) return;
  if (ep->bound_dirty) {
    ++metrics_.tasks_deduped;
    return;
  }
  ep->bound_dirty = true;
  Push({Task::Kind::kBoundDirty, ep, 0});
}

void DeclarativeOptimizer::Drain() {
  const bool lifo = options_.discipline == QueueDiscipline::kLifo;
  while (!queue_.empty()) {
    ++metrics_.steps;
    ++metrics_.round_steps;
    IQRO_CHECK(metrics_.steps < static_cast<int64_t>(options_.max_steps));
    if (work_budget_ > 0 && metrics_.round_steps > work_budget_) {
      throw WorkBudgetExceeded(work_budget_, metrics_.round_steps);
    }
    IQRO_FAULT_POINT("reopt.fixpoint");
    Task t = lifo ? queue_.pop_back() : queue_.pop_front();
    switch (t.kind) {
      case Task::Kind::kEnumerate:
        RunEnumerate(t.ep);
        break;
      case Task::Kind::kDrive:
        RunDrive(t.ep, t.alt_idx);
        break;
      case Task::Kind::kBestDirty:
        RunBestDirty(t.ep);
        break;
      case Task::Kind::kBoundDirty:
        RunBoundDirty(t.ep);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void DeclarativeOptimizer::Optimize() {
  if (optimized_) return;
  try {
    OptimizeImpl();
  } catch (...) {
    TearDown();  // all-or-nothing: no partial fixpoint survives a throw
    throw;
  }
}

void DeclarativeOptimizer::OptimizeImpl() {
  optimized_ = true;
  stats_epoch_ = registry_->epoch();
  ++round_;
  metrics_.BeginRound();
  root_ = GetOrCreateEP(EPExpr(enumerator_->RootKey()), EPProp(enumerator_->RootKey()));
  RefUp(root_);  // the query itself holds one virtual reference on the root
  Drain();
  UpdatePeakMemoBytes();
}

void DeclarativeOptimizer::RebuildFromScratch() {
  IQRO_FAULT_POINT("reopt.rebuild");
  TearDown();
  Optimize();
}

void DeclarativeOptimizer::TearDown() {
  for (EPState* ep : eps_in_order_) ep->~EPState();
  eps_in_order_.clear();
  memo_.Clear();
  queue_.clear();
  arena_.Reset();
  scope_index_.Clear();
  seed_scratch_.clear();
  reopt_order_.clear();
  reopt_order_stale_ = false;
  per_ep_walk_key_ = -1;
  per_ep_vector_bytes_cache_ = 0;
  agg_entries_ = 0;
  root_ = nullptr;
  optimized_ = false;
  stats_epoch_ = 0;
  work_budget_ = 0;
  // metrics_ is cumulative across the rebuild (counters are lifetime
  // totals); round_ keeps advancing so touched_round stamps stay unique.
}

void DeclarativeOptimizer::Reoptimize() {
  StatsRegistry::DrainedBatch batch = registry_->TakePendingBatch();
  ReoptimizeBatch(batch.changes, batch.epoch);
}

void DeclarativeOptimizer::EnableConcurrentFlushes() {
  enumerator_->EnableConcurrentUse();
  cost_model_->summaries().EnableConcurrentUse();
}

void DeclarativeOptimizer::AttachSharedSummaryCache(SummarySharedCache* shared) {
  // Sharing is sound only across calculators over one registry: a Summary
  // is a pure function of registry state (and the epoch keys the store).
  IQRO_CHECK(&cost_model_->summaries().registry() == registry_);
  cost_model_->summaries().AttachSharedCache(shared);
}

int64_t DeclarativeOptimizer::ReoptimizeBatch(const std::vector<StatChange>& changes,
                                              uint64_t stats_epoch, int64_t work_budget) {
  try {
    return ReoptimizeBatchImpl(changes, stats_epoch, work_budget);
  } catch (...) {
    TearDown();  // all-or-nothing: no partial fixpoint survives a throw
    throw;
  }
}

int64_t DeclarativeOptimizer::ReoptimizeBatchImpl(const std::vector<StatChange>& changes,
                                                  uint64_t stats_epoch, int64_t work_budget) {
  IQRO_CHECK(optimized_);
  work_budget_ = work_budget;
  // `changes` is (the net of) everything since the last drain, so the
  // post-fixpoint state reflects the drained epoch — passed in by a flush
  // dispatcher, or read live when the caller owns the registry's thread.
  stats_epoch_ = stats_epoch != 0 ? stats_epoch : registry_->epoch();
  // An empty batch still opens a (trivial) round: the per-round touched
  // counters must read 0 after it, not the previous round's values.
  ++round_;
  metrics_.BeginRound();
  if (changes.empty()) {
    work_budget_ = 0;
    return 0;
  }

  // Collect the affected set through the scope index instead of walking the
  // memo: a cardinality change affects every EP whose expression contains
  // its scope (a superset posting-list query); a scan-cost change's scope is
  // the base relation's singleton and only that expression's own property
  // groups recompute (an exact-key lookup). An EP matched by several changes
  // of one batch is considered once (seed_mark round stamp). The candidate
  // counts the traversals examined are surfaced as eps_scanned — the
  // seeding-efficiency counter benches assert against eps_seeded.
  // Seed deltas bottom-up: children settle before parents, and the
  // (expr, none) entry of an expression precedes its (expr, sorted(..))
  // variants, whose sort enforcers reference it. Every ancestor of an
  // affected pair is itself affected (its expression is a superset), so a
  // single ascending pass evicts collected state before the live state
  // referencing it is re-driven. Both seeding paths below visit the
  // affected set in the same (|expr|, prop != none, insertion id) total
  // order — the legacy full-memo stable sort restricted to the affected set
  // — so fault-point ordinals and differential traces are path-independent.
  int64_t seeded = 0;
  auto seed_one = [&](EPState* ep) {
    ++seeded;
    IQRO_FAULT_POINT("reopt.seed");
    if (!Live(*ep)) {
      // Garbage-collected state that the update would invalidate: evict it
      // now (§3.2 + §4 — pruned state is re-derived only if re-referenced).
      Evict(ep);
      return;
    }
    for (uint32_t i = 0; i < ep->alts.size(); ++i) ScheduleDrive(ep, i);
  };

  // Bound the total scan volume before traversing: a batch of dense scopes
  // (several cardinality changes each touching half the memo) would re-walk
  // overlapping posting lists once per change — strictly worse than the one
  // full pass the index replaced. The index path only wins when its scans
  // are substantially smaller than the memo: each candidate it examines
  // costs a posting-entry load, a subset test, a mark probe and a scratch
  // push, and the affected set pays an O(k log k) sort the presorted
  // reopt_order_ walk never does. Empirically the crossover sits around a
  // quarter of the memo (a 1–2-relation cardinality scope on a single query
  // already examines ~half the index — cheaper as one full presorted pass),
  // so take the index path only when the estimated volume stays under
  // size/4. Genuinely sparse batches — scan-cost changes (exact key) and
  // narrow-impact feedback in a many-query session — stay O(affected).
  const int64_t sparse_limit = static_cast<int64_t>(scope_index_.size() / 4);
  int64_t estimated = 0;
  for (const StatChange& c : changes) {
    estimated += c.kind == StatChange::Kind::kCardinality
                     ? scope_index_.SupersetScanCost(c.scope)
                     : scope_index_.ExactScanCost(c.scope);
    if (estimated >= sparse_limit) break;
  }
  int64_t scanned = 0;
  if (estimated < sparse_limit) {
    seed_scratch_.clear();
    auto consider = [&](EPState* ep) {
      if (ep->seed_mark == round_) return;  // matched by an earlier change
      ep->seed_mark = round_;
      if (ep->enumerated) seed_scratch_.push_back(ep);
    };
    for (const StatChange& c : changes) {
      if (c.kind == StatChange::Kind::kCardinality) {
        scanned += scope_index_.ForEachSupersetOf(c.scope, consider);
      } else {  // kScanCost: only the relation's own leaf alternatives move
        scanned += scope_index_.ForEachWithKey(c.scope, consider);
      }
    }
    std::sort(seed_scratch_.begin(), seed_scratch_.end(), SeedOrderLess);
    for (EPState* ep : seed_scratch_) seed_one(ep);
    seed_scratch_.clear();
  } else {
    if (reopt_order_stale_) {
      reopt_order_ = eps_in_order_;
      std::sort(reopt_order_.begin(), reopt_order_.end(), SeedOrderLess);
      reopt_order_stale_ = false;
    }
    RelSet union_mask = 0;
    for (const StatChange& c : changes) union_mask |= c.scope;
    for (EPState* ep : reopt_order_) {
      if ((ep->expr & union_mask) == 0 || !ep->enumerated) continue;
      for (const StatChange& c : changes) {
        const bool affected = c.kind == StatChange::Kind::kCardinality
                                  ? RelIsSubset(c.scope, ep->expr)
                                  : ep->expr == c.scope;
        if (affected) {
          seed_one(ep);
          break;
        }
      }
    }
    scanned = static_cast<int64_t>(eps_in_order_.size());
  }
  metrics_.eps_scanned += scanned;
  metrics_.round_eps_scanned += scanned;
  Drain();
  work_budget_ = 0;
  UpdatePeakMemoBytes();  // O(1) unless this round enumerated new state
  return seeded;
}

RelSet DeclarativeOptimizer::RootRelations() const {
  return EPExpr(enumerator_->RootKey());
}

// ---------------------------------------------------------------------------
// Task bodies
// ---------------------------------------------------------------------------

void DeclarativeOptimizer::RunEnumerate(EPState* ep) {
  ep->enumerate_queued = false;
  if (!ep->enumerated) {
    ep->enumerated = true;
    ++metrics_.eps_enumerated;
    Touch(ep);
    const std::vector<Alt>& alts = enumerator_->Split(ep->expr, ep->prop);
    IQRO_CHECK(!alts.empty());  // every demanded (expr, prop) has an alternative
    ep->alts.reserve(alts.size());
    for (uint32_t i = 0; i < alts.size(); ++i) {
      AltState a;
      a.def = alts[i];
      ep->alts.push_back(a);
      ++metrics_.alts_created;
      // Register permanent parent links (delta propagation and bounds) on
      // the children; creation does not derive them.
      for (int s = 0; s < a.def.NumChildren(); ++s) {
        EPState* c = s == 0 ? GetOrCreateEP(a.def.lexpr, a.def.lprop)
                            : GetOrCreateEP(a.def.rexpr, a.def.rprop);
        ep->alts[i].child[s] = c;
        c->parents.push_back({ep, i, static_cast<uint8_t>(s)});
      }
    }
    ++memo_growth_gen_;  // alt/parent vectors grew: per-EP bytes are stale
  }
  // Drive cheapest-local-cost alternatives first: "the sooner a min-cost
  // plan is encountered, the more effective the pruning is" (§3.1). With
  // the LIFO discipline the last-pushed task runs first, so push in
  // descending order of local cost. The sort runs on a member scratch
  // buffer with an explicit index tie-break — equivalent to a stable sort,
  // but std::sort neither allocates a merge buffer nor falls back to
  // merge passes, and RunEnumerate fires once per EP per round.
  std::vector<std::pair<double, uint32_t>>& order = enum_scratch_;
  order.resize(ep->alts.size());
  for (uint32_t i = 0; i < ep->alts.size(); ++i) {
    order[i] = {CachedLocalCost(*ep, ep->alts[i]), i};
  }
  std::sort(order.begin(), order.end(),
            [](const std::pair<double, uint32_t>& a, const std::pair<double, uint32_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  if (options_.discipline == QueueDiscipline::kFifo) {
    std::reverse(order.begin(), order.end());
  }
  for (const auto& [local, i] : order) ScheduleDrive(ep, i);
}

void DeclarativeOptimizer::RunDrive(EPState* ep, uint32_t alt_idx) {
  AltState& a = ep->alts[alt_idx];
  a.drive_queued = false;
  if (!ep->enumerated) return;
  // Dormant (evicted) state is not maintained; DemandChild or a reference
  // resurrection wakes it up first.
  if (ep->dormant) return;

  const int nch = a.def.NumChildren();
  const double local = CachedLocalCost(*ep, a);
  EPState* lc = nch >= 1 ? ChildEP(a, 0) : nullptr;
  EPState* rc = nch == 2 ? ChildEP(a, 1) : nullptr;
  // Cross-pair reads go through the child's *propagated* best (last_best),
  // never the raw aggregate: change detection dedups against the
  // propagated value, so reading it keeps "value seen" and "delta
  // delivered" consistent under any task order. A child's best is usable
  // even when its reference count is zero — collected state stays exact
  // until a statistics change evicts it.
  const bool l_known = lc != nullptr && std::isfinite(lc->last_best);
  const bool r_known = rc != nullptr && std::isfinite(rc->last_best);
  const double l_best = l_known ? lc->last_best : 0.0;
  const double r_best = r_known ? rc->last_best : 0.0;
  const bool full = (nch == 0) || (nch == 1 && l_known) || (nch == 2 && l_known && r_known);

  // ---- PlanCost maintenance (R6-R8): derivable tuples only ----
  if (full) {
    const double cost = CostModel::Sum(nch >= 1 ? l_best : 0.0, nch == 2 ? r_best : 0.0, local);
    ++metrics_.cost_computations;
    if (!a.ever_costed) {
      a.ever_costed = true;
      ++metrics_.alts_full_costed;
    }
    if (!a.cost_known || a.cost != cost) {
      a.cost_known = true;
      a.cost = cost;
      Touch(ep, alt_idx);
      // Set()/Erase() report min-entry movement, not insertion/removal:
      // detect entry-count changes by size for the exact aggregate counter
      // behind the peak-bytes estimate.
      const size_t agg_size = ep->best_agg.size();
      if (ep->best_agg.Set(alt_idx, cost)) ScheduleBestDirty(ep);
      agg_entries_ += static_cast<int64_t>(ep->best_agg.size() - agg_size);
    }
  } else if (a.cost_known) {
    // Cascading deletion: a supporting child's BestCost is gone.
    a.cost_known = false;
    Touch(ep, alt_idx);
    const size_t agg_size = ep->best_agg.size();
    if (ep->best_agg.Erase(alt_idx)) ScheduleBestDirty(ep);
    agg_entries_ -= static_cast<int64_t>(agg_size - ep->best_agg.size());
  }

  // ---- Aggregate selection (§3.1) / recursive bounding (§3.3) gate ----
  const double cert = full ? a.cost : local + l_best + r_best;
  const double thr = Threshold(*ep);
  bool viable = true;
  if (options_.use_agg_selection) {
    const auto min_entry = ep->best_agg.MinEntry();
    const bool is_min =
        a.cost_known && min_entry.second == alt_idx && min_entry.first == a.cost;
    viable = is_min || cert < thr;
  }
  if (!a.ever_won && a.cost_known) {
    const auto min_entry = ep->best_agg.MinEntry();
    if (min_entry.second == alt_idx && min_entry.first == a.cost) a.ever_won = true;
  }

  // ---- Exploration demand: staged descent, gated by the threshold ----
  // Exploration is monotone within a fixpoint run; it re-fires whenever a
  // child best drops or a threshold rises, which keeps every reachable
  // pair converging to its exact optimum regardless of task order.
  if (viable || !options_.use_source_suppression) {
    if (nch >= 1) DemandChild(lc);
    if (nch == 2) {
      const bool gate = !options_.use_source_suppression ||
                        (l_known && local + l_best < thr) || full;
      if (gate) DemandChild(rc);
    }
  }

  // ---- SearchSpace presence (tuple source suppression, §3.1/§4.1) ----
  // Presence transitions only apply to live pairs; collected pairs hold no
  // SearchSpace rows until re-referenced.
  if (Live(*ep)) {
    const bool want_active = options_.use_source_suppression ? viable : true;
    if (want_active && !a.active) {
      a.active = true;
      Touch(ep, alt_idx);
      if (a.ever_active) {
        ++metrics_.reintroductions;  // undoing tuple source suppression (§4.1)
      }
      a.ever_active = true;
      AltPresenceRefs(ep, alt_idx, +1);
    } else if (!want_active && a.active) {
      a.active = false;
      Touch(ep, alt_idx);
      ++metrics_.suppressions;
      RemoveAltContributions(ep, alt_idx);
      AltPresenceRefs(ep, alt_idx, -1);
    }
    if (options_.use_bounding && a.active) UpdateAltContributions(ep, alt_idx);
  }
}

void DeclarativeOptimizer::RunBestDirty(EPState* ep) {
  ep->best_dirty = false;
  const auto min_entry = ep->best_agg.MinEntry();
  const double best = ep->best_agg.empty() ? kInf : min_entry.first;
  const uint32_t best_idx = ep->best_agg.empty() ? kNoWinner : min_entry.second;
  if (best == ep->last_best) {
    if (best_idx != ep->last_best_idx) {
      // The winning *entry* moved between alternatives whose costs are
      // bit-identical (real ties happen: index scans cost the same over
      // every index). There is no BestCost delta to propagate, but
      // aggregate-selection viability keys on the winning entry, so the
      // group's rows must be re-checked or the new winner can stay
      // suppressed forever (found by the differential fuzzer, seed 280).
      ep->last_best_idx = best_idx;
      if (options_.use_agg_selection && !ep->dormant) {
        for (uint32_t i = 0; i < ep->alts.size(); ++i) ScheduleDrive(ep, i);
      }
    }
    return;
  }
  ep->last_best = best;
  ep->last_best_idx = best_idx;
  Touch(ep);
  // Propagate the BestCost delta to every registered parent alternative —
  // present or suppressed (a suppressed parent may become viable again).
  for (const ParentRef& pr : ep->parents) {
    ScheduleDrive(pr.ep, pr.alt_idx);
    // r1/r2: the sibling's bound contribution reads this best cost.
    if (options_.use_bounding && pr.ep->alts[pr.alt_idx].active) {
      UpdateAltContributions(pr.ep, pr.alt_idx);
    }
  }
  // The pair's own threshold moved: re-check viability of its alternatives.
  // This must include collected (dead) pairs — their cost state is kept
  // exact until eviction, and an alternative whose cost support vanished
  // (e.g. its child was evicted below a dead subtree) can only re-derive
  // through this re-check opening the demand gate. Gating on liveness here
  // left dead aggregates permanently incomplete and re-optimization stuck
  // above the true optimum (found by the differential fuzzer, seed 3014).
  // Dormant pairs stay asleep: RunDrive early-outs on them until a demand
  // resurrects the pair.
  if (options_.use_agg_selection && !ep->dormant) {
    for (uint32_t i = 0; i < ep->alts.size(); ++i) ScheduleDrive(ep, i);
  }
  if (options_.use_bounding) ScheduleBoundDirty(ep);  // r4
}

void DeclarativeOptimizer::RunBoundDirty(EPState* ep) {
  ep->bound_dirty = false;
  const double bound = CurrentBound(*ep);
  if (bound == ep->last_bound) return;
  ep->last_bound = bound;
  Touch(ep);
  // A raised bound may re-introduce previously pruned plans; a lowered
  // bound may prune previously viable ones (§4.3 cases 2 and 3).
  for (uint32_t i = 0; i < ep->alts.size(); ++i) ScheduleDrive(ep, i);
  // The bound feeds the ParentBound contributions of this pair's own
  // children (r1/r2), recursively.
  for (uint32_t i = 0; i < ep->alts.size(); ++i) {
    if (ep->alts[i].active) UpdateAltContributions(ep, i);
  }
}

// ---------------------------------------------------------------------------
// Alternative lifecycle
// ---------------------------------------------------------------------------

void DeclarativeOptimizer::DemandChild(EPState* child) {
  if (!child->enumerated) {
    ScheduleEnumerate(child);
    return;
  }
  if (child->dormant || child->best_agg.empty()) {
    // Evicted (or still-deriving) state: re-derive all of its
    // alternatives; the schedule flags make repeated demands cheap.
    child->dormant = false;
    for (uint32_t i = 0; i < child->alts.size(); ++i) ScheduleDrive(child, i);
  }
}

void DeclarativeOptimizer::AltPresenceRefs(EPState* ep, uint32_t alt_idx, int delta) {
  const AltState& a = ep->alts[alt_idx];
  for (int s = 0; s < a.def.NumChildren(); ++s) {
    EPState* c = ChildEP(a, s);
    if (delta > 0) {
      RefUp(c);
    } else {
      RefDown(c);
    }
  }
}

void DeclarativeOptimizer::RefUp(EPState* child) {
  ++child->refcount;
  if (child->refcount == 1) {
    ++metrics_.ep_activations;
    child->ever_live = true;
    child->dormant = false;
    ScheduleEnumerate(child);
    // Restore SearchSpace presence of a previously collected pair: its
    // alternatives re-evaluate viability on the scheduled drives.
    if (child->enumerated) {
      for (uint32_t i = 0; i < child->alts.size(); ++i) ScheduleDrive(child, i);
    }
  }
}

void DeclarativeOptimizer::RefDown(EPState* child) {
  IQRO_CHECK(child->refcount > 0);
  --child->refcount;
  if (child->refcount == 0 && options_.use_ref_counting) OnDeath(child);
}

void DeclarativeOptimizer::OnDeath(EPState* ep) {
  // §3.2: a zero reference count removes every plan of this pair from the
  // SearchSpace; the removal cascades through children's counts. The
  // associated cost state stays exact until a statistics change evicts it.
  ++metrics_.ep_gcs;
  Touch(ep);
  for (uint32_t i = 0; i < ep->alts.size(); ++i) {
    AltState& a = ep->alts[i];
    if (a.active) {
      a.active = false;  // silent: presence teardown, not a pruning decision
      RemoveAltContributions(ep, i);
      AltPresenceRefs(ep, i, -1);
    }
  }
}

void DeclarativeOptimizer::Evict(EPState* ep) {
  IQRO_CHECK(!Live(*ep));
  Touch(ep);
  ep->dormant = true;
  for (AltState& a : ep->alts) a.cost_known = false;
  agg_entries_ -= static_cast<int64_t>(ep->best_agg.size());
  ep->best_agg.Clear();
  // The deletion of this pair's BestCost cascades to every dependent
  // PlanCost tuple through the normal delta path.
  ScheduleBestDirty(ep);
  ScheduleBoundDirty(ep);
}

// ---------------------------------------------------------------------------
// Recursive bounding (rules r1-r4)
// ---------------------------------------------------------------------------

uint64_t DeclarativeOptimizer::ContributionKey(const EPState& parent, uint32_t alt_idx,
                                               int side) const {
  return (static_cast<uint64_t>(parent.id) << 24) | (static_cast<uint64_t>(alt_idx) << 1) |
         static_cast<uint64_t>(side);
}

void DeclarativeOptimizer::UpdateAltContributions(EPState* ep, uint32_t alt_idx) {
  AltState& a = ep->alts[alt_idx];
  if (!a.active) {
    RemoveAltContributions(ep, alt_idx);
    return;
  }
  const int nch = a.def.NumChildren();
  if (nch == 0) return;
  // Contributions derive from the *propagated* bound and sibling best, for
  // the same consistency reason as RunDrive's child reads.
  const double bound = ep->last_bound;
  const double local = CachedLocalCost(*ep, a);
  for (int s = 0; s < nch; ++s) {
    double contribution = kInf;
    if (std::isfinite(bound)) {
      double sibling_best = 0.0;  // unknown sibling: conservative (loosest)
      if (nch == 2) {
        EPState* sib = ChildEP(a, 1 - s);
        if (std::isfinite(sib->last_best)) sibling_best = sib->last_best;
      }
      contribution = bound - local - sibling_best;  // r1/r2
    }
    // Unchanged contributions skip the child's bound table entirely (the
    // Set would compare equal and return false); NaN marks "none pushed"
    // and compares unequal, forcing the initial Set.
    if (contribution == a.last_contrib[s]) continue;
    a.last_contrib[s] = contribution;
    EPState* child = ChildEP(a, s);
    const size_t agg_size = child->parent_bounds.size();
    if (child->parent_bounds.Set(ContributionKey(*ep, alt_idx, s), contribution)) {
      ScheduleBoundDirty(child);  // r3: MaxBound is the max of contributions
    }
    agg_entries_ += static_cast<int64_t>(child->parent_bounds.size() - agg_size);
  }
}

void DeclarativeOptimizer::RemoveAltContributions(EPState* ep, uint32_t alt_idx) {
  if (!options_.use_bounding) return;
  AltState& a = ep->alts[alt_idx];
  for (int s = 0; s < a.def.NumChildren(); ++s) {
    a.last_contrib[s] = kNoContribution;
    EPState* child = ChildEP(a, s);
    const size_t agg_size = child->parent_bounds.size();
    if (child->parent_bounds.Erase(ContributionKey(*ep, alt_idx, s))) {
      ScheduleBoundDirty(child);
    }
    agg_entries_ -= static_cast<int64_t>(agg_size - child->parent_bounds.size());
  }
}

// ---------------------------------------------------------------------------
// Results and inspection
// ---------------------------------------------------------------------------

namespace {
// ExtremeAgg entry estimate: a sorted-vector entry plus a flat-map slot per
// retained entry, at the tables' typical load factor.
constexpr size_t kAggEntryBytes = 40;
}  // namespace

size_t DeclarativeOptimizer::PerEpVectorBytes() const {
  size_t bytes = 0;
  for (const EPState* ep : eps_in_order_) {
    bytes += ep->alts.capacity() * sizeof(AltState);
    bytes += ep->parents.capacity() * sizeof(ParentRef);
  }
  return bytes;
}

size_t DeclarativeOptimizer::PerEpBytes() const {
  // Exact for the vectors; the ExtremeAgg contribution is an estimate. The
  // aggregate entries are re-counted from the memo here rather than read
  // from agg_entries_, so EstimatedMemoBytes() independently cross-checks
  // the incremental counter the peak metric relies on.
  size_t entries = 0;
  for (const EPState* ep : eps_in_order_) {
    entries += ep->best_agg.size() + ep->parent_bounds.size();
  }
  return PerEpVectorBytes() + entries * kAggEntryBytes;
}

size_t DeclarativeOptimizer::StructuralBytes() const {
  return arena_.bytes_reserved() + memo_.capacity_bytes() +
         eps_in_order_.capacity() * sizeof(EPState*) + scope_index_.bytes() +
         seed_scratch_.capacity() * sizeof(EPState*) +
         reopt_order_.capacity() * sizeof(EPState*) + queue_.capacity_bytes();
}

void DeclarativeOptimizer::UpdatePeakMemoBytes() {
  // Sampled at the end of every (re)optimization round, O(1): the
  // structural terms are read fresh (they only grow, and the worklist's
  // high-water capacity is exactly what a seeding burst inflates), the
  // aggregate-entry term comes from the incrementally maintained exact
  // counter — so churn that refills aggregates on an already-enumerated
  // memo advances the peak — and the vector-capacity walk is cached, keyed
  // on memo_growth_gen_ (bumped only by the structural growth events: new
  // pairs and first-time enumerations).
  if (per_ep_walk_key_ != memo_growth_gen_) {
    per_ep_vector_bytes_cache_ = PerEpVectorBytes();
    per_ep_walk_key_ = memo_growth_gen_;
  }
  const int64_t bytes =
      static_cast<int64_t>(StructuralBytes() + per_ep_vector_bytes_cache_ +
                           static_cast<size_t>(agg_entries_) * kAggEntryBytes);
  if (bytes > metrics_.peak_memo_bytes) metrics_.peak_memo_bytes = bytes;
}

double DeclarativeOptimizer::BestCost() const {
  if (root_ == nullptr || root_->best_agg.empty()) return kInf;
  return root_->best_agg.MinValue();
}

std::unique_ptr<PlanTree> DeclarativeOptimizer::GetBestPlan() const {
  IQRO_CHECK(root_ != nullptr && !root_->best_agg.empty());
  AltChooser chooser = [this](RelSet expr, PropId prop) -> std::pair<Alt, double> {
    EPState* ep = FindEP(expr, prop);
    IQRO_CHECK(ep != nullptr && !ep->best_agg.empty());
    auto [cost, idx] = ep->best_agg.MinEntry();
    return {ep->alts[idx].def, cost};
  };
  return BuildPlanTree(root_->expr, root_->prop, chooser, cost_model_->summaries(),
                       enumerator_->props());
}

int64_t DeclarativeOptimizer::NumLiveEps() const {
  int64_t n = 0;
  for (const EPState* ep : eps_in_order_) {
    if (Live(*ep) && ep->enumerated) ++n;
  }
  return n;
}

int64_t DeclarativeOptimizer::NumActiveAlts() const {
  int64_t n = 0;
  for (const EPState* ep : eps_in_order_) {
    for (const AltState& a : ep->alts) {
      if (a.active) ++n;
    }
  }
  return n;
}

int64_t DeclarativeOptimizer::NumViableAlts() const {
  int64_t n = 0;
  for (const EPState* ep : eps_in_order_) {
    for (const AltState& a : ep->alts) {
      if (a.ever_won) ++n;
    }
  }
  return n;
}

int64_t DeclarativeOptimizer::NumCostedAlts() const {
  int64_t n = 0;
  for (const EPState* ep : eps_in_order_) {
    for (const AltState& a : ep->alts) {
      if (a.cost_known) ++n;
    }
  }
  return n;
}

std::string DeclarativeOptimizer::DumpState() const {
  std::string out;
  const QuerySpec& q = enumerator_->query();
  const PropTable& props = enumerator_->props();
  for (const EPState* ep : eps_in_order_) {
    if (!ep->enumerated) continue;
    out += StrFormat("EP %s %s live=%d ref=%d best=%s bound=%s\n",
                     RelSetToString(ep->expr).c_str(), props.ToString(ep->prop, &q).c_str(),
                     Live(*ep) ? 1 : 0, ep->refcount,
                     DoubleToString(ep->best_agg.empty() ? kInf : ep->best_agg.MinValue())
                         .c_str(),
                     DoubleToString(CurrentBound(*ep)).c_str());
    for (size_t i = 0; i < ep->alts.size(); ++i) {
      const AltState& a = ep->alts[i];
      out += StrFormat("  [%zu] %s %s l=%s r=%s active=%d cost=%s\n", i,
                       LogOpName(a.def.logop), PhysOpName(a.def.phyop),
                       RelSetToString(a.def.lexpr).c_str(), RelSetToString(a.def.rexpr).c_str(),
                       a.active ? 1 : 0,
                       a.cost_known ? DoubleToString(a.cost).c_str() : "?");
    }
  }
  return out;
}

std::string DeclarativeOptimizer::CanonicalDumpState() const {
  // Render-only walk: string callers (tests, oracles) skip the structured
  // ops/join-order views the service layer's notifications need.
  return ComputePlanDigestImpl(/*want_structured=*/false).canonical;
}

PlanDigest DeclarativeOptimizer::ComputePlanDigest() const {
  return ComputePlanDigestImpl(/*want_structured=*/true);
}

PlanDigest DeclarativeOptimizer::ComputePlanDigestImpl(bool want_structured) const {
  const QuerySpec& q = enumerator_->query();
  const PropTable& props = enumerator_->props();
  // Collect the winner closure: from the root, each pair contributes its
  // BestCost-winning alternative (deterministically tie-broken by the
  // aggregate's (value, alt-index) order) and recurses into that winner's
  // children. Nothing weaker is order-independent: bare SearchSpace
  // presence of a row whose cost support was pruned away persists until
  // suppression retracts it, and whether an *equal*-cost loser keeps a
  // derivable PlanCost depends on whether it was costed before or after
  // the threshold reached it (the paper's Proposition 5 assumes distinct
  // costs; real ties are decided by history). The winner closure — the DP
  // optimum's full substructure with exact values at every node — is the
  // state §4's equality claim pins down, so that is what the canonical
  // dump projects.
  std::vector<const EPState*> reach;
  std::unordered_set<const EPState*> seen;
  if (root_ != nullptr && root_->enumerated) {
    seen.insert(root_);
    reach.push_back(root_);
  }
  for (size_t i = 0; i < reach.size(); ++i) {
    const EPState* ep = reach[i];
    if (ep->best_agg.empty()) continue;
    const AltState& win = ep->alts[ep->best_agg.MinEntry().second];
    for (int s = 0; s < win.def.NumChildren(); ++s) {
      const EPState* c = ChildEP(win, s);
      if (c != nullptr && c->enumerated && seen.insert(c).second) reach.push_back(c);
    }
  }
  // Sort by resolved property content, not PropId: interning order depends
  // on exploration history and may differ between two optimizers.
  auto prop_key = [&](PropId id) {
    const Prop& p = props.Get(id);
    return std::tuple(static_cast<int>(p.kind), p.col.rel, p.col.col);
  };
  std::sort(reach.begin(), reach.end(), [&](const EPState* a, const EPState* b) {
    const int ca = RelCount(a->expr);
    const int cb = RelCount(b->expr);
    if (ca != cb) return ca < cb;
    if (a->expr != b->expr) return a->expr < b->expr;
    return prop_key(a->prop) < prop_key(b->prop);
  });
  PlanDigest digest;
  digest.best_cost = BestCost();
  if (want_structured) digest.ops.reserve(reach.size());
  for (const EPState* ep : reach) {
    PlanDigestOp op;
    op.expr = ep->expr;
    op.prop = props.ToString(ep->prop, &q);
    op.cost = ep->best_agg.empty() ? kInf : ep->best_agg.MinValue();
    digest.canonical += StrFormat("EP %s %s best=%s\n", RelSetToString(op.expr).c_str(),
                                  op.prop.c_str(), DoubleToString(op.cost).c_str());
    if (!ep->best_agg.empty()) {
      const AltState& a = ep->alts[ep->best_agg.MinEntry().second];
      op.has_win = true;
      op.logop = a.def.logop;
      op.phyop = a.def.phyop;
      std::string children;
      if (a.def.NumChildren() >= 1) {
        op.lexpr = a.def.lexpr;
        op.lprop = props.ToString(a.def.lprop, &q);
        children += StrFormat(" l=%s%s", RelSetToString(op.lexpr).c_str(), op.lprop.c_str());
      }
      if (a.def.NumChildren() == 2) {
        op.rexpr = a.def.rexpr;
        op.rprop = props.ToString(a.def.rprop, &q);
        children += StrFormat(" r=%s%s", RelSetToString(op.rexpr).c_str(), op.rprop.c_str());
      }
      digest.canonical +=
          StrFormat("  win %s %s%s cost=%s\n", LogOpName(a.def.logop), PhysOpName(a.def.phyop),
                    children.c_str(), DoubleToString(a.cost).c_str());
    }
    if (want_structured) digest.ops.push_back(std::move(op));
  }
  // Join order: the best plan's leaf slots in tree order (left before
  // right), following winners from the root — the executor-facing "which
  // pipelined prefix survived" view of the same closure.
  if (want_structured && root_ != nullptr && root_->enumerated && !root_->best_agg.empty()) {
    auto walk = [this](auto&& self, const EPState* ep, std::vector<int>& out) -> void {
      if (ep == nullptr || !ep->enumerated || ep->best_agg.empty()) return;
      const AltState& win = ep->alts[ep->best_agg.MinEntry().second];
      if (win.def.NumChildren() == 0) {
        out.push_back(RelLowest(ep->expr));
        return;
      }
      for (int s = 0; s < win.def.NumChildren(); ++s) {
        self(self, ChildEP(win, s), out);
      }
    };
    walk(walk, root_, digest.join_order);
  }
  return digest;
}

// ---------------------------------------------------------------------------
// Memo serialization (lifecycle seeds and service snapshots)
// ---------------------------------------------------------------------------
//
// Payload layout (version 1, common/serialize.h little-endian encoding):
//
//   u8  version
//   u8  options fingerprint (pruning toggles + queue discipline)
//   u32 root expr, root prop content        -- world identity check
//   u64 EP count
//   block 1, per EP in insertion order:
//     u32 expr; prop content (u8 kind, i32 rel, i32 col);
//     u8 flags (enumerated | ever_live<<1 | dormant<<2)
//   block 2, per *enumerated* EP in the same order:
//     u32 alt count (must match Split() in the restoring world)
//     per alt: u8 flags (active | cost_known<<1 | ever_costed<<2 |
//                        ever_active<<3 | ever_won<<4);
//              f64 cost (present iff cost_known);
//              f64 last_contrib[0], f64 last_contrib[1] (raw bits, NaN = none)
//   block 3, per EP in the same order:
//     u32 parent count; per parent: u32 parent id, u32 alt idx, u8 side
//
// Alternative *definitions* are not serialized: they are a pure function of
// the world (PlanEnumerator::Split is memoized and stable-ordered), so the
// restore re-derives them and cross-checks the count — a seed applied to
// the wrong world fails with a typed kMismatch instead of silently wiring
// a different plan space. Properties travel as content (kind + column), not
// PropId: interning order is history-dependent, so ids are re-interned on
// restore. Parent-link order IS serialized: it is the one piece of wiring
// whose order reflects execution history (enumeration order, not insertion
// order), and restoring it exactly makes the rebuilt memo byte-identical
// in every observable, not merely canonically equal.

namespace {
constexpr uint8_t kMemoSeedVersion = 1;
}  // namespace

namespace {
uint8_t OptionsFingerprint(const OptimizerOptions& o) {
  return static_cast<uint8_t>((o.use_agg_selection ? 1 : 0) |
                              (o.use_source_suppression ? 2 : 0) |
                              (o.use_ref_counting ? 4 : 0) | (o.use_bounding ? 8 : 0) |
                              (o.discipline == QueueDiscipline::kFifo ? 16 : 0));
}

void PutProp(ByteWriter& w, const Prop& p) {
  w.PutU8(static_cast<uint8_t>(p.kind));
  w.PutI32(p.col.rel);
  w.PutI32(p.col.col);
}

Prop GetProp(ByteReader& r) {
  const uint8_t kind = r.GetU8();
  if (kind > static_cast<uint8_t>(Prop::Kind::kIndexed)) {
    throw SerializeError(SerializeError::Code::kBadSection,
                         "memo seed: invalid property kind " + std::to_string(kind));
  }
  Prop p;
  p.kind = static_cast<Prop::Kind>(kind);
  p.col.rel = r.GetI32();
  p.col.col = r.GetI32();
  return p;
}
}  // namespace

void DeclarativeOptimizer::SerializeState(std::string* out) const {
  IQRO_CHECK(optimized_);
  const PropTable& props = enumerator_->props();
  ByteWriter w(out);
  w.PutU8(kMemoSeedVersion);
  w.PutU8(OptionsFingerprint(options_));
  const EPKey root_key = enumerator_->RootKey();
  w.PutU32(EPExpr(root_key));
  PutProp(w, props.Get(EPProp(root_key)));
  w.PutU64(eps_in_order_.size());
  for (const EPState* ep : eps_in_order_) {
    w.PutU32(ep->expr);
    PutProp(w, props.Get(ep->prop));
    w.PutU8(static_cast<uint8_t>((ep->enumerated ? 1 : 0) | (ep->ever_live ? 2 : 0) |
                                 (ep->dormant ? 4 : 0)));
  }
  for (const EPState* ep : eps_in_order_) {
    if (!ep->enumerated) continue;
    w.PutU32(static_cast<uint32_t>(ep->alts.size()));
    for (const AltState& a : ep->alts) {
      w.PutU8(static_cast<uint8_t>((a.active ? 1 : 0) | (a.cost_known ? 2 : 0) |
                                   (a.ever_costed ? 4 : 0) | (a.ever_active ? 8 : 0) |
                                   (a.ever_won ? 16 : 0)));
      // Only derivable costs travel: a stale `cost` value behind a false
      // cost_known is execution-history noise, and skipping it keeps the
      // seed a deterministic function of the logical state.
      if (a.cost_known) w.PutF64(a.cost);
      w.PutF64(a.last_contrib[0]);
      w.PutF64(a.last_contrib[1]);
    }
  }
  for (const EPState* ep : eps_in_order_) {
    w.PutU32(static_cast<uint32_t>(ep->parents.size()));
    for (const ParentRef& pr : ep->parents) {
      w.PutU32(pr.ep->id);
      w.PutU32(pr.alt_idx);
      w.PutU8(pr.side);
    }
  }
}

void DeclarativeOptimizer::RestoreState(const std::string& payload, uint64_t stats_epoch) {
  TearDown();
  try {
    ByteReader r(payload);
    const uint8_t version = r.GetU8();
    if (version != kMemoSeedVersion) {
      throw SerializeError(SerializeError::Code::kBadVersion,
                           "memo seed: version " + std::to_string(version) + " != " +
                               std::to_string(kMemoSeedVersion));
    }
    const uint8_t fp = r.GetU8();
    if (fp != OptionsFingerprint(options_)) {
      throw SerializeError(SerializeError::Code::kMismatch,
                           "memo seed: optimizer options fingerprint " + std::to_string(fp) +
                               " != " + std::to_string(OptionsFingerprint(options_)));
    }
    PropTable& props = enumerator_->mutable_props();
    const EPKey root_key = enumerator_->RootKey();
    const RelSet seed_root_expr = r.GetU32();
    const Prop seed_root_prop = GetProp(r);
    if (seed_root_expr != EPExpr(root_key) ||
        !(seed_root_prop == props.Get(EPProp(root_key)))) {
      throw SerializeError(SerializeError::Code::kMismatch,
                           "memo seed: root key does not match this query's world");
    }
    const uint64_t count = r.GetU64();

    // Pass 1: recreate every pair in insertion order — ids, the memo table,
    // the scope index and eps_in_order_ all land exactly as serialized.
    for (uint64_t i = 0; i < count; ++i) {
      const RelSet expr = r.GetU32();
      const Prop prop = GetProp(r);
      const uint8_t flags = r.GetU8();
      EPState* ep = GetOrCreateEP(expr, props.Intern(prop));
      if (ep->id != static_cast<uint32_t>(i)) {
        throw SerializeError(SerializeError::Code::kBadSection,
                             "memo seed: duplicate (expr, prop) pair at record " +
                                 std::to_string(i));
      }
      ep->enumerated = (flags & 1) != 0;
      ep->ever_live = (flags & 2) != 0;
      ep->dormant = (flags & 4) != 0;
    }

    // Pass 2: re-derive alternative definitions from the world, wire child
    // pointers, and apply the serialized per-alternative state. The closure
    // property of RunEnumerate (every child of an enumerated alternative is
    // itself a memo pair) guarantees FindEP succeeds on a well-formed seed.
    for (EPState* ep : eps_in_order_) {
      if (!ep->enumerated) continue;
      const uint32_t nalts = r.GetU32();
      const std::vector<Alt>& defs = enumerator_->Split(ep->expr, ep->prop);
      if (nalts != defs.size()) {
        throw SerializeError(SerializeError::Code::kMismatch,
                             "memo seed: alternative count " + std::to_string(nalts) +
                                 " != enumerator's " + std::to_string(defs.size()));
      }
      ep->alts.reserve(nalts);
      for (uint32_t i = 0; i < nalts; ++i) {
        AltState a;
        a.def = defs[i];
        const uint8_t flags = r.GetU8();
        a.active = (flags & 1) != 0;
        a.cost_known = (flags & 2) != 0;
        a.ever_costed = (flags & 4) != 0;
        a.ever_active = (flags & 8) != 0;
        a.ever_won = (flags & 16) != 0;
        if (a.cost_known) a.cost = r.GetF64();
        a.last_contrib[0] = r.GetF64();
        a.last_contrib[1] = r.GetF64();
        for (int s = 0; s < a.def.NumChildren(); ++s) {
          EPState* c = s == 0 ? FindEP(a.def.lexpr, a.def.lprop)
                              : FindEP(a.def.rexpr, a.def.rprop);
          if (c == nullptr) {
            throw SerializeError(SerializeError::Code::kMismatch,
                                 "memo seed: child pair of an enumerated alternative "
                                 "is missing from the seed");
          }
          a.child[s] = c;
        }
        ep->alts.push_back(a);
        if (a.cost_known) {
          const size_t agg_size = ep->best_agg.size();
          ep->best_agg.Set(i, a.cost);
          agg_entries_ += static_cast<int64_t>(ep->best_agg.size() - agg_size);
        }
      }
      ++memo_growth_gen_;  // alt vectors grew, as in RunEnumerate
    }

    // Pass 3: parent links, in the serialized (execution-history) order,
    // each validated against the child wiring pass 2 produced.
    for (EPState* ep : eps_in_order_) {
      const uint32_t nparents = r.GetU32();
      ep->parents.reserve(nparents);
      for (uint32_t i = 0; i < nparents; ++i) {
        const uint32_t pid = r.GetU32();
        const uint32_t alt_idx = r.GetU32();
        const uint8_t side = r.GetU8();
        if (pid >= eps_in_order_.size() || side > 1) {
          throw SerializeError(SerializeError::Code::kBadSection,
                               "memo seed: parent reference out of range");
        }
        EPState* parent = eps_in_order_[pid];
        if (!parent->enumerated || alt_idx >= parent->alts.size() ||
            parent->alts[alt_idx].child[side] != ep) {
          throw SerializeError(SerializeError::Code::kMismatch,
                               "memo seed: parent link disagrees with alternative wiring");
        }
        ep->parents.push_back({parent, alt_idx, side});
      }
    }
    if (!r.AtEnd()) {
      throw SerializeError(SerializeError::Code::kBadSection,
                           "memo seed: " + std::to_string(r.remaining()) +
                               " trailing bytes after the last section");
    }

    // Pass 4 (derived state, no payload reads): reference counts are a pure
    // function of active parent alternatives (+1 for the root's virtual
    // reference) — recomputed directly, NEVER via RefUp, which would
    // schedule enumeration/drive work and break the empty-queue postcondition.
    // ParentBound contributions are the exact bijection of every active
    // alternative's non-NaN last_contrib; the propagated best/bound values
    // are structural at any drained-queue state (last_bound stays +inf with
    // bounding off because ScheduleBoundDirty never runs there).
    root_ = FindEP(EPExpr(root_key), EPProp(root_key));
    if (root_ == nullptr) {
      throw SerializeError(SerializeError::Code::kMismatch,
                           "memo seed: root pair missing from the seed");
    }
    root_->refcount = 1;
    for (EPState* ep : eps_in_order_) {
      for (uint32_t i = 0; i < ep->alts.size(); ++i) {
        AltState& a = ep->alts[i];
        if (!a.active) continue;
        for (int s = 0; s < a.def.NumChildren(); ++s) {
          ++a.child[s]->refcount;
          const double contrib = a.last_contrib[s];
          if (!std::isnan(contrib)) {
            EPState* child = a.child[s];
            const size_t agg_size = child->parent_bounds.size();
            child->parent_bounds.Set(ContributionKey(*ep, i, s), contrib);
            agg_entries_ += static_cast<int64_t>(child->parent_bounds.size() - agg_size);
          }
        }
      }
    }
    for (EPState* ep : eps_in_order_) {
      if (ep->best_agg.empty()) {
        ep->last_best = kInf;
        ep->last_best_idx = kNoWinner;
      } else {
        const auto min_entry = ep->best_agg.MinEntry();
        ep->last_best = min_entry.first;
        ep->last_best_idx = min_entry.second;
      }
      ep->last_bound = options_.use_bounding ? CurrentBound(*ep) : kInf;
    }
    optimized_ = true;
    stats_epoch_ = stats_epoch != 0 ? stats_epoch : registry_->epoch();
    ++round_;  // keep touched_round stamps unique across the restore
    UpdatePeakMemoBytes();
  } catch (...) {
    TearDown();  // all-or-nothing: no partial restore survives a throw
    throw;
  }
}

void DeclarativeOptimizer::ValidateInvariants() const {
  IQRO_CHECK(queue_.empty());  // only meaningful at fixpoint
  // The incremental aggregate-entry counter behind peak_memo_bytes must
  // agree with a fresh count over the memo.
  int64_t agg_entries = 0;
  for (const EPState* ep : eps_in_order_) {
    agg_entries += static_cast<int64_t>(ep->best_agg.size() + ep->parent_bounds.size());
  }
  IQRO_CHECK(agg_entries == agg_entries_);
  for (const EPState* ep : eps_in_order_) {
    // Reference counts equal the number of active parent alternatives.
    int expected = (ep == root_) ? 1 : 0;
    for (const ParentRef& pr : ep->parents) {
      if (pr.ep->alts[pr.alt_idx].active) ++expected;
    }
    IQRO_CHECK(expected == ep->refcount);
    if (!ep->enumerated) {
      IQRO_CHECK(ep->best_agg.empty());
      continue;
    }
    if (ep->dormant) {
      IQRO_CHECK(!Live(*ep));
      IQRO_CHECK(ep->best_agg.empty());
      for (const AltState& a : ep->alts) {
        IQRO_CHECK(!a.cost_known);
        IQRO_CHECK(!a.active);
      }
      continue;
    }
    const double thr = Threshold(*ep);
    for (uint32_t i = 0; i < ep->alts.size(); ++i) {
      const AltState& a = ep->alts[i];
      // The aggregate's contents mirror cost_known flags.
      IQRO_CHECK(ep->best_agg.Contains(i) == a.cost_known);
      if (a.cost_known) {
        IQRO_CHECK(ep->best_agg.ValueOf(i) == a.cost);
        // Derivable costs are fresh (local + children's current bests) —
        // but only up to the statistics the optimizer has consumed: with
        // pending registry changes the stored values legitimately lag.
        if (registry_->HasPending()) continue;
        double expect = LocalCost(*ep, a.def);
        for (int s = 0; s < a.def.NumChildren(); ++s) {
          EPState* c = ChildEP(a, s);
          IQRO_CHECK(!c->best_agg.empty());  // supported
          expect += c->best_agg.MinValue();
        }
        if (!(std::abs(a.cost - expect) <= 1e-9 * std::max(1.0, std::abs(expect)))) {
          std::fprintf(stderr,
                       "stale cost: ep=%s prop=%d alt=%u cost=%.6f expect=%.6f local=%.6f "
                       "queued=%d\n",
                       RelSetToString(ep->expr).c_str(), ep->prop, i, a.cost, expect,
                       LocalCost(*ep, a.def), a.drive_queued ? 1 : 0);
          for (int s = 0; s < a.def.NumChildren(); ++s) {
            EPState* c = ChildEP(a, s);
            std::fprintf(stderr,
                         "  child%d=%s prop=%d last_best=%.6f agg_min=%.6f dormant=%d "
                         "best_dirty=%d\n",
                         s, RelSetToString(c->expr).c_str(), c->prop, c->last_best,
                         c->best_agg.empty() ? -1.0 : c->best_agg.MinValue(),
                         c->dormant ? 1 : 0, c->best_dirty ? 1 : 0);
          }
        }
        IQRO_CHECK(std::abs(a.cost - expect) <= 1e-9 * std::max(1.0, std::abs(expect)));
      }
      if (!Live(*ep)) IQRO_CHECK(!a.active);  // collected pairs hold no rows
      if (Live(*ep) && options_.use_source_suppression && a.cost_known && !a.active) {
        // Suppressed-but-derivable alternatives are justified: they are at
        // or above the pair's threshold.
        IQRO_CHECK(a.cost >= thr - 1e-9 * std::max(1.0, std::abs(thr)));
      }
    }
    if (Live(*ep) && !ep->best_agg.empty() && options_.use_source_suppression) {
      // The group minimum always survives aggregate selection.
      auto [cost, idx] = ep->best_agg.MinEntry();
      if (!ep->alts[idx].active) {
        std::fprintf(stderr, "min not active: ep=%s prop=%d alt=%u cost=%.6f thr=%.6f\n",
                     RelSetToString(ep->expr).c_str(), ep->prop, idx, cost, Threshold(*ep));
        for (uint32_t i = 0; i < ep->alts.size(); ++i) {
          const AltState& a = ep->alts[i];
          std::fprintf(stderr,
                       "  alt %u active=%d cost_known=%d cost=%.6f ever_active=%d queued=%d\n",
                       i, a.active ? 1 : 0, a.cost_known ? 1 : 0, a.cost, a.ever_active ? 1 : 0,
                       a.drive_queued ? 1 : 0);
        }
      }
      IQRO_CHECK(ep->alts[idx].active);
    }
    IQRO_CHECK(ep->last_best == (ep->best_agg.empty() ? kInf : ep->best_agg.MinValue()));
    IQRO_CHECK(ep->last_best_idx ==
               (ep->best_agg.empty() ? kNoWinner : ep->best_agg.MinEntry().second));
    if (options_.use_bounding) IQRO_CHECK(ep->last_bound == CurrentBound(*ep));
  }
}

}  // namespace iqro
