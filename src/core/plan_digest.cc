#include "core/plan_digest.h"

#include <algorithm>
#include <cstddef>

namespace iqro {

PlanDiffSummary DiffPlanDigests(const PlanDigest& before, const PlanDigest& after) {
  PlanDiffSummary d;
  d.total_operators = static_cast<int>(after.ops.size());
  d.join_order_len = static_cast<int>(after.join_order.size());
  // Each closure holds at most one op per (expr, prop) pair, so pairing
  // slots is a lookup, not an alignment problem. Closures are small (the
  // best plan's substructure), so a linear probe per op beats hashing.
  for (const PlanDigestOp& op : after.ops) {
    const auto it = std::find_if(
        before.ops.begin(), before.ops.end(), [&op](const PlanDigestOp& b) {
          return b.expr == op.expr && b.prop == op.prop;
        });
    if (it == before.ops.end() || !it->SameOperator(op)) ++d.changed_operators;
  }
  const size_t n = std::min(before.join_order.size(), after.join_order.size());
  size_t p = 0;
  while (p < n && before.join_order[p] == after.join_order[p]) ++p;
  d.join_order_prefix = static_cast<int>(p);
  return d;
}

}  // namespace iqro
