// The declarative specification the optimizer executes: the ten datalog
// rules of Appendix A (plan enumeration R1-R5, cost estimation R6-R8, plan
// selection R9-R10) and the recursive-bounding rules r1-r4 of Figure 3,
// plus a DOT rendering of the Figure-1 dataflow. DeclarativeOptimizer is
// the hand-wired typed realization of exactly this program; the generic
// datalog engine (src/datalog) can execute the same rules directly at
// small scale (see examples/datalog_optimizer.cpp and the tests).
#ifndef IQRO_CORE_RULES_H_
#define IQRO_CORE_RULES_H_

#include <string>
#include <vector>

namespace iqro {

struct DatalogRuleSpec {
  std::string name;   // "R1".."R10", "r1".."r4"
  std::string stage;  // "enumeration" / "cost" / "selection" / "bounding"
  std::string text;   // the rule as written in the paper
};

/// All 14 rules in paper order.
const std::vector<DatalogRuleSpec>& OptimizerRules();

/// DOT graph of the Figure-1 dataflow (stages, views, sideways arcs).
std::string OptimizerDataflowDot();

}  // namespace iqro

#endif  // IQRO_CORE_RULES_H_
