// Executor: instantiates a physical PlanTree (the optimizer's BestPlan
// output) as an operator tree over catalog tables and runs it, collecting
// per-expression observed cardinalities for runtime feedback (§5.2.2).
#ifndef IQRO_EXEC_EXECUTOR_H_
#define IQRO_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "enumerate/plan_tree.h"
#include "exec/operators.h"
#include "query/join_graph.h"

namespace iqro {

struct ObservedCardinality {
  RelSet expr = 0;
  int64_t rows = 0;
};

struct ExecutionResult {
  /// Final output rows (group keys + aggregate values when the query
  /// aggregates). Empty when collect_rows was false.
  std::vector<Row> rows;
  /// Output row count of the root operator (pre-collection).
  int64_t root_rows = 0;
  /// Observed output cardinality per plan expression, leaves included,
  /// ascending by expression size. The inner (indexed) side of an
  /// index-NL join is not separately observable.
  std::vector<ObservedCardinality> observed;
};

class Executor {
 public:
  Executor(const Catalog* catalog, const QuerySpec* query, const JoinGraph* graph,
           const PropTable* props);

  /// Runs `plan` to completion. Applies the query's aggregation block (if
  /// any) on top of the join tree.
  ExecutionResult Execute(const PlanTree& plan, bool collect_rows = true);

 private:
  std::unique_ptr<Operator> Build(const PlanTree& node,
                                  std::vector<Operator*>* data_ops) const;
  const Table& TableOf(int rel) const;

  const Catalog* catalog_;
  const QuerySpec* query_;
  const JoinGraph* graph_;
  const PropTable* props_;
};

}  // namespace iqro

#endif  // IQRO_EXEC_EXECUTOR_H_
