#include "exec/operators.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "common/check.h"

namespace iqro {

namespace {
/// Copies every relation's columns from `src_row` (laid out by `src`) into
/// the matching offsets of `out` (laid out by `dst`).
void ScatterColumns(const Layout& src, const Row& src_row, const Layout& dst, Row* out) {
  RelForEach(src.expr(), [&](int r) {
    int from = src.RelOffset(r);
    int width = static_cast<int>(src_row.size()) - from;
    RelForEach(src.expr(), [&](int r2) {
      int o = src.RelOffset(r2);
      if (o > from && o - from < width) width = o - from;
    });
    std::copy(src_row.begin() + from, src_row.begin() + from + width,
              out->begin() + dst.RelOffset(r));
  });
}
}  // namespace

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

Layout::Layout(RelSet expr, const QuerySpec& query, const Catalog& catalog) : expr_(expr) {
  int offset = 0;
  RelForEach(expr, [&](int r) {
    rel_offset_[r] = offset;
    offset += catalog.table(query.relations[static_cast<size_t>(r)].table).num_columns();
  });
  width_ = offset;
}

int Layout::RelOffset(int rel) const {
  auto it = rel_offset_.find(rel);
  IQRO_DCHECK(it != rel_offset_.end());
  return it->second;
}

int Layout::OffsetOf(ColRef ref) const { return RelOffset(ref.rel) + ref.col; }

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

namespace {
bool CompareValues(int64_t a, PredOp op, int64_t v, int64_t v2) {
  switch (op) {
    case PredOp::kEq:
      return a == v;
    case PredOp::kNe:
      return a != v;
    case PredOp::kLt:
      return a < v;
    case PredOp::kLe:
      return a <= v;
    case PredOp::kGt:
      return a > v;
    case PredOp::kGe:
      return a >= v;
    case PredOp::kBetween:
      return a >= v && a <= v2;
  }
  return false;
}
}  // namespace

bool EvalLocalPredicate(const LocalPredicate& pred, const Row& row, const Layout& layout) {
  int64_t a = row[static_cast<size_t>(layout.OffsetOf({pred.rel, pred.col}))];
  return CompareValues(a, pred.op, pred.value, pred.value2);
}

bool EvalJoinPredicate(const JoinPredicate& join, const Row& row, const Layout& layout) {
  int64_t l = row[static_cast<size_t>(layout.OffsetOf({join.left_rel, join.left_col}))];
  int64_t r = row[static_cast<size_t>(layout.OffsetOf({join.right_rel, join.right_col}))];
  return CompareValues(l, join.op, r, r);
}

// ---------------------------------------------------------------------------
// SeqScan
// ---------------------------------------------------------------------------

SeqScanOp::SeqScanOp(const Table* table, int rel, std::vector<LocalPredicate> locals,
                     const QuerySpec& query, const Catalog& catalog)
    : table_(table), rel_(rel), locals_(std::move(locals)) {
  layout_ = Layout(RelSingleton(rel), query, catalog);
}

void SeqScanOp::Open() {
  cursor_ = 0;
  rows_out_ = 0;
}

bool SeqScanOp::Next(Row* out) {
  while (cursor_ < table_->num_rows()) {
    auto row = table_->Row(cursor_++);
    out->assign(row.begin(), row.end());
    bool pass = true;
    for (const auto& p : locals_) {
      if (!EvalLocalPredicate(p, *out, layout_)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      ++rows_out_;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

SortOp::SortOp(std::unique_ptr<Operator> input, ColRef key)
    : input_(std::move(input)), key_(key) {
  layout_ = input_->layout();
}

void SortOp::Open() {
  input_->Open();
  rows_.clear();
  rows_out_ = 0;
  Row row;
  while (input_->Next(&row)) rows_.push_back(row);
  const size_t k = static_cast<size_t>(layout_.OffsetOf(key_));
  std::stable_sort(rows_.begin(), rows_.end(),
                   [k](const Row& a, const Row& b) { return a[k] < b[k]; });
  cursor_ = 0;
}

bool SortOp::Next(Row* out) {
  if (cursor_ >= rows_.size()) return false;
  *out = rows_[cursor_++];
  ++rows_out_;
  return true;
}

void SortOp::Close() {
  rows_.clear();
  input_->Close();
}

// ---------------------------------------------------------------------------
// HashJoin
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> build, std::unique_ptr<Operator> probe,
                       JoinPredicate key, std::vector<JoinPredicate> residual,
                       const QuerySpec& query, const Catalog& catalog)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      key_(key),
      residual_(std::move(residual)) {
  layout_ = Layout(build_->layout().expr() | probe_->layout().expr(), query, catalog);
  build_is_left_of_key_ = RelContains(build_->layout().expr(), key_.left_rel);
}

void HashJoinOp::Open() {
  build_->Open();
  probe_->Open();
  table_.clear();
  rows_out_ = 0;
  probe_valid_ = false;
  const Layout& bl = build_->layout();
  const int key_off = build_is_left_of_key_ ? bl.OffsetOf({key_.left_rel, key_.left_col})
                                            : bl.OffsetOf({key_.right_rel, key_.right_col});
  Row row;
  while (build_->Next(&row)) {
    table_.emplace(row[static_cast<size_t>(key_off)], row);
  }
}

void HashJoinOp::Combine(const Row& build_row, const Row& probe_row, Row* out) const {
  out->assign(static_cast<size_t>(layout_.width()), 0);
  ScatterColumns(build_->layout(), build_row, layout_, out);
  ScatterColumns(probe_->layout(), probe_row, layout_, out);
}

bool HashJoinOp::Next(Row* out) {
  const Layout& pl = probe_->layout();
  const int key_off = build_is_left_of_key_ ? pl.OffsetOf({key_.right_rel, key_.right_col})
                                            : pl.OffsetOf({key_.left_rel, key_.left_col});
  for (;;) {
    if (!probe_valid_) {
      if (!probe_->Next(&probe_row_)) return false;
      auto range = table_.equal_range(probe_row_[static_cast<size_t>(key_off)]);
      match_it_ = range.first;
      match_end_ = range.second;
      probe_valid_ = true;
    }
    while (match_it_ != match_end_) {
      Combine(match_it_->second, probe_row_, out);
      ++match_it_;
      bool pass = true;
      for (const auto& jp : residual_) {
        if (!EvalJoinPredicate(jp, *out, layout_)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        ++rows_out_;
        return true;
      }
    }
    probe_valid_ = false;
  }
}

void HashJoinOp::Close() {
  table_.clear();
  build_->Close();
  probe_->Close();
}

// ---------------------------------------------------------------------------
// SortMergeJoin
// ---------------------------------------------------------------------------

SortMergeJoinOp::SortMergeJoinOp(std::unique_ptr<Operator> left,
                                 std::unique_ptr<Operator> right, JoinPredicate key,
                                 std::vector<JoinPredicate> residual, const QuerySpec& query,
                                 const Catalog& catalog)
    : left_(std::move(left)),
      right_(std::move(right)),
      key_(key),
      residual_(std::move(residual)) {
  layout_ = Layout(left_->layout().expr() | right_->layout().expr(), query, catalog);
}

void SortMergeJoinOp::Open() {
  left_->Open();
  right_->Open();
  rows_out_ = 0;
  lrows_.clear();
  rrows_.clear();
  Row row;
  while (left_->Next(&row)) lrows_.push_back(row);
  while (right_->Next(&row)) rrows_.push_back(row);
  // Inputs are required sorted; tolerate unsorted inputs by sorting here
  // (keeps the executor robust if a plan was built without enforcers).
  const bool left_holds_l = RelContains(left_->layout().expr(), key_.left_rel);
  const size_t lk = static_cast<size_t>(
      left_holds_l ? left_->layout().OffsetOf({key_.left_rel, key_.left_col})
                   : left_->layout().OffsetOf({key_.right_rel, key_.right_col}));
  const size_t rk = static_cast<size_t>(
      left_holds_l ? right_->layout().OffsetOf({key_.right_rel, key_.right_col})
                   : right_->layout().OffsetOf({key_.left_rel, key_.left_col}));
  if (!std::is_sorted(lrows_.begin(), lrows_.end(),
                      [lk](const Row& a, const Row& b) { return a[lk] < b[lk]; })) {
    std::stable_sort(lrows_.begin(), lrows_.end(),
                     [lk](const Row& a, const Row& b) { return a[lk] < b[lk]; });
  }
  if (!std::is_sorted(rrows_.begin(), rrows_.end(),
                      [rk](const Row& a, const Row& b) { return a[rk] < b[rk]; })) {
    std::stable_sort(rrows_.begin(), rrows_.end(),
                     [rk](const Row& a, const Row& b) { return a[rk] < b[rk]; });
  }
  li_ = ri_ = 0;
  in_group_ = false;
  lkey_col_ = lk;
  rkey_col_ = rk;
}

bool SortMergeJoinOp::Next(Row* out) {
  for (;;) {
    if (!in_group_) {
      // Advance to the next equal-key group.
      while (li_ < lrows_.size() && ri_ < rrows_.size()) {
        int64_t lv = lrows_[li_][lkey_col_];
        int64_t rv = rrows_[ri_][rkey_col_];
        if (lv < rv) {
          ++li_;
        } else if (lv > rv) {
          ++ri_;
        } else {
          break;
        }
      }
      if (li_ >= lrows_.size() || ri_ >= rrows_.size()) return false;
      int64_t v = lrows_[li_][lkey_col_];
      group_l_end_ = li_;
      while (group_l_end_ < lrows_.size() && lrows_[group_l_end_][lkey_col_] == v) {
        ++group_l_end_;
      }
      group_r_end_ = ri_;
      while (group_r_end_ < rrows_.size() && rrows_[group_r_end_][rkey_col_] == v) {
        ++group_r_end_;
      }
      gl_ = li_;
      gr_ = ri_;
      in_group_ = true;
    }
    while (gl_ < group_l_end_) {
      while (gr_ < group_r_end_) {
        const Row& lr = lrows_[gl_];
        const Row& rr = rrows_[gr_];
        ++gr_;
        out->assign(static_cast<size_t>(layout_.width()), 0);
        ScatterColumns(left_->layout(), lr, layout_, out);
        ScatterColumns(right_->layout(), rr, layout_, out);
        bool pass = true;
        for (const auto& jp : residual_) {
          if (!EvalJoinPredicate(jp, *out, layout_)) {
            pass = false;
            break;
          }
        }
        if (pass) {
          ++rows_out_;
          return true;
        }
      }
      gr_ = ri_;
      ++gl_;
    }
    li_ = group_l_end_;
    ri_ = group_r_end_;
    in_group_ = false;
  }
}

void SortMergeJoinOp::Close() {
  lrows_.clear();
  rrows_.clear();
  left_->Close();
  right_->Close();
}

// ---------------------------------------------------------------------------
// IndexNLJoin
// ---------------------------------------------------------------------------

IndexNLJoinOp::IndexNLJoinOp(const Table* inner_table, int inner_rel,
                             std::vector<LocalPredicate> inner_locals,
                             std::unique_ptr<Operator> outer, JoinPredicate key,
                             std::vector<JoinPredicate> residual, const QuerySpec& query,
                             const Catalog& catalog)
    : inner_table_(inner_table),
      inner_rel_(inner_rel),
      inner_locals_(std::move(inner_locals)),
      outer_(std::move(outer)),
      key_(key),
      residual_(std::move(residual)) {
  layout_ = Layout(RelSingleton(inner_rel) | outer_->layout().expr(), query, catalog);
  inner_layout_ = Layout(RelSingleton(inner_rel), query, catalog);
  const bool inner_is_left = key_.left_rel == inner_rel;
  inner_key_col_ = inner_is_left ? key_.left_col : key_.right_col;
  outer_key_offset_ = inner_is_left
                          ? outer_->layout().OffsetOf({key_.right_rel, key_.right_col})
                          : outer_->layout().OffsetOf({key_.left_rel, key_.left_col});
  IQRO_CHECK(inner_table_->HasIndex(inner_key_col_));
}

void IndexNLJoinOp::Open() {
  outer_->Open();
  rows_out_ = 0;
  outer_valid_ = false;
}

bool IndexNLJoinOp::Next(Row* out) {
  const HashIndex* index = inner_table_->GetIndex(inner_key_col_);
  for (;;) {
    if (!outer_valid_) {
      if (!outer_->Next(&outer_row_)) return false;
      matches_ = index->Probe(outer_row_[static_cast<size_t>(outer_key_offset_)]);
      match_idx_ = 0;
      outer_valid_ = true;
    }
    while (match_idx_ < matches_.size()) {
      uint32_t row_id = matches_[match_idx_++];
      auto inner_row = inner_table_->Row(row_id);
      // Inner local predicates apply after the index lookup.
      Row inner_vec(inner_row.begin(), inner_row.end());
      bool pass = true;
      for (const auto& p : inner_locals_) {
        if (!EvalLocalPredicate(p, inner_vec, inner_layout_)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      out->assign(static_cast<size_t>(layout_.width()), 0);
      std::copy(inner_vec.begin(), inner_vec.end(),
                out->begin() + layout_.RelOffset(inner_rel_));
      ScatterColumns(outer_->layout(), outer_row_, layout_, out);
      for (const auto& jp : residual_) {
        if (!EvalJoinPredicate(jp, *out, layout_)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        ++rows_out_;
        return true;
      }
    }
    outer_valid_ = false;
  }
}

// ---------------------------------------------------------------------------
// NestedLoopJoin
// ---------------------------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(std::unique_ptr<Operator> left,
                                   std::unique_ptr<Operator> right,
                                   std::vector<JoinPredicate> predicates,
                                   const QuerySpec& query, const Catalog& catalog)
    : left_(std::move(left)), right_(std::move(right)), predicates_(std::move(predicates)) {
  layout_ = Layout(left_->layout().expr() | right_->layout().expr(), query, catalog);
}

void NestedLoopJoinOp::Open() {
  left_->Open();
  right_->Open();
  rows_out_ = 0;
  rrows_.clear();
  Row row;
  while (right_->Next(&row)) rrows_.push_back(row);
  lvalid_ = false;
  ri_ = 0;
}

bool NestedLoopJoinOp::Next(Row* out) {
  for (;;) {
    if (!lvalid_) {
      if (!left_->Next(&lrow_)) return false;
      lvalid_ = true;
      ri_ = 0;
    }
    while (ri_ < rrows_.size()) {
      const Row& rr = rrows_[ri_++];
      out->assign(static_cast<size_t>(layout_.width()), 0);
      ScatterColumns(left_->layout(), lrow_, layout_, out);
      ScatterColumns(right_->layout(), rr, layout_, out);
      bool pass = true;
      for (const auto& jp : predicates_) {
        if (!EvalJoinPredicate(jp, *out, layout_)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        ++rows_out_;
        return true;
      }
    }
    lvalid_ = false;
  }
}

void NestedLoopJoinOp::Close() {
  rrows_.clear();
  left_->Close();
  right_->Close();
}

// ---------------------------------------------------------------------------
// HashAggregate
// ---------------------------------------------------------------------------

HashAggregateOp::HashAggregateOp(std::unique_ptr<Operator> input, const QuerySpec& query)
    : input_(std::move(input)), query_(&query) {
  layout_ = input_->layout();  // output columns: group keys then aggregates
}

void HashAggregateOp::Open() {
  input_->Open();
  rows_out_ = 0;
  results_.clear();
  cursor_ = 0;

  struct GroupState {
    std::vector<int64_t> keys;
    std::vector<int64_t> values;               // per aggregate
    std::vector<std::set<int64_t>> distincts;  // for kCountDistinct
    bool initialized = false;
  };
  std::map<std::vector<int64_t>, GroupState> groups;

  const Layout& in = input_->layout();
  Row row;
  while (input_->Next(&row)) {
    std::vector<int64_t> key;
    key.reserve(query_->group_by.size());
    for (const ColRef& g : query_->group_by) {
      key.push_back(row[static_cast<size_t>(in.OffsetOf(g))]);
    }
    GroupState& gs = groups[key];
    if (!gs.initialized) {
      gs.keys = key;
      gs.values.assign(query_->aggregates.size(), 0);
      gs.distincts.resize(query_->aggregates.size());
      for (size_t i = 0; i < query_->aggregates.size(); ++i) {
        if (query_->aggregates[i].fn == AggFn::kMin) {
          gs.values[i] = std::numeric_limits<int64_t>::max();
        }
        if (query_->aggregates[i].fn == AggFn::kMax) {
          gs.values[i] = std::numeric_limits<int64_t>::min();
        }
      }
      gs.initialized = true;
    }
    for (size_t i = 0; i < query_->aggregates.size(); ++i) {
      const AggItem& agg = query_->aggregates[i];
      int64_t v = agg.fn == AggFn::kCount
                      ? 0
                      : row[static_cast<size_t>(in.OffsetOf(agg.arg))];
      switch (agg.fn) {
        case AggFn::kCount:
          ++gs.values[i];
          break;
        case AggFn::kSum:
          gs.values[i] += v;
          break;
        case AggFn::kMin:
          gs.values[i] = std::min(gs.values[i], v);
          break;
        case AggFn::kMax:
          gs.values[i] = std::max(gs.values[i], v);
          break;
        case AggFn::kCountDistinct:
          gs.distincts[i].insert(v);
          break;
      }
    }
  }
  for (auto& [key, gs] : groups) {
    Row out = gs.keys;
    for (size_t i = 0; i < query_->aggregates.size(); ++i) {
      if (query_->aggregates[i].fn == AggFn::kCountDistinct) {
        out.push_back(static_cast<int64_t>(gs.distincts[i].size()));
      } else {
        out.push_back(gs.values[i]);
      }
    }
    results_.push_back(std::move(out));
  }
}

bool HashAggregateOp::Next(Row* out) {
  if (cursor_ >= results_.size()) return false;
  *out = results_[cursor_++];
  ++rows_out_;
  return true;
}

void HashAggregateOp::Close() {
  results_.clear();
  input_->Close();
}

}  // namespace iqro
