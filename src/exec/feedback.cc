#include "exec/feedback.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace iqro {

void ApplyObservedCardinalities(std::span<const ObservedCardinality> observed,
                                StatsRegistry* registry, double blend, double deadband) {
  IQRO_CHECK(blend > 0 && blend <= 1.0);
  IQRO_CHECK(deadband >= 0);
  // Ascending by expression size (the executor emits them sorted): smaller
  // corrections must land first because the canonical formula composes
  // multipliers over subsets.
  SummaryCalculator calc(registry);
  for (const ObservedCardinality& oc : observed) {
    const double target = std::max(0.5, static_cast<double>(oc.rows));
    if (RelCount(oc.expr) == 1) {
      const int rel = RelLowest(oc.expr);
      const double base = std::max(1.0, registry->base_rows(rel));
      double sel = std::clamp(target / base, 1e-9, 1.0);
      const double current = registry->local_selectivity(rel);
      sel = current * std::pow(sel / current, blend);
      if (std::abs(sel - current) > deadband * current + 1e-12 * current) {
        registry->SetLocalSelectivity(rel, sel);
      }
      continue;
    }
    // The canonical formula is linear in the scope's own multiplier, so
    // scaling it by (target/current)^blend moves the estimate to
    // target^blend * current^(1-blend).
    const double current = std::max(1e-9, calc.Get(oc.expr).rows);
    const double factor = std::pow(target / current, blend);
    if (std::abs(factor - 1.0) > deadband + 1e-12) {
      registry->ScaleCardMultiplier(oc.expr, factor);
    }
  }
}

}  // namespace iqro
