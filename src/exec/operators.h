// Pull-based (iterator-model) physical operators: the "basic pipelined
// query engine for stream and stored data" the paper evaluates with (§1).
//
// Row layout convention: the output of a node over expression E is the
// concatenation of all columns of E's relations, ordered by relation slot
// index ascending. Layout computes per-column offsets from that rule.
#ifndef IQRO_EXEC_OPERATORS_H_
#define IQRO_EXEC_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/relset.h"
#include "query/query_spec.h"

namespace iqro {

using Row = std::vector<int64_t>;

/// Column offsets for the row layout of an expression.
class Layout {
 public:
  Layout() = default;
  Layout(RelSet expr, const QuerySpec& query, const Catalog& catalog);

  RelSet expr() const { return expr_; }
  int width() const { return width_; }

  /// Offset of `(rel, col)`; rel must be in expr().
  int OffsetOf(ColRef ref) const;

  /// Offset of the first column of `rel`.
  int RelOffset(int rel) const;

 private:
  RelSet expr_ = 0;
  int width_ = 0;
  std::unordered_map<int, int> rel_offset_;
};

class Operator {
 public:
  virtual ~Operator() = default;
  virtual void Open() = 0;
  /// Produces the next row into `out`; returns false at end of stream.
  virtual bool Next(Row* out) = 0;
  virtual void Close() {}

  const Layout& layout() const { return layout_; }

  /// Rows produced so far (runtime cardinality feedback, §5.2.2).
  int64_t rows_out() const { return rows_out_; }

 protected:
  Layout layout_;
  int64_t rows_out_ = 0;
};

/// Evaluates one local predicate against a row in `layout`.
bool EvalLocalPredicate(const LocalPredicate& pred, const Row& row, const Layout& layout);

/// Evaluates one join predicate across a combined row in `layout`.
bool EvalJoinPredicate(const JoinPredicate& join, const Row& row, const Layout& layout);

/// Sequential scan with local predicates.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const Table* table, int rel, std::vector<LocalPredicate> locals,
            const QuerySpec& query, const Catalog& catalog);
  void Open() override;
  bool Next(Row* out) override;

 private:
  const Table* table_;
  int rel_;
  std::vector<LocalPredicate> locals_;
  uint32_t cursor_ = 0;
};

/// Materializing sort on one column.
class SortOp : public Operator {
 public:
  SortOp(std::unique_ptr<Operator> input, ColRef key);
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> input_;
  ColRef key_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

/// Build-left hash join on one equality edge, with residual predicates.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> build, std::unique_ptr<Operator> probe,
             JoinPredicate key, std::vector<JoinPredicate> residual, const QuerySpec& query,
             const Catalog& catalog);
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  void Combine(const Row& build_row, const Row& probe_row, Row* out) const;

  std::unique_ptr<Operator> build_;
  std::unique_ptr<Operator> probe_;
  JoinPredicate key_;
  std::vector<JoinPredicate> residual_;
  bool build_is_left_of_key_;
  std::unordered_multimap<int64_t, Row> table_;
  Row probe_row_;
  bool probe_valid_ = false;
  std::unordered_multimap<int64_t, Row>::iterator match_it_;
  std::unordered_multimap<int64_t, Row>::iterator match_end_;
};

/// Merge join over inputs sorted on the key edge's two sides.
class SortMergeJoinOp : public Operator {
 public:
  SortMergeJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
                  JoinPredicate key, std::vector<JoinPredicate> residual,
                  const QuerySpec& query, const Catalog& catalog);
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  JoinPredicate key_;
  std::vector<JoinPredicate> residual_;
  std::vector<Row> lrows_;
  std::vector<Row> rrows_;
  size_t lkey_col_ = 0;
  size_t rkey_col_ = 0;
  size_t li_ = 0;
  size_t ri_ = 0;
  size_t group_l_end_ = 0;
  size_t group_r_end_ = 0;
  size_t gl_ = 0;
  size_t gr_ = 0;
  bool in_group_ = false;
};

/// Index nested-loop join: for each outer row, probe the inner relation's
/// hash index on the key edge.
class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(const Table* inner_table, int inner_rel,
                std::vector<LocalPredicate> inner_locals, std::unique_ptr<Operator> outer,
                JoinPredicate key, std::vector<JoinPredicate> residual,
                const QuerySpec& query, const Catalog& catalog);
  void Open() override;
  bool Next(Row* out) override;

 private:
  const Table* inner_table_;
  int inner_rel_;
  std::vector<LocalPredicate> inner_locals_;
  std::unique_ptr<Operator> outer_;
  JoinPredicate key_;
  std::vector<JoinPredicate> residual_;
  int inner_key_col_ = 0;
  int outer_key_offset_ = 0;
  Layout inner_layout_;
  Row outer_row_;
  bool outer_valid_ = false;
  std::span<const uint32_t> matches_;
  size_t match_idx_ = 0;
};

/// Block nested-loop join for partitions without equality edges.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
                   std::vector<JoinPredicate> predicates, const QuerySpec& query,
                   const Catalog& catalog);
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::vector<JoinPredicate> predicates_;
  std::vector<Row> rrows_;
  Row lrow_;
  bool lvalid_ = false;
  size_t ri_ = 0;
};

/// Hash aggregation (group-by + aggregates), applied above the join tree.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(std::unique_ptr<Operator> input, const QuerySpec& query);
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  std::unique_ptr<Operator> input_;
  const QuerySpec* query_;
  std::vector<Row> results_;
  size_t cursor_ = 0;
};

}  // namespace iqro

#endif  // IQRO_EXEC_OPERATORS_H_
