#include "exec/executor.h"

#include <algorithm>

#include "common/check.h"

namespace iqro {

Executor::Executor(const Catalog* catalog, const QuerySpec* query, const JoinGraph* graph,
                   const PropTable* props)
    : catalog_(catalog), query_(query), graph_(graph), props_(props) {}

const Table& Executor::TableOf(int rel) const {
  return catalog_->table(query_->relations[static_cast<size_t>(rel)].table);
}

std::unique_ptr<Operator> Executor::Build(const PlanTree& node,
                                          std::vector<Operator*>* data_ops) const {
  std::unique_ptr<Operator> op;
  switch (node.alt.phyop) {
    case PhysOp::kSeqScan:
    case PhysOp::kIndexScan: {
      // Both access paths produce the same rows; order differences are
      // absorbed by the sort-tolerant merge join.
      const int rel = RelLowest(node.expr);
      op = std::make_unique<SeqScanOp>(&TableOf(rel), rel, query_->LocalsOf(rel), *query_,
                                       *catalog_);
      break;
    }
    case PhysOp::kSort: {
      auto child = Build(*node.left, data_ops);
      // Prefer the plan's self-contained resolved property (valid across
      // contexts); fall back to the local PropTable for hand-built plans.
      Prop p = node.prop_info;
      if (p.kind != Prop::Kind::kSorted) p = props_->Get(node.prop);
      IQRO_CHECK(p.kind == Prop::Kind::kSorted);
      op = std::make_unique<SortOp>(std::move(child), p.col);
      break;
    }
    case PhysOp::kHashJoin: {
      auto build = Build(*node.left, data_ops);
      auto probe = Build(*node.right, data_ops);
      std::vector<int> cross = graph_->CrossEdges(node.left->expr, node.right->expr);
      IQRO_CHECK(node.alt.edge >= 0);
      std::vector<JoinPredicate> residual;
      for (int e : cross) {
        if (e != node.alt.edge) residual.push_back(graph_->edge(e));
      }
      op = std::make_unique<HashJoinOp>(std::move(build), std::move(probe),
                                        graph_->edge(node.alt.edge), std::move(residual),
                                        *query_, *catalog_);
      break;
    }
    case PhysOp::kSortMergeJoin: {
      auto left = Build(*node.left, data_ops);
      auto right = Build(*node.right, data_ops);
      std::vector<int> cross = graph_->CrossEdges(node.left->expr, node.right->expr);
      IQRO_CHECK(node.alt.edge >= 0);
      std::vector<JoinPredicate> residual;
      for (int e : cross) {
        if (e != node.alt.edge) residual.push_back(graph_->edge(e));
      }
      op = std::make_unique<SortMergeJoinOp>(std::move(left), std::move(right),
                                             graph_->edge(node.alt.edge), std::move(residual),
                                             *query_, *catalog_);
      break;
    }
    case PhysOp::kIndexNLJoin: {
      // Left child is the indexed inner leaf (IndexRef); right is the outer.
      IQRO_CHECK(node.left != nullptr && node.left->alt.phyop == PhysOp::kIndexRef);
      const int inner_rel = RelLowest(node.left->expr);
      auto outer = Build(*node.right, data_ops);
      std::vector<int> cross = graph_->CrossEdges(node.left->expr, node.right->expr);
      IQRO_CHECK(node.alt.edge >= 0);
      std::vector<JoinPredicate> residual;
      for (int e : cross) {
        if (e != node.alt.edge) residual.push_back(graph_->edge(e));
      }
      op = std::make_unique<IndexNLJoinOp>(&TableOf(inner_rel), inner_rel,
                                           query_->LocalsOf(inner_rel), std::move(outer),
                                           graph_->edge(node.alt.edge), std::move(residual),
                                           *query_, *catalog_);
      break;
    }
    case PhysOp::kNestedLoopJoin: {
      auto left = Build(*node.left, data_ops);
      auto right = Build(*node.right, data_ops);
      std::vector<int> cross = graph_->CrossEdges(node.left->expr, node.right->expr);
      std::vector<JoinPredicate> predicates;
      for (int e : cross) predicates.push_back(graph_->edge(e));
      op = std::make_unique<NestedLoopJoinOp>(std::move(left), std::move(right),
                                              std::move(predicates), *query_, *catalog_);
      break;
    }
    case PhysOp::kIndexRef:
      IQRO_CHECK(false);  // consumed by kIndexNLJoin
  }
  IQRO_CHECK(op != nullptr);
  data_ops->push_back(op.get());
  return op;
}

ExecutionResult Executor::Execute(const PlanTree& plan, bool collect_rows) {
  std::vector<Operator*> data_ops;
  std::unique_ptr<Operator> root = Build(plan, &data_ops);
  if (query_->has_aggregation()) {
    root = std::make_unique<HashAggregateOp>(std::move(root), *query_);
  }
  root->Open();
  ExecutionResult result;
  Row row;
  while (root->Next(&row)) {
    if (collect_rows) result.rows.push_back(row);
  }
  result.root_rows = root->rows_out();
  for (Operator* op : data_ops) {
    result.observed.push_back({op->layout().expr(), op->rows_out()});
  }
  std::sort(result.observed.begin(), result.observed.end(),
            [](const ObservedCardinality& a, const ObservedCardinality& b) {
              if (RelCount(a.expr) != RelCount(b.expr)) {
                return RelCount(a.expr) < RelCount(b.expr);
              }
              return a.expr < b.expr;
            });
  // Deduplicate expressions (a sort above a join reports the same set).
  result.observed.erase(std::unique(result.observed.begin(), result.observed.end(),
                                    [](const ObservedCardinality& a,
                                       const ObservedCardinality& b) {
                                      return a.expr == b.expr;
                                    }),
                        result.observed.end());
  root->Close();
  return result;
}

}  // namespace iqro
