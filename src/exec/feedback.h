// Runtime-statistics feedback: turns observed per-expression cardinalities
// from an execution into StatsRegistry updates (the cost/cardinality deltas
// that drive incremental re-optimization, §4 / §5.2.2).
#ifndef IQRO_EXEC_FEEDBACK_H_
#define IQRO_EXEC_FEEDBACK_H_

#include <span>

#include "exec/executor.h"
#include "stats/summary.h"

namespace iqro {

/// Folds observed cardinalities into `registry` so that the canonical
/// summary formula reproduces them exactly:
///   singleton expressions adjust the relation's local selectivity,
///   larger expressions adjust the expression's cardinality multiplier
///   (processed ascending so sub-expression corrections compose).
/// `blend` in (0, 1] weighs the observation against the current estimate
/// (1 = trust the observation fully); the paper's Fig. 6 runs feed
/// cumulative observations, i.e. blend = 1 over accumulated counts.
/// `deadband` suppresses corrections whose relative magnitude is below it:
/// once estimates converge, no deltas reach the re-optimizer at all (the
/// convergence behaviour behind the paper's Fig. 9).
void ApplyObservedCardinalities(std::span<const ObservedCardinality> observed,
                                StatsRegistry* registry, double blend = 1.0,
                                double deadband = 0.0);

}  // namespace iqro

#endif  // IQRO_EXEC_FEEDBACK_H_
