// Seeded random generator of StatChange sequences: growth, shrinkage,
// no-ops, oscillations (revert to an earlier value), scan-cost swings and
// expression-multiplier churn over random connected subexpressions —
// including changes that land on garbage-collected or suppressed optimizer
// state. Mutations are recorded with absolute target values (see
// scenario.h), so a shrunk subsequence replays deterministically.
#ifndef IQRO_TESTING_STAT_CHURN_H_
#define IQRO_TESTING_STAT_CHURN_H_

#include <vector>

#include "common/rng.h"
#include "query/join_graph.h"
#include "stats/stats_registry.h"
#include "testing/scenario.h"

namespace iqro::testing {

struct ChurnGenOptions {
  int min_steps = 1;
  int max_steps = 6;
  int max_mutations_per_step = 4;
  /// Probability that a mutation re-sets the current value (the registry
  /// must swallow it without recording a StatChange).
  double p_noop = 0.1;
  /// Probability that a mutation reverts a previously changed statistic to
  /// its original value (oscillation; exercises state resurrection).
  double p_revert = 0.2;
  /// Magnitude: values scale by 2^U(-max_log2_swing, +max_log2_swing).
  double max_log2_swing = 4.0;
};

/// Generates a churn sequence for `query` given the scenario's initial
/// (frozen) registry contents. Pure function of `rng`; does not mutate
/// `initial`.
std::vector<ChurnStep> GenerateChurn(const ChurnGenOptions& options, const QuerySpec& query,
                                     const JoinGraph& graph, const StatsRegistry& initial,
                                     Rng& rng);

}  // namespace iqro::testing

#endif  // IQRO_TESTING_STAT_CHURN_H_
