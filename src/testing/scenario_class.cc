#include "testing/scenario_class.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baseline/systemr.h"
#include "baseline/volcano.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/declarative_optimizer.h"
#include "cost/cost_model.h"
#include "service/reopt_session.h"
#include "stats/summary.h"

namespace iqro::testing {

namespace {

bool CostsAgree(double a, double b, double rel_tol) {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::abs(a - b) <= rel_tol * std::max({1.0, std::abs(a), std::abs(b)});
}

/// From-scratch plan shape under a scenario's full churn prefix: build a
/// fresh world, replay every recorded mutation, optimize. The probing
/// primitive of the plan-flip generator — and deliberately the exact code
/// path the differential oracle trusts, so "this step flips the plan" means
/// the same thing at generation time and at check time.
std::unique_ptr<PlanTree> ShapeAfterChurn(const Scenario& sc) {
  auto world = BuildScenarioWorld(sc);
  ApplyChurnPrefix(&world->registry, sc, sc.churn.size());
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(), &world->registry,
                           sc.options);
  opt.Optimize();
  return opt.GetBestPlan();
}

/// Plan-flip maximizer: a small synthetic query whose churn is constructed
/// step by step against the oracle. Per step, up to kProbes one-step
/// candidates are drawn from the regular churn generator (high swing, no
/// no-ops) and the first whose from-scratch plan shape differs from the
/// accepted prefix's is kept; when none flips, the last candidate is kept
/// anyway (generation always terminates, and a sub-100% flip rate is fine —
/// the bench asserts the aggregate). The result is plain Scenario data:
/// replay, shrinking and ScenarioToString work unchanged.
Scenario GeneratePlanFlipScenario(uint64_t seed, const GeneratorKnobs& knobs) {
  Scenario sc;
  sc.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  QueryGenOptions q = knobs.query;
  q.min_relations = std::max(q.min_relations, 3);
  q.max_relations = std::min(q.max_relations, 5);
  q.max_dense_relations = std::min(q.max_dense_relations, 4);
  q.p_window = 0;  // keeps each probe optimization cheap
  GenerateCatalogAndQuery(q, /*use_tpch=*/false, rng, &sc.catalog, &sc.query);
  const auto& sets = ScenarioOptionSets();
  const auto& [name, opts] = sets[rng.NextBelow(sets.size())];
  sc.options_name = name;
  sc.options = opts;

  // Churn candidates are drawn against the registry state of the accepted
  // prefix, so each step's magnitudes are relative to where the plan
  // actually sits — a flip found at step k stays a flip when replayed.
  JoinGraph graph(sc.query);
  StatsRegistry prefix_registry;
  BindScenarioStats(sc, &prefix_registry);
  prefix_registry.Freeze();

  ChurnGenOptions cg = knobs.churn;
  cg.min_steps = 1;
  cg.max_steps = 1;
  cg.max_mutations_per_step = 2;
  cg.p_noop = 0;
  cg.p_revert = 0.1;
  cg.max_log2_swing = std::max(knobs.churn.max_log2_swing, 6.0);

  auto cur_shape = ShapeAfterChurn(sc);
  const int steps = 4 + static_cast<int>(rng.NextBelow(3));
  constexpr int kProbes = 14;
  for (int s = 0; s < steps; ++s) {
    ChurnStep accepted;
    std::unique_ptr<PlanTree> flipped_shape;
    for (int p = 0; p < kProbes; ++p) {
      // Escalate: early probes draw gentle candidates (realistic drift);
      // once those fail to flip, later probes swing harder and mutate more
      // stats at once until something crosses a plan boundary.
      ChurnGenOptions probe_cg = cg;
      probe_cg.max_log2_swing = cg.max_log2_swing + static_cast<double>(p);
      probe_cg.max_mutations_per_step = p < 6 ? 2 : 3;
      std::vector<ChurnStep> cand = GenerateChurn(probe_cg, sc.query, graph, prefix_registry, rng);
      if (cand.empty() || cand[0].mutations.empty()) continue;
      accepted = cand[0];
      Scenario probe = sc;
      probe.churn.push_back(cand[0]);
      auto shape = ShapeAfterChurn(probe);
      if (!shape->SameShape(*cur_shape)) {
        flipped_shape = std::move(shape);
        break;
      }
    }
    if (accepted.mutations.empty()) break;
    sc.churn.push_back(accepted);
    for (const StatMutation& m : accepted.mutations) ApplyMutation(&prefix_registry, m);
    // A non-flipping fallback was probed too: its shape equals cur_shape.
    if (flipped_shape != nullptr) cur_shape = std::move(flipped_shape);
  }
  return sc;
}

// ---------------------------------------------------------------------------
// Storm runner: kScopeOverlap and kHandleStorm.
// ---------------------------------------------------------------------------

/// One delivered event, reduced to what the storm oracle compares: which
/// query fired, in what order. (Cost/diff exactness at 2-query scale is
/// RunScenario's notification oracle; the storm asserts exactness-and-order
/// at 16..64-query scale, where the interesting failure is a dropped,
/// duplicated or misordered event.)
class TagRecordingSubscriber final : public PlanSubscriber {
 public:
  TagRecordingSubscriber(int tag, std::vector<int>* out) : tag_(tag), out_(out) {}
  void OnPlanChange(const PlanChangeEvent&) override { out_->push_back(tag_); }

 private:
  int tag_;
  std::vector<int>* out_;
};

/// One registered query of a storm, in both worlds. Handles are declared
/// after the optimizers so unregistration runs first on destruction.
/// Each query owns an INDEPENDENT SummaryCalculator + CostModel pair (the
/// world's shared calculator would serve every peer out of its local cache
/// and the session's shared summary store — the contention surface the
/// storms exist to stress — would never see a lookup).
struct StormQuery {
  int tag = 0;
  size_t set_idx = 0;  // ScenarioOptionSets() index
  std::unique_ptr<SummaryCalculator> summaries;
  std::unique_ptr<CostModel> cost_model;
  std::unique_ptr<SummaryCalculator> mirror_summaries;
  std::unique_ptr<CostModel> mirror_cost_model;
  std::unique_ptr<DeclarativeOptimizer> opt;
  std::unique_ptr<DeclarativeOptimizer> mirror_opt;
  std::unique_ptr<TagRecordingSubscriber> sub;
  std::unique_ptr<TagRecordingSubscriber> mirror_sub;
  QueryHandle handle;
  QueryHandle mirror_handle;
  std::string prev_dump;                 // notification-exactness baseline
  std::unique_ptr<PlanTree> prev_shape;  // plan-flip counter baseline
};

/// The storm contract, per flush boundary:
///  * oracle: ONE fresh from-scratch optimizer per distinct option set
///    among the live queries (BestCost within tolerance + byte-identical
///    CanonicalDumpState for every query of that set), System-R + Volcano
///    ground truth (BestCost is option-set invariant), ValidateInvariants
///    on every live optimizer;
///  * mirror: a serial, unbudgeted twin session executes the identical
///    seed-derived register/release schedule and identical mutations; every
///    live pair must be byte-identical;
///  * notifications: for every live query, an event fired iff its dump
///    changed, in registration order, with the mirror's stream identical.
/// kHandleStorm additionally rolls register/release/evict actions at every
/// boundary under a ~2-memo byte budget (the mirror never evicts) and holds
/// resident_memo_bytes to the exact sum over healthy live memos after a
/// rehydrate-all.
DiffResult RunStormScenario(const Scenario& sc, ScenarioClass cls, const DiffOptions& options,
                            ClassRunStats* stats) {
  DiffResult result;
  ClassRunStats acc;
  const auto& sets = ScenarioOptionSets();
  auto world = BuildScenarioWorld(sc);
  auto mirror_world = BuildScenarioWorld(sc);
  Rng storm_rng(sc.seed ^ (cls == ScenarioClass::kHandleStorm ? 0x57A6F00Dull : 0x0E7A10ABull));

  auto fail = [&](int step, std::string msg) {
    result.ok = false;
    result.fail_step = step;
    result.message = StrFormat("[%s storm] ", ScenarioClassName(cls)) + std::move(msg);
    if (stats != nullptr) stats->Accumulate(acc);
    return result;
  };

  // kHandleStorm sizes its budget off one settled memo: room for roughly
  // two residents, so a three-query session is already over budget and
  // every flush's enforcement has victims to pick.
  size_t memo_budget = 0;
  if (cls == ScenarioClass::kHandleStorm) {
    DeclarativeOptimizer probe(world->enumerator.get(), world->cost_model.get(),
                               &world->registry, sets[0].second);
    probe.Optimize();
    memo_budget = std::max<size_t>(1, 2 * probe.EstimatedMemoBytes());
  }

  ReoptSessionOptions popts;
  popts.worker_threads = std::max(0, options.worker_threads);
  popts.memo_byte_budget = memo_budget;
  auto session = std::make_unique<ReoptSession>(&world->registry, popts);
  auto mirror_session = std::make_unique<ReoptSession>(&mirror_world->registry);

  std::vector<int> events;
  std::vector<int> mirror_events;
  std::vector<std::unique_ptr<StormQuery>> live;
  int next_tag = 0;

  auto register_query = [&](size_t set_idx) {
    auto q = std::make_unique<StormQuery>();
    q->tag = next_tag++;
    q->set_idx = set_idx;
    q->summaries = std::make_unique<SummaryCalculator>(&world->registry);
    q->cost_model = std::make_unique<CostModel>(q->summaries.get());
    q->mirror_summaries = std::make_unique<SummaryCalculator>(&mirror_world->registry);
    q->mirror_cost_model = std::make_unique<CostModel>(q->mirror_summaries.get());
    q->opt = std::make_unique<DeclarativeOptimizer>(world->enumerator.get(), q->cost_model.get(),
                                                    &world->registry, sets[set_idx].second);
    q->mirror_opt = std::make_unique<DeclarativeOptimizer>(
        mirror_world->enumerator.get(), q->mirror_cost_model.get(), &mirror_world->registry,
        sets[set_idx].second);
    q->opt->Optimize();
    q->mirror_opt->Optimize();
    q->sub = std::make_unique<TagRecordingSubscriber>(q->tag, &events);
    q->mirror_sub = std::make_unique<TagRecordingSubscriber>(q->tag, &mirror_events);
    q->handle = session->Register(*q->opt, q->sub.get());
    q->mirror_handle = mirror_session->Register(*q->mirror_opt, q->mirror_sub.get());
    q->prev_dump = q->opt->CanonicalDumpState();
    q->prev_shape = q->opt->GetBestPlan();
    ++acc.registrations;
    live.push_back(std::move(q));
  };

  const size_t initial_queries = cls == ScenarioClass::kScopeOverlap
                                     ? 16 + 8 * storm_rng.NextBelow(7)  // 16..64
                                     : 4;
  const size_t max_live = cls == ScenarioClass::kScopeOverlap ? initial_queries : 10;
  for (size_t i = 0; i < initial_queries; ++i) register_query(i % sets.size());

  // Full oracle sweep over the live set; `after_flush` additionally runs
  // the notification-exactness and plan-flip bookkeeping.
  auto check_all = [&](int step, bool after_flush) -> std::optional<std::string> {
    // Fresh from-scratch state, once per distinct option set.
    std::map<size_t, std::string> fresh_dump;
    std::map<size_t, double> fresh_cost;
    for (const auto& q : live) {
      if (fresh_dump.count(q->set_idx) != 0) continue;
      DeclarativeOptimizer fresh(world->enumerator.get(), world->cost_model.get(),
                                 &world->registry, sets[q->set_idx].second);
      fresh.Optimize();
      if (options.validate_invariants) fresh.ValidateInvariants();
      if (!std::isfinite(fresh.BestCost())) {
        return StrFormat("boundary %d: fresh optimization (options=%s) produced a non-finite "
                         "best cost (generator bug)",
                         step, sets[q->set_idx].first.c_str());
      }
      fresh_dump[q->set_idx] = fresh.CanonicalDumpState();
      fresh_cost[q->set_idx] = fresh.BestCost();
    }
    if (options.check_systemr && !fresh_cost.empty()) {
      SystemROptimizer systemr(world->enumerator.get(), world->cost_model.get());
      systemr.Optimize();
      for (const auto& [set_idx, cost] : fresh_cost) {
        if (!CostsAgree(cost, systemr.BestCost(), options.rel_tol)) {
          return StrFormat("boundary %d: System-R ground truth diverged for options=%s: "
                           "fresh=%s systemr=%s",
                           step, sets[set_idx].first.c_str(), DoubleToString(cost).c_str(),
                           DoubleToString(systemr.BestCost()).c_str());
        }
      }
    }
    if (options.check_volcano && !fresh_cost.empty()) {
      VolcanoOptimizer volcano(world->enumerator.get(), world->cost_model.get());
      volcano.Optimize();
      if (!CostsAgree(fresh_cost.begin()->second, volcano.BestCost(), options.rel_tol)) {
        return StrFormat("boundary %d: Volcano baseline diverged: fresh=%s volcano=%s", step,
                         DoubleToString(fresh_cost.begin()->second).c_str(),
                         DoubleToString(volcano.BestCost()).c_str());
      }
    }
    bool flipped = false;
    std::vector<int> expected_tags;
    for (const auto& q : live) {
      if (options.validate_invariants) q->opt->ValidateInvariants();
      if (!CostsAgree(q->opt->BestCost(), fresh_cost[q->set_idx], options.rel_tol)) {
        return StrFormat("boundary %d: query #%d (options=%s) BestCost diverged: "
                         "registered=%s fresh=%s",
                         step, q->tag, sets[q->set_idx].first.c_str(),
                         DoubleToString(q->opt->BestCost()).c_str(),
                         DoubleToString(fresh_cost[q->set_idx]).c_str());
      }
      const std::string dump = options.check_dump ? q->opt->CanonicalDumpState() : std::string();
      if (options.check_dump) {
        if (dump != fresh_dump[q->set_idx]) {
          return StrFormat("boundary %d: query #%d (options=%s) dump diverged from the "
                           "from-scratch oracle",
                           step, q->tag, sets[q->set_idx].first.c_str());
        }
        if (dump != q->mirror_opt->CanonicalDumpState()) {
          return StrFormat("boundary %d: query #%d dump diverged from its mirror twin "
                           "(worker_threads=%d, budget=%zu)",
                           step, q->tag, popts.worker_threads, memo_budget);
        }
      }
      if (after_flush) {
        if (options.check_dump && dump != q->prev_dump) expected_tags.push_back(q->tag);
        auto shape = q->opt->GetBestPlan();
        if (!shape->SameShape(*q->prev_shape)) flipped = true;
        q->prev_shape = std::move(shape);
        if (options.check_dump) q->prev_dump = dump;
      }
    }
    if (after_flush) {
      if (flipped) ++acc.plan_flips;
      acc.plan_changes += static_cast<int64_t>(events.size());
      if (options.check_dump) {
        // Exactness AND registration order, against the primary stream;
        // the mirror must have seen the very same stream.
        if (events != expected_tags) {
          return StrFormat("boundary %d: notification exactness violated: %zu event(s) fired "
                           "but %zu dump(s) changed (or out of registration order)",
                           step, events.size(), expected_tags.size());
        }
        if (mirror_events != expected_tags) {
          return StrFormat("boundary %d: mirror event stream diverged (%zu vs %zu events)",
                           step, mirror_events.size(), expected_tags.size());
        }
      }
    }
    return std::nullopt;
  };

  acc.queries = static_cast<int64_t>(live.size());
  if (auto err = check_all(-1, /*after_flush=*/false)) return fail(-1, *err);

  int64_t dispatched_flushes = 0;
  const size_t group = static_cast<size_t>(std::max(1, options.batch_steps));
  for (size_t s0 = 0; s0 < sc.churn.size(); s0 += group) {
    const size_t s1 = std::min(s0 + group, sc.churn.size());
    const int step = static_cast<int>(s1 - 1);

    // Handle-storm lifecycle actions, at the boundary (outside any flush):
    // one shared schedule drives BOTH sessions' register/release so the
    // live sets stay twins; manual evictions hit only the primary.
    if (cls == ScenarioClass::kHandleStorm) {
      const int n_actions = 1 + static_cast<int>(storm_rng.NextBelow(2));
      for (int a = 0; a < n_actions; ++a) {
        const uint64_t roll = storm_rng.NextBelow(4);
        if (roll == 0 && live.size() < max_live) {
          register_query(storm_rng.NextBelow(sets.size()));
        } else if (roll == 1 && live.size() > 2) {
          const size_t victim = storm_rng.NextBelow(live.size());
          live[victim]->handle.Release();
          live[victim]->mirror_handle.Release();
          live.erase(live.begin() + static_cast<long>(victim));
          ++acc.releases;
        } else if (roll == 2 && !live.empty()) {
          const size_t victim = storm_rng.NextBelow(live.size());
          session->EvictQuery(live[victim]->handle.id());
        }
      }
      acc.queries = std::max(acc.queries, static_cast<int64_t>(live.size()));
    }

    for (size_t s = s0; s < s1; ++s) {
      for (const StatMutation& m : sc.churn[s].mutations) {
        ApplyMutation(&world->registry, m);
        ApplyMutation(&mirror_world->registry, m);
      }
    }
    events.clear();
    mirror_events.clear();
    if (session->Flush() > 0) {
      ++dispatched_flushes;
      result.eps_seeded += session->last_flush().eps_seeded;
      result.eps_scanned += session->last_flush().eps_scanned;
    }
    mirror_session->Flush();
    ++result.flushes;
    ++acc.flushes;

    // Budget enforcement may have spilled queries at the end of the flush;
    // the oracle reads live memos, so restore them all first (also the
    // manual-eviction path when this boundary's batch coalesced away).
    for (const auto& q : live) session->RehydrateQuery(q->handle.id());
    if (memo_budget > 0) {
      int64_t expected_resident = 0;
      for (const auto& q : live) {
        if (session->query_state(q->handle.id()) == QueryState::kHealthy) {
          expected_resident += static_cast<int64_t>(q->opt->EstimatedMemoBytes());
        }
      }
      if (session->resident_memo_bytes() != expected_resident) {
        return fail(step, StrFormat("boundary %d: resident_memo_bytes accounting diverged: "
                                    "gauge=%lld expected=%lld over %zu live queries",
                                    step, static_cast<long long>(session->resident_memo_bytes()),
                                    static_cast<long long>(expected_resident), live.size()));
      }
      acc.max_resident_bytes = std::max(acc.max_resident_bytes, expected_resident);
    }

    if (auto err = check_all(step, /*after_flush=*/true)) return fail(step, *err);
  }

  result.plan_flips = acc.plan_flips;
  result.plan_changes = acc.plan_changes;
  acc.eps_seeded = result.eps_seeded;
  acc.eps_scanned = result.eps_scanned;
  acc.evictions = session->metrics().evictions;
  acc.rehydrations = session->metrics().rehydrations;
  acc.summary_hits = session->summary_cache().hits();
  acc.summary_misses = session->summary_cache().misses();
  if (cls == ScenarioClass::kHandleStorm && dispatched_flushes >= 1 && acc.evictions == 0) {
    // The budget was sized for ~2 residents and at least 4 queries ran, so
    // every dispatched flush's enforcement has victims: a storm that never
    // evicted means the class lost its adversary.
    return fail(static_cast<int>(sc.churn.size()) - 1,
                StrFormat("no evictions over %lld dispatched flushes despite a %zu-byte "
                          "budget (budget enforcement never engaged)",
                          static_cast<long long>(dispatched_flushes), memo_budget));
  }
  if (stats != nullptr) stats->Accumulate(acc);
  return result;
}

}  // namespace

const char* ScenarioClassName(ScenarioClass cls) {
  switch (cls) {
    case ScenarioClass::kRandom:
      return "random";
    case ScenarioClass::kPlanFlip:
      return "plan-flip";
    case ScenarioClass::kScopeOverlap:
      return "scope-overlap";
    case ScenarioClass::kHandleStorm:
      return "handle-storm";
    case ScenarioClass::kStreamChurn:
      return "stream-churn";
  }
  return "unknown";
}

ScenarioClass DeriveScenarioClass(uint64_t seed) {
  switch ((seed >> 3) & 7) {
    case 4:
      return ScenarioClass::kPlanFlip;
    case 5:
      return ScenarioClass::kStreamChurn;
    case 6:
      return ScenarioClass::kScopeOverlap;
    case 7:
      return ScenarioClass::kHandleStorm;
    default:
      return ScenarioClass::kRandom;
  }
}

bool ScenarioClassHonorsRotations(ScenarioClass cls) {
  return cls == ScenarioClass::kRandom || cls == ScenarioClass::kPlanFlip ||
         cls == ScenarioClass::kStreamChurn;
}

Scenario GenerateClassScenario(uint64_t seed, ScenarioClass cls, const GeneratorKnobs& knobs) {
  switch (cls) {
    case ScenarioClass::kRandom:
      return GenerateScenario(seed, knobs);
    case ScenarioClass::kPlanFlip:
      return GeneratePlanFlipScenario(seed, knobs);
    case ScenarioClass::kScopeOverlap:
    case ScenarioClass::kHandleStorm: {
      // Small relation alphabet, dense mutations: with 16..64 queries all
      // bound to the same QuerySpec, every mutation's affected set is the
      // whole session by construction.
      GeneratorKnobs k = knobs;
      k.p_tpch = 0;
      k.query.min_relations = std::max(k.query.min_relations, 3);
      k.query.max_relations = std::min(k.query.max_relations, 4);
      k.query.max_dense_relations = std::min(k.query.max_dense_relations, 4);
      k.query.p_window = 0;
      k.query.p_aggregation = 0.25;
      k.churn.min_steps = std::max(k.churn.min_steps, 3);
      k.churn.max_steps = std::max(k.churn.max_steps, cls == ScenarioClass::kHandleStorm ? 6 : 5);
      k.churn.max_mutations_per_step = std::max(k.churn.max_mutations_per_step, 6);
      return GenerateScenario(seed, k);
    }
    case ScenarioClass::kStreamChurn: {
      // Window-heavy queries under long churn: the differential twin of
      // the sustained linear-road driver (bench_adversarial).
      GeneratorKnobs k = knobs;
      k.query.p_window = 0.9;
      k.query.min_relations = std::max(k.query.min_relations, 2);
      k.query.max_relations = std::min(k.query.max_relations, 6);
      k.churn.min_steps = std::max(k.churn.min_steps, 4);
      k.churn.max_steps = std::max(k.churn.max_steps, 8);
      return GenerateScenario(seed, k);
    }
  }
  return GenerateScenario(seed, knobs);
}

void ClassRunStats::Accumulate(const ClassRunStats& o) {
  flushes += o.flushes;
  plan_flips += o.plan_flips;
  plan_changes += o.plan_changes;
  queries = std::max(queries, o.queries);
  registrations += o.registrations;
  releases += o.releases;
  evictions += o.evictions;
  rehydrations += o.rehydrations;
  eps_seeded += o.eps_seeded;
  eps_scanned += o.eps_scanned;
  summary_hits += o.summary_hits;
  summary_misses += o.summary_misses;
  max_resident_bytes = std::max(max_resident_bytes, o.max_resident_bytes);
}

DiffResult RunClassScenario(const Scenario& scenario, ScenarioClass cls,
                            const DiffOptions& options, ClassRunStats* stats) {
  if (ScenarioClassHonorsRotations(cls)) {
    DiffResult r = RunScenario(scenario, options);
    if (stats != nullptr) {
      ClassRunStats s;
      s.flushes = r.flushes;
      s.plan_flips = r.plan_flips;
      s.plan_changes = r.plan_changes;
      s.eps_seeded = r.eps_seeded;
      s.eps_scanned = r.eps_scanned;
      s.queries = options.batch_steps >= 1 ? 2 : 1;  // primary + shadow
      stats->Accumulate(s);
    }
    return r;
  }
  DiffOptions storm = options;
  storm.fault_rotation = false;     // storms ignore the fault rotation
  storm.lifecycle_rotation = false;  // and run their own lifecycle schedule
  if (storm.batch_steps < 1) storm.batch_steps = 1;
  return RunStormScenario(scenario, cls, storm, stats);
}

}  // namespace iqro::testing
