// Scenario: a self-contained, replayable (catalog, query, optimizer-config,
// stat-churn) tuple — the unit of work of the randomized differential
// harness. Every field is explicit data (no hidden RNG state), so a failing
// scenario can be shrunk by deleting parts of it and re-run byte-for-byte.
//
// The harness proves the paper's central claim (§4): after any sequence of
// statistics updates, Reoptimize() lands in exactly the state a fresh
// DeclarativeOptimizer::Optimize() computes under the new statistics.
#ifndef IQRO_TESTING_SCENARIO_H_
#define IQRO_TESTING_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/optimizer_options.h"
#include "cost/cost_model.h"
#include "enumerate/plan_enumerator.h"
#include "query/join_graph.h"
#include "query/query_spec.h"
#include "stats/stats_registry.h"
#include "stats/summary.h"
#include "stats/table_stats.h"

namespace iqro::testing {

/// Synthetic column description; a histogram is synthesized from `hist_seed`
/// samples uniform in [min, max], so local-predicate selectivities are
/// estimated through the real Histogram code path.
struct SyntheticColumnSpec {
  int64_t min = 0;
  int64_t max = 0;
  double ndv = 1;
};

struct SyntheticTableSpec {
  std::string name;
  double rows = 1;
  double width = 1;
  std::vector<SyntheticColumnSpec> cols;
  uint32_t indexed_cols = 0;  // bitmask over columns
  int clustered_on = -1;
  uint64_t hist_seed = 0;
};

/// Either a list of synthetic tables or the shared TPC-H catalog.
struct CatalogSpec {
  bool use_tpch = false;
  std::vector<SyntheticTableSpec> tables;  // synthetic mode only
};

/// One statistics mutation with an *absolute* target value: replay does not
/// depend on the registry's current contents, so the shrinker can delete
/// earlier mutations without changing the meaning of later ones.
struct StatMutation {
  enum class Kind : uint8_t {
    kBaseRows,          // target = relation slot
    kLocalSelectivity,  // target = relation slot
    kRowWidth,          // target = relation slot
    kScanCost,          // target = relation slot
    kJoinSelectivity,   // target = edge id (query.joins order)
    kCardMultiplier,    // scope = expression; value 1 removes the override
  };
  Kind kind = Kind::kBaseRows;
  int target = 0;
  RelSet scope = 0;
  double value = 0;
};

const char* StatMutationKindName(StatMutation::Kind k);

/// One batch of mutations applied before a single Reoptimize() call.
struct ChurnStep {
  std::vector<StatMutation> mutations;
};

struct Scenario {
  uint64_t seed = 0;  // generator seed; printed with every failure
  CatalogSpec catalog;
  QuerySpec query;
  std::string options_name;
  OptimizerOptions options;
  std::vector<ChurnStep> churn;
};

/// A fully wired optimization context for one scenario. The catalog is
/// owned for synthetic scenarios and borrowed for TPC-H ones.
struct ScenarioWorld {
  const Catalog* catalog = nullptr;
  std::unique_ptr<Catalog> owned_catalog;
  std::unique_ptr<JoinGraph> graph;
  StatsRegistry registry;
  std::unique_ptr<SummaryCalculator> summaries;
  std::unique_ptr<CostModel> cost_model;
  PropTable props;
  std::unique_ptr<PlanEnumerator> enumerator;
};

/// The TPC-H catalog + collected statistics shared by every TPC-H-mode
/// scenario (built once per process; scale 0.002).
struct TpchFixture {
  Catalog catalog;
  std::vector<TableStats> stats;
};
const TpchFixture& SharedTpchFixture();

/// Builds per-table statistics for a synthetic table spec (real histograms
/// over sampled values; no rows are materialized).
TableStats MakeSyntheticTableStats(const SyntheticTableSpec& spec);

/// Binds the scenario's initial statistics (synthetic or TPC-H) into
/// `registry` without wiring the rest of a world; does not freeze. Used by
/// churn generation, which needs only graph + statistics.
void BindScenarioStats(const Scenario& scenario, StatsRegistry* registry);

/// Wires catalog, join graph, bound statistics (frozen), cost model and
/// enumerator for `scenario`. Deterministic: two calls produce worlds with
/// identical statistics and plan spaces.
std::unique_ptr<ScenarioWorld> BuildScenarioWorld(const Scenario& scenario);

/// Applies one recorded mutation to a (frozen) registry.
void ApplyMutation(StatsRegistry* registry, const StatMutation& m);

/// Applies every mutation of churn steps [0, n_steps) in order.
void ApplyChurnPrefix(StatsRegistry* registry, const Scenario& scenario, size_t n_steps);

/// Human-readable rendering: seed, options, catalog, query, churn — the
/// repro block printed with every failure report.
std::string ScenarioToString(const Scenario& scenario);

}  // namespace iqro::testing

#endif  // IQRO_TESTING_SCENARIO_H_
