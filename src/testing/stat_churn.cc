#include "testing/stat_churn.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"

namespace iqro::testing {

namespace {

/// Tracks the evolving statistics during generation so every recorded
/// mutation carries an absolute value, plus the original value of every
/// touched statistic for revert (oscillation) mutations.
struct ChurnState {
  // Key identifying one scalar statistic: (kind, target, scope).
  using Key = std::tuple<StatMutation::Kind, int, RelSet>;

  std::map<Key, double> current;   // only keys touched or read so far
  std::map<Key, double> original;  // first-seen value of each key

  double Get(const StatsRegistry& reg, StatMutation::Kind kind, int target, RelSet scope) {
    Key key{kind, target, scope};
    auto it = current.find(key);
    if (it != current.end()) return it->second;
    double v = 1.0;
    switch (kind) {
      case StatMutation::Kind::kBaseRows:
        v = reg.base_rows(target);
        break;
      case StatMutation::Kind::kLocalSelectivity:
        v = reg.local_selectivity(target);
        break;
      case StatMutation::Kind::kRowWidth:
        v = reg.row_width(target);
        break;
      case StatMutation::Kind::kScanCost:
        v = reg.scan_cost_multiplier(target);
        break;
      case StatMutation::Kind::kJoinSelectivity:
        v = reg.join_selectivity(target);
        break;
      case StatMutation::Kind::kCardMultiplier:
        v = reg.ScopeMultiplier(scope);
        break;
    }
    current[key] = v;
    original[key] = v;
    return v;
  }

  void Set(StatMutation::Kind kind, int target, RelSet scope, double v) {
    current[Key{kind, target, scope}] = v;
  }
};

double ClampFor(StatMutation::Kind kind, double v) {
  switch (kind) {
    case StatMutation::Kind::kBaseRows:
      return std::clamp(std::floor(v), 1.0, 1e12);
    case StatMutation::Kind::kLocalSelectivity:
      return std::clamp(v, 1e-9, 1.0);
    case StatMutation::Kind::kRowWidth:
      return std::clamp(v, 1.0, 64.0);
    case StatMutation::Kind::kScanCost:
      return std::clamp(v, 1.0 / 64.0, 1024.0);
    case StatMutation::Kind::kJoinSelectivity:
      return std::clamp(v, 1e-12, 1.0);
    case StatMutation::Kind::kCardMultiplier:
      return std::clamp(v, 1.0 / 1024.0, 1024.0);
  }
  return v;
}

}  // namespace

std::vector<ChurnStep> GenerateChurn(const ChurnGenOptions& options, const QuerySpec& query,
                                     const JoinGraph& graph, const StatsRegistry& initial,
                                     Rng& rng) {
  const int n = query.num_relations();
  const int num_edges = static_cast<int>(query.joins.size());

  // Multi-relation connected subexpressions, for card-multiplier scopes.
  std::vector<RelSet> scopes;
  for (const auto& group : graph.ConnectedSubsetsBySize()) {
    for (RelSet s : group) {
      if (RelCount(s) >= 2) scopes.push_back(s);
    }
  }

  ChurnState state;
  std::vector<ChurnStep> churn;
  const int steps =
      options.min_steps +
      static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(options.max_steps - options.min_steps) + 1));
  for (int s = 0; s < steps; ++s) {
    ChurnStep step;
    const int count = 1 + static_cast<int>(rng.NextBelow(
                              static_cast<uint64_t>(options.max_mutations_per_step)));
    for (int k = 0; k < count; ++k) {
      StatMutation m;
      if (rng.NextBool(options.p_revert) && !state.original.empty()) {
        // Oscillation: send a previously mutated statistic back to its
        // original value (may resurrect pruned/collected state).
        auto it = state.original.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(state.original.size())));
        auto [kind, target, scope] = it->first;
        m.kind = kind;
        m.target = target;
        m.scope = scope;
        m.value = it->second;
        state.Set(kind, target, scope, m.value);
        step.mutations.push_back(m);
        continue;
      }
      // Pick a mutation kind applicable to this query.
      for (;;) {
        switch (rng.NextBelow(6)) {
          case 0:
            m.kind = StatMutation::Kind::kBaseRows;
            break;
          case 1:
            m.kind = StatMutation::Kind::kLocalSelectivity;
            break;
          case 2:
            m.kind = StatMutation::Kind::kRowWidth;
            break;
          case 3:
            m.kind = StatMutation::Kind::kScanCost;
            break;
          case 4:
            m.kind = StatMutation::Kind::kJoinSelectivity;
            break;
          default:
            m.kind = StatMutation::Kind::kCardMultiplier;
            break;
        }
        if (m.kind == StatMutation::Kind::kJoinSelectivity && num_edges == 0) continue;
        if (m.kind == StatMutation::Kind::kCardMultiplier && scopes.empty()) continue;
        break;
      }
      if (m.kind == StatMutation::Kind::kCardMultiplier) {
        m.scope = scopes[rng.NextBelow(scopes.size())];
      } else if (m.kind == StatMutation::Kind::kJoinSelectivity) {
        m.target = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(num_edges)));
      } else {
        m.target = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
      }
      const double cur = state.Get(initial, m.kind, m.target, m.scope);
      if (rng.NextBool(options.p_noop)) {
        m.value = cur;  // no-op: the registry must not record a StatChange
      } else if (m.kind == StatMutation::Kind::kCardMultiplier && rng.NextBool(0.25)) {
        m.value = 1.0;  // multiplier removal
      } else {
        const double swing = options.max_log2_swing;
        const double factor = std::pow(2.0, swing * (2.0 * rng.NextDouble() - 1.0));
        m.value = ClampFor(m.kind, cur * factor);
      }
      state.Set(m.kind, m.target, m.scope, m.value);
      step.mutations.push_back(m);
    }
    churn.push_back(std::move(step));
  }
  return churn;
}

}  // namespace iqro::testing
