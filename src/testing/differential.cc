#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "baseline/systemr.h"
#include "baseline/volcano.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/declarative_optimizer.h"
#include "service/reopt_session.h"

namespace iqro::testing {

namespace {

/// Relative-tolerance equality that also accepts two infinities of the same
/// sign (a degenerate but internally consistent statistics state).
bool CostsAgree(double a, double b, double rel_tol) {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::abs(a - b) <= rel_tol * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Walks a plan tree and checks every node's cumulative cost against
/// System-R's per-(expr, prop) optimum.
std::optional<std::string> CheckPlanNodesAgainstSystemR(const PlanTree& t,
                                                        const SystemROptimizer& systemr,
                                                        double rel_tol) {
  const double truth = systemr.BestCostOf(t.expr, t.prop);
  if (!CostsAgree(t.cost, truth, rel_tol)) {
    return StrFormat("plan node %s prop=%d cost=%s but System-R optimum is %s",
                     RelSetToString(t.expr).c_str(), t.prop,
                     DoubleToString(t.cost).c_str(), DoubleToString(truth).c_str());
  }
  if (t.left != nullptr) {
    if (auto err = CheckPlanNodesAgainstSystemR(*t.left, systemr, rel_tol)) return err;
  }
  if (t.right != nullptr) {
    if (auto err = CheckPlanNodesAgainstSystemR(*t.right, systemr, rel_tol)) return err;
  }
  return std::nullopt;
}

/// One delivered PlanChangeEvent, flattened for cross-session comparison
/// (serial vs pooled event streams must be identical field-for-field).
struct RecordedEvent {
  int query_tag = -1;  // 0 = primary, 1 = shadow
  uint64_t flush_epoch = 0;
  double old_cost = 0;
  double new_cost = 0;
  PlanDiffSummary diff;

  bool operator==(const RecordedEvent& o) const {
    return query_tag == o.query_tag && flush_epoch == o.flush_epoch &&
           old_cost == o.old_cost && new_cost == o.new_cost &&
           diff.changed_operators == o.diff.changed_operators &&
           diff.total_operators == o.diff.total_operators &&
           diff.join_order_prefix == o.diff.join_order_prefix &&
           diff.join_order_len == o.diff.join_order_len;
  }
};

class RecordingSubscriber final : public PlanSubscriber {
 public:
  RecordingSubscriber(int tag, std::vector<RecordedEvent>* out) : tag_(tag), out_(out) {}
  void OnPlanChange(const PlanChangeEvent& e) override {
    out_->push_back({tag_, e.flush_epoch, e.old_cost, e.new_cost, e.diff});
  }

 private:
  int tag_;
  std::vector<RecordedEvent>* out_;
};

/// RAII for a fault-rotation run: the injector is armed with counting
/// disabled; every exit path disarms it and restores counting so the next
/// scenario (or a non-fault caller) starts clean.
struct FaultRotationGuard {
  bool active = false;
  ~FaultRotationGuard() {
    if (!active) return;
    FaultInjector::Instance().DisarmAll();
    FaultInjector::Instance().set_enabled(true);
  }
};

/// Derives the deterministic fault plan for a scenario: one single-shot
/// fault at a seed-chosen site and hit ordinal, plus (batch mode,
/// sometimes) a dependent rebuild fault so the FIRST rehabilitation
/// attempt also fails and the strike/backoff ladder is exercised. Every
/// armed fault is single-shot (period 0), which bounds strikes per query
/// below the parking threshold and guarantees the recovery loop converges.
void ArmFaultPlan(uint64_t seed, bool batch_mode) {
  Rng rng(seed ^ 0xFA17ull);
  FaultInjector::ArmSpec spec;
  // Ordinal ranges are sized to each site's hit rate per flush window so a
  // healthy fraction of seeds actually reach the ordinal; seeds that don't
  // degenerate to a plain (still checked) differential run.
  const uint64_t pick = rng.NextBelow(batch_mode ? 3 : 2);
  if (batch_mode && pick == 0) {
    spec.site = "service.pass";  // pre-dispatch, optimizer left untorn
    spec.fire_at_hit = 1 + static_cast<int64_t>(rng.NextBelow(8));
  } else if (pick <= 1) {
    spec.site = "reopt.seed";  // mid-seeding, partially applied batch
    spec.fire_at_hit = 1 + static_cast<int64_t>(rng.NextBelow(24));
  } else {
    spec.site = "reopt.fixpoint";  // mid-fixpoint, partially propagated
    spec.fire_at_hit = 1 + static_cast<int64_t>(rng.NextBelow(200));
  }
  spec.action = rng.NextBool(0.25) ? FaultInjector::Action::kBadAlloc
                                   : FaultInjector::Action::kThrow;
  FaultInjector::Instance().Arm(spec);
  if (batch_mode && rng.NextBool(1.0 / 3.0)) {
    FaultInjector::ArmSpec rebuild;
    rebuild.site = "reopt.rebuild";
    rebuild.fire_at_hit = 1;
    rebuild.action = rng.NextBool(0.25) ? FaultInjector::Action::kBadAlloc
                                        : FaultInjector::Action::kThrow;
    FaultInjector::Instance().Arm(rebuild);
  }
}

struct StepOracle {
  ScenarioWorld* world;
  const Scenario* scenario;
  const DiffOptions* options;

  /// Runs every from-scratch implementation against the registry's current
  /// statistics and cross-checks the incremental optimizer. Returns an
  /// error message, or nullopt when everything agrees.
  std::optional<std::string> Check(DeclarativeOptimizer& inc) {
    const double tol = options->rel_tol;
    DeclarativeOptimizer fresh(world->enumerator.get(), world->cost_model.get(),
                               &world->registry, scenario->options);
    fresh.Optimize();
    if (options->validate_invariants) fresh.ValidateInvariants();
    if (!std::isfinite(fresh.BestCost())) {
      return "fresh optimization produced a non-finite best cost (generator bug)";
    }
    if (!CostsAgree(inc.BestCost(), fresh.BestCost(), tol)) {
      return StrFormat("BestCost diverged: incremental=%s fresh=%s",
                       DoubleToString(inc.BestCost()).c_str(),
                       DoubleToString(fresh.BestCost()).c_str());
    }
    auto inc_plan = inc.GetBestPlan();
    auto fresh_plan = fresh.GetBestPlan();
    if (!inc_plan->SameShape(*fresh_plan)) {
      return StrFormat(
          "GetBestPlan diverged:\nincremental:\n%s\nfresh:\n%s",
          inc_plan->ToString(scenario->query, world->props).c_str(),
          fresh_plan->ToString(scenario->query, world->props).c_str());
    }
    const double recomputed = RecomputeTreeCost(*inc_plan, *world->cost_model);
    if (!CostsAgree(recomputed, fresh.BestCost(), tol)) {
      return StrFormat("plan cost recomputation diverged: tree=%s best=%s",
                       DoubleToString(recomputed).c_str(),
                       DoubleToString(fresh.BestCost()).c_str());
    }
    if (options->check_dump) {
      const std::string inc_dump = inc.CanonicalDumpState();
      const std::string fresh_dump = fresh.CanonicalDumpState();
      if (inc_dump != fresh_dump) {
        return StrFormat("CanonicalDumpState diverged:\n--- incremental ---\n%s--- fresh ---\n%s",
                         inc_dump.c_str(), fresh_dump.c_str());
      }
    }
    if (options->check_systemr) {
      SystemROptimizer systemr(world->enumerator.get(), world->cost_model.get());
      systemr.Optimize();
      if (!CostsAgree(inc.BestCost(), systemr.BestCost(), tol)) {
        return StrFormat("System-R ground truth diverged: incremental=%s systemr=%s",
                         DoubleToString(inc.BestCost()).c_str(),
                         DoubleToString(systemr.BestCost()).c_str());
      }
      // Every node of the incremental plan must carry the exhaustive DP's
      // optimal cost for its (expr, prop) pair, not just the root.
      if (auto err = CheckPlanNodesAgainstSystemR(*inc_plan, systemr, tol)) return err;
    }
    if (options->check_volcano) {
      VolcanoOptimizer volcano(world->enumerator.get(), world->cost_model.get());
      volcano.Optimize();
      if (!CostsAgree(inc.BestCost(), volcano.BestCost(), tol)) {
        return StrFormat("Volcano baseline diverged: incremental=%s volcano=%s",
                         DoubleToString(inc.BestCost()).c_str(),
                         DoubleToString(volcano.BestCost()).c_str());
      }
    }
    return std::nullopt;
  }
};

}  // namespace

double RecomputeTreeCost(const PlanTree& t, const CostModel& model) {
  double local = 0;
  switch (t.alt.logop) {
    case LogOp::kScan:
      local = model.ScanCost(RelLowest(t.expr), t.alt.phyop);
      break;
    case LogOp::kSort:
      local = model.SortLocalCost(t.expr);
      break;
    case LogOp::kJoin:
      local = model.JoinLocalCost(t.alt.phyop, t.alt.lexpr, t.alt.rexpr);
      break;
  }
  double total = local;
  if (t.left != nullptr) total += RecomputeTreeCost(*t.left, model);
  if (t.right != nullptr) total += RecomputeTreeCost(*t.right, model);
  return total;
}

const std::vector<std::pair<std::string, OptimizerOptions>>& ScenarioOptionSets() {
  static const auto* sets = [] {
    auto* s = new std::vector<std::pair<std::string, OptimizerOptions>>{
        {"all", OptimizerOptions::Default()},
        {"aggsel", OptimizerOptions::UseAggSel()},
        {"aggsel+refcount", OptimizerOptions::UseAggSelRefCount()},
        {"aggsel+bounding", OptimizerOptions::UseAggSelBounding()},
        {"evita", OptimizerOptions::UseEvitaRaced()},
        {"nopruning", OptimizerOptions::UseNoPruning()},
    };
    OptimizerOptions fifo = OptimizerOptions::Default();
    fifo.discipline = QueueDiscipline::kFifo;
    s->emplace_back("all-fifo", fifo);
    return s;
  }();
  return *sets;
}

Scenario GenerateScenario(uint64_t seed, const GeneratorKnobs& knobs) {
  Scenario sc;
  sc.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  const bool use_tpch = rng.NextBool(knobs.p_tpch);
  GenerateCatalogAndQuery(knobs.query, use_tpch, rng, &sc.catalog, &sc.query);
  const auto& sets = ScenarioOptionSets();
  const auto& [name, opts] = sets[rng.NextBelow(sets.size())];
  sc.options_name = name;
  sc.options = opts;
  // Churn generation needs only the join graph and the initial bound
  // statistics — skip the cost-model/enumerator wiring (RunScenario builds
  // the full world itself).
  JoinGraph graph(sc.query);
  StatsRegistry registry;
  BindScenarioStats(sc, &registry);
  registry.Freeze();
  sc.churn = GenerateChurn(knobs.churn, sc.query, graph, registry, rng);
  return sc;
}

DiffResult RunScenario(const Scenario& scenario, const DiffOptions& options,
                       const FaultInjection& fault) {
  DiffResult result;
  auto world = BuildScenarioWorld(scenario);
  StepOracle oracle{world.get(), &scenario, &options};

  // Fault rotation: arm the seed-derived plan with counting DISABLED —
  // only the ScopedFaultWindow blocks around the primary world's flushes
  // below count hits, so the oracle's from-scratch optimizers and the
  // mirror world execute the same armed sites without ever faulting.
  FaultRotationGuard fault_guard;
  if (options.fault_rotation) {
    FaultInjector::Instance().set_enabled(false);
    ArmFaultPlan(scenario.seed, options.batch_steps >= 1);
    fault_guard.active = true;
  }

  // Heap-owned so the lifecycle rotation's snapshot-restart can destroy
  // and recreate it along with its world.
  auto inc = std::make_unique<DeclarativeOptimizer>(
      world->enumerator.get(), world->cost_model.get(), &world->registry, scenario.options);
  inc->Optimize();
  if (options.validate_invariants) inc->ValidateInvariants();
  if (auto err = oracle.Check(*inc)) return {false, -1, "initial optimization: " + *err};
  // Plan-shape baseline for the flip counter (DiffResult::plan_flips): a
  // detached tree snapshot, so it survives lifecycle restarts of `inc`.
  auto prev_plan_shape = inc->GetBestPlan();
  // Accumulates the primary session's seeding counters across every
  // dispatched flush (last_flush() only keeps the most recent one, and
  // fault-rotation recovery runs several per boundary).
  const auto count_flush = [&result](ReoptSession& s) {
    const size_t n = s.Flush();
    if (n > 0) {
      result.eps_seeded += s.last_flush().eps_seeded;
      result.eps_scanned += s.last_flush().eps_scanned;
    }
    return n;
  };

  // Batch mode: a ReoptSession owns the flushes, and a shadow optimizer
  // (same options, same registry) rides along to prove that one drained
  // batch drives every registered query to the identical fixpoint. Both
  // carry a recording PlanSubscriber: after every flush the notification
  // oracle below asserts an event fired iff the query's canonical plan
  // changed, with the oracle's own before/after costs.
  std::unique_ptr<ReoptSession> session;
  std::unique_ptr<DeclarativeOptimizer> shadow;
  // Parallel mode additionally runs a full serial-mirror world in
  // lockstep (see DiffOptions::worker_threads).
  std::unique_ptr<ScenarioWorld> mirror_world;
  std::unique_ptr<DeclarativeOptimizer> mirror_inc;
  std::unique_ptr<DeclarativeOptimizer> mirror_shadow;
  std::unique_ptr<ReoptSession> mirror_session;
  // Handles after the sessions: they unregister (touching their session)
  // before the sessions destruct.
  std::vector<QueryHandle> handles;
  std::vector<QueryHandle> mirror_handles;
  std::vector<RecordedEvent> events;
  std::vector<RecordedEvent> mirror_events;
  RecordingSubscriber primary_sub(0, &events);
  RecordingSubscriber shadow_sub(1, &events);
  RecordingSubscriber mirror_primary_sub(0, &mirror_events);
  RecordingSubscriber mirror_shadow_sub(1, &mirror_events);
  std::string prev_primary_dump;
  std::string prev_shadow_dump;
  double prev_primary_cost = 0;
  double prev_shadow_cost = 0;
  // Lifecycle rotation state: the boundary roll RNG, the snapshot path the
  // restart arm reuses, and quarantine strikes carried across session
  // generations (a restart resets the new session's counters; the
  // end-of-run fault accounting needs the whole scenario's total).
  Rng lifecycle_rng(scenario.seed ^ 0x11FEull);
  const std::string snapshot_path =
      "/tmp/iqro_diff_lifecycle_" + std::to_string(scenario.seed) + ".snap";
  int64_t quarantines_carried = 0;
  const bool lifecycle = options.lifecycle_rotation && options.batch_steps >= 1;
  if (options.batch_steps >= 1) {
    shadow = std::make_unique<DeclarativeOptimizer>(
        world->enumerator.get(), world->cost_model.get(), &world->registry, scenario.options);
    shadow->Optimize();
    ReoptSessionOptions session_options;
    session_options.worker_threads = options.worker_threads;
    session = std::make_unique<ReoptSession>(&world->registry, session_options);
    handles.push_back(session->Register(*inc, &primary_sub));
    handles.push_back(session->Register(*shadow, &shadow_sub));
    prev_primary_dump = inc->CanonicalDumpState();
    prev_shadow_dump = shadow->CanonicalDumpState();
    prev_primary_cost = inc->BestCost();
    prev_shadow_cost = shadow->BestCost();
    // The mirror world serves three claims: parallel ≡ serial (pooled
    // mode), faulted-then-recovered ≡ never-faulted (fault rotation), and
    // evicted/restarted ≡ undisturbed (lifecycle rotation) — so it also
    // runs, serially, for serial fault- or lifecycle-rotation scenarios.
    if (options.worker_threads >= 1 || options.fault_rotation || lifecycle) {
      mirror_world = BuildScenarioWorld(scenario);
      mirror_inc = std::make_unique<DeclarativeOptimizer>(
          mirror_world->enumerator.get(), mirror_world->cost_model.get(),
          &mirror_world->registry, scenario.options);
      mirror_shadow = std::make_unique<DeclarativeOptimizer>(
          mirror_world->enumerator.get(), mirror_world->cost_model.get(),
          &mirror_world->registry, scenario.options);
      mirror_inc->Optimize();
      mirror_shadow->Optimize();
      mirror_session = std::make_unique<ReoptSession>(&mirror_world->registry);
      mirror_handles.push_back(mirror_session->Register(*mirror_inc, &mirror_primary_sub));
      mirror_handles.push_back(mirror_session->Register(*mirror_shadow, &mirror_shadow_sub));
    }
  }
  const size_t group = options.batch_steps >= 1 ? static_cast<size_t>(options.batch_steps) : 1;

  for (size_t s0 = 0; s0 < scenario.churn.size(); s0 += group) {
    const size_t s1 = std::min(s0 + group, scenario.churn.size());
    for (size_t s = s0; s < s1; ++s) {
      for (const StatMutation& m : scenario.churn[s].mutations) {
        ApplyMutation(&world->registry, m);
        if (mirror_world != nullptr) ApplyMutation(&mirror_world->registry, m);
      }
      if (fault.kind == FaultInjection::Kind::kDropSeed &&
          static_cast<size_t>(fault.step) == s) {
        world->registry.DropOnePendingForTest();
        if (mirror_world != nullptr) mirror_world->registry.DropOnePendingForTest();
      }
    }
    const int fail_step = static_cast<int>(s1 - 1);
    if (session != nullptr) {
      events.clear();
      mirror_events.clear();
      if (options.fault_rotation) {
        {
          ScopedFaultWindow window;
          count_flush(*session);
        }
        // Recovery: each flush ticks the retry clock and rehabilitates
        // whatever backoff has expired. Faults stay armed (a seed can
        // fail the rebuild itself — that is the point), but every armed
        // spec is single-shot, so strikes per query stay below the
        // parking threshold and the loop converges.
        int recovery_flushes = 0;
        while (session->num_quarantined() > 0 || session->num_parked() > 0) {
          if (++recovery_flushes > 32) {
            return {false, fail_step,
                    StrFormat("after churn step %zu: quarantined queries failed to "
                              "recover within 32 flushes (%d quarantined, %d parked)",
                              s1 - 1, session->num_quarantined(), session->num_parked())};
          }
          ScopedFaultWindow window;
          count_flush(*session);
        }
      } else {
        count_flush(*session);
      }
      if (lifecycle) {
        // Deferred rehydration: a query evicted at the previous boundary
        // whose batch turned out irrelevant is still spilled — restore it
        // now (outside any fault window) so the oracle below reads a live
        // memo. The relevant-batch case was already rehydrated inside the
        // flush; this is a no-op for it.
        for (QueryHandle& h : handles) session->RehydrateQuery(h.id());
      }
      if (mirror_session != nullptr) mirror_session->Flush();  // never in a window
    } else if (options.fault_rotation) {
      // Legacy mode: the throw surfaces to the caller. The core's strong
      // exception guarantee must leave the optimizer torn down (never
      // optimized-but-stale: the drained batch is unrecoverable), and a
      // from-scratch rebuild outside the fault window must restore a state
      // the oracle cannot tell from never having faulted.
      bool faulted = false;
      try {
        ScopedFaultWindow window;
        inc->Reoptimize();
      } catch (const InjectedFault&) {
        faulted = true;
      } catch (const std::bad_alloc&) {
        faulted = true;
      }
      if (faulted) {
        if (inc->optimized()) {
          return {false, fail_step,
                  StrFormat("after churn step %zu: strong exception guarantee violated — "
                            "optimizer still reports optimized() after a faulted "
                            "Reoptimize()",
                            s1 - 1)};
        }
        inc->RebuildFromScratch();
      }
    } else {
      inc->Reoptimize();
    }
    if (options.validate_invariants) {
      inc->ValidateInvariants();
      if (shadow != nullptr) shadow->ValidateInvariants();
    }
    if (auto err = oracle.Check(*inc)) {
      return {false, fail_step, StrFormat("after churn step %zu: ", s1 - 1) + *err};
    }
    if (shadow != nullptr) {
      if (!CostsAgree(shadow->BestCost(), inc->BestCost(), options.rel_tol)) {
        return {false, fail_step,
                StrFormat("after churn step %zu: shadow session query diverged: "
                          "shadow=%s primary=%s",
                          s1 - 1, DoubleToString(shadow->BestCost()).c_str(),
                          DoubleToString(inc->BestCost()).c_str())};
      }
      if (options.check_dump && shadow->CanonicalDumpState() != inc->CanonicalDumpState()) {
        return {false, fail_step,
                StrFormat("after churn step %zu: shadow session query dump diverged",
                          s1 - 1)};
      }
    }
    if (mirror_session != nullptr) {
      // The direct parallel ≡ serial claim (pooled mode) and the
      // faulted-then-recovered ≡ never-faulted claim (fault rotation):
      // every registered query must land byte-identical to its twin in
      // the serial, never-faulted mirror world.
      if (!CostsAgree(mirror_inc->BestCost(), inc->BestCost(), options.rel_tol)) {
        return {false, fail_step,
                StrFormat("after churn step %zu: flush diverged from the mirror world: "
                          "primary=%s mirror=%s",
                          s1 - 1, DoubleToString(inc->BestCost()).c_str(),
                          DoubleToString(mirror_inc->BestCost()).c_str())};
      }
      if (options.check_dump) {
        if (inc->CanonicalDumpState() != mirror_inc->CanonicalDumpState()) {
          return {false, fail_step,
                  StrFormat("after churn step %zu: primary dump diverged from the mirror "
                            "world (worker_threads=%d, fault_rotation=%d)",
                            s1 - 1, options.worker_threads, options.fault_rotation ? 1 : 0)};
        }
        if (shadow->CanonicalDumpState() != mirror_shadow->CanonicalDumpState()) {
          return {false, fail_step,
                  StrFormat("after churn step %zu: shadow dump diverged from the mirror "
                            "world (worker_threads=%d, fault_rotation=%d)",
                            s1 - 1, options.worker_threads, options.fault_rotation ? 1 : 0)};
        }
      }
      if (options.validate_invariants) {
        mirror_inc->ValidateInvariants();
        mirror_shadow->ValidateInvariants();
      }
    }
    if (session != nullptr) {
      // Notification oracle: for each registered query, a PlanChangeEvent
      // fired this flush iff the query's CanonicalDumpState changed —
      // exactly once, with old/new costs equal to the oracle's own
      // before/after BestCost, in registration order; and (parallel mode)
      // the pooled session's event stream is field-identical to the serial
      // mirror's.
      const std::string primary_dump = inc->CanonicalDumpState();
      const std::string shadow_dump = shadow->CanonicalDumpState();
      const double primary_cost = inc->BestCost();
      const double shadow_cost = shadow->BestCost();
      struct Expected {
        int tag;
        const char* name;
        bool changed;
        double before;
        double after;
      };
      const Expected expected[] = {
          {0, "primary", primary_dump != prev_primary_dump, prev_primary_cost, primary_cost},
          {1, "shadow", shadow_dump != prev_shadow_dump, prev_shadow_cost, shadow_cost},
      };
      for (const Expected& ex : expected) {
        int fired = 0;
        const RecordedEvent* ev = nullptr;
        for (const RecordedEvent& e : events) {
          if (e.query_tag == ex.tag) {
            ++fired;
            ev = &e;
          }
        }
        if (fired != (ex.changed ? 1 : 0)) {
          return {false, fail_step,
                  StrFormat("after churn step %zu: %s subscriber fired %d time(s) but the "
                            "canonical plan %s — notification exactness violated",
                            s1 - 1, ex.name, fired, ex.changed ? "changed" : "did not change")};
        }
        if (ev != nullptr) {
          // The digest's costs are the same doubles the oracle reads
          // (root best aggregate), so equality here is exact, not approximate.
          if (ev->old_cost != ex.before || ev->new_cost != ex.after) {
            return {false, fail_step,
                    StrFormat("after churn step %zu: %s event costs diverged: event %s -> %s, "
                              "oracle %s -> %s",
                              s1 - 1, ex.name, DoubleToString(ev->old_cost).c_str(),
                              DoubleToString(ev->new_cost).c_str(),
                              DoubleToString(ex.before).c_str(),
                              DoubleToString(ex.after).c_str())};
          }
          if (ev->diff.changed_operators < 0 ||
              ev->diff.changed_operators > ev->diff.total_operators ||
              ev->diff.join_order_prefix < 0 ||
              ev->diff.join_order_prefix > ev->diff.join_order_len) {
            return {false, fail_step,
                    StrFormat("after churn step %zu: %s event diff summary out of range "
                              "(%d/%d operators, prefix %d/%d)",
                              s1 - 1, ex.name, ev->diff.changed_operators,
                              ev->diff.total_operators, ev->diff.join_order_prefix,
                              ev->diff.join_order_len)};
          }
        }
      }
      // Under fault rotation a quarantined query's event fires in a later
      // recovery flush than its healthy peer's, so only the PER-QUERY
      // subsequences are order-comparable; without faults the whole stream
      // must be in registration order and field-identical to the mirror's.
      if (!options.fault_rotation && events.size() == 2 && events[0].query_tag != 0) {
        return {false, fail_step,
                StrFormat("after churn step %zu: events fired out of registration order",
                          s1 - 1)};
      }
      if (mirror_session != nullptr) {
        bool streams_agree;
        if (options.fault_rotation) {
          streams_agree = true;
          for (int tag = 0; tag <= 1 && streams_agree; ++tag) {
            std::vector<RecordedEvent> got, want;
            for (const RecordedEvent& e : events) {
              if (e.query_tag == tag) got.push_back(e);
            }
            for (const RecordedEvent& e : mirror_events) {
              if (e.query_tag == tag) want.push_back(e);
            }
            streams_agree = got == want;
          }
        } else {
          streams_agree = events == mirror_events;
        }
        if (!streams_agree) {
          return {false, fail_step,
                  StrFormat("after churn step %zu: event stream diverged from the "
                            "%s mirror (%zu vs %zu events, worker_threads=%d)",
                            s1 - 1, options.fault_rotation ? "never-faulted" : "serial",
                            events.size(), mirror_events.size(), options.worker_threads)};
        }
      }
      prev_primary_dump = primary_dump;
      prev_shadow_dump = shadow_dump;
      prev_primary_cost = primary_cost;
      prev_shadow_cost = shadow_cost;
      result.plan_changes += static_cast<int64_t>(events.size());
    }
    ++result.flushes;
    {
      auto cur_plan_shape = inc->GetBestPlan();
      if (!cur_plan_shape->SameShape(*prev_plan_shape)) ++result.plan_flips;
      prev_plan_shape = std::move(cur_plan_shape);
    }
    // Lifecycle rotation: disturb the primary world AFTER the boundary's
    // checks, so the next boundary proves the disturbance invisible. All
    // of this runs outside fault windows — an armed fault plan never
    // fires inside an eviction, restore, or restart.
    if (lifecycle && session != nullptr && s1 < scenario.churn.size()) {
      const uint64_t roll = lifecycle_rng.NextBelow(4);
      if (roll == 1) {
        // Evict: spill one or both queries. Whether the next flush
        // rehydrates them naturally (relevant batch) or the harness does
        // right after it (irrelevant batch) is up to the churn.
        session->EvictQuery(handles[0].id());
        if (lifecycle_rng.NextBool(0.5)) session->EvictQuery(handles[1].id());
      } else if (roll == 2) {
        // Snapshot-restart: persist, tear the whole primary world down,
        // rebuild it fresh, warm-start from the snapshot, re-subscribe.
        session->SaveSnapshot(snapshot_path);
        quarantines_carried += session->metrics().quarantines;
        handles.clear();
        session.reset();
        inc.reset();
        shadow.reset();
        world = BuildScenarioWorld(scenario);
        oracle.world = world.get();
        inc = std::make_unique<DeclarativeOptimizer>(world->enumerator.get(),
                                                     world->cost_model.get(),
                                                     &world->registry, scenario.options);
        shadow = std::make_unique<DeclarativeOptimizer>(world->enumerator.get(),
                                                        world->cost_model.get(),
                                                        &world->registry, scenario.options);
        ReoptSessionOptions session_options;
        session_options.worker_threads = options.worker_threads;
        session = std::make_unique<ReoptSession>(&world->registry, session_options);
        handles = session->LoadSnapshot(snapshot_path, {inc.get(), shadow.get()});
        std::remove(snapshot_path.c_str());
        // Re-subscribing baselines each query at its restored (byte-
        // identical) plan — exactly where the mirror's settled baseline
        // sits, so the event streams keep agreeing.
        handles[0].Subscribe(&primary_sub);
        handles[1].Subscribe(&shadow_sub);
      }
    }
  }
  if (options.fault_rotation) {
    result.faults_fired = FaultInjector::Instance().fired();
    // Strikes recorded by pre-restart session generations were carried
    // over; the live session holds only the post-restart remainder.
    if (session != nullptr &&
        quarantines_carried + session->metrics().quarantines != result.faults_fired) {
      // Every single-shot fired action lands inside exactly one query's
      // pass, rebuild, or seeding — one strike each, no more, no fewer.
      return {false, static_cast<int>(scenario.churn.size()) - 1,
              StrFormat("fault accounting diverged: %lld fault(s) fired but the session "
                        "recorded %lld quarantine strike(s)",
                        static_cast<long long>(result.faults_fired),
                        static_cast<long long>(quarantines_carried +
                                               session->metrics().quarantines))};
    }
  }
  return result;
}

namespace {

/// Removes relation slot `slot` from the scenario, remapping every slot,
/// edge and scope reference. Returns nullopt when the removal disconnects
/// the join graph (the scenario would become meaningless).
std::optional<Scenario> RemoveRelation(const Scenario& sc, int slot) {
  if (sc.query.num_relations() <= 1) return std::nullopt;
  Scenario out = sc;
  QuerySpec& q = out.query;
  q.relations.erase(q.relations.begin() + slot);

  auto remap_slot = [slot](int r) { return r > slot ? r - 1 : r; };
  auto remap_scope = [slot](RelSet s) -> RelSet {
    RelSet low = s & (RelSingleton(slot) - 1);
    return low | ((s >> (slot + 1)) << slot);
  };

  std::vector<int> edge_remap(sc.query.joins.size(), -1);
  q.joins.clear();
  for (size_t e = 0; e < sc.query.joins.size(); ++e) {
    JoinPredicate j = sc.query.joins[e];
    if (j.left_rel == slot || j.right_rel == slot) continue;
    j.left_rel = remap_slot(j.left_rel);
    j.right_rel = remap_slot(j.right_rel);
    edge_remap[e] = static_cast<int>(q.joins.size());
    q.joins.push_back(j);
  }
  if (q.num_relations() > 1) {
    JoinGraph graph(q);
    if (!graph.IsConnected(q.AllRelations())) return std::nullopt;
  }

  std::erase_if(q.locals, [&](const LocalPredicate& p) { return p.rel == slot; });
  for (LocalPredicate& p : q.locals) p.rel = remap_slot(p.rel);
  std::erase_if(q.projections, [&](const ColRef& c) { return c.rel == slot; });
  for (ColRef& c : q.projections) c.rel = remap_slot(c.rel);
  std::erase_if(q.group_by, [&](const ColRef& c) { return c.rel == slot; });
  for (ColRef& c : q.group_by) c.rel = remap_slot(c.rel);
  std::erase_if(q.aggregates, [&](const AggItem& a) { return a.arg.rel == slot; });
  for (AggItem& a : q.aggregates) a.arg.rel = remap_slot(a.arg.rel);

  for (ChurnStep& step : out.churn) {
    std::erase_if(step.mutations, [&](const StatMutation& m) {
      switch (m.kind) {
        case StatMutation::Kind::kJoinSelectivity:
          return edge_remap[static_cast<size_t>(m.target)] < 0;
        case StatMutation::Kind::kCardMultiplier:
          return RelContains(m.scope, slot);
        default:
          return m.target == slot;
      }
    });
    for (StatMutation& m : step.mutations) {
      if (m.kind == StatMutation::Kind::kJoinSelectivity) {
        m.target = edge_remap[static_cast<size_t>(m.target)];
      } else if (m.kind == StatMutation::Kind::kCardMultiplier) {
        m.scope = remap_scope(m.scope);
      } else {
        m.target = remap_slot(m.target);
      }
    }
  }
  std::erase_if(out.churn, [](const ChurnStep& s) { return s.mutations.empty(); });

  // Drop synthetic tables no longer referenced by any slot.
  if (!out.catalog.use_tpch) {
    std::vector<int> table_remap(out.catalog.tables.size(), -1);
    std::vector<SyntheticTableSpec> kept;
    for (QueryRelation& r : q.relations) {
      int& mapped = table_remap[static_cast<size_t>(r.table)];
      if (mapped < 0) {
        mapped = static_cast<int>(kept.size());
        kept.push_back(out.catalog.tables[static_cast<size_t>(r.table)]);
      }
      r.table = mapped;
    }
    out.catalog.tables = std::move(kept);
  }
  return out;
}

}  // namespace

Scenario ShrinkScenario(const Scenario& failing,
                        const std::function<bool(const Scenario&)>& fails, int budget) {
  Scenario best = failing;
  auto attempt = [&](const Scenario& candidate) {
    if (budget <= 0) return false;
    --budget;
    if (!fails(candidate)) return false;
    best = candidate;
    return true;
  };

  bool progress = true;
  while (progress && budget > 0) {
    progress = false;

    // Drop whole churn steps, newest first (a failing prefix shrinks fast).
    for (int s = static_cast<int>(best.churn.size()) - 1; s >= 0 && budget > 0; --s) {
      Scenario c = best;
      c.churn.erase(c.churn.begin() + s);
      if (attempt(c)) progress = true;
    }
    // Drop individual mutations.
    for (size_t s = 0; s < best.churn.size() && budget > 0; ++s) {
      for (size_t m = best.churn[s].mutations.size(); m-- > 0 && budget > 0;) {
        if (best.churn[s].mutations.size() <= 1) break;  // step removal covers it
        Scenario c = best;
        c.churn[s].mutations.erase(c.churn[s].mutations.begin() + static_cast<long>(m));
        if (attempt(c)) progress = true;
      }
    }
    // Strip query decoration: locals, aggregation, projections, windows.
    for (size_t p = best.query.locals.size(); p-- > 0 && budget > 0;) {
      Scenario c = best;
      c.query.locals.erase(c.query.locals.begin() + static_cast<long>(p));
      if (attempt(c)) progress = true;
    }
    if (best.query.has_aggregation() && budget > 0) {
      Scenario c = best;
      c.query.group_by.clear();
      c.query.aggregates.clear();
      if (attempt(c)) progress = true;
    }
    if (!best.query.projections.empty() && budget > 0) {
      Scenario c = best;
      c.query.projections.clear();
      if (attempt(c)) progress = true;
    }
    for (int r = 0; r < best.query.num_relations() && budget > 0; ++r) {
      if (best.query.relations[static_cast<size_t>(r)].window.kind == WindowSpec::Kind::kNone) {
        continue;
      }
      Scenario c = best;
      c.query.relations[static_cast<size_t>(r)].window = WindowSpec{};
      if (attempt(c)) progress = true;
    }
    // Remove whole relations (largest structural step, tried last).
    for (int r = best.query.num_relations() - 1; r >= 0 && budget > 0; --r) {
      std::optional<Scenario> c = RemoveRelation(best, r);
      if (c.has_value() && attempt(*c)) progress = true;
    }
  }
  return best;
}

}  // namespace iqro::testing
