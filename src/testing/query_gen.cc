#include "testing/query_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/str_util.h"

namespace iqro::testing {

namespace {

enum class Shape : uint8_t { kChain, kStar, kRandomTree, kClique };

Shape PickShape(Rng& rng) {
  switch (rng.NextBelow(8)) {
    case 0:
    case 1:
      return Shape::kChain;
    case 2:
    case 3:
      return Shape::kStar;
    case 4:
      return Shape::kClique;
    default:
      return Shape::kRandomTree;
  }
}

/// Column value bounds of table `t`, column `c` — used to draw predicate
/// literals that land inside (and occasionally outside) the data domain.
struct ColBounds {
  int64_t min = 0;
  int64_t max = 0;
};

ColBounds BoundsOf(const CatalogSpec& cat, const QuerySpec& q, int slot, int col) {
  TableId t = q.relations[static_cast<size_t>(slot)].table;
  if (cat.use_tpch) {
    const TpchFixture& tpch = SharedTpchFixture();
    const TableStats& ts = tpch.stats[static_cast<size_t>(t)];
    if (col < static_cast<int>(ts.columns.size())) {
      return {ts.column(col).min, ts.column(col).max};
    }
    return {0, 100};
  }
  const SyntheticColumnSpec& cs = cat.tables[static_cast<size_t>(t)].cols[static_cast<size_t>(col)];
  return {cs.min, cs.max};
}

int NumColsOf(const CatalogSpec& cat, TableId t) {
  if (cat.use_tpch) {
    return SharedTpchFixture().catalog.table(t).num_columns();
  }
  return static_cast<int>(cat.tables[static_cast<size_t>(t)].cols.size());
}

PredOp PickJoinOp(const QueryGenOptions& options, Rng& rng) {
  if (!rng.NextBool(options.p_nonequi_join)) return PredOp::kEq;
  switch (rng.NextBelow(3)) {
    case 0:
      return PredOp::kLt;
    case 1:
      return PredOp::kGt;
    default:
      return PredOp::kNe;
  }
}

PredOp PickLocalOp(Rng& rng) {
  constexpr PredOp kOps[] = {PredOp::kEq, PredOp::kNe, PredOp::kLt, PredOp::kLe,
                             PredOp::kGt, PredOp::kGe, PredOp::kBetween};
  return kOps[rng.NextBelow(7)];
}

SyntheticTableSpec GenerateTableSpec(int index, Rng& rng) {
  SyntheticTableSpec t;
  t.name = StrFormat("g%d", index);
  t.rows = std::floor(std::pow(10.0, 1.0 + 3.0 * rng.NextDouble()));  // 10 .. 10^4
  t.width = 1.0 + std::floor(rng.NextDouble() * 8);
  t.hist_seed = rng.Next();
  int ncols = 3 + static_cast<int>(rng.NextBelow(3));  // 3..5
  for (int c = 0; c < ncols; ++c) {
    SyntheticColumnSpec cs;
    cs.min = rng.NextInRange(-100, 100);
    cs.max = cs.min + rng.NextInRange(1, 100000);
    cs.ndv = std::max(1.0, std::floor(t.rows * (0.01 + 0.99 * rng.NextDouble())));
    t.cols.push_back(cs);
    if (rng.NextBool(0.4)) t.indexed_cols |= 1u << c;
  }
  if (rng.NextBool(0.5)) t.clustered_on = static_cast<int>(rng.NextBelow(t.cols.size()));
  return t;
}

}  // namespace

void GenerateCatalogAndQuery(const QueryGenOptions& options, bool use_tpch, Rng& rng,
                             CatalogSpec* catalog, QuerySpec* query) {
  catalog->use_tpch = use_tpch;
  catalog->tables.clear();
  *query = QuerySpec{};

  Shape shape = PickShape(rng);
  int max_n = shape == Shape::kClique ? options.max_dense_relations : options.max_relations;
  max_n = std::max(max_n, options.min_relations);
  // Bias toward small queries: the scenario budget buys breadth, not depth.
  int span = max_n - options.min_relations;
  int n = options.min_relations +
          static_cast<int>(std::min(rng.NextBelow(static_cast<uint64_t>(span) + 1),
                                    rng.NextBelow(static_cast<uint64_t>(span) + 1)));
  IQRO_CHECK(n >= 1 && n <= kMaxRelations);

  // Relation slots. Synthetic mode creates one fresh table per slot except
  // when a self-join reuses an earlier one; TPC-H picks among the 8 tables.
  const int num_tpch_tables = use_tpch ? SharedTpchFixture().catalog.num_tables() : 0;
  for (int r = 0; r < n; ++r) {
    TableId t;
    if (use_tpch) {
      t = static_cast<TableId>(rng.NextBelow(static_cast<uint64_t>(num_tpch_tables)));
    } else if (r > 0 && rng.NextBool(options.p_self_join)) {
      t = query->relations[rng.NextBelow(static_cast<uint64_t>(r))].table;  // self-join
    } else {
      t = static_cast<TableId>(catalog->tables.size());
      catalog->tables.push_back(GenerateTableSpec(static_cast<int>(t), rng));
    }
    WindowSpec window;
    if (rng.NextBool(options.p_window)) {
      if (rng.NextBool(0.5)) {
        window.kind = WindowSpec::Kind::kTime;
        window.size = static_cast<int64_t>(std::pow(10.0, rng.NextInRange(1, 3)));
      } else {
        window.kind = WindowSpec::Kind::kTuples;
        window.size = rng.NextInRange(1, 64);
        int ncols = NumColsOf(*catalog, t);
        window.partition_col =
            rng.NextBool(0.5) ? static_cast<int>(rng.NextBelow(static_cast<uint64_t>(ncols)))
                              : -1;
      }
    }
    query->relations.push_back({t, StrFormat("r%d", r), window});
  }

  // Spanning structure first (connectivity guarantee), extra edges after.
  auto add_edge = [&](int a, int b) {
    int acols = NumColsOf(*catalog, query->relations[static_cast<size_t>(a)].table);
    int bcols = NumColsOf(*catalog, query->relations[static_cast<size_t>(b)].table);
    JoinPredicate j;
    j.left_rel = a;
    j.left_col = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(acols)));
    j.right_rel = b;
    j.right_col = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(bcols)));
    j.op = PickJoinOp(options, rng);
    query->joins.push_back(j);
  };
  switch (shape) {
    case Shape::kChain:
      for (int i = 0; i + 1 < n; ++i) add_edge(i, i + 1);
      break;
    case Shape::kStar:
      for (int i = 1; i < n; ++i) add_edge(0, i);
      break;
    case Shape::kRandomTree:
      // Each relation attaches to a uniformly random earlier one.
      for (int i = 1; i < n; ++i) add_edge(static_cast<int>(rng.NextBelow(static_cast<uint64_t>(i))), i);
      break;
    case Shape::kClique:
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) add_edge(i, j);
      }
      break;
  }
  if (shape != Shape::kClique && n <= options.max_dense_relations + 2) {
    // Extra non-tree edges (cycles, parallel edges between the same pair
    // are intentionally possible — SegTollS has them).
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.NextBool(options.p_extra_edge)) add_edge(i, j);
      }
    }
  }

  // Local predicates across the full PredOp alphabet, with literals drawn
  // from (a slightly widened) column domain.
  for (int r = 0; r < n; ++r) {
    if (!rng.NextBool(options.p_local_pred)) continue;
    int count = 1 + static_cast<int>(rng.NextBelow(
                        static_cast<uint64_t>(options.max_locals_per_rel)));
    int ncols = NumColsOf(*catalog, query->relations[static_cast<size_t>(r)].table);
    for (int k = 0; k < count; ++k) {
      LocalPredicate p;
      p.rel = r;
      p.col = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(ncols)));
      p.op = PickLocalOp(rng);
      ColBounds b = BoundsOf(*catalog, *query, r, p.col);
      int64_t slack = std::max<int64_t>(1, (b.max - b.min) / 10);
      p.value = rng.NextInRange(b.min - slack, b.max + slack);
      if (p.op == PredOp::kBetween) p.value2 = p.value + rng.NextInRange(0, b.max - b.min + slack);
      query->locals.push_back(p);
    }
  }

  // Projections, grouping and aggregates (no effect on join ordering, but
  // they ride through BindStats / context wiring and must never break it).
  auto random_colref = [&] {
    int r = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(n)));
    int ncols = NumColsOf(*catalog, query->relations[static_cast<size_t>(r)].table);
    return ColRef{r, static_cast<int>(rng.NextBelow(static_cast<uint64_t>(ncols)))};
  };
  if (rng.NextBool(0.5)) {
    int nproj = 1 + static_cast<int>(rng.NextBelow(3));
    for (int k = 0; k < nproj; ++k) query->projections.push_back(random_colref());
  }
  if (rng.NextBool(options.p_aggregation)) {
    int ngroup = static_cast<int>(rng.NextBelow(3));
    for (int k = 0; k < ngroup; ++k) query->group_by.push_back(random_colref());
    constexpr AggFn kFns[] = {AggFn::kCount, AggFn::kSum, AggFn::kMin, AggFn::kMax,
                              AggFn::kCountDistinct};
    int naggs = 1 + static_cast<int>(rng.NextBelow(3));
    for (int k = 0; k < naggs; ++k) {
      query->aggregates.push_back({kFns[rng.NextBelow(5)], random_colref()});
    }
  }

  query->name = StrFormat("gen_%s_n%d", use_tpch ? "tpch" : "syn", n);
}

}  // namespace iqro::testing
