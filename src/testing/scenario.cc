#include "testing/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "query/bind_stats.h"
#include "workload/context.h"
#include "workload/tpch_gen.h"

namespace iqro::testing {

const char* StatMutationKindName(StatMutation::Kind k) {
  switch (k) {
    case StatMutation::Kind::kBaseRows:
      return "base_rows";
    case StatMutation::Kind::kLocalSelectivity:
      return "local_sel";
    case StatMutation::Kind::kRowWidth:
      return "row_width";
    case StatMutation::Kind::kScanCost:
      return "scan_cost";
    case StatMutation::Kind::kJoinSelectivity:
      return "join_sel";
    case StatMutation::Kind::kCardMultiplier:
      return "card_mult";
  }
  return "?";
}

const TpchFixture& SharedTpchFixture() {
  static const TpchFixture* fixture = [] {
    auto* f = new TpchFixture();
    TpchConfig cfg;
    cfg.scale_factor = 0.002;
    GenerateTpch(&f->catalog, cfg);
    f->stats = CollectCatalogStats(f->catalog);
    return f;
  }();
  return *fixture;
}

TableStats MakeSyntheticTableStats(const SyntheticTableSpec& spec) {
  TableStats ts;
  ts.rows = spec.rows;
  ts.row_width = spec.width;
  ts.columns.resize(spec.cols.size());
  Rng rng(spec.hist_seed);
  for (size_t c = 0; c < spec.cols.size(); ++c) {
    const SyntheticColumnSpec& cs = spec.cols[c];
    ColumnStats& out = ts.columns[c];
    out.min = cs.min;
    out.max = cs.max;
    out.ndv = std::min(cs.ndv, spec.rows);
    // Sample a small value population and build a real equi-depth histogram
    // so predicate selectivities flow through the production estimator.
    const size_t samples = static_cast<size_t>(std::min(256.0, std::max(1.0, spec.rows)));
    std::vector<int64_t> values(samples);
    const uint64_t domain = static_cast<uint64_t>(cs.max - cs.min) + 1;
    for (size_t i = 0; i < samples; ++i) {
      values[i] = cs.min + static_cast<int64_t>(rng.NextBelow(domain));
    }
    out.histogram = Histogram::Build(values, 16);
  }
  return ts;
}

void BindScenarioStats(const Scenario& scenario, StatsRegistry* registry) {
  if (scenario.catalog.use_tpch) {
    BindStats(scenario.query, SharedTpchFixture().stats, registry);
    return;
  }
  std::vector<TableStats> stats;
  stats.reserve(scenario.catalog.tables.size());
  for (const SyntheticTableSpec& t : scenario.catalog.tables) {
    stats.push_back(MakeSyntheticTableStats(t));
  }
  BindStats(scenario.query, stats, registry);
}

std::unique_ptr<ScenarioWorld> BuildScenarioWorld(const Scenario& scenario) {
  auto world = std::make_unique<ScenarioWorld>();
  if (scenario.catalog.use_tpch) {
    world->catalog = &SharedTpchFixture().catalog;
  } else {
    world->owned_catalog = std::make_unique<Catalog>();
    for (const SyntheticTableSpec& t : scenario.catalog.tables) {
      Schema schema;
      schema.name = t.name;
      for (size_t c = 0; c < t.cols.size(); ++c) {
        schema.columns.push_back({StrFormat("c%zu", c), ColumnType::kInt});
      }
      TableId id = world->owned_catalog->CreateTable(schema);
      Table& table = world->owned_catalog->table(id);
      for (size_t c = 0; c < t.cols.size(); ++c) {
        if ((t.indexed_cols >> c) & 1) table.BuildIndex(static_cast<int>(c));
      }
      if (t.clustered_on >= 0) table.SetClusteredOn(t.clustered_on);
    }
    world->catalog = world->owned_catalog.get();
  }
  world->graph = std::make_unique<JoinGraph>(scenario.query);
  BindScenarioStats(scenario, &world->registry);
  world->registry.Freeze();
  world->summaries = std::make_unique<SummaryCalculator>(&world->registry);
  world->cost_model = std::make_unique<CostModel>(world->summaries.get());
  world->enumerator = std::make_unique<PlanEnumerator>(&scenario.query, world->graph.get(),
                                                       world->catalog, &world->props);
  return world;
}

void ApplyMutation(StatsRegistry* registry, const StatMutation& m) {
  switch (m.kind) {
    case StatMutation::Kind::kBaseRows:
      registry->SetBaseRows(m.target, m.value);
      break;
    case StatMutation::Kind::kLocalSelectivity:
      registry->SetLocalSelectivity(m.target, m.value);
      break;
    case StatMutation::Kind::kRowWidth:
      registry->SetRowWidth(m.target, m.value);
      break;
    case StatMutation::Kind::kScanCost:
      registry->SetScanCostMultiplier(m.target, m.value);
      break;
    case StatMutation::Kind::kJoinSelectivity:
      registry->SetJoinSelectivity(m.target, m.value);
      break;
    case StatMutation::Kind::kCardMultiplier:
      registry->SetCardMultiplier(m.scope, m.value);
      break;
  }
}

void ApplyChurnPrefix(StatsRegistry* registry, const Scenario& scenario, size_t n_steps) {
  IQRO_CHECK(n_steps <= scenario.churn.size());
  for (size_t s = 0; s < n_steps; ++s) {
    for (const StatMutation& m : scenario.churn[s].mutations) ApplyMutation(registry, m);
  }
}

namespace {

std::string WindowToString(const WindowSpec& w) {
  switch (w.kind) {
    case WindowSpec::Kind::kNone:
      return "";
    case WindowSpec::Kind::kTime:
      return StrFormat(" [size %lld time]", static_cast<long long>(w.size));
    case WindowSpec::Kind::kTuples:
      return StrFormat(" [size %lld tuple part=%d]", static_cast<long long>(w.size),
                       w.partition_col);
  }
  return "";
}

}  // namespace

std::string ScenarioToString(const Scenario& sc) {
  std::string out = StrFormat("scenario seed=%llu options=%s catalog=%s\n",
                              static_cast<unsigned long long>(sc.seed),
                              sc.options_name.c_str(),
                              sc.catalog.use_tpch ? "tpch" : "synthetic");
  if (!sc.catalog.use_tpch) {
    for (const SyntheticTableSpec& t : sc.catalog.tables) {
      std::string cols;
      for (const SyntheticColumnSpec& c : t.cols) {
        cols += StrFormat(" [%lld,%lld]ndv=%s", static_cast<long long>(c.min),
                          static_cast<long long>(c.max), DoubleToString(c.ndv).c_str());
      }
      out += StrFormat("  table %s rows=%s width=%s idx=%#x clust=%d%s\n", t.name.c_str(),
                       DoubleToString(t.rows).c_str(), DoubleToString(t.width).c_str(),
                       t.indexed_cols, t.clustered_on, cols.c_str());
    }
  }
  out += StrFormat("  query %s\n", sc.query.name.c_str());
  for (int r = 0; r < sc.query.num_relations(); ++r) {
    const QueryRelation& qr = sc.query.relations[static_cast<size_t>(r)];
    out += StrFormat("    r%d = table#%d %s%s\n", r, qr.table, qr.alias.c_str(),
                     WindowToString(qr.window).c_str());
  }
  for (const JoinPredicate& j : sc.query.joins) {
    out += StrFormat("    join r%d.c%d %s r%d.c%d\n", j.left_rel, j.left_col,
                     PredOpName(j.op), j.right_rel, j.right_col);
  }
  for (const LocalPredicate& p : sc.query.locals) {
    out += StrFormat("    local r%d.c%d %s %lld", p.rel, p.col, PredOpName(p.op),
                     static_cast<long long>(p.value));
    if (p.op == PredOp::kBetween) out += StrFormat(" and %lld", static_cast<long long>(p.value2));
    out += "\n";
  }
  if (sc.query.has_aggregation()) {
    out += StrFormat("    aggregation: %zu group-by cols, %zu aggregates\n",
                     sc.query.group_by.size(), sc.query.aggregates.size());
  }
  for (size_t s = 0; s < sc.churn.size(); ++s) {
    out += StrFormat("  step %zu:\n", s);
    for (const StatMutation& m : sc.churn[s].mutations) {
      if (m.kind == StatMutation::Kind::kCardMultiplier) {
        out += StrFormat("    %s scope=%s value=%s\n", StatMutationKindName(m.kind),
                         RelSetToString(m.scope).c_str(), DoubleToString(m.value).c_str());
      } else {
        out += StrFormat("    %s target=%d value=%s\n", StatMutationKindName(m.kind), m.target,
                         DoubleToString(m.value).c_str());
      }
    }
  }
  return out;
}

}  // namespace iqro::testing
