// Differential oracle: proves Reoptimize() ≡ from-scratch optimization on
// generated (query, stat-churn) scenarios.
//
// For every churn prefix it checks the incremental optimizer against
//   (1) a fresh DeclarativeOptimizer::Optimize() with the same options on
//       the updated statistics: equal BestCost, same-shape GetBestPlan,
//       byte-identical CanonicalDumpState;
//   (2) the System-R baseline (exhaustive ground truth over the same plan
//       space) and the Volcano baseline;
//   (3) DeclarativeOptimizer::ValidateInvariants() at every fixpoint;
// and re-derives the returned plan's cost bottom-up through the cost model.
//
// Failures reproduce from the printed seed; ShrinkScenario minimizes the
// failing (query, churn) pair before reporting.
#ifndef IQRO_TESTING_DIFFERENTIAL_H_
#define IQRO_TESTING_DIFFERENTIAL_H_

#include <functional>
#include <string>

#include "enumerate/plan_tree.h"
#include "testing/query_gen.h"
#include "testing/scenario.h"
#include "testing/stat_churn.h"

namespace iqro::testing {

struct GeneratorKnobs {
  QueryGenOptions query;
  ChurnGenOptions churn;
  /// Fraction of scenarios generated against the shared TPC-H catalog
  /// instead of a synthetic one.
  double p_tpch = 0.25;
};

/// Deterministically expands a seed into a full scenario (catalog, query,
/// optimizer options, churn). Same seed + same knobs -> identical scenario.
Scenario GenerateScenario(uint64_t seed, const GeneratorKnobs& knobs = {});

/// The optimizer configurations a scenario may draw (mirrors the paper's
/// evaluated pruning levels plus the FIFO discipline).
const std::vector<std::pair<std::string, OptimizerOptions>>& ScenarioOptionSets();

struct DiffOptions {
  /// Run ValidateInvariants at every fixpoint. Disabled for fault-injection
  /// runs: an intentionally under-seeded optimizer holds stale-but-
  /// consistent state and the freshness CHECK would abort the process
  /// instead of letting the oracle report the divergence.
  bool validate_invariants = true;
  bool check_systemr = true;
  bool check_volcano = true;
  bool check_dump = true;
  /// 0: legacy mode — one Reoptimize() per churn step.
  /// k >= 1: batch mode — churn steps are applied in groups of k and
  /// flushed through a ReoptSession (exercising the coalescer and the
  /// multi-query dispatcher), with a same-options shadow optimizer
  /// registered alongside the primary; after every flush both must agree
  /// with the from-scratch oracle AND with each other byte-for-byte.
  int batch_steps = 0;
  /// Only meaningful in batch mode. 0: the session flushes serially.
  /// N >= 1: the session dispatches on an N-thread pool — and a *serial
  /// mirror* world (its own registry/enumerator/optimizers, same scenario,
  /// same mutations, serial session) runs every flush in lockstep; after
  /// each flush the pooled primary and shadow must be byte-identical
  /// (CanonicalDumpState) to their serial twins. That is the direct
  /// "parallel flush ≡ serial flush" claim, on top of the existing
  /// "≡ from-scratch" oracle which the pooled optimizers still face.
  int worker_threads = 0;
  /// Fault rotation: derive a deterministic fault plan from the scenario
  /// seed (site, action, hit ordinal), arm it, and confine the counting
  /// windows to the PRIMARY world's flushes — the oracle's from-scratch
  /// optimizers and the mirror world run the very same fault-point-bearing
  /// code with counting disabled, so they never fault. In batch mode an
  /// injected fault quarantines a query; the harness then drives recovery
  /// flushes until nothing is quarantined and holds the recovered state to
  /// the full oracle AND byte-identical (CanonicalDumpState) to the
  /// never-faulted mirror, which runs even when worker_threads == 0. In
  /// legacy mode the throw surfaces to the caller; the harness asserts the
  /// strong exception guarantee (!optimized()) and recovers via
  /// RebuildFromScratch(). Either way, a run whose fault ordinal is never
  /// reached degenerates to the plain differential check.
  bool fault_rotation = false;
  /// Lifecycle rotation (batch mode only): at every flush boundary a
  /// seed-derived roll either does nothing, EVICTS registered queries
  /// (memo spilled to a serialized seed and torn down — the next flush
  /// rehydrates them, naturally when its batch is relevant or manually
  /// right after it when not), or SNAPSHOT-RESTARTS the primary world
  /// (ReoptSession::SaveSnapshot, destroy the session/optimizers/world,
  /// rebuild a fresh world, LoadSnapshot, re-subscribe). The primary must
  /// stay byte-identical (CanonicalDumpState) to the never-evicted,
  /// never-restarted mirror world — which always runs under this rotation
  /// — and to the from-scratch oracle, and the notification stream must
  /// be unchanged. Lifecycle operations run OUTSIDE fault windows, so a
  /// fault-rotation plan never fires inside them.
  bool lifecycle_rotation = false;
  double rel_tol = 1e-9;
};

/// Deliberate fault for harness self-tests: silently discard one pending
/// StatChange before a Reoptimize() (the under-seeding bug class the oracle
/// must catch).
struct FaultInjection {
  enum class Kind : uint8_t { kNone, kDropSeed };
  Kind kind = Kind::kNone;
  int step = 0;  // churn step whose seeding is sabotaged
};

/// Recomputes a plan's cumulative cost bottom-up from the cost model —
/// end-to-end verification of the optimizer's arithmetic. Shared by the
/// oracle and the unit tests so both agree on what "recomputed" means.
double RecomputeTreeCost(const PlanTree& tree, const CostModel& model);

struct DiffResult {
  bool ok = true;
  /// -1: the initial optimization diverged; >= 0: index of the churn step
  /// after which the divergence appeared.
  int fail_step = -2;
  std::string message;
  /// Fault-rotation runs only: how many injected faults actually fired
  /// (0 when the seed-chosen ordinal was never reached). On success the
  /// harness has already proven quarantines == faults fired and full
  /// recovery; callers use this to report fault coverage.
  int64_t faults_fired = 0;
  /// Workload-shape counters for per-class attribution (scenario_class.h):
  /// churn boundaries executed, boundaries after which the primary query's
  /// best plan changed *shape* (SameShape — operator/join-order change, not
  /// a mere cost move), PlanChangeEvents delivered (batch mode), and the
  /// session's cumulative seeding counters (batch mode).
  int64_t flushes = 0;
  int64_t plan_flips = 0;
  int64_t plan_changes = 0;
  int64_t eps_seeded = 0;
  int64_t eps_scanned = 0;
};

DiffResult RunScenario(const Scenario& scenario, const DiffOptions& options = {},
                       const FaultInjection& fault = {});

/// Greedily minimizes a failing scenario while `fails` keeps returning
/// true: drops churn steps and mutations, strips predicates, windows,
/// aggregates and whole relations. `budget` caps the number of `fails`
/// evaluations.
Scenario ShrinkScenario(const Scenario& failing,
                        const std::function<bool(const Scenario&)>& fails, int budget = 400);

}  // namespace iqro::testing

#endif  // IQRO_TESTING_DIFFERENTIAL_H_
