// Seeded random generator for single-block SPJA QuerySpecs: random join
// graphs (chain / star / random tree with extra edges / clique) over up to
// ten relations, local predicates across every PredOp, aggregates, and
// stream-window variants — against either a generated synthetic catalog or
// the shared TPC-H catalog.
#ifndef IQRO_TESTING_QUERY_GEN_H_
#define IQRO_TESTING_QUERY_GEN_H_

#include "common/rng.h"
#include "testing/scenario.h"

namespace iqro::testing {

struct QueryGenOptions {
  int min_relations = 1;
  int max_relations = 9;
  /// Clique and dense random graphs are capped here: their plan spaces grow
  /// as 3^n and would dominate the scenario budget.
  int max_dense_relations = 5;
  /// Probability of adding each candidate non-tree edge (density knob).
  double p_extra_edge = 0.2;
  /// Probability that a join predicate is a non-equality (kLt/kGt/kNe).
  double p_nonequi_join = 0.12;
  /// Probability that a relation slot reuses an already-picked table
  /// (self-join coverage).
  double p_self_join = 0.2;
  /// Per-relation probability of carrying local predicates.
  double p_local_pred = 0.55;
  int max_locals_per_rel = 2;
  /// Probability that the query has an aggregation block.
  double p_aggregation = 0.35;
  /// Per-relation probability of a sliding-window declaration.
  double p_window = 0.2;
};

/// Generates a catalog spec plus a query against it. The join graph is
/// always connected (spanning structure first, optional extra edges after),
/// so every generated query has at least one complete plan.
void GenerateCatalogAndQuery(const QueryGenOptions& options, bool use_tpch, Rng& rng,
                             CatalogSpec* catalog, QuerySpec* query);

}  // namespace iqro::testing

#endif  // IQRO_TESTING_QUERY_GEN_H_
