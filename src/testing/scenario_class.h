// Adversarial scenario classes: workloads engineered to be hostile, layered
// on top of the random generators (testing/differential.h) and held to the
// same oracle discipline. ROADMAP direction 5's frontier — the shapes a
// production feedback loop produces at rate and a random sweep only grazes:
//
//   kPlanFlip     churn constructed by *probing the oracle* so nearly every
//                 flush crosses a plan boundary (digest/notification and
//                 quarantine paths never get a quiet flush);
//   kScopeOverlap 16..64 registered queries over one small relation
//                 alphabet, so every mutation's affected set is nearly the
//                 whole session (the subset index's dense fallback and the
//                 shared summary cache under maximum contention);
//   kHandleStorm  register/unregister churn interleaved with flushes under
//                 a tight memo_byte_budget (evict/rehydrate edges, LRU-tick
//                 freshness, resident-byte accounting);
//   kStreamChurn  windowed-query scenarios with long drift-style churn —
//                 the differential twin of the sustained linear-road stream
//                 driver (bench_adversarial).
//
// kRandom, kPlanFlip and kStreamChurn run through RunScenario and therefore
// keep the full mode rotation (batch/workers/faults/lifecycle). The storm
// classes (kScopeOverlap, kHandleStorm) run through a dedicated storm
// runner with their own oracle — one fresh from-scratch optimizer per
// distinct option set per flush, System-R + Volcano ground truth, and a
// serial no-budget mirror session executing the identical seed-derived
// schedule that every registered query must match byte-for-byte
// (CanonicalDumpState). Storm classes deterministically IGNORE the fault
// and lifecycle rotations (ScenarioClassHonorsRotations) — their adversary
// is the registration/eviction schedule itself, and a repro line pinning
// --faults/--lifecycle replays them identically either way.
//
// The class is part of a scenario's identity: the differential driver
// rotates it from the seed (DeriveScenarioClass), pins it with
// --scenario-class=N, and echoes it in every repro line (docs/TESTING.md
// "Adversarial scenario classes").
#ifndef IQRO_TESTING_SCENARIO_CLASS_H_
#define IQRO_TESTING_SCENARIO_CLASS_H_

#include <cstdint>

#include "testing/differential.h"

namespace iqro::testing {

enum class ScenarioClass : uint8_t {
  kRandom = 0,
  kPlanFlip = 1,
  kScopeOverlap = 2,
  kHandleStorm = 3,
  kStreamChurn = 4,
};

inline constexpr int kNumScenarioClasses = 5;

const char* ScenarioClassName(ScenarioClass cls);

/// The sweep's class rotation, derived from seed bits 3..5 so it composes
/// independently with the flush-mode (seed % 4), worker (seed % 3), fault
/// (seed % 2) and lifecycle (bit 2) rotations: rolls 0..3 stay kRandom
/// (half of all seeds keep the PR 2 random sweep), rolls 4..7 map to the
/// four adversarial classes, one each.
ScenarioClass DeriveScenarioClass(uint64_t seed);

/// True for classes that run through RunScenario and honor the fault and
/// lifecycle rotations; false for the storm classes, which ignore both.
bool ScenarioClassHonorsRotations(ScenarioClass cls);

/// Expands a seed into a class-shaped scenario. kRandom defers to
/// GenerateScenario unchanged; the other classes reshape the generator
/// knobs (small alphabets for the storms, forced windows for stream churn)
/// and kPlanFlip constructs its churn by probing the from-scratch oracle:
/// every churn step is accepted only after a fresh optimization of
/// (prefix + candidate) proves the best plan's *shape* changed — falling
/// back to the last candidate when no probe flips, so generation always
/// terminates and the scenario stays pure replayable data. Deterministic:
/// same (seed, class, knobs) -> identical scenario, probing included.
Scenario GenerateClassScenario(uint64_t seed, ScenarioClass cls,
                               const GeneratorKnobs& knobs = {});

/// What a class run observed, for per-class bench/CI attribution. Filled
/// from DiffResult counters for the RunScenario-backed classes and by the
/// storm runner directly for the storm classes.
struct ClassRunStats {
  int64_t flushes = 0;
  /// Flushes after which the primary query's best plan had a different
  /// shape (operator/join-order change, not just a cost move).
  int64_t plan_flips = 0;
  /// Delivered PlanChangeEvents across every registered query.
  int64_t plan_changes = 0;
  /// Peak registered queries (storm classes; 1 + shadow otherwise).
  int64_t queries = 0;
  int64_t registrations = 0;
  int64_t releases = 0;
  int64_t evictions = 0;
  int64_t rehydrations = 0;
  int64_t eps_seeded = 0;
  int64_t eps_scanned = 0;
  int64_t summary_hits = 0;
  int64_t summary_misses = 0;
  int64_t max_resident_bytes = 0;

  void Accumulate(const ClassRunStats& o);
};

/// Runs a scenario under its class contract. kRandom/kPlanFlip/kStreamChurn
/// dispatch to RunScenario with `options` unchanged (full rotation support);
/// storm classes dispatch to the storm runner with fault/lifecycle rotation
/// cleared (see above) and `options.batch_steps` floored at 1 (storms are
/// session workloads; there is no legacy change-at-a-time storm).
/// `stats`, when non-null, receives the run's class counters (accumulated,
/// so one struct can aggregate a sweep).
DiffResult RunClassScenario(const Scenario& scenario, ScenarioClass cls,
                            const DiffOptions& options, ClassRunStats* stats = nullptr);

}  // namespace iqro::testing

#endif  // IQRO_TESTING_SCENARIO_CLASS_H_
