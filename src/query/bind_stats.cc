#include "query/bind_stats.h"

#include <algorithm>

#include "common/check.h"

namespace iqro {

double EstimateLocalSelectivity(const LocalPredicate& pred, const TableStats& stats) {
  if (pred.col >= static_cast<int>(stats.columns.size())) return 1.0;
  const Histogram& h = stats.column(pred.col).histogram;
  if (h.empty()) {
    // No data: fall back to textbook constants.
    switch (pred.op) {
      case PredOp::kEq:
        return 0.1;
      case PredOp::kNe:
        return 0.9;
      case PredOp::kBetween:
        return 0.25;
      default:
        return 1.0 / 3.0;
    }
  }
  switch (pred.op) {
    case PredOp::kEq:
      return h.SelectivityEq(pred.value);
    case PredOp::kNe:
      return std::max(0.0, 1.0 - h.SelectivityEq(pred.value));
    case PredOp::kLt:
      return h.SelectivityLt(pred.value);
    case PredOp::kLe:
      return h.SelectivityLt(pred.value) + h.SelectivityEq(pred.value);
    case PredOp::kGt:
      return h.SelectivityGt(pred.value);
    case PredOp::kGe:
      return h.SelectivityGt(pred.value) + h.SelectivityEq(pred.value);
    case PredOp::kBetween:
      return h.SelectivityBetween(pred.value, pred.value2);
  }
  return 1.0;
}

double EstimateJoinSelectivity(const JoinPredicate& join, const TableStats& left,
                               const TableStats& right) {
  if (join.op != PredOp::kEq) return 1.0 / 3.0;
  double lndv = 1.0;
  double rndv = 1.0;
  if (join.left_col < static_cast<int>(left.columns.size())) {
    lndv = std::max(1.0, left.column(join.left_col).ndv);
  }
  if (join.right_col < static_cast<int>(right.columns.size())) {
    rndv = std::max(1.0, right.column(join.right_col).ndv);
  }
  return 1.0 / std::max(lndv, rndv);
}

void BindStats(const QuerySpec& query, const std::vector<TableStats>& per_table_stats,
               StatsRegistry* registry) {
  registry->Reset(query.num_relations());
  auto stats_of = [&](int slot) -> const TableStats& {
    TableId t = query.relations[static_cast<size_t>(slot)].table;
    IQRO_CHECK(t >= 0 && t < static_cast<TableId>(per_table_stats.size()));
    return per_table_stats[static_cast<size_t>(t)];
  };
  for (int r = 0; r < query.num_relations(); ++r) {
    const TableStats& ts = stats_of(r);
    double rows = std::max(1.0, ts.rows);
    const WindowSpec& w = query.relations[static_cast<size_t>(r)].window;
    if (w.kind == WindowSpec::Kind::kTuples) {
      double per_partition = static_cast<double>(w.size);
      if (w.partition_col >= 0 &&
          w.partition_col < static_cast<int>(ts.columns.size())) {
        rows = std::min(rows, per_partition * std::max(1.0, ts.column(w.partition_col).ndv));
      } else {
        rows = std::min(rows, per_partition);
      }
    }
    registry->SetBaseRows(r, rows);
    double sel = 1.0;
    for (const auto& p : query.LocalsOf(r)) sel *= EstimateLocalSelectivity(p, ts);
    registry->SetLocalSelectivity(r, std::max(sel, 1e-9));
    registry->SetRowWidth(r, std::max(1.0, ts.row_width));
  }
  for (const auto& j : query.joins) {
    double sel = EstimateJoinSelectivity(j, stats_of(j.left_rel), stats_of(j.right_rel));
    registry->AddEdge(j.Endpoints(), std::max(sel, 1e-12));
  }
}

}  // namespace iqro
