#include "query/query_builder.h"

#include "common/check.h"

namespace iqro {

QueryBuilder::QueryBuilder(std::string name, Catalog* catalog) : catalog_(catalog) {
  spec_.name = std::move(name);
}

int QueryBuilder::AddRelation(const std::string& table_name, const std::string& alias) {
  return AddWindowedRelation(table_name, alias, WindowSpec{});
}

int QueryBuilder::AddWindowedRelation(const std::string& table_name, const std::string& alias,
                                      WindowSpec window) {
  TableId id = catalog_->FindTable(table_name);
  IQRO_CHECK(id >= 0);
  IQRO_CHECK(SlotOf(alias) < 0);
  IQRO_CHECK(spec_.num_relations() < kMaxRelations);
  spec_.relations.push_back({id, alias, window});
  return spec_.num_relations() - 1;
}

int QueryBuilder::SlotOf(const std::string& alias) const {
  for (int i = 0; i < spec_.num_relations(); ++i) {
    if (spec_.relations[static_cast<size_t>(i)].alias == alias) return i;
  }
  return -1;
}

int QueryBuilder::ColOf(int slot, const std::string& col) const {
  IQRO_CHECK(slot >= 0);
  const Table& t = catalog_->table(spec_.relations[static_cast<size_t>(slot)].table);
  int c = t.schema().ColumnIndex(col);
  IQRO_CHECK(c >= 0);
  return c;
}

QueryBuilder& QueryBuilder::Join(const std::string& la, const std::string& lcol,
                                 const std::string& ra, const std::string& rcol, PredOp op) {
  int ls = SlotOf(la);
  int rs = SlotOf(ra);
  IQRO_CHECK(ls >= 0 && rs >= 0 && ls != rs);
  spec_.joins.push_back({ls, ColOf(ls, lcol), rs, ColOf(rs, rcol), op});
  return *this;
}

QueryBuilder& QueryBuilder::Filter(const std::string& alias, const std::string& col, PredOp op,
                                   int64_t value, int64_t value2) {
  int s = SlotOf(alias);
  spec_.locals.push_back({s, ColOf(s, col), op, value, value2});
  return *this;
}

QueryBuilder& QueryBuilder::FilterStr(const std::string& alias, const std::string& col,
                                      PredOp op, const std::string& value) {
  return Filter(alias, col, op, catalog_->dict().Intern(value));
}

QueryBuilder& QueryBuilder::Project(const std::string& alias, const std::string& col) {
  int s = SlotOf(alias);
  spec_.projections.push_back({s, ColOf(s, col)});
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(const std::string& alias, const std::string& col) {
  int s = SlotOf(alias);
  spec_.group_by.push_back({s, ColOf(s, col)});
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(AggFn fn, const std::string& alias,
                                      const std::string& col) {
  AggItem item;
  item.fn = fn;
  if (!alias.empty()) {
    int s = SlotOf(alias);
    item.arg = {s, ColOf(s, col)};
  }
  spec_.aggregates.push_back(item);
  return *this;
}

QuerySpec QueryBuilder::Build() {
  IQRO_CHECK(spec_.num_relations() >= 1);
  return spec_;
}

}  // namespace iqro
