// QuerySpec: a single-block select-project-join-aggregate query over stored
// tables or stream windows — the optimizer's input language (the workload
// class evaluated in the paper: TPC-H single-block queries and Linear Road
// window joins).
#ifndef IQRO_QUERY_QUERY_SPEC_H_
#define IQRO_QUERY_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/relset.h"

namespace iqro {

enum class PredOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };

const char* PredOpName(PredOp op);

/// Single-relation predicate, applied at scan level.
struct LocalPredicate {
  int rel = 0;  // index into QuerySpec::relations
  int col = 0;
  PredOp op = PredOp::kEq;
  int64_t value = 0;
  int64_t value2 = 0;  // upper bound for kBetween
};

/// Binary join predicate; an edge of the join graph.
struct JoinPredicate {
  int left_rel = 0;
  int left_col = 0;
  int right_rel = 0;
  int right_col = 0;
  PredOp op = PredOp::kEq;

  RelSet Endpoints() const { return RelSingleton(left_rel) | RelSingleton(right_rel); }
};

/// Column reference within a query: (relation slot, column).
struct ColRef {
  int rel = 0;
  int col = 0;
  bool operator==(const ColRef&) const = default;
};

enum class AggFn : uint8_t { kCount, kSum, kMin, kMax, kCountDistinct };

struct AggItem {
  AggFn fn = AggFn::kCount;
  ColRef arg;  // ignored for kCount
};

/// Sliding-window declaration for stream relations ("[size N time]" /
/// "[size N tuple partition by c]" in the paper's SegTollS query).
struct WindowSpec {
  enum class Kind : uint8_t { kNone, kTime, kTuples };
  Kind kind = Kind::kNone;
  int64_t size = 0;
  int partition_col = -1;  // -1: unpartitioned
};

struct QueryRelation {
  TableId table = -1;
  std::string alias;
  WindowSpec window;
};

struct QuerySpec {
  std::string name;
  std::vector<QueryRelation> relations;
  std::vector<JoinPredicate> joins;
  std::vector<LocalPredicate> locals;
  std::vector<ColRef> projections;   // empty: project everything
  std::vector<ColRef> group_by;      // with aggregates: grouping columns
  std::vector<AggItem> aggregates;   // empty: no aggregation block

  int num_relations() const { return static_cast<int>(relations.size()); }
  RelSet AllRelations() const {
    return num_relations() >= 32 ? ~RelSet{0} : (RelSet{1} << num_relations()) - 1;
  }
  bool has_aggregation() const { return !aggregates.empty() || !group_by.empty(); }

  /// Local predicates on relation slot `rel`.
  std::vector<LocalPredicate> LocalsOf(int rel) const;
};

}  // namespace iqro

#endif  // IQRO_QUERY_QUERY_SPEC_H_
