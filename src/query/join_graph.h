// JoinGraph: connectivity and edge lookups over a QuerySpec's join
// predicates. The enumerator uses it to generate only cross-product-free
// plans; edge ids align one-to-one with StatsRegistry edge ids.
#ifndef IQRO_QUERY_JOIN_GRAPH_H_
#define IQRO_QUERY_JOIN_GRAPH_H_

#include <vector>

#include "common/relset.h"
#include "query/query_spec.h"

namespace iqro {

class JoinGraph {
 public:
  explicit JoinGraph(const QuerySpec& query);

  int num_relations() const { return num_relations_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const JoinPredicate& edge(int e) const { return edges_[static_cast<size_t>(e)]; }

  /// Union of neighbors of every relation in `s` (may intersect `s`).
  RelSet Neighbors(RelSet s) const;

  /// True iff the relations of `s` form a connected subgraph (singletons
  /// are connected).
  bool IsConnected(RelSet s) const;

  /// True iff at least one edge crosses between disjoint sets `a` and `b`.
  bool HasCrossEdge(RelSet a, RelSet b) const;

  /// Ids of edges with one endpoint in `a` and the other in `b`.
  std::vector<int> CrossEdges(RelSet a, RelSet b) const;

  /// Ids of edges with both endpoints inside `s`.
  std::vector<int> EdgesWithin(RelSet s) const;

  /// All connected relation subsets, grouped by size (index = popcount).
  /// Used for System-R style bottom-up enumeration and full-space counting.
  std::vector<std::vector<RelSet>> ConnectedSubsetsBySize() const;

 private:
  int num_relations_;
  std::vector<JoinPredicate> edges_;
  std::vector<RelSet> adjacency_;  // adjacency_[r] = neighbors of relation r
};

}  // namespace iqro

#endif  // IQRO_QUERY_JOIN_GRAPH_H_
