// Fluent construction of QuerySpecs with catalog-validated column names.
#ifndef IQRO_QUERY_QUERY_BUILDER_H_
#define IQRO_QUERY_QUERY_BUILDER_H_

#include <string>

#include "catalog/catalog.h"
#include "query/query_spec.h"

namespace iqro {

class QueryBuilder {
 public:
  QueryBuilder(std::string name, Catalog* catalog);

  /// Adds a relation slot over `table_name` with alias `alias` (the alias
  /// names the slot in later calls). Returns the slot index.
  int AddRelation(const std::string& table_name, const std::string& alias);

  /// Same, with a sliding window (for stream relations).
  int AddWindowedRelation(const std::string& table_name, const std::string& alias,
                          WindowSpec window);

  /// Adds an equi-join `la.lcol op ra.rcol`.
  QueryBuilder& Join(const std::string& la, const std::string& lcol, const std::string& ra,
                     const std::string& rcol, PredOp op = PredOp::kEq);

  /// Adds a local predicate `alias.col op value`.
  QueryBuilder& Filter(const std::string& alias, const std::string& col, PredOp op,
                       int64_t value, int64_t value2 = 0);

  /// String-valued variant; interns the literal in the catalog dictionary.
  QueryBuilder& FilterStr(const std::string& alias, const std::string& col, PredOp op,
                          const std::string& value);

  QueryBuilder& Project(const std::string& alias, const std::string& col);
  QueryBuilder& GroupBy(const std::string& alias, const std::string& col);
  QueryBuilder& Aggregate(AggFn fn, const std::string& alias = "",
                          const std::string& col = "");

  QuerySpec Build();

 private:
  int SlotOf(const std::string& alias) const;
  int ColOf(int slot, const std::string& col) const;

  Catalog* catalog_;
  QuerySpec spec_;
};

}  // namespace iqro

#endif  // IQRO_QUERY_QUERY_BUILDER_H_
