// Binds a QuerySpec to table statistics, producing the StatsRegistry the
// optimizers consume: effective base cardinalities (local-predicate
// selectivities estimated from histograms), join-edge selectivities
// (System-R distinct-value rule), row widths and scan-cost baselines.
#ifndef IQRO_QUERY_BIND_STATS_H_
#define IQRO_QUERY_BIND_STATS_H_

#include <vector>

#include "query/join_graph.h"
#include "query/query_spec.h"
#include "stats/stats_registry.h"
#include "stats/table_stats.h"

namespace iqro {

/// Estimated selectivity of one local predicate against `stats`.
double EstimateLocalSelectivity(const LocalPredicate& pred, const TableStats& stats);

/// Estimated selectivity of one join edge against both sides' stats:
/// 1 / max(ndv(left), ndv(right)) for equality, 1/3 for inequalities.
double EstimateJoinSelectivity(const JoinPredicate& join, const TableStats& left,
                               const TableStats& right);

/// Populates `registry` for `query` given `per_table_stats[t]` = stats for
/// catalog table id `t`. Edge ids match `query.joins` order (and therefore
/// JoinGraph edge ids). Does not freeze the registry.
void BindStats(const QuerySpec& query, const std::vector<TableStats>& per_table_stats,
               StatsRegistry* registry);

}  // namespace iqro

#endif  // IQRO_QUERY_BIND_STATS_H_
