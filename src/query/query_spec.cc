#include "query/query_spec.h"

namespace iqro {

const char* PredOpName(PredOp op) {
  switch (op) {
    case PredOp::kEq:
      return "=";
    case PredOp::kNe:
      return "<>";
    case PredOp::kLt:
      return "<";
    case PredOp::kLe:
      return "<=";
    case PredOp::kGt:
      return ">";
    case PredOp::kGe:
      return ">=";
    case PredOp::kBetween:
      return "between";
  }
  return "?";
}

std::vector<LocalPredicate> QuerySpec::LocalsOf(int rel) const {
  std::vector<LocalPredicate> out;
  for (const auto& p : locals) {
    if (p.rel == rel) out.push_back(p);
  }
  return out;
}

}  // namespace iqro
