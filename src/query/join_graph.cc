#include "query/join_graph.h"

#include "common/check.h"

namespace iqro {

JoinGraph::JoinGraph(const QuerySpec& query)
    : num_relations_(query.num_relations()), edges_(query.joins) {
  adjacency_.assign(static_cast<size_t>(num_relations_), 0);
  for (const auto& e : edges_) {
    adjacency_[static_cast<size_t>(e.left_rel)] |= RelSingleton(e.right_rel);
    adjacency_[static_cast<size_t>(e.right_rel)] |= RelSingleton(e.left_rel);
  }
}

RelSet JoinGraph::Neighbors(RelSet s) const {
  RelSet out = 0;
  RelForEach(s, [&](int r) { out |= adjacency_[static_cast<size_t>(r)]; });
  return out;
}

bool JoinGraph::IsConnected(RelSet s) const {
  if (s == 0) return false;
  RelSet frontier = RelSet{1} << RelLowest(s);
  RelSet reached = frontier;
  while (true) {
    RelSet next = (Neighbors(frontier) & s) & ~reached;
    if (next == 0) break;
    reached |= next;
    frontier = next;
  }
  return reached == s;
}

bool JoinGraph::HasCrossEdge(RelSet a, RelSet b) const {
  IQRO_DCHECK(RelDisjoint(a, b));
  return (Neighbors(a) & b) != 0;
}

std::vector<int> JoinGraph::CrossEdges(RelSet a, RelSet b) const {
  std::vector<int> out;
  for (int e = 0; e < num_edges(); ++e) {
    RelSet l = RelSingleton(edges_[static_cast<size_t>(e)].left_rel);
    RelSet r = RelSingleton(edges_[static_cast<size_t>(e)].right_rel);
    if ((RelIsSubset(l, a) && RelIsSubset(r, b)) || (RelIsSubset(l, b) && RelIsSubset(r, a))) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<int> JoinGraph::EdgesWithin(RelSet s) const {
  std::vector<int> out;
  for (int e = 0; e < num_edges(); ++e) {
    if (RelIsSubset(edges_[static_cast<size_t>(e)].Endpoints(), s)) out.push_back(e);
  }
  return out;
}

std::vector<std::vector<RelSet>> JoinGraph::ConnectedSubsetsBySize() const {
  std::vector<std::vector<RelSet>> by_size(static_cast<size_t>(num_relations_) + 1);
  RelSet all = num_relations_ >= 32 ? ~RelSet{0} : (RelSet{1} << num_relations_) - 1;
  for (RelSet s = 1; s <= all; ++s) {
    if (IsConnected(s)) by_size[static_cast<size_t>(RelCount(s))].push_back(s);
  }
  return by_size;
}

}  // namespace iqro
