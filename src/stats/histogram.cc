#include "stats/histogram.h"

#include <algorithm>

#include "common/check.h"

namespace iqro {

Histogram Histogram::Build(std::span<const int64_t> values, int num_buckets) {
  Histogram h;
  if (values.empty()) return h;
  IQRO_CHECK(num_buckets >= 1);
  std::vector<int64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  h.total_ = sorted.size();
  h.min_ = sorted.front();
  h.max_ = sorted.back();

  const size_t n = sorted.size();
  const size_t depth = std::max<size_t>(1, (n + num_buckets - 1) / num_buckets);
  h.bounds_.push_back(h.min_);
  size_t i = 0;
  while (i < n) {
    size_t end = std::min(n, i + depth);
    // Extend to the last duplicate of the boundary value so a value never
    // straddles buckets.
    int64_t boundary = sorted[end - 1];
    while (end < n && sorted[end] == boundary) ++end;
    uint64_t count = end - i;
    double ndv = 0;
    for (size_t j = i; j < end; ++j) {
      if (j == i || sorted[j] != sorted[j - 1]) ndv += 1;
    }
    h.bounds_.push_back(boundary);
    h.counts_.push_back(count);
    h.bucket_ndv_.push_back(ndv);
    h.ndv_ += ndv;
    i = end;
  }
  return h;
}

double Histogram::SelectivityEq(int64_t v) const {
  if (empty() || v < min_ || v > max_) return 0.0;
  // Find the bucket containing v; assume uniform spread over its distincts.
  for (size_t b = 0; b < counts_.size(); ++b) {
    int64_t lo = bounds_[b];
    int64_t hi = bounds_[b + 1];
    bool in = (b == 0) ? (v >= lo && v <= hi) : (v > lo && v <= hi);
    if (in) {
      double in_bucket = static_cast<double>(counts_[b]) / std::max(1.0, bucket_ndv_[b]);
      return in_bucket / static_cast<double>(total_);
    }
  }
  return 0.0;
}

double Histogram::FractionBelowOrEqual(int64_t v) const {
  if (empty()) return 0.0;
  if (v < min_) return 0.0;
  if (v >= max_) return 1.0;
  double acc = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    int64_t lo = bounds_[b];
    int64_t hi = bounds_[b + 1];
    if (v > hi) {
      acc += static_cast<double>(counts_[b]);
      continue;
    }
    // Partial bucket: linear interpolation within [lo, hi].
    double width = static_cast<double>(hi - lo);
    double frac = width <= 0 ? 1.0 : static_cast<double>(v - lo) / width;
    frac = std::clamp(frac, 0.0, 1.0);
    acc += static_cast<double>(counts_[b]) * frac;
    break;
  }
  return acc / static_cast<double>(total_);
}

double Histogram::SelectivityLt(int64_t v) const {
  if (empty()) return 0.0;
  double le = FractionBelowOrEqual(v);
  return std::max(0.0, le - SelectivityEq(v));
}

double Histogram::SelectivityGt(int64_t v) const {
  if (empty()) return 0.0;
  return std::max(0.0, 1.0 - FractionBelowOrEqual(v));
}

double Histogram::SelectivityBetween(int64_t lo, int64_t hi) const {
  if (empty() || hi < lo) return 0.0;
  double upper = FractionBelowOrEqual(hi);
  double lower = lo <= min_ ? 0.0 : FractionBelowOrEqual(lo - 1);
  return std::max(0.0, upper - lower);
}

}  // namespace iqro
