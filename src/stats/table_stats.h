// Per-table statistics collected from stored data (the paper's "summaries
// (statistics) on the input relations and indexes").
#ifndef IQRO_STATS_TABLE_STATS_H_
#define IQRO_STATS_TABLE_STATS_H_

#include <vector>

#include "catalog/table.h"
#include "stats/histogram.h"

namespace iqro {

struct ColumnStats {
  int64_t min = 0;
  int64_t max = 0;
  double ndv = 0;  // number of distinct values
  Histogram histogram;
};

struct TableStats {
  double rows = 0;
  double row_width = 1;  // relative width factor used by the cost model
  std::vector<ColumnStats> columns;

  const ColumnStats& column(int c) const { return columns[static_cast<size_t>(c)]; }
};

/// Scans `table` and builds statistics with `num_buckets`-bucket histograms.
TableStats CollectTableStats(const Table& table, int num_buckets = 32);

}  // namespace iqro

#endif  // IQRO_STATS_TABLE_STATS_H_
