// StatsRegistry: the runtime-updatable cost and cardinality inputs of one
// query's optimization, shared by the declarative optimizer and the
// procedural baselines ("common code across the implementations", §5).
//
// Re-optimization in the paper is triggered by "updated cost (or
// cardinality) estimates based on information collected at runtime". All
// such updates flow through this registry:
//   * per-relation effective cardinality (base rows x local selectivity),
//   * per-join-edge selectivity,
//   * per-expression cardinality multipliers (what-if scaling of one
//     subexpression's output, as in Fig. 5),
//   * per-relation scan-cost multipliers (as in Fig. 8).
// After Freeze(), every mutation records a StatChange that the incremental
// optimizer drains to seed delta propagation, and bumps the epoch used for
// summary-cache invalidation.
#ifndef IQRO_STATS_STATS_REGISTRY_H_
#define IQRO_STATS_STATS_REGISTRY_H_

#include <cstdint>
#include <vector>

#include "common/relset.h"

namespace iqro {

/// What changed, and which expressions it can affect: every expression
/// `E` with `scope ⊆ E` may see a different summary or cost.
struct StatChange {
  enum class Kind : uint8_t {
    kCardinality,  // summaries of all supersets of `scope` changed
    kScanCost,     // only scan alternatives of `scope` (a singleton) changed
  };
  Kind kind = Kind::kCardinality;
  RelSet scope = 0;
};

struct JoinEdgeStats {
  RelSet endpoints = 0;  // exactly two bits
  double selectivity = 1.0;
};

class StatsRegistry {
 public:
  explicit StatsRegistry(int num_relations = 0);

  void Reset(int num_relations);
  int num_relations() const { return num_relations_; }

  /// Registers a join edge between the two relations in `endpoints`.
  /// Returns the edge id. Setup-time only.
  int AddEdge(RelSet endpoints, double selectivity);
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const JoinEdgeStats& edge(int e) const { return edges_[static_cast<size_t>(e)]; }

  // ---- mutators (record StatChanges once frozen) ----
  void SetBaseRows(int rel, double rows);
  void SetLocalSelectivity(int rel, double sel);
  void SetRowWidth(int rel, double width);
  void SetScanCostMultiplier(int rel, double mult);
  void SetJoinSelectivity(int edge_id, double sel);
  /// Scales the cardinality of every expression containing `scope` by
  /// `factor` relative to the base formula (factor 1 removes the override).
  void SetCardMultiplier(RelSet scope, double factor);
  /// Multiplies the existing multiplier of exactly `scope` by `factor`
  /// (runtime-feedback corrections compose multiplicatively).
  void ScaleCardMultiplier(RelSet scope, double factor);
  /// The multiplier stored for exactly `scope` (1 if none).
  double ScopeMultiplier(RelSet scope) const;

  // ---- accessors ----
  double base_rows(int rel) const { return base_rows_[static_cast<size_t>(rel)]; }
  double local_selectivity(int rel) const { return local_sel_[static_cast<size_t>(rel)]; }
  double row_width(int rel) const { return row_width_[static_cast<size_t>(rel)]; }
  double scan_cost_multiplier(int rel) const { return scan_mult_[static_cast<size_t>(rel)]; }
  double join_selectivity(int edge_id) const {
    return edges_[static_cast<size_t>(edge_id)].selectivity;
  }

  /// Effective (post-local-predicate) cardinality of relation `rel`.
  double EffectiveRows(int rel) const { return base_rows(rel) * local_selectivity(rel); }

  /// Product of all card multipliers whose scope is a subset of `s`.
  double CardMultiplier(RelSet s) const;

  /// Marks setup complete; subsequent mutations are tracked as updates.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  uint64_t epoch() const { return epoch_; }

  /// Drains the pending updates recorded since the last call.
  std::vector<StatChange> TakePending();
  bool HasPending() const { return !pending_.empty(); }

  /// Fault injection for the differential test harness ONLY: silently
  /// discards one pending StatChange (the statistic itself stays mutated),
  /// simulating an under-seeded Reoptimize(). Returns false when nothing
  /// was pending. The harness asserts that its from-scratch oracle catches
  /// the resulting divergence.
  bool DropOnePendingForTest();

 private:
  void Record(StatChange::Kind kind, RelSet scope);

  int num_relations_ = 0;
  std::vector<double> base_rows_;
  std::vector<double> local_sel_;
  std::vector<double> row_width_;
  std::vector<double> scan_mult_;
  std::vector<JoinEdgeStats> edges_;
  std::vector<std::pair<RelSet, double>> card_mults_;
  bool frozen_ = false;
  uint64_t epoch_ = 1;
  std::vector<StatChange> pending_;
};

}  // namespace iqro

#endif  // IQRO_STATS_STATS_REGISTRY_H_
