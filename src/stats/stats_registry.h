// StatsRegistry: the runtime-updatable cost and cardinality inputs of one
// optimization world, shared by the declarative optimizer, the procedural
// baselines ("common code across the implementations", §5) and — since the
// service layer exists — by every optimizer registered in a ReoptSession.
//
// Re-optimization in the paper is triggered by "updated cost (or
// cardinality) estimates based on information collected at runtime". All
// such updates flow through this registry:
//   * per-relation effective cardinality (base rows x local selectivity),
//   * per-join-edge selectivity,
//   * per-expression cardinality multipliers (what-if scaling of one
//     subexpression's output, as in Fig. 5),
//   * per-relation scan-cost multipliers (as in Fig. 8).
//
// ## Pending-delta coalescing
//
// After Freeze(), every mutation is recorded into a NetDeltaTable keyed by
// the identity of the statistic (delta/net_delta.h), remembering the value
// the statistic held before its first mutation of the batch. TakePending()
// — the seed source of DeclarativeOptimizer::Reoptimize()/ReoptimizeBatch()
// — then emits at most one StatChange per affected (kind, scope):
//   * repeated mutations of one statistic collapse into one delta,
//   * mutations that net to their baseline (oscillations, reverts) are
//     absorbed entirely and emit nothing,
//   * distinct statistics that map to the same (kind, scope) — e.g. base
//     rows and local selectivity of the same relation — merge into one
//     StatChange.
// Every mutation still bumps the epoch (summary/local-cost caches must
// refresh even for net-zero churn). HasPending() reports recorded-but-
// undrained mutations and may therefore overreport: a pending batch can
// coalesce to an empty change list at TakePending() time.
//
// ## Subscribers
//
// StatsSubscriber::OnStatsMutated fires after every recorded post-freeze
// mutation (the new value is already visible). This is the hook the
// service-layer ReoptSession uses to implement auto-flush policies; a
// subscriber may call TakePending() (flush) from inside the callback.
//
// ## Ownership and thread-safety
//
// The registry owns no optimizers and does not outlive-track subscribers:
// a subscriber must Unsubscribe() before it is destroyed. Subscribe/
// Unsubscribe and Reset/AddEdge are setup-time, single-threaded calls.
//
// Post-freeze, the registry is the one piece of engine state shared
// between mutator threads and a flushing ReoptSession, so it carries the
// mutation-side lock of the threading model (docs/ARCHITECTURE.md):
//
//  * Every mutator (SetBaseRows, ..., ScaleCardMultiplier) takes `mu_`
//    exclusively: the value write, the epoch bump and the NetDeltaTable
//    record are one atomic step. Subscribers are notified *after* the
//    lock is released (on the mutating thread), so a callback may re-enter
//    the registry — e.g. an auto-flush draining it — without deadlocking.
//  * TakePendingBatch() takes `mu_` exclusively and snapshots the whole
//    coalesced batch together with the epoch it reflects — an
//    epoch-versioned snapshot of the NetDeltaTable. A Record() racing the
//    drain serializes either before it (and is included) or after it (and
//    lands in the *next* batch); nothing is lost or applied twice.
//  * ReaderLock() takes `mu_` shared. A flush dispatcher holds it for the
//    whole dispatch, so worker threads running ReoptimizeBatch() read
//    statistics values frozen at the drained epoch through the plain
//    accessors (which stay lock-free — they are the cost model's hot
//    path). Mutators block until the flush releases the lock.
//
// Outside a ReaderLock window, concurrent accessor reads racing a mutator
// are undefined — the contract is "readers hold the reader lock or own the
// registry's thread", not "every method is individually atomic".
#ifndef IQRO_STATS_STATS_REGISTRY_H_
#define IQRO_STATS_STATS_REGISTRY_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/relset.h"
#include "delta/net_delta.h"

namespace iqro {

/// What changed, and which expressions it can affect: every expression
/// `E` with `scope ⊆ E` may see a different summary or cost.
struct StatChange {
  enum class Kind : uint8_t {
    kCardinality,  // summaries of all supersets of `scope` changed
    kScanCost,     // only scan alternatives of `scope` (a singleton) changed
  };
  Kind kind = Kind::kCardinality;
  RelSet scope = 0;
};

struct JoinEdgeStats {
  RelSet endpoints = 0;  // exactly two bits
  double selectivity = 1.0;
};

class StatsRegistry;

/// What one recorded mutation looked like from inside the registry lock —
/// the consistent snapshot a flush policy evaluates against. Captured
/// atomically with the value write and the pending record, then handed to
/// subscribers after the lock is released: a policy reading these fields
/// never races the NetDeltaTable the way a lock-free PendingStatCount()
/// probe from the callback would.
struct StatsMutationEvent {
  /// Registry epoch after this mutation.
  uint64_t epoch = 0;
  /// Distinct statistics with a pending (possibly net-zero) delta,
  /// including this one — the pending-scope mask size a CostGatedPolicy
  /// weighs against its expected-refixpoint-work estimate.
  size_t pending_stats = 0;
};

/// Observer of post-freeze statistics mutations (see class comment).
class StatsSubscriber {
 public:
  virtual ~StatsSubscriber() = default;
  /// Fired after each recorded mutation, on the mutating thread, with no
  /// registry lock held (the new value and its pending entry are already
  /// published; `event` is the under-lock snapshot of that publication).
  /// Reentrant draining (TakePending) is allowed; mutating the registry or
  /// (un)subscribing any subscriber from inside the callback is not.
  virtual void OnStatsMutated(StatsRegistry& registry, const StatsMutationEvent& event) = 0;
};

/// Cumulative coalescing counters since construction/Reset (the service
/// layer diffs them across flushes).
struct CoalesceStats {
  int64_t recorded = 0;    // post-freeze mutations recorded
  int64_t collapsed = 0;   // mutations merged into an existing pending entry
  int64_t emitted = 0;     // StatChanges returned by TakePending
  int64_t net_zero = 0;    // pending entries dropped: value back at baseline
  int64_t scope_merged = 0;  // entries merged into an equal (kind, scope)
  int64_t rejected = 0;    // mutations refused by the pending-backlog limit
};

/// What happened to one mutation. Mutators return this so overload-aware
/// callers can surface backpressure; callers that ignore it keep compiling
/// (pre-limit behavior is unchanged — without a pending limit nothing is
/// ever rejected).
enum class RecordOutcome : uint8_t {
  kApplied,          // value written (or already equal — a no-op)
  kRejectedBacklog,  // refused: pending backlog at its hard limit and this
                     // statistic has no entry to coalesce into; the value
                     // is unchanged
};

class StatsRegistry {
 public:
  explicit StatsRegistry(int num_relations = 0);

  /// Re-initializes for a new world. Setup-time only: requires that no
  /// subscriber (session) is attached — a surviving session could dispatch
  /// optimizers built over the old relation slots.
  void Reset(int num_relations);
  int num_relations() const { return num_relations_; }

  /// Registers a join edge between the two relations in `endpoints`.
  /// Returns the edge id. Setup-time only.
  int AddEdge(RelSet endpoints, double selectivity);
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const JoinEdgeStats& edge(int e) const { return edges_[static_cast<size_t>(e)]; }

  // ---- mutators (record coalesced StatChanges once frozen) ----
  // Each returns whether the mutation was applied or rejected by the
  // pending-backlog limit (see SetPendingLimit); without a limit the
  // return is always kApplied.
  RecordOutcome SetBaseRows(int rel, double rows);
  RecordOutcome SetLocalSelectivity(int rel, double sel);
  RecordOutcome SetRowWidth(int rel, double width);
  RecordOutcome SetScanCostMultiplier(int rel, double mult);
  RecordOutcome SetJoinSelectivity(int edge_id, double sel);
  /// Scales the cardinality of every expression containing `scope` by
  /// `factor` relative to the base formula (factor 1 removes the override).
  RecordOutcome SetCardMultiplier(RelSet scope, double factor);
  /// Multiplies the existing multiplier of exactly `scope` by `factor`
  /// (runtime-feedback corrections compose multiplicatively).
  RecordOutcome ScaleCardMultiplier(RelSet scope, double factor);
  /// The multiplier stored for exactly `scope` (1 if none).
  double ScopeMultiplier(RelSet scope) const;

  // ---- accessors ----
  double base_rows(int rel) const { return base_rows_[static_cast<size_t>(rel)]; }
  double local_selectivity(int rel) const { return local_sel_[static_cast<size_t>(rel)]; }
  double row_width(int rel) const { return row_width_[static_cast<size_t>(rel)]; }
  double scan_cost_multiplier(int rel) const { return scan_mult_[static_cast<size_t>(rel)]; }
  double join_selectivity(int edge_id) const {
    return edges_[static_cast<size_t>(edge_id)].selectivity;
  }

  /// Effective (post-local-predicate) cardinality of relation `rel`.
  double EffectiveRows(int rel) const { return base_rows(rel) * local_selectivity(rel); }

  /// Product of all card multipliers whose scope is a subset of `s`.
  double CardMultiplier(RelSet s) const;

  /// Marks setup complete; subsequent mutations are tracked as updates.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  uint64_t epoch() const { return epoch_; }

  /// The epoch at which TakePending() last drained (1 if never): an
  /// optimizer whose state predates this has missed a drained batch and
  /// can never catch up through future deltas (see ReoptSession::Register).
  uint64_t drained_epoch() const { return drained_epoch_; }

  /// One atomically drained batch: the coalesced change list plus the
  /// registry epoch it reflects — what a flush dispatches and what every
  /// dispatched optimizer stamps as its stats_epoch().
  struct DrainedBatch {
    std::vector<StatChange> changes;
    uint64_t epoch = 0;        // epoch at drain time (the batch's version)
    bool had_pending = false;  // raw mutations were recorded (may net to 0)
  };

  /// Drains the batch of mutations recorded since the last call, coalesced
  /// to net deltas: at most one StatChange per affected (kind, scope), and
  /// none for statistics whose value is back at its batch baseline. The
  /// order of the returned changes follows the order in which their
  /// statistics first mutated (deterministic across replays). The whole
  /// drain happens under the mutation lock: the change list and the
  /// returned epoch are one consistent snapshot even with mutators racing.
  ///
  /// With several optimizers sharing one registry, whoever calls this
  /// starves the others — multi-query setups must drain through a
  /// ReoptSession, which calls it once per flush and dispatches the same
  /// change list to every registered optimizer (service/reopt_session.h).
  DrainedBatch TakePendingBatch();

  /// Convenience wrapper over TakePendingBatch() for single-query callers.
  std::vector<StatChange> TakePending() { return TakePendingBatch().changes; }

  /// Shared (reader) lock over the statistics values. A flush dispatcher
  /// holds this for its whole dispatch window so worker threads observe
  /// values frozen at the drained epoch; mutators block until release and
  /// their changes land in the next batch. Single-threaded callers never
  /// need it.
  std::shared_lock<std::shared_mutex> ReaderLock() const {
    return std::shared_lock<std::shared_mutex>(mu_);
  }

  /// True when post-freeze mutations are recorded but not yet drained. May
  /// overreport relative to TakePending(): the whole batch can still
  /// coalesce to nothing.
  bool HasPending() const { return !pending_.empty(); }

  /// Number of distinct statistics with a recorded (possibly net-zero)
  /// pending mutation. Takes the registry lock shared: it is a policy/
  /// inspection probe (ReoptSession::Poll), never a fixpoint hot path, and
  /// unlike the plain accessors it must be safe against racing mutators.
  size_t PendingStatCount() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pending_.size();
  }

  const CoalesceStats& coalesce_stats() const { return coalesce_; }

  /// coalesce_stats().rejected under the shared lock: the one coalescing
  /// counter read while mutators may be racing (the session's FlushReport
  /// snapshots it mid-run; the plain struct accessor is quiescent-only).
  int64_t RejectedCount() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return coalesce_.rejected;
  }

  /// Hard watermark on the coalesced pending backlog: once the
  /// NetDeltaTable holds `limit` entries, post-freeze mutations that would
  /// create a NEW entry are refused (kRejectedBacklog) instead of growing
  /// it — the value stays unchanged, no epoch bump, no notification, one
  /// `rejected` count. Mutations that coalesce into an existing entry are
  /// still accepted (they cost no memory). 0 (the default) disables the
  /// limit. This is the "never unbounded memory" half of the service
  /// layer's overload degradation; the session wires its
  /// pending_hard_watermark here.
  void SetPendingLimit(size_t limit) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    pending_limit_ = limit;
  }
  size_t pending_limit() const { return pending_limit_; }

  // ---- lifecycle serialization (service snapshots) ----

  /// Appends an epoch-stamped serialization of every statistic value (base
  /// rows, selectivities, widths, scan/cardinality multipliers, join-edge
  /// selectivities) plus the epoch/drained-epoch pair to `out`
  /// (common/serialize.h encoding). Takes the reader lock; pending
  /// (undrained) mutations are NOT part of a registry's serialized state —
  /// a snapshotting session drains them first, so the snapshot is exactly
  /// "values at a drained epoch" and a warm-started service replays later
  /// mutations through the normal NetDeltaTable path.
  void SerializeState(std::string* out) const;

  /// Restores a SerializeState() payload into this registry: values are
  /// written directly under the exclusive lock (no epoch bumps, no pending
  /// records, no subscriber notifications), the epoch pair is adopted, the
  /// pending table is cleared and the registry is left frozen. The payload
  /// must structurally match this registry (relation count, edge count and
  /// endpoints) — a mismatch throws SerializeError{kMismatch} with the
  /// registry's values unmodified. Setup-time only, like Reset: requires
  /// that no subscriber is attached.
  void RestoreState(const std::string& payload);

  // ---- subscribers ----
  void Subscribe(StatsSubscriber* subscriber);
  void Unsubscribe(StatsSubscriber* subscriber);

  /// Fault injection for the differential test harness ONLY: silently
  /// discards one pending statistic's delta (the statistic itself stays
  /// mutated), simulating an under-seeded Reoptimize(). Returns false when
  /// nothing was pending. The harness asserts that its from-scratch oracle
  /// catches the resulting divergence.
  bool DropOnePendingForTest();

 private:
  /// Identity of one mutable statistic, for net-delta coalescing. kJoinSel
  /// is keyed by edge id (two edges may share endpoints); kCardMult by its
  /// exact scope.
  enum class StatId : uint8_t {
    kBaseRows,
    kLocalSel,
    kRowWidth,
    kScanMult,
    kJoinSel,
    kCardMult,
  };
  static uint64_t StatKey(StatId stat, uint64_t target) {
    return (static_cast<uint64_t>(stat) << 32) | target;
  }

  /// Bookkeeping half of a mutation (epoch bump + pending record). Caller
  /// holds `mu_` exclusively. Returns true when subscribers must be
  /// notified (post-freeze mutation), which the caller does after
  /// unlocking.
  bool RecordLocked(StatId stat, uint64_t target, double value_before);
  /// True when the pending-backlog limit refuses a new entry for this
  /// statistic (caller holds `mu_` exclusively; counts the rejection).
  bool RejectLocked(StatId stat, uint64_t target);
  /// Body of SetCardMultiplier under an already-held exclusive `mu_` —
  /// also the write half of ScaleCardMultiplier's atomic read-modify-write.
  /// Returns whether subscribers must be notified; sets `*rejected` when
  /// the backlog limit refused the write.
  bool SetCardMultiplierLocked(RelSet scope, double factor, bool* rejected);
  /// Shared body of the per-relation scalar setters: lock, no-op check,
  /// baseline capture, record, then unlocked subscriber notification.
  RecordOutcome SetScalar(StatId stat, int target, std::vector<double>& slots, double value);
  /// Caller holds `mu_` exclusively; snapshots the post-mutation epoch and
  /// pending size for the subscriber event.
  StatsMutationEvent SnapshotEventLocked() const { return {epoch_, pending_.size()}; }
  void NotifySubscribers(const StatsMutationEvent& event);
  double CurrentValue(StatId stat, uint64_t target) const;

  /// The mutation-side lock: exclusive for mutators and the drain, shared
  /// for a flush's dispatch window (see the class comment). The plain value
  /// accessors intentionally do not touch it.
  mutable std::shared_mutex mu_;
  int num_relations_ = 0;
  std::vector<double> base_rows_;
  std::vector<double> local_sel_;
  std::vector<double> row_width_;
  std::vector<double> scan_mult_;
  std::vector<JoinEdgeStats> edges_;
  std::vector<std::pair<RelSet, double>> card_mults_;
  bool frozen_ = false;
  uint64_t epoch_ = 1;
  uint64_t drained_epoch_ = 1;
  size_t pending_limit_ = 0;  // 0: unlimited
  NetDeltaTable pending_;
  CoalesceStats coalesce_;
  std::vector<StatsSubscriber*> subscribers_;
};

}  // namespace iqro

#endif  // IQRO_STATS_STATS_REGISTRY_H_
