#include "stats/summary.h"

#include <mutex>

#include "common/check.h"

namespace iqro {

const Summary& SummaryCalculator::Get(RelSet s) const {
  if (!concurrent_) {
    if (cached_epoch_ != registry_->epoch()) {
      cache_.clear();
      cached_epoch_ = registry_->epoch();
    }
    auto it = cache_.find(s);
    if (it != cache_.end()) return it->second;
    return cache_.emplace(s, ComputeThroughShared(cached_epoch_, s)).first->second;
  }
  // Concurrent path: reads vastly outnumber misses once the epoch's cache
  // is warm, so the hit path is a shared lock + find. unordered_map nodes
  // are address-stable across inserts, so the returned reference survives
  // other threads' misses; the epoch cannot move while workers are inside
  // a flush (the dispatcher holds the registry reader lock), so the clear
  // below never runs under a worker's feet.
  const uint64_t epoch = registry_->epoch();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (cached_epoch_ == epoch) {
      auto it = cache_.find(s);
      if (it != cache_.end()) return it->second;
    }
  }
  // Compute outside any lock (pure function of frozen registry state);
  // racing computes of one key produce identical values and the first
  // insert wins. The shared cross-query store is probed first: another
  // registered query may already have paid for this expression's summary
  // at this epoch.
  Summary computed = ComputeThroughShared(epoch, s);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (cached_epoch_ != epoch) {
    cache_.clear();
    cached_epoch_ = epoch;
  }
  return cache_.try_emplace(s, computed).first->second;
}

Summary SummaryCalculator::ComputeThroughShared(uint64_t epoch, RelSet s) const {
  Summary out;
  if (shared_ != nullptr && shared_->Lookup(epoch, s, &out)) return out;
  out = Compute(s);
  if (shared_ != nullptr) shared_->Insert(epoch, s, out);
  return out;
}

Summary SummaryCalculator::Compute(RelSet s) const {
  IQRO_DCHECK(RelCount(s) >= 1);
  Summary out;
  out.rows = 1.0;
  out.width = 0.0;
  RelForEach(s, [&](int r) {
    out.rows *= registry_->EffectiveRows(r);
    out.width += registry_->row_width(r);
  });
  for (int e = 0; e < registry_->num_edges(); ++e) {
    const JoinEdgeStats& edge = registry_->edge(e);
    if (RelIsSubset(edge.endpoints, s)) out.rows *= edge.selectivity;
  }
  out.rows *= registry_->CardMultiplier(s);
  if (out.rows < 0) out.rows = 0;
  return out;
}

}  // namespace iqro
