#include "stats/summary.h"

#include "common/check.h"

namespace iqro {

const Summary& SummaryCalculator::Get(RelSet s) const {
  if (cached_epoch_ != registry_->epoch()) {
    cache_.clear();
    cached_epoch_ = registry_->epoch();
  }
  auto it = cache_.find(s);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(s, Compute(s)).first->second;
}

Summary SummaryCalculator::Compute(RelSet s) const {
  IQRO_DCHECK(RelCount(s) >= 1);
  Summary out;
  out.rows = 1.0;
  out.width = 0.0;
  RelForEach(s, [&](int r) {
    out.rows *= registry_->EffectiveRows(r);
    out.width += registry_->row_width(r);
  });
  for (int e = 0; e < registry_->num_edges(); ++e) {
    const JoinEdgeStats& edge = registry_->edge(e);
    if (RelIsSubset(edge.endpoints, s)) out.rows *= edge.selectivity;
  }
  out.rows *= registry_->CardMultiplier(s);
  if (out.rows < 0) out.rows = 0;
  return out;
}

}  // namespace iqro
