// Summaries (the paper's `md` values): estimated cardinality and row width
// of a query expression's output, derived canonically from the
// StatsRegistry under the usual independence assumptions.
//
// The canonical formula — base cardinalities x join-edge selectivities x
// what-if multipliers — makes every decomposition of the same expression
// agree, which is what lets the paper memoize Fn_nonscansummary per
// expression and lets all our optimizer implementations share cost inputs.
#ifndef IQRO_STATS_SUMMARY_H_
#define IQRO_STATS_SUMMARY_H_

#include <shared_mutex>
#include <unordered_map>

#include "common/relset.h"
#include "stats/stats_registry.h"

namespace iqro {

struct Summary {
  double rows = 0;
  double width = 0;
};

/// Cross-calculator summary store: registered queries of one session share
/// epoch-keyed summary computation for overlapping relation sets (a Summary
/// is a pure function of registry state, so any calculator over the same
/// registry computes the identical value). Abstract here so stats/ stays
/// service-agnostic; the concrete locked implementation lives in
/// src/service/shared_summary_cache.h. Implementations must be safe for
/// concurrent Lookup/Insert when the attached calculators are in
/// concurrent mode, and must treat `epoch` as part of the key (stale-epoch
/// lookups must miss).
class SummarySharedCache {
 public:
  virtual ~SummarySharedCache() = default;
  /// True and fills `*out` iff a value for (epoch, s) is present.
  virtual bool Lookup(uint64_t epoch, RelSet s, Summary* out) const = 0;
  virtual void Insert(uint64_t epoch, RelSet s, const Summary& value) = 0;
};

/// Thread-safety: single-threaded by default (the epoch-keyed cache is
/// unsynchronized). EnableConcurrentUse() (sticky; call while still
/// single-threaded) switches Get() to an internally locked cache so the
/// per-query fixpoints of a parallel ReoptSession flush can share one
/// calculator. Concurrent readers additionally require the registry's
/// statistics to be frozen for the duration (the flush holds
/// StatsRegistry::ReaderLock), which also pins the epoch — so a mid-flush
/// cache flush can never invalidate a reference another worker still holds.
class SummaryCalculator {
 public:
  explicit SummaryCalculator(const StatsRegistry* registry) : registry_(registry) {}

  /// Summary of the expression joining exactly the relations in `s`,
  /// with all local predicates applied (Fn_scansummary for singletons,
  /// Fn_nonscansummary otherwise). Memoized per registry epoch.
  const Summary& Get(RelSet s) const;

  const StatsRegistry& registry() const { return *registry_; }

  /// Sticky opt-in to internal cache locking (see class comment). Const
  /// because the cache infrastructure is already logically-const state.
  void EnableConcurrentUse() const { concurrent_ = true; }

  /// Points this calculator at a cross-calculator shared store, consulted
  /// on local-cache misses (hit: the Compute is skipped; miss: the computed
  /// value is published). nullptr detaches. The shared store must outlive
  /// the attachment and be fed only from calculators over the same
  /// registry. Const for the same reason as EnableConcurrentUse.
  void AttachSharedCache(SummarySharedCache* shared) const { shared_ = shared; }

 private:
  Summary Compute(RelSet s) const;
  /// Local-miss path: shared-cache lookup, else Compute + publish.
  Summary ComputeThroughShared(uint64_t epoch, RelSet s) const;

  const StatsRegistry* registry_;
  mutable uint64_t cached_epoch_ = 0;
  mutable std::unordered_map<RelSet, Summary> cache_;
  mutable bool concurrent_ = false;
  mutable SummarySharedCache* shared_ = nullptr;
  mutable std::shared_mutex mu_;
};

}  // namespace iqro

#endif  // IQRO_STATS_SUMMARY_H_
