// Summaries (the paper's `md` values): estimated cardinality and row width
// of a query expression's output, derived canonically from the
// StatsRegistry under the usual independence assumptions.
//
// The canonical formula — base cardinalities x join-edge selectivities x
// what-if multipliers — makes every decomposition of the same expression
// agree, which is what lets the paper memoize Fn_nonscansummary per
// expression and lets all our optimizer implementations share cost inputs.
#ifndef IQRO_STATS_SUMMARY_H_
#define IQRO_STATS_SUMMARY_H_

#include <shared_mutex>
#include <unordered_map>

#include "common/relset.h"
#include "stats/stats_registry.h"

namespace iqro {

struct Summary {
  double rows = 0;
  double width = 0;
};

/// Thread-safety: single-threaded by default (the epoch-keyed cache is
/// unsynchronized). EnableConcurrentUse() (sticky; call while still
/// single-threaded) switches Get() to an internally locked cache so the
/// per-query fixpoints of a parallel ReoptSession flush can share one
/// calculator. Concurrent readers additionally require the registry's
/// statistics to be frozen for the duration (the flush holds
/// StatsRegistry::ReaderLock), which also pins the epoch — so a mid-flush
/// cache flush can never invalidate a reference another worker still holds.
class SummaryCalculator {
 public:
  explicit SummaryCalculator(const StatsRegistry* registry) : registry_(registry) {}

  /// Summary of the expression joining exactly the relations in `s`,
  /// with all local predicates applied (Fn_scansummary for singletons,
  /// Fn_nonscansummary otherwise). Memoized per registry epoch.
  const Summary& Get(RelSet s) const;

  const StatsRegistry& registry() const { return *registry_; }

  /// Sticky opt-in to internal cache locking (see class comment). Const
  /// because the cache infrastructure is already logically-const state.
  void EnableConcurrentUse() const { concurrent_ = true; }

 private:
  Summary Compute(RelSet s) const;

  const StatsRegistry* registry_;
  mutable uint64_t cached_epoch_ = 0;
  mutable std::unordered_map<RelSet, Summary> cache_;
  mutable bool concurrent_ = false;
  mutable std::shared_mutex mu_;
};

}  // namespace iqro

#endif  // IQRO_STATS_SUMMARY_H_
