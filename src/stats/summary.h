// Summaries (the paper's `md` values): estimated cardinality and row width
// of a query expression's output, derived canonically from the
// StatsRegistry under the usual independence assumptions.
//
// The canonical formula — base cardinalities x join-edge selectivities x
// what-if multipliers — makes every decomposition of the same expression
// agree, which is what lets the paper memoize Fn_nonscansummary per
// expression and lets all our optimizer implementations share cost inputs.
#ifndef IQRO_STATS_SUMMARY_H_
#define IQRO_STATS_SUMMARY_H_

#include <unordered_map>

#include "common/relset.h"
#include "stats/stats_registry.h"

namespace iqro {

struct Summary {
  double rows = 0;
  double width = 0;
};

class SummaryCalculator {
 public:
  explicit SummaryCalculator(const StatsRegistry* registry) : registry_(registry) {}

  /// Summary of the expression joining exactly the relations in `s`,
  /// with all local predicates applied (Fn_scansummary for singletons,
  /// Fn_nonscansummary otherwise). Memoized per registry epoch.
  const Summary& Get(RelSet s) const;

  const StatsRegistry& registry() const { return *registry_; }

 private:
  Summary Compute(RelSet s) const;

  const StatsRegistry* registry_;
  mutable uint64_t cached_epoch_ = 0;
  mutable std::unordered_map<RelSet, Summary> cache_;
};

}  // namespace iqro

#endif  // IQRO_STATS_SUMMARY_H_
