#include "stats/stats_registry.h"

#include "common/check.h"

namespace iqro {

StatsRegistry::StatsRegistry(int num_relations) { Reset(num_relations); }

void StatsRegistry::Reset(int num_relations) {
  IQRO_CHECK(num_relations >= 0 && num_relations <= kMaxRelations);
  num_relations_ = num_relations;
  base_rows_.assign(static_cast<size_t>(num_relations), 1.0);
  local_sel_.assign(static_cast<size_t>(num_relations), 1.0);
  row_width_.assign(static_cast<size_t>(num_relations), 1.0);
  scan_mult_.assign(static_cast<size_t>(num_relations), 1.0);
  edges_.clear();
  card_mults_.clear();
  frozen_ = false;
  epoch_ = 1;
  pending_.clear();
}

int StatsRegistry::AddEdge(RelSet endpoints, double selectivity) {
  IQRO_CHECK(!frozen_);
  IQRO_CHECK(RelCount(endpoints) == 2);
  edges_.push_back({endpoints, selectivity});
  return static_cast<int>(edges_.size()) - 1;
}

void StatsRegistry::Record(StatChange::Kind kind, RelSet scope) {
  ++epoch_;
  if (frozen_) pending_.push_back({kind, scope});
}

void StatsRegistry::SetBaseRows(int rel, double rows) {
  if (base_rows_[static_cast<size_t>(rel)] == rows) return;
  base_rows_[static_cast<size_t>(rel)] = rows;
  Record(StatChange::Kind::kCardinality, RelSingleton(rel));
}

void StatsRegistry::SetLocalSelectivity(int rel, double sel) {
  if (local_sel_[static_cast<size_t>(rel)] == sel) return;
  local_sel_[static_cast<size_t>(rel)] = sel;
  Record(StatChange::Kind::kCardinality, RelSingleton(rel));
}

void StatsRegistry::SetRowWidth(int rel, double width) {
  if (row_width_[static_cast<size_t>(rel)] == width) return;
  row_width_[static_cast<size_t>(rel)] = width;
  Record(StatChange::Kind::kCardinality, RelSingleton(rel));
}

void StatsRegistry::SetScanCostMultiplier(int rel, double mult) {
  if (scan_mult_[static_cast<size_t>(rel)] == mult) return;
  scan_mult_[static_cast<size_t>(rel)] = mult;
  Record(StatChange::Kind::kScanCost, RelSingleton(rel));
}

void StatsRegistry::SetJoinSelectivity(int edge_id, double sel) {
  IQRO_CHECK(edge_id >= 0 && edge_id < num_edges());
  if (edges_[static_cast<size_t>(edge_id)].selectivity == sel) return;
  edges_[static_cast<size_t>(edge_id)].selectivity = sel;
  Record(StatChange::Kind::kCardinality, edges_[static_cast<size_t>(edge_id)].endpoints);
}

void StatsRegistry::SetCardMultiplier(RelSet scope, double factor) {
  IQRO_CHECK(RelCount(scope) >= 1);
  for (auto& [s, f] : card_mults_) {
    if (s == scope) {
      if (f == factor) return;
      f = factor;
      Record(StatChange::Kind::kCardinality, scope);
      return;
    }
  }
  if (factor == 1.0) return;  // absent scope already means factor 1
  card_mults_.emplace_back(scope, factor);
  Record(StatChange::Kind::kCardinality, scope);
}

void StatsRegistry::ScaleCardMultiplier(RelSet scope, double factor) {
  SetCardMultiplier(scope, ScopeMultiplier(scope) * factor);
}

double StatsRegistry::ScopeMultiplier(RelSet scope) const {
  for (const auto& [s, f] : card_mults_) {
    if (s == scope) return f;
  }
  return 1.0;
}

double StatsRegistry::CardMultiplier(RelSet s) const {
  double f = 1.0;
  for (const auto& [scope, factor] : card_mults_) {
    if (RelIsSubset(scope, s)) f *= factor;
  }
  return f;
}

std::vector<StatChange> StatsRegistry::TakePending() {
  std::vector<StatChange> out;
  out.swap(pending_);
  return out;
}

bool StatsRegistry::DropOnePendingForTest() {
  if (pending_.empty()) return false;
  pending_.pop_back();
  return true;
}

}  // namespace iqro
