#include "stats/stats_registry.h"

#include <algorithm>
#include <exception>
#include <mutex>

#include "common/check.h"
#include "common/serialize.h"

namespace iqro {

StatsRegistry::StatsRegistry(int num_relations) { Reset(num_relations); }

void StatsRegistry::Reset(int num_relations) {
  IQRO_CHECK(num_relations >= 0 && num_relations <= kMaxRelations);
  // Reset is setup-time only: a subscribed session may still dispatch to
  // optimizers built over the OLD relation slots (out-of-bounds reads).
  // Destroy sessions before resetting the world they watch.
  IQRO_CHECK(subscribers_.empty());
  num_relations_ = num_relations;
  base_rows_.assign(static_cast<size_t>(num_relations), 1.0);
  local_sel_.assign(static_cast<size_t>(num_relations), 1.0);
  row_width_.assign(static_cast<size_t>(num_relations), 1.0);
  scan_mult_.assign(static_cast<size_t>(num_relations), 1.0);
  edges_.clear();
  card_mults_.clear();
  frozen_ = false;
  epoch_ = 1;
  drained_epoch_ = 1;
  pending_limit_ = 0;
  pending_.Clear();
  coalesce_ = CoalesceStats{};
}

int StatsRegistry::AddEdge(RelSet endpoints, double selectivity) {
  IQRO_CHECK(!frozen_);
  IQRO_CHECK(RelCount(endpoints) == 2);
  edges_.push_back({endpoints, selectivity});
  return static_cast<int>(edges_.size()) - 1;
}

bool StatsRegistry::RejectLocked(StatId stat, uint64_t target) {
  if (!frozen_ || pending_limit_ == 0) return false;
  if (pending_.size() < pending_limit_) return false;
  if (pending_.Contains(StatKey(stat, target))) return false;  // coalesces: free
  ++coalesce_.rejected;
  return true;
}

bool StatsRegistry::RecordLocked(StatId stat, uint64_t target, double value_before) {
  ++epoch_;
  if (!frozen_) return false;
  ++coalesce_.recorded;
  // First mutation of this statistic in the batch captures the baseline;
  // later ones collapse into it (only the net delta ever reaches an
  // optimizer).
  if (!pending_.Record(StatKey(stat, target), value_before)) ++coalesce_.collapsed;
  return true;
}

void StatsRegistry::NotifySubscribers(const StatsMutationEvent& event) {
  // Outside the lock: a subscriber may flush (TakePendingBatch takes the
  // lock itself) from inside the callback. Indexed loop: callbacks must
  // not Subscribe/Unsubscribe (see header), but an index never dangles the
  // way a vector iterator would. `event` was snapshotted under the lock
  // that published the mutation, so every subscriber sees the consistent
  // (epoch, pending size) pair of *this* mutation even when later mutators
  // are already racing ahead.
  //
  // Every subscriber is notified even when an earlier one throws (a
  // session's policy-triggered flush may propagate a PlanSubscriber
  // exception): skipping the rest would silently starve their flush
  // policies of the mutation count. The first exception rethrows after
  // the loop.
  std::exception_ptr first_error;
  for (size_t i = 0; i < subscribers_.size(); ++i) {
    try {
      subscribers_[i]->OnStatsMutated(*this, event);
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

RecordOutcome StatsRegistry::SetScalar(StatId stat, int target, std::vector<double>& slots,
                                       double value) {
  bool notify;
  StatsMutationEvent event;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    double& v = slots[static_cast<size_t>(target)];
    if (v == value) return RecordOutcome::kApplied;  // no-op
    if (RejectLocked(stat, static_cast<uint64_t>(target))) {
      return RecordOutcome::kRejectedBacklog;
    }
    const double before = v;
    v = value;
    notify = RecordLocked(stat, static_cast<uint64_t>(target), before);
    event = SnapshotEventLocked();
  }
  if (notify) NotifySubscribers(event);
  return RecordOutcome::kApplied;
}

double StatsRegistry::CurrentValue(StatId stat, uint64_t target) const {
  switch (stat) {
    case StatId::kBaseRows:
      return base_rows_[static_cast<size_t>(target)];
    case StatId::kLocalSel:
      return local_sel_[static_cast<size_t>(target)];
    case StatId::kRowWidth:
      return row_width_[static_cast<size_t>(target)];
    case StatId::kScanMult:
      return scan_mult_[static_cast<size_t>(target)];
    case StatId::kJoinSel:
      return edges_[static_cast<size_t>(target)].selectivity;
    case StatId::kCardMult:
      return ScopeMultiplier(static_cast<RelSet>(target));
  }
  IQRO_CHECK(false);
}

RecordOutcome StatsRegistry::SetBaseRows(int rel, double rows) {
  return SetScalar(StatId::kBaseRows, rel, base_rows_, rows);
}

RecordOutcome StatsRegistry::SetLocalSelectivity(int rel, double sel) {
  return SetScalar(StatId::kLocalSel, rel, local_sel_, sel);
}

RecordOutcome StatsRegistry::SetRowWidth(int rel, double width) {
  return SetScalar(StatId::kRowWidth, rel, row_width_, width);
}

RecordOutcome StatsRegistry::SetScanCostMultiplier(int rel, double mult) {
  return SetScalar(StatId::kScanMult, rel, scan_mult_, mult);
}

RecordOutcome StatsRegistry::SetJoinSelectivity(int edge_id, double sel) {
  IQRO_CHECK(edge_id >= 0 && edge_id < num_edges());
  bool notify;
  StatsMutationEvent event;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    double& v = edges_[static_cast<size_t>(edge_id)].selectivity;
    if (v == sel) return RecordOutcome::kApplied;
    if (RejectLocked(StatId::kJoinSel, static_cast<uint64_t>(edge_id))) {
      return RecordOutcome::kRejectedBacklog;
    }
    const double before = v;
    v = sel;
    notify = RecordLocked(StatId::kJoinSel, static_cast<uint64_t>(edge_id), before);
    event = SnapshotEventLocked();
  }
  if (notify) NotifySubscribers(event);
  return RecordOutcome::kApplied;
}

bool StatsRegistry::SetCardMultiplierLocked(RelSet scope, double factor, bool* rejected) {
  for (auto& [s, f] : card_mults_) {
    if (s == scope) {
      if (f == factor) return false;
      if (RejectLocked(StatId::kCardMult, scope)) {
        *rejected = true;
        return false;
      }
      const double before = f;
      f = factor;
      return RecordLocked(StatId::kCardMult, scope, before);
    }
  }
  if (factor == 1.0) return false;  // absent scope already means factor 1
  if (RejectLocked(StatId::kCardMult, scope)) {
    *rejected = true;
    return false;
  }
  card_mults_.emplace_back(scope, factor);
  return RecordLocked(StatId::kCardMult, scope, 1.0);
}

RecordOutcome StatsRegistry::SetCardMultiplier(RelSet scope, double factor) {
  IQRO_CHECK(RelCount(scope) >= 1);
  bool notify;
  bool rejected = false;
  StatsMutationEvent event;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    notify = SetCardMultiplierLocked(scope, factor, &rejected);
    event = SnapshotEventLocked();
  }
  if (notify) NotifySubscribers(event);
  return rejected ? RecordOutcome::kRejectedBacklog : RecordOutcome::kApplied;
}

RecordOutcome StatsRegistry::ScaleCardMultiplier(RelSet scope, double factor) {
  IQRO_CHECK(RelCount(scope) >= 1);
  bool notify;
  bool rejected = false;
  StatsMutationEvent event;
  {
    // One critical section for the whole read-modify-write: the read half
    // (ScopeMultiplier walks card_mults_, which a racing mutator may
    // reallocate) and the write half must see the same vector, and two
    // racing Scales must compose rather than lose one factor.
    std::unique_lock<std::shared_mutex> lock(mu_);
    notify = SetCardMultiplierLocked(scope, ScopeMultiplier(scope) * factor, &rejected);
    event = SnapshotEventLocked();
  }
  if (notify) NotifySubscribers(event);
  return rejected ? RecordOutcome::kRejectedBacklog : RecordOutcome::kApplied;
}

double StatsRegistry::ScopeMultiplier(RelSet scope) const {
  for (const auto& [s, f] : card_mults_) {
    if (s == scope) return f;
  }
  return 1.0;
}

double StatsRegistry::CardMultiplier(RelSet s) const {
  double f = 1.0;
  for (const auto& [scope, factor] : card_mults_) {
    if (RelIsSubset(scope, s)) f *= factor;
  }
  return f;
}

StatsRegistry::DrainedBatch StatsRegistry::TakePendingBatch() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  DrainedBatch batch;
  batch.had_pending = !pending_.empty();
  drained_epoch_ = epoch_;
  batch.epoch = epoch_;
  std::vector<StatChange>& out = batch.changes;
  for (size_t i = 0; i < pending_.size(); ++i) {
    const NetDeltaTable::Entry& e = pending_.entry(i);
    const auto stat = static_cast<StatId>(e.key >> 32);
    const uint64_t target = e.key & 0xFFFFFFFFull;
    if (CurrentValue(stat, target) == e.baseline) {
      ++coalesce_.net_zero;  // oscillated back: nothing to re-optimize
      continue;
    }
    StatChange c;
    switch (stat) {
      case StatId::kBaseRows:
      case StatId::kLocalSel:
      case StatId::kRowWidth:
        c = {StatChange::Kind::kCardinality, RelSingleton(static_cast<int>(target))};
        break;
      case StatId::kScanMult:
        c = {StatChange::Kind::kScanCost, RelSingleton(static_cast<int>(target))};
        break;
      case StatId::kJoinSel:
        c = {StatChange::Kind::kCardinality, edges_[static_cast<size_t>(target)].endpoints};
        break;
      case StatId::kCardMult:
        c = {StatChange::Kind::kCardinality, static_cast<RelSet>(target)};
        break;
    }
    // Distinct statistics with one (kind, scope) seed the same state — the
    // change list is small, so a linear dedup beats hashing here.
    const bool dup = std::any_of(out.begin(), out.end(), [&](const StatChange& o) {
      return o.kind == c.kind && o.scope == c.scope;
    });
    if (dup) {
      ++coalesce_.scope_merged;
      continue;
    }
    out.push_back(c);
  }
  pending_.Clear();
  coalesce_.emitted += static_cast<int64_t>(out.size());
  return batch;
}

namespace {
constexpr uint8_t kStatsStateVersion = 1;
}  // namespace

void StatsRegistry::SerializeState(std::string* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ByteWriter w(out);
  w.PutU8(kStatsStateVersion);
  w.PutI32(num_relations_);
  w.PutU64(epoch_);
  w.PutU64(drained_epoch_);
  for (size_t i = 0; i < base_rows_.size(); ++i) {
    w.PutF64(base_rows_[i]);
    w.PutF64(local_sel_[i]);
    w.PutF64(row_width_[i]);
    w.PutF64(scan_mult_[i]);
  }
  w.PutU32(static_cast<uint32_t>(edges_.size()));
  for (const JoinEdgeStats& e : edges_) {
    w.PutU32(e.endpoints);
    w.PutF64(e.selectivity);
  }
  w.PutU32(static_cast<uint32_t>(card_mults_.size()));
  for (const auto& [scope, factor] : card_mults_) {
    w.PutU32(scope);
    w.PutF64(factor);
  }
}

void StatsRegistry::RestoreState(const std::string& payload) {
  // Parse and validate EVERYTHING before the first write: a rejected
  // payload must leave the registry's values untouched.
  ByteReader r(payload);
  const uint8_t version = r.GetU8();
  if (version != kStatsStateVersion) {
    throw SerializeError(SerializeError::Code::kBadVersion,
                         "stats state: version " + std::to_string(version) + " != " +
                             std::to_string(kStatsStateVersion));
  }
  const int32_t nrel = r.GetI32();
  const uint64_t epoch = r.GetU64();
  const uint64_t drained_epoch = r.GetU64();
  if (nrel != num_relations_) {
    throw SerializeError(SerializeError::Code::kMismatch,
                         "stats state: relation count " + std::to_string(nrel) + " != " +
                             std::to_string(num_relations_));
  }
  std::vector<double> base_rows(static_cast<size_t>(nrel));
  std::vector<double> local_sel(static_cast<size_t>(nrel));
  std::vector<double> row_width(static_cast<size_t>(nrel));
  std::vector<double> scan_mult(static_cast<size_t>(nrel));
  for (size_t i = 0; i < base_rows.size(); ++i) {
    base_rows[i] = r.GetF64();
    local_sel[i] = r.GetF64();
    row_width[i] = r.GetF64();
    scan_mult[i] = r.GetF64();
  }
  const uint32_t nedges = r.GetU32();
  if (nedges != edges_.size()) {
    throw SerializeError(SerializeError::Code::kMismatch,
                         "stats state: edge count " + std::to_string(nedges) + " != " +
                             std::to_string(edges_.size()));
  }
  std::vector<double> edge_sel(nedges);
  for (uint32_t i = 0; i < nedges; ++i) {
    const RelSet endpoints = r.GetU32();
    if (endpoints != edges_[i].endpoints) {
      throw SerializeError(SerializeError::Code::kMismatch,
                           "stats state: edge " + std::to_string(i) +
                               " endpoints disagree with this world's join graph");
    }
    edge_sel[i] = r.GetF64();
  }
  const uint32_t nmults = r.GetU32();
  std::vector<std::pair<RelSet, double>> card_mults;
  card_mults.reserve(nmults);
  for (uint32_t i = 0; i < nmults; ++i) {
    const RelSet scope = r.GetU32();
    const double factor = r.GetF64();
    card_mults.emplace_back(scope, factor);
  }
  if (!r.AtEnd()) {
    throw SerializeError(SerializeError::Code::kBadSection,
                         "stats state: trailing bytes after the last section");
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  IQRO_CHECK(subscribers_.empty());  // setup-time only, like Reset
  base_rows_ = std::move(base_rows);
  local_sel_ = std::move(local_sel);
  row_width_ = std::move(row_width);
  scan_mult_ = std::move(scan_mult);
  for (uint32_t i = 0; i < nedges; ++i) edges_[i].selectivity = edge_sel[i];
  card_mults_ = std::move(card_mults);
  pending_.Clear();
  epoch_ = epoch;
  drained_epoch_ = drained_epoch;
  frozen_ = true;
}

void StatsRegistry::Subscribe(StatsSubscriber* subscriber) {
  IQRO_CHECK(subscriber != nullptr);
  IQRO_CHECK(std::find(subscribers_.begin(), subscribers_.end(), subscriber) ==
             subscribers_.end());
  subscribers_.push_back(subscriber);
}

void StatsRegistry::Unsubscribe(StatsSubscriber* subscriber) {
  auto it = std::find(subscribers_.begin(), subscribers_.end(), subscriber);
  IQRO_CHECK(it != subscribers_.end());
  subscribers_.erase(it);
}

bool StatsRegistry::DropOnePendingForTest() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return pending_.PopBack();
}

}  // namespace iqro
