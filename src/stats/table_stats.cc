#include "stats/table_stats.h"

namespace iqro {

TableStats CollectTableStats(const Table& table, int num_buckets) {
  TableStats stats;
  stats.rows = table.num_rows();
  stats.row_width = static_cast<double>(table.num_columns());
  stats.columns.resize(static_cast<size_t>(table.num_columns()));
  std::vector<int64_t> values(table.num_rows());
  for (int c = 0; c < table.num_columns(); ++c) {
    for (uint32_t r = 0; r < table.num_rows(); ++r) values[r] = table.At(r, c);
    ColumnStats& cs = stats.columns[static_cast<size_t>(c)];
    cs.histogram = Histogram::Build(values, num_buckets);
    cs.min = cs.histogram.min();
    cs.max = cs.histogram.max();
    cs.ndv = cs.histogram.ndv();
  }
  return stats;
}

}  // namespace iqro
