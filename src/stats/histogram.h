// Equi-depth histograms over int64 domains, used for local-predicate
// selectivity estimation (the paper's Fn_scansummary inputs).
#ifndef IQRO_STATS_HISTOGRAM_H_
#define IQRO_STATS_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace iqro {

class Histogram {
 public:
  Histogram() = default;

  /// Builds an equi-depth histogram with up to `num_buckets` buckets.
  /// `values` need not be sorted. Empty input yields an empty histogram.
  static Histogram Build(std::span<const int64_t> values, int num_buckets);

  bool empty() const { return total_ == 0; }
  uint64_t total() const { return total_; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t min() const { return min_; }
  int64_t max() const { return max_; }

  /// Estimated number of distinct values.
  double ndv() const { return ndv_; }

  /// Selectivity of (col = v), in [0, 1].
  double SelectivityEq(int64_t v) const;

  /// Selectivity of (col < v).
  double SelectivityLt(int64_t v) const;

  /// Selectivity of (col > v).
  double SelectivityGt(int64_t v) const;

  /// Selectivity of (lo <= col <= hi).
  double SelectivityBetween(int64_t lo, int64_t hi) const;

 private:
  // Bucket i covers (bounds_[i], bounds_[i+1]], except bucket 0 covers
  // [bounds_[0], bounds_[1]]. counts_[i] is the number of rows in bucket i,
  // bucket_ndv_[i] the distinct count within it.
  std::vector<int64_t> bounds_;
  std::vector<uint64_t> counts_;
  std::vector<double> bucket_ndv_;
  uint64_t total_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double ndv_ = 0;

  double FractionBelowOrEqual(int64_t v) const;  // P(col <= v)
};

}  // namespace iqro

#endif  // IQRO_STATS_HISTOGRAM_H_
