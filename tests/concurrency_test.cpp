// Concurrency contracts of the parallel ReoptSession flush and its
// ThreadPool substrate. The *equivalence* of parallel and serial flushes
// is proven at scale by the randomized differential harness (pooled
// scenarios run a serial mirror world in lockstep — docs/TESTING.md);
// these tests pin the deterministic contracts:
//
//   * ThreadPool futures deliver results; destructor-drain runs every
//     accepted task exactly once (shutdown mid-queue loses nothing).
//   * A 4-worker flush drives every registered query to its from-scratch
//     oracle state, byte-identically to a serial twin session.
//   * Record() racing Flush() from a second thread lands in the next
//     epoch's batch — no mutation is lost, none is applied twice.
//   * Auto-flush firing on a mutator thread dispatches correctly.
//
// The whole file is the primary target of the ThreadSanitizer CI job: its
// value is as much "TSan sees these interleavings race-free" as the
// assertions themselves.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/declarative_optimizer.h"
#include "service/reopt_session.h"
#include "test_util.h"

namespace iqro::testing {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, FuturesDeliverResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

// Deterministic shutdown: destroying the pool with tasks still queued
// *drains* — every accepted task runs exactly once before the workers
// join. This is what lets a session tear down mid-stream without leaving
// optimizers half-dispatched.
TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
    // Destructor runs here, with most of the queue still pending.
  }
  EXPECT_EQ(ran.load(), 32);
  for (auto& f : futures) {
    EXPECT_TRUE(f.wait_for(std::chrono::seconds(0)) == std::future_status::ready);
  }
}

TEST(ThreadPoolTest, WorkerMaySubmitFollowUpWork) {
  ThreadPool pool(2);
  std::promise<int> inner_done;
  std::future<int> inner = inner_done.get_future();
  pool.Submit([&pool, &inner_done] {
     // A worker scheduling follow-up work must not deadlock (tasks are
     // never run inline, and the queue lock is not held while executing).
     pool.Submit([&inner_done] { inner_done.set_value(7); });
   }).get();
  EXPECT_EQ(inner.get(), 7);
}

// ---------------------------------------------------------------------------
// Parallel session flush
// ---------------------------------------------------------------------------

std::unique_ptr<TestWorld> ChainWorld(int relations = 6, uint64_t seed = 17) {
  WorldOptions wo;
  wo.num_relations = relations;
  wo.shape = GraphShape::kChain;
  wo.seed = seed;
  return MakeWorld(wo);
}

std::string ScratchDump(TestWorld& world, OptimizerOptions options) {
  DeclarativeOptimizer scratch(world.enumerator.get(), world.cost_model.get(),
                               &world.registry, options);
  scratch.Optimize();
  return scratch.CanonicalDumpState();
}

const std::vector<OptimizerOptions>& QueryConfigs() {
  static const auto* configs = new std::vector<OptimizerOptions>{
      OptimizerOptions::Default(),        OptimizerOptions::UseAggSel(),
      OptimizerOptions::UseAggSelRefCount(), OptimizerOptions::UseAggSelBounding(),
      OptimizerOptions::UseNoPruning(),
  };
  return *configs;
}

/// Scripted churn round r: a mix of swings, an oscillation that nets to
/// zero, and a scan-cost change — deterministic, so serial and parallel
/// twins see identical streams.
void ApplyChurnRound(StatsRegistry& reg, int r) {
  const double rows1 = reg.base_rows(1);
  reg.SetBaseRows(1, std::max(1.0, rows1 * ((r % 2) != 0 ? 2.5 : 0.4)));
  reg.SetScanCostMultiplier(2, (r % 3) + 1.0);
  reg.SetScanCostMultiplier(2, 1.0);  // oscillates back
  reg.SetLocalSelectivity(3, (r % 2) != 0 ? 0.35 : 0.9);
  reg.SetJoinSelectivity(0, ((r % 4) + 1) * 0.125);
  if (r % 2 != 0) reg.SetCardMultiplier(0b11, 1.0 + 0.5 * (r % 3));
}

// An N-query session flushed on 4 workers lands every registered query in
// its from-scratch oracle state after every flush.
TEST(ParallelFlushTest, FourWorkerFlushMatchesFreshOracles) {
  auto world = ChainWorld();
  std::vector<std::unique_ptr<DeclarativeOptimizer>> opts;
  for (const OptimizerOptions& o : QueryConfigs()) {
    opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world->enumerator.get(), world->cost_model.get(), &world->registry, o));
    opts.back()->Optimize();
  }
  ReoptSessionOptions so;
  so.worker_threads = 4;
  ReoptSession session(&world->registry, so);
  EXPECT_EQ(session.worker_threads(), 4);
  std::vector<QueryHandle> handles;
  for (auto& o : opts) handles.push_back(session.Register(*o));

  for (int r = 0; r < 6; ++r) {
    ApplyChurnRound(world->registry, r);
    session.Flush();
    for (auto& o : opts) {
      o->ValidateInvariants();
      EXPECT_EQ(o->CanonicalDumpState(), ScratchDump(*world, o->options()))
          << "config diverged from its from-scratch oracle at round " << r;
    }
  }
  EXPECT_GT(session.metrics().reopt_passes, 0);
  EXPECT_GT(session.last_flush().fixpoint_steps, 0);
}

// worker_threads=0 and worker_threads=4 twin sessions over twin worlds see
// the same mutation stream and must land byte-identical, flush after flush
// — the serial path is the reference the pool must reproduce exactly.
TEST(ParallelFlushTest, SerialAndParallelSessionsAreByteIdentical) {
  auto world_s = ChainWorld();
  auto world_p = ChainWorld();  // deterministic twin

  std::vector<std::unique_ptr<DeclarativeOptimizer>> serial_opts, parallel_opts;
  for (const OptimizerOptions& o : QueryConfigs()) {
    serial_opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world_s->enumerator.get(), world_s->cost_model.get(), &world_s->registry, o));
    serial_opts.back()->Optimize();
    parallel_opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world_p->enumerator.get(), world_p->cost_model.get(), &world_p->registry, o));
    parallel_opts.back()->Optimize();
  }
  ReoptSession serial_session(&world_s->registry);
  ReoptSessionOptions po;
  po.worker_threads = 4;
  ReoptSession parallel_session(&world_p->registry, po);
  std::vector<QueryHandle> serial_handles, parallel_handles;
  for (auto& o : serial_opts) serial_handles.push_back(serial_session.Register(*o));
  for (auto& o : parallel_opts) parallel_handles.push_back(parallel_session.Register(*o));

  for (int r = 0; r < 6; ++r) {
    ApplyChurnRound(world_s->registry, r);
    ApplyChurnRound(world_p->registry, r);
    const size_t n_serial = serial_session.Flush();
    const size_t n_parallel = parallel_session.Flush();
    EXPECT_EQ(n_serial, n_parallel) << "round " << r;
    for (size_t q = 0; q < serial_opts.size(); ++q) {
      EXPECT_EQ(parallel_opts[q]->CanonicalDumpState(), serial_opts[q]->CanonicalDumpState())
          << "query " << q << " diverged at round " << r;
    }
  }
  // The aggregated per-flush metrics agree too: same batch, same seeding,
  // same fixpoint work — only the dispatch threads differ.
  EXPECT_EQ(parallel_session.metrics().reopt_passes, serial_session.metrics().reopt_passes);
  EXPECT_EQ(parallel_session.metrics().eps_seeded, serial_session.metrics().eps_seeded);
  EXPECT_EQ(parallel_session.last_flush().eps_seeded, serial_session.last_flush().eps_seeded);
}

// Record() racing Flush() from a second thread: every mutation either
// makes the batch a flush drains or stays pending for the next one —
// nothing is lost, nothing applies twice. After the mutator joins, one
// final flush must land every optimizer exactly in its oracle state.
TEST(ParallelFlushTest, RecordRacingFlushLandsInNextEpoch) {
  auto world = ChainWorld();
  std::vector<std::unique_ptr<DeclarativeOptimizer>> opts;
  for (const OptimizerOptions& o : QueryConfigs()) {
    opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world->enumerator.get(), world->cost_model.get(), &world->registry, o));
    opts.back()->Optimize();
  }
  ReoptSessionOptions so;
  so.worker_threads = 2;
  // Exporter attached: the flush epilogue's metrics snapshot must be
  // race-free against the concurrent mutator (TSan checks it here).
  JsonMetricsExporter exporter;
  so.metrics_exporter = &exporter;
  ReoptSession session(&world->registry, so);
  std::vector<QueryHandle> handles;
  for (auto& o : opts) handles.push_back(session.Register(*o));

  constexpr int kMutations = 200;
  const double rows0 = world->registry.base_rows(0);
  std::thread mutator([&world, rows0] {
    for (int i = 1; i <= kMutations; ++i) {
      // Strictly changing values: every call records (and bumps the epoch).
      world->registry.SetBaseRows(0, rows0 + i);
      if (i % 16 == 0) std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  // Flush continuously while the mutator runs: each flush drains whatever
  // epoch-consistent batch exists at that instant.
  int flushed_batches = 0;
  for (int i = 0; i < 50; ++i) {
    if (session.Flush() > 0) ++flushed_batches;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  mutator.join();
  session.Flush();  // whatever raced past the last mid-stream flush
  EXPECT_FALSE(world->registry.HasPending());

  // No lost update: the registry's value is the mutator's last write, and
  // every optimizer is at the fixpoint of exactly that value.
  EXPECT_EQ(world->registry.base_rows(0), rows0 + kMutations);
  // No double-apply/over-count: every one of the 200 distinct writes was
  // observed exactly once.
  EXPECT_EQ(session.metrics().mutations_observed, kMutations);
  for (auto& o : opts) {
    o->ValidateInvariants();
    EXPECT_EQ(o->CanonicalDumpState(), ScratchDump(*world, o->options()));
  }
  // Sanity: the race was real — some batches were drained mid-stream.
  EXPECT_GE(flushed_batches, 1);
}

// Auto-flush with a pool: the threshold callback fires Flush() on the
// *mutator's* thread, which dispatches to the pool and joins there.
TEST(ParallelFlushTest, AutoFlushDispatchesFromMutatorThread) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.flush_policy = std::make_shared<CountPolicy>(4);
  so.worker_threads = 2;
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  std::thread mutator([&world] {
    for (int i = 1; i <= 40; ++i) {
      world->registry.SetBaseRows(1, 100.0 + i);
    }
  });
  mutator.join();
  session.Flush();  // tail below the last threshold
  EXPECT_GE(session.metrics().flushes, 1);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// Notification semantics under the pool: per flush, every subscribed query
// fires at most once, events arrive on the flushing thread in registration
// order, and a 4-worker session's event stream is field-identical to its
// serial twin's — the digests are computed on the workers, but delivery is
// coordinated. (TSan covers the interleavings; the assertions pin the
// exactly-once and ordering contracts.)
TEST(ParallelFlushTest, SubscriberEventsExactlyOnceInRegistrationOrder) {
  struct Recorded {
    int query_id;
    int64_t flush_index;
    double old_cost, new_cost;
    PlanDiffSummary diff;
  };
  class Recorder final : public PlanSubscriber {
   public:
    Recorder(std::vector<Recorded>* out, std::thread::id home) : out_(out), home_(home) {}
    void OnPlanChange(const PlanChangeEvent& e) override {
      // Delivery happens on the flushing thread, never a pool worker.
      EXPECT_EQ(std::this_thread::get_id(), home_);
      out_->push_back({e.query_id, e.flush_index, e.old_cost, e.new_cost, e.diff});
    }

   private:
    std::vector<Recorded>* out_;
    std::thread::id home_;
  };

  auto world_s = ChainWorld();
  auto world_p = ChainWorld();  // deterministic twin
  std::vector<std::unique_ptr<DeclarativeOptimizer>> serial_opts, parallel_opts;
  for (const OptimizerOptions& o : QueryConfigs()) {
    serial_opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world_s->enumerator.get(), world_s->cost_model.get(), &world_s->registry, o));
    serial_opts.back()->Optimize();
    parallel_opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world_p->enumerator.get(), world_p->cost_model.get(), &world_p->registry, o));
    parallel_opts.back()->Optimize();
  }
  ReoptSession serial_session(&world_s->registry);
  ReoptSessionOptions po;
  po.worker_threads = 4;
  ReoptSession parallel_session(&world_p->registry, po);

  std::vector<Recorded> serial_events, parallel_events;
  const std::thread::id home = std::this_thread::get_id();
  std::vector<std::unique_ptr<Recorder>> recorders;
  std::vector<QueryHandle> serial_handles, parallel_handles;
  for (size_t q = 0; q < serial_opts.size(); ++q) {
    recorders.push_back(std::make_unique<Recorder>(&serial_events, home));
    serial_handles.push_back(serial_session.Register(*serial_opts[q], recorders.back().get()));
    recorders.push_back(std::make_unique<Recorder>(&parallel_events, home));
    parallel_handles.push_back(
        parallel_session.Register(*parallel_opts[q], recorders.back().get()));
  }

  int64_t total_events = 0;
  for (int r = 0; r < 6; ++r) {
    serial_events.clear();
    parallel_events.clear();
    ApplyChurnRound(world_s->registry, r);
    ApplyChurnRound(world_p->registry, r);
    serial_session.Flush();
    parallel_session.Flush();

    // Exactly-once: no query id repeats within one flush; registration
    // order: ids are strictly increasing in the delivered sequence.
    for (size_t i = 1; i < parallel_events.size(); ++i) {
      EXPECT_GT(parallel_events[i].query_id, parallel_events[i - 1].query_id)
          << "round " << r << ": duplicate or out-of-order event";
    }
    // Serial twin saw the identical stream, field for field.
    ASSERT_EQ(parallel_events.size(), serial_events.size()) << "round " << r;
    for (size_t i = 0; i < parallel_events.size(); ++i) {
      EXPECT_EQ(parallel_events[i].query_id, serial_events[i].query_id);
      EXPECT_EQ(parallel_events[i].flush_index, serial_events[i].flush_index);
      EXPECT_EQ(parallel_events[i].old_cost, serial_events[i].old_cost);
      EXPECT_EQ(parallel_events[i].new_cost, serial_events[i].new_cost);
      EXPECT_EQ(parallel_events[i].diff.changed_operators,
                serial_events[i].diff.changed_operators);
      EXPECT_EQ(parallel_events[i].diff.join_order_prefix,
                serial_events[i].diff.join_order_prefix);
    }
    total_events += static_cast<int64_t>(parallel_events.size());
  }
  EXPECT_GT(total_events, 0);  // the churn actually moved plans
  EXPECT_EQ(parallel_session.metrics().plan_changes, total_events);
  EXPECT_EQ(serial_session.metrics().plan_changes, total_events);
}

// A session owning a pool tears down cleanly right after heavy parallel
// use — the pool drains and joins deterministically in the destructor.
TEST(ParallelFlushTest, SessionTeardownAfterParallelFlushes) {
  auto world = ChainWorld();
  std::vector<std::unique_ptr<DeclarativeOptimizer>> opts;
  for (const OptimizerOptions& o : QueryConfigs()) {
    opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world->enumerator.get(), world->cost_model.get(), &world->registry, o));
    opts.back()->Optimize();
  }
  {
    ReoptSessionOptions so;
    so.worker_threads = 4;
    ReoptSession session(&world->registry, so);
    std::vector<QueryHandle> handles;
    for (auto& o : opts) handles.push_back(session.Register(*o));
    ApplyChurnRound(world->registry, 1);
    session.Flush();
    // Handles release, then the destructor: unsubscribe + pool drain/join.
  }
  // The world remains fully usable single-threaded afterwards.
  world->registry.SetBaseRows(1, 12345);
  opts[0]->Reoptimize();
  opts[0]->ValidateInvariants();
  EXPECT_EQ(opts[0]->CanonicalDumpState(), ScratchDump(*world, opts[0]->options()));
}

}  // namespace
}  // namespace iqro::testing
