// Unit tests for the service layer: the StatsRegistry coalescer (net-delta
// batching) and the multi-query ReoptSession manager. The end-to-end
// batch ≡ from-scratch property is covered by the randomized differential
// harness (tests/differential_test.cpp, batch mode); these tests pin the
// small contracts — net-zero absorption, duplicate collapse, task dedup,
// multi-query dispatch, auto-flush and unregistration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "core/declarative_optimizer.h"
#include "service/reopt_session.h"
#include "test_util.h"

namespace iqro::testing {
namespace {

std::unique_ptr<TestWorld> ChainWorld(int relations = 5, uint64_t seed = 11) {
  WorldOptions wo;
  wo.num_relations = relations;
  wo.shape = GraphShape::kChain;
  wo.seed = seed;
  return MakeWorld(wo);
}

/// Fresh from-scratch optimizer over the world's *current* statistics.
std::string ScratchDump(TestWorld& world, OptimizerOptions options) {
  DeclarativeOptimizer scratch(world.enumerator.get(), world.cost_model.get(),
                               &world.registry, options);
  scratch.Optimize();
  return scratch.CanonicalDumpState();
}

TEST(ReoptSessionTest, NetZeroChurnProducesZeroWork) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  session.Register(&opt);

  const double rows0 = world->registry.base_rows(1);
  const int64_t enqueued0 = opt.metrics().tasks_enqueued;

  // Oscillate two statistics back to their baselines, plus one exact no-op
  // (swallowed before it even reaches the pending table).
  world->registry.SetBaseRows(1, rows0 * 4);
  world->registry.SetBaseRows(1, rows0);
  world->registry.SetScanCostMultiplier(0, 2.0);
  world->registry.SetScanCostMultiplier(0, 1.0);
  world->registry.SetScanCostMultiplier(0, 1.0);

  EXPECT_TRUE(session.HasPending());  // recorded, not yet coalesced away
  EXPECT_EQ(session.Flush(), 0u);     // ...but the batch nets to zero

  EXPECT_EQ(opt.metrics().tasks_enqueued, enqueued0);  // zero enqueued tasks
  EXPECT_EQ(session.metrics().reopt_passes, 0);
  EXPECT_EQ(session.metrics().empty_flushes, 1);
  EXPECT_EQ(session.metrics().changes_flushed, 0);
  EXPECT_EQ(session.metrics().mutations_observed, 4);  // the no-op never records
  EXPECT_FALSE(session.HasPending());
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(ReoptSessionTest, OscillationCoalescesToOneChange) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  session.Register(&opt);

  const double rows0 = world->registry.base_rows(2);
  world->registry.SetBaseRows(2, rows0 * 2);
  world->registry.SetBaseRows(2, rows0 * 8);
  world->registry.SetBaseRows(2, rows0 * 3);  // three mutations, one stat

  EXPECT_EQ(session.Flush(), 1u);  // one net StatChange
  const CoalesceStats& cs = world->registry.coalesce_stats();
  EXPECT_EQ(cs.recorded, 3);
  EXPECT_EQ(cs.collapsed, 2);
  EXPECT_EQ(cs.emitted, 1);
  EXPECT_EQ(session.metrics().reopt_passes, 1);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// The batching claim itself: one coalesced flush enqueues strictly less
// worklist traffic than change-at-a-time re-optimization of the same
// mutations, and the enqueue-time dedup (tasks_deduped) is doing real work
// during the batched seed. Both paths must land in the identical state.
TEST(ReoptSessionTest, BatchedFlushDedupesTasks) {
  auto world_batch = ChainWorld();
  auto world_seq = ChainWorld();  // deterministic: identical world

  DeclarativeOptimizer batch(world_batch->enumerator.get(), world_batch->cost_model.get(),
                             &world_batch->registry);
  batch.Optimize();
  DeclarativeOptimizer seq(world_seq->enumerator.get(), world_seq->cost_model.get(),
                           &world_seq->registry);
  seq.Optimize();
  ASSERT_EQ(batch.CanonicalDumpState(), seq.CanonicalDumpState());

  auto mutate = [](StatsRegistry& reg) -> std::vector<std::function<void()>> {
    return {
        [&reg] { reg.SetBaseRows(0, reg.base_rows(0) * 5); },
        [&reg] { reg.SetLocalSelectivity(1, 0.33); },
        [&reg] { reg.SetScanCostMultiplier(2, 4.0); },
        [&reg] { reg.SetBaseRows(3, reg.base_rows(3) * 0.25); },
        [&reg] { reg.SetJoinSelectivity(0, reg.join_selectivity(0) * 0.5); },
        [&reg] { reg.SetScanCostMultiplier(2, 8.0); },  // collapses with #3
    };
  };

  // Sequential: one fixpoint per mutation.
  const int64_t seq_enq0 = seq.metrics().tasks_enqueued;
  for (auto& m : mutate(world_seq->registry)) {
    m();
    seq.Reoptimize();
  }
  const int64_t seq_enqueued = seq.metrics().tasks_enqueued - seq_enq0;

  // Batched: all mutations coalesced, one flush, one fixpoint.
  ReoptSession session(&world_batch->registry);
  session.Register(&batch);
  const int64_t batch_enq0 = batch.metrics().tasks_enqueued;
  const int64_t batch_dedup0 = batch.metrics().tasks_deduped;
  for (auto& m : mutate(world_batch->registry)) m();
  EXPECT_EQ(session.Flush(), 5u);  // 6 mutations -> 5 net changes
  const int64_t batch_enqueued = batch.metrics().tasks_enqueued - batch_enq0;
  const int64_t batch_deduped = batch.metrics().tasks_deduped - batch_dedup0;

  EXPECT_LT(batch_enqueued, seq_enqueued);
  EXPECT_GT(batch_deduped, 0);
  EXPECT_GT(session.metrics().eps_seeded, 0);

  batch.ValidateInvariants();
  seq.ValidateInvariants();
  EXPECT_NEAR(batch.BestCost(), seq.BestCost(), 1e-9 * std::max(1.0, batch.BestCost()));
  EXPECT_EQ(batch.CanonicalDumpState(), seq.CanonicalDumpState());
}

TEST(ReoptSessionTest, MultiQueryFlushDrivesAllRegisteredOptimizers) {
  auto world = ChainWorld(6, 23);
  // Three live "queries" with different pruning configurations, all
  // watching one registry through one session — the fig8 configurations as
  // a multi-query workload.
  DeclarativeOptimizer all(world->enumerator.get(), world->cost_model.get(),
                           &world->registry, OptimizerOptions::Default());
  DeclarativeOptimizer aggsel(world->enumerator.get(), world->cost_model.get(),
                              &world->registry, OptimizerOptions::UseAggSel());
  DeclarativeOptimizer nopruning(world->enumerator.get(), world->cost_model.get(),
                                 &world->registry, OptimizerOptions::UseNoPruning());
  all.Optimize();
  aggsel.Optimize();
  nopruning.Optimize();

  ReoptSession session(&world->registry);
  session.Register(&all);
  session.Register(&aggsel);
  session.Register(&nopruning);
  EXPECT_EQ(session.num_queries(), 3);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 10);
  world->registry.SetScanCostMultiplier(4, 3.0);
  world->registry.SetLocalSelectivity(5, 0.2);
  EXPECT_GT(session.Flush(), 0u);
  EXPECT_EQ(session.metrics().reopt_passes, 3);

  for (auto* opt : {&all, &aggsel, &nopruning}) {
    opt->ValidateInvariants();
    EXPECT_EQ(opt->CanonicalDumpState(), ScratchDump(*world, opt->options()))
        << "config diverged from its from-scratch oracle";
  }
  // All exact configurations agree on the optimum.
  EXPECT_NEAR(all.BestCost(), nopruning.BestCost(), 1e-9 * std::max(1.0, all.BestCost()));
}

TEST(ReoptSessionTest, AutoFlushFiresAfterThreshold) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.auto_flush_after = 3;
  ReoptSession session(&world->registry, so);
  session.Register(&opt);

  world->registry.SetBaseRows(0, 999);
  world->registry.SetBaseRows(1, 888);
  EXPECT_TRUE(session.HasPending());  // below threshold: nothing fired
  EXPECT_EQ(session.metrics().flushes, 0);
  world->registry.SetScanCostMultiplier(2, 2.0);  // third mutation: fires
  EXPECT_FALSE(session.HasPending());
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_EQ(session.metrics().reopt_passes, 1);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(ReoptSessionTest, UnregisterStopsDispatch) {
  auto world = ChainWorld();
  DeclarativeOptimizer kept(world->enumerator.get(), world->cost_model.get(),
                            &world->registry);
  DeclarativeOptimizer dropped(world->enumerator.get(), world->cost_model.get(),
                               &world->registry);
  kept.Optimize();
  dropped.Optimize();

  ReoptSession session(&world->registry);
  session.Register(&kept);
  const ReoptSession::QueryId dropped_id = session.Register(&dropped);
  session.Unregister(dropped_id);
  EXPECT_EQ(session.num_queries(), 1);

  const int64_t dropped_enq0 = dropped.metrics().tasks_enqueued;
  world->registry.SetBaseRows(2, world->registry.base_rows(2) * 7);
  EXPECT_EQ(session.Flush(), 1u);
  EXPECT_EQ(session.metrics().reopt_passes, 1);
  EXPECT_EQ(dropped.metrics().tasks_enqueued, dropped_enq0);  // untouched
  kept.ValidateInvariants();
  EXPECT_EQ(kept.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(ReoptSessionTest, RegisterRejectsOptimizerThatMissedADrain) {
  auto world = ChainWorld();
  DeclarativeOptimizer current(world->enumerator.get(), world->cost_model.get(),
                               &world->registry);
  DeclarativeOptimizer late(world->enumerator.get(), world->cost_model.get(),
                            &world->registry);
  current.Optimize();
  late.Optimize();

  ReoptSession session(&world->registry);
  session.Register(&current);
  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 3);
  session.Flush();  // drains: `late` has now missed deltas it can never get

  EXPECT_LT(late.stats_epoch(), world->registry.drained_epoch());
  EXPECT_DEATH_IF_SUPPORTED(session.Register(&late), "stats_epoch");

  // A fresh optimizer over the post-drain statistics registers fine.
  DeclarativeOptimizer fresh(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  fresh.Optimize();
  session.Register(&fresh);
  EXPECT_EQ(session.num_queries(), 2);
}

TEST(ReoptSessionTest, DestructorUnsubscribes) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  {
    ReoptSession session(&world->registry);
    session.Register(&opt);
  }
  // Mutating after the session died must not touch freed memory (the
  // subscriber list no longer references it); the delta just sits pending.
  world->registry.SetBaseRows(0, 123);
  EXPECT_TRUE(world->registry.HasPending());
  opt.Reoptimize();  // single-query draining still works without a session
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

}  // namespace
}  // namespace iqro::testing
