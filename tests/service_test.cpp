// Unit tests for the service layer: the StatsRegistry coalescer (net-delta
// batching) and the multi-query ReoptSession manager behind the v2 typed
// API — QueryHandle registration, plan-change subscriptions, pluggable
// flush policies and metrics export. The end-to-end batch ≡ from-scratch
// property is covered by the randomized differential harness
// (tests/differential_test.cpp, batch mode, including the notification
// oracle); these tests pin the small contracts — net-zero absorption,
// duplicate collapse, task dedup, multi-query dispatch, handle lifecycle,
// subscriber exactness and reentrancy, policy triggers, unregistration.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/serialize.h"
#include "core/declarative_optimizer.h"
#include "service/reopt_session.h"
#include "service/snapshot.h"
#include "testing/differential.h"
#include "test_util.h"

namespace iqro::testing {
namespace {

std::unique_ptr<TestWorld> ChainWorld(int relations = 5, uint64_t seed = 11) {
  WorldOptions wo;
  wo.num_relations = relations;
  wo.shape = GraphShape::kChain;
  wo.seed = seed;
  return MakeWorld(wo);
}

/// Fresh from-scratch optimizer over the world's *current* statistics.
std::string ScratchDump(TestWorld& world, OptimizerOptions options) {
  DeclarativeOptimizer scratch(world.enumerator.get(), world.cost_model.get(),
                               &world.registry, options);
  scratch.Optimize();
  return scratch.CanonicalDumpState();
}

/// Collects every delivered event (copies — events are call-scoped).
class RecordingSubscriber final : public PlanSubscriber {
 public:
  void OnPlanChange(const PlanChangeEvent& event) override { events.push_back(event); }
  std::vector<PlanChangeEvent> events;
};

/// Hand-advanced clock for DeadlinePolicy tests.
class FakeClock final : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() const override { return now_; }
  void Advance(std::chrono::milliseconds d) { now_ += d; }

 private:
  std::chrono::steady_clock::time_point now_{};
};

TEST(ReoptSessionTest, NetZeroChurnProducesZeroWorkAndZeroEvents) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  RecordingSubscriber subscriber;
  QueryHandle handle = session.Register(opt, &subscriber);

  const double rows0 = world->registry.base_rows(1);
  const int64_t enqueued0 = opt.metrics().tasks_enqueued;

  // Oscillate two statistics back to their baselines, plus one exact no-op
  // (swallowed before it even reaches the pending table).
  world->registry.SetBaseRows(1, rows0 * 4);
  world->registry.SetBaseRows(1, rows0);
  world->registry.SetScanCostMultiplier(0, 2.0);
  world->registry.SetScanCostMultiplier(0, 1.0);
  world->registry.SetScanCostMultiplier(0, 1.0);

  EXPECT_TRUE(session.HasPending());  // recorded, not yet coalesced away
  EXPECT_EQ(session.Flush(), 0u);     // ...but the batch nets to zero

  EXPECT_EQ(opt.metrics().tasks_enqueued, enqueued0);  // zero enqueued tasks
  EXPECT_EQ(session.metrics().reopt_passes, 0);
  EXPECT_EQ(session.metrics().empty_flushes, 1);
  EXPECT_EQ(session.metrics().changes_flushed, 0);
  EXPECT_EQ(session.metrics().mutations_observed, 4);  // the no-op never records
  EXPECT_TRUE(subscriber.events.empty());  // net-zero churn is invisible
  EXPECT_EQ(session.metrics().plan_changes, 0);
  EXPECT_FALSE(session.HasPending());
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(ReoptSessionTest, OscillationCoalescesToOneChange) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  QueryHandle handle = session.Register(opt);

  const double rows0 = world->registry.base_rows(2);
  world->registry.SetBaseRows(2, rows0 * 2);
  world->registry.SetBaseRows(2, rows0 * 8);
  world->registry.SetBaseRows(2, rows0 * 3);  // three mutations, one stat

  EXPECT_EQ(session.Flush(), 1u);  // one net StatChange
  const CoalesceStats& cs = world->registry.coalesce_stats();
  EXPECT_EQ(cs.recorded, 3);
  EXPECT_EQ(cs.collapsed, 2);
  EXPECT_EQ(cs.emitted, 1);
  EXPECT_EQ(session.metrics().reopt_passes, 1);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// The batching claim itself: one coalesced flush enqueues strictly less
// worklist traffic than change-at-a-time re-optimization of the same
// mutations, and the enqueue-time dedup (tasks_deduped) is doing real work
// during the batched seed. Both paths must land in the identical state.
TEST(ReoptSessionTest, BatchedFlushDedupesTasks) {
  auto world_batch = ChainWorld();
  auto world_seq = ChainWorld();  // deterministic: identical world

  DeclarativeOptimizer batch(world_batch->enumerator.get(), world_batch->cost_model.get(),
                             &world_batch->registry);
  batch.Optimize();
  DeclarativeOptimizer seq(world_seq->enumerator.get(), world_seq->cost_model.get(),
                           &world_seq->registry);
  seq.Optimize();
  ASSERT_EQ(batch.CanonicalDumpState(), seq.CanonicalDumpState());

  auto mutate = [](StatsRegistry& reg) -> std::vector<std::function<void()>> {
    return {
        [&reg] { reg.SetBaseRows(0, reg.base_rows(0) * 5); },
        [&reg] { reg.SetLocalSelectivity(1, 0.33); },
        [&reg] { reg.SetScanCostMultiplier(2, 4.0); },
        [&reg] { reg.SetBaseRows(3, reg.base_rows(3) * 0.25); },
        [&reg] { reg.SetJoinSelectivity(0, reg.join_selectivity(0) * 0.5); },
        [&reg] { reg.SetScanCostMultiplier(2, 8.0); },  // collapses with #3
    };
  };

  // Sequential: one fixpoint per mutation.
  const int64_t seq_enq0 = seq.metrics().tasks_enqueued;
  for (auto& m : mutate(world_seq->registry)) {
    m();
    seq.Reoptimize();
  }
  const int64_t seq_enqueued = seq.metrics().tasks_enqueued - seq_enq0;

  // Batched: all mutations coalesced, one flush, one fixpoint.
  ReoptSession session(&world_batch->registry);
  QueryHandle handle = session.Register(batch);
  const int64_t batch_enq0 = batch.metrics().tasks_enqueued;
  const int64_t batch_dedup0 = batch.metrics().tasks_deduped;
  for (auto& m : mutate(world_batch->registry)) m();
  EXPECT_EQ(session.Flush(), 5u);  // 6 mutations -> 5 net changes
  const int64_t batch_enqueued = batch.metrics().tasks_enqueued - batch_enq0;
  const int64_t batch_deduped = batch.metrics().tasks_deduped - batch_dedup0;

  EXPECT_LT(batch_enqueued, seq_enqueued);
  EXPECT_GT(batch_deduped, 0);
  EXPECT_GT(session.metrics().eps_seeded, 0);

  batch.ValidateInvariants();
  seq.ValidateInvariants();
  EXPECT_NEAR(batch.BestCost(), seq.BestCost(), 1e-9 * std::max(1.0, batch.BestCost()));
  EXPECT_EQ(batch.CanonicalDumpState(), seq.CanonicalDumpState());
}

TEST(ReoptSessionTest, MultiQueryFlushDrivesAllRegisteredOptimizers) {
  auto world = ChainWorld(6, 23);
  // Three live "queries" with different pruning configurations, all
  // watching one registry through one session — the fig8 configurations as
  // a multi-query workload.
  DeclarativeOptimizer all(world->enumerator.get(), world->cost_model.get(),
                           &world->registry, OptimizerOptions::Default());
  DeclarativeOptimizer aggsel(world->enumerator.get(), world->cost_model.get(),
                              &world->registry, OptimizerOptions::UseAggSel());
  DeclarativeOptimizer nopruning(world->enumerator.get(), world->cost_model.get(),
                                 &world->registry, OptimizerOptions::UseNoPruning());
  all.Optimize();
  aggsel.Optimize();
  nopruning.Optimize();

  ReoptSession session(&world->registry);
  std::vector<QueryHandle> handles;
  handles.push_back(session.Register(all));
  handles.push_back(session.Register(aggsel));
  handles.push_back(session.Register(nopruning));
  EXPECT_EQ(session.num_queries(), 3);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 10);
  world->registry.SetScanCostMultiplier(4, 3.0);
  world->registry.SetLocalSelectivity(5, 0.2);
  EXPECT_GT(session.Flush(), 0u);
  EXPECT_EQ(session.metrics().reopt_passes, 3);

  for (auto* opt : {&all, &aggsel, &nopruning}) {
    opt->ValidateInvariants();
    EXPECT_EQ(opt->CanonicalDumpState(), ScratchDump(*world, opt->options()))
        << "config diverged from its from-scratch oracle";
  }
  // All exact configurations agree on the optimum.
  EXPECT_NEAR(all.BestCost(), nopruning.BestCost(), 1e-9 * std::max(1.0, all.BestCost()));
}

// The tentpole property: seeding cost scales with the affected set, not the
// memo. A sparse-scope flush (one scan-cost change, singleton scope) over a
// multi-query session must examine only the exact-key entries the scope
// index returns — eps_scanned stays within 2x of eps_seeded and far below
// the enumerated memo population, even though three memos are registered.
TEST(ReoptSessionTest, SparseScopeFlushScansOnlyAffectedEps) {
  auto world = ChainWorld(8, 31);
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::Default());
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::UseAggSel());
  DeclarativeOptimizer c(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::UseNoPruning());
  a.Optimize();
  b.Optimize();
  c.Optimize();
  const int64_t memo_eps = a.metrics().eps_enumerated + b.metrics().eps_enumerated +
                           c.metrics().eps_enumerated;

  ReoptSession session(&world->registry);
  std::vector<QueryHandle> handles;
  handles.push_back(session.Register(a));
  handles.push_back(session.Register(b));
  handles.push_back(session.Register(c));

  world->registry.SetScanCostMultiplier(3, 2.5);  // singleton scope {3}
  EXPECT_GT(session.Flush(), 0u);

  EXPECT_GT(session.last_flush().eps_seeded, 0);
  EXPECT_LE(session.last_flush().eps_scanned, 2 * session.last_flush().eps_seeded);
  // O(affected), not O(memo): a full-vector scan would have examined every
  // enumerated EP in all three memos.
  EXPECT_LT(session.last_flush().eps_scanned, memo_eps / 4);

  for (auto* opt : {&a, &b, &c}) {
    opt->ValidateInvariants();
    EXPECT_EQ(opt->CanonicalDumpState(), ScratchDump(*world, opt->options()));
  }
}

// Cross-query summary sharing: two registered queries with *independent*
// SummaryCalculators over one registry. After a cardinality change, the
// first query to cost a subexpression inserts its Summary into the
// session's shared cache; the second query's calculator — whose local cache
// knows nothing — must pick it up instead of recomputing.
TEST(ReoptSessionTest, SharedSummaryCacheServesSecondQuery) {
  auto world = ChainWorld(6, 23);
  SummaryCalculator summaries2(&world->registry);
  CostModel cost_model2(&summaries2);
  DeclarativeOptimizer first(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  DeclarativeOptimizer second(world->enumerator.get(), &cost_model2, &world->registry);
  first.Optimize();
  second.Optimize();

  ReoptSession session(&world->registry);
  QueryHandle h1 = session.Register(first);
  QueryHandle h2 = session.Register(second);
  EXPECT_EQ(session.summary_cache().hits(), 0);  // nothing shared pre-flush

  world->registry.SetBaseRows(2, world->registry.base_rows(2) * 9);
  EXPECT_GT(session.Flush(), 0u);

  // The flush recomputed summaries at the new epoch exactly once across the
  // session: the first pass misses and publishes, the second pass hits.
  EXPECT_GT(session.summary_cache().misses(), 0);
  EXPECT_GT(session.summary_cache().hits(), 0);
  EXPECT_GT(session.summary_cache().size(), 0u);

  for (auto* opt : {&first, &second}) {
    opt->ValidateInvariants();
    EXPECT_EQ(opt->CanonicalDumpState(), ScratchDump(*world, opt->options()));
  }
  EXPECT_NEAR(first.BestCost(), second.BestCost(), 1e-9 * std::max(1.0, first.BestCost()));
}

// ---------------------------------------------------------------------------
// QueryHandle lifecycle
// ---------------------------------------------------------------------------

TEST(QueryHandleTest, DestructionUnregisters) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  {
    QueryHandle handle = session.Register(opt);
    EXPECT_TRUE(handle.valid());
    EXPECT_EQ(handle.optimizer(), &opt);
    EXPECT_EQ(session.num_queries(), 1);
  }
  EXPECT_EQ(session.num_queries(), 0);  // RAII unregistration

  // A flush after the handle died re-optimizes nothing...
  const int64_t enq0 = opt.metrics().tasks_enqueued;
  world->registry.SetBaseRows(2, world->registry.base_rows(2) * 7);
  EXPECT_EQ(session.Flush(), 1u);
  EXPECT_EQ(session.metrics().reopt_passes, 0);
  EXPECT_EQ(opt.metrics().tasks_enqueued, enq0);
}

TEST(QueryHandleTest, ReleaseStopsDispatchEarly) {
  auto world = ChainWorld();
  DeclarativeOptimizer kept(world->enumerator.get(), world->cost_model.get(),
                            &world->registry);
  DeclarativeOptimizer dropped(world->enumerator.get(), world->cost_model.get(),
                               &world->registry);
  kept.Optimize();
  dropped.Optimize();

  ReoptSession session(&world->registry);
  QueryHandle kept_handle = session.Register(kept);
  QueryHandle dropped_handle = session.Register(dropped);
  dropped_handle.Release();
  EXPECT_FALSE(dropped_handle.valid());
  EXPECT_EQ(dropped_handle.id(), -1);
  EXPECT_EQ(session.num_queries(), 1);
  dropped_handle.Release();  // double release: no-op

  const int64_t dropped_enq0 = dropped.metrics().tasks_enqueued;
  world->registry.SetBaseRows(2, world->registry.base_rows(2) * 7);
  EXPECT_EQ(session.Flush(), 1u);
  EXPECT_EQ(session.metrics().reopt_passes, 1);
  EXPECT_EQ(dropped.metrics().tasks_enqueued, dropped_enq0);  // untouched
  kept.ValidateInvariants();
  EXPECT_EQ(kept.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(QueryHandleTest, MoveTransfersOwnership) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);

  QueryHandle a = session.Register(opt);
  const ReoptSession::QueryId id = a.id();
  QueryHandle b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from is defined invalid
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.id(), id);
  EXPECT_EQ(session.num_queries(), 1);

  QueryHandle c;
  EXPECT_FALSE(c.valid());
  c = std::move(b);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(session.num_queries(), 1);
  c.Release();
  EXPECT_EQ(session.num_queries(), 0);
}

TEST(QueryHandleTest, HandleOutlivingSessionIsANoOp) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  QueryHandle survivor;
  RecordingSubscriber subscriber;
  {
    ReoptSession session(&world->registry);
    survivor = session.Register(opt);
    EXPECT_TRUE(survivor.valid());
  }
  // The session is gone: the registration died with it, and every handle
  // operation is a defined no-op; the accessors report invalid.
  EXPECT_FALSE(survivor.valid());
  EXPECT_EQ(survivor.id(), -1);
  EXPECT_EQ(survivor.optimizer(), nullptr);
  survivor.Subscribe(&subscriber);
  survivor.Release();
  // Mutating after the session died must not touch freed memory (the
  // subscriber list no longer references it); the delta just sits pending.
  world->registry.SetBaseRows(0, 123);
  EXPECT_TRUE(world->registry.HasPending());
  opt.Reoptimize();  // single-query draining still works without a session
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(ReoptSessionTest, RegisterRejectsOptimizerThatMissedADrain) {
  auto world = ChainWorld();
  DeclarativeOptimizer current(world->enumerator.get(), world->cost_model.get(),
                               &world->registry);
  DeclarativeOptimizer late(world->enumerator.get(), world->cost_model.get(),
                            &world->registry);
  current.Optimize();
  late.Optimize();

  ReoptSession session(&world->registry);
  QueryHandle current_handle = session.Register(current);
  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 3);
  session.Flush();  // drains: `late` has now missed deltas it can never get

  EXPECT_LT(late.stats_epoch(), world->registry.drained_epoch());
  EXPECT_DEATH_IF_SUPPORTED({ QueryHandle h = session.Register(late); }, "stats_epoch");

  // A fresh optimizer over the post-drain statistics registers fine.
  DeclarativeOptimizer fresh(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  fresh.Optimize();
  QueryHandle fresh_handle = session.Register(fresh);
  EXPECT_EQ(session.num_queries(), 2);
}

// ---------------------------------------------------------------------------
// Plan-change subscriptions
// ---------------------------------------------------------------------------

// A swing big enough to flip the plan fires exactly one event whose
// old/new costs are the BestCost values either side of the flush; flushing
// again without churn fires nothing; restoring the statistics fires the
// symmetric event (plans are history-free).
TEST(PlanSubscriberTest, FiresExactlyWhenCanonicalPlanChanges) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  RecordingSubscriber subscriber;
  QueryHandle handle = session.Register(opt, &subscriber);

  const std::string dump0 = opt.CanonicalDumpState();
  const double cost0 = opt.BestCost();
  const double rows0 = world->registry.base_rows(0);

  // Swing hard enough that the canonical plan (costs at minimum) changes.
  world->registry.SetBaseRows(0, rows0 * 1000);
  ASSERT_GT(session.Flush(), 0u);
  ASSERT_NE(opt.CanonicalDumpState(), dump0);
  ASSERT_EQ(subscriber.events.size(), 1u);
  {
    const PlanChangeEvent& e = subscriber.events[0];
    EXPECT_EQ(e.query_id, handle.id());
    EXPECT_EQ(e.optimizer, &opt);
    EXPECT_EQ(e.old_cost, cost0);
    EXPECT_EQ(e.new_cost, opt.BestCost());
    EXPECT_EQ(e.flush_index, 1);
    EXPECT_EQ(e.flush_epoch, opt.stats_epoch());
    EXPECT_GT(e.diff.total_operators, 0);
    EXPECT_LE(e.diff.changed_operators, e.diff.total_operators);
    EXPECT_EQ(e.diff.join_order_len, 6);  // all six relations in the plan
    EXPECT_LE(e.diff.join_order_prefix, e.diff.join_order_len);
  }
  EXPECT_EQ(session.metrics().plan_changes, 1);

  // No churn, no event (Flush with nothing pending is a no-op anyway).
  EXPECT_EQ(session.Flush(), 0u);
  EXPECT_EQ(subscriber.events.size(), 1u);

  // Restore: the canonical plan returns to the original -> symmetric event.
  world->registry.SetBaseRows(0, rows0);
  ASSERT_GT(session.Flush(), 0u);
  ASSERT_EQ(subscriber.events.size(), 2u);
  EXPECT_EQ(opt.CanonicalDumpState(), dump0);
  EXPECT_EQ(subscriber.events[1].old_cost, subscriber.events[0].new_cost);
  EXPECT_EQ(subscriber.events[1].new_cost, cost0);
  opt.ValidateInvariants();
}

// Attaching a subscriber after history has accumulated sets the baseline to
// the plan at attach time: no replay of older changes, first event is
// relative to that plan.
TEST(PlanSubscriberTest, BaselineIsThePlanAtAttachTime) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  QueryHandle handle = session.Register(opt);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  session.Flush();  // plan changed, but nobody was listening

  RecordingSubscriber subscriber;
  handle.Subscribe(&subscriber);
  const double cost_at_attach = opt.BestCost();

  // A flush that lands on the same plan fires nothing for the new
  // subscriber even though the plan differs from pre-attach history.
  world->registry.SetScanCostMultiplier(1, 2.0);
  world->registry.SetScanCostMultiplier(1, 1.0);  // nets to zero
  session.Flush();
  EXPECT_TRUE(subscriber.events.empty());

  world->registry.SetBaseRows(0, world->registry.base_rows(0) / 1000);
  ASSERT_GT(session.Flush(), 0u);
  ASSERT_EQ(subscriber.events.size(), 1u);
  EXPECT_EQ(subscriber.events[0].old_cost, cost_at_attach);

  handle.Subscribe(nullptr);  // detach: no further events, no digest work
  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 50);
  session.Flush();
  EXPECT_EQ(subscriber.events.size(), 1u);
}

// Unregistering from inside a subscriber callback is deferred to flush
// end: every event of the in-flight flush still fires (in registration
// order), and the unregistered query stops being dispatched afterwards.
TEST(PlanSubscriberTest, UnregisterDuringCallbackIsDeferredToFlushEnd) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer first(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  DeclarativeOptimizer second(world->enumerator.get(), world->cost_model.get(),
                              &world->registry);
  first.Optimize();
  second.Optimize();
  ReoptSession session(&world->registry);

  QueryHandle second_handle;
  std::vector<int> fired_order;
  // First query's subscriber releases the SECOND query's handle mid-flush.
  class ReleasingSubscriber final : public PlanSubscriber {
   public:
    ReleasingSubscriber(QueryHandle* victim, std::vector<int>* order)
        : victim_(victim), order_(order) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      order_->push_back(event.query_id);
      victim_->Release();  // deferred: the flush is mid-notification
    }

   private:
    QueryHandle* victim_;
    std::vector<int>* order_;
  };
  class OrderSubscriber final : public PlanSubscriber {
   public:
    explicit OrderSubscriber(std::vector<int>* order) : order_(order) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      order_->push_back(event.query_id);
    }

   private:
    std::vector<int>* order_;
  };
  ReleasingSubscriber releasing(&second_handle, &fired_order);
  OrderSubscriber ordering(&fired_order);

  QueryHandle first_handle = session.Register(first, &releasing);
  second_handle = session.Register(second, &ordering);
  ASSERT_EQ(session.num_queries(), 2);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  ASSERT_GT(session.Flush(), 0u);
  // Both events fired, registration order, despite the mid-flight release.
  ASSERT_EQ(fired_order.size(), 2u);
  EXPECT_EQ(fired_order[0], first_handle.id());
  EXPECT_EQ(fired_order[1], 1);  // the released handle's id
  EXPECT_FALSE(second_handle.valid());
  EXPECT_EQ(session.num_queries(), 1);  // removal applied at flush end

  // The unregistered query is no longer dispatched (its state goes stale —
  // it left the session's consistency contract when it was released).
  const int64_t second_enq = second.metrics().tasks_enqueued;
  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 3);
  session.Flush();
  EXPECT_EQ(second.metrics().tasks_enqueued, second_enq);
  first.ValidateInvariants();
  EXPECT_EQ(first.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// A query may unregister ITSELF from its own callback; its event (already
// delivered) stands, the slot dies at flush end.
TEST(PlanSubscriberTest, SelfUnregisterDuringCallback) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);

  QueryHandle handle;
  class SelfReleasing final : public PlanSubscriber {
   public:
    explicit SelfReleasing(QueryHandle* self) : self_(self) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      ++fired;
      self_->Release();
    }
    QueryHandle* self_;
    int fired = 0;
  };
  SelfReleasing subscriber(&handle);
  handle = session.Register(opt, &subscriber);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  ASSERT_GT(session.Flush(), 0u);
  EXPECT_EQ(subscriber.fired, 1);
  EXPECT_FALSE(handle.valid());
  EXPECT_EQ(session.num_queries(), 0);
}

// Detaching a later query's subscriber from inside a callback suppresses
// that query's undelivered event of the in-flight flush: events go to the
// subscriber attached at delivery time, so the detached observer may be
// destroyed immediately.
TEST(PlanSubscriberTest, DetachDuringCallbackSuppressesUndeliveredEvent) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer first(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  DeclarativeOptimizer second(world->enumerator.get(), world->cost_model.get(),
                              &world->registry);
  first.Optimize();
  second.Optimize();
  ReoptSession session(&world->registry);

  QueryHandle second_handle;
  class DetachingSubscriber final : public PlanSubscriber {
   public:
    explicit DetachingSubscriber(QueryHandle* victim) : victim_(victim) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      ++fired;
      victim_->Subscribe(nullptr);
    }
    int fired = 0;

   private:
    QueryHandle* victim_;
  };
  DetachingSubscriber detaching(&second_handle);
  RecordingSubscriber recording;

  QueryHandle first_handle = session.Register(first, &detaching);
  second_handle = session.Register(second, &recording);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  ASSERT_GT(session.Flush(), 0u);
  EXPECT_EQ(detaching.fired, 1);
  EXPECT_TRUE(recording.events.empty());  // suppressed by the mid-flight detach
  EXPECT_EQ(session.metrics().plan_changes, 1);  // only the delivered event counts
  EXPECT_EQ(session.num_queries(), 2);  // detach is not unregistration

  // Re-attach: the suppressed change is never replayed (baseline is the
  // post-flush plan); the next real change delivers normally. (Detach the
  // troublemaker first, or it would suppress again on the next flush.)
  first_handle.Subscribe(nullptr);
  second_handle.Subscribe(&recording);
  world->registry.SetBaseRows(0, world->registry.base_rows(0) / 1000);
  ASSERT_GT(session.Flush(), 0u);
  ASSERT_EQ(recording.events.size(), 1u);
  EXPECT_EQ(recording.events[0].query_id, second_handle.id());
}

// Replacing (not just detaching) a subscriber mid-notification also
// suppresses the pending event: the replacement's baseline postdates the
// change, so replaying it would hand the new observer pre-attach history.
TEST(PlanSubscriberTest, SwapDuringCallbackSuppressesUndeliveredEvent) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer first(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  DeclarativeOptimizer second(world->enumerator.get(), world->cost_model.get(),
                              &world->registry);
  first.Optimize();
  second.Optimize();
  ReoptSession session(&world->registry);

  QueryHandle second_handle;
  RecordingSubscriber original, replacement;
  class SwappingSubscriber final : public PlanSubscriber {
   public:
    SwappingSubscriber(QueryHandle* victim, PlanSubscriber* replacement)
        : victim_(victim), replacement_(replacement) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      if (!swapped_) {
        swapped_ = true;
        victim_->Subscribe(replacement_);
      }
    }

   private:
    QueryHandle* victim_;
    PlanSubscriber* replacement_;
    bool swapped_ = false;
  };
  SwappingSubscriber swapping(&second_handle, &replacement);

  QueryHandle first_handle = session.Register(first, &swapping);
  second_handle = session.Register(second, &original);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  ASSERT_GT(session.Flush(), 0u);
  EXPECT_TRUE(original.events.empty());     // it was swapped out pre-delivery
  EXPECT_TRUE(replacement.events.empty());  // no replay of pre-attach history

  // The replacement's first event comes from the next flush.
  world->registry.SetBaseRows(0, world->registry.base_rows(0) / 1000);
  ASSERT_GT(session.Flush(), 0u);
  ASSERT_EQ(replacement.events.size(), 1u);
  EXPECT_TRUE(original.events.empty());

  // Same-pointer reattach is a new subscription too (generation counter):
  // detach-then-reattach of one observer mid-flight must also suppress —
  // pointer identity alone cannot see that the baseline was re-captured.
  class ReattachingSubscriber final : public PlanSubscriber {
   public:
    ReattachingSubscriber(QueryHandle* victim, PlanSubscriber* same)
        : victim_(victim), same_(same) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      if (!done_) {
        done_ = true;
        victim_->Subscribe(nullptr);
        victim_->Subscribe(same_);  // generic reconfigure: detach, reattach
      }
    }

   private:
    QueryHandle* victim_;
    PlanSubscriber* same_;
    bool done_ = false;
  };
  ReattachingSubscriber reattaching(&second_handle, &replacement);
  first_handle.Subscribe(&reattaching);
  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  ASSERT_GT(session.Flush(), 0u);
  EXPECT_EQ(replacement.events.size(), 1u);  // suppressed despite same pointer
  // ...and the reattached subscription delivers normally from then on.
  world->registry.SetBaseRows(0, world->registry.base_rows(0) / 1000);
  ASSERT_GT(session.Flush(), 0u);
  EXPECT_EQ(replacement.events.size(), 2u);
}

// A throwing subscriber must not wedge the session: the exception escapes
// Flush(), but notification state resets, deferred unregistrations still
// apply, the exporter/policy epilogue still runs — and a LATER query's
// event dropped by the unwind is re-detected at the next flush that
// re-optimizes it (its baseline only advances when its event settles).
TEST(PlanSubscriberTest, ThrowingSubscriberDoesNotWedgeTheSession) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  DeclarativeOptimizer watched(world->enumerator.get(), world->cost_model.get(),
                               &world->registry);
  DeclarativeOptimizer late(world->enumerator.get(), world->cost_model.get(),
                            &world->registry);
  opt.Optimize();
  watched.Optimize();
  JsonMetricsExporter exporter;
  auto policy = std::make_shared<CostGatedPolicy>(/*work_budget=*/1e12);
  ReoptSessionOptions so;
  so.metrics_exporter = &exporter;
  so.flush_policy = policy;
  ReoptSession session(&world->registry, so);

  QueryHandle handle;
  class ThrowingSubscriber final : public PlanSubscriber {
   public:
    explicit ThrowingSubscriber(QueryHandle* self) : self_(self) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      self_->Release();  // deferred — must still apply despite the throw
      throw std::runtime_error("subscriber failure");
    }

   private:
    QueryHandle* self_;
  };
  ThrowingSubscriber subscriber(&handle);
  RecordingSubscriber recording;
  handle = session.Register(opt, &subscriber);  // fires (and throws) first
  QueryHandle watched_handle = session.Register(watched, &recording);
  const double watched_cost0 = watched.BestCost();

  // The policy (no history yet) flushes eagerly on the first mutation, so
  // the subscriber's exception propagates out of the Set call itself.
  EXPECT_THROW(world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000),
               std::runtime_error);
  EXPECT_EQ(session.num_queries(), 1);  // the deferred release applied
  // The flush DID dispatch: the exporter got its report and the policy its
  // history sample, despite the throwing subscriber (flush epilogue) —
  // and the thrower's own event is counted as delivered (at-most-once).
  ASSERT_EQ(exporter.num_reports(), 1);
  EXPECT_EQ(exporter.reports()[0].plan_changes, 1);
  EXPECT_GT(policy->work_per_change(), 0.0);
  // watched's event was dropped by the unwind — not delivered, not lost:
  EXPECT_TRUE(recording.events.empty());

  // The session is not stuck in notifying mode: registering and flushing
  // again both work — and watched's suppressed change re-fires, measured
  // against the baseline its consumer last saw.
  late.Optimize();
  QueryHandle late_handle = session.Register(late);
  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 3);
  EXPECT_GT(session.Flush(), 0u);
  ASSERT_EQ(recording.events.size(), 1u);
  EXPECT_EQ(recording.events[0].old_cost, watched_cost0);
  EXPECT_EQ(recording.events[0].new_cost, watched.BestCost());
  late.ValidateInvariants();
  EXPECT_EQ(late.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// A dropped event (throwing subscriber unwound delivery) must re-fire
// even when no later batch ever touches the dropped query's relations:
// unsettled baselines force a re-diff on the next flush regardless of the
// prefilter. A sub-query over a prefix of the world's relations makes
// "registered but unaffected" constructible.
TEST(PlanSubscriberTest, DroppedEventRefiresEvenWhenLaterFlushCannotAffectTheQuery) {
  auto world = ChainWorld(6, 23);
  // Sub-query over relations {0,1,2}, sharing the world's registry (its
  // chain edges (0,1),(1,2) align with registry edge ids 0 and 1).
  QuerySpec subq;
  subq.name = "sub_chain_3";
  for (int i = 0; i < 3; ++i) {
    subq.relations.push_back(
        {static_cast<TableId>(i), world->query.relations[static_cast<size_t>(i)].alias,
         WindowSpec{}});
  }
  subq.joins.push_back({0, 0, 1, 1, PredOp::kEq});
  subq.joins.push_back({1, 0, 2, 1, PredOp::kEq});
  JoinGraph subgraph(subq);
  SummaryCalculator subsummaries(&world->registry);
  CostModel subcost(&subsummaries);
  PropTable subprops;
  PlanEnumerator subenum(&subq, &subgraph, &world->catalog, &subprops);

  DeclarativeOptimizer full(world->enumerator.get(), world->cost_model.get(),
                            &world->registry);
  DeclarativeOptimizer sub(&subenum, &subcost, &world->registry);
  full.Optimize();
  sub.Optimize();
  ASSERT_EQ(sub.RootRelations(), RelSet{0b111});

  ReoptSession session(&world->registry);
  class ThrowOnce final : public PlanSubscriber {
   public:
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      if (!thrown_) {
        thrown_ = true;
        throw std::runtime_error("first delivery fails");
      }
    }

   private:
    bool thrown_ = false;
  };
  ThrowOnce throw_once;
  RecordingSubscriber recording;
  QueryHandle full_handle = session.Register(full, &throw_once);  // delivers first
  QueryHandle sub_handle = session.Register(sub, &recording);
  const double sub_cost0 = sub.BestCost();

  // Flush 1 changes BOTH plans; full's subscriber throws before sub's
  // event is delivered — dropped, baseline left unsettled.
  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  EXPECT_THROW(session.Flush(), std::runtime_error);
  EXPECT_TRUE(recording.events.empty());

  // Flush 2's batch even coalesces to NOTHING (an oscillation on relation
  // 4, which the sub-query does not contain anyway): the unsettled
  // baseline still forces the re-diff — the dropped change fires now,
  // with the costs its consumer last saw, on a flush that dispatched zero
  // changes.
  world->registry.SetScanCostMultiplier(4, 8.0);
  world->registry.SetScanCostMultiplier(4, 1.0);  // nets to zero
  EXPECT_EQ(session.Flush(), 0u);  // no changes dispatched...
  ASSERT_EQ(recording.events.size(), 1u);  // ...yet the dropped event fired
  EXPECT_EQ(recording.events[0].old_cost, sub_cost0);
  EXPECT_EQ(recording.events[0].new_cost, sub.BestCost());

  // Settled: a further flush (real change, still outside sub's relations)
  // fires nothing more for sub — and the prefilter skips it.
  world->registry.SetScanCostMultiplier(4, 2.0);
  ASSERT_GT(session.Flush(), 0u);
  EXPECT_GE(session.metrics().queries_skipped, 1);  // sub really is prefiltered
  EXPECT_EQ(recording.events.size(), 1u);
  sub.ValidateInvariants();
  full.ValidateInvariants();
}

// Two sessions on one registry: a throwing subscriber in the first must
// not starve the second of its mutation notification — the registry
// notifies every subscriber, then rethrows the first failure.
TEST(PlanSubscriberTest, ThrowingSubscriberDoesNotStarveOtherSessions) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer first(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  DeclarativeOptimizer second(world->enumerator.get(), world->cost_model.get(),
                              &world->registry);
  first.Optimize();
  second.Optimize();

  class AlwaysThrow final : public PlanSubscriber {
   public:
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      throw std::runtime_error("subscriber failure");
    }
  };
  AlwaysThrow throwing;
  // Session A: eager policy + throwing subscriber — its auto-flush fires
  // from inside the registry's notification loop and throws there.
  ReoptSessionOptions sa;
  sa.flush_policy = std::make_shared<CountPolicy>(1);
  ReoptSession session_a(&world->registry, sa);
  QueryHandle handle_a = session_a.Register(first, &throwing);
  // Session B subscribes after A: it must still observe the mutation.
  ReoptSessionOptions sb;
  sb.flush_policy = std::make_shared<CountPolicy>(1);
  ReoptSession session_b(&world->registry, sb);
  QueryHandle handle_b = session_b.Register(second);

  EXPECT_THROW(world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000),
               std::runtime_error);
  // A's flush drained and threw; B was still notified and counted the
  // mutation (its own flush found the batch already drained — that is the
  // documented multi-consumer semantics, not a starvation).
  EXPECT_EQ(session_b.metrics().mutations_observed, 1);
  EXPECT_EQ(session_a.metrics().flushes, 1);
}

TEST(PlanSubscriberTest, RegisterDuringCallbackIsAnError) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  DeclarativeOptimizer other(world->enumerator.get(), world->cost_model.get(),
                             &world->registry);
  opt.Optimize();
  other.Optimize();
  ReoptSession session(&world->registry);

  class RegisteringSubscriber final : public PlanSubscriber {
   public:
    RegisteringSubscriber(ReoptSession* session, DeclarativeOptimizer* other)
        : session_(session), other_(other) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      QueryHandle h = session_->Register(*other_);  // forbidden mid-notification
    }

   private:
    ReoptSession* session_;
    DeclarativeOptimizer* other_;
  };
  RegisteringSubscriber subscriber(&session, &other);
  QueryHandle handle = session.Register(opt, &subscriber);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  EXPECT_DEATH_IF_SUPPORTED(session.Flush(), "notifying");
}

// ---------------------------------------------------------------------------
// Flush policies
// ---------------------------------------------------------------------------

TEST(FlushPolicyTest, CountPolicyFiresAfterThreshold) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.flush_policy = std::make_shared<CountPolicy>(3);
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  world->registry.SetBaseRows(0, 999);
  world->registry.SetBaseRows(1, 888);
  EXPECT_TRUE(session.HasPending());  // below threshold: nothing fired
  EXPECT_EQ(session.metrics().flushes, 0);
  world->registry.SetScanCostMultiplier(2, 2.0);  // third mutation: fires
  EXPECT_FALSE(session.HasPending());
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_EQ(session.metrics().reopt_passes, 1);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// DeadlinePolicy with an injected clock: mutations inside the deadline do
// not flush; once the oldest pending mutation has aged past it, the next
// policy consultation — here a Poll(), no mutation needed — flushes.
TEST(FlushPolicyTest, DeadlinePolicyFiresViaPollAfterClockAdvance) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  FakeClock clock;
  ReoptSessionOptions so;
  so.flush_policy = std::make_shared<DeadlinePolicy>(std::chrono::milliseconds(100), &clock);
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  world->registry.SetBaseRows(0, 999);  // arms the deadline at t=0
  clock.Advance(std::chrono::milliseconds(50));
  world->registry.SetBaseRows(1, 888);  // still inside the deadline
  EXPECT_EQ(session.Poll(), 0u);
  EXPECT_EQ(session.metrics().flushes, 0);

  clock.Advance(std::chrono::milliseconds(60));  // t=110 > 100ms deadline
  EXPECT_GT(session.Poll(), 0u);
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_FALSE(session.HasPending());

  // Disarmed after the flush: an idle Poll never fires...
  clock.Advance(std::chrono::hours(1));
  EXPECT_EQ(session.Poll(), 0u);
  // ...and the next burst starts its own window at its own t0.
  world->registry.SetBaseRows(0, 123);
  EXPECT_EQ(session.Poll(), 0u);
  clock.Advance(std::chrono::milliseconds(150));
  EXPECT_GT(session.Poll(), 0u);
  EXPECT_EQ(session.metrics().flushes, 2);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// A mutation that lands while a flush is in flight (here: from inside a
// subscriber callback, after the drain) survives into the next epoch's
// batch — the deadline must re-arm on it at flush end, not disarm, or its
// staleness bound would silently stretch by a poll interval.
TEST(FlushPolicyTest, DeadlineRearmsOnMutationsThatRacedTheFlush) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  FakeClock clock;
  ReoptSessionOptions so;
  so.flush_policy = std::make_shared<DeadlinePolicy>(std::chrono::milliseconds(100), &clock);
  ReoptSession session(&world->registry, so);

  class MutateOnceSubscriber final : public PlanSubscriber {
   public:
    explicit MutateOnceSubscriber(StatsRegistry* registry) : registry_(registry) {}
    void OnPlanChange(const PlanChangeEvent& event) override {
      (void)event;
      if (!mutated_) {
        mutated_ = true;
        registry_->SetBaseRows(1, 777);  // races the in-flight flush
      }
    }

   private:
    StatsRegistry* registry_;
    bool mutated_ = false;
  };
  MutateOnceSubscriber subscriber(&world->registry);
  QueryHandle handle = session.Register(opt, &subscriber);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);  // arms at t=0
  clock.Advance(std::chrono::milliseconds(150));
  EXPECT_GT(session.Poll(), 0u);  // deadline expired: flush; callback mutates
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_TRUE(session.HasPending());  // the callback's mutation survived

  // Window restarted at flush end (t=150): not yet expired at t=200...
  clock.Advance(std::chrono::milliseconds(50));
  EXPECT_EQ(session.Poll(), 0u);
  // ...expired at t=260. (A disarm-always policy would have re-armed at
  // the t=200 Poll and still be waiting here.)
  clock.Advance(std::chrono::milliseconds(60));
  EXPECT_GT(session.Poll(), 0u);
  EXPECT_EQ(session.metrics().flushes, 2);
  EXPECT_FALSE(session.HasPending());
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// CostGatedPolicy: with no flush history it flushes eagerly (calibration);
// with history and a huge budget it batches; with a tiny budget the
// estimate crosses immediately and every mutation flushes.
TEST(FlushPolicyTest, CostGatedPolicyBatchesUnderItsWorkBudget) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  auto policy = std::make_shared<CostGatedPolicy>(/*work_budget=*/1e12);
  ReoptSessionOptions so;
  so.flush_policy = policy;
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  world->registry.SetBaseRows(0, 999);  // no history yet: eager calibration
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_GT(policy->work_per_change(), 0.0);

  // History exists, budget is astronomical: mutations accumulate.
  world->registry.SetBaseRows(1, 888);
  world->registry.SetBaseRows(2, 777);
  world->registry.SetScanCostMultiplier(0, 3.0);
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_TRUE(session.HasPending());
  EXPECT_GT(session.Flush(), 0u);  // manual flush still drains
  EXPECT_EQ(session.metrics().flushes, 2);

  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// A dispatched-but-zero-work flush (every registered query prefiltered
// away) is floored to one work unit per change: it must neither wedge the
// estimate at 0 (auto-flush would never fire again) nor keep the policy
// in eager per-mutation mode forever. Real observations take over as soon
// as a pass does actual work.
TEST(FlushPolicyTest, CostGatedFloorsZeroWorkCalibration) {
  CostGatedPolicy policy(/*work_budget=*/100);
  FlushPolicyContext ctx;
  ctx.mutations_since_flush = 1;
  ctx.pending_stats = 1;
  EXPECT_TRUE(policy.ShouldFlush(ctx));  // no history: eager

  // A dispatched flush with no per-query observations (every pass
  // prefiltered away): calibration ends, estimate floored at 1 work/change.
  policy.OnFlush(FlushOptStats{}, /*changes=*/3, /*pending_after=*/0);
  EXPECT_EQ(policy.work_per_change(), 1.0);  // floored, not 0, not skipped
  EXPECT_FALSE(policy.ShouldFlush(ctx));     // 1 * 1 < 100: batches now
  ctx.pending_stats = 200;
  EXPECT_TRUE(policy.ShouldFlush(ctx));  // 200 * 1 >= 100: still bounded

  // Real work arrives per query: first observation seeds that query's EWMA.
  policy.OnQueryPassWork(/*query_id=*/7, /*fixpoint_work=*/60, /*changes=*/1);
  policy.OnFlush(FlushOptStats{}, /*changes=*/1, /*pending_after=*/0);
  EXPECT_EQ(policy.query_work_per_change(7), 60.0);
  EXPECT_EQ(policy.work_per_change(), 60.0);  // sum over the one query
  ctx.pending_stats = 1;
  EXPECT_FALSE(policy.ShouldFlush(ctx));  // 1 * 60 < 100
  ctx.pending_stats = 2;
  EXPECT_TRUE(policy.ShouldFlush(ctx));  // 2 * 60 >= 100

  // Second observation blends: 0.7 * 60 + 0.3 * 20 = 48.
  policy.OnQueryPassWork(7, /*fixpoint_work=*/20, /*changes=*/1);
  EXPECT_NEAR(policy.query_work_per_change(7), 48.0, 1e-9);

  // A second query's work ADDS to the estimate (every registered query
  // pays its own fixpoint per flush), and unregistration sheds it.
  policy.OnQueryPassWork(/*query_id=*/9, /*fixpoint_work=*/12, /*changes=*/1);
  EXPECT_NEAR(policy.work_per_change(), 60.0, 1e-9);  // 48 + 12
  policy.OnQueryUnregistered(9);
  EXPECT_NEAR(policy.work_per_change(), 48.0, 1e-9);
  policy.OnQueryUnregistered(7);
  EXPECT_EQ(policy.work_per_change(), 1.0);  // history kept; floor applies
}

TEST(FlushPolicyTest, CostGatedPolicyTinyBudgetFlushesPerMutation) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.flush_policy = std::make_shared<CostGatedPolicy>(/*work_budget=*/1e-6);
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  world->registry.SetBaseRows(0, 999);  // calibration flush
  world->registry.SetBaseRows(1, 888);  // estimate >= budget instantly
  world->registry.SetBaseRows(2, 777);
  EXPECT_EQ(session.metrics().flushes, 3);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

// ---------------------------------------------------------------------------
// Metrics export
// ---------------------------------------------------------------------------

TEST(MetricsExporterTest, JsonExporterReceivesOneReportPerDispatchedFlush) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  JsonMetricsExporter exporter;
  ReoptSessionOptions so;
  so.metrics_exporter = &exporter;
  ReoptSession session(&world->registry, so);
  RecordingSubscriber subscriber;
  QueryHandle handle = session.Register(opt, &subscriber);

  // Flush 1: a real change (and a plan change, with the big swing).
  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 1000);
  ASSERT_GT(session.Flush(), 0u);
  // Flush 2: net-zero churn — absorbed, NO report (nothing dispatched).
  world->registry.SetScanCostMultiplier(1, 2.0);
  world->registry.SetScanCostMultiplier(1, 1.0);
  EXPECT_EQ(session.Flush(), 0u);
  // Flush 3: another real change.
  world->registry.SetLocalSelectivity(2, 0.4);
  ASSERT_GT(session.Flush(), 0u);

  ASSERT_EQ(exporter.num_reports(), 2);
  const FlushReport& r1 = exporter.reports()[0];
  EXPECT_EQ(r1.flush_index, 1);
  EXPECT_EQ(r1.changes, 1);
  EXPECT_EQ(r1.queries, 1);
  EXPECT_EQ(r1.plan_changes, 1);
  EXPECT_GT(r1.opt.passes, 0);
  EXPECT_GT(r1.opt.fixpoint_steps, 0);
  EXPECT_GT(r1.flush_epoch, 1u);  // the drained batch's registry epoch
  EXPECT_GT(exporter.reports()[1].flush_epoch, r1.flush_epoch);
  EXPECT_EQ(exporter.reports()[1].flush_index, 2);
  EXPECT_EQ(exporter.reports()[1].session.flushes, 2);

  // The JSON rendering is parseable-shaped and carries the counters.
  const std::string json = exporter.ToJson();
  EXPECT_NE(json.find("\"flush_index\":1"), std::string::npos);
  EXPECT_NE(json.find("\"plan_changes\""), std::string::npos);
  EXPECT_NE(json.find("\"fixpoint_steps\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

// ---------------------------------------------------------------------------
// Failure domain: quarantine, retry/backoff, park, overload watermarks
// ---------------------------------------------------------------------------

/// Records all three event kinds; optionally throws from a chosen callback.
class FailureRecordingSubscriber final : public PlanSubscriber {
 public:
  void OnPlanChange(const PlanChangeEvent& e) override { plan_events.push_back(e); }
  void OnQueryQuarantined(const QueryQuarantinedEvent& e) override {
    quarantine_events.push_back(e);
    if (throw_on_quarantine) throw std::runtime_error("subscriber quarantine throw");
  }
  void OnQueryRehabilitated(const QueryRehabilitatedEvent& e) override {
    rehab_events.push_back(e);
  }

  std::vector<PlanChangeEvent> plan_events;
  std::vector<QueryQuarantinedEvent> quarantine_events;
  std::vector<QueryRehabilitatedEvent> rehab_events;
  bool throw_on_quarantine = false;
};

/// Flush with the fault injector's counting window open (the session-level
/// analogue of what the differential harness does around primary flushes).
size_t FaultedFlush(ReoptSession& session) {
  ScopedFaultWindow window;
  return session.Flush();
}

TEST(QuarantineTest, FaultedQueryIsIsolatedAndPeersComplete) {
  auto world = ChainWorld();
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(), &world->registry);
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(), &world->registry);
  a.Optimize();
  b.Optimize();
  ReoptSession session(&world->registry);
  FailureRecordingSubscriber sub_a;
  QueryHandle ha = session.Register(a, &sub_a);
  QueryHandle hb = session.Register(b);

  FaultInjector::Instance().set_enabled(false);
  FaultInjector::ArmSpec spec;
  spec.site = "service.pass";  // first dispatched pass = query a (serial order)
  ScopedFaultArm arm(spec);

  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 64);
  FaultedFlush(session);

  // a struck; b completed its pass and matches from-scratch exactly.
  EXPECT_EQ(ha.state(), QueryState::kQuarantined);
  EXPECT_EQ(hb.state(), QueryState::kHealthy);
  EXPECT_FALSE(a.optimized());  // torn down to the one canonical failed state
  EXPECT_EQ(session.num_quarantined(), 1);
  EXPECT_EQ(session.metrics().quarantines, 1);
  b.ValidateInvariants();
  EXPECT_EQ(b.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
  ASSERT_EQ(sub_a.quarantine_events.size(), 1u);
  EXPECT_EQ(sub_a.quarantine_events[0].reason, QueryQuarantinedEvent::Reason::kException);
  EXPECT_EQ(sub_a.quarantine_events[0].strikes, 1);
  EXPECT_FALSE(sub_a.quarantine_events[0].parked);
  EXPECT_EQ(sub_a.quarantine_events[0].retry_in_ticks, 1);
  EXPECT_TRUE(sub_a.plan_events.empty());  // no plan to report while torn down

  // Next flush: backoff (1 tick) expired, the single-shot fault is spent —
  // the rebuild succeeds and a lands exactly where b (and scratch) did.
  FaultedFlush(session);
  EXPECT_EQ(ha.state(), QueryState::kHealthy);
  EXPECT_EQ(session.num_quarantined(), 0);
  EXPECT_EQ(session.metrics().rehabilitations, 1);
  a.ValidateInvariants();
  EXPECT_EQ(a.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
  ASSERT_EQ(sub_a.rehab_events.size(), 1u);
  EXPECT_EQ(sub_a.rehab_events[0].strikes_cleared, 1);
  // The 64x row change moved the plan's costs, and a's subscriber last saw
  // the pre-change plan: rehabilitation owes it exactly one change event
  // against that old baseline.
  ASSERT_EQ(sub_a.plan_events.size(), 1u);
  EXPECT_EQ(sub_a.plan_events[0].new_cost, a.BestCost());
}

TEST(QuarantineTest, PooledFlushIsolatesTheFaultedQueryToo) {
  auto world = ChainWorld();
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(), &world->registry);
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(), &world->registry);
  a.Optimize();
  b.Optimize();
  ReoptSessionOptions so;
  so.worker_threads = 2;
  ReoptSession session(&world->registry, so);
  QueryHandle ha = session.Register(a);
  QueryHandle hb = session.Register(b);

  FaultInjector::Instance().set_enabled(false);
  FaultInjector::ArmSpec spec;
  spec.site = "service.pass";  // pool: WHICH query faults is a race — either is valid
  ScopedFaultArm arm(spec);

  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 64);
  FaultedFlush(session);
  EXPECT_EQ(session.num_quarantined(), 1);  // exactly one struck, one survived
  const std::string scratch = ScratchDump(*world, OptimizerOptions::Default());
  DeclarativeOptimizer& healthy = ha.state() == QueryState::kHealthy ? a : b;
  EXPECT_EQ(healthy.CanonicalDumpState(), scratch);

  FaultedFlush(session);  // rehab
  EXPECT_EQ(session.num_quarantined(), 0);
  EXPECT_EQ(a.CanonicalDumpState(), scratch);
  EXPECT_EQ(b.CanonicalDumpState(), scratch);
}

TEST(QuarantineTest, WorkBudgetExceededQuarantinesWithTypedReason) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.per_query_work_budget = 1;  // any real fixpoint blows through this
  ReoptSession session(&world->registry, so);
  FailureRecordingSubscriber sub;
  QueryHandle handle = session.Register(opt, &sub);

  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 64);
  session.Flush();
  EXPECT_EQ(handle.state(), QueryState::kQuarantined);
  ASSERT_EQ(sub.quarantine_events.size(), 1u);
  EXPECT_EQ(sub.quarantine_events[0].reason, QueryQuarantinedEvent::Reason::kWorkBudget);

  // Rehabilitation rebuilds from scratch, which is NOT budgeted (the
  // budget bounds incremental passes; recovery must always be able to
  // land), so the query comes back even though every incremental pass
  // would keep exceeding.
  session.Flush();
  EXPECT_EQ(handle.state(), QueryState::kHealthy);
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(QuarantineTest, RepeatedRebuildFailuresBackOffExponentiallyThenPark) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);  // max_strikes=3, base=1, cap=8
  FailureRecordingSubscriber sub;
  QueryHandle handle = session.Register(opt, &sub);

  FaultInjector::Instance().set_enabled(false);
  FaultInjector::ArmSpec pass_fault;
  pass_fault.site = "service.pass";
  FaultInjector::ArmSpec rebuild_fault;
  rebuild_fault.site = "reopt.rebuild";
  rebuild_fault.period = 1;  // EVERY rehabilitation attempt fails
  ScopedFaultArm arm{pass_fault, rebuild_fault};

  world->registry.SetBaseRows(1, 123456);
  FaultedFlush(session);  // tick 1: strike 1, eligible at tick 2
  EXPECT_EQ(handle.state(), QueryState::kQuarantined);
  FaultedFlush(session);  // tick 2: rehab attempt fails -> strike 2, backoff 2
  EXPECT_EQ(session.metrics().quarantines, 2);
  FaultedFlush(session);  // tick 3: backoff not expired, NO attempt
  EXPECT_EQ(session.metrics().quarantines, 2);
  FaultedFlush(session);  // tick 4: attempt fails -> strike 3 == max: parked
  EXPECT_EQ(handle.state(), QueryState::kParked);
  EXPECT_EQ(session.num_parked(), 1);
  EXPECT_EQ(session.num_quarantined(), 0);
  EXPECT_EQ(session.metrics().queries_parked, 1);
  FaultedFlush(session);  // parked: no further attempts, ever
  EXPECT_EQ(session.metrics().quarantines, 3);

  ASSERT_EQ(sub.quarantine_events.size(), 3u);
  EXPECT_EQ(sub.quarantine_events[0].retry_in_ticks, 1);
  EXPECT_EQ(sub.quarantine_events[1].retry_in_ticks, 2);  // doubled
  EXPECT_TRUE(sub.quarantine_events[2].parked);
  EXPECT_EQ(sub.quarantine_events[2].retry_in_ticks, 0);
  EXPECT_EQ(session.metrics().rehabilitations, 0);
}

TEST(QuarantineTest, ThrowingQuarantineCallbackLeavesSessionConsistent) {
  auto world = ChainWorld();
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(), &world->registry);
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(), &world->registry);
  a.Optimize();
  b.Optimize();
  ReoptSession session(&world->registry);
  FailureRecordingSubscriber sub_a;
  FailureRecordingSubscriber sub_b;
  sub_a.throw_on_quarantine = true;
  QueryHandle ha = session.Register(a, &sub_a);
  QueryHandle hb = session.Register(b, &sub_b);

  FaultInjector::Instance().set_enabled(false);
  FaultInjector::ArmSpec spec;
  spec.site = "service.pass";
  ScopedFaultArm arm(spec);

  const double before_cost = b.BestCost();
  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 64);
  // The quarantine event fires FIRST and its callback throws: the flush
  // unwinds before b's plan event can deliver.
  EXPECT_THROW(FaultedFlush(session), std::runtime_error);
  EXPECT_EQ(ha.state(), QueryState::kQuarantined);  // the strike stuck
  EXPECT_TRUE(sub_b.plan_events.empty());           // dropped, not lost

  // The session is NOT wedged: the next flush rehabilitates a and
  // re-detects b's dropped plan change against the baseline its subscriber
  // actually saw.
  FaultedFlush(session);
  EXPECT_EQ(ha.state(), QueryState::kHealthy);
  ASSERT_EQ(sub_b.plan_events.size(), 1u);
  EXPECT_EQ(sub_b.plan_events[0].old_cost, before_cost);
  EXPECT_EQ(sub_b.plan_events[0].new_cost, b.BestCost());
  EXPECT_EQ(a.CanonicalDumpState(), b.CanonicalDumpState());
  // The quarantine event is at-most-once: it is NOT redelivered.
  EXPECT_EQ(sub_a.quarantine_events.size(), 1u);
}

TEST(OverloadTest, SoftWatermarkForcesEarlyFlushWithoutAPolicy) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.pending_soft_watermark = 2;
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  world->registry.SetBaseRows(0, 111);  // pending=1 < soft: waits
  EXPECT_EQ(session.metrics().flushes, 0);
  world->registry.SetBaseRows(1, 222);  // pending=2 hits the watermark
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_EQ(session.metrics().watermark_flushes, 1);
  EXPECT_FALSE(session.HasPending());
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(OverloadTest, HardWatermarkRejectsNewStatsAndRegistrations) {
  auto world = ChainWorld();
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(), &world->registry);
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(), &world->registry);
  a.Optimize();
  b.Optimize();
  ReoptSessionOptions so;
  so.pending_hard_watermark = 2;
  ReoptSession session(&world->registry, so);
  QueryHandle ha = session.Register(a);

  EXPECT_EQ(world->registry.SetBaseRows(0, 111), RecordOutcome::kApplied);
  EXPECT_EQ(world->registry.SetBaseRows(1, 222), RecordOutcome::kApplied);
  // At the ceiling: a NEW pending statistic is refused and the value does
  // not change — memory stays bounded, the caller is told.
  const double rows2 = world->registry.base_rows(2);
  EXPECT_EQ(world->registry.SetBaseRows(2, 333), RecordOutcome::kRejectedBacklog);
  EXPECT_EQ(world->registry.base_rows(2), rows2);
  EXPECT_EQ(world->registry.RejectedCount(), 1);
  // ...but a write COALESCING into an already-pending entry still lands
  // (it grows nothing).
  EXPECT_EQ(world->registry.SetBaseRows(0, 123), RecordOutcome::kApplied);
  // New standing queries are refused too, with a typed exception.
  EXPECT_THROW(QueryHandle h = session.Register(b), SessionOverloaded);

  // Draining the backlog lifts both refusals. (b sat out the drained
  // epoch, so it catches up first — the registration freshness CHECK is
  // orthogonal to the overload gate.)
  session.Flush();
  b.Reoptimize();
  QueryHandle hb = session.Register(b);
  EXPECT_EQ(world->registry.SetBaseRows(2, 333), RecordOutcome::kApplied);
  session.Flush();
  EXPECT_EQ(a.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
  EXPECT_EQ(b.CanonicalDumpState(), a.CanonicalDumpState());
}

TEST(TimerTest, TimerThreadDrivesDeadlinePolicyWithoutManualPolls) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.flush_policy = std::make_shared<DeadlinePolicy>(std::chrono::milliseconds(20));
  so.poll_interval = std::chrono::milliseconds(5);
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  world->registry.SetBaseRows(1, 4321);
  EXPECT_EQ(session.metrics().flushes, 0);  // inside the deadline window
  // No Poll() calls: the session-owned timer must age the deadline out.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session.metrics().flushes == 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(session.metrics().flushes, 1);
  EXPECT_FALSE(session.HasPending());
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(TimerTest, TimerRetriesQuarantineBackoffWithoutManualPolls) {
  auto world = ChainWorld();
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSessionOptions so;
  so.poll_interval = std::chrono::milliseconds(5);
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  {
    FaultInjector::Instance().set_enabled(false);
    FaultInjector::ArmSpec spec;
    spec.site = "service.pass";
    ScopedFaultArm arm(spec);
    world->registry.SetBaseRows(1, 98765);
    FaultedFlush(session);
    ASSERT_EQ(handle.state(), QueryState::kQuarantined);
    // Disarm before waiting: the timer's own flushes run outside any
    // counting window anyway, but leave the injector clean for the wait.
  }
  // No Poll() calls: timer ticks age the backoff out and its flush rehabs.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (session.num_quarantined() > 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(handle.state(), QueryState::kHealthy);
  EXPECT_EQ(session.metrics().rehabilitations, 1);
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

/// FakeClock is single-threaded by design; the timer storm below advances
/// time while the session's timer thread reads it, so this variant keeps
/// the instant in an atomic.
class AtomicFakeClock final : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::time_point{
        std::chrono::nanoseconds(nanos_.load(std::memory_order_relaxed))};
  }
  void Advance(std::chrono::milliseconds d) {
    nanos_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(d).count(),
                     std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> nanos_{0};
};

// Adversarial timer storm: a 1ms timer thread hammers Poll() while a
// mutator pushes burst after burst through a 50ms DeadlinePolicy on a
// hand-advanced clock. Per epoch the deadline must fire EXACTLY one flush:
// no starvation (every epoch's flush arrives once its window expires — the
// next epoch's mid-window assertion then proves the count never crept
// further, i.e. no double-flush) and no spurious fire inside the window no
// matter how many timer ticks land there.
TEST(TimerTest, TimerStormFiresExactlyOneFlushPerDeadlineEpoch) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  AtomicFakeClock clock;
  ReoptSessionOptions so;
  so.flush_policy = std::make_shared<DeadlinePolicy>(std::chrono::milliseconds(50), &clock);
  so.poll_interval = std::chrono::milliseconds(1);
  ReoptSession session(&world->registry, so);
  QueryHandle handle = session.Register(opt);

  const double rows0 = world->registry.base_rows(0);
  const int kEpochs = 25;
  for (int e = 0; e < kEpochs; ++e) {
    // Burst: three mutations land inside the window; thousands of timer
    // polls see an unexpired deadline and must do nothing.
    world->registry.SetBaseRows(0, rows0 * (2.0 + e));
    world->registry.SetScanCostMultiplier(1 + (e % 4), 1.0 + 0.25 * (e + 1));
    world->registry.SetLocalSelectivity(5, e % 2 == 0 ? 0.4 : 0.7);
    clock.Advance(std::chrono::milliseconds(10));  // mid-window
    ASSERT_EQ(session.metrics().flushes, e) << "fired inside the window, epoch " << e;
    // Age the window out — advancing INSIDE the wait loop: the flushes
    // counter ticks mid-flush, so this epoch's mutations can race the
    // previous flush's epilogue, whose pending_after probe re-arms the
    // deadline at the clock's current instant. A single up-front advance
    // could land before that re-arm and starve the epoch forever (the
    // fake clock would never move again); repeated advances age any
    // re-armed window out within two iterations.
    const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (session.metrics().flushes == e && std::chrono::steady_clock::now() < give_up) {
      clock.Advance(std::chrono::milliseconds(30));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(session.metrics().flushes, e + 1) << "flush starved at epoch " << e;
    EXPECT_FALSE(session.HasPending());
  }
  // The last flush disarmed the policy: with nothing pending, an hour of
  // fake time and dozens more real timer ticks fire nothing.
  clock.Advance(std::chrono::hours(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(session.metrics().flushes, kEpochs);
  EXPECT_EQ(session.metrics().empty_flushes, 0);  // every flush carried changes
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

TEST(FlushPolicyTest, CostGatedLearnsPerQueryEwmasThroughTheSession) {
  auto world = ChainWorld();
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(), &world->registry);
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(), &world->registry);
  a.Optimize();
  b.Optimize();
  ReoptSessionOptions so;
  auto policy = std::make_shared<CostGatedPolicy>(/*work_budget=*/1e9);  // never auto-fires
  so.flush_policy = policy;
  ReoptSession session(&world->registry, so);
  QueryHandle ha = session.Register(a);  // query id 0
  {
    QueryHandle hb = session.Register(b);  // query id 1

    world->registry.SetBaseRows(1, world->registry.base_rows(1) * 64);
    session.Flush();  // calibration flush observes BOTH queries' pass work
    EXPECT_GT(policy->query_work_per_change(0), 0.0);
    EXPECT_GT(policy->query_work_per_change(1), 0.0);
    EXPECT_NEAR(policy->work_per_change(),
                policy->query_work_per_change(0) + policy->query_work_per_change(1), 1e-9);
  }  // hb released: its EWMA must leave the estimate with it
  EXPECT_EQ(policy->query_work_per_change(1), 0.0);
  EXPECT_NEAR(policy->work_per_change(),
              std::max(1.0, policy->query_work_per_change(0)), 1e-9);
}

// ---------------------------------------------------------------------------
// Memo lifecycle: eviction budget, snapshot / warm restart
// ---------------------------------------------------------------------------

/// Unique per-test snapshot path under /tmp; removed by the destructor.
struct ScopedSnapshotPath {
  explicit ScopedSnapshotPath(const std::string& name)
      : path("/tmp/iqro_service_test_" + name + ".snap") {
    std::remove(path.c_str());
  }
  ~ScopedSnapshotPath() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

TEST(MemoLifecycleTest, EvictedQueryRehydratesOnItsFirstRelevantFlush) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(), &world->registry);
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(), &world->registry);
  a.Optimize();
  b.Optimize();
  ReoptSession session(&world->registry);
  QueryHandle ha = session.Register(a);
  QueryHandle hb = session.Register(b);

  ASSERT_TRUE(session.EvictQuery(ha.id()));
  EXPECT_FALSE(a.optimized());  // memo torn down, state lives in the seed
  EXPECT_EQ(session.num_evicted(), 1);
  EXPECT_EQ(session.metrics().evictions, 1);
  EXPECT_FALSE(session.EvictQuery(ha.id()));  // already evicted: no-op
  // The gauge counts only resident memos: b's alone.
  EXPECT_EQ(session.resident_memo_bytes(),
            static_cast<int64_t>(b.EstimatedMemoBytes()));

  // A flush whose batch touches the evicted query's relations rehydrates
  // it BEFORE dispatch: the restored memo then rides the normal delta
  // seeding and must land exactly where the never-evicted peer does.
  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 64);
  EXPECT_GT(session.Flush(), 0u);
  EXPECT_EQ(session.num_evicted(), 0);
  EXPECT_EQ(session.metrics().rehydrations, 1);
  EXPECT_TRUE(a.optimized());
  a.ValidateInvariants();
  EXPECT_EQ(a.CanonicalDumpState(), b.CanonicalDumpState());
  EXPECT_EQ(a.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
  // The gauge is back to both memos resident.
  EXPECT_EQ(session.resident_memo_bytes(),
            static_cast<int64_t>(a.EstimatedMemoBytes() + b.EstimatedMemoBytes()));
}

TEST(MemoLifecycleTest, ManualRehydrateRestoresByteIdenticalState) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  const std::string dump0 = opt.CanonicalDumpState();
  ReoptSession session(&world->registry);
  QueryHandle handle = session.Register(opt);

  ASSERT_TRUE(session.EvictQuery(handle.id()));
  EXPECT_FALSE(opt.optimized());
  ASSERT_TRUE(session.RehydrateQuery(handle.id()));
  EXPECT_FALSE(session.RehydrateQuery(handle.id()));  // not evicted: no-op
  EXPECT_TRUE(opt.optimized());
  opt.ValidateInvariants();
  // No churn between evict and rehydrate: the restore is byte-exact.
  EXPECT_EQ(opt.CanonicalDumpState(), dump0);
  EXPECT_EQ(session.metrics().evictions, 1);
  EXPECT_EQ(session.metrics().rehydrations, 1);
}

// The budget tentpole: with memo_byte_budget set, resident bytes stay at
// or under the budget after every flush while every query keeps answering
// oracle-equal — dormant memos spill, never results.
TEST(MemoLifecycleTest, MemoBudgetEvictsLruAndPlansStayOracleEqual) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::Default());
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::UseAggSel());
  DeclarativeOptimizer c(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::UseNoPruning());
  a.Optimize();
  b.Optimize();
  c.Optimize();
  const size_t full = a.EstimatedMemoBytes() + b.EstimatedMemoBytes() +
                      c.EstimatedMemoBytes();

  ReoptSessionOptions so;
  so.memo_byte_budget = (full * 2) / 3;  // cannot hold all three memos
  ReoptSession session(&world->registry, so);
  std::vector<QueryHandle> handles;
  handles.push_back(session.Register(a));
  handles.push_back(session.Register(b));
  handles.push_back(session.Register(c));

  const double rows0 = world->registry.base_rows(0);
  for (int round = 0; round < 4; ++round) {
    world->registry.SetBaseRows(0, rows0 * (round % 2 == 0 ? 50.0 : 1.0));
    EXPECT_GT(session.Flush(), 0u);
    EXPECT_LE(session.resident_memo_bytes(),
              static_cast<int64_t>(so.memo_byte_budget))
        << "round " << round;
  }
  EXPECT_GT(session.metrics().evictions, 0);
  // Every batch touched relation 0 (in all three root sets), so evicted
  // queries rehydrated on the very next flush.
  EXPECT_GT(session.metrics().rehydrations, 0);

  // Rehydrate whatever is still spilled and prove all three answer
  // exactly as a from-scratch optimizer over the final statistics.
  for (const QueryHandle& h : handles) session.RehydrateQuery(h.id());
  for (auto* opt : {&a, &b, &c}) {
    opt->ValidateInvariants();
    EXPECT_EQ(opt->CanonicalDumpState(), ScratchDump(*world, opt->options()));
  }
}

// Release-storm accounting: the resident gauge tracks the live set exactly
// at EVERY interleaving point, not just at flush boundaries. The sharp
// edge: a release followed by a flush that coalesces to nothing takes the
// early-return path that skips budget enforcement — the gauge must already
// have shed the dead query's bytes at release time, or it reports (and
// budgets against) a memo that no longer exists.
TEST(MemoLifecycleTest, ReleaseShrinksResidentGaugeBeforeAnyFlush) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::Default());
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::UseAggSel());
  DeclarativeOptimizer c(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::UseNoPruning());
  a.Optimize();
  b.Optimize();
  c.Optimize();
  ReoptSession session(&world->registry);
  const auto bytes = [](const DeclarativeOptimizer& o) {
    return static_cast<int64_t>(o.EstimatedMemoBytes());
  };

  // Registration grows the gauge immediately...
  QueryHandle ha = session.Register(a);
  EXPECT_EQ(session.resident_memo_bytes(), bytes(a));
  QueryHandle hb = session.Register(b);
  EXPECT_EQ(session.resident_memo_bytes(), bytes(a) + bytes(b));
  QueryHandle hc = session.Register(c);
  EXPECT_EQ(session.resident_memo_bytes(), bytes(a) + bytes(b) + bytes(c));

  // ...stays exact through a dispatched flush (memo sizes may change)...
  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 7);
  EXPECT_GT(session.Flush(), 0u);
  EXPECT_EQ(session.resident_memo_bytes(), bytes(a) + bytes(b) + bytes(c));

  // ...and a release shrinks it NOW — no flush has run yet.
  hc.Release();
  EXPECT_EQ(session.resident_memo_bytes(), bytes(a) + bytes(b));

  // Net-zero churn: the flush early-returns before budget enforcement.
  // The gauge must not regress to the pre-release total.
  const double rows1 = world->registry.base_rows(1);
  world->registry.SetBaseRows(1, rows1 * 3);
  world->registry.SetBaseRows(1, rows1);
  EXPECT_EQ(session.Flush(), 0u);
  EXPECT_EQ(session.resident_memo_bytes(), bytes(a) + bytes(b));

  // Manual evict/rehydrate keep the same exactness.
  ASSERT_TRUE(session.EvictQuery(ha.id()));
  EXPECT_EQ(session.resident_memo_bytes(), bytes(b));
  ASSERT_TRUE(session.RehydrateQuery(ha.id()));
  EXPECT_EQ(session.resident_memo_bytes(), bytes(a) + bytes(b));
  for (auto* opt : {&a, &b}) {
    opt->ValidateInvariants();
    EXPECT_EQ(opt->CanonicalDumpState(), ScratchDump(*world, opt->options()));
  }
}

// LRU freshness across handle reuse: a query registered AFTER a release
// must enter the LRU clock "just touched". If the new slot inherited a
// stale tick, the next over-budget enforcement would spill the fresh
// arrival instead of the genuinely oldest query. All four queries run
// no-pruning so their memos are equal-sized and structurally stable — the
// budget holds exactly three of them.
TEST(MemoLifecycleTest, ReRegisteredQueryIsNeverTheEvictionVictim) {
  auto world = ChainWorld(6, 23);
  std::vector<std::unique_ptr<DeclarativeOptimizer>> opts;
  for (int i = 0; i < 5; ++i) {
    opts.push_back(std::make_unique<DeclarativeOptimizer>(
        world->enumerator.get(), world->cost_model.get(), &world->registry,
        OptimizerOptions::UseNoPruning()));
  }
  opts[0]->Optimize();
  const size_t m = opts[0]->EstimatedMemoBytes();

  ReoptSessionOptions so;
  so.memo_byte_budget = 3 * m + m / 2;  // three residents fit, a fourth spills
  ReoptSession session(&world->registry, so);
  opts[1]->Optimize();
  opts[2]->Optimize();
  QueryHandle ha = session.Register(*opts[0]);
  QueryHandle hb = session.Register(*opts[1]);
  QueryHandle hc = session.Register(*opts[2]);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 11);
  EXPECT_GT(session.Flush(), 0u);
  EXPECT_EQ(session.metrics().evictions, 0);  // three residents: under budget

  // Release the middle query, then register two fresh ones. The live set
  // (a, c, d, e) now overflows the budget by one memo.
  hb.Release();
  EXPECT_EQ(session.num_queries(), 2);
  opts[3]->Optimize();
  opts[4]->Optimize();
  QueryHandle hd = session.Register(*opts[3]);
  QueryHandle he = session.Register(*opts[4]);

  world->registry.SetScanCostMultiplier(2, 3.0);
  EXPECT_GT(session.Flush(), 0u);
  EXPECT_EQ(session.metrics().evictions, 1);

  // The victim is the oldest survivor (a) — never a just-registered query.
  // RehydrateQuery's return value probes evicted-ness: true only for a.
  EXPECT_FALSE(session.RehydrateQuery(hc.id()));
  EXPECT_FALSE(session.RehydrateQuery(hd.id()));
  EXPECT_FALSE(session.RehydrateQuery(he.id()));
  EXPECT_TRUE(session.RehydrateQuery(ha.id()));

  // Rehydrate-all leaves the gauge at the exact live sum.
  int64_t live_bytes = 0;
  for (auto* o : {opts[0].get(), opts[2].get(), opts[3].get(), opts[4].get()}) {
    live_bytes += static_cast<int64_t>(o->EstimatedMemoBytes());
    o->ValidateInvariants();
    EXPECT_EQ(o->CanonicalDumpState(), ScratchDump(*world, o->options()));
  }
  EXPECT_EQ(session.resident_memo_bytes(), live_bytes);
}

TEST(SnapshotTest, SaveLoadRoundTripWarmRestartsTheSession) {
  ScopedSnapshotPath snap("roundtrip");
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer a(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::Default());
  DeclarativeOptimizer b(world->enumerator.get(), world->cost_model.get(),
                         &world->registry, OptimizerOptions::UseAggSel());
  a.Optimize();
  b.Optimize();
  ReoptSession session(&world->registry);
  QueryHandle ha = session.Register(a);
  QueryHandle hb = session.Register(b);

  world->registry.SetBaseRows(0, world->registry.base_rows(0) * 40);
  world->registry.SetScanCostMultiplier(3, 2.0);
  session.Flush();
  // Snapshot a mixed population: a resident, b spilled to its seed.
  ASSERT_TRUE(session.EvictQuery(hb.id()));
  session.SaveSnapshot(snap.path);
  const std::string dump_a = a.CanonicalDumpState();

  // "Restart": a brand-new world (same deterministic construction), fresh
  // unoptimized optimizers, fresh session — warm-started from the file.
  auto world2 = ChainWorld(6, 23);
  DeclarativeOptimizer a2(world2->enumerator.get(), world2->cost_model.get(),
                          &world2->registry, OptimizerOptions::Default());
  DeclarativeOptimizer b2(world2->enumerator.get(), world2->cost_model.get(),
                          &world2->registry, OptimizerOptions::UseAggSel());
  ReoptSession session2(&world2->registry);
  std::vector<QueryHandle> handles = session2.LoadSnapshot(snap.path, {&a2, &b2});
  ASSERT_EQ(handles.size(), 2u);
  EXPECT_EQ(session2.num_queries(), 2);

  // The restored world answers byte-identically to the pre-restart one...
  EXPECT_EQ(a2.CanonicalDumpState(), dump_a);
  a2.ValidateInvariants();
  b2.ValidateInvariants();
  EXPECT_EQ(b2.CanonicalDumpState(), ScratchDump(*world2, OptimizerOptions::UseAggSel()));

  // ...and keeps re-optimizing incrementally: post-restart churn flushes
  // through the restored session and stays oracle-equal.
  world2->registry.SetBaseRows(2, world2->registry.base_rows(2) * 9);
  EXPECT_GT(session2.Flush(), 0u);
  for (auto* opt : {&a2, &b2}) {
    opt->ValidateInvariants();
    EXPECT_EQ(opt->CanonicalDumpState(), ScratchDump(*world2, opt->options()));
  }
}

// Randomized round-trip fuzz: generated scenarios churned mid-way, some
// queries evicted, snapshotted, restored into a freshly built world, the
// remaining churn replayed — the restored query must land exactly where a
// from-scratch optimizer over the full churn does.
TEST(SnapshotTest, FuzzRoundTripAcrossGeneratedScenarios) {
  ScopedSnapshotPath snap("fuzz");
  int replayed = 0;
  for (uint64_t seed = 7000; seed < 7024; ++seed) {
    Scenario scenario = GenerateScenario(seed);
    if (scenario.churn.size() < 2) continue;
    const size_t split = scenario.churn.size() / 2;

    auto world = BuildScenarioWorld(scenario);
    DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                             &world->registry, scenario.options);
    opt.Optimize();
    ReoptSession session(&world->registry);
    QueryHandle handle = session.Register(opt);
    for (size_t s = 0; s < split; ++s) {
      for (const StatMutation& m : scenario.churn[s].mutations) {
        ApplyMutation(&world->registry, m);
      }
      session.Flush();
    }
    if (seed % 2 == 0) session.EvictQuery(handle.id());  // cover stored seeds
    session.SaveSnapshot(snap.path);

    auto world2 = BuildScenarioWorld(scenario);
    DeclarativeOptimizer opt2(world2->enumerator.get(), world2->cost_model.get(),
                              &world2->registry, scenario.options);
    ReoptSession session2(&world2->registry);
    std::vector<QueryHandle> handles = session2.LoadSnapshot(snap.path, {&opt2});
    ASSERT_EQ(handles.size(), 1u) << "seed " << seed;
    for (size_t s = split; s < scenario.churn.size(); ++s) {
      for (const StatMutation& m : scenario.churn[s].mutations) {
        ApplyMutation(&world2->registry, m);
      }
      session2.Flush();
    }
    session2.RehydrateQuery(handles[0].id());  // in case every batch missed it

    // Fresh oracle: a third world with ALL churn applied, optimized once.
    auto world3 = BuildScenarioWorld(scenario);
    ApplyChurnPrefix(&world3->registry, scenario, scenario.churn.size());
    DeclarativeOptimizer oracle(world3->enumerator.get(), world3->cost_model.get(),
                                &world3->registry, scenario.options);
    oracle.Optimize();
    opt2.ValidateInvariants();
    ASSERT_EQ(opt2.CanonicalDumpState(), oracle.CanonicalDumpState())
        << "seed " << seed << " diverged after snapshot restore + replay";
    ++replayed;
  }
  EXPECT_GE(replayed, 16);  // the seed range really exercised the path
  std::fprintf(stderr, "snapshot fuzz: %d scenarios round-tripped\n", replayed);
}

TEST(SnapshotTest, CrashAtWritePointLeavesPreviousSnapshotIntact) {
  ScopedSnapshotPath snap("crash_write");
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  opt.Optimize();
  ReoptSession session(&world->registry);
  QueryHandle handle = session.Register(opt);
  session.SaveSnapshot(snap.path);  // the good prior generation
  const std::string dump0 = opt.CanonicalDumpState();

  for (const char* site : {"snapshot.write", "snapshot.rename"}) {
    world->registry.SetBaseRows(0, world->registry.base_rows(0) * 3);
    FaultInjector::Instance().set_enabled(false);
    FaultInjector::ArmSpec spec;
    spec.site = site;
    ScopedFaultArm arm(spec);
    {
      ScopedFaultWindow window;
      EXPECT_THROW(session.SaveSnapshot(snap.path), InjectedFault) << site;
    }
    // Crash on either side of the commit point: the previous complete
    // snapshot survives, no torn temp file is left behind.
    EXPECT_FALSE(FileExists(snap.path + ".tmp")) << site;
    auto world2 = ChainWorld(6, 23);
    DeclarativeOptimizer opt2(world2->enumerator.get(), world2->cost_model.get(),
                              &world2->registry);
    ReoptSession session2(&world2->registry);
    std::vector<QueryHandle> handles = session2.LoadSnapshot(snap.path, {&opt2});
    EXPECT_EQ(opt2.CanonicalDumpState(), dump0) << site;
  }
}

TEST(SnapshotTest, CorruptCorpusIsRejectedWithTypedErrors) {
  const struct {
    const char* file;
    SerializeError::Code code;
  } corpus[] = {
      {"empty.snap", SerializeError::Code::kBadMagic},
      {"short_garbage.snap", SerializeError::Code::kBadMagic},
      {"bad_magic.snap", SerializeError::Code::kBadMagic},
      {"bad_version.snap", SerializeError::Code::kBadVersion},
      {"truncated_header.snap", SerializeError::Code::kTruncated},
      {"oversized_section.snap", SerializeError::Code::kTruncated},
      {"bad_checksum.snap", SerializeError::Code::kChecksum},
      {"trailing_garbage.snap", SerializeError::Code::kBadSection},
  };
  for (const auto& entry : corpus) {
    const std::string path = std::string(IQRO_TEST_DATA_DIR) + "/" + entry.file;
    ASSERT_TRUE(FileExists(path)) << path << " (regenerate: tools/make_snapshot_corpus.py)";
    try {
      service::SnapshotReader reader(path);
      FAIL() << entry.file << " was accepted; expected "
             << SerializeErrorCodeName(entry.code);
    } catch (const SerializeError& e) {
      EXPECT_EQ(e.code, entry.code)
          << entry.file << ": rejected as " << SerializeErrorCodeName(e.code)
          << ", expected " << SerializeErrorCodeName(entry.code);
    }
  }
}

// LoadSnapshot on a bad file must reject BEFORE mutating anything: the
// session stays empty and usable, and the caller falls back to the cold
// path (plain Optimize + Register) with no residue from the failed load.
TEST(SnapshotTest, LoadRejectsCorruptFileAndFallsBackToColdStart) {
  auto world = ChainWorld(6, 23);
  DeclarativeOptimizer opt(world->enumerator.get(), world->cost_model.get(),
                           &world->registry);
  ReoptSession session(&world->registry);

  const std::string bad = std::string(IQRO_TEST_DATA_DIR) + "/bad_checksum.snap";
  EXPECT_THROW(
      { std::vector<QueryHandle> h = session.LoadSnapshot(bad, {&opt}); },
      SerializeError);
  EXPECT_EQ(session.num_queries(), 0);
  EXPECT_FALSE(opt.optimized());

  // A container that parses but does not lead with the statistics section
  // is structurally wrong (kBadSection)...
  ScopedSnapshotPath snap("shape_mismatch");
  {
    service::SnapshotWriter writer;
    writer.AddSection(/*type=*/42, "wrong shape");
    writer.WriteAtomic(snap.path);
    try {
      std::vector<QueryHandle> h = session.LoadSnapshot(snap.path, {&opt});
      FAIL() << "shape-mismatched snapshot was accepted";
    } catch (const SerializeError& e) {
      EXPECT_EQ(e.code, SerializeError::Code::kBadSection);
    }
  }
  // ...while a well-formed container whose query count disagrees with the
  // supplied optimizer list is rejected as kMismatch (before any payload
  // is applied).
  {
    service::SnapshotWriter writer;
    writer.AddSection(/*type=*/1, "stats");    // kStatsSection
    writer.AddSection(/*type=*/2, "query a");  // kQuerySection
    writer.AddSection(/*type=*/2, "query b");
    writer.WriteAtomic(snap.path);
    try {
      std::vector<QueryHandle> h = session.LoadSnapshot(snap.path, {&opt});
      FAIL() << "count-mismatched snapshot was accepted";
    } catch (const SerializeError& e) {
      EXPECT_EQ(e.code, SerializeError::Code::kMismatch);
    }
  }

  // Cold fallback: the session is not wedged.
  opt.Optimize();
  QueryHandle handle = session.Register(opt);
  world->registry.SetBaseRows(1, world->registry.base_rows(1) * 5);
  EXPECT_GT(session.Flush(), 0u);
  opt.ValidateInvariants();
  EXPECT_EQ(opt.CanonicalDumpState(), ScratchDump(*world, OptimizerOptions::Default()));
}

}  // namespace
}  // namespace iqro::testing
