#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/prop_table.h"

namespace iqro {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : registry_(3), summaries_(&registry_), model_(&summaries_) {
    registry_.SetBaseRows(0, 1000);
    registry_.SetBaseRows(1, 100);
    registry_.SetBaseRows(2, 10);
    registry_.AddEdge(0b011, 0.01);
    registry_.AddEdge(0b110, 0.1);
  }
  StatsRegistry registry_;
  SummaryCalculator summaries_;
  CostModel model_;
};

TEST_F(CostModelTest, ScanCostScalesWithRowsAndMultiplier) {
  double c0 = model_.ScanCost(0, PhysOp::kSeqScan);
  double c1 = model_.ScanCost(1, PhysOp::kSeqScan);
  EXPECT_NEAR(c0 / c1, 10.0, 1e-9);
  registry_.SetScanCostMultiplier(0, 4.0);
  EXPECT_NEAR(model_.ScanCost(0, PhysOp::kSeqScan), 4.0 * c0, 1e-9);
}

TEST_F(CostModelTest, IndexScanCostsMoreThanSeqScan) {
  EXPECT_GT(model_.ScanCost(0, PhysOp::kIndexScan), model_.ScanCost(0, PhysOp::kSeqScan));
}

TEST_F(CostModelTest, IndexRefIsConstant) {
  EXPECT_EQ(model_.ScanCost(0, PhysOp::kIndexRef), model_.ScanCost(2, PhysOp::kIndexRef));
}

TEST_F(CostModelTest, HashJoinPrefersSmallBuildSide) {
  // Build on the small side (rel 1: 100 rows) beats build on rel 0 (1000).
  double small_build = model_.JoinLocalCost(PhysOp::kHashJoin, 0b010, 0b001);
  double large_build = model_.JoinLocalCost(PhysOp::kHashJoin, 0b001, 0b010);
  EXPECT_LT(small_build, large_build);
}

TEST_F(CostModelTest, NestedLoopQuadratic) {
  double nl = model_.JoinLocalCost(PhysOp::kNestedLoopJoin, 0b001, 0b010);
  double hash = model_.JoinLocalCost(PhysOp::kHashJoin, 0b001, 0b010);
  EXPECT_GT(nl, hash);  // 1000x100 pairs vs linear passes
}

TEST_F(CostModelTest, JoinCostTracksOutputCardinality) {
  double before = model_.JoinLocalCost(PhysOp::kHashJoin, 0b001, 0b010);
  registry_.SetCardMultiplier(0b011, 100.0);
  double after = model_.JoinLocalCost(PhysOp::kHashJoin, 0b001, 0b010);
  EXPECT_GT(after, before);
}

TEST_F(CostModelTest, SortCostSuperlinear) {
  double s_small = model_.SortLocalCost(0b100);  // 10 rows
  double s_large = model_.SortLocalCost(0b001);  // 1000 rows
  EXPECT_GT(s_large, 100.0 * s_small / 10.0 * 0.5);  // more than linear growth
  EXPECT_GT(s_large, s_small);
}

TEST_F(CostModelTest, SumIsAddition) { EXPECT_EQ(CostModel::Sum(1, 2, 3), 6); }

TEST(PropTableTest, NoneIsZero) {
  PropTable props;
  EXPECT_EQ(props.Intern(Prop{}), kPropNone);
  EXPECT_EQ(props.Get(kPropNone).kind, Prop::Kind::kNone);
}

TEST(PropTableTest, InterningIsStable) {
  PropTable props;
  PropId a = props.InternSorted({1, 2});
  PropId b = props.InternSorted({1, 3});
  PropId c = props.InternIndexed({1, 2});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(props.InternSorted({1, 2}), a);
  EXPECT_EQ(props.Get(a).kind, Prop::Kind::kSorted);
  EXPECT_EQ(props.Get(c).kind, Prop::Kind::kIndexed);
  EXPECT_EQ(props.Get(a).col.rel, 1);
  EXPECT_EQ(props.Get(a).col.col, 2);
}

TEST(PropTableTest, EPKeyRoundTrip) {
  EPKey k = MakeEPKey(0b1011, 7);
  EXPECT_EQ(EPExpr(k), 0b1011u);
  EXPECT_EQ(EPProp(k), 7);
}

TEST(PropTableTest, ToStringRendering) {
  PropTable props;
  EXPECT_EQ(props.ToString(kPropNone), "-");
  PropId s = props.InternSorted({0, 1});
  EXPECT_EQ(props.ToString(s), "sorted(r0.#1)");
}

}  // namespace
}  // namespace iqro
